package scatter

// Vision-kernel benchmarks: the compute-bound hot paths the paper
// accelerates with GPUs, reproduced here on the parallel CPU worker pools
// (internal/vision/parallel). BenchmarkVisionFrame is the headline number —
// one full sift→fisher→lsh→match recognition pass over a synthetic frame.
// Run the scaling table with:
//
//	go test -run '^$' -bench VisionFrame -cpu 1,4,8 .
//
// Worker pools size themselves from GOMAXPROCS, so each -cpu row measures
// the pool at that width. The kernels' determinism contract guarantees all
// rows compute bit-identical results. The measured 1→8 core speedup
// calibrates the per-architecture CPU speed factors in internal/testbed.

import (
	"testing"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/vision/match"
	"github.com/edge-mar/scatter/internal/vision/sift"
)

// newVisionFrameFixture trains a recognition model on the synthetic
// clip's reference images and returns the pieces of the vision pipeline.
func newVisionFrameFixture(b *testing.B) (*core.Model, *sift.Detector, *trace.Generator) {
	b.Helper()
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	model, err := core.Train(gen.ReferenceImages(), core.TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sift.Defaults()
	cfg.MaxFeatures = 150
	return model, sift.New(cfg), gen
}

// BenchmarkVisionFrame runs the full vision pipeline for one frame: SIFT
// detection, PCA projection, Fisher encoding, LSH candidate lookup, and
// ratio-test matching + RANSAC pose for each candidate object.
func BenchmarkVisionFrame(b *testing.B) {
	model, det, gen := newVisionFrameFixture(b)
	frame := gen.GrayFrame(0)
	byID := make(map[int]*core.ReferenceObject, len(model.Objects))
	for _, obj := range model.Objects {
		byID[int(obj.ID)] = obj
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats := det.Detect(frame)
		if len(feats) == 0 {
			b.Fatal("no features detected")
		}
		descs := make([][]float32, len(feats))
		for j := range feats {
			descs[j] = model.PCA.Project(feats[j].Desc[:])
		}
		fv := model.Encoder.Encode(descs)
		cands := model.Index.Query(fv, 2)
		if len(cands) < 2 && model.Index.Len() >= 2 {
			// Same top-up the LSH service applies when probes miss on a
			// small reference set.
			cands = model.Index.ExactNN(fv, 2)
		}
		if len(cands) == 0 {
			b.Fatal("no LSH candidates")
		}
		for _, cand := range cands {
			ref := byID[cand.ID]
			matches := match.RatioTest(feats, ref.Features, 0.8)
			if len(matches) < 4 {
				continue
			}
			src := make([]match.Point, len(matches))
			dst := make([]match.Point, len(matches))
			for mi, m := range matches {
				rf := ref.Features[m.TrainIdx]
				qf := feats[m.QueryIdx]
				src[mi] = match.Point{X: rf.X, Y: rf.Y}
				dst[mi] = match.Point{X: qf.X, Y: qf.Y}
			}
			// Degenerate sets are expected for wrong candidates; the
			// kernel cost is what is being measured.
			_, _ = match.EstimateHomographyRANSAC(src, dst,
				match.RANSACConfig{Iterations: 400, Threshold: 5, MinInliers: 5, Seed: 1})
		}
	}
}

// BenchmarkVisionDetectOnly isolates the SIFT stage of the same frame —
// the largest single contributor to per-frame latency.
func BenchmarkVisionDetectOnly(b *testing.B) {
	_, det, gen := newVisionFrameFixture(b)
	frame := gen.GrayFrame(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if feats := det.Detect(frame); len(feats) == 0 {
			b.Fatal("no features detected")
		}
	}
}
