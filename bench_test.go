package scatter

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 2-4, 6-12) plus the headline comparison of §1/§5. Each
// iteration regenerates the figure's full data series on the simulated
// testbed; reported ns/op is the wall cost of a complete regeneration.
// Run with:
//
//	go test -bench=. -benchmem
//
// The CLI equivalent (with rendered tables) is cmd/scatter-bench.

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/experiments"
)

// benchDuration is the virtual run length per experiment point inside
// benchmarks — long enough for steady-state statistics, short enough to
// keep `go test -bench=.` pleasant.
const benchDuration = 20 * time.Second

func BenchmarkFig2BaselineEdge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig2(benchDuration)
		if len(pts) != 16 {
			b.Fatalf("fig2 points = %d", len(pts))
		}
	}
}

func BenchmarkFig3Scalability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig3(benchDuration)
		if len(pts) != 12 {
			b.Fatalf("fig3 points = %d", len(pts))
		}
	}
}

func BenchmarkFig4Cloud(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig4(benchDuration)
		if len(pts) != 4 {
			b.Fatalf("fig4 points = %d", len(pts))
		}
	}
}

func BenchmarkFig6ScatterPP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig6(benchDuration)
		if len(pts) != 16 {
			b.Fatalf("fig6 points = %d", len(pts))
		}
	}
}

func BenchmarkFig7ScaledClients(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig7(benchDuration)
		if len(pts) != 30 {
			b.Fatalf("fig7 points = %d", len(pts))
		}
	}
}

func BenchmarkFig8SidecarAnalytics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pt, _ := experiments.Fig8()
		if pt.Clients != 10 {
			b.Fatalf("fig8 clients = %d", pt.Clients)
		}
	}
}

func BenchmarkFig9NetworkConditions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig9(benchDuration)
		if len(pts) != 28 {
			b.Fatalf("fig9 points = %d", len(pts))
		}
	}
}

func BenchmarkFig10Jitter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig10(benchDuration)
		if len(pts) != 32 {
			b.Fatalf("fig10 points = %d", len(pts))
		}
	}
}

func BenchmarkFig11Hybrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig11(benchDuration)
		if len(pts) != 12 { // 4 UDP + 4 reliable + 4 three-way split
			b.Fatalf("fig11 points = %d", len(pts))
		}
	}
}

func BenchmarkFig12SidecarE1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pt, _ := experiments.Fig12()
		if pt.Clients != 4 {
			b.Fatalf("fig12 clients = %d", pt.Clients)
		}
	}
}

func BenchmarkHeadlineComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Headline(benchDuration)
		if res.MultiClientFPSRatio <= 1 {
			b.Fatalf("headline ratio = %v", res.MultiClientFPSRatio)
		}
	}
}

// BenchmarkAppAwareOrchestration regenerates the §6 future-work
// extension: static vs hardware-threshold vs QoS-driven autoscaling.
func BenchmarkAppAwareOrchestration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.AppAware(60 * time.Second)
		if len(pts) != 6 {
			b.Fatalf("appaware points = %d", len(pts))
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation suite
// (threshold, queue capacity, fetch/state timeouts).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Ablations(benchDuration)
		if len(r.Tables) != 5 {
			b.Fatalf("ablation tables = %d", len(r.Tables))
		}
	}
}

// BenchmarkSeedSensitivity regenerates the repeatability analysis.
func BenchmarkSeedSensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.SeedSensitivity(benchDuration, 3)
		if len(pts) != 4 {
			b.Fatalf("variance points = %d", len(pts))
		}
	}
}

// BenchmarkSimulatedSecond measures raw simulator throughput: one virtual
// second of a 4-client scAtteR++ run per iteration.
func BenchmarkSimulatedSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunExperiment(RunSpec{
			Name:      "bench",
			Mode:      ModeScatterPP,
			Placement: PlacementC1,
			Clients:   4,
			Duration:  time.Second,
			Seed:      int64(i + 1),
		})
	}
}

// BenchmarkTrainModel measures recognition-model training (SIFT + PCA +
// GMM + LSH) on the reference dataset.
func BenchmarkTrainModel(b *testing.B) {
	video := NewVideoSource(VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	refs := video.ReferenceImages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(refs, TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealPipelineFrame measures one frame through the five real
// services in-process (the vision cost a GPU accelerates in the paper).
func BenchmarkRealPipelineFrame(b *testing.B) {
	video := NewVideoSource(VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	model, err := Train(video.ReferenceImages(), TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	procs := NewProcessors(model, true, 320, 180)
	payload := FramePayload(video, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := &Frame{ClientID: 1, FrameNo: uint64(i + 1), Step: StepPrimary, Payload: payload}
		for step := range procs {
			if err := procs[step].Process(fr); err != nil {
				b.Fatal(err)
			}
		}
	}
}
