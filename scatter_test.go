package scatter

import (
	"testing"
	"time"
)

// The facade tests exercise the library exactly as a downstream user
// would: train a model, run the in-process pipeline, simulate a
// deployment, and schedule an SLA.

func TestPublicPipelineRoundTrip(t *testing.T) {
	video := NewVideoSource(VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	model, err := Train(video.ReferenceImages(), TrainConfig{GMMK: 4, GMMIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	procs := NewProcessors(model, true, 320, 180)
	fr := &Frame{ClientID: 1, FrameNo: 1, Step: StepPrimary, Payload: FramePayload(video, 0)}
	for step := range procs {
		if err := procs[step].Process(fr); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if fr.Step != StepDone {
		t.Fatalf("final step = %v", fr.Step)
	}
	dets, err := DecodeResult(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Error("no detections through the public API")
	}
}

func TestPublicSimulation(t *testing.T) {
	pt := RunExperiment(RunSpec{
		Name:      "facade",
		Mode:      ModeScatterPP,
		Placement: PlacementC1,
		Clients:   2,
		Duration:  10 * time.Second,
		Seed:      3,
	})
	if pt.Summary.FPSPerClient < 20 {
		t.Errorf("fps = %.1f", pt.Summary.FPSPerClient)
	}
	if pt.Services["sift"].MemBytes == 0 {
		t.Error("service usage missing")
	}
}

func TestPublicOrchestrator(t *testing.T) {
	orch := NewOrchestrator()
	if err := orch.RegisterNode(NodeInfo{
		Name: "n1", Cluster: "edge", CPUCores: 8, GPUs: 1, GPUArch: "ampere", MemBytes: 32 << 30,
	}, time.Now()); err != nil {
		t.Fatal(err)
	}
	dep, err := orch.Deploy(SLA{
		AppName: "app",
		Microservices: []ServiceSLA{{
			Name: "sift", Image: "x", Replicas: 1,
			Requirements: Requirements{NeedsGPU: true},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Instances) != 1 || dep.Instances[0].Node != "n1" {
		t.Errorf("deployment = %+v", dep)
	}
	if NewAPIServer(orch).Handler() == nil {
		t.Error("nil API handler")
	}
}

func TestPublicMachineAndLinkProfiles(t *testing.T) {
	if MachineE1().Name != "E1" || MachineE2().Name != "E2" || MachineCloud().Name != "cloud" {
		t.Error("machine profiles broken")
	}
	if LinkLTE().RTT != 40*time.Millisecond || Link5G().RTT != 10*time.Millisecond {
		t.Error("link profiles broken")
	}
	m := WithMobility(LinkWiFi6())
	if m.OscillationProb == 0 {
		t.Error("mobility profile broken")
	}
	if LinkCloudWAN().Loss == 0 {
		t.Error("WAN loss missing")
	}
}

func TestModeAndStepNames(t *testing.T) {
	if ModeScatter.String() != "scAtteR" || ModeScatterPP.String() != "scAtteR++" {
		t.Error("mode names")
	}
	if StepPrimary.String() != "primary" || StepMatching.String() != "matching" {
		t.Error("step names")
	}
}
