# scAtteR reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race cover bench bench-vision fuzz figures examples chaos clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The concurrent layers (live registry, span recorder, runtime workers,
# fault-injection transport, parallel vision kernels) always get a race
# pass.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/agent ./internal/transport ./internal/netem ./internal/vision/...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerates every paper figure plus the extension experiments.
figures:
	$(GO) run ./cmd/scatter-bench -fig all

# One benchmark per paper figure + micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke-runs every vision kernel benchmark once at 1, 4, and 8 cores.
# Worker pools size themselves from GOMAXPROCS, so each -cpu row measures
# the pool at that width; see EXPERIMENTS.md for the full scaling recipe.
bench-vision:
	$(GO) test -run '^$$' -bench Vision -benchtime=1x -cpu 1,4,8 .
	$(GO) test -run '^$$' -bench . -benchtime=1x -cpu 1,4,8 ./internal/vision/...

# Short fuzzing passes over the wire/payload decoders.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzUnmarshalBinary -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDecodePayload -fuzztime 30s

# Chaos suite: fault-injected transports, mid-run partitions, machine
# kills, and the end-to-end failover/recovery acceptance run — all under
# the race detector.
chaos:
	$(GO) test -race -run 'Chaos|Failover|Fault|Partition|Reconnect' -v ./internal/transport ./internal/agent

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiclient
	$(GO) run ./examples/netem
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
	rm -rf internal/wire/testdata internal/core/testdata
