# scAtteR reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race cover bench fuzz figures examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The concurrent observability layer (live registry, span recorder, real
# runtime instrumentation) always gets a race pass.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/agent

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerates every paper figure plus the extension experiments.
figures:
	$(GO) run ./cmd/scatter-bench -fig all

# One benchmark per paper figure + micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the wire/payload decoders.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzUnmarshalBinary -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDecodePayload -fuzztime 30s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiclient
	$(GO) run ./examples/netem
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
	rm -rf internal/wire/testdata internal/core/testdata
