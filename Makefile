# scAtteR reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race cover bench bench-vision bench-dataplane bench-batching bench-routing bench-fastpath bench-autoscale bench-sharding bench-kernels profile-vision fuzz figures examples chaos clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# The concurrent layers (live registry, span recorder, runtime workers,
# fault-injection transport, parallel vision kernels) always get a race
# pass. The 1-iteration bench smoke keeps the data-plane benchmarks
# compiling and running without paying full measurement time.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/obs/... ./internal/agent ./internal/transport ./internal/netem ./internal/vision/... ./internal/appaware ./internal/orchestrator ./internal/wire
	$(GO) test -run '^$$' -bench 'WorkerHop|DataplaneEncode' -benchtime=1x ./internal/agent
	$(GO) test -run '^$$' -bench 'Sharding' -benchtime=1x ./internal/vision/lsh
	$(GO) test -run '^$$' -bench 'KernelRank|KernelRatio' -benchtime=1x ./internal/vision/lsh ./internal/vision/match

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerates every paper figure plus the extension experiments.
figures:
	$(GO) run ./cmd/scatter-bench -fig all

# One benchmark per paper figure + micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Data-plane allocation/throughput benchmarks (codec, transport send,
# full worker hop) with -benchmem, exported to BENCH_dataplane.json so
# regressions in allocs/op and B/op are visible run over run. The
# allocation *budgets* are enforced as plain tests in `make test`
# (internal/wire, internal/transport, internal/agent alloc_test.go);
# this target records the trajectory.
bench-dataplane:
	$(GO) test -run '^$$' -bench 'WorkerHop|DataplaneEncode|Marshal|Unmarshal|Clone|Send180KB' -benchmem \
		./internal/agent ./internal/wire ./internal/transport \
		| $(GO) run ./cmd/benchjson -o BENCH_dataplane.json -note "make bench-dataplane"

# Micro-batching headline: sustained frames/sec per worker at saturation
# for batch sizes 1/4/16 at the paper's 180 KiB frame, at 1/4/8 cores,
# exported to BENCH_batching.json (batch1 is the per-frame baseline;
# frames/sec = 1e9 / ns_per_op).
bench-batching:
	$(GO) test -run '^$$' -bench 'WorkerHopBatched' -benchmem -cpu 1,4,8 ./internal/agent \
		| $(GO) run ./cmd/benchjson -o BENCH_batching.json -note "make bench-batching"

# Stats-driven replica selection on the forward path: ns/op and allocs/op
# of StatsRouter.Pick (power-of-two-choices over live windows), exported
# to BENCH_routing.json. The 0 allocs/op budget is enforced as a plain
# test in internal/agent alloc_test.go; this records the latency.
bench-routing:
	$(GO) test -run '^$$' -bench 'ReplicaPick' -benchmem ./internal/agent \
		| $(GO) run ./cmd/benchjson -o BENCH_routing.json -note "make bench-routing"

# Tracker-gated fast path: per-frame cost of a full recognition pass vs
# a gate skip on the synthetic clip, exported to BENCH_fastpath.json
# (full/tracked sub-benchmarks; the skip answers from the published
# verdict without running sift→encoding→lsh→matching).
bench-fastpath:
	$(GO) test -run '^$$' -bench 'FastPathFrame' -benchmem ./internal/core \
		| $(GO) run ./cmd/benchjson -o BENCH_fastpath.json -note "make bench-fastpath"

# Closed-loop autoscaling headline: the simulated 4-client saturation
# ramp under static vs hardware vs qos policies, exported to
# BENCH_autoscale.json. Per policy: time-to-react (react_s; the full run
# length when the policy never acts), delivered FPS per client (fps; the
# paper targets 30), and replicas added (actions). One deterministic
# iteration per policy — the sim is virtual-time, so -benchtime=1x is
# both fast and reproducible.
bench-autoscale:
	$(GO) test -run '^$$' -bench 'AutoscalePolicy' -benchtime=1x ./internal/appaware \
		| $(GO) run ./cmd/benchjson -o BENCH_autoscale.json -note "make bench-autoscale"

# Sharded-database headline: per-replica query cost monolithic vs one
# shard replica of a 4/8-way split at 10k/100k reference objects
# (BenchmarkShardingReplica — the O(N) → O(N/S) saving each matching
# node pays), plus the full scatter/gather path and the quickselect
# top-k kernel vs full sort, exported to BENCH_sharding.json. The
# bit-identity and allocation budgets are enforced as plain tests in
# `make test`; this target records the throughput trajectory.
bench-sharding:
	$(GO) test -run '^$$' -bench 'Sharding' -benchmem ./internal/vision/lsh \
		| $(GO) run ./cmd/benchjson -o BENCH_sharding.json -note "make bench-sharding"

# Recognition hot-path distance kernels: exact-mode candidate ranking at
# 10k/100k candidates (SoA arena + cached norms), the Hamming pre-rank
# sweep with measured recall@10 per budget, and the deferred-sqrt ratio
# test — exported to BENCH_kernels.json and compared against the
# committed pre-change BENCH_kernels_baseline.json. Bit-identity and
# allocation budgets are enforced as plain tests in `make test`.
bench-kernels:
	{ $(GO) test -run '^$$' -bench 'Kernel' -benchmem ./internal/vision/lsh; \
	  $(GO) test -run '^$$' -bench 'Kernel' -benchmem ./internal/vision/match; } \
		| $(GO) run ./cmd/benchjson -o BENCH_kernels.json -note "make bench-kernels"

# CPU-profiles the vision kernel benchmarks for flamegraph inspection
# (see EXPERIMENTS.md): writes cpu_lsh.pprof / cpu_match.pprof; open
# with `go tool pprof -http=: cpu_lsh.pprof`.
profile-vision:
	$(GO) test -run '^$$' -bench 'Kernel' -benchtime 20x -cpuprofile cpu_lsh.pprof \
		-o /dev/null ./internal/vision/lsh
	$(GO) test -run '^$$' -bench 'Kernel' -cpuprofile cpu_match.pprof \
		-o /dev/null ./internal/vision/match

# Smoke-runs every vision kernel benchmark once at 1, 4, and 8 cores.
# Worker pools size themselves from GOMAXPROCS, so each -cpu row measures
# the pool at that width; see EXPERIMENTS.md for the full scaling recipe.
bench-vision:
	$(GO) test -run '^$$' -bench Vision -benchtime=1x -cpu 1,4,8 .
	$(GO) test -run '^$$' -bench . -benchtime=1x -cpu 1,4,8 ./internal/vision/...

# Short fuzzing passes over the wire/payload decoders.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzUnmarshalBinary -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/vision/lsh -fuzz FuzzSketchMatchesHash -fuzztime 30s

# Chaos suite: fault-injected transports, mid-run partitions, machine
# kills, and the end-to-end failover/recovery acceptance run — all under
# the race detector.
chaos:
	$(GO) test -race -run 'Chaos|Failover|Fault|Partition|Reconnect|StatsRouting' -v ./internal/transport ./internal/agent

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiclient
	$(GO) run ./examples/netem
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
	rm -rf internal/wire/testdata internal/core/testdata
