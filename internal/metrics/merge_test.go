package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPercentileInterpolation pins the linear-interpolation estimator on
// known distributions.
func TestPercentileInterpolation(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name string
		ds   []time.Duration
		p    float64
		want time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"single", []time.Duration{ms(7)}, 0.95, ms(7)},
		{"p0-is-min", []time.Duration{ms(3), ms(1), ms(2)}, 0, ms(1)},
		{"p100-is-max", []time.Duration{ms(3), ms(1), ms(2)}, 1, ms(3)},
		// Two samples: p50 is exactly halfway between them.
		{"p50-midpoint", []time.Duration{ms(10), ms(20)}, 0.5, ms(15)},
		// 1..5: p50 lands on the middle rank exactly.
		{"p50-exact-rank", []time.Duration{ms(5), ms(4), ms(3), ms(2), ms(1)}, 0.5, ms(3)},
		// 1..5: rank = .95*4 = 3.8 → 4ms + 0.8*(5ms-4ms) = 4.8ms.
		{"p95-interpolated", []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5)}, 0.95, 4800 * time.Microsecond},
		// 1..100ms: p50 = 50.5ms, p95 = 95.05ms, p99 = 99.01ms.
		{"p50-uniform100", uniform100(), 0.50, 50500 * time.Microsecond},
		{"p95-uniform100", uniform100(), 0.95, 95050 * time.Microsecond},
		{"p99-uniform100", uniform100(), 0.99, 99010 * time.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentileDuration(tc.ds, tc.p); got != tc.want {
				t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func uniform100() []time.Duration {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	return ds
}

// TestMergeEqualsSequential drives the same randomized event stream into
// one collector and into two collectors split by client (jitter chains
// are per-client), then checks the merged summary is identical.
func TestMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seq := NewCollector()
	a, b := NewCollector(), NewCollector()
	pick := func(client uint32) *Collector {
		if client%2 == 0 {
			return a
		}
		return b
	}
	services := []string{"primary", "sift", "encoding"}
	for i := 0; i < 500; i++ {
		client := uint32(rng.Intn(4) + 1)
		at := time.Duration(i) * 3 * time.Millisecond
		c := pick(client)
		switch rng.Intn(6) {
		case 0:
			seq.FrameSent()
			c.FrameSent()
		case 1:
			e2e := time.Duration(rng.Intn(80)+10) * time.Millisecond
			seq.FrameDelivered(client, at, at+e2e)
			c.FrameDelivered(client, at, at+e2e)
		case 2:
			seq.FrameDropped(DropBusy)
			c.FrameDropped(DropBusy)
		case 3:
			name := services[rng.Intn(len(services))]
			seq.ServiceArrived(name, at)
			c.ServiceArrived(name, at)
		case 4:
			name := services[rng.Intn(len(services))]
			q := time.Duration(rng.Intn(5)) * time.Millisecond
			p := time.Duration(rng.Intn(20)+1) * time.Millisecond
			seq.ServiceProcessed(name, q, p)
			c.ServiceProcessed(name, q, p)
		case 5:
			seq.StateAllocFailed()
			c.StateAllocFailed()
		}
	}
	merged := NewCollector()
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil) // no-op

	duration := 2 * time.Second
	want := seq.Summarize(duration, 4, nil)
	got := merged.Summarize(duration, 4, nil)
	// E2E sample order differs between merged and sequential, but every
	// statistic derived from them must not.
	if !reflect.DeepEqual(want, got) {
		t.Errorf("merged summary differs from sequential:\nseq: %+v\ngot: %+v", want, got)
	}
	for _, name := range services {
		wantFPS := seq.IngressFPSSeries(name, duration, 100*time.Millisecond)
		gotFPS := merged.IngressFPSSeries(name, duration, 100*time.Millisecond)
		if !reflect.DeepEqual(wantFPS, gotFPS) {
			t.Errorf("%s ingress series differs after merge", name)
		}
	}
}

func TestSummaryStringDrops(t *testing.T) {
	c := NewCollector()
	c.FrameSent()
	c.FrameSent()
	c.FrameDelivered(1, 0, 40*time.Millisecond)
	c.FrameDropped(DropThreshold)
	c.StateAllocFailed()
	s := c.Summarize(time.Second, 1, nil)
	out := s.String()
	if !strings.Contains(out, "drops=1") {
		t.Errorf("String() missing drop count: %q", out)
	}
	if !strings.Contains(out, "state_alloc_fail=1") {
		t.Errorf("String() missing state-alloc failures: %q", out)
	}
	// Zero state-alloc failures stay out of the digest.
	if out := NewCollector().Summarize(time.Second, 0, nil).String(); strings.Contains(out, "state_alloc") {
		t.Errorf("String() shows zero state-alloc: %q", out)
	}
}

func TestSummaryTable(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 4; i++ {
		c.FrameSent()
	}
	c.FrameDelivered(1, 0, 40*time.Millisecond)
	c.FrameDropped(DropThreshold)
	c.FrameDropped(DropThreshold)
	c.FrameDropped(DropBusy)
	c.ServiceArrived("sift", time.Millisecond)
	c.ServiceProcessed("sift", 2*time.Millisecond, 30*time.Millisecond)
	c.ServiceArrived("primary", time.Millisecond)
	s := c.Summarize(time.Second, 1, nil)
	table := s.Table()
	for _, want := range []string{
		"sent=4 ok=1",
		"total=3 busy=1 threshold=2",
		"p95=",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("Table() has %d lines, want 6:\n%s", len(lines), table)
	}
	// Services render in name order.
	if !strings.Contains(lines[4], "primary") || !strings.Contains(lines[5], "sift") {
		t.Errorf("Table() services unordered:\n%s", table)
	}
}

// TestSeriesEdgeCases pins interval bucketing at the boundaries: events
// at exactly t=duration fall outside the last interval, an interval
// longer than the run yields a single bucket, and unknown services get
// zero-filled series of the right length.
func TestSeriesEdgeCases(t *testing.T) {
	c := NewCollector()
	duration := 2 * time.Second
	c.ServiceArrived("sift", 0)
	c.ServiceArrived("sift", duration-time.Nanosecond)
	c.ServiceArrived("sift", duration) // at the boundary: outside [0, duration)
	c.ServiceDroppedAt("sift", duration)

	fps := c.IngressFPSSeries("sift", duration, time.Second)
	if len(fps) != 2 {
		t.Fatalf("series length = %d, want 2", len(fps))
	}
	if fps[0] != 1 || fps[1] != 1 {
		t.Errorf("series = %v: event at t=duration must not count", fps)
	}
	ratios := c.DropRatioSeries("sift", duration, time.Second)
	if ratios[0] != 0 || ratios[1] != 0 {
		t.Errorf("drop at t=duration leaked into %v", ratios)
	}

	// Interval longer than the run: a single bucket spanning [0, interval),
	// so even the t=duration event falls inside the grid and counts.
	one := c.IngressFPSSeries("sift", duration, time.Minute)
	if len(one) != 1 {
		t.Fatalf("oversized interval buckets = %d, want 1", len(one))
	}
	if want := 3.0 / 60.0; math.Abs(one[0]-want) > 1e-12 {
		t.Errorf("oversized interval fps = %v, want %v", one[0], want)
	}

	// Unknown service: zero-filled, correct length, both series.
	if z := c.IngressFPSSeries("ghost", duration, 300*time.Millisecond); len(z) != 7 {
		t.Errorf("unknown service fps length = %d, want 7", len(z))
	}
	zr := c.DropRatioSeries("ghost", duration, 300*time.Millisecond)
	if len(zr) != 7 {
		t.Fatalf("unknown service ratio length = %d, want 7", len(zr))
	}
	for i, v := range zr {
		if v != 0 {
			t.Errorf("unknown service ratio[%d] = %v", i, v)
		}
	}
}
