package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.FrameSent()
	}
	// 8 delivered with 40ms E2E each, spaced 100ms apart.
	for i := 0; i < 8; i++ {
		sent := time.Duration(i) * 100 * time.Millisecond
		c.FrameDelivered(1, sent, sent+40*time.Millisecond)
	}
	c.FrameDropped(DropBusy)
	c.FrameDropped(DropLoss)
	s := c.Summarize(2*time.Second, 1, nil)
	if s.FramesSent != 10 || s.FramesOK != 8 {
		t.Errorf("sent=%d ok=%d", s.FramesSent, s.FramesOK)
	}
	if math.Abs(s.SuccessRate-0.8) > 1e-9 {
		t.Errorf("success = %v", s.SuccessRate)
	}
	if math.Abs(s.FPSPerClient-4) > 1e-9 {
		t.Errorf("fps/client = %v, want 4", s.FPSPerClient)
	}
	if s.E2EMean != 40*time.Millisecond || s.E2EP50 != 40*time.Millisecond {
		t.Errorf("e2e mean=%v p50=%v", s.E2EMean, s.E2EP50)
	}
	if s.Drops[DropBusy] != 1 || s.Drops[DropLoss] != 1 {
		t.Errorf("drops = %v", s.Drops)
	}
	// Every frame had identical 40ms E2E, so transit-time jitter is zero.
	if s.JitterMean != 0 {
		t.Errorf("jitter mean = %v, want 0 for constant E2E", s.JitterMean)
	}
}

func TestJitterMeasuresE2EVariation(t *testing.T) {
	// Stable transit time -> zero jitter; varying transit -> mean |ΔE2E|.
	stable := NewCollector()
	for i := 0; i < 5; i++ {
		sent := time.Duration(i) * 33 * time.Millisecond
		stable.FrameDelivered(1, sent, sent+40*time.Millisecond)
	}
	if s := stable.Summarize(time.Second, 1, nil); s.JitterMean != 0 {
		t.Errorf("stable-pipeline jitter = %v, want 0", s.JitterMean)
	}
	vary := NewCollector()
	e2es := []time.Duration{40, 44, 40, 48} // deltas 4, 4, 8 -> mean 5.333ms
	for i, e := range e2es {
		sent := time.Duration(i) * 33 * time.Millisecond
		vary.FrameDelivered(1, sent, sent+e*time.Millisecond)
	}
	s := vary.Summarize(time.Second, 1, nil)
	want := (4 + 4 + 8) * time.Millisecond / 3
	if s.JitterMean != want {
		t.Errorf("jitter = %v, want %v", s.JitterMean, want)
	}
}

func TestJitterPerClient(t *testing.T) {
	c := NewCollector()
	// Two interleaved clients, each with constant (but different) E2E:
	// per-client tracking must yield zero jitter.
	c.FrameDelivered(1, 0, 40*time.Millisecond)
	c.FrameDelivered(2, 0, 90*time.Millisecond)
	c.FrameDelivered(1, 33*time.Millisecond, 73*time.Millisecond)
	c.FrameDelivered(2, 33*time.Millisecond, 123*time.Millisecond)
	s := c.Summarize(time.Second, 2, nil)
	if s.JitterMean != 0 {
		t.Errorf("jitter = %v, want 0 (per-client constant E2E)", s.JitterMean)
	}
}

func TestServiceStats(t *testing.T) {
	c := NewCollector()
	c.ServiceArrived("sift", 10*time.Millisecond)
	c.ServiceArrived("sift", 20*time.Millisecond)
	c.ServiceArrived("sift", 30*time.Millisecond)
	c.ServiceProcessed("sift", 2*time.Millisecond, 14*time.Millisecond)
	c.ServiceProcessed("sift", 4*time.Millisecond, 16*time.Millisecond)
	c.ServiceDropped("sift")
	s := c.Summarize(time.Second, 1, nil)
	svc := s.Services["sift"]
	if svc.Processed != 2 || svc.Dropped != 1 || svc.Arrived != 3 {
		t.Errorf("svc = %+v", svc)
	}
	if math.Abs(svc.DropRatio-1.0/3) > 1e-9 {
		t.Errorf("drop ratio = %v", svc.DropRatio)
	}
	if svc.MeanQueue != 3*time.Millisecond || svc.MeanProc != 15*time.Millisecond {
		t.Errorf("queue=%v proc=%v", svc.MeanQueue, svc.MeanProc)
	}
	if math.Abs(svc.IngressFPS-3) > 1e-9 {
		t.Errorf("ingress fps = %v", svc.IngressFPS)
	}
	if s.ServiceLatMean != 15*time.Millisecond {
		t.Errorf("service lat mean = %v", s.ServiceLatMean)
	}
}

func TestIngressFPSSeries(t *testing.T) {
	c := NewCollector()
	// 3 arrivals in [0, 1s), 1 in [1s, 2s).
	for _, at := range []time.Duration{100, 200, 900, 1500} {
		c.ServiceArrived("primary", at*time.Millisecond)
	}
	series := c.IngressFPSSeries("primary", 2*time.Second, time.Second)
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] != 3 || series[1] != 1 {
		t.Errorf("series = %v, want [3 1]", series)
	}
	// Unknown service: zeros.
	z := c.IngressFPSSeries("nope", 2*time.Second, time.Second)
	if len(z) != 2 || z[0] != 0 || z[1] != 0 {
		t.Errorf("unknown service series = %v", z)
	}
	if got := c.IngressFPSSeries("primary", 0, time.Second); got != nil {
		t.Errorf("zero duration series = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.FrameDelivered(uint32(i), 0, time.Duration(i)*time.Millisecond)
	}
	s := c.Summarize(time.Second, 100, nil)
	if s.E2EP50 < 49*time.Millisecond || s.E2EP50 > 52*time.Millisecond {
		t.Errorf("p50 = %v", s.E2EP50)
	}
	if s.E2EP95 < 94*time.Millisecond || s.E2EP95 > 97*time.Millisecond {
		t.Errorf("p95 = %v", s.E2EP95)
	}
}

func TestEmptyCollector(t *testing.T) {
	s := NewCollector().Summarize(time.Second, 0, nil)
	if s.SuccessRate != 0 || s.FPSPerClient != 0 || s.E2EMean != 0 || s.JitterMean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestMachineUsagePassthrough(t *testing.T) {
	usage := []MachineUsage{{Machine: "E1", CPUUtil: 0.05, GPUUtil: 0.2, MemBytes: 1 << 30}}
	s := NewCollector().Summarize(time.Second, 1, usage)
	if len(s.Machines) != 1 || s.Machines[0].Machine != "E1" {
		t.Errorf("machines = %+v", s.Machines)
	}
}

func TestServiceCounters(t *testing.T) {
	c := NewCollector()
	c.ServiceArrived("sift", 0)
	c.ServiceArrived("sift", time.Millisecond)
	c.ServiceProcessed("sift", 0, time.Millisecond)
	c.ServiceDroppedAt("sift", 2*time.Millisecond)
	arrived, processed, dropped := c.ServiceCounters("sift")
	if arrived != 2 || processed != 1 || dropped != 1 {
		t.Errorf("counters = %d %d %d", arrived, processed, dropped)
	}
	if a, p, d := c.ServiceCounters("ghost"); a != 0 || p != 0 || d != 0 {
		t.Error("unknown service counters nonzero")
	}
}

func TestDropRatioSeries(t *testing.T) {
	c := NewCollector()
	// Interval 1: 4 arrivals, 1 drop. Interval 2: 2 arrivals, 2 drops.
	for _, at := range []time.Duration{100, 200, 300, 400} {
		c.ServiceArrived("sift", at*time.Millisecond)
	}
	c.ServiceDroppedAt("sift", 500*time.Millisecond)
	c.ServiceArrived("sift", 1100*time.Millisecond)
	c.ServiceArrived("sift", 1200*time.Millisecond)
	c.ServiceDroppedAt("sift", 1300*time.Millisecond)
	c.ServiceDroppedAt("sift", 1400*time.Millisecond)
	got := c.DropRatioSeries("sift", 2*time.Second, time.Second)
	if len(got) != 2 {
		t.Fatalf("series = %v", got)
	}
	if math.Abs(got[0]-0.25) > 1e-9 || math.Abs(got[1]-1.0) > 1e-9 {
		t.Errorf("ratios = %v, want [0.25 1.0]", got)
	}
	if z := c.DropRatioSeries("ghost", time.Second, time.Second); len(z) != 1 || z[0] != 0 {
		t.Errorf("unknown service = %v", z)
	}
	if got := c.DropRatioSeries("sift", 0, time.Second); got != nil {
		t.Errorf("zero duration = %v", got)
	}
	// Intervals with no arrivals report zero, not NaN.
	empty := c.DropRatioSeries("sift", 4*time.Second, time.Second)
	if empty[3] != 0 {
		t.Errorf("empty interval ratio = %v", empty[3])
	}
}

func TestSummaryString(t *testing.T) {
	c := NewCollector()
	c.FrameSent()
	c.FrameDelivered(1, 0, 40*time.Millisecond)
	s := c.Summarize(time.Second, 1, nil)
	out := s.String()
	if !strings.Contains(out, "fps/client") || !strings.Contains(out, "success") {
		t.Errorf("String() = %q", out)
	}
}
