// Package metrics computes the QoS statistics the paper reports for every
// experiment: frame rate (successfully analyzed frames per second),
// end-to-end latency (input to final processed frame), per-service
// processing latency, jitter (Δ inter-frame receive time), success rate,
// and per-service queue drop ratios (scAtteR++ sidecar analytics).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// DropReason classifies why a frame failed to complete the pipeline.
type DropReason string

// Drop reasons observed across the experiments.
const (
	DropBusy      DropReason = "busy"      // service busy, no queue (scAtteR)
	DropLoss      DropReason = "loss"      // network loss
	DropTimeout   DropReason = "timeout"   // dependency wait timed out
	DropThreshold DropReason = "threshold" // sidecar latency threshold exceeded
	DropOverflow  DropReason = "overflow"  // sidecar queue full
	DropAdmission DropReason = "admission" // refused by admission control at ingress
)

// Collector accumulates per-run statistics. It is not safe for concurrent
// use; simulation runs are single-threaded and the real runtime keeps one
// collector per goroutine, merging at the end.
type Collector struct {
	sent      uint64
	delivered uint64
	dropped   map[DropReason]uint64

	e2e       []time.Duration
	lastE2E   map[uint32]time.Duration // per client, for jitter
	jitterAbs []time.Duration

	stateAllocFailures uint64
	fastPathSkips      uint64

	services map[string]*ServiceStats
}

// ServiceStats aggregates one service's sidecar/processing counters.
type ServiceStats struct {
	Processed uint64
	Dropped   uint64 // dropped at this service's ingress (distress: busy/overflow/threshold)
	Arrived   uint64 // ingress requests observed (processed + dropped + queued at end)
	// AdmissionDropped counts frames refused by admission control —
	// deliberate control actions, kept out of Dropped so the distress
	// drop ratio recovers while rejection holds.
	AdmissionDropped uint64
	queueSum         time.Duration
	procSum          time.Duration
	arriveTime       []time.Duration // ingress timestamps, for per-service FPS
	dropTime         []time.Duration // ingress-drop timestamps, for drop-ratio series
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		dropped:  make(map[DropReason]uint64),
		lastE2E:  make(map[uint32]time.Duration),
		services: make(map[string]*ServiceStats),
	}
}

func (c *Collector) service(name string) *ServiceStats {
	s, ok := c.services[name]
	if !ok {
		s = &ServiceStats{}
		c.services[name] = s
	}
	return s
}

// FrameSent records a client emitting a frame at virtual time t.
func (c *Collector) FrameSent() { c.sent++ }

// FrameDelivered records the client receiving its processed frame:
// sentAt/receivedAt are virtual capture/delivery times. Jitter is the
// paper's Δ inter-frame receive time, computed as in RFC 3550: the
// variation between consecutive frames' transit (end-to-end) times for
// one client, which a perfectly stable pipeline drives to zero even when
// frames are lost in between.
func (c *Collector) FrameDelivered(clientID uint32, sentAt, receivedAt time.Duration) {
	c.delivered++
	e2e := receivedAt - sentAt
	c.e2e = append(c.e2e, e2e)
	if prev, ok := c.lastE2E[clientID]; ok {
		d := e2e - prev
		if d < 0 {
			d = -d
		}
		c.jitterAbs = append(c.jitterAbs, d)
	}
	c.lastE2E[clientID] = e2e
}

// FrameDropped records a frame lost for the given reason.
func (c *Collector) FrameDropped(reason DropReason) { c.dropped[reason]++ }

// StateAllocFailed records sift failing to reserve memory for a frame's
// state on a memory-constrained host. The frame itself is not terminal
// here — it will later miss at matching — so this is a separate signal,
// the condition the paper flags for memory-constrained edge hardware.
func (c *Collector) StateAllocFailed() { c.stateAllocFailures++ }

// FastPathSkipped records a frame answered by the tracker-gated fast path
// (delivered without running sift→matching). Such frames also count as
// delivered; this counter separates cheap from full deliveries.
func (c *Collector) FastPathSkipped() { c.fastPathSkips++ }

// ServiceArrived records an ingress request at a service.
func (c *Collector) ServiceArrived(name string, at time.Duration) {
	s := c.service(name)
	s.Arrived++
	s.arriveTime = append(s.arriveTime, at)
}

// ServiceProcessed records a completed service execution with its queue
// wait and processing time.
func (c *Collector) ServiceProcessed(name string, queue, proc time.Duration) {
	s := c.service(name)
	s.Processed++
	s.queueSum += queue
	s.procSum += proc
}

// ServiceDropped records a request dropped at a service ingress.
func (c *Collector) ServiceDropped(name string) { c.service(name).Dropped++ }

// ServiceAdmissionDropped records a request refused by admission control
// at a service ingress. Deliberately not folded into Dropped: admission
// drops are the controller's own doing, and counting them as distress
// would keep the drop ratio pinned high and defeat recovery hysteresis.
func (c *Collector) ServiceAdmissionDropped(name string) { c.service(name).AdmissionDropped++ }

// ServiceAdmissionDrops returns a service's cumulative admission-control
// refusals. Unknown services return zero.
func (c *Collector) ServiceAdmissionDrops(name string) uint64 {
	s, ok := c.services[name]
	if !ok {
		return 0
	}
	return s.AdmissionDropped
}

// ServiceCounters returns a service's cumulative ingress/processing
// counters — the predefined hook an application-aware orchestrator polls
// (the paper's §6 proposal). Unknown services return zeros.
func (c *Collector) ServiceCounters(name string) (arrived, processed, dropped uint64) {
	s, ok := c.services[name]
	if !ok {
		return 0, 0, 0
	}
	return s.Arrived, s.Processed, s.Dropped
}

// ServiceDroppedAt records an ingress drop with its timestamp so drop-
// ratio time series (Figures 8 and 12) can be derived.
func (c *Collector) ServiceDroppedAt(name string, at time.Duration) {
	s := c.service(name)
	s.Dropped++
	s.dropTime = append(s.dropTime, at)
}

// Merge folds other's records into c — the real runtime keeps one
// collector per goroutine and merges at the end. Counters and sums add;
// sample slices concatenate. Jitter chains are per-collector: a client's
// deliveries must all land on the same collector for merged output to
// equal sequential recording (no jitter sample bridges the merge
// boundary). other is left unchanged.
func (c *Collector) Merge(other *Collector) {
	if other == nil {
		return
	}
	c.sent += other.sent
	c.delivered += other.delivered
	for k, v := range other.dropped {
		c.dropped[k] += v
	}
	c.e2e = append(c.e2e, other.e2e...)
	c.jitterAbs = append(c.jitterAbs, other.jitterAbs...)
	for id, last := range other.lastE2E {
		c.lastE2E[id] = last
	}
	c.stateAllocFailures += other.stateAllocFailures
	c.fastPathSkips += other.fastPathSkips
	for name, ost := range other.services {
		s := c.service(name)
		s.Processed += ost.Processed
		s.Dropped += ost.Dropped
		s.Arrived += ost.Arrived
		s.AdmissionDropped += ost.AdmissionDropped
		s.queueSum += ost.queueSum
		s.procSum += ost.procSum
		s.arriveTime = append(s.arriveTime, ost.arriveTime...)
		s.dropTime = append(s.dropTime, ost.dropTime...)
	}
}

// MachineUsage is a utilization snapshot of one machine. CPUUtil/GPUUtil
// are cumulative (mean slot-busy fraction since the start of the run);
// the busy integrals and slot counts let a control loop window them —
// utilization over one period is Δbusy / (slots × Δt) — so a policy sees
// the last interval instead of the whole history.
type MachineUsage struct {
	Machine  string
	CPUUtil  float64 // normalized to total cores, [0, 1], since run start
	GPUUtil  float64
	MemBytes int64 // current memory reservation
	MemPeak  int64
	// CPUBusy/GPUBusy are the cumulative slot-busy integrals backing the
	// utilization fractions; CPUSlots/GPUSlots the device capacities.
	CPUBusy  time.Duration
	GPUBusy  time.Duration
	CPUSlots int
	GPUSlots int
}

// ServiceSummary is the per-service view in a Summary.
type ServiceSummary struct {
	Processed  uint64
	Dropped    uint64
	Arrived    uint64
	DropRatio  float64 // dropped / arrived
	MeanQueue  time.Duration
	MeanProc   time.Duration
	IngressFPS float64 // arrivals per second over the run
}

// Summary is the digest of one experiment run.
type Summary struct {
	Duration       time.Duration
	Clients        int
	FramesSent     uint64
	FramesOK       uint64
	Drops          map[DropReason]uint64
	SuccessRate    float64
	FPSPerClient   float64 // delivered frames / s / client
	FPSAggregate   float64 // delivered frames / s
	E2EMean        time.Duration
	E2EP50         time.Duration
	E2EP95         time.Duration
	JitterMean     time.Duration
	Services       map[string]ServiceSummary
	Machines       []MachineUsage
	ServiceLatMean time.Duration // mean over services of MeanProc (paper's "service latency")
	// StateAllocFailures counts sift state reservations rejected by the
	// host's memory capacity.
	StateAllocFailures uint64
	// FastPathSkips counts delivered frames answered by the tracker-gated
	// fast path instead of full recognition.
	FastPathSkips uint64
}

// Summarize produces the run digest. duration is the experiment length in
// virtual time; clients the number of concurrent clients; machines an
// optional set of utilization snapshots.
func (c *Collector) Summarize(duration time.Duration, clients int, machines []MachineUsage) Summary {
	s := Summary{
		Duration:   duration,
		Clients:    clients,
		FramesSent: c.sent,
		FramesOK:   c.delivered,
		Drops:      make(map[DropReason]uint64, len(c.dropped)),
		Services:   make(map[string]ServiceSummary, len(c.services)),
		Machines:   machines,
	}
	for k, v := range c.dropped {
		s.Drops[k] = v
	}
	if c.sent > 0 {
		s.SuccessRate = float64(c.delivered) / float64(c.sent)
	}
	if duration > 0 {
		s.FPSAggregate = float64(c.delivered) / duration.Seconds()
		if clients > 0 {
			s.FPSPerClient = s.FPSAggregate / float64(clients)
		}
	}
	s.E2EMean = meanDuration(c.e2e)
	s.E2EP50 = percentileDuration(c.e2e, 0.50)
	s.E2EP95 = percentileDuration(c.e2e, 0.95)
	s.JitterMean = meanDuration(c.jitterAbs)
	var procSum time.Duration
	nSvc := 0
	for name, st := range c.services {
		sum := ServiceSummary{
			Processed: st.Processed,
			Dropped:   st.Dropped,
			Arrived:   st.Arrived,
		}
		if st.Arrived > 0 {
			sum.DropRatio = float64(st.Dropped) / float64(st.Arrived)
		}
		if st.Processed > 0 {
			sum.MeanQueue = st.queueSum / time.Duration(st.Processed)
			sum.MeanProc = st.procSum / time.Duration(st.Processed)
			procSum += sum.MeanProc
			nSvc++
		}
		if duration > 0 {
			sum.IngressFPS = float64(st.Arrived) / duration.Seconds()
		}
		s.Services[name] = sum
	}
	if nSvc > 0 {
		s.ServiceLatMean = procSum / time.Duration(nSvc)
	}
	s.StateAllocFailures = c.stateAllocFailures
	s.FastPathSkips = c.fastPathSkips
	return s
}

// IngressFPSSeries returns per-interval ingress FPS for one service —
// the time series Figures 8 and 12 plot. Intervals partition [0, duration).
func (c *Collector) IngressFPSSeries(name string, duration, interval time.Duration) []float64 {
	if interval <= 0 || duration <= 0 {
		return nil
	}
	n := int((duration + interval - 1) / interval)
	out := make([]float64, n)
	st, ok := c.services[name]
	if !ok {
		return out
	}
	for _, at := range st.arriveTime {
		idx := int(at / interval)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	sec := interval.Seconds()
	for i := range out {
		out[i] /= sec
	}
	return out
}

// DropRatioSeries returns the per-interval fraction of ingress requests
// dropped at one service — the sidecar analytics series of Figures 8/12.
// Intervals with no arrivals report zero.
func (c *Collector) DropRatioSeries(name string, duration, interval time.Duration) []float64 {
	if interval <= 0 || duration <= 0 {
		return nil
	}
	n := int((duration + interval - 1) / interval)
	ratios := make([]float64, n)
	st, ok := c.services[name]
	if !ok {
		return ratios
	}
	arrivals := make([]float64, n)
	drops := make([]float64, n)
	for _, at := range st.arriveTime {
		if idx := int(at / interval); idx >= 0 && idx < n {
			arrivals[idx]++
		}
	}
	for _, at := range st.dropTime {
		if idx := int(at / interval); idx >= 0 && idx < n {
			drops[idx]++
		}
	}
	for i := range ratios {
		if arrivals[i] > 0 {
			ratios[i] = drops[i] / arrivals[i]
		}
	}
	return ratios
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// percentileDuration computes the p-quantile (p in [0, 1]) with linear
// interpolation between closest ranks — the same estimator NumPy's
// default and most monitoring systems use, so a percentile is exact on
// rank boundaries and interpolated between samples rather than snapped to
// the nearest lower observation.
func percentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo])+0.5)
}

// DropsTotal sums the drops over all reasons.
func (s Summary) DropsTotal() uint64 {
	var total uint64
	for _, v := range s.Drops {
		total += v
	}
	return total
}

// String renders a single-line digest useful in harness output, including
// total drops and (when present) state-allocation failures.
func (s Summary) String() string {
	out := fmt.Sprintf("clients=%d fps/client=%.1f e2e=%.1fms svc=%.1fms success=%.0f%% jitter=%.2fms drops=%d",
		s.Clients, s.FPSPerClient, ms(s.E2EMean), ms(s.ServiceLatMean), s.SuccessRate*100, ms(s.JitterMean),
		s.DropsTotal())
	if s.StateAllocFailures > 0 {
		out += fmt.Sprintf(" state_alloc_fail=%d", s.StateAllocFailures)
	}
	if s.FastPathSkips > 0 {
		out += fmt.Sprintf(" fastpath_skips=%d", s.FastPathSkips)
	}
	return out
}

// Table renders a multi-line digest: the headline QoS, frame accounting
// with drops broken down by reason, and one row per service in name
// order. Useful when a single String() line is too dense to read.
func (s Summary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %v, %d clients\n", s.Duration, s.Clients)
	fmt.Fprintf(&b, "frames: sent=%d ok=%d success=%.1f%% fps/client=%.2f\n",
		s.FramesSent, s.FramesOK, s.SuccessRate*100, s.FPSPerClient)
	fmt.Fprintf(&b, "latency: e2e mean=%.1fms p50=%.1fms p95=%.1fms service=%.1fms jitter=%.2fms\n",
		ms(s.E2EMean), ms(s.E2EP50), ms(s.E2EP95), ms(s.ServiceLatMean), ms(s.JitterMean))
	fmt.Fprintf(&b, "drops: total=%d", s.DropsTotal())
	reasons := make([]string, 0, len(s.Drops))
	for r := range s.Drops {
		reasons = append(reasons, string(r))
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, " %s=%d", r, s.Drops[DropReason(r)])
	}
	if s.StateAllocFailures > 0 {
		fmt.Fprintf(&b, " state_alloc_fail=%d", s.StateAllocFailures)
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(s.Services))
	for name := range s.Services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		svc := s.Services[name]
		fmt.Fprintf(&b, "  %-9s arrived=%-6d processed=%-6d dropped=%-5d drop=%.1f%% queue=%.1fms proc=%.1fms ingress=%.1f/s\n",
			name, svc.Arrived, svc.Processed, svc.Dropped, svc.DropRatio*100,
			ms(svc.MeanQueue), ms(svc.MeanProc), svc.IngressFPS)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
