package sift

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
)

// testPattern renders a deterministic textured image with strong corners:
// a grid of filled squares at varying intensities plus a diagonal gradient.
func testPattern(w, h int) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.1 + 0.05*float32(x+y)/float32(w+h)
			g.Set(x, y, v)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		bx := 8 + rng.Intn(w-24)
		by := 8 + rng.Intn(h-24)
		side := 6 + rng.Intn(10)
		val := 0.5 + 0.5*rng.Float32()
		for y := by; y < by+side && y < h; y++ {
			for x := bx; x < bx+side && x < w; x++ {
				g.Set(x, y, val)
			}
		}
	}
	return g
}

func TestDetectFindsFeaturesOnTexturedImage(t *testing.T) {
	img := testPattern(96, 96)
	d := New(Defaults())
	feats := d.Detect(img)
	if len(feats) == 0 {
		t.Fatal("no features detected on textured image")
	}
	for i, f := range feats {
		if f.X < 0 || f.X >= float64(img.W) || f.Y < 0 || f.Y >= float64(img.H) {
			t.Errorf("feature %d at (%v, %v) outside image", i, f.X, f.Y)
		}
		if f.Sigma <= 0 {
			t.Errorf("feature %d has non-positive sigma %v", i, f.Sigma)
		}
		if f.Orientation < -math.Pi-1e-9 || f.Orientation > math.Pi+1e-9 {
			t.Errorf("feature %d orientation %v outside [-pi, pi]", i, f.Orientation)
		}
	}
}

func TestDetectEmptyOnFlatImage(t *testing.T) {
	img := imgproc.NewGray(64, 64)
	for i := range img.Pix {
		img.Pix[i] = 0.5
	}
	d := New(Defaults())
	if feats := d.Detect(img); len(feats) != 0 {
		t.Errorf("flat image produced %d features, want 0", len(feats))
	}
}

func TestDetectSortedByResponse(t *testing.T) {
	feats := New(Defaults()).Detect(testPattern(96, 96))
	for i := 1; i < len(feats); i++ {
		if feats[i].Response > feats[i-1].Response {
			t.Fatalf("features not sorted by response at %d: %v > %v",
				i, feats[i].Response, feats[i-1].Response)
		}
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	cfg := Defaults()
	cfg.MaxFeatures = 5
	feats := New(cfg).Detect(testPattern(96, 96))
	if len(feats) > 5 {
		t.Errorf("MaxFeatures=5 returned %d features", len(feats))
	}
}

func TestDescriptorsNormalized(t *testing.T) {
	feats := New(Defaults()).Detect(testPattern(96, 96))
	if len(feats) == 0 {
		t.Skip("no features")
	}
	for i, f := range feats {
		var norm float64
		for _, v := range f.Desc {
			if v < 0 {
				t.Fatalf("feature %d descriptor has negative component %v", i, v)
			}
			if v > 0.21 { // 0.2 clamp with slight renormalization headroom
				// After renormalization components can exceed 0.2 slightly.
				if v > 0.5 {
					t.Fatalf("feature %d descriptor component %v too large", i, v)
				}
			}
			norm += float64(v) * float64(v)
		}
		if math.Abs(math.Sqrt(norm)-1) > 1e-4 {
			t.Fatalf("feature %d descriptor norm = %v, want 1", i, math.Sqrt(norm))
		}
	}
}

func TestDetectionDeterministic(t *testing.T) {
	img := testPattern(96, 96)
	a := New(Defaults()).Detect(img)
	b := New(Defaults()).Detect(img)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic feature count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs between identical runs", i)
		}
	}
}

// Descriptors should be stable under small intensity scaling (illumination
// invariance from normalization).
func TestIlluminationInvariance(t *testing.T) {
	img := testPattern(96, 96)
	bright := img.Clone()
	for i := range bright.Pix {
		bright.Pix[i] = bright.Pix[i] * 0.7
	}
	a := New(Defaults()).Detect(img)
	b := New(Defaults()).Detect(bright)
	if len(a) == 0 || len(b) == 0 {
		t.Skip("insufficient features")
	}
	// Match each feature in a to the nearest in b by position; descriptors
	// should be close.
	matched := 0
	for _, fa := range a {
		var best *Feature
		bestD := math.Inf(1)
		for j := range b {
			fb := &b[j]
			dx := fa.X - fb.X
			dy := fa.Y - fb.Y
			d := dx*dx + dy*dy
			if d < bestD {
				bestD = d
				best = fb
			}
		}
		if best == nil || bestD > 4 {
			continue
		}
		if L2(&fa.Desc, &best.Desc) < 0.4 {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no descriptor survived a brightness change")
	}
}

func TestL2Distance(t *testing.T) {
	var a, b Descriptor
	a[0] = 1
	b[1] = 1
	if got := L2(&a, &b); math.Abs(got-math.Sqrt2) > 1e-6 {
		t.Errorf("L2 = %v, want sqrt(2)", got)
	}
	if got := L2(&a, &a); got != 0 {
		t.Errorf("L2 self-distance = %v, want 0", got)
	}
}

// TestL2SqMatchesL2 pins the deferred-sqrt identity the match kernels
// rely on: L2 must be exactly math.Sqrt(L2Sq) — same summation order,
// bit-identical — so selecting on L2Sq and sqrt-ing the survivors
// reproduces per-pair L2 results exactly.
func TestL2SqMatchesL2(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, b Descriptor
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		sq := L2Sq(&a, &b)
		if got := L2(&a, &b); got != math.Sqrt(sq) {
			t.Fatalf("L2 = %v, Sqrt(L2Sq) = %v — must be bit-identical", got, math.Sqrt(sq))
		}
		var want float64
		for i := range a {
			d := float64(a[i] - b[i])
			want += d * d
		}
		if sq != want {
			t.Fatalf("L2Sq = %v, direct sum = %v", sq, want)
		}
	}
}

func TestNewFillsDefaults(t *testing.T) {
	d := New(Config{})
	if d.cfg.Levels != 3 || d.cfg.SigmaBase != 1.6 {
		t.Errorf("New(Config{}) did not apply defaults: %+v", d.cfg)
	}
	d = New(Config{Levels: 5, ContrastThreshold: 0.01})
	if d.cfg.Levels != 5 || d.cfg.ContrastThreshold != 0.01 {
		t.Errorf("New did not honour overrides: %+v", d.cfg)
	}
}

// Property: normalizeDescriptor always yields unit norm (or all-zero input
// stays zero) and components bounded by ~0.2 after clamping headroom.
func TestNormalizeDescriptorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Descriptor
		for i := range d {
			d[i] = rng.Float32() * 10
		}
		normalizeDescriptor(&d)
		var norm float64
		for _, v := range d {
			norm += float64(v) * float64(v)
		}
		return math.Abs(math.Sqrt(norm)-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeZeroDescriptor(t *testing.T) {
	var d Descriptor
	normalizeDescriptor(&d)
	for _, v := range d {
		if v != 0 {
			t.Fatal("zero descriptor modified by normalization")
		}
	}
}

// Property: trilinear accumulation conserves total weight when bins are
// interior (no boundary clipping).
func TestTrilinearConservesWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Descriptor
		// Interior coordinates away from spatial boundaries.
		bx := 0.5 + rng.Float64()*2 // in [0.5, 2.5]
		by := 0.5 + rng.Float64()*2
		ob := rng.Float64() * descOriBins
		trilinearAccumulate(&d, bx, by, ob, 1.0)
		var sum float64
		for _, v := range d {
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The parallel kernel contract: any worker count produces bit-identical
// features to the serial path, including keypoint order.
func TestDetectParallelMatchesSerial(t *testing.T) {
	img := testPattern(128, 128)
	serialCfg := Defaults()
	serialCfg.Workers = 1
	serial := New(serialCfg).Detect(img)
	if len(serial) == 0 {
		t.Fatal("no features on textured image")
	}
	for _, workers := range []int{2, 4, 8} {
		cfg := Defaults()
		cfg.Workers = workers
		par := New(cfg).Detect(img)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d features, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: feature %d differs from serial", workers, i)
			}
		}
	}
}

func BenchmarkDetect96(b *testing.B) {
	img := testPattern(96, 96)
	d := New(Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(img)
	}
}

// BenchmarkDetect320x180 is the per-kernel scaling row for the frame size
// the pipeline actually runs; compare with -cpu 1,4,8 (Workers defaults to
// GOMAXPROCS, which -cpu sets per row).
func BenchmarkDetect320x180(b *testing.B) {
	img := testPattern(320, 180)
	d := New(Defaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(img)
	}
}
