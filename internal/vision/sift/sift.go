// Package sift implements a scale-invariant feature transform (SIFT)
// detector and descriptor in pure Go, following Lowe's 2004 formulation:
// a Gaussian scale-space pyramid, difference-of-Gaussian (DoG) extrema
// detection with contrast and edge rejection, gradient-histogram
// orientation assignment, and 128-dimensional descriptors built from a
// 4×4 grid of 8-bin orientation histograms.
//
// This is the object-detection substrate behind scAtteR's sift service.
// The paper runs SIFT on GPUs; this implementation trades raw speed for
// portability and determinism but computes the same quantities, so the
// downstream encoding/LSH/matching stages operate on real descriptors.
package sift

import (
	"math"
	"sort"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// DescriptorSize is the dimensionality of a SIFT descriptor:
// 4×4 spatial bins × 8 orientation bins.
const DescriptorSize = 128

// Descriptor is a 128-dimensional SIFT feature descriptor, L2-normalized
// with the standard 0.2 clamp-and-renormalize illumination correction.
type Descriptor [DescriptorSize]float32

// Keypoint locates a detected feature in the original image.
type Keypoint struct {
	X, Y        float64 // position in input-image coordinates
	Sigma       float64 // absolute scale
	Orientation float64 // dominant gradient orientation, radians in [-pi, pi]
	Response    float64 // |DoG| response; higher is stronger
	Octave      int
	Level       int
}

// Feature is a keypoint with its descriptor.
type Feature struct {
	Keypoint
	Desc Descriptor
}

// Config controls detection. The zero value is not valid; use Defaults and
// override fields as needed.
type Config struct {
	// Octaves is the number of pyramid octaves. If zero, it is derived
	// from the image size (down to a minimum dimension of 16 pixels).
	Octaves int
	// Levels is the number of scales sampled per octave (Lowe's "s").
	Levels int
	// SigmaBase is the blur of the first pyramid level.
	SigmaBase float64
	// ContrastThreshold rejects low-contrast extrema (applied to |DoG|).
	ContrastThreshold float64
	// EdgeThreshold rejects edge-like extrema via the principal-curvature
	// ratio test; Lowe suggests 10.
	EdgeThreshold float64
	// MaxFeatures caps the number of returned features, keeping the
	// strongest by response. Zero means no cap.
	MaxFeatures int
	// Workers bounds the worker pool for the DoG extrema scan and
	// per-keypoint descriptor computation. Zero uses GOMAXPROCS; one
	// forces the serial path. Output is bit-identical at any setting.
	Workers int
}

// Defaults returns the standard SIFT parameterization.
func Defaults() Config {
	return Config{
		Levels:            3,
		SigmaBase:         1.6,
		ContrastThreshold: 0.03,
		EdgeThreshold:     10,
		MaxFeatures:       0,
	}
}

// Detector detects SIFT features. A Detector is safe for concurrent use;
// it holds only immutable configuration.
type Detector struct {
	cfg Config
}

// New returns a Detector for the given configuration, filling unset fields
// from Defaults.
func New(cfg Config) *Detector {
	d := Defaults()
	if cfg.Octaves > 0 {
		d.Octaves = cfg.Octaves
	}
	if cfg.Levels > 0 {
		d.Levels = cfg.Levels
	}
	if cfg.SigmaBase > 0 {
		d.SigmaBase = cfg.SigmaBase
	}
	if cfg.ContrastThreshold > 0 {
		d.ContrastThreshold = cfg.ContrastThreshold
	}
	if cfg.EdgeThreshold > 0 {
		d.EdgeThreshold = cfg.EdgeThreshold
	}
	if cfg.MaxFeatures > 0 {
		d.MaxFeatures = cfg.MaxFeatures
	}
	if cfg.Workers > 0 {
		d.Workers = cfg.Workers
	}
	return &Detector{cfg: d}
}

// pyramid holds the Gaussian and DoG scale spaces for one image.
type pyramid struct {
	gauss  [][]*imgproc.Gray // [octave][level], levels+3 per octave
	dog    [][]*imgproc.Gray // [octave][level], levels+2 per octave
	sigmas []float64         // per-level blur within an octave
}

func (d *Detector) buildPyramid(img *imgproc.Gray) *pyramid {
	cfg := d.cfg
	octaves := cfg.Octaves
	if octaves == 0 {
		minDim := img.W
		if img.H < minDim {
			minDim = img.H
		}
		for octaves = 0; minDim >= 16; octaves++ {
			minDim /= 2
		}
		if octaves < 1 {
			octaves = 1
		}
	}
	nLevels := cfg.Levels + 3
	k := math.Pow(2, 1/float64(cfg.Levels))
	sigmas := make([]float64, nLevels)
	sigmas[0] = cfg.SigmaBase
	for i := 1; i < nLevels; i++ {
		sigmas[i] = sigmas[0] * math.Pow(k, float64(i))
	}

	p := &pyramid{sigmas: sigmas}
	base := imgproc.GaussianBlurWorkers(img, cfg.SigmaBase, cfg.Workers)
	for o := 0; o < octaves; o++ {
		levels := make([]*imgproc.Gray, nLevels)
		levels[0] = base
		for i := 1; i < nLevels; i++ {
			// Incremental blur: sigma needed to go from level i-1 to i.
			// Levels chain sequentially, but each blur's convolution
			// passes fan rows out across the pool.
			sPrev, sCur := sigmas[i-1], sigmas[i]
			inc := math.Sqrt(sCur*sCur - sPrev*sPrev)
			levels[i] = imgproc.GaussianBlurWorkers(levels[i-1], inc, cfg.Workers)
		}
		dogs := make([]*imgproc.Gray, nLevels-1)
		for i := 0; i < nLevels-1; i++ {
			dogs[i] = imgproc.Subtract(levels[i+1], levels[i])
		}
		p.gauss = append(p.gauss, levels)
		p.dog = append(p.dog, dogs)
		// Next octave starts from the level with blur 2*sigmaBase.
		next := levels[cfg.Levels]
		if next.W < 4 || next.H < 4 {
			break
		}
		base = imgproc.Downsample(next)
		if base.W < 4 || base.H < 4 {
			break
		}
	}
	return p
}

// isExtremum reports whether pixel (x, y) of dog[o][l] is a local extremum
// over its 26 scale-space neighbours.
func isExtremum(dogs []*imgproc.Gray, l, x, y int) bool {
	v := dogs[l].At(x, y)
	isMax := true
	isMin := true
	for dl := -1; dl <= 1; dl++ {
		img := dogs[l+dl]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dl == 0 && dx == 0 && dy == 0 {
					continue
				}
				n := img.At(x+dx, y+dy)
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

// edgeLike applies Lowe's principal-curvature ratio test using the 2×2
// Hessian of the DoG response. Returns true if the point lies on an edge.
func edgeLike(img *imgproc.Gray, x, y int, edgeThreshold float64) bool {
	dxx := float64(img.At(x+1, y) + img.At(x-1, y) - 2*img.At(x, y))
	dyy := float64(img.At(x, y+1) + img.At(x, y-1) - 2*img.At(x, y))
	dxy := float64(img.At(x+1, y+1)-img.At(x-1, y+1)-img.At(x+1, y-1)+img.At(x-1, y-1)) / 4
	tr := dxx + dyy
	det := dxx*dyy - dxy*dxy
	if det <= 0 {
		return true
	}
	r := edgeThreshold
	return tr*tr/det >= (r+1)*(r+1)/r
}

// candidate is a DoG extremum that survived the contrast and edge tests;
// orientation assignment and description happen in a second phase.
type candidate struct {
	octave, level, x, y int
	response            float64
}

// scanGrain is the row granularity of the parallel extrema scan;
// describeGrain the keypoint granularity of descriptor computation.
// Both are fixed so chunk boundaries — and therefore output order —
// never depend on the worker count.
const (
	scanGrain     = 16
	describeGrain = 4
)

// scanExtrema finds DoG extrema across the pyramid, parallelized over row
// bands within each (octave, level). Per-chunk candidate lists are
// concatenated in chunk order, so the result matches the serial
// octave→level→row→column scan order exactly.
func (d *Detector) scanExtrema(p *pyramid) []candidate {
	cfg := d.cfg
	var cands []candidate
	for o := range p.dog {
		dogs := p.dog[o]
		for l := 1; l < len(dogs)-1; l++ {
			img := dogs[l]
			rows := img.H - 2
			if rows <= 0 {
				continue
			}
			parts := make([][]candidate, parallel.Chunks(rows, scanGrain))
			parallel.For(cfg.Workers, rows, scanGrain, func(chunk, start, end int) {
				var out []candidate
				for y := start + 1; y < end+1; y++ {
					for x := 1; x < img.W-1; x++ {
						v := img.At(x, y)
						if math.Abs(float64(v)) < cfg.ContrastThreshold {
							continue
						}
						if !isExtremum(dogs, l, x, y) {
							continue
						}
						if edgeLike(img, x, y, cfg.EdgeThreshold) {
							continue
						}
						out = append(out, candidate{
							octave: o, level: l, x: x, y: y,
							response: math.Abs(float64(v)),
						})
					}
				}
				parts[chunk] = out
			})
			for _, part := range parts {
				cands = append(cands, part...)
			}
		}
	}
	return cands
}

// describe assigns orientations and computes descriptors for each
// candidate. Candidates are independent, so the pool fans them out with
// each worker writing a disjoint result slot; flattening in candidate
// order preserves the serial ordering.
func (d *Detector) describe(p *pyramid, cands []candidate) []Feature {
	perCand := make([][]Feature, len(cands))
	parallel.For(d.cfg.Workers, len(cands), describeGrain, func(_, start, end int) {
		for i := start; i < end; i++ {
			c := cands[i]
			sigma := p.sigmas[c.level]
			grad := p.gauss[c.octave][c.level]
			scale := float64(int(1) << uint(c.octave))
			oris := dominantOrientations(grad, c.x, c.y, sigma)
			feats := make([]Feature, 0, len(oris))
			for _, ori := range oris {
				kp := Keypoint{
					X:           float64(c.x) * scale,
					Y:           float64(c.y) * scale,
					Sigma:       sigma * scale,
					Orientation: ori,
					Response:    c.response,
					Octave:      c.octave,
					Level:       c.level,
				}
				desc := computeDescriptor(grad, c.x, c.y, sigma, ori)
				feats = append(feats, Feature{Keypoint: kp, Desc: desc})
			}
			perCand[i] = feats
		}
	})
	var feats []Feature
	for _, fs := range perCand {
		feats = append(feats, fs...)
	}
	return feats
}

// Detect finds SIFT features in img. The returned slice is ordered by
// decreasing response strength. Detection runs on the configured worker
// pool; the output is bit-identical to the serial (Workers=1) path.
func (d *Detector) Detect(img *imgproc.Gray) []Feature {
	p := d.buildPyramid(img)
	feats := d.describe(p, d.scanExtrema(p))
	sort.Slice(feats, func(i, j int) bool { return feats[i].Response > feats[j].Response })
	if d.cfg.MaxFeatures > 0 && len(feats) > d.cfg.MaxFeatures {
		feats = feats[:d.cfg.MaxFeatures]
	}
	return feats
}

const orientationBins = 36

// dominantOrientations builds a 36-bin gradient orientation histogram in a
// Gaussian-weighted window around (x, y) and returns the dominant peak plus
// any secondary peaks within 80% of it (each spawning its own keypoint, as
// in Lowe 2004).
func dominantOrientations(img *imgproc.Gray, x, y int, sigma float64) []float64 {
	var hist [orientationBins]float64
	radius := int(math.Round(3 * 1.5 * sigma))
	if radius < 1 {
		radius = 1
	}
	w := 1.5 * sigma
	inv := -1 / (2 * w * w)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 1 || px >= img.W-1 || py < 1 || py >= img.H-1 {
				continue
			}
			mag, theta := imgproc.Gradient(img, px, py)
			if mag == 0 {
				continue
			}
			weight := math.Exp(float64(dx*dx+dy*dy) * inv)
			bin := int(math.Floor((theta + math.Pi) / (2 * math.Pi) * orientationBins))
			if bin >= orientationBins {
				bin = orientationBins - 1
			}
			if bin < 0 {
				bin = 0
			}
			hist[bin] += mag * weight
		}
	}
	// Smooth the histogram (twice, circular box filter of width 3).
	for pass := 0; pass < 2; pass++ {
		var sm [orientationBins]float64
		for i := range hist {
			prev := hist[(i+orientationBins-1)%orientationBins]
			next := hist[(i+1)%orientationBins]
			sm[i] = (prev + hist[i] + next) / 3
		}
		hist = sm
	}
	maxV := 0.0
	for _, v := range hist {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return []float64{0}
	}
	var oris []float64
	for i, v := range hist {
		prev := hist[(i+orientationBins-1)%orientationBins]
		next := hist[(i+1)%orientationBins]
		if v < prev || v < next || v < 0.8*maxV {
			continue
		}
		// Parabolic interpolation of the peak position.
		denom := prev - 2*v + next
		offset := 0.0
		if denom != 0 {
			offset = 0.5 * (prev - next) / denom
		}
		bin := float64(i) + offset
		theta := bin/orientationBins*2*math.Pi - math.Pi + math.Pi/orientationBins
		if theta > math.Pi {
			theta -= 2 * math.Pi
		}
		if theta < -math.Pi {
			theta += 2 * math.Pi
		}
		oris = append(oris, theta)
	}
	if len(oris) == 0 {
		oris = append(oris, 0)
	}
	return oris
}

const (
	descGrid    = 4 // 4x4 spatial bins
	descOriBins = 8 // 8 orientation bins per spatial bin
)

// computeDescriptor samples gradients in a 16×16 (scaled by sigma) window
// rotated to the keypoint orientation and accumulates them into the 4×4×8
// histogram grid, then applies L2 normalization with the 0.2 clamp.
func computeDescriptor(img *imgproc.Gray, x, y int, sigma, orientation float64) Descriptor {
	var desc Descriptor
	binWidth := 3 * sigma // pixels per spatial bin
	radius := int(math.Round(binWidth * float64(descGrid) / 2 * math.Sqrt2))
	if radius < 2 {
		radius = 2
	}
	cosT := math.Cos(-orientation)
	sinT := math.Sin(-orientation)
	window := float64(descGrid) * binWidth / 2
	inv := -1 / (2 * window * window)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 1 || px >= img.W-1 || py < 1 || py >= img.H-1 {
				continue
			}
			// Rotate the offset into the keypoint frame.
			rx := (cosT*float64(dx) - sinT*float64(dy)) / binWidth
			ry := (sinT*float64(dx) + cosT*float64(dy)) / binWidth
			// Continuous bin coordinates in [0, 4).
			bx := rx + float64(descGrid)/2 - 0.5
			by := ry + float64(descGrid)/2 - 0.5
			if bx <= -1 || bx >= descGrid || by <= -1 || by >= descGrid {
				continue
			}
			mag, theta := imgproc.Gradient(img, px, py)
			if mag == 0 {
				continue
			}
			rel := theta - orientation
			for rel < 0 {
				rel += 2 * math.Pi
			}
			for rel >= 2*math.Pi {
				rel -= 2 * math.Pi
			}
			ob := rel / (2 * math.Pi) * descOriBins
			weight := mag * math.Exp(float64(dx*dx+dy*dy)*inv)
			trilinearAccumulate(&desc, bx, by, ob, weight)
		}
	}
	normalizeDescriptor(&desc)
	return desc
}

// trilinearAccumulate distributes weight across the neighbouring spatial
// and orientation bins (standard SIFT trilinear interpolation).
func trilinearAccumulate(desc *Descriptor, bx, by, ob float64, weight float64) {
	x0 := int(math.Floor(bx))
	y0 := int(math.Floor(by))
	o0 := int(math.Floor(ob))
	fx := bx - float64(x0)
	fy := by - float64(y0)
	fo := ob - float64(o0)
	for di := 0; di <= 1; di++ {
		yi := y0 + di
		if yi < 0 || yi >= descGrid {
			continue
		}
		wy := weight
		if di == 0 {
			wy *= 1 - fy
		} else {
			wy *= fy
		}
		for dj := 0; dj <= 1; dj++ {
			xi := x0 + dj
			if xi < 0 || xi >= descGrid {
				continue
			}
			wx := wy
			if dj == 0 {
				wx *= 1 - fx
			} else {
				wx *= fx
			}
			for dk := 0; dk <= 1; dk++ {
				oi := (o0 + dk) % descOriBins
				if oi < 0 {
					oi += descOriBins
				}
				wo := wx
				if dk == 0 {
					wo *= 1 - fo
				} else {
					wo *= fo
				}
				desc[(yi*descGrid+xi)*descOriBins+oi] += float32(wo)
			}
		}
	}
}

// normalizeDescriptor applies L2 normalization, clamps components at 0.2,
// and renormalizes — the standard illumination-invariance step.
func normalizeDescriptor(d *Descriptor) {
	norm := float64(0)
	for _, v := range d {
		norm += float64(v) * float64(v)
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for i := range d {
		v := float64(d[i]) / norm
		if v > 0.2 {
			v = 0.2
		}
		d[i] = float32(v)
	}
	norm = 0
	for _, v := range d {
		norm += float64(v) * float64(v)
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for i := range d {
		d[i] = float32(float64(d[i]) / norm)
	}
}

// L2 returns the Euclidean distance between two descriptors.
func L2(a, b *Descriptor) float64 {
	return math.Sqrt(L2Sq(a, b))
}

// L2Sq returns the squared Euclidean distance between two descriptors.
// Sqrt is monotone, so nearest-neighbour selection over L2Sq picks the
// same winners as over L2 — the ratio-test kernels select on L2Sq and
// take sqrt only for the two distances that survive per query feature.
func L2Sq(a, b *Descriptor) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return sum
}
