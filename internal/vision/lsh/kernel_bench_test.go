package lsh

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks isolate the recognition hot path's distance kernels
// from bucket probing and sorting, at the candidate counts the paper's
// recognition tier sees at scale (BENCH_kernels.json vs the committed
// pre-change BENCH_kernels_baseline.json). Workers is pinned to 1 so the
// rows measure single-core kernel cost, not pool scaling — that is the
// per-node client ceiling the orchestrator divides by.

const kernelBenchDim = 64

func kernelBenchIndex(b *testing.B, n int) (*Index, [][]float32) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 100))
	ix := New(Config{Dim: kernelBenchDim, Tables: 8, Bits: 6, Probes: 2, Seed: 9, Workers: 1})
	for id := 0; id < n; id++ {
		ix.Add(id, randomUnit(rng, kernelBenchDim))
	}
	queries := make([][]float32, 16)
	for q := range queries {
		queries[q] = randomUnit(rng, kernelBenchDim)
	}
	return ix, queries
}

// BenchmarkKernelRank measures exact-mode candidate ranking — the cosine
// distance pass rankLocked runs over every candidate — at 10k and 100k
// candidates (every stored item made a candidate, the dense-bucket
// worst case).
func BenchmarkKernelRank(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		ix, queries := kernelBenchIndex(b, n)
		neighbors := make([]Neighbor, n)
		b.Run("n="+itoa(n), func(b *testing.B) {
			ix.mu.RLock()
			defer ix.mu.RUnlock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range neighbors {
					neighbors[j] = Neighbor{ID: j}
				}
				ix.rankLocked(queries[i%len(queries)], neighbors)
			}
		})
	}
}

// BenchmarkKernelQuery measures the full single-query path (hash, probe,
// rank, top-k) on the dense-bucket index, where ranking dominates.
func BenchmarkKernelQuery(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		ix, queries := kernelBenchIndex(b, n)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Query(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkKernelPreRank sweeps the Hamming pre-ranking budget on a
// recognition-shaped reference set at 100k vectors: each object is a
// tight cluster of 10 reference views (per-coordinate noise 0.04) and
// queries are fresh views of known objects (noise 0.03). The sketch is
// one full word (Tables=8 × Bits=8 = 64 bits) — the resolution a 100k
// candidate tail needs; popcount cost is identical to any ≤64-bit
// sketch. The pr=0 row times exact mode on the *same* index, so the
// pre-rank speedup is read off within this table, and each pr>0 row
// reports recall@10 against those exact results — computed outside the
// timed loop over the same query set — alongside query latency, so
// BENCH_kernels.json carries the full recall-vs-speedup curve.
func BenchmarkKernelPreRank(b *testing.B) {
	const dim, n, k = 64, 100_000, 10
	rng := rand.New(rand.NewSource(int64(n) + 200))
	ix := New(Config{Dim: dim, Tables: 8, Bits: 8, Probes: 2, Seed: 9, Workers: 1})
	base := make([][]float32, n/10)
	for i := range base {
		base[i] = randomUnit(rng, dim)
	}
	for id := 0; id < n; id++ {
		ix.Add(id, perturb(rng, base[id%len(base)], 0.04))
	}
	queries := make([][]float32, 16)
	for q := range queries {
		queries[q] = perturb(rng, base[q%len(base)], 0.03)
	}
	ix.SetPreRank(0)
	exact := make([]map[int]struct{}, len(queries))
	for q, v := range queries {
		exact[q] = make(map[int]struct{}, k)
		for _, nb := range ix.Query(v, k) {
			exact[q][nb.ID] = struct{}{}
		}
	}
	for _, pr := range []int{0, 2, 4, 8} {
		ix.SetPreRank(pr)
		hits, total := 0, 0
		for q, v := range queries {
			for _, nb := range ix.Query(v, k) {
				if _, ok := exact[q][nb.ID]; ok {
					hits++
				}
			}
			total += len(exact[q])
		}
		recall := float64(hits) / float64(total)
		b.Run("n="+itoa(n)+"/pr="+itoa(pr), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Query(queries[i%len(queries)], k)
			}
			b.ReportMetric(recall, "recall@10")
		})
	}
	ix.SetPreRank(0)
}
