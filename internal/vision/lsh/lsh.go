// Package lsh implements locality-sensitive hashing for approximate
// nearest-neighbour search over Fisher vectors — scAtteR's lsh service.
// It uses random-hyperplane (signed random projection) hashing: each of
// several tables hashes a vector to a bit string of hyperplane signs, and
// queries probe the exact bucket plus optional single-bit-flip buckets
// (multi-probe) before ranking candidates by exact cosine distance.
//
// The distance kernels are laid out for the cache, not the type system:
// reference vectors live in one contiguous structure-of-arrays arena
// (vector data, squared norms, and bit-packed sign sketches in three
// dense parallel slabs indexed by slot), hyperplanes in one row-major
// matrix, and ranking does a single dot-product pass per candidate
// against norms cached at Add time. With Config.PreRank armed, ranking
// first cuts the candidate set by packed-sketch Hamming distance —
// XOR/popcount over a few words — before the exact cosine pass.
package lsh

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// Neighbor is a query result: a stored item and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64 // cosine distance in [0, 2]
}

// Config parameterizes an Index.
type Config struct {
	Dim    int   // vector dimensionality (required)
	Tables int   // number of hash tables (default 8)
	Bits   int   // hyperplanes per table, <= 64 (default 16)
	Probes int   // additional single-bit-flip probes per table (default 2)
	Seed   int64 // RNG seed for hyperplanes (default 1)
	// PreRank, when positive, arms bit-packed Hamming pre-ranking:
	// queries rank candidates first by Hamming distance between packed
	// sign sketches (Tables×Bits bits, XOR + popcount) and exactly
	// re-rank only the top PreRank·k by cosine distance. Zero (the
	// default) keeps exact mode — every candidate cosine-ranked,
	// bit-identical to an index without sketches. A PreRank·k cut at or
	// above the candidate count degenerates to exact mode.
	PreRank int
	// Workers bounds the worker pool for table construction, bulk
	// hashing, and candidate ranking. Zero uses GOMAXPROCS; one forces
	// the serial path. Hash tables and query results are identical at
	// any setting.
	Workers int
}

// Index is a multi-table random-hyperplane LSH index. It is safe for
// concurrent use: lookups take a read lock, Add takes a write lock.
//
// Reference storage is a structure-of-arrays arena: vector s occupies
// arena[s*Dim:(s+1)*Dim], its squared L2 norm normsSq[s], and its packed
// sign sketch sketches[s*sketchWords:(s+1)*sketchWords]. Slots are dense;
// Remove swap-moves the last slot into the hole so the arena never
// fragments and the ranking pass streams contiguous memory.
//
// Hash buckets hold slots, not ids, so candidate collection, Hamming
// pre-ranking, and cosine ranking are pure array indexing — no map
// lookups on the query hot path. Ranking translates slots back to
// public ids (slotIDs is a dense array) before the (distance, id)
// sort, so result ordering and tie-breaking stay on ids exactly as
// before. Remove redirects the swap-moved item's bucket entries using
// its stored sketch, keeping bucket slots valid.
type Index struct {
	cfg Config
	// planes is the row-major hyperplane matrix: the plane of (table t,
	// bit b) occupies planes[((t*Bits)+b)*Dim : ((t*Bits)+b+1)*Dim].
	// Immutable after New, so hashing never takes the index lock.
	planes []float32
	// sketchWords is the packed-sketch stride: ceil(Tables*Bits / 64).
	sketchWords int
	// preRank is the live Hamming pre-ranking budget (see Config.PreRank);
	// atomic so SetPreRank can retune a serving index without the lock.
	preRank atomic.Int64

	mu       sync.RWMutex
	tables   []map[uint64][]int
	arena    []float32
	normsSq  []float64
	sketches []uint64
	slotIDs  []int       // slot → id
	slots    map[int]int // id → slot
}

// New creates an empty index. It panics on a non-positive dimension or
// Bits > 64, which are programming errors.
func New(cfg Config) *Index {
	if cfg.Dim <= 0 {
		panic(fmt.Sprintf("lsh: invalid dimension %d", cfg.Dim))
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 16
	}
	if cfg.Bits > 64 {
		panic(fmt.Sprintf("lsh: bits %d > 64", cfg.Bits))
	}
	if cfg.Probes < 0 {
		cfg.Probes = 0
	} else if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PreRank < 0 {
		cfg.PreRank = 0
	}
	ix := &Index{
		cfg:         cfg,
		planes:      make([]float32, cfg.Tables*cfg.Bits*cfg.Dim),
		sketchWords: (cfg.Tables*cfg.Bits + 63) / 64,
		tables:      make([]map[uint64][]int, cfg.Tables),
		slots:       make(map[int]int),
	}
	ix.preRank.Store(int64(cfg.PreRank))
	// Each table draws its hyperplanes from its own rand.Rand seeded
	// deterministically from the config seed, so construction can fan out
	// across the pool and the planes of table t never depend on how many
	// other tables exist, what order they are built in, or any other
	// package's use of the global math/rand source. The draw order within
	// a table (bit-major, then dimension) matches the former nested-slice
	// layout, so a given (seed, table) yields the same hyperplanes.
	parallel.For(cfg.Workers, cfg.Tables, 1, func(_, start, end int) {
		for t := start; t < end; t++ {
			rng := rand.New(rand.NewSource(tableSeed(cfg.Seed, t)))
			row := ix.planes[t*cfg.Bits*cfg.Dim : (t+1)*cfg.Bits*cfg.Dim]
			for i := range row {
				row[i] = float32(rng.NormFloat64())
			}
			ix.tables[t] = make(map[uint64][]int)
		}
	})
	return ix
}

// tableSeed derives an independent per-table seed from the index seed via
// a splitmix64 step, keeping per-table RNG streams decorrelated.
func tableSeed(seed int64, table int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(table+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Tables returns the number of hash tables (after defaulting).
func (ix *Index) Tables() int { return ix.cfg.Tables }

// Dim returns the configured vector dimensionality.
func (ix *Index) Dim() int { return ix.cfg.Dim }

// Config returns the index's effective configuration (after defaulting,
// with the live PreRank setting). Two indexes built from equal configs
// draw identical hyperplanes — the property sharding relies on for
// bit-identity.
func (ix *Index) Config() Config {
	cfg := ix.cfg
	cfg.PreRank = int(ix.preRank.Load())
	return cfg
}

// SetPreRank retunes the Hamming pre-ranking budget on a live index
// (see Config.PreRank). Zero restores exact mode. Sketches are always
// maintained at Add time, so the switch costs nothing and applies to the
// next query.
func (ix *Index) SetPreRank(n int) {
	if n < 0 {
		n = 0
	}
	ix.preRank.Store(int64(n))
}

// Len returns the number of stored items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.slotIDs)
}

// Hash returns the bucket key of v in the given table.
func (ix *Index) Hash(table int, v []float32) uint64 {
	ix.checkDim(v)
	var key uint64
	dim := ix.cfg.Dim
	base := table * ix.cfg.Bits * dim
	for b := 0; b < ix.cfg.Bits; b++ {
		plane := ix.planes[base+b*dim : base+(b+1)*dim]
		var dot float64
		for d, x := range v {
			dot += float64(x) * float64(plane[d])
		}
		if dot >= 0 {
			key |= 1 << uint(b)
		}
	}
	return key
}

func (ix *Index) checkDim(v []float32) {
	if len(v) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: vector dim %d, want %d", len(v), ix.cfg.Dim))
	}
}

// normSq accumulates the squared L2 norm in index order — the exact
// float64 addition sequence CosineDistance's per-vector reduction uses,
// which is what lets Add-time caching stay bit-identical to computing
// the norm inside the distance call.
func normSq(v []float32) float64 {
	var n float64
	for _, x := range v {
		f := float64(x)
		n += f * f
	}
	return n
}

// packSketch packs per-table bucket keys into a dense little-endian bit
// string: table t's bit b lands at global bit position t*bits + b. dst
// must hold ceil(len(keys)*bits / 64) words and is overwritten.
func packSketch(dst, keys []uint64, bitsPerTable int) {
	for i := range dst {
		dst[i] = 0
	}
	for t, key := range keys {
		p := t * bitsPerTable
		w, off := p>>6, uint(p&63)
		dst[w] |= key << off
		if off+uint(bitsPerTable) > 64 {
			dst[w+1] |= key >> (64 - off)
		}
	}
}

// unpackKey extracts table t's bucket key back out of a packed sketch —
// the inverse of packSketch, pinned to Hash by a differential fuzz
// target. Remove recovers bucket keys this way instead of re-hashing.
func unpackKey(sketch []uint64, t, bitsPerTable int) uint64 {
	p := t * bitsPerTable
	w, off := p>>6, uint(p&63)
	key := sketch[w] >> off
	if off+uint(bitsPerTable) > 64 {
		key |= sketch[w+1] << (64 - off)
	}
	if bitsPerTable < 64 {
		key &= 1<<uint(bitsPerTable) - 1
	}
	return key
}

// keyPool recycles per-call bucket-key and packed-sketch buffers.
var keyPool parallel.SlicePool[uint64]

// hashAll computes the bucket key of v in every table into keys (length
// Tables). Hashing reads only the immutable hyperplanes, so it runs
// outside the index lock; it fans out across tables only when the total
// multiply-add count is large enough to amortize the handoff (a full
// hash below the cutoff costs on the order of the fan-out itself).
func (ix *Index) hashAll(v []float32, keys []uint64) {
	workers := ix.cfg.Workers
	if ix.cfg.Tables*ix.cfg.Bits*ix.cfg.Dim < 1<<17 {
		workers = 1
	}
	parallel.For(workers, ix.cfg.Tables, 1, func(_, start, end int) {
		for t := start; t < end; t++ {
			keys[t] = ix.Hash(t, v)
		}
	})
}

// Add stores vector v under id, replacing any previous vector with the
// same id. The vector is copied into the arena. Per-table hashing, norm
// caching, and sketch packing all happen outside the write lock.
func (ix *Index) Add(id int, v []float32) {
	ix.checkDim(v)
	keys := keyPool.Get(ix.cfg.Tables)
	ix.hashAll(v, keys)
	n := normSq(v)
	sketch := keyPool.Get(ix.sketchWords)
	packSketch(sketch, keys, ix.cfg.Bits)

	ix.mu.Lock()
	if slot, ok := ix.slots[id]; ok {
		ix.removeSlotLocked(id, slot)
	}
	slot := len(ix.slotIDs)
	ix.arena = append(ix.arena, v...)
	ix.normsSq = append(ix.normsSq, n)
	ix.sketches = append(ix.sketches, sketch...)
	ix.slotIDs = append(ix.slotIDs, id)
	ix.slots[id] = slot
	for t := range ix.tables {
		ix.tables[t][keys[t]] = append(ix.tables[t][keys[t]], slot)
	}
	ix.mu.Unlock()
	keyPool.Put(sketch)
	keyPool.Put(keys)
}

// Remove deletes id from the index. Removing an absent id is a no-op.
func (ix *Index) Remove(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if slot, ok := ix.slots[id]; ok {
		ix.removeSlotLocked(id, slot)
	}
}

// removeSlotLocked unlinks slot from every bucket (bucket keys are
// recovered from the stored sketch — no re-hash) and swap-moves the last
// arena slot into the hole, keeping vector data, cached norms, and
// sketches dense. The moved item's bucket entries are redirected to its
// new slot the same way, via its own sketch. Callers must hold the
// write lock.
func (ix *Index) removeSlotLocked(id, slot int) {
	sw, dim := ix.sketchWords, ix.cfg.Dim
	sketch := ix.sketches[slot*sw : (slot+1)*sw]
	for t := range ix.tables {
		key := unpackKey(sketch, t, ix.cfg.Bits)
		bucket := ix.tables[t][key]
		for i, bs := range bucket {
			if bs == slot {
				ix.tables[t][key] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.tables[t][key]) == 0 {
			delete(ix.tables[t], key)
		}
	}
	last := len(ix.slotIDs) - 1
	if slot != last {
		moved := ix.sketches[last*sw : (last+1)*sw]
		for t := range ix.tables {
			bucket := ix.tables[t][unpackKey(moved, t, ix.cfg.Bits)]
			for i, bs := range bucket {
				if bs == last {
					bucket[i] = slot
					break
				}
			}
		}
		copy(ix.arena[slot*dim:(slot+1)*dim], ix.arena[last*dim:(last+1)*dim])
		copy(sketch, moved)
		ix.normsSq[slot] = ix.normsSq[last]
		movedID := ix.slotIDs[last]
		ix.slotIDs[slot] = movedID
		ix.slots[movedID] = slot
	}
	ix.arena = ix.arena[:last*dim]
	ix.sketches = ix.sketches[:last*sw]
	ix.normsSq = ix.normsSq[:last]
	ix.slotIDs = ix.slotIDs[:last]
	delete(ix.slots, id)
}

// eachLocked calls f with every stored (id, vector) pair in slot order.
// The vector slice aliases the arena: callers must hold at least a read
// lock for the duration and must not retain or mutate it.
func (ix *Index) eachLocked(f func(id int, v []float32)) {
	dim := ix.cfg.Dim
	for s, id := range ix.slotIDs {
		f(id, ix.arena[s*dim:(s+1)*dim])
	}
}

// CosineDistance returns 1 - cos(a, b), in [0, 2]. Zero vectors are at
// distance 1 from everything (undefined angle treated as orthogonal).
func CosineDistance(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// rankGrain is the candidate granularity of parallel distance ranking.
const rankGrain = 32

// rankRange ranks candidates neighbors[start:end], whose ID field holds
// arena slots on entry: one dot-product pass over the contiguous arena
// row per candidate against the Add-time norm cache and the hoisted
// query norm qn, then the slot is rewritten to the public id. The dot
// accumulates in index order and the norms accumulate per vector in
// index order — the same three float64 reduction sequences
// CosineDistance runs in one loop — so the distance is bit-identical to
// the fused computation.
func (ix *Index) rankRange(v []float32, qn float64, neighbors []Neighbor, start, end int) {
	dim := ix.cfg.Dim
	for i := start; i < end; i++ {
		slot := neighbors[i].ID
		ref := ix.arena[slot*dim : (slot+1)*dim]
		var dot float64
		for d, x := range v {
			dot += float64(x) * float64(ref[d])
		}
		nb := ix.normsSq[slot]
		d := 1.0
		if qn != 0 && nb != 0 {
			d = 1 - dot/math.Sqrt(qn*nb)
		}
		neighbors[i] = Neighbor{ID: ix.slotIDs[slot], Dist: d}
	}
}

// rankLocked ranks every candidate neighbor (ID holds the arena slot on
// entry, the public id on return — see rankRange). The query norm is
// computed once and shared by every candidate; each distance is an
// independent exact computation, so the fan-out cannot change results.
// The serial path runs inline (no closure, no goroutines — zero
// allocations). Callers must hold at least a read lock.
func (ix *Index) rankLocked(v []float32, neighbors []Neighbor) {
	qn := normSq(v)
	n := len(neighbors)
	if ix.cfg.Workers == 1 || n <= rankGrain {
		ix.rankRange(v, qn, neighbors, 0, n)
		return
	}
	parallel.For(ix.cfg.Workers, n, rankGrain, func(_, start, end int) {
		ix.rankRange(v, qn, neighbors, start, end)
	})
}

// rankAllRange ranks stored slots [start, end) into neighbors: pure
// arena streaming in slot order, no id→slot lookups.
func (ix *Index) rankAllRange(v []float32, qn float64, neighbors []Neighbor, start, end int) {
	dim := ix.cfg.Dim
	for s := start; s < end; s++ {
		ref := ix.arena[s*dim : (s+1)*dim]
		var dot float64
		for d, x := range v {
			dot += float64(x) * float64(ref[d])
		}
		nb := ix.normsSq[s]
		d := 1.0
		if qn != 0 && nb != 0 {
			d = 1 - dot/math.Sqrt(qn*nb)
		}
		neighbors[s] = Neighbor{ID: ix.slotIDs[s], Dist: d}
	}
}

// rankAllLocked ranks every stored item in slot order into neighbors
// (length Len) — the ExactNN fast path. The serial path runs inline (no
// closure — zero allocations). Callers must hold at least a read lock.
func (ix *Index) rankAllLocked(v []float32, neighbors []Neighbor) {
	qn := normSq(v)
	n := len(neighbors)
	if ix.cfg.Workers == 1 || n <= rankGrain {
		ix.rankAllRange(v, qn, neighbors, 0, n)
		return
	}
	parallel.For(ix.cfg.Workers, n, rankGrain, func(_, start, end int) {
		ix.rankAllRange(v, qn, neighbors, start, end)
	})
}

// preRankLocked cuts the candidate set (ID holds arena slots) to
// PreRank·k by packed-sketch Hamming distance (XOR + popcount over
// sketchWords words per candidate) ahead of exact cosine ranking.
// Selection is under the (Hamming, slot) total order, so the kept set
// is deterministic. With PreRank zero, or PreRank·k at or above the
// candidate count, the set is returned intact — exact mode. keys are
// the query's per-table bucket keys (already computed for probing).
// Callers must hold at least a read lock.
func (ix *Index) preRankLocked(keys []uint64, neighbors []Neighbor, k int) []Neighbor {
	pr := int(ix.preRank.Load())
	if pr <= 0 {
		return neighbors
	}
	keep := pr * k
	if keep <= 0 || keep >= len(neighbors) {
		return neighbors
	}
	qs := keyPool.Get(ix.sketchWords)
	packSketch(qs, keys, ix.cfg.Bits)
	n := len(neighbors)
	if ix.cfg.Workers == 1 || n <= rankGrain {
		ix.hammingRange(qs, neighbors, 0, n)
	} else {
		parallel.For(ix.cfg.Workers, n, rankGrain, func(_, start, end int) {
			ix.hammingRange(qs, neighbors, start, end)
		})
	}
	neighbors = sortAndTrim(neighbors, keep)
	keyPool.Put(qs)
	return neighbors
}

// hammingRange fills Dist for neighbors[start:end] (ID holds the arena
// slot) with the Hamming distance between each candidate's packed
// sketch and the query sketch qs — XOR and popcount over sketchWords
// words per candidate, straight out of the sketch slab.
func (ix *Index) hammingRange(qs []uint64, neighbors []Neighbor, start, end int) {
	sw := ix.sketchWords
	for i := start; i < end; i++ {
		ref := ix.sketches[neighbors[i].ID*sw : (neighbors[i].ID+1)*sw]
		h := 0
		for w, x := range ref {
			h += bits.OnesCount64(x ^ qs[w])
		}
		neighbors[i].Dist = float64(h)
	}
}

// neighborLess is the (distance, id) comparator used everywhere results
// are ranked. Distinct IDs make it a strict total order, so any ranking
// built on it is deterministic regardless of candidate collection order.
func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// sortAndTrim orders neighbors by (distance, id) and truncates to k.
// When the candidate set is larger than k it first quickselect-partitions
// the k smallest to the front — O(n) expected instead of O(n log n) —
// and sorts only that prefix. The comparator is a total order, so the set
// of k smallest and its sorted order are both unique: the output is
// identical to a full sort followed by truncation.
func sortAndTrim(neighbors []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return neighbors[:0]
	}
	if len(neighbors) > k {
		selectK(neighbors, k)
		neighbors = neighbors[:k]
	}
	sort.Slice(neighbors, func(i, j int) bool {
		return neighborLess(neighbors[i], neighbors[j])
	})
	return neighbors
}

// selectCutoff is the range width below which selectK switches from
// partitioning to insertion sort.
const selectCutoff = 12

// selectK partitions a so its k smallest elements under neighborLess
// occupy a[:k] in unspecified order. Median-of-three pivots keep the walk
// deterministic (no RNG) and resistant to sorted inputs. Requires
// 0 < k < len(a).
func selectK(a []Neighbor, k int) {
	lo, hi := 0, len(a) // half-open working range
	for hi-lo > selectCutoff {
		p := partitionNeighbors(a, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p
		}
	}
	insertionSortNeighbors(a, lo, hi)
}

// partitionNeighbors partitions a[lo:hi] around a median-of-three pivot
// and returns the pivot's final position.
func partitionNeighbors(a []Neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if neighborLess(a[mid], a[lo]) {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if neighborLess(a[hi-1], a[mid]) {
		a[hi-1], a[mid] = a[mid], a[hi-1]
		if neighborLess(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if neighborLess(a[j], pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

func insertionSortNeighbors(a []Neighbor, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && neighborLess(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// seenPool recycles the per-query candidate-dedup bitmap. Slots are
// dense, so membership is one bool indexed by slot — no hash map on the
// candidate-collection path.
var seenPool parallel.SlicePool[bool]

// collectLocked appends the deduplicated candidate slots of the query
// whose per-table bucket keys are keys — the exact buckets plus
// single-bit-flip probe buckets — as Neighbor{ID: slot} entries onto
// dst. seen must be a zeroed bitmap of at least Len bools; it is left
// with the collected slots set. Callers must hold at least a read lock.
func (ix *Index) collectLocked(keys []uint64, seen []bool, dst []Neighbor) []Neighbor {
	for t := range ix.tables {
		key := keys[t]
		for _, s := range ix.tables[t][key] {
			if !seen[s] {
				seen[s] = true
				dst = append(dst, Neighbor{ID: s})
			}
		}
		for p := 0; p < ix.cfg.Probes && p < ix.cfg.Bits; p++ {
			for _, s := range ix.tables[t][key^(1<<uint(p))] {
				if !seen[s] {
					seen[s] = true
					dst = append(dst, Neighbor{ID: s})
				}
			}
		}
	}
	return dst
}

// Query returns up to k approximate nearest neighbours of v, ranked by
// exact cosine distance over the union of candidate buckets across all
// tables (plus multi-probe buckets differing by one bit). With PreRank
// armed the candidate set is first cut to PreRank·k by sketch Hamming
// distance. Per-table hashing and candidate ranking run on the worker
// pool; candidate scratch is pooled, so only the top-k copy escapes.
func (ix *Index) Query(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	keys := keyPool.Get(ix.cfg.Tables)
	ix.hashAll(v, keys)

	ix.mu.RLock()
	seen := seenPool.Get(len(ix.slotIDs))
	scratch := neighborPool.Get(0)
	neighbors := ix.collectLocked(keys, seen, scratch[:0])
	neighbors = ix.preRankLocked(keys, neighbors, k)
	ix.rankLocked(v, neighbors)
	ix.mu.RUnlock()
	top := sortAndTrim(neighbors, k)
	out := make([]Neighbor, len(top))
	copy(out, top)
	if cap(neighbors) > cap(scratch) {
		scratch = neighbors
	}
	neighborPool.Put(scratch)
	seenPool.Put(seen)
	keyPool.Put(keys)
	return out
}

// neighborPool recycles candidate-ranking buffers across QueryBatch
// calls, so a steady stream of batches allocates only the trimmed result
// slices that escape to the caller.
var neighborPool parallel.SlicePool[Neighbor]

// QueryBatch answers several queries in one call: every query is hashed
// up front on the bulk-hashing path (outside the lock), then candidates
// for the whole batch are collected and ranked under a single read-lock
// acquisition, with the candidate buffer reused across queries. Each
// result is identical to Query on the same vector — the (distance, id)
// total-order sort makes ranking independent of candidate collection
// order — so a batch of one degenerates to Query.
func (ix *Index) QueryBatch(vs [][]float32, k int) [][]Neighbor {
	out := make([][]Neighbor, len(vs))
	if len(vs) == 0 || k <= 0 {
		return out
	}
	for _, v := range vs {
		ix.checkDim(v)
	}
	// Bulk hashing: one key slab for the whole batch, fanned out over
	// queries when the total multiply-add count clears the same cutoff as
	// hashAll (per-query work times the batch width).
	nt := ix.cfg.Tables
	keys := keyPool.Get(nt * len(vs))
	workers := ix.cfg.Workers
	if len(vs)*nt*ix.cfg.Bits*ix.cfg.Dim < 1<<17 {
		workers = 1
	}
	parallel.For(workers, len(vs), 1, func(_, start, end int) {
		for q := start; q < end; q++ {
			for t := 0; t < nt; t++ {
				keys[q*nt+t] = ix.Hash(t, vs[q])
			}
		}
	})

	ix.mu.RLock()
	seen := seenPool.Get(len(ix.slotIDs))
	scratch := neighborPool.Get(0)
	for q, v := range vs {
		neighbors := ix.collectLocked(keys[q*nt:(q+1)*nt], seen, scratch[:0])
		if cap(neighbors) > cap(scratch) {
			scratch = neighbors
		}
		// Reset only the bits this query set (O(candidates), not O(Len))
		// before ranking rewrites the slots to public ids.
		for _, nb := range neighbors {
			seen[nb.ID] = false
		}
		neighbors = ix.preRankLocked(keys[q*nt:(q+1)*nt], neighbors, k)
		ix.rankLocked(v, neighbors)
		neighbors = sortAndTrim(neighbors, k)
		out[q] = append([]Neighbor(nil), neighbors...)
	}
	ix.mu.RUnlock()
	neighborPool.Put(scratch)
	seenPool.Put(seen)
	keyPool.Put(keys)
	return out
}

// ExactNN returns the true k nearest neighbours by brute force — the
// accuracy baseline LSH recall is measured against. The distance scan
// streams the arena in slot order (row-parallel on the worker pool) into
// a pooled candidate buffer; only the trimmed top-k escapes.
func (ix *Index) ExactNN(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	scratch := neighborPool.Get(len(ix.slotIDs))
	ix.rankAllLocked(v, scratch)
	ix.mu.RUnlock()
	top := sortAndTrim(scratch, k)
	out := make([]Neighbor, len(top))
	copy(out, top)
	neighborPool.Put(scratch)
	return out
}
