// Package lsh implements locality-sensitive hashing for approximate
// nearest-neighbour search over Fisher vectors — scAtteR's lsh service.
// It uses random-hyperplane (signed random projection) hashing: each of
// several tables hashes a vector to a bit string of hyperplane signs, and
// queries probe the exact bucket plus optional single-bit-flip buckets
// (multi-probe) before ranking candidates by exact cosine distance.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Neighbor is a query result: a stored item and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64 // cosine distance in [0, 2]
}

// Config parameterizes an Index.
type Config struct {
	Dim    int   // vector dimensionality (required)
	Tables int   // number of hash tables (default 8)
	Bits   int   // hyperplanes per table, <= 64 (default 16)
	Probes int   // additional single-bit-flip probes per table (default 2)
	Seed   int64 // RNG seed for hyperplanes (default 1)
}

// Index is a multi-table random-hyperplane LSH index. It is safe for
// concurrent use: lookups take a read lock, Add takes a write lock.
type Index struct {
	cfg    Config
	planes [][][]float32 // [table][bit][dim]

	mu      sync.RWMutex
	tables  []map[uint64][]int
	vectors map[int][]float32
}

// New creates an empty index. It panics on a non-positive dimension or
// Bits > 64, which are programming errors.
func New(cfg Config) *Index {
	if cfg.Dim <= 0 {
		panic(fmt.Sprintf("lsh: invalid dimension %d", cfg.Dim))
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 16
	}
	if cfg.Bits > 64 {
		panic(fmt.Sprintf("lsh: bits %d > 64", cfg.Bits))
	}
	if cfg.Probes < 0 {
		cfg.Probes = 0
	} else if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ix := &Index{
		cfg:     cfg,
		vectors: make(map[int][]float32),
	}
	for t := 0; t < cfg.Tables; t++ {
		bits := make([][]float32, cfg.Bits)
		for b := range bits {
			plane := make([]float32, cfg.Dim)
			for d := range plane {
				plane[d] = float32(rng.NormFloat64())
			}
			bits[b] = plane
		}
		ix.planes = append(ix.planes, bits)
		ix.tables = append(ix.tables, make(map[uint64][]int))
	}
	return ix
}

// Len returns the number of stored items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vectors)
}

// Hash returns the bucket key of v in the given table.
func (ix *Index) Hash(table int, v []float32) uint64 {
	ix.checkDim(v)
	var key uint64
	for b, plane := range ix.planes[table] {
		var dot float64
		for d, x := range v {
			dot += float64(x) * float64(plane[d])
		}
		if dot >= 0 {
			key |= 1 << uint(b)
		}
	}
	return key
}

func (ix *Index) checkDim(v []float32) {
	if len(v) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: vector dim %d, want %d", len(v), ix.cfg.Dim))
	}
}

// Add stores vector v under id, replacing any previous vector with the
// same id. The vector is copied.
func (ix *Index) Add(id int, v []float32) {
	ix.checkDim(v)
	cp := append([]float32(nil), v...)

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.vectors[id]; ok {
		ix.removeLocked(id, old)
	}
	ix.vectors[id] = cp
	for t := range ix.tables {
		key := ix.Hash(t, cp)
		ix.tables[t][key] = append(ix.tables[t][key], id)
	}
}

// Remove deletes id from the index. Removing an absent id is a no-op.
func (ix *Index) Remove(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if v, ok := ix.vectors[id]; ok {
		ix.removeLocked(id, v)
		delete(ix.vectors, id)
	}
}

func (ix *Index) removeLocked(id int, v []float32) {
	for t := range ix.tables {
		key := ix.Hash(t, v)
		bucket := ix.tables[t][key]
		for i, bid := range bucket {
			if bid == id {
				ix.tables[t][key] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.tables[t][key]) == 0 {
			delete(ix.tables[t], key)
		}
	}
}

// CosineDistance returns 1 - cos(a, b), in [0, 2]. Zero vectors are at
// distance 1 from everything (undefined angle treated as orthogonal).
func CosineDistance(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Query returns up to k approximate nearest neighbours of v, ranked by
// exact cosine distance over the union of candidate buckets across all
// tables (plus multi-probe buckets differing by one bit).
func (ix *Index) Query(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	seen := make(map[int]struct{})
	for t := range ix.tables {
		key := ix.Hash(t, v)
		for _, id := range ix.tables[t][key] {
			seen[id] = struct{}{}
		}
		for p := 0; p < ix.cfg.Probes && p < ix.cfg.Bits; p++ {
			probe := key ^ (1 << uint(p))
			for _, id := range ix.tables[t][probe] {
				seen[id] = struct{}{}
			}
		}
	}
	neighbors := make([]Neighbor, 0, len(seen))
	for id := range seen {
		neighbors = append(neighbors, Neighbor{ID: id, Dist: CosineDistance(v, ix.vectors[id])})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Dist != neighbors[j].Dist {
			return neighbors[i].Dist < neighbors[j].Dist
		}
		return neighbors[i].ID < neighbors[j].ID
	})
	if len(neighbors) > k {
		neighbors = neighbors[:k]
	}
	return neighbors
}

// ExactNN returns the true k nearest neighbours by brute force — the
// accuracy baseline LSH recall is measured against.
func (ix *Index) ExactNN(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	neighbors := make([]Neighbor, 0, len(ix.vectors))
	for id, stored := range ix.vectors {
		neighbors = append(neighbors, Neighbor{ID: id, Dist: CosineDistance(v, stored)})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Dist != neighbors[j].Dist {
			return neighbors[i].Dist < neighbors[j].Dist
		}
		return neighbors[i].ID < neighbors[j].ID
	})
	if len(neighbors) > k {
		neighbors = neighbors[:k]
	}
	return neighbors
}
