// Package lsh implements locality-sensitive hashing for approximate
// nearest-neighbour search over Fisher vectors — scAtteR's lsh service.
// It uses random-hyperplane (signed random projection) hashing: each of
// several tables hashes a vector to a bit string of hyperplane signs, and
// queries probe the exact bucket plus optional single-bit-flip buckets
// (multi-probe) before ranking candidates by exact cosine distance.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// Neighbor is a query result: a stored item and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64 // cosine distance in [0, 2]
}

// Config parameterizes an Index.
type Config struct {
	Dim    int   // vector dimensionality (required)
	Tables int   // number of hash tables (default 8)
	Bits   int   // hyperplanes per table, <= 64 (default 16)
	Probes int   // additional single-bit-flip probes per table (default 2)
	Seed   int64 // RNG seed for hyperplanes (default 1)
	// Workers bounds the worker pool for table construction, bulk
	// hashing, and candidate ranking. Zero uses GOMAXPROCS; one forces
	// the serial path. Hash tables and query results are identical at
	// any setting.
	Workers int
}

// Index is a multi-table random-hyperplane LSH index. It is safe for
// concurrent use: lookups take a read lock, Add takes a write lock.
type Index struct {
	cfg    Config
	planes [][][]float32 // [table][bit][dim]

	mu      sync.RWMutex
	tables  []map[uint64][]int
	vectors map[int][]float32
}

// New creates an empty index. It panics on a non-positive dimension or
// Bits > 64, which are programming errors.
func New(cfg Config) *Index {
	if cfg.Dim <= 0 {
		panic(fmt.Sprintf("lsh: invalid dimension %d", cfg.Dim))
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 16
	}
	if cfg.Bits > 64 {
		panic(fmt.Sprintf("lsh: bits %d > 64", cfg.Bits))
	}
	if cfg.Probes < 0 {
		cfg.Probes = 0
	} else if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ix := &Index{
		cfg:     cfg,
		planes:  make([][][]float32, cfg.Tables),
		tables:  make([]map[uint64][]int, cfg.Tables),
		vectors: make(map[int][]float32),
	}
	// Each table draws its hyperplanes from its own rand.Rand seeded
	// deterministically from the config seed, so construction can fan out
	// across the pool and the planes of table t never depend on how many
	// other tables exist, what order they are built in, or any other
	// package's use of the global math/rand source.
	parallel.For(cfg.Workers, cfg.Tables, 1, func(_, start, end int) {
		for t := start; t < end; t++ {
			rng := rand.New(rand.NewSource(tableSeed(cfg.Seed, t)))
			bits := make([][]float32, cfg.Bits)
			for b := range bits {
				plane := make([]float32, cfg.Dim)
				for d := range plane {
					plane[d] = float32(rng.NormFloat64())
				}
				bits[b] = plane
			}
			ix.planes[t] = bits
			ix.tables[t] = make(map[uint64][]int)
		}
	})
	return ix
}

// tableSeed derives an independent per-table seed from the index seed via
// a splitmix64 step, keeping per-table RNG streams decorrelated.
func tableSeed(seed int64, table int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(table+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Tables returns the number of hash tables (after defaulting).
func (ix *Index) Tables() int { return ix.cfg.Tables }

// Dim returns the configured vector dimensionality.
func (ix *Index) Dim() int { return ix.cfg.Dim }

// Config returns the index's effective configuration (after
// defaulting). Two indexes built from equal configs draw identical
// hyperplanes — the property sharding relies on for bit-identity.
func (ix *Index) Config() Config { return ix.cfg }

// Len returns the number of stored items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vectors)
}

// Hash returns the bucket key of v in the given table.
func (ix *Index) Hash(table int, v []float32) uint64 {
	ix.checkDim(v)
	var key uint64
	for b, plane := range ix.planes[table] {
		var dot float64
		for d, x := range v {
			dot += float64(x) * float64(plane[d])
		}
		if dot >= 0 {
			key |= 1 << uint(b)
		}
	}
	return key
}

func (ix *Index) checkDim(v []float32) {
	if len(v) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: vector dim %d, want %d", len(v), ix.cfg.Dim))
	}
}

// keyPool recycles per-call bucket-key buffers (one key per table).
var keyPool parallel.SlicePool[uint64]

// hashAll computes the bucket key of v in every table into keys (length
// Tables). Hashing reads only the immutable hyperplanes, so it runs
// outside the index lock; it fans out across tables only when the total
// multiply-add count is large enough to amortize the handoff (a full
// hash below the cutoff costs on the order of the fan-out itself).
func (ix *Index) hashAll(v []float32, keys []uint64) {
	workers := ix.cfg.Workers
	if ix.cfg.Tables*ix.cfg.Bits*ix.cfg.Dim < 1<<17 {
		workers = 1
	}
	parallel.For(workers, ix.cfg.Tables, 1, func(_, start, end int) {
		for t := start; t < end; t++ {
			keys[t] = ix.Hash(t, v)
		}
	})
}

// Add stores vector v under id, replacing any previous vector with the
// same id. The vector is copied. Per-table hashing happens outside the
// write lock, on the worker pool for high-dimensional indexes.
func (ix *Index) Add(id int, v []float32) {
	ix.checkDim(v)
	cp := append([]float32(nil), v...)
	keys := keyPool.Get(ix.cfg.Tables)
	ix.hashAll(cp, keys)

	ix.mu.Lock()
	if old, ok := ix.vectors[id]; ok {
		ix.removeLocked(id, old)
	}
	ix.vectors[id] = cp
	for t := range ix.tables {
		ix.tables[t][keys[t]] = append(ix.tables[t][keys[t]], id)
	}
	ix.mu.Unlock()
	keyPool.Put(keys)
}

// Remove deletes id from the index. Removing an absent id is a no-op.
func (ix *Index) Remove(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if v, ok := ix.vectors[id]; ok {
		ix.removeLocked(id, v)
		delete(ix.vectors, id)
	}
}

func (ix *Index) removeLocked(id int, v []float32) {
	keys := keyPool.Get(ix.cfg.Tables)
	ix.hashAll(v, keys)
	defer keyPool.Put(keys)
	for t := range ix.tables {
		key := keys[t]
		bucket := ix.tables[t][key]
		for i, bid := range bucket {
			if bid == id {
				ix.tables[t][key] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.tables[t][key]) == 0 {
			delete(ix.tables[t], key)
		}
	}
}

// CosineDistance returns 1 - cos(a, b), in [0, 2]. Zero vectors are at
// distance 1 from everything (undefined angle treated as orthogonal).
func CosineDistance(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// rankGrain is the candidate granularity of parallel distance ranking.
const rankGrain = 32

// rankLocked fills Dist for every candidate neighbor. Each distance is an
// independent exact computation, so the fan-out cannot change results.
// Callers must hold at least a read lock (workers read ix.vectors).
func (ix *Index) rankLocked(v []float32, neighbors []Neighbor) {
	parallel.For(ix.cfg.Workers, len(neighbors), rankGrain, func(_, start, end int) {
		for i := start; i < end; i++ {
			neighbors[i].Dist = CosineDistance(v, ix.vectors[neighbors[i].ID])
		}
	})
}

// neighborLess is the (distance, id) comparator used everywhere results
// are ranked. Distinct IDs make it a strict total order, so any ranking
// built on it is deterministic regardless of candidate collection order.
func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// sortAndTrim orders neighbors by (distance, id) and truncates to k.
// When the candidate set is larger than k it first quickselect-partitions
// the k smallest to the front — O(n) expected instead of O(n log n) —
// and sorts only that prefix. The comparator is a total order, so the set
// of k smallest and its sorted order are both unique: the output is
// identical to a full sort followed by truncation.
func sortAndTrim(neighbors []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return neighbors[:0]
	}
	if len(neighbors) > k {
		selectK(neighbors, k)
		neighbors = neighbors[:k]
	}
	sort.Slice(neighbors, func(i, j int) bool {
		return neighborLess(neighbors[i], neighbors[j])
	})
	return neighbors
}

// selectCutoff is the range width below which selectK switches from
// partitioning to insertion sort.
const selectCutoff = 12

// selectK partitions a so its k smallest elements under neighborLess
// occupy a[:k] in unspecified order. Median-of-three pivots keep the walk
// deterministic (no RNG) and resistant to sorted inputs. Requires
// 0 < k < len(a).
func selectK(a []Neighbor, k int) {
	lo, hi := 0, len(a) // half-open working range
	for hi-lo > selectCutoff {
		p := partitionNeighbors(a, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p
		}
	}
	insertionSortNeighbors(a, lo, hi)
}

// partitionNeighbors partitions a[lo:hi] around a median-of-three pivot
// and returns the pivot's final position.
func partitionNeighbors(a []Neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if neighborLess(a[mid], a[lo]) {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if neighborLess(a[hi-1], a[mid]) {
		a[hi-1], a[mid] = a[mid], a[hi-1]
		if neighborLess(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if neighborLess(a[j], pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

func insertionSortNeighbors(a []Neighbor, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && neighborLess(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Query returns up to k approximate nearest neighbours of v, ranked by
// exact cosine distance over the union of candidate buckets across all
// tables (plus multi-probe buckets differing by one bit). Per-table
// hashing and candidate ranking run on the worker pool.
func (ix *Index) Query(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	keys := keyPool.Get(ix.cfg.Tables)
	ix.hashAll(v, keys)

	ix.mu.RLock()
	seen := make(map[int]struct{})
	for t := range ix.tables {
		key := keys[t]
		for _, id := range ix.tables[t][key] {
			seen[id] = struct{}{}
		}
		for p := 0; p < ix.cfg.Probes && p < ix.cfg.Bits; p++ {
			probe := key ^ (1 << uint(p))
			for _, id := range ix.tables[t][probe] {
				seen[id] = struct{}{}
			}
		}
	}
	neighbors := make([]Neighbor, 0, len(seen))
	for id := range seen {
		neighbors = append(neighbors, Neighbor{ID: id})
	}
	ix.rankLocked(v, neighbors)
	ix.mu.RUnlock()
	keyPool.Put(keys)
	return sortAndTrim(neighbors, k)
}

// neighborPool recycles candidate-ranking buffers across QueryBatch
// calls, so a steady stream of batches allocates only the trimmed result
// slices that escape to the caller.
var neighborPool parallel.SlicePool[Neighbor]

// QueryBatch answers several queries in one call: every query is hashed
// up front on the bulk-hashing path (outside the lock), then candidates
// for the whole batch are collected and ranked under a single read-lock
// acquisition, with the candidate buffer reused across queries. Each
// result is identical to Query on the same vector — the (distance, id)
// total-order sort makes ranking independent of candidate collection
// order — so a batch of one degenerates to Query.
func (ix *Index) QueryBatch(vs [][]float32, k int) [][]Neighbor {
	out := make([][]Neighbor, len(vs))
	if len(vs) == 0 || k <= 0 {
		return out
	}
	for _, v := range vs {
		ix.checkDim(v)
	}
	// Bulk hashing: one key slab for the whole batch, fanned out over
	// queries when the total multiply-add count clears the same cutoff as
	// hashAll (per-query work times the batch width).
	nt := ix.cfg.Tables
	keys := keyPool.Get(nt * len(vs))
	workers := ix.cfg.Workers
	if len(vs)*nt*ix.cfg.Bits*ix.cfg.Dim < 1<<17 {
		workers = 1
	}
	parallel.For(workers, len(vs), 1, func(_, start, end int) {
		for q := start; q < end; q++ {
			for t := 0; t < nt; t++ {
				keys[q*nt+t] = ix.Hash(t, vs[q])
			}
		}
	})

	seen := make(map[int]struct{})
	scratch := neighborPool.Get(0)
	ix.mu.RLock()
	for q, v := range vs {
		clear(seen)
		for t := range ix.tables {
			key := keys[q*nt+t]
			for _, id := range ix.tables[t][key] {
				seen[id] = struct{}{}
			}
			for p := 0; p < ix.cfg.Probes && p < ix.cfg.Bits; p++ {
				probe := key ^ (1 << uint(p))
				for _, id := range ix.tables[t][probe] {
					seen[id] = struct{}{}
				}
			}
		}
		neighbors := scratch[:0]
		for id := range seen {
			neighbors = append(neighbors, Neighbor{ID: id})
		}
		ix.rankLocked(v, neighbors)
		neighbors = sortAndTrim(neighbors, k)
		out[q] = append([]Neighbor(nil), neighbors...)
		if cap(neighbors) > cap(scratch) {
			scratch = neighbors[:0]
		}
	}
	ix.mu.RUnlock()
	neighborPool.Put(scratch)
	keyPool.Put(keys)
	return out
}

// ExactNN returns the true k nearest neighbours by brute force — the
// accuracy baseline LSH recall is measured against. The distance scan is
// row-parallel.
func (ix *Index) ExactNN(v []float32, k int) []Neighbor {
	ix.checkDim(v)
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	neighbors := make([]Neighbor, 0, len(ix.vectors))
	for id := range ix.vectors {
		neighbors = append(neighbors, Neighbor{ID: id})
	}
	ix.rankLocked(v, neighbors)
	ix.mu.RUnlock()
	return sortAndTrim(neighbors, k)
}
