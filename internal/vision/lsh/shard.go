package lsh

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// ShardOf assigns a reference ID to one of shards partitions by a
// splitmix64 step of the ID. The mix spreads sequential IDs (the common
// enumeration order of reference objects) uniformly across shards, so a
// contiguous ID range never lands on one shard.
func ShardOf(id, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := uint64(int64(id)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// ShardConfig parameterizes a ShardedIndex.
type ShardConfig struct {
	// Index configures every per-shard Index. All shards share the same
	// Config — in particular the same Seed, so every shard draws the
	// identical hyperplanes and a vector hashes to the same bucket key in
	// its shard as it would in a monolithic index. That is what makes the
	// scatter/gather result bit-identical to the single-index answer.
	Index Config

	Shards      int // hash-space partitions (default 4)
	Replication int // replicas per shard (default 1)

	// Workers bounds the scatter fan-out across shards. Zero uses
	// GOMAXPROCS; one forces the serial path. Results are identical at
	// any setting.
	Workers int
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	return c
}

// ShardStats counts scatter/gather activity on a ShardedIndex.
type ShardStats struct {
	Queries      uint64 // gather operations (single queries and batch members)
	ShardQueries uint64 // per-shard fan-out legs issued
}

// topology is the swappable shard layout: replicas[s][r] is replica r of
// shard s. Every Index in one topology is built from the same Config.
type topology struct {
	replicas [][]*Index
	epoch    uint64 // bumped on every Resize; part of the layout signature
}

// ShardedIndex partitions a reference set across independent LSH shards
// by splitmix64 of the reference ID and answers queries by scatter/gather:
// every shard ranks its own candidates and the per-shard top-k lists are
// merged under the (distance, id) total order into a global top-k.
//
// Because all shards share identical hyperplanes, the union of per-shard
// candidate sets equals the monolithic candidate set exactly, and any
// member of the global top-k is necessarily within the top-k of its own
// shard (it beats all but fewer than k items globally, hence all but
// fewer than k in its shard). The merge therefore returns bit-identical
// results to a monolithic Index over the same reference set, while each
// shard ranks only ~1/S of the candidates.
//
// It is safe for concurrent use, including Add/Remove during queries and
// Resize during both.
type ShardedIndex struct {
	cfg ShardConfig

	mu   sync.RWMutex // guards topo swaps; per-Index locks guard contents
	topo *topology

	picker  atomic.Pointer[func(shard, replicas int) int]
	rr      atomic.Uint64
	queries atomic.Uint64
	legs    atomic.Uint64
}

// NewSharded creates an empty sharded index: Shards × Replication
// per-shard indexes, all built from the identical cfg.Index.
func NewSharded(cfg ShardConfig) *ShardedIndex {
	cfg = cfg.withDefaults()
	sx := &ShardedIndex{cfg: cfg}
	sx.topo = sx.buildTopology(cfg.Shards, 1)
	return sx
}

// NewShardedFrom builds a sharded index holding exactly the contents of
// src, partitioned into cfg.Shards shards. cfg.Index is ignored: the
// shards inherit src's configuration so hyperplanes (and therefore
// bucket keys) match the source index bit for bit.
func NewShardedFrom(src *Index, cfg ShardConfig) *ShardedIndex {
	cfg = cfg.withDefaults()
	cfg.Index = src.Config()
	sx := &ShardedIndex{cfg: cfg}
	sx.topo = sx.buildTopology(cfg.Shards, 1)
	src.mu.RLock()
	src.eachLocked(func(id int, v []float32) {
		sx.addLocked(sx.topo, id, v)
	})
	src.mu.RUnlock()
	return sx
}

func (sx *ShardedIndex) buildTopology(shards int, epoch uint64) *topology {
	topo := &topology{replicas: make([][]*Index, shards), epoch: epoch}
	for s := range topo.replicas {
		reps := make([]*Index, sx.cfg.Replication)
		for r := range reps {
			reps[r] = New(sx.cfg.Index)
		}
		topo.replicas[s] = reps
	}
	return topo
}

// addLocked inserts id into every replica of its shard in topo. Callers
// must prevent a concurrent topology swap (hold sx.mu or own topo).
func (sx *ShardedIndex) addLocked(topo *topology, id int, v []float32) {
	for _, ix := range topo.replicas[ShardOf(id, len(topo.replicas))] {
		ix.Add(id, v)
	}
}

// Replica returns one replica index of one shard — the partition a
// shard server hands to the serving layer when this process hosts only
// that shard. It panics on out-of-range coordinates.
func (sx *ShardedIndex) Replica(shard, replica int) *Index {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return sx.topo.replicas[shard][replica]
}

// Shards returns the current number of shards.
func (sx *ShardedIndex) Shards() int {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return len(sx.topo.replicas)
}

// Replication returns the replicas kept per shard.
func (sx *ShardedIndex) Replication() int { return sx.cfg.Replication }

// SetPreRank retunes the Hamming pre-ranking budget on every replica of
// every shard (see Config.PreRank), and records it in the config future
// topologies are built from, so a later Resize keeps the setting. Note
// the recall contract is per shard: each shard exactly re-ranks its own
// top PreRank·k, so the gather sees at least as many exactly-ranked
// candidates as a monolithic index at the same setting — sharded recall
// is never below monolithic recall. Zero restores exact mode, which is
// bit-identical to the monolithic index.
func (sx *ShardedIndex) SetPreRank(n int) {
	if n < 0 {
		n = 0
	}
	sx.mu.Lock()
	defer sx.mu.Unlock()
	sx.cfg.Index.PreRank = n
	for _, reps := range sx.topo.replicas {
		for _, ix := range reps {
			ix.SetPreRank(n)
		}
	}
}

// Tables returns the number of hash tables — identical in every shard.
func (sx *ShardedIndex) Tables() int { return sx.anyIndex().Tables() }

// Hash returns the bucket key of v in the given table. All shards share
// the same hyperplanes, so any replica answers for the whole index.
func (sx *ShardedIndex) Hash(table int, v []float32) uint64 {
	return sx.anyIndex().Hash(table, v)
}

func (sx *ShardedIndex) anyIndex() *Index {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return sx.topo.replicas[0][0]
}

// LayoutSignature fingerprints the shard layout: shard count, replication
// factor, and the resize epoch. Recognition-cache keys fold it in so an
// entry cached under one layout can never be served under another.
func (sx *ShardedIndex) LayoutSignature() uint64 {
	sx.mu.RLock()
	shards, epoch := len(sx.topo.replicas), sx.topo.epoch
	sx.mu.RUnlock()
	z := uint64(shards)<<40 ^ uint64(sx.cfg.Replication)<<32 ^ epoch
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetReplicaPicker installs the per-shard replica chooser used by the
// scatter path — typically backed by internal/obs/routestats health
// windows so degraded replicas shed query load. A nil picker, an index
// out of range, or a negative return falls back to round-robin.
func (sx *ShardedIndex) SetReplicaPicker(pick func(shard, replicas int) int) {
	if pick == nil {
		sx.picker.Store(nil)
		return
	}
	sx.picker.Store(&pick)
}

// replica chooses which replica of shard s serves this query.
func (sx *ShardedIndex) replica(reps []*Index, s int) *Index {
	if len(reps) == 1 {
		return reps[0]
	}
	if p := sx.picker.Load(); p != nil {
		if i := (*p)(s, len(reps)); i >= 0 && i < len(reps) {
			return reps[i]
		}
	}
	return reps[int(sx.rr.Add(1))%len(reps)]
}

// Stats returns cumulative scatter/gather counters.
func (sx *ShardedIndex) Stats() ShardStats {
	return ShardStats{
		Queries:      sx.queries.Load(),
		ShardQueries: sx.legs.Load(),
	}
}

// Add stores vector v under id in every replica of its shard, replacing
// any previous vector with the same id. Online: no rebuild, concurrent
// queries keep answering.
func (sx *ShardedIndex) Add(id int, v []float32) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	sx.addLocked(sx.topo, id, v)
}

// Remove deletes id from its shard. Removing an absent id is a no-op.
func (sx *ShardedIndex) Remove(id int) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	for _, ix := range sx.topo.replicas[ShardOf(id, len(sx.topo.replicas))] {
		ix.Remove(id)
	}
}

// Len returns the number of stored items (summed over shards; replicas
// within a shard hold identical contents).
func (sx *ShardedIndex) Len() int {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	n := 0
	for _, reps := range sx.topo.replicas {
		n += reps[0].Len()
	}
	return n
}

// Resize rebalances the reference set onto a new shard count without
// losing concurrent queries: the new topology is fully populated before
// a single pointer swap makes it live. Add/Remove are held out for the
// duration (they take the read side of the topology lock), so no ID is
// orphaned or duplicated across the swap. Resize to the current count is
// a no-op.
func (sx *ShardedIndex) Resize(shards int) {
	if shards <= 0 {
		panic(fmt.Sprintf("lsh: invalid shard count %d", shards))
	}
	sx.mu.Lock()
	defer sx.mu.Unlock()
	if shards == len(sx.topo.replicas) {
		return
	}
	next := sx.buildTopology(shards, sx.topo.epoch+1)
	for _, reps := range sx.topo.replicas {
		src := reps[0]
		src.mu.RLock()
		src.eachLocked(func(id int, v []float32) {
			sx.addLocked(next, id, v)
		})
		src.mu.RUnlock()
	}
	sx.topo = next
}

// snapshot pins the current topology for one gather operation.
func (sx *ShardedIndex) snapshot() *topology {
	sx.mu.RLock()
	topo := sx.topo
	sx.mu.RUnlock()
	return topo
}

// listsPool recycles the per-gather slice of per-shard result lists.
var listsPool parallel.SlicePool[[]Neighbor]

// Query returns up to k approximate nearest neighbours of v: the query
// is scattered to one replica of every shard, each shard ranks only its
// own candidates, and the per-shard top-k lists are merged into a global
// top-k. Bit-identical to Index.Query over the same reference set.
func (sx *ShardedIndex) Query(v []float32, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	topo := sx.snapshot()
	ns := len(topo.replicas)
	sx.queries.Add(1)
	sx.legs.Add(uint64(ns))
	lists := listsPool.Get(ns)
	parallel.For(sx.cfg.Workers, ns, 1, func(_, start, end int) {
		for s := start; s < end; s++ {
			lists[s] = sx.replica(topo.replicas[s], s).Query(v, k)
		}
	})
	out := MergeNeighbors(make([]Neighbor, 0, k), lists, k)
	listsPool.Put(lists)
	return out
}

// QueryBatch answers several queries in one gather: the whole batch is
// scattered once per shard (amortizing per-shard hashing and locking via
// Index.QueryBatch), then each query's per-shard lists are merged. Every
// result equals Query on the same vector.
func (sx *ShardedIndex) QueryBatch(vs [][]float32, k int) [][]Neighbor {
	out := make([][]Neighbor, len(vs))
	if len(vs) == 0 || k <= 0 {
		return out
	}
	topo := sx.snapshot()
	ns := len(topo.replicas)
	sx.queries.Add(uint64(len(vs)))
	sx.legs.Add(uint64(ns))
	perShard := make([][][]Neighbor, ns)
	parallel.For(sx.cfg.Workers, ns, 1, func(_, start, end int) {
		for s := start; s < end; s++ {
			perShard[s] = sx.replica(topo.replicas[s], s).QueryBatch(vs, k)
		}
	})
	lists := listsPool.Get(ns)
	for q := range vs {
		for s := 0; s < ns; s++ {
			lists[s] = perShard[s][q]
		}
		out[q] = MergeNeighbors(make([]Neighbor, 0, k), lists, k)
	}
	listsPool.Put(lists)
	return out
}

// ExactNN returns the true k nearest neighbours by brute force, gathered
// across shards. Identical to Index.ExactNN on the same reference set.
func (sx *ShardedIndex) ExactNN(v []float32, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	topo := sx.snapshot()
	ns := len(topo.replicas)
	lists := listsPool.Get(ns)
	parallel.For(sx.cfg.Workers, ns, 1, func(_, start, end int) {
		for s := start; s < end; s++ {
			lists[s] = sx.replica(topo.replicas[s], s).ExactNN(v, k)
		}
	})
	out := MergeNeighbors(make([]Neighbor, 0, k), lists, k)
	listsPool.Put(lists)
	return out
}

// mergeCursorPool recycles the k-way merge cursor scratch for fan-outs
// wider than the stack cursor array.
var mergeCursorPool parallel.SlicePool[int]

// mergeStackCursors is the fan-out width served by a stack-allocated
// cursor array. Deployments rarely exceed 16 shards; wider gathers fall
// back to the pool.
const mergeStackCursors = 16

// MergeNeighbors merges per-shard top-k lists — each already ordered by
// (distance, id) — into a single top-k in the same order, appending into
// dst (reset to length zero first). IDs are unique across shards, so the
// comparator is a strict total order and the merge is deterministic
// regardless of list order. Up to mergeStackCursors lists the cursor
// scratch lives on the stack, so when dst has capacity k the merge does
// not allocate at all — the gather hot path stays allocation-free in
// steady state.
func MergeNeighbors(dst []Neighbor, lists [][]Neighbor, k int) []Neighbor {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	if len(lists) <= mergeStackCursors {
		var curArr [mergeStackCursors]int
		return mergeInto(dst, lists, k, curArr[:len(lists)])
	}
	cur := mergeCursorPool.Get(len(lists))
	dst = mergeInto(dst, lists, k, cur)
	mergeCursorPool.Put(cur)
	return dst
}

func mergeInto(dst []Neighbor, lists [][]Neighbor, k int, cur []int) []Neighbor {
	for len(dst) < k {
		best := -1
		for i, l := range lists {
			if cur[i] >= len(l) {
				continue
			}
			if best < 0 || neighborLess(l[cur[i]], lists[best][cur[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, lists[best][cur[best]])
		cur[best]++
	}
	return dst
}

// GetNeighborScratch returns a pooled, zeroed []Neighbor of length n for
// gather-merge staging; return it with PutNeighborScratch.
func GetNeighborScratch(n int) []Neighbor { return neighborPool.Get(n) }

// PutNeighborScratch returns a buffer obtained from GetNeighborScratch.
func PutNeighborScratch(s []Neighbor) { neighborPool.Put(s) }
