package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var norm float64
	for i := range v {
		x := rng.NormFloat64()
		v[i] = float32(x)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] = float32(float64(v[i]) / norm)
	}
	return v
}

func perturb(rng *rand.Rand, v []float32, eps float64) []float32 {
	out := make([]float32, len(v))
	var norm float64
	for i := range v {
		x := float64(v[i]) + rng.NormFloat64()*eps
		out[i] = float32(x)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i := range out {
		out[i] = float32(float64(out[i]) / norm)
	}
	return out
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{{Dim: 0}, {Dim: -1}, {Dim: 4, Bits: 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAddQueryExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix := New(Config{Dim: 16, Seed: 1})
	vecs := make([][]float32, 50)
	for i := range vecs {
		vecs[i] = randomUnit(rng, 16)
		ix.Add(i, vecs[i])
	}
	if ix.Len() != 50 {
		t.Fatalf("Len = %d, want 50", ix.Len())
	}
	// Querying with a stored vector must return it first at distance ~0.
	for i := 0; i < 10; i++ {
		res := ix.Query(vecs[i], 3)
		if len(res) == 0 {
			t.Fatalf("query %d returned nothing", i)
		}
		if res[0].ID != i {
			t.Errorf("query %d: top result = %d", i, res[0].ID)
		}
		if res[0].Dist > 1e-6 {
			t.Errorf("query %d: self distance = %v", i, res[0].Dist)
		}
	}
}

func TestQueryRanksByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := New(Config{Dim: 8, Seed: 2})
	for i := 0; i < 100; i++ {
		ix.Add(i, randomUnit(rng, 8))
	}
	res := ix.Query(randomUnit(rng, 8), 20)
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results not sorted at %d: %v < %v", i, res[i].Dist, res[i-1].Dist)
		}
	}
}

func TestRecallAgainstExact(t *testing.T) {
	// LSH with a healthy table/probe budget should find the true nearest
	// neighbour most of the time for clustered data.
	rng := rand.New(rand.NewSource(3))
	ix := New(Config{Dim: 32, Tables: 12, Bits: 10, Probes: 3, Seed: 3})
	base := make([][]float32, 20)
	id := 0
	for i := range base {
		base[i] = randomUnit(rng, 32)
		for j := 0; j < 10; j++ {
			ix.Add(id, perturb(rng, base[i], 0.05))
			id++
		}
	}
	hits := 0
	const queries = 50
	for q := 0; q < queries; q++ {
		query := perturb(rng, base[q%len(base)], 0.05)
		exact := ix.ExactNN(query, 1)
		approx := ix.Query(query, 1)
		if len(approx) > 0 && len(exact) > 0 && approx[0].ID == exact[0].ID {
			hits++
		}
	}
	if recall := float64(hits) / queries; recall < 0.7 {
		t.Errorf("recall@1 = %v, want >= 0.7", recall)
	}
}

func TestRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ix := New(Config{Dim: 8, Seed: 4})
	v := randomUnit(rng, 8)
	ix.Add(1, v)
	ix.Add(2, randomUnit(rng, 8))
	ix.Remove(1)
	if ix.Len() != 1 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	for _, n := range ix.Query(v, 10) {
		if n.ID == 1 {
			t.Error("removed id still returned by Query")
		}
	}
	ix.Remove(99) // absent: no-op, must not panic
}

func TestAddReplaces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := New(Config{Dim: 8, Seed: 5})
	ix.Add(7, randomUnit(rng, 8))
	v2 := randomUnit(rng, 8)
	ix.Add(7, v2)
	if ix.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", ix.Len())
	}
	res := ix.Query(v2, 1)
	if len(res) != 1 || res[0].ID != 7 || res[0].Dist > 1e-6 {
		t.Errorf("replaced vector not found: %+v", res)
	}
}

func TestAddCopiesVector(t *testing.T) {
	ix := New(Config{Dim: 2, Seed: 6})
	v := []float32{1, 0}
	ix.Add(0, v)
	v[0] = -1 // mutate caller's slice
	res := ix.Query([]float32{1, 0}, 1)
	if len(res) != 1 || res[0].Dist > 1e-6 {
		t.Error("index shares storage with caller's slice")
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if d := CosineDistance(a, b); math.Abs(d-1) > 1e-9 {
		t.Errorf("orthogonal distance = %v, want 1", d)
	}
	if d := CosineDistance(a, a); math.Abs(d) > 1e-9 {
		t.Errorf("self distance = %v, want 0", d)
	}
	c := []float32{-1, 0}
	if d := CosineDistance(a, c); math.Abs(d-2) > 1e-9 {
		t.Errorf("opposite distance = %v, want 2", d)
	}
	z := []float32{0, 0}
	if d := CosineDistance(a, z); d != 1 {
		t.Errorf("zero-vector distance = %v, want 1", d)
	}
}

func TestHashDeterministicAndScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := New(Config{Dim: 16, Seed: 7})
	v := randomUnit(rng, 16)
	h1 := ix.Hash(0, v)
	h2 := ix.Hash(0, v)
	if h1 != h2 {
		t.Error("Hash not deterministic")
	}
	// Positive scaling must not change hyperplane signs.
	scaled := make([]float32, len(v))
	for i := range v {
		scaled[i] = v[i] * 42
	}
	if ix.Hash(0, scaled) != h1 {
		t.Error("Hash changed under positive scaling")
	}
}

func TestQueryZeroK(t *testing.T) {
	ix := New(Config{Dim: 4, Seed: 8})
	ix.Add(0, []float32{1, 0, 0, 0})
	if res := ix.Query([]float32{1, 0, 0, 0}, 0); res != nil {
		t.Errorf("Query k=0 = %v, want nil", res)
	}
	if res := ix.ExactNN([]float32{1, 0, 0, 0}, -1); res != nil {
		t.Errorf("ExactNN k<0 = %v, want nil", res)
	}
}

// Property: hamming distance of hashes grows (weakly) with angle. We test
// the monotone trend statistically: tiny perturbations produce fewer
// flipped bits on average than large ones.
func TestHashLocalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix := New(Config{Dim: 32, Tables: 1, Bits: 64, Seed: 9})
	flips := func(eps float64) float64 {
		total := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			v := randomUnit(rng, 32)
			w := perturb(rng, v, eps)
			x := ix.Hash(0, v) ^ ix.Hash(0, w)
			for ; x != 0; x &= x - 1 {
				total++
			}
		}
		return float64(total) / trials
	}
	small := flips(0.01)
	large := flips(0.5)
	if small >= large {
		t.Errorf("bit flips: eps=0.01 -> %v, eps=0.5 -> %v; want monotone increase", small, large)
	}
}

// Property: Query never returns more than k results, never duplicates IDs,
// and all distances are within [0, 2].
func TestQueryInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ix := New(Config{Dim: 8, Seed: 10})
	for i := 0; i < 60; i++ {
		ix.Add(i, randomUnit(rng, 8))
	}
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw)%10 + 1
		res := ix.Query(randomUnit(r, 8), k)
		if len(res) > k {
			return false
		}
		ids := make(map[int]bool)
		for _, n := range res {
			if ids[n.ID] || n.Dist < -1e-9 || n.Dist > 2+1e-9 {
				return false
			}
			ids[n.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Regression test for hyperplane seeding: the same seed must produce
// identical hash tables on every construction, at any worker count, and
// independently of any other package's RNG draws. (The hyperplanes used to
// come from one sequential RNG stream; per-table streams seeded from the
// config make construction parallel-safe and reproducible.)
func TestSameSeedIdenticalTables(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	vecs := make([][]float32, 40)
	for i := range vecs {
		vecs[i] = randomUnit(rng, 24)
	}
	build := func(workers int) *Index {
		ix := New(Config{Dim: 24, Tables: 6, Bits: 12, Seed: 77, Workers: workers})
		for i, v := range vecs {
			ix.Add(i, v)
		}
		return ix
	}
	ref := build(1)
	// Interleave draws from the global source to prove independence.
	rand.Int63()
	for _, workers := range []int{1, 4, 8} {
		ix := build(workers)
		for p := range ref.planes {
			if ix.planes[p] != ref.planes[p] {
				t.Fatalf("workers=%d: plane matrix differs at flat index %d", workers, p)
			}
		}
		for ti := range ref.tables {
			if len(ix.tables[ti]) != len(ref.tables[ti]) {
				t.Fatalf("workers=%d: table %d has %d buckets, want %d",
					workers, ti, len(ix.tables[ti]), len(ref.tables[ti]))
			}
			for key, bucket := range ref.tables[ti] {
				got := ix.tables[ti][key]
				if len(got) != len(bucket) {
					t.Fatalf("workers=%d: bucket %d/%x size %d, want %d",
						workers, ti, key, len(got), len(bucket))
				}
				for i := range bucket {
					if got[i] != bucket[i] {
						t.Fatalf("workers=%d: bucket %d/%x differs at %d", workers, ti, key, i)
					}
				}
			}
		}
	}
}

// Parallel kernel contract: Query and ExactNN return identical rankings at
// any worker count.
func TestQueryParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Tables*Bits*Dim above the serial-hash cutoff so the parallel path runs.
	mk := func(workers int) *Index {
		return New(Config{Dim: 1024, Tables: 8, Bits: 16, Seed: 21, Workers: workers})
	}
	serial := mk(1)
	wide := mk(8)
	for i := 0; i < 200; i++ {
		v := randomUnit(rng, 1024)
		serial.Add(i, v)
		wide.Add(i, v)
	}
	for q := 0; q < 20; q++ {
		v := randomUnit(rng, 1024)
		a, b := serial.Query(v, 7), wide.Query(v, 7)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
		ea, eb := serial.ExactNN(v, 7), wide.ExactNN(v, 7)
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("exact %d result %d: %+v vs %+v", q, i, ea[i], eb[i])
			}
		}
	}
}

// BenchmarkBuild500 measures bulk index construction (hashing dominates);
// compare with -cpu 1,4,8.
func BenchmarkBuild500(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	vecs := make([][]float32, 500)
	for i := range vecs {
		vecs[i] = randomUnit(rng, 512)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(Config{Dim: 512, Tables: 8, Bits: 16, Seed: 12})
		for id, v := range vecs {
			ix.Add(id, v)
		}
	}
}

func BenchmarkQuery1000(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	ix := New(Config{Dim: 64, Seed: 11})
	for i := 0; i < 1000; i++ {
		ix.Add(i, randomUnit(rng, 64))
	}
	q := randomUnit(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 5)
	}
}
