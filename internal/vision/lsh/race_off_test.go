//go:build !race

package lsh

const raceEnabled = false
