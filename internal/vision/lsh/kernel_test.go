package lsh

import (
	"math/rand"
	"testing"
)

// kernelIndex builds a Workers=1 index over n random unit vectors and
// returns it with the raw vectors for oracle distance checks.
func kernelIndex(t testing.TB, seed int64, n, dim int, cfg Config) (*Index, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg.Dim = dim
	ix := New(cfg)
	vecs := make([][]float32, n)
	for id := range vecs {
		vecs[id] = randomUnit(rng, dim)
		ix.Add(id, vecs[id])
	}
	return ix, vecs
}

// TestRankMatchesCosineOracle pins the SoA rank kernel (hoisted query
// norm, Add-time cached reference norms, one dot pass over the arena) to
// CosineDistance over the original vectors — exact float64 equality, the
// bit-identity contract of the layout change.
func TestRankMatchesCosineOracle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ix, vecs := kernelIndex(t, 41, 300, 24,
			Config{Tables: 6, Bits: 10, Probes: 2, Seed: 5, Workers: workers})
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 20; trial++ {
			q := randomUnit(rng, 24)
			neighbors := make([]Neighbor, len(vecs))
			for id := range vecs {
				neighbors[id] = Neighbor{ID: id}
			}
			ix.mu.RLock()
			ix.rankLocked(q, neighbors)
			ix.mu.RUnlock()
			for _, nb := range neighbors {
				want := CosineDistance(q, vecs[nb.ID])
				if nb.Dist != want {
					t.Fatalf("workers=%d: rankLocked dist for id %d = %v, CosineDistance = %v",
						workers, nb.ID, nb.Dist, want)
				}
			}
			// The full-scan path must agree bit for bit too.
			for _, nb := range ix.ExactNN(q, 10) {
				if want := CosineDistance(q, vecs[nb.ID]); nb.Dist != want {
					t.Fatalf("workers=%d: ExactNN dist for id %d = %v, CosineDistance = %v",
						workers, nb.ID, nb.Dist, want)
				}
			}
		}
	}
}

// TestRankZeroVectors covers the undefined-angle rule with the cached
// norms: a zero reference or a zero query must rank at distance 1,
// exactly as CosineDistance defines.
func TestRankZeroVectors(t *testing.T) {
	ix, vecs := kernelIndex(t, 43, 20, 8, Config{Tables: 4, Bits: 6, Seed: 3, Workers: 1})
	zero := make([]float32, 8)
	ix.Add(len(vecs), zero)

	res := ix.ExactNN(zero, len(vecs)+1)
	if len(res) != len(vecs)+1 {
		t.Fatalf("ExactNN returned %d results, want %d", len(res), len(vecs)+1)
	}
	for _, nb := range res {
		if nb.Dist != 1 {
			t.Fatalf("zero query: dist to id %d = %v, want exactly 1", nb.ID, nb.Dist)
		}
	}
	q := randomUnit(rand.New(rand.NewSource(44)), 8)
	for _, nb := range ix.ExactNN(q, len(vecs)+1) {
		want := 1.0
		if nb.ID < len(vecs) {
			want = CosineDistance(q, vecs[nb.ID])
		}
		if nb.Dist != want {
			t.Fatalf("dist to id %d = %v, want %v", nb.ID, nb.Dist, want)
		}
	}
}

// TestNormCacheInvalidation exercises every path that moves or replaces
// arena slots — Add-replace (same id, new vector), Remove (swap-move of
// the last slot into the hole), and sharded Resize (full repartition) —
// and checks distances stay exactly CosineDistance of the live vectors,
// i.e. no stale cached norm or stale arena row survives.
func TestNormCacheInvalidation(t *testing.T) {
	const dim, n = 16, 60
	ix, vecs := kernelIndex(t, 45, n, dim, Config{Tables: 4, Bits: 8, Seed: 7, Workers: 1})
	rng := rand.New(rand.NewSource(46))

	// Replace a third of the ids in place (Add with an existing id).
	for id := 0; id < n; id += 3 {
		vecs[id] = randomUnit(rng, dim)
		ix.Add(id, vecs[id])
	}
	// Remove another third — each removal swap-moves the last slot.
	for id := 1; id < n; id += 3 {
		ix.Remove(id)
		vecs[id] = nil
	}
	check := func(t *testing.T, query func(v []float32, k int) []Neighbor) {
		t.Helper()
		q := randomUnit(rng, dim)
		got := query(q, n)
		live := 0
		for _, v := range vecs {
			if v != nil {
				live++
			}
		}
		if len(got) != live {
			t.Fatalf("got %d results, want %d live ids", len(got), live)
		}
		for _, nb := range got {
			if vecs[nb.ID] == nil {
				t.Fatalf("removed id %d still ranked", nb.ID)
			}
			if want := CosineDistance(q, vecs[nb.ID]); nb.Dist != want {
				t.Fatalf("id %d dist = %v, want %v (stale norm or arena row)", nb.ID, nb.Dist, want)
			}
		}
	}
	check(t, ix.ExactNN)

	// Resize repartitions through eachLocked: the rebuilt shards must
	// carry the post-replace vectors, not originals.
	sx := NewShardedFrom(ix, ShardConfig{Shards: 3, Workers: 1})
	sx.Resize(5)
	check(t, sx.ExactNN)
}

// TestPreRankDegeneratesToExact pins the contract that a PreRank·k cut
// at or beyond the candidate count is exact mode: results are identical
// (IDs and bit-identical distances) to PreRank=0 on the same index.
func TestPreRankDegeneratesToExact(t *testing.T) {
	ix, _ := kernelIndex(t, 47, 200, 16, Config{Tables: 6, Bits: 6, Probes: 2, Seed: 11, Workers: 1})
	rng := rand.New(rand.NewSource(48))
	const k = 10
	for trial := 0; trial < 20; trial++ {
		q := randomUnit(rng, 16)
		ix.SetPreRank(0)
		exact := ix.Query(q, k)
		// 200 stored items bound the candidate set, so PreRank·k = 1000
		// can never trim: the pre-rank pass must pass candidates through.
		ix.SetPreRank(100)
		got := ix.Query(q, k)
		if len(got) != len(exact) {
			t.Fatalf("degenerate PreRank returned %d results, exact %d", len(got), len(exact))
		}
		for i := range exact {
			if got[i] != exact[i] {
				t.Fatalf("degenerate PreRank result %d = %+v, exact %+v", i, got[i], exact[i])
			}
		}
	}
	ix.SetPreRank(0)
}

// TestPreRankRecall measures recall@10 of Hamming pre-ranking at the
// recommended default budget (PreRank=4, ≥96-bit sketch) against
// exact-mode Query on a clustered reference set modeling recognition
// traffic: each object contributes a tight cluster of reference views
// (per-coordinate noise 0.05, a ~22° angular spread at dim 64) and
// queries are new views of known objects. The 0.95 floor is the
// acceptance criterion for the default setting; the sweep itself lives
// in BenchmarkKernelPreRank.
func TestPreRankRecall(t *testing.T) {
	const dim, n, k = 64, 4000, 10
	rng := rand.New(rand.NewSource(49))
	ix := New(Config{Dim: dim, Tables: 8, Bits: 12, Probes: 2, Seed: 13, Workers: 1})
	base := make([][]float32, n/10)
	for i := range base {
		base[i] = randomUnit(rng, dim)
	}
	for id := 0; id < n; id++ {
		ix.Add(id, perturb(rng, base[id%len(base)], 0.05))
	}
	hits, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		q := perturb(rng, base[trial%len(base)], 0.03)
		ix.SetPreRank(0)
		exact := ix.Query(q, k)
		ix.SetPreRank(4)
		got := ix.Query(q, k)
		want := make(map[int]struct{}, len(exact))
		for _, nb := range exact {
			want[nb.ID] = struct{}{}
		}
		for _, nb := range got {
			if _, ok := want[nb.ID]; ok {
				hits++
			}
		}
		total += len(exact)
	}
	ix.SetPreRank(0)
	recall := float64(hits) / float64(total)
	if recall < 0.95 {
		t.Fatalf("PreRank=4 recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

// TestShardedPreRank covers pre-ranking through the scatter/gather
// layer: a degenerate budget equals exact mode bit for bit, and the
// trimming budget still returns a full, correctly ordered top-k whose
// distances are exact (pre-rank only selects — the cosine pass
// overwrites every kept candidate's distance).
func TestShardedPreRank(t *testing.T) {
	ix, vecs := kernelIndex(t, 50, 500, 16, Config{Tables: 6, Bits: 6, Probes: 2, Seed: 17, Workers: 1})
	sx := NewShardedFrom(ix, ShardConfig{Shards: 4, Workers: 1})
	rng := rand.New(rand.NewSource(51))
	const k = 5
	for trial := 0; trial < 10; trial++ {
		q := randomUnit(rng, 16)
		sx.SetPreRank(0)
		exact := sx.Query(q, k)
		sx.SetPreRank(1000) // pr·k far beyond any shard's candidate count
		got := sx.Query(q, k)
		if len(got) != len(exact) {
			t.Fatalf("degenerate sharded PreRank: %d results, exact %d", len(got), len(exact))
		}
		for i := range exact {
			if got[i] != exact[i] {
				t.Fatalf("degenerate sharded PreRank result %d = %+v, exact %+v", i, got[i], exact[i])
			}
		}
		sx.SetPreRank(4)
		trimmed := sx.Query(q, k)
		if len(trimmed) != k {
			t.Fatalf("sharded PreRank=4 returned %d results, want %d", len(trimmed), k)
		}
		for i, nb := range trimmed {
			if i > 0 && neighborLess(nb, trimmed[i-1]) {
				t.Fatalf("sharded PreRank results out of order at %d: %+v", i, trimmed)
			}
			if want := CosineDistance(q, vecs[nb.ID]); nb.Dist != want {
				t.Fatalf("sharded PreRank dist for id %d = %v, want exact %v", nb.ID, nb.Dist, want)
			}
		}
	}
	// A Resize after SetPreRank must keep the setting (it is part of the
	// config future topologies are built from).
	sx.Resize(2)
	if got := sx.anyIndex().Config().PreRank; got != 4 {
		t.Fatalf("PreRank after Resize = %d, want 4", got)
	}
}

// TestConfigReportsLivePreRank pins Config() folding in the live
// (atomically retuned) PreRank value — NewShardedFrom relies on it to
// propagate the setting into shard replicas.
func TestConfigReportsLivePreRank(t *testing.T) {
	ix := New(Config{Dim: 8, PreRank: 2})
	if got := ix.Config().PreRank; got != 2 {
		t.Fatalf("Config().PreRank = %d, want 2", got)
	}
	ix.SetPreRank(7)
	if got := ix.Config().PreRank; got != 7 {
		t.Fatalf("Config().PreRank after SetPreRank(7) = %d, want 7", got)
	}
	ix.SetPreRank(-3)
	if got := ix.Config().PreRank; got != 0 {
		t.Fatalf("Config().PreRank after SetPreRank(-3) = %d, want 0", got)
	}
	sx := NewShardedFrom(New(Config{Dim: 8, PreRank: 3}), ShardConfig{Shards: 2})
	if got := sx.anyIndex().Config().PreRank; got != 3 {
		t.Fatalf("sharded replica PreRank = %d, want 3 inherited from source", got)
	}
}

// TestRankLockedNoAllocs enforces the 0 allocs/op budget on the serial
// ranking kernel — the per-candidate hot loop every query pays.
func TestRankLockedNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ix, _ := kernelIndex(t, 52, 500, 16, Config{Tables: 4, Bits: 6, Seed: 19, Workers: 1})
	q := randomUnit(rand.New(rand.NewSource(53)), 16)
	neighbors := make([]Neighbor, 500)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	allocs := testing.AllocsPerRun(100, func() {
		for j := range neighbors {
			neighbors[j] = Neighbor{ID: j}
		}
		ix.rankLocked(q, neighbors)
	})
	if allocs != 0 {
		t.Fatalf("rankLocked allocates %.1f per run, want 0", allocs)
	}
}

// TestExactNNAllocBudget enforces the pooled-scratch contract on
// ExactNN: after warmup, a query allocates only the escaping top-k copy
// and the fixed sort bookkeeping — a constant budget independent of
// index size (the old path allocated an index-sized candidate slice
// every call).
func TestExactNNAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ix, _ := kernelIndex(t, 54, 2000, 16, Config{Tables: 4, Bits: 6, Seed: 23, Workers: 1})
	q := randomUnit(rand.New(rand.NewSource(55)), 16)
	ix.ExactNN(q, 10) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		ix.ExactNN(q, 10)
	})
	// The measured constant: the escaping top-k copy, the pool-return
	// box, and sort.Slice bookkeeping on the k-prefix. What matters is
	// that it does not grow with index size — the probe at 2000 and
	// 20000 items measures the same 5.
	if allocs > 6 {
		t.Fatalf("ExactNN allocates %.1f per run, want <= 6 (pooled scratch)", allocs)
	}
}

// FuzzSketchMatchesHash differentially pins the packed-sketch encoding:
// for any (dim, tables, bits, seed) and any vector, the key unpacked
// from the Add-time sketch of table t must equal Index.Hash(t, v). This
// is what lets Remove recover bucket keys from sketches without
// re-hashing, and what makes Hamming distance over sketches equal the
// per-table key Hamming distance.
func FuzzSketchMatchesHash(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(6), uint8(16))
	f.Add(int64(99), uint8(3), uint8(64), uint8(5))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(1))
	f.Add(int64(1234), uint8(13), uint8(31), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, tables, bits, dim uint8) {
		cfg := Config{
			Dim:    int(dim%48) + 1,
			Tables: int(tables%16) + 1,
			Bits:   int(bits%64) + 1,
			Seed:   seed,
		}
		ix := New(cfg)
		rng := rand.New(rand.NewSource(seed ^ 0x5bf0))
		v := make([]float32, cfg.Dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		ix.Add(0, v)
		ix.mu.RLock()
		sketch := append([]uint64(nil), ix.sketches[:ix.sketchWords]...)
		ix.mu.RUnlock()
		for t2 := 0; t2 < cfg.Tables; t2++ {
			if got, want := unpackKey(sketch, t2, cfg.Bits), ix.Hash(t2, v); got != want {
				t.Fatalf("cfg=%+v table %d: unpacked key %x, Hash %x", cfg, t2, got, want)
			}
		}
	})
}
