//go:build race

package lsh

// raceEnabled skips allocation-accounting tests: the race detector's
// instrumentation allocates on its own behalf.
const raceEnabled = true
