package lsh

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// shardTestConfig uses few bits so buckets are dense and every query
// crosses several shards' candidate sets.
func shardTestConfig(dim int) Config {
	return Config{Dim: dim, Tables: 4, Bits: 6, Probes: 2, Seed: 7}
}

func buildPair(t testing.TB, n, dim, shards int) (*Index, *ShardedIndex, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	mono := New(shardTestConfig(dim))
	for id := 0; id < n; id++ {
		mono.Add(id, randomUnit(rng, dim))
	}
	sx := NewShardedFrom(mono, ShardConfig{Shards: shards})
	return mono, sx, rng
}

func TestShardOf(t *testing.T) {
	counts := make([]int, 8)
	for id := 0; id < 8000; id++ {
		s := ShardOf(id, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d, 8) = %d out of range", id, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("shard %d holds %d of 8000 ids, want near-uniform 1000", s, c)
		}
	}
	if ShardOf(42, 1) != 0 || ShardOf(42, 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
	if ShardOf(42, 8) != ShardOf(42, 8) {
		t.Error("ShardOf must be deterministic")
	}
}

// TestShardedMatchesMonolithic is the bit-identity regression: a sharded
// index over the same reference set must return byte-for-byte the result
// of the monolithic index for Query, QueryBatch, and ExactNN.
func TestShardedMatchesMonolithic(t *testing.T) {
	const n, dim = 2000, 32
	for _, shards := range []int{1, 3, 4, 8} {
		mono, sx, rng := buildPair(t, n, dim, shards)
		if sx.Len() != mono.Len() {
			t.Fatalf("shards=%d: Len %d, want %d", shards, sx.Len(), mono.Len())
		}
		var batch [][]float32
		for q := 0; q < 20; q++ {
			v := randomUnit(rng, dim)
			batch = append(batch, v)
			for _, k := range []int{1, 3, 10, 50} {
				got, want := sx.Query(v, k), mono.Query(v, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d k=%d: sharded Query diverges:\n got %v\nwant %v", shards, k, got, want)
				}
			}
			if got, want := sx.ExactNN(v, 10), mono.ExactNN(v, 10); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: sharded ExactNN diverges", shards)
			}
		}
		got, want := sx.QueryBatch(batch, 10), mono.QueryBatch(batch, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: sharded QueryBatch diverges", shards)
		}
	}
}

// TestShardedOnlineMutation matches incremental sharded Add/Remove
// against the monolithic index receiving the same stream.
func TestShardedOnlineMutation(t *testing.T) {
	const dim = 24
	rng := rand.New(rand.NewSource(32))
	mono := New(shardTestConfig(dim))
	sx := NewSharded(ShardConfig{Index: shardTestConfig(dim), Shards: 4})
	live := make(map[int][]float32)
	for step := 0; step < 1500; step++ {
		if len(live) > 50 && rng.Intn(4) == 0 {
			for id := range live {
				mono.Remove(id)
				sx.Remove(id)
				delete(live, id)
				break
			}
			continue
		}
		id := rng.Intn(600) // collisions exercise the replace path
		v := randomUnit(rng, dim)
		mono.Add(id, v)
		sx.Add(id, v)
		live[id] = v
	}
	if sx.Len() != mono.Len() {
		t.Fatalf("Len %d after mutation stream, want %d", sx.Len(), mono.Len())
	}
	for q := 0; q < 20; q++ {
		v := randomUnit(rng, dim)
		if got, want := sx.Query(v, 10), mono.Query(v, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d diverges after mutation stream:\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestShardedConcurrentMutation hammers Add/Remove/Resize during queries;
// the race detector is the assertion.
func TestShardedConcurrentMutation(t *testing.T) {
	const dim = 16
	sx := NewSharded(ShardConfig{Index: shardTestConfig(dim), Shards: 4, Replication: 2})
	seedRng := rand.New(rand.NewSource(33))
	for id := 0; id < 200; id++ {
		sx.Add(id, randomUnit(seedRng, dim))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sx.Query(randomUnit(rng, dim), 5)
				sx.QueryBatch([][]float32{randomUnit(rng, dim)}, 3)
			}
		}(int64(40 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(50))
		for i := 0; i < 500; i++ {
			id := rng.Intn(400)
			if rng.Intn(3) == 0 {
				sx.Remove(id)
			} else {
				sx.Add(id, randomUnit(rng, dim))
			}
			if i%100 == 99 {
				sx.Resize(3 + rng.Intn(4))
			}
		}
		close(stop)
	}()
	wg.Wait()
}

// TestShardedResize checks the rebalance invariant directly on the
// topology: after Resize every stored ID lives in exactly the shard
// splitmix64 assigns it to, in every replica of that shard, and nowhere
// else — no orphans, no duplicates.
func TestShardedResize(t *testing.T) {
	const n, dim = 500, 16
	rng := rand.New(rand.NewSource(34))
	sx := NewSharded(ShardConfig{Index: shardTestConfig(dim), Shards: 4, Replication: 2})
	vecs := make(map[int][]float32)
	for id := 0; id < n; id++ {
		v := randomUnit(rng, dim)
		sx.Add(id, v)
		vecs[id] = v
	}
	for _, shards := range []int{7, 2, 4} {
		sx.Resize(shards)
		if got := sx.Shards(); got != shards {
			t.Fatalf("Shards() = %d after Resize(%d)", got, shards)
		}
		if sx.Len() != n {
			t.Fatalf("Len = %d after Resize(%d), want %d (orphaned or duplicated ids)", sx.Len(), shards, n)
		}
		topo := sx.snapshot()
		for id := range vecs {
			want := ShardOf(id, shards)
			for s, reps := range topo.replicas {
				for r, ix := range reps {
					ix.mu.RLock()
					_, ok := ix.slots[id]
					ix.mu.RUnlock()
					if ok != (s == want) {
						t.Fatalf("Resize(%d): id %d present=%v in shard %d replica %d, want shard %d only",
							shards, id, ok, s, r, want)
					}
				}
			}
		}
	}
	v := vecs[0]
	res := sx.Query(v, 1)
	if len(res) == 0 || res[0].ID != 0 || res[0].Dist > 1e-9 {
		t.Fatalf("id 0 not recoverable after resizes: %v", res)
	}
}

func TestLayoutSignature(t *testing.T) {
	cfg := shardTestConfig(16)
	a := NewSharded(ShardConfig{Index: cfg, Shards: 4})
	b := NewSharded(ShardConfig{Index: cfg, Shards: 8})
	c := NewSharded(ShardConfig{Index: cfg, Shards: 4, Replication: 2})
	if a.LayoutSignature() == b.LayoutSignature() {
		t.Error("4-shard and 8-shard layouts share a signature")
	}
	if a.LayoutSignature() == c.LayoutSignature() {
		t.Error("replication=1 and replication=2 layouts share a signature")
	}
	sig := a.LayoutSignature()
	if sig != a.LayoutSignature() {
		t.Error("signature not stable")
	}
	a.Resize(8)
	if a.LayoutSignature() == b.LayoutSignature() {
		t.Error("resized layout shares a signature with a fresh layout of the same shape (epoch ignored)")
	}
	if a.LayoutSignature() == sig {
		t.Error("Resize did not change the layout signature")
	}
}

// TestShardedReplicaPicker verifies the health-pick hook routes shard
// queries to the chosen replica and that every replica holds the full
// shard contents (hot-shard replication).
func TestShardedReplicaPicker(t *testing.T) {
	const dim = 16
	sx := NewSharded(ShardConfig{Index: shardTestConfig(dim), Shards: 2, Replication: 3})
	rng := rand.New(rand.NewSource(35))
	for id := 0; id < 100; id++ {
		sx.Add(id, randomUnit(rng, dim))
	}
	var mu sync.Mutex
	picked := make(map[int]int)
	sx.SetReplicaPicker(func(shard, replicas int) int {
		if replicas != 3 {
			t.Errorf("picker saw %d replicas, want 3", replicas)
		}
		mu.Lock()
		picked[shard]++
		mu.Unlock()
		return 2
	})
	v := randomUnit(rng, dim)
	want := sx.Query(v, 5)
	sx.SetReplicaPicker(func(shard, replicas int) int { return 0 })
	if got := sx.Query(v, 5); !reflect.DeepEqual(got, want) {
		t.Fatal("different replicas of one shard disagree — replication broke")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(picked) != 2 {
		t.Fatalf("picker consulted for %d shards, want 2", len(picked))
	}
	st := sx.Stats()
	if st.Queries == 0 || st.ShardQueries < st.Queries {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// referenceSortAndTrim is the pre-quickselect implementation kept as the
// equality oracle.
func referenceSortAndTrim(neighbors []Neighbor, k int) []Neighbor {
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Dist != neighbors[j].Dist {
			return neighbors[i].Dist < neighbors[j].Dist
		}
		return neighbors[i].ID < neighbors[j].ID
	})
	if len(neighbors) > k {
		neighbors = neighbors[:k]
	}
	return neighbors
}

// TestSortAndTrimMatchesFullSort regresses the quickselect top-k against
// the full sort it replaced, including duplicate distances (tie-broken
// by ID) and every boundary k.
func TestSortAndTrimMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		base := make([]Neighbor, n)
		for i := range base {
			// Quantized distances force ties so the ID tiebreak is hit.
			base[i] = Neighbor{ID: i, Dist: float64(rng.Intn(50)) / 50}
		}
		rng.Shuffle(n, func(i, j int) { base[i], base[j] = base[j], base[i] })
		for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 10} {
			if k < 0 {
				continue
			}
			got := sortAndTrim(append([]Neighbor(nil), base...), k)
			want := referenceSortAndTrim(append([]Neighbor(nil), base...), k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d: quickselect diverges from full sort\n got %v\nwant %v", n, k, got, want)
			}
		}
	}
}

func TestMergeNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		nLists := 1 + rng.Intn(20) // crosses the stack-cursor cutoff
		var lists [][]Neighbor
		var all []Neighbor
		id := 0
		for l := 0; l < nLists; l++ {
			n := rng.Intn(15)
			list := make([]Neighbor, n)
			for i := range list {
				list[i] = Neighbor{ID: id, Dist: float64(rng.Intn(40)) / 40}
				id++
			}
			list = referenceSortAndTrim(list, n)
			lists = append(lists, list)
			all = append(all, list...)
		}
		for _, k := range []int{0, 1, 5, len(all), len(all) + 3} {
			got := MergeNeighbors(nil, lists, k)
			want := referenceSortAndTrim(append([]Neighbor(nil), all...), k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("lists=%d k=%d: merge diverges\n got %v\nwant %v", nLists, k, got, want)
			}
		}
	}
}

// mergeAllocBudget is the enforced steady-state allocation budget of one
// gather merge: stack cursors plus a caller-pooled destination leave
// nothing to allocate.
const mergeAllocBudget = 0

func TestMergeNeighborsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	rng := rand.New(rand.NewSource(38))
	const k = 16
	lists := make([][]Neighbor, 8)
	id := 0
	for s := range lists {
		l := make([]Neighbor, k)
		for i := range l {
			l[i] = Neighbor{ID: id, Dist: rng.Float64()}
			id++
		}
		lists[s] = referenceSortAndTrim(l, k)
	}
	dst := GetNeighborScratch(k)
	defer PutNeighborScratch(dst)
	avg := testing.AllocsPerRun(200, func() {
		dst = MergeNeighbors(dst, lists, k)
	})
	if avg > mergeAllocBudget {
		t.Errorf("gather merge allocates %.1f/op, budget %d", avg, mergeAllocBudget)
	}
}
