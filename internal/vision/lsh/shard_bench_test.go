package lsh

import (
	"math/rand"
	"sync"
	"testing"
)

// The sharding benchmarks use dense buckets (few bits) so the candidate
// set — and therefore per-query ranking cost — grows linearly with the
// reference-set size, which is the regime the paper's recognition tier
// operates in at scale. Reference sets and query vectors are built once
// per size and shared across sub-benchmarks.

const benchShardDim = 64

func benchShardCfg() Config {
	return Config{Dim: benchShardDim, Tables: 8, Bits: 6, Probes: 2, Seed: 9, Workers: 1}
}

type shardBenchSet struct {
	vectors [][]float32
	queries [][]float32
	mono    *Index
	sharded map[int]*ShardedIndex // by shard count
}

var (
	shardBenchMu   sync.Mutex
	shardBenchSets = map[int]*shardBenchSet{}
)

func benchSet(b *testing.B, n int) *shardBenchSet {
	b.Helper()
	shardBenchMu.Lock()
	defer shardBenchMu.Unlock()
	if s, ok := shardBenchSets[n]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(int64(n)))
	s := &shardBenchSet{sharded: map[int]*ShardedIndex{}}
	s.mono = New(benchShardCfg())
	for id := 0; id < n; id++ {
		v := randomUnit(rng, benchShardDim)
		s.vectors = append(s.vectors, v)
		s.mono.Add(id, v)
	}
	for q := 0; q < 16; q++ {
		s.queries = append(s.queries, randomUnit(rng, benchShardDim))
	}
	shardBenchSets[n] = s
	return s
}

func (s *shardBenchSet) shardedAt(shards int) *ShardedIndex {
	shardBenchMu.Lock()
	defer shardBenchMu.Unlock()
	if sx, ok := s.sharded[shards]; ok {
		return sx
	}
	sx := NewShardedFrom(s.mono, ShardConfig{Shards: shards, Workers: 1})
	s.sharded[shards] = sx
	return sx
}

// BenchmarkShardingReplica measures what one matching replica pays per
// query: the monolithic baseline (shards=1) ranks candidates from the
// whole reference set; at S shards a single replica holds and ranks only
// its 1/S partition. This per-replica cost is the headline the sharding
// PR buys — queries/sec one node can serve.
func BenchmarkShardingReplica(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		set := benchSet(b, n)
		for _, shards := range []int{1, 4, 8} {
			var ix interface {
				Query([]float32, int) []Neighbor
			}
			if shards == 1 {
				ix = set.mono
			} else {
				// One shard replica, standing alone: the per-node view.
				sx := set.shardedAt(shards)
				ix = sx.snapshot().replicas[0][0]
			}
			b.Run(benchName("replica", shards, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ix.Query(set.queries[i%len(set.queries)], 10)
				}
			})
		}
	}
}

// BenchmarkShardingGather measures the full scatter/gather query — all
// shards consulted and merged — against the monolithic index. On a
// single core this bounds the merge + fan-out overhead; with cores to
// scatter across it also recovers wall-clock latency.
func BenchmarkShardingGather(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		set := benchSet(b, n)
		b.Run(benchName("mono", 1, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				set.mono.Query(set.queries[i%len(set.queries)], 10)
			}
		})
		for _, shards := range []int{4, 8} {
			sx := set.shardedAt(shards)
			b.Run(benchName("gather", shards, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sx.Query(set.queries[i%len(set.queries)], 10)
				}
			})
		}
	}
}

// BenchmarkShardingSortAndTrim compares the bounded quickselect top-k
// against the full sort it replaced, at query-sized candidate counts.
func BenchmarkShardingSortAndTrim(b *testing.B) {
	rng := rand.New(rand.NewSource(40))
	const n, k = 30_000, 10
	base := make([]Neighbor, n)
	for i := range base {
		base[i] = Neighbor{ID: i, Dist: rng.Float64()}
	}
	scratch := make([]Neighbor, n)
	b.Run("quickselect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sortAndTrim(scratch, k)
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			referenceSortAndTrim(scratch, k)
		}
	})
}

func benchName(kind string, shards, n int) string {
	return kind + "/shards=" + itoa(shards) + "/n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
