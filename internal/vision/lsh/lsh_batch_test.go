package lsh

import (
	"math/rand"
	"testing"
)

// Batched kernel contract: every QueryBatch result must equal Query on
// the same vector, element for element, for any k.
func TestQueryBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ix := New(Config{Dim: 32, Tables: 6, Bits: 12, Probes: 2, Seed: 22, Workers: 4})
	for i := 0; i < 300; i++ {
		ix.Add(i, randomUnit(rng, 32))
	}
	queries := make([][]float32, 17)
	for i := range queries {
		queries[i] = randomUnit(rng, 32)
	}
	for _, k := range []int{1, 5, 1000} {
		got := ix.QueryBatch(queries, k)
		if len(got) != len(queries) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(queries))
		}
		for q, v := range queries {
			want := ix.Query(v, k)
			if len(got[q]) != len(want) {
				t.Fatalf("k=%d query %d: %d neighbors, serial %d", k, q, len(got[q]), len(want))
			}
			for i := range want {
				if got[q][i] != want[i] {
					t.Fatalf("k=%d query %d result %d: %+v, serial %+v", k, q, i, got[q][i], want[i])
				}
			}
		}
	}
}

// Same contract above the bulk-hashing cutoff, where batch keys are
// computed on the worker pool.
func TestQueryBatchMatchesSerialBulkHash(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix := New(Config{Dim: 1024, Tables: 8, Bits: 16, Seed: 23, Workers: 8})
	for i := 0; i < 100; i++ {
		ix.Add(i, randomUnit(rng, 1024))
	}
	queries := make([][]float32, 8)
	for i := range queries {
		queries[i] = randomUnit(rng, 1024)
	}
	got := ix.QueryBatch(queries, 7)
	for q, v := range queries {
		want := ix.Query(v, 7)
		if len(got[q]) != len(want) {
			t.Fatalf("query %d: %d neighbors, serial %d", q, len(got[q]), len(want))
		}
		for i := range want {
			if got[q][i] != want[i] {
				t.Fatalf("query %d result %d: %+v, serial %+v", q, i, got[q][i], want[i])
			}
		}
	}
}

func TestQueryBatchSizeOneAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ix := New(Config{Dim: 16, Tables: 4, Bits: 10, Seed: 24})
	for i := 0; i < 80; i++ {
		ix.Add(i, randomUnit(rng, 16))
	}
	v := randomUnit(rng, 16)
	one := ix.QueryBatch([][]float32{v}, 5)
	if len(one) != 1 {
		t.Fatalf("batch of one returned %d results", len(one))
	}
	want := ix.Query(v, 5)
	if len(one[0]) != len(want) {
		t.Fatalf("batch of one: %d neighbors, serial %d", len(one[0]), len(want))
	}
	for i := range want {
		if one[0][i] != want[i] {
			t.Fatalf("batch of one result %d: %+v, serial %+v", i, one[0][i], want[i])
		}
	}
	if out := ix.QueryBatch(nil, 5); len(out) != 0 {
		t.Fatalf("QueryBatch(nil) = %v, want empty", out)
	}
	zero := ix.QueryBatch([][]float32{v}, 0)
	if len(zero) != 1 || zero[0] != nil {
		t.Fatalf("QueryBatch k=0 = %v, want one nil entry", zero)
	}
}
