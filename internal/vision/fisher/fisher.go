// Package fisher implements Fisher-vector encoding over a diagonal-
// covariance Gaussian mixture model, the second half of scAtteR's encoding
// service (Perronnin et al., CVPR 2010). A set of PCA-compressed local
// descriptors is aggregated into a single fixed-length vector: the
// gradients of the GMM log-likelihood with respect to each component's
// mean and variance, followed by power ("signed square-root") and L2
// normalization.
package fisher

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// emGrain and encodeGrain are the fixed per-chunk sample counts for the
// parallel EM E-step and Encode accumulation. Chunk boundaries depend only
// on the input size, so per-chunk partial sums merged in chunk order are
// bit-identical at any worker count (floating-point addition is not
// associative, so the merge order — not just the math — is part of the
// determinism contract).
const (
	emGrain     = 64
	encodeGrain = 32
)

// scratch pools reused across EM iterations and Encode calls.
var f64Pool parallel.SlicePool[float64]

// ErrBadInput is returned by TrainGMM for degenerate training input.
var ErrBadInput = errors.New("fisher: bad input")

// GMM is a Gaussian mixture model with diagonal covariances.
type GMM struct {
	K       int         // number of components
	Dim     int         // descriptor dimensionality
	Weights []float64   // mixing weights, sum to 1
	Means   [][]float64 // K × Dim
	Vars    [][]float64 // K × Dim, diagonal covariances (floored)
}

// varFloor prevents components from collapsing onto single points.
const varFloor = 1e-4

// TrainGMM fits a k-component diagonal GMM to data using EM, initialized
// with a k-means++-style seeding from the given deterministic seed. The
// E-step is sharded across the worker pool; results are bit-identical to
// the serial path for any GOMAXPROCS.
func TrainGMM(data [][]float32, k, iters int, seed int64) (*GMM, error) {
	return trainGMM(data, k, iters, seed, 0)
}

// trainGMM is TrainGMM with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial) — the knob the parallel-vs-serial equivalence tests use.
func trainGMM(data [][]float32, k, iters int, seed int64, workers int) (*GMM, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrBadInput)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d with %d samples", ErrBadInput, k, n)
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional samples", ErrBadInput)
	}
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: sample %d has dim %d, want %d", ErrBadInput, i, len(row), dim)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	g := &GMM{K: k, Dim: dim}
	g.Weights = make([]float64, k)
	g.Means = make([][]float64, k)
	g.Vars = make([][]float64, k)

	// k-means++ seeding for the means.
	first := rng.Intn(n)
	g.Means[0] = toF64(data[first])
	d2 := make([]float64, n)
	for c := 1; c < k; c++ {
		// Each d2[i] is independent and exact, so the scan parallelizes
		// without affecting determinism; the weighted pick below sums d2
		// serially in index order.
		parallel.For(workers, n, emGrain, func(_, start, end int) {
			for i := start; i < end; i++ {
				best := math.Inf(1)
				for cc := 0; cc < c; cc++ {
					d := sqDist(data[i], g.Means[cc])
					if d < best {
						best = d
					}
				}
				d2[i] = best
			}
		})
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * sum
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		g.Means[c] = toF64(data[pick])
	}

	// Global variance initializes component variances.
	globalMean := make([]float64, dim)
	for _, row := range data {
		for j, v := range row {
			globalMean[j] += float64(v)
		}
	}
	for j := range globalMean {
		globalMean[j] /= float64(n)
	}
	globalVar := make([]float64, dim)
	for _, row := range data {
		for j, v := range row {
			d := float64(v) - globalMean[j]
			globalVar[j] += d * d
		}
	}
	for j := range globalVar {
		globalVar[j] = math.Max(globalVar[j]/float64(n), varFloor)
	}
	for c := 0; c < k; c++ {
		g.Weights[c] = 1 / float64(k)
		g.Vars[c] = append([]float64(nil), globalVar...)
	}

	// EM iterations. The E-step shards samples across the pool; each chunk
	// accumulates into a pooled flat buffer laid out as
	// [nk (k) | sum (k×dim) | sumSq (k×dim)], merged in chunk order.
	nk := make([]float64, k)
	sum := make([][]float64, k)
	sumSq := make([][]float64, k)
	for c := range sum {
		sum[c] = make([]float64, dim)
		sumSq[c] = make([]float64, dim)
	}
	accLen := k + 2*k*dim
	parts := make([][]float64, parallel.Chunks(n, emGrain))
	for it := 0; it < iters; it++ {
		for c := 0; c < k; c++ {
			nk[c] = 0
			for j := 0; j < dim; j++ {
				sum[c][j] = 0
				sumSq[c][j] = 0
			}
		}
		parallel.For(workers, n, emGrain, func(chunk, start, end int) {
			acc := f64Pool.Get(accLen)
			resp := f64Pool.Get(k)
			for i := start; i < end; i++ {
				row := data[i]
				g.posteriorsInto(row, resp)
				for c := 0; c < k; c++ {
					r := resp[c]
					if r == 0 {
						continue
					}
					acc[c] += r
					sc := acc[k+c*dim : k+(c+1)*dim]
					sq := acc[k+k*dim+c*dim : k+k*dim+(c+1)*dim]
					for j, v := range row {
						x := float64(v)
						sc[j] += r * x
						sq[j] += r * x * x
					}
				}
			}
			f64Pool.Put(resp)
			parts[chunk] = acc
		})
		for _, acc := range parts {
			for c := 0; c < k; c++ {
				nk[c] += acc[c]
				sc := acc[k+c*dim : k+(c+1)*dim]
				sq := acc[k+k*dim+c*dim : k+k*dim+(c+1)*dim]
				for j := 0; j < dim; j++ {
					sum[c][j] += sc[j]
					sumSq[c][j] += sq[j]
				}
			}
			f64Pool.Put(acc)
		}
		for c := 0; c < k; c++ {
			if nk[c] < 1e-10 {
				// Dead component: re-seed on a random sample.
				g.Means[c] = toF64(data[rng.Intn(n)])
				g.Vars[c] = append([]float64(nil), globalVar...)
				g.Weights[c] = 1e-6
				continue
			}
			g.Weights[c] = nk[c] / float64(n)
			for j := 0; j < dim; j++ {
				mu := sum[c][j] / nk[c]
				g.Means[c][j] = mu
				v := sumSq[c][j]/nk[c] - mu*mu
				g.Vars[c][j] = math.Max(v, varFloor)
			}
		}
		normalizeWeights(g.Weights)
	}
	return g, nil
}

func toF64(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func sqDist(a []float32, b []float64) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - b[i]
		s += d * d
	}
	return s
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if s == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// logGaussian returns the log density of x under component c.
func (g *GMM) logGaussian(x []float32, c int) float64 {
	mean, vars := g.Means[c], g.Vars[c]
	acc := 0.0
	for j, v := range x {
		d := float64(v) - mean[j]
		acc += d*d/vars[j] + math.Log(2*math.Pi*vars[j])
	}
	return -0.5 * acc
}

// posteriorsInto computes p(c | x) for each component into out (length K),
// using the log-sum-exp trick for numerical stability.
func (g *GMM) posteriorsInto(x []float32, out []float64) {
	maxLog := math.Inf(-1)
	for c := 0; c < g.K; c++ {
		w := g.Weights[c]
		if w <= 0 {
			out[c] = math.Inf(-1)
			continue
		}
		out[c] = math.Log(w) + g.logGaussian(x, c)
		if out[c] > maxLog {
			maxLog = out[c]
		}
	}
	if math.IsInf(maxLog, -1) {
		for c := range out {
			out[c] = 1 / float64(g.K)
		}
		return
	}
	var sum float64
	for c := 0; c < g.K; c++ {
		out[c] = math.Exp(out[c] - maxLog)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Posteriors returns the responsibility of each component for x.
func (g *GMM) Posteriors(x []float32) []float64 {
	if len(x) != g.Dim {
		panic(fmt.Sprintf("fisher: posterior dim %d, want %d", len(x), g.Dim))
	}
	out := make([]float64, g.K)
	g.posteriorsInto(x, out)
	return out
}

// LogLikelihood returns the mean per-sample log-likelihood of data under
// the model — used to verify that EM iterations improve the fit.
func (g *GMM) LogLikelihood(data [][]float32) float64 {
	if len(data) == 0 {
		return 0
	}
	var total float64
	for _, x := range data {
		maxLog := math.Inf(-1)
		logs := make([]float64, g.K)
		for c := 0; c < g.K; c++ {
			logs[c] = math.Log(g.Weights[c]+1e-300) + g.logGaussian(x, c)
			if logs[c] > maxLog {
				maxLog = logs[c]
			}
		}
		var s float64
		for _, l := range logs {
			s += math.Exp(l - maxLog)
		}
		total += maxLog + math.Log(s)
	}
	return total / float64(len(data))
}

// Encoder aggregates descriptor sets into Fisher vectors. It is safe for
// concurrent use.
type Encoder struct {
	gmm *GMM
	// Workers bounds the worker pool sharding descriptors during Encode.
	// Zero uses GOMAXPROCS; one forces the serial path. The encoding is
	// bit-identical at any setting.
	Workers int
}

// NewEncoder returns an Encoder over the fitted mixture model.
func NewEncoder(g *GMM) *Encoder {
	if g == nil {
		panic("fisher: nil GMM")
	}
	return &Encoder{gmm: g}
}

// Size returns the Fisher vector dimensionality: 2 × K × Dim (mean and
// variance gradients per component).
func (e *Encoder) Size() int { return 2 * e.gmm.K * e.gmm.Dim }

// Encode computes the improved Fisher vector of a descriptor set: the
// normalized gradients with respect to component means and variances,
// power-normalized (signed sqrt) and L2-normalized. An empty descriptor
// set encodes to the zero vector.
func (e *Encoder) Encode(descs [][]float32) []float32 {
	fv := f64Pool.Get(e.Size())
	out := e.encodeInto(descs, fv)
	f64Pool.Put(fv)
	return out
}

// EncodeBatch encodes several descriptor sets, one Fisher vector per set,
// sharing the posterior and gradient scratch across the whole batch — one
// accumulator checkout instead of one per frame. Each output is
// bit-identical to Encode on the same set (the batch path runs the exact
// serial accumulation per set), so a batch of one degenerates to Encode.
func (e *Encoder) EncodeBatch(batch [][][]float32) [][]float32 {
	if len(batch) == 0 {
		return nil
	}
	fv := f64Pool.Get(e.Size())
	out := make([][]float32, len(batch))
	for i, descs := range batch {
		if i > 0 {
			for j := range fv {
				fv[j] = 0
			}
		}
		out[i] = e.encodeInto(descs, fv)
	}
	f64Pool.Put(fv)
	return out
}

// encodeInto runs the Fisher encoding into the caller's zeroed float64
// accumulator (length Size()) and returns the normalized float32 vector.
func (e *Encoder) encodeInto(descs [][]float32, fv []float64) []float32 {
	g := e.gmm
	if len(descs) == 0 {
		return make([]float32, len(fv))
	}
	for _, x := range descs {
		if len(x) != g.Dim {
			panic(fmt.Sprintf("fisher: descriptor dim %d, want %d", len(x), g.Dim))
		}
	}
	// Shard descriptors across the pool: each chunk accumulates gradients
	// into a pooled partial vector, merged in chunk order so the result is
	// bit-identical regardless of worker count.
	parts := make([][]float64, parallel.Chunks(len(descs), encodeGrain))
	parallel.For(e.Workers, len(descs), encodeGrain, func(chunk, start, end int) {
		part := f64Pool.Get(len(fv))
		resp := f64Pool.Get(g.K)
		for i := start; i < end; i++ {
			x := descs[i]
			g.posteriorsInto(x, resp)
			for c := 0; c < g.K; c++ {
				r := resp[c]
				if r < 1e-12 {
					continue
				}
				mean, vars := g.Means[c], g.Vars[c]
				muOff := c * g.Dim
				sigOff := (g.K + c) * g.Dim
				for j, v := range x {
					sd := math.Sqrt(vars[j])
					u := (float64(v) - mean[j]) / sd
					part[muOff+j] += r * u
					part[sigOff+j] += r * (u*u - 1)
				}
			}
		}
		f64Pool.Put(resp)
		parts[chunk] = part
	})
	for _, part := range parts {
		for i, v := range part {
			fv[i] += v
		}
		f64Pool.Put(part)
	}
	// Fisher information normalization.
	nInv := 1 / float64(len(descs))
	for c := 0; c < g.K; c++ {
		w := g.Weights[c]
		if w <= 0 {
			continue
		}
		muScale := nInv / math.Sqrt(w)
		sigScale := nInv / math.Sqrt(2*w)
		muOff := c * g.Dim
		sigOff := (g.K + c) * g.Dim
		for j := 0; j < g.Dim; j++ {
			fv[muOff+j] *= muScale
			fv[sigOff+j] *= sigScale
		}
	}
	// Power normalization: sign(z) * sqrt(|z|).
	for i, v := range fv {
		fv[i] = math.Copysign(math.Sqrt(math.Abs(v)), v)
	}
	// L2 normalization.
	var norm float64
	for _, v := range fv {
		norm += v * v
	}
	out := make([]float32, len(fv))
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i, v := range fv {
			out[i] = float32(v / norm)
		}
	}
	return out
}
