package fisher

import (
	"math/rand"
	"testing"
)

// Batched kernel contract: EncodeBatch shares one accumulator across the
// batch but every output must be bit-identical to a serial Encode of the
// same descriptor set.
func TestEncodeBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	data := twoClusters(rng, 300, 16)
	g, err := TrainGMM(data, 8, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(g)
	batch := [][][]float32{
		data[:50],
		data[50:51], // single descriptor
		{},          // empty descriptor set mid-batch
		data[51:200],
		data[200:],
	}
	got := e.EncodeBatch(batch)
	if len(got) != len(batch) {
		t.Fatalf("EncodeBatch returned %d vectors, want %d", len(got), len(batch))
	}
	for b, descs := range batch {
		want := e.Encode(descs)
		if len(got[b]) != len(want) {
			t.Fatalf("item %d: length %d, want %d", b, len(got[b]), len(want))
		}
		for i := range want {
			if got[b][i] != want[i] {
				t.Fatalf("item %d: fv[%d] = %v, serial %v", b, i, got[b][i], want[i])
			}
		}
	}
}

func TestEncodeBatchSizeOneAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := twoClusters(rng, 120, 8)
	g, err := TrainGMM(data, 4, 10, 61)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(g)
	one := e.EncodeBatch([][][]float32{data[:37]})
	if len(one) != 1 {
		t.Fatalf("batch of one returned %d vectors", len(one))
	}
	want := e.Encode(data[:37])
	for i := range want {
		if one[0][i] != want[i] {
			t.Fatalf("batch of one: fv[%d] = %v, serial %v", i, one[0][i], want[i])
		}
	}
	if out := e.EncodeBatch(nil); out != nil {
		t.Fatalf("EncodeBatch(nil) = %v, want nil", out)
	}
	if out := e.EncodeBatch([][][]float32{}); out != nil {
		t.Fatalf("EncodeBatch(empty) = %v, want nil", out)
	}
}
