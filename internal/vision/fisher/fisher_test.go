package fisher

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoClusters generates points around two well-separated centers.
func twoClusters(rng *rand.Rand, n, dim int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, dim)
		center := float64(-3)
		if i%2 == 1 {
			center = 3
		}
		for j := range row {
			row[j] = float32(center + rng.NormFloat64()*0.5)
		}
		data[i] = row
	}
	return data
}

func TestTrainGMMErrors(t *testing.T) {
	if _, err := TrainGMM(nil, 2, 5, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("TrainGMM(nil) err = %v", err)
	}
	if _, err := TrainGMM([][]float32{{1}}, 2, 5, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("TrainGMM(k>n) err = %v", err)
	}
	if _, err := TrainGMM([][]float32{{1}, {2, 3}}, 1, 5, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("TrainGMM(ragged) err = %v", err)
	}
	if _, err := TrainGMM([][]float32{{}, {}}, 1, 5, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("TrainGMM(zero-dim) err = %v", err)
	}
}

func TestGMMRecoverClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := twoClusters(rng, 400, 3)
	g, err := TrainGMM(data, 2, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The two component means must be near -3 and +3 (in some order).
	m0 := g.Means[0][0]
	m1 := g.Means[1][0]
	lo, hi := math.Min(m0, m1), math.Max(m0, m1)
	if math.Abs(lo+3) > 0.5 || math.Abs(hi-3) > 0.5 {
		t.Errorf("recovered means %v and %v, want ~-3 and ~+3", lo, hi)
	}
	// Weights near 0.5 each.
	if math.Abs(g.Weights[0]-0.5) > 0.1 {
		t.Errorf("weight = %v, want ~0.5", g.Weights[0])
	}
}

func TestWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, err := TrainGMM(twoClusters(rng, 100, 4), 4, 15, 12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range g.Weights {
		if w < 0 {
			t.Errorf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
}

func TestVariancesFloored(t *testing.T) {
	// Identical points would collapse variance; the floor must hold.
	data := make([][]float32, 20)
	for i := range data {
		data[i] = []float32{1, 2}
	}
	g, err := TrainGMM(data, 2, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	for c := range g.Vars {
		for j, v := range g.Vars[c] {
			if v < varFloor {
				t.Errorf("component %d var[%d] = %v below floor", c, j, v)
			}
		}
	}
}

func TestEMImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := twoClusters(rng, 300, 2)
	g1, err := TrainGMM(data, 2, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	g20, err := TrainGMM(data, 2, 20, 14)
	if err != nil {
		t.Fatal(err)
	}
	ll1 := g1.LogLikelihood(data)
	ll20 := g20.LogLikelihood(data)
	if ll20 < ll1-1e-6 {
		t.Errorf("more EM iterations decreased likelihood: %v -> %v", ll1, ll20)
	}
}

func TestPosteriorsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := twoClusters(rng, 100, 3)
	g, err := TrainGMM(data, 3, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data[:10] {
		p := g.Posteriors(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("posterior %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posteriors sum to %v", sum)
		}
	}
}

func TestEncodeSizeAndNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := twoClusters(rng, 200, 4)
	g, err := TrainGMM(data, 5, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(g)
	if e.Size() != 2*5*4 {
		t.Errorf("Size = %d, want 40", e.Size())
	}
	fv := e.Encode(data[:30])
	if len(fv) != e.Size() {
		t.Fatalf("Encode length = %d, want %d", len(fv), e.Size())
	}
	var norm float64
	for _, v := range fv {
		norm += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-5 {
		t.Errorf("FV norm = %v, want 1", math.Sqrt(norm))
	}
}

func TestEncodeEmptySet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := TrainGMM(twoClusters(rng, 50, 3), 2, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	fv := NewEncoder(g).Encode(nil)
	if len(fv) != 2*2*3 {
		t.Fatalf("empty encode length = %d", len(fv))
	}
	for _, v := range fv {
		if v != 0 {
			t.Fatal("empty descriptor set should encode to zero vector")
		}
	}
}

func TestEncodeDiscriminates(t *testing.T) {
	// FVs of descriptor sets drawn from different clusters should be
	// farther apart than FVs of sets from the same cluster.
	rng := rand.New(rand.NewSource(18))
	data := twoClusters(rng, 400, 3)
	g, err := TrainGMM(data, 2, 20, 18)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(g)
	var clusterA, setB [][]float32
	for i, row := range data {
		switch {
		case i%2 == 0 && len(clusterA) < 50:
			clusterA = append(clusterA, row)
		case i%2 == 1 && len(setB) < 40:
			setB = append(setB, row)
		}
	}
	// Two views of the same scene share most descriptors (as consecutive
	// video frames do); a different object shares none.
	setA1 := clusterA[:40]
	setA2 := clusterA[10:50]
	fvA1 := e.Encode(setA1)
	fvA2 := e.Encode(setA2)
	fvB := e.Encode(setB)
	same := l2(fvA1, fvA2)
	diff := l2(fvA1, fvB)
	if same >= diff {
		t.Errorf("same-cluster FV distance %v >= cross-cluster %v", same, diff)
	}
}

func l2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestNewEncoderPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEncoder(nil) did not panic")
		}
	}()
	NewEncoder(nil)
}

func TestTrainingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	data := twoClusters(rng, 150, 3)
	g1, err := TrainGMM(data, 3, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := TrainGMM(data, 3, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for j := 0; j < 3; j++ {
			if g1.Means[c][j] != g2.Means[c][j] {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

// Property: Fisher vectors always have norm <= 1 + eps and exactly 1 for
// non-degenerate input.
func TestEncodeNormProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g, err := TrainGMM(twoClusters(rng, 100, 2), 2, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(g)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		descs := make([][]float32, n)
		for i := range descs {
			descs[i] = []float32{float32(r.NormFloat64() * 3), float32(r.NormFloat64() * 3)}
		}
		fv := e.Encode(descs)
		var norm float64
		for _, v := range fv {
			norm += float64(v) * float64(v)
		}
		return math.Sqrt(norm) <= 1+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Parallel kernel contract: Encode is bit-identical for any worker count.
func TestEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	data := twoClusters(rng, 300, 16)
	g, err := TrainGMM(data, 8, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewEncoder(g)
	serial.Workers = 1
	want := serial.Encode(data[:130])
	for _, workers := range []int{2, 4, 8} {
		e := NewEncoder(g)
		e.Workers = workers
		got := e.Encode(data[:130])
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: fv[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// Parallel kernel contract: EM training is bit-identical for any worker
// count (per-chunk accumulators merged in chunk order).
func TestTrainGMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := twoClusters(rng, 257, 5)
	want, err := trainGMM(data, 4, 12, 41, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := trainGMM(data, 4, 12, 41, workers)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			if got.Weights[c] != want.Weights[c] {
				t.Fatalf("workers=%d: weight[%d] = %v, serial %v", workers, c, got.Weights[c], want.Weights[c])
			}
			for j := 0; j < 5; j++ {
				if got.Means[c][j] != want.Means[c][j] || got.Vars[c][j] != want.Vars[c][j] {
					t.Fatalf("workers=%d: component %d dim %d differs from serial", workers, c, j)
				}
			}
		}
	}
}

func BenchmarkEncode64Descs(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	data := twoClusters(rng, 300, 32)
	g, err := TrainGMM(data, 16, 10, 21)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEncoder(g)
	descs := data[:64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(descs)
	}
}

// BenchmarkEncode512Descs is the per-kernel scaling row at a realistic
// per-frame descriptor count; compare with -cpu 1,4,8.
func BenchmarkEncode512Descs(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	data := twoClusters(rng, 512, 32)
	g, err := TrainGMM(data, 16, 10, 22)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEncoder(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(data)
	}
}

// BenchmarkTrainGMM is the EM-training scaling row; compare with
// -cpu 1,4,8.
func BenchmarkTrainGMM(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	data := twoClusters(rng, 600, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainGMM(data, 16, 5, 23); err != nil {
			b.Fatal(err)
		}
	}
}
