package orb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
)

// testPattern renders blocks with strong corners.
func testPattern(w, h int, seed int64) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = 0.2
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 10; i++ {
		bx := 20 + rng.Intn(w-50)
		by := 20 + rng.Intn(h-50)
		side := 8 + rng.Intn(14)
		val := 0.55 + 0.45*rng.Float32()
		for y := by; y < by+side && y < h; y++ {
			for x := bx; x < bx+side && x < w; x++ {
				g.Set(x, y, val)
			}
		}
	}
	return g
}

func TestDetectFindsCorners(t *testing.T) {
	img := testPattern(160, 120, 3)
	d := New(Config{})
	feats := d.Detect(img)
	if len(feats) < 8 {
		t.Fatalf("only %d features on a blocky image", len(feats))
	}
	for i := 1; i < len(feats); i++ {
		if feats[i].Score > feats[i-1].Score {
			t.Fatal("features not sorted by score")
		}
	}
	for _, f := range feats {
		if f.X < 0 || f.X >= float64(img.W) || f.Y < 0 || f.Y >= float64(img.H) {
			t.Errorf("feature outside image: (%v, %v)", f.X, f.Y)
		}
	}
}

func TestDetectEmptyOnFlat(t *testing.T) {
	img := imgproc.NewGray(100, 80)
	for i := range img.Pix {
		img.Pix[i] = 0.5
	}
	if feats := New(Config{}).Detect(img); len(feats) != 0 {
		t.Errorf("flat image produced %d features", len(feats))
	}
}

func TestDetectTinyImage(t *testing.T) {
	img := imgproc.NewGray(10, 10)
	if feats := New(Config{}).Detect(img); feats != nil {
		t.Errorf("tiny image produced %v", feats)
	}
}

func TestMaxFeatures(t *testing.T) {
	img := testPattern(160, 120, 3)
	feats := New(Config{MaxFeatures: 5}).Detect(img)
	if len(feats) > 5 {
		t.Errorf("cap ignored: %d features", len(feats))
	}
}

func TestHamming(t *testing.T) {
	var a, b Descriptor
	if Hamming(&a, &b) != 0 {
		t.Error("identical descriptors differ")
	}
	b[0] = 0b1011
	if got := Hamming(&a, &b); got != 3 {
		t.Errorf("Hamming = %d, want 3", got)
	}
	for i := range b {
		a[i] = 0
		b[i] = ^uint64(0)
	}
	if got := Hamming(&a, &b); got != DescriptorBits {
		t.Errorf("all-bits Hamming = %d, want %d", got, DescriptorBits)
	}
}

func TestDescriptorsMatchAcrossNoise(t *testing.T) {
	img := testPattern(160, 120, 4)
	noisy := img.Clone()
	rng := rand.New(rand.NewSource(9))
	for i := range noisy.Pix {
		noisy.Pix[i] += float32(rng.NormFloat64() * 0.01)
	}
	d := New(Config{})
	a := d.Detect(img)
	b := d.Detect(noisy)
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no features")
	}
	matches := MatchFeatures(a, b, 64, 0.9)
	if len(matches) == 0 {
		t.Fatal("no matches across mild noise")
	}
	// Matches must be spatially consistent (same image coordinates).
	consistent := 0
	for _, m := range matches {
		dx := a[m.QueryIdx].X - b[m.TrainIdx].X
		dy := a[m.QueryIdx].Y - b[m.TrainIdx].Y
		if math.Hypot(dx, dy) < 3 {
			consistent++
		}
	}
	if frac := float64(consistent) / float64(len(matches)); frac < 0.7 {
		t.Errorf("only %.0f%% of matches spatially consistent", frac*100)
	}
}

func TestDeterministic(t *testing.T) {
	img := testPattern(160, 120, 5)
	a := New(Config{Seed: 42}).Detect(img)
	b := New(Config{Seed: 42}).Detect(img)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different features")
		}
	}
}

func TestFloat32DescriptorEmbedding(t *testing.T) {
	var a, b Descriptor
	a[0] = 0xFF
	fa, fb := Float32Descriptor(&a), Float32Descriptor(&b)
	if len(fa) != DescriptorBits {
		t.Fatalf("embedding dim = %d", len(fa))
	}
	var normA, dot float64
	for i := range fa {
		normA += float64(fa[i]) * float64(fa[i])
		dot += float64(fa[i]-fb[i]) * float64(fa[i]-fb[i])
	}
	if math.Abs(normA-1) > 1e-5 {
		t.Errorf("embedding norm² = %v, want 1", normA)
	}
	// Squared Euclidean distance = 4/DescriptorBits × Hamming distance.
	wantDot := 4.0 / DescriptorBits * float64(Hamming(&a, &b))
	if math.Abs(dot-wantDot) > 1e-5 {
		t.Errorf("embedding distance² = %v, want %v", dot, wantDot)
	}
}

// Property: the embedding preserves the Hamming metric exactly (up to a
// constant factor) for random descriptor pairs.
func TestEmbeddingIsometryProperty(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint64) bool {
		a := Descriptor{a0, a1, a2, a3}
		b := Descriptor{b0, b1, b2, b3}
		fa, fb := Float32Descriptor(&a), Float32Descriptor(&b)
		var d2 float64
		for i := range fa {
			d := float64(fa[i] - fb[i])
			d2 += d * d
		}
		want := 4.0 / DescriptorBits * float64(Hamming(&a, &b))
		return math.Abs(d2-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatchFeaturesEmpty(t *testing.T) {
	if m := MatchFeatures(nil, nil, 0, 0); len(m) != 0 {
		t.Errorf("empty match = %v", m)
	}
}

func BenchmarkDetect320x180(b *testing.B) {
	img := testPattern(320, 180, 6)
	d := New(Config{MaxFeatures: 150})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(img)
	}
}
