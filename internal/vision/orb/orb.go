// Package orb implements an ORB-style fast feature extractor — FAST-9
// corner detection with non-maximum suppression, intensity-centroid
// orientation, and a 256-bit rotated-BRIEF binary descriptor matched
// under Hamming distance.
//
// The paper's §5 notes that substituting SIFT with a faster extractor
// (citing an energy-efficient SIFT accelerator) shifts the pipeline's
// saturation point to more clients without changing the architectural
// bottlenecks. This package provides that faster extractor for the real
// pipeline: roughly an order of magnitude cheaper than the SIFT
// implementation, with descriptors embeddable into the same PCA/Fisher
// pipeline through Float32Descriptor.
package orb

import (
	"math"
	"math/rand"
	"sort"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
)

// DescriptorBits is the BRIEF descriptor length in bits.
const DescriptorBits = 256

// DescriptorWords is the descriptor length in 64-bit words.
const DescriptorWords = DescriptorBits / 64

// Descriptor is a 256-bit binary BRIEF descriptor.
type Descriptor [DescriptorWords]uint64

// Hamming returns the number of differing bits between two descriptors.
func Hamming(a, b *Descriptor) int {
	d := 0
	for i := range a {
		d += popcount(a[i] ^ b[i])
	}
	return d
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Feature is one detected keypoint with its descriptor.
type Feature struct {
	X, Y        float64
	Score       float64 // FAST corner score (sum of absolute differences)
	Orientation float64 // radians
	Desc        Descriptor
}

// Config controls detection. Zero values take defaults.
type Config struct {
	// Threshold is the FAST intensity threshold in [0,1] (default 0.08).
	Threshold float64
	// MaxFeatures caps returned features by score (0 = no cap).
	MaxFeatures int
	// PatchRadius is the descriptor sampling radius (default 12).
	PatchRadius int
	// Seed fixes the BRIEF sampling pattern (default 1).
	Seed int64
}

// Detector extracts ORB features. Safe for concurrent use after creation.
type Detector struct {
	cfg   Config
	pairs [DescriptorBits][4]float64 // x1, y1, x2, y2 sampling offsets
}

// New builds a detector with a seeded BRIEF pattern.
func New(cfg Config) *Detector {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.08
	}
	if cfg.PatchRadius <= 0 {
		cfg.PatchRadius = 12
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	d := &Detector{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := float64(cfg.PatchRadius)
	for i := range d.pairs {
		// Gaussian-distributed point pairs clipped to the patch.
		clip := func(v float64) float64 {
			if v > r {
				return r
			}
			if v < -r {
				return -r
			}
			return v
		}
		d.pairs[i] = [4]float64{
			clip(rng.NormFloat64() * r / 2), clip(rng.NormFloat64() * r / 2),
			clip(rng.NormFloat64() * r / 2), clip(rng.NormFloat64() * r / 2),
		}
	}
	return d
}

// circleOffsets is the Bresenham circle of radius 3 used by FAST-9.
var circleOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// fastScore returns a positive corner score if (x, y) is a FAST-9 corner
// (≥9 contiguous circle pixels all brighter or all darker than the
// center by the threshold), else 0.
func fastScore(img *imgproc.Gray, x, y int, threshold float32) float64 {
	c := img.Pix[y*img.W+x]
	var brighter, darker [16]bool
	var diff [16]float32
	for i, off := range circleOffsets {
		v := img.Pix[(y+off[1])*img.W+(x+off[0])]
		d := v - c
		diff[i] = d
		brighter[i] = d > threshold
		darker[i] = d < -threshold
	}
	contiguous := func(mask *[16]bool) bool {
		run := 0
		// Scan twice around the circle to catch wraparound runs.
		for i := 0; i < 32; i++ {
			if mask[i%16] {
				run++
				if run >= 9 {
					return true
				}
			} else {
				run = 0
			}
		}
		return false
	}
	if !contiguous(&brighter) && !contiguous(&darker) {
		return 0
	}
	score := 0.0
	for _, d := range diff {
		score += math.Abs(float64(d))
	}
	return score
}

// Detect extracts features from the image, ordered by decreasing score.
func (d *Detector) Detect(img *imgproc.Gray) []Feature {
	border := d.cfg.PatchRadius + 4
	if img.W <= 2*border || img.H <= 2*border {
		return nil
	}
	threshold := float32(d.cfg.Threshold)
	type corner struct {
		x, y  int
		score float64
	}
	scores := make([]float64, img.W*img.H)
	var corners []corner
	for y := border; y < img.H-border; y++ {
		for x := border; x < img.W-border; x++ {
			s := fastScore(img, x, y, threshold)
			if s > 0 {
				scores[y*img.W+x] = s
				corners = append(corners, corner{x: x, y: y, score: s})
			}
		}
	}
	// 3×3 non-maximum suppression.
	smoothed := imgproc.GaussianBlur(img, 2.0)
	var feats []Feature
	for _, c := range corners {
		max := true
		for dy := -1; dy <= 1 && max; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if scores[(c.y+dy)*img.W+(c.x+dx)] > c.score {
					max = false
					break
				}
			}
		}
		if !max {
			continue
		}
		ori := orientation(img, c.x, c.y, d.cfg.PatchRadius)
		f := Feature{X: float64(c.x), Y: float64(c.y), Score: c.score, Orientation: ori}
		f.Desc = d.describe(smoothed, c.x, c.y, ori)
		feats = append(feats, f)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].Score > feats[j].Score })
	if d.cfg.MaxFeatures > 0 && len(feats) > d.cfg.MaxFeatures {
		feats = feats[:d.cfg.MaxFeatures]
	}
	return feats
}

// orientation computes the intensity-centroid angle of the patch.
func orientation(img *imgproc.Gray, x, y, radius int) float64 {
	var m10, m01 float64
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy > radius*radius {
				continue
			}
			v := float64(img.At(x+dx, y+dy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	return math.Atan2(m01, m10)
}

// describe samples the rotated BRIEF pattern on the smoothed image.
func (d *Detector) describe(img *imgproc.Gray, x, y int, ori float64) Descriptor {
	var desc Descriptor
	cosT, sinT := math.Cos(ori), math.Sin(ori)
	fx, fy := float64(x), float64(y)
	for i, p := range d.pairs {
		x1 := fx + cosT*p[0] - sinT*p[1]
		y1 := fy + sinT*p[0] + cosT*p[1]
		x2 := fx + cosT*p[2] - sinT*p[3]
		y2 := fy + sinT*p[2] + cosT*p[3]
		if img.BilinearAt(x1, y1) < img.BilinearAt(x2, y2) {
			desc[i/64] |= 1 << uint(i%64)
		}
	}
	return desc
}

// Float32Descriptor embeds a binary descriptor into Euclidean space
// (bit → ±1, L2-normalized), so ORB features can flow through the same
// PCA/Fisher encoding pipeline as SIFT descriptors. Squared Euclidean
// distance of embeddings is proportional to Hamming distance.
func Float32Descriptor(d *Descriptor) []float32 {
	out := make([]float32, DescriptorBits)
	norm := float32(1 / math.Sqrt(DescriptorBits))
	for i := 0; i < DescriptorBits; i++ {
		if d[i/64]&(1<<uint(i%64)) != 0 {
			out[i] = norm
		} else {
			out[i] = -norm
		}
	}
	return out
}

// Match associates each query feature with its nearest train feature by
// Hamming distance, keeping matches below maxDist that also pass the
// ratio test against the second-nearest (ratio in (0, 1), typical 0.9
// for binary descriptors).
type Match struct {
	QueryIdx, TrainIdx int
	Dist               int
}

// MatchFeatures performs ratio-tested Hamming matching.
func MatchFeatures(query, train []Feature, maxDist int, ratio float64) []Match {
	if maxDist <= 0 {
		maxDist = 64
	}
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.9
	}
	var out []Match
	for qi := range query {
		best, second := DescriptorBits+1, DescriptorBits+1
		bestIdx := -1
		for ti := range train {
			dist := Hamming(&query[qi].Desc, &train[ti].Desc)
			if dist < best {
				second = best
				best = dist
				bestIdx = ti
			} else if dist < second {
				second = dist
			}
		}
		if bestIdx < 0 || best > maxDist {
			continue
		}
		if float64(best) < ratio*float64(second) {
			out = append(out, Match{QueryIdx: qi, TrainIdx: bestIdx, Dist: best})
		}
	}
	return out
}
