// Package pca implements principal component analysis for descriptor
// compression, the first half of scAtteR's encoding service. Descriptors
// (128-d SIFT vectors) are projected onto the top-k eigenvectors of their
// covariance matrix, computed with a cyclic Jacobi eigensolver — no
// external linear-algebra dependency.
package pca

import (
	"errors"
	"fmt"
	"math"
)

// Projection is a fitted PCA model: a mean vector and k orthonormal
// principal components (rows of Components), ordered by decreasing
// eigenvalue.
type Projection struct {
	Dim         int         // input dimensionality
	K           int         // output dimensionality
	Mean        []float64   // length Dim
	Components  [][]float64 // K rows × Dim columns, orthonormal
	Eigenvalues []float64   // length K, descending
}

// ErrInsufficientData is returned by Fit when there are fewer than two
// samples or the requested output dimensionality exceeds the input.
var ErrInsufficientData = errors.New("pca: insufficient data")

// Fit computes a PCA projection from data (n samples × d dims) keeping the
// top k components. All samples must share the same dimensionality.
func Fit(data [][]float32, k int) (*Projection, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 samples, got %d", ErrInsufficientData, n)
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional samples", ErrInsufficientData)
	}
	if k <= 0 || k > d {
		return nil, fmt.Errorf("%w: k=%d outside (0, %d]", ErrInsufficientData, k, d)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("pca: sample %d has dim %d, want %d", i, len(row), d)
		}
	}

	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Covariance matrix (d×d, symmetric).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range data {
		for i := 0; i < d; i++ {
			ci := float64(row[i]) - mean[i]
			if ci == 0 {
				continue
			}
			covi := cov[i]
			for j := i; j < d; j++ {
				covi[j] += ci * (float64(row[j]) - mean[j])
			}
		}
	}
	inv := 1 / float64(n-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}

	vals, vecs := jacobiEigen(cov)

	// Sort indices by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if vals[idx[j]] > vals[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}

	p := &Projection{Dim: d, K: k, Mean: mean}
	for c := 0; c < k; c++ {
		col := idx[c]
		comp := make([]float64, d)
		for r := 0; r < d; r++ {
			comp[r] = vecs[r][col]
		}
		p.Components = append(p.Components, comp)
		ev := vals[col]
		if ev < 0 {
			ev = 0 // numerical noise on rank-deficient data
		}
		p.Eigenvalues = append(p.Eigenvalues, ev)
	}
	return p, nil
}

// jacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi method. a is modified in place. The
// returned vecs matrix has eigenvectors in its columns.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := a[p][p]
				aqq := a[q][q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := a[i][p]
					aiq := a[i][q]
					a[i][p] = c*aip - s*aiq
					a[p][i] = a[i][p]
					a[i][q] = s*aip + c*aiq
					a[q][i] = a[i][q]
				}
				for i := 0; i < n; i++ {
					vip := vecs[i][p]
					viq := vecs[i][q]
					vecs[i][p] = c*vip - s*viq
					vecs[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, vecs
}

// Project maps an input vector to its k-dimensional PCA coefficients.
// It panics if the vector has the wrong dimensionality.
func (p *Projection) Project(v []float32) []float32 {
	if len(v) != p.Dim {
		panic(fmt.Sprintf("pca: project dim %d, want %d", len(v), p.Dim))
	}
	out := make([]float32, p.K)
	centered := make([]float64, p.Dim)
	for i, x := range v {
		centered[i] = float64(x) - p.Mean[i]
	}
	for c, comp := range p.Components {
		var dot float64
		for i, x := range centered {
			dot += x * comp[i]
		}
		out[c] = float32(dot)
	}
	return out
}

// ProjectAll maps a batch of vectors.
func (p *Projection) ProjectAll(data [][]float32) [][]float32 {
	out := make([][]float32, len(data))
	for i, v := range data {
		out[i] = p.Project(v)
	}
	return out
}

// Reconstruct maps k-dimensional coefficients back to the input space —
// used by tests to verify reconstruction error decreases with k.
func (p *Projection) Reconstruct(coeffs []float32) []float32 {
	if len(coeffs) != p.K {
		panic(fmt.Sprintf("pca: reconstruct dim %d, want %d", len(coeffs), p.K))
	}
	out := make([]float32, p.Dim)
	for i := 0; i < p.Dim; i++ {
		acc := p.Mean[i]
		for c := range p.Components {
			acc += float64(coeffs[c]) * p.Components[c][i]
		}
		out[i] = float32(acc)
	}
	return out
}

// ExplainedVariance returns the fraction of total variance captured by the
// kept components. Requires the caller to pass the total variance of the
// training data (sum of all eigenvalues, i.e. trace of covariance).
func (p *Projection) ExplainedVariance(totalVariance float64) float64 {
	if totalVariance <= 0 {
		return 0
	}
	var kept float64
	for _, ev := range p.Eigenvalues {
		kept += ev
	}
	frac := kept / totalVariance
	if frac > 1 {
		frac = 1
	}
	return frac
}
