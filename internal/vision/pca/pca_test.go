package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussianCloud generates n samples in d dims where variance is
// concentrated along the first few axes (axis i has stddev 1/(i+1)).
func gaussianCloud(rng *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(rng.NormFloat64() / float64(j+1))
		}
		data[i] = row
	}
	return data
}

func TestFitErrors(t *testing.T) {
	_, err := Fit(nil, 2)
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Fit(nil) err = %v, want ErrInsufficientData", err)
	}
	_, err = Fit([][]float32{{1, 2}}, 1)
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Fit(1 sample) err = %v, want ErrInsufficientData", err)
	}
	_, err = Fit([][]float32{{1, 2}, {3, 4}}, 3)
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Fit(k>d) err = %v, want ErrInsufficientData", err)
	}
	_, err = Fit([][]float32{{1, 2}, {3, 4, 5}}, 1)
	if err == nil {
		t.Error("Fit with ragged samples did not error")
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := gaussianCloud(rng, 200, 10)
	p, err := Fit(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.K; i++ {
		for j := i; j < p.K; j++ {
			var dot float64
			for m := 0; m < p.Dim; m++ {
				dot += p.Components[i][m] * p.Components[j][m]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d·%d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestEigenvaluesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := Fit(gaussianCloud(rng, 300, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Eigenvalues); i++ {
		if p.Eigenvalues[i] > p.Eigenvalues[i-1]+1e-12 {
			t.Errorf("eigenvalues not descending at %d: %v > %v",
				i, p.Eigenvalues[i], p.Eigenvalues[i-1])
		}
		if p.Eigenvalues[i] < 0 {
			t.Errorf("negative eigenvalue %v", p.Eigenvalues[i])
		}
	}
}

func TestRecoversDominantAxis(t *testing.T) {
	// Data varies almost entirely along axis 0: the first principal
	// component must align with e0 (up to sign).
	rng := rand.New(rand.NewSource(2))
	data := make([][]float32, 500)
	for i := range data {
		row := make([]float32, 6)
		row[0] = float32(rng.NormFloat64() * 10)
		for j := 1; j < 6; j++ {
			row[j] = float32(rng.NormFloat64() * 0.01)
		}
		data[i] = row
	}
	p, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Abs(p.Components[0][0]); got < 0.999 {
		t.Errorf("first PC alignment with dominant axis = %v, want ~1", got)
	}
}

func TestReconstructionErrorDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := gaussianCloud(rng, 150, 12)
	var prevErr float64 = math.Inf(1)
	for _, k := range []int{1, 3, 6, 12} {
		p, err := Fit(data, k)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, row := range data {
			rec := p.Reconstruct(p.Project(row))
			for j := range row {
				d := float64(row[j] - rec[j])
				total += d * d
			}
		}
		if total > prevErr+1e-6 {
			t.Errorf("reconstruction error increased with k=%d: %v > %v", k, total, prevErr)
		}
		prevErr = total
	}
	// With k = d, reconstruction should be near-perfect.
	if prevErr > 1e-3 {
		t.Errorf("full-rank reconstruction error = %v, want ~0", prevErr)
	}
}

func TestProjectionCentersData(t *testing.T) {
	// The mean of projected training data should be ~0.
	rng := rand.New(rand.NewSource(4))
	data := make([][]float32, 100)
	for i := range data {
		row := make([]float32, 5)
		for j := range row {
			row[j] = float32(5 + rng.NormFloat64())
		}
		data[i] = row
	}
	p, err := Fit(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.ProjectAll(data)
	sums := make([]float64, 3)
	for _, row := range proj {
		for j, v := range row {
			sums[j] += float64(v)
		}
	}
	for j, s := range sums {
		if math.Abs(s/float64(len(proj))) > 1e-3 {
			t.Errorf("projected mean along %d = %v, want ~0", j, s/float64(len(proj)))
		}
	}
}

func TestProjectPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := Fit(gaussianCloud(rng, 50, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Project with wrong dim did not panic")
		}
	}()
	p.Project([]float32{1, 2, 3})
}

func TestExplainedVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := gaussianCloud(rng, 400, 6)
	pFull, err := Fit(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, ev := range pFull.Eigenvalues {
		total += ev
	}
	if frac := pFull.ExplainedVariance(total); math.Abs(frac-1) > 1e-9 {
		t.Errorf("full-rank explained variance = %v, want 1", frac)
	}
	p1, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	frac := p1.ExplainedVariance(total)
	if frac <= 0 || frac >= 1 {
		t.Errorf("k=1 explained variance = %v, want in (0, 1)", frac)
	}
	if pFull.ExplainedVariance(0) != 0 {
		t.Error("ExplainedVariance(0) != 0")
	}
}

func TestJacobiOnKnownMatrix(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := jacobiEigen(a)
	got := []float64{vals[0], vals[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-10 || math.Abs(got[1]-3) > 1e-10 {
		t.Errorf("eigenvalues = %v, want [1 3]", got)
	}
	// Eigenvector columns must be unit length.
	for c := 0; c < 2; c++ {
		n := vecs[0][c]*vecs[0][c] + vecs[1][c]*vecs[1][c]
		if math.Abs(n-1) > 1e-10 {
			t.Errorf("eigenvector %d norm^2 = %v", c, n)
		}
	}
}

// Property: projection preserves pairwise distances when k = d (orthogonal
// transform after centering).
func TestFullRankIsometryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := gaussianCloud(rng, 30, 5)
		p, err := Fit(data, 5)
		if err != nil {
			return false
		}
		a, b := data[0], data[1]
		pa, pb := p.Project(a), p.Project(b)
		var dOrig, dProj float64
		for i := range a {
			d := float64(a[i] - b[i])
			dOrig += d * d
		}
		for i := range pa {
			d := float64(pa[i] - pb[i])
			dProj += d * d
		}
		return math.Abs(dOrig-dProj) < 1e-3*(1+dOrig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFit128D(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	data := gaussianCloud(rng, 256, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProject128To32(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	data := gaussianCloud(rng, 256, 128)
	p, err := Fit(data, 32)
	if err != nil {
		b.Fatal(err)
	}
	v := data[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Project(v)
	}
}
