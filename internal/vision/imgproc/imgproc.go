// Package imgproc provides the image-processing substrate used by the
// scAtteR vision services: grayscale float images, separable Gaussian
// filtering, bilinear resampling, and gradient computation.
//
// All operations work on Gray, a float32 single-channel image with values
// nominally in [0, 1]. The representation is row-major with no padding so
// that pyramid levels and scratch buffers can be pooled and reused.
package imgproc

import (
	"fmt"
	"math"

	"github.com/edge-mar/scatter/internal/vision/parallel"
)

// convGrain is the row granularity of the parallel separable convolution.
// Every output pixel is an independent exact computation, so the fan-out
// is bit-identical to the serial scan at any worker count.
const convGrain = 16

// Gray is a single-channel float32 image. Pixel (x, y) is stored at
// Pix[y*W+x]. Values are nominally in [0, 1] but intermediate results
// (for example difference-of-Gaussian responses) may leave that range.
type Gray struct {
	W, H int
	Pix  []float32
}

// NewGray allocates a zeroed w×h image. It panics if either dimension is
// not positive, since a zero-sized image is always a programming error in
// this codebase.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds coordinates are clamped to
// the image border, which is the boundary handling used by every filter in
// this package.
func (g *Gray) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y). Out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v float32) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy of the image.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// BilinearAt samples the image at a sub-pixel location with bilinear
// interpolation, clamping at the borders.
func (g *Gray) BilinearAt(x, y float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := g.At(x0, y0)
	v10 := g.At(x0+1, y0)
	v01 := g.At(x0, y0+1)
	v11 := g.At(x0+1, y0+1)
	top := v00 + fx*(v10-v00)
	bot := v01 + fx*(v11-v01)
	return top + fy*(bot-top)
}

// GaussianKernel returns a normalized 1-D Gaussian kernel for the given
// sigma. The radius is ceil(3*sigma), which captures >99.7% of the mass.
// sigma must be positive.
func GaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		panic("imgproc: sigma must be positive")
	}
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float32, 2*radius+1)
	sum := float32(0)
	inv := -1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := float32(math.Exp(float64(i*i) * inv))
		k[i+radius] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// convolveH convolves src horizontally with kernel k into dst, fanning
// rows out across workers (0 = GOMAXPROCS, 1 = serial). dst and src must
// have identical dimensions and must not alias.
func convolveH(dst, src *Gray, k []float32, workers int) {
	radius := len(k) / 2
	parallel.For(workers, src.H, convGrain, func(_, start, end int) {
		for y := start; y < end; y++ {
			row := src.Pix[y*src.W : (y+1)*src.W]
			for x := 0; x < src.W; x++ {
				var acc float32
				for i := -radius; i <= radius; i++ {
					xx := x + i
					if xx < 0 {
						xx = 0
					} else if xx >= src.W {
						xx = src.W - 1
					}
					acc += row[xx] * k[i+radius]
				}
				dst.Pix[y*src.W+x] = acc
			}
		}
	})
}

// convolveV convolves src vertically with kernel k into dst, fanning rows
// out across workers. dst and src must have identical dimensions and must
// not alias.
func convolveV(dst, src *Gray, k []float32, workers int) {
	radius := len(k) / 2
	parallel.For(workers, src.H, convGrain, func(_, start, end int) {
		for y := start; y < end; y++ {
			for x := 0; x < src.W; x++ {
				var acc float32
				for i := -radius; i <= radius; i++ {
					yy := y + i
					if yy < 0 {
						yy = 0
					} else if yy >= src.H {
						yy = src.H - 1
					}
					acc += src.Pix[yy*src.W+x] * k[i+radius]
				}
				dst.Pix[y*src.W+x] = acc
			}
		}
	})
}

// GaussianBlur returns a new image blurred with a separable Gaussian of the
// given sigma. The source image is not modified.
func GaussianBlur(src *Gray, sigma float64) *Gray {
	return GaussianBlurWorkers(src, sigma, 0)
}

// GaussianBlurWorkers is GaussianBlur with an explicit worker count for
// the row-parallel convolution passes (0 = GOMAXPROCS, 1 = serial). The
// result is bit-identical at any setting — each output pixel is computed
// independently.
func GaussianBlurWorkers(src *Gray, sigma float64, workers int) *Gray {
	k := GaussianKernel(sigma)
	tmp := NewGray(src.W, src.H)
	dst := NewGray(src.W, src.H)
	convolveH(tmp, src, k, workers)
	convolveV(dst, tmp, k, workers)
	return dst
}

// Subtract returns a-b pixel-wise. The images must have equal dimensions.
func Subtract(a, b *Gray) *Gray {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("imgproc: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	out := NewGray(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// Downsample returns the image reduced by a factor of two using 2×2 box
// averaging. Odd trailing rows/columns are dropped. The result is at least
// 1×1.
func Downsample(src *Gray) *Gray {
	w := src.W / 2
	h := src.H / 2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := 2 * x
			sy := 2 * y
			sum := src.At(sx, sy) + src.At(sx+1, sy) + src.At(sx, sy+1) + src.At(sx+1, sy+1)
			out.Pix[y*w+x] = sum / 4
		}
	}
	return out
}

// Resize returns the image resampled to w×h with bilinear interpolation.
func Resize(src *Gray, w, h int) *Gray {
	out := NewGray(w, h)
	sx := float64(src.W) / float64(w)
	sy := float64(src.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			out.Pix[y*w+x] = src.BilinearAt(fx, fy)
		}
	}
	return out
}

// Gradient computes central-difference gradient magnitude and orientation
// (radians in [-pi, pi]) at (x, y).
func Gradient(g *Gray, x, y int) (mag, theta float64) {
	dx := float64(g.At(x+1, y) - g.At(x-1, y))
	dy := float64(g.At(x, y+1) - g.At(x, y-1))
	return math.Hypot(dx, dy), math.Atan2(dy, dx)
}

// RGB is an 8-bit three-channel image used by the synthetic trace renderer.
// Pixel (x, y) occupies Pix[3*(y*W+x) : 3*(y*W+x)+3].
type RGB struct {
	W, H int
	Pix  []uint8
}

// NewRGB allocates a zeroed (black) w×h RGB image.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// Set writes an RGB pixel; out-of-bounds writes are ignored.
func (m *RGB) Set(x, y int, r, g, b uint8) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return
	}
	i := 3 * (y*m.W + x)
	m.Pix[i] = r
	m.Pix[i+1] = g
	m.Pix[i+2] = b
}

// AtRGB reads an RGB pixel with border clamping.
func (m *RGB) AtRGB(x, y int) (r, g, b uint8) {
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Grayscale converts an RGB image to Gray using the ITU-R BT.601 luma
// weights, matching the grayscaling step of scAtteR's primary service.
func Grayscale(m *RGB) *Gray {
	out := NewGray(m.W, m.H)
	for i := 0; i < m.W*m.H; i++ {
		r := float32(m.Pix[3*i])
		g := float32(m.Pix[3*i+1])
		b := float32(m.Pix[3*i+2])
		out.Pix[i] = (0.299*r + 0.587*g + 0.114*b) / 255
	}
	return out
}
