package imgproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGrayPanicsOnInvalidSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-3, 4}, {4, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGray(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			NewGray(dims[0], dims[1])
		}()
	}
}

func TestAtClampsBorders(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(0, 0, 1)
	g.Set(3, 2, 2)
	if got := g.At(-5, -5); got != 1 {
		t.Errorf("At(-5,-5) = %v, want 1 (clamped to origin)", got)
	}
	if got := g.At(100, 100); got != 2 {
		t.Errorf("At(100,100) = %v, want 2 (clamped to far corner)", got)
	}
}

func TestSetIgnoresOutOfBounds(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(-1, 0, 9)
	g.Set(0, -1, 9)
	g.Set(2, 0, 9)
	g.Set(0, 2, 9)
	for i, v := range g.Pix {
		if v != 0 {
			t.Errorf("pixel %d modified by out-of-bounds Set: %v", i, v)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(1, 1, 0.5)
	c := g.Clone()
	c.Set(1, 1, 0.9)
	if g.At(1, 1) != 0.5 {
		t.Error("Clone shares pixel storage with original")
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.0, 1.6, 3.2} {
		k := GaussianKernel(sigma)
		if len(k)%2 == 0 {
			t.Errorf("sigma=%v: kernel length %d is even", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("sigma=%v: kernel sums to %v, want 1", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("sigma=%v: kernel not symmetric at %d", sigma, i)
			}
		}
		// Peak at center.
		mid := len(k) / 2
		for i, v := range k {
			if v > k[mid] {
				t.Errorf("sigma=%v: kernel[%d]=%v exceeds center %v", sigma, i, v, k[mid])
			}
		}
	}
}

func TestGaussianKernelPanicsOnNonPositiveSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GaussianKernel(0) did not panic")
		}
	}()
	GaussianKernel(0)
}

func TestGaussianBlurPreservesConstantImage(t *testing.T) {
	g := NewGray(16, 12)
	for i := range g.Pix {
		g.Pix[i] = 0.37
	}
	b := GaussianBlur(g, 1.6)
	for i, v := range b.Pix {
		if math.Abs(float64(v)-0.37) > 1e-5 {
			t.Fatalf("blurred constant image has pixel %d = %v, want 0.37", i, v)
		}
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	// An impulse should spread: center decreases, neighbors increase.
	g := NewGray(15, 15)
	g.Set(7, 7, 1)
	b := GaussianBlur(g, 1.0)
	if b.At(7, 7) >= 1 {
		t.Errorf("center after blur = %v, want < 1", b.At(7, 7))
	}
	if b.At(8, 7) <= 0 {
		t.Errorf("neighbor after blur = %v, want > 0", b.At(8, 7))
	}
	// Total mass approximately preserved away from borders.
	var sum float64
	for _, v := range b.Pix {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("blur mass = %v, want ~1", sum)
	}
}

func TestSubtract(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	a.Set(0, 0, 0.8)
	b.Set(0, 0, 0.3)
	d := Subtract(a, b)
	if math.Abs(float64(d.At(0, 0))-0.5) > 1e-6 {
		t.Errorf("Subtract = %v, want 0.5", d.At(0, 0))
	}
}

func TestSubtractPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Subtract with mismatched sizes did not panic")
		}
	}()
	Subtract(NewGray(2, 2), NewGray(3, 2))
}

func TestDownsampleHalves(t *testing.T) {
	g := NewGray(8, 6)
	for i := range g.Pix {
		g.Pix[i] = float32(i)
	}
	d := Downsample(g)
	if d.W != 4 || d.H != 3 {
		t.Fatalf("Downsample dims = %dx%d, want 4x3", d.W, d.H)
	}
	// First output pixel is the mean of the top-left 2x2 block.
	want := (g.At(0, 0) + g.At(1, 0) + g.At(0, 1) + g.At(1, 1)) / 4
	if d.At(0, 0) != want {
		t.Errorf("Downsample(0,0) = %v, want %v", d.At(0, 0), want)
	}
}

func TestDownsampleMinimumSize(t *testing.T) {
	g := NewGray(1, 1)
	d := Downsample(g)
	if d.W != 1 || d.H != 1 {
		t.Errorf("Downsample of 1x1 = %dx%d, want 1x1", d.W, d.H)
	}
}

func TestResizeIdentity(t *testing.T) {
	g := NewGray(7, 5)
	for i := range g.Pix {
		g.Pix[i] = float32(i) / 35
	}
	r := Resize(g, 7, 5)
	for i := range g.Pix {
		if math.Abs(float64(r.Pix[i]-g.Pix[i])) > 1e-5 {
			t.Fatalf("identity resize changed pixel %d: %v -> %v", i, g.Pix[i], r.Pix[i])
		}
	}
}

func TestResizePreservesConstant(t *testing.T) {
	g := NewGray(10, 10)
	for i := range g.Pix {
		g.Pix[i] = 0.6
	}
	r := Resize(g, 23, 7)
	if r.W != 23 || r.H != 7 {
		t.Fatalf("resize dims = %dx%d", r.W, r.H)
	}
	for i, v := range r.Pix {
		if math.Abs(float64(v)-0.6) > 1e-5 {
			t.Fatalf("resized constant image pixel %d = %v", i, v)
		}
	}
}

func TestBilinearAtInterpolates(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 0)
	g.Set(1, 0, 1)
	if got := g.BilinearAt(0.5, 0); math.Abs(float64(got)-0.5) > 1e-6 {
		t.Errorf("BilinearAt(0.5, 0) = %v, want 0.5", got)
	}
	if got := g.BilinearAt(0.25, 0); math.Abs(float64(got)-0.25) > 1e-6 {
		t.Errorf("BilinearAt(0.25, 0) = %v, want 0.25", got)
	}
}

func TestGradientOnRamp(t *testing.T) {
	// Horizontal ramp: gradient should point along +x with theta ~ 0.
	g := NewGray(9, 9)
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			g.Set(x, y, float32(x)*0.1)
		}
	}
	mag, theta := Gradient(g, 4, 4)
	if math.Abs(mag-0.2) > 1e-5 {
		t.Errorf("ramp gradient magnitude = %v, want 0.2", mag)
	}
	if math.Abs(theta) > 1e-5 {
		t.Errorf("ramp gradient angle = %v, want 0", theta)
	}
}

func TestGrayscaleWeights(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 255, 0, 0)
	g := Grayscale(m)
	if math.Abs(float64(g.At(0, 0))-0.299) > 1e-4 {
		t.Errorf("pure red luma = %v, want 0.299", g.At(0, 0))
	}
	m.Set(0, 0, 255, 255, 255)
	g = Grayscale(m)
	if math.Abs(float64(g.At(0, 0))-1) > 1e-4 {
		t.Errorf("white luma = %v, want 1", g.At(0, 0))
	}
}

func TestRGBAtClamps(t *testing.T) {
	m := NewRGB(2, 2)
	m.Set(0, 0, 1, 2, 3)
	r, g, b := m.AtRGB(-1, -1)
	if r != 1 || g != 2 || b != 3 {
		t.Errorf("AtRGB(-1,-1) = %d,%d,%d want 1,2,3", r, g, b)
	}
}

// Property: blurring never increases the max pixel value and never
// decreases the min (a convex combination of inputs).
func TestBlurBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGray(12, 9)
		lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
		for i := range g.Pix {
			g.Pix[i] = rng.Float32()
			if g.Pix[i] < lo {
				lo = g.Pix[i]
			}
			if g.Pix[i] > hi {
				hi = g.Pix[i]
			}
		}
		b := GaussianBlur(g, 1.2)
		for _, v := range b.Pix {
			if v < lo-1e-5 || v > hi+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Downsample then the implied dimensions always halve (floor) and
// output values stay within input range.
func TestDownsampleRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(30)
		h := 2 + rng.Intn(30)
		g := NewGray(w, h)
		for i := range g.Pix {
			g.Pix[i] = rng.Float32()
		}
		d := Downsample(g)
		if d.W != w/2 || d.H != h/2 {
			return false
		}
		for _, v := range d.Pix {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
