package match

import (
	"math/rand"
	"testing"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

// randomFeatures builds n features with dense random descriptors — the
// shape of a per-frame ratio-test input at the paper's MaxFeatures cap.
func randomFeatures(rng *rand.Rand, n int) []sift.Feature {
	out := make([]sift.Feature, n)
	for i := range out {
		for d := range out[i].Desc {
			out[i].Desc[d] = float32(rng.NormFloat64())
		}
	}
	return out
}

// BenchmarkKernelRatioTest measures the per-frame brute-force descriptor
// matching kernel (serial, one frame = one query set against one
// reference object) at the calibration profile's 150-feature cap.
func BenchmarkKernelRatioTest(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	query := randomFeatures(rng, 150)
	train := randomFeatures(rng, 150)
	b.Run("q150xt150", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ratioTest(query, train, 0.8, 1)
		}
	})
}

// BenchmarkKernelRatioTestBatch measures the batched kernel (one pooled
// distance matrix per reference object) at batch 8.
func BenchmarkKernelRatioTestBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	queries := make([][]sift.Feature, 8)
	for i := range queries {
		queries[i] = randomFeatures(rng, 150)
	}
	train := randomFeatures(rng, 150)
	b.Run("b8xq150xt150", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ratioTestBatch(queries, train, 0.8, 1)
		}
	})
}
