package match

import (
	"testing"
)

func det(id int, x float64) Detection {
	return Detection{
		ObjectID:   id,
		Pose:       Homography{1, 0, x, 0, 1, 0, 0, 0, 1},
		Box:        BoundingBox{MinX: x, MinY: 0, MaxX: x + 10, MaxY: 10},
		InlierFrac: 0.9,
	}
}

func TestTrackerCreatesAndUpdates(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tracks := tr.Update(1, []Detection{det(5, 0)})
	if len(tracks) != 1 || tracks[0].ObjectID != 5 || tracks[0].Hits != 1 {
		t.Fatalf("tracks after first frame = %+v", tracks)
	}
	tracks = tr.Update(2, []Detection{det(5, 10)})
	if tracks[0].Hits != 2 {
		t.Errorf("hits = %d, want 2", tracks[0].Hits)
	}
	// Smoothed position should lie strictly between 0 and 10.
	if x := tracks[0].Box.MinX; x <= 0 || x >= 10 {
		t.Errorf("smoothed MinX = %v, want in (0, 10)", x)
	}
}

func TestTrackerSmoothingWeight(t *testing.T) {
	tr := NewTracker(TrackerConfig{Smoothing: 1}) // no smoothing
	tr.Update(1, []Detection{det(1, 0)})
	tracks := tr.Update(2, []Detection{det(1, 10)})
	if tracks[0].Box.MinX != 10 {
		t.Errorf("smoothing=1 MinX = %v, want 10", tracks[0].Box.MinX)
	}
}

func TestTrackerExpires(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxMisses: 2})
	tr.Update(1, []Detection{det(1, 0)})
	tr.Update(2, nil) // miss 1
	tr.Update(3, nil) // miss 2
	if tr.Len() != 1 {
		t.Fatalf("track expired too early: len = %d", tr.Len())
	}
	tr.Update(4, nil) // miss 3 > MaxMisses
	if tr.Len() != 0 {
		t.Errorf("track not expired: len = %d", tr.Len())
	}
}

func TestTrackerMissResetOnRedetection(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxMisses: 2})
	tr.Update(1, []Detection{det(1, 0)})
	tr.Update(2, nil)
	tr.Update(3, []Detection{det(1, 1)}) // re-detected: misses reset
	tr.Update(4, nil)
	tr.Update(5, nil)
	if tr.Len() != 1 {
		t.Error("track expired despite re-detection resetting misses")
	}
}

func TestTrackerMultipleObjectsSorted(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tracks := tr.Update(1, []Detection{det(9, 0), det(2, 5), det(4, 1)})
	if len(tracks) != 3 {
		t.Fatalf("len = %d, want 3", len(tracks))
	}
	for i, want := range []int{2, 4, 9} {
		if tracks[i].ObjectID != want {
			t.Errorf("tracks[%d].ObjectID = %d, want %d", i, tracks[i].ObjectID, want)
		}
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Update(1, []Detection{det(1, 0), det(2, 0)})
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("len after Reset = %d", tr.Len())
	}
}

func TestTrackerLastFrame(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Update(7, []Detection{det(1, 0)})
	tracks := tr.Update(9, []Detection{det(1, 0)})
	if tracks[0].LastFrame != 9 {
		t.Errorf("LastFrame = %d, want 9", tracks[0].LastFrame)
	}
}

func TestTrackerIgnoresStaleFrames(t *testing.T) {
	tr := NewTracker(TrackerConfig{Smoothing: 1})
	tr.Update(5, []Detection{det(1, 10)})
	// A late-arriving older frame must not regress state or smooth the
	// pose backwards.
	tracks := tr.Update(3, []Detection{det(1, 0)})
	if tracks[0].Box.MinX != 10 {
		t.Errorf("stale frame smoothed pose: MinX = %v, want 10", tracks[0].Box.MinX)
	}
	if tracks[0].Hits != 1 {
		t.Errorf("stale frame counted as hit: Hits = %d, want 1", tracks[0].Hits)
	}
	if tr.LastFrame() != 5 {
		t.Errorf("LastFrame regressed to %d, want 5", tr.LastFrame())
	}
	// A duplicate of the current frame is equally ignored.
	tracks = tr.Update(5, []Detection{det(1, 0)})
	if tracks[0].Hits != 1 || tracks[0].Box.MinX != 10 {
		t.Errorf("duplicate frame mutated track: %+v", tracks[0])
	}
}

func TestTrackerGapAccruesMisses(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxMisses: 5})
	tr.Update(1, []Detection{det(1, 0)})
	// One update 10 frames later must count 10 missed frames, not 1 call.
	tr.Update(11, nil)
	if tr.Len() != 0 {
		t.Errorf("track survived a 10-frame gap with MaxMisses=5: len = %d", tr.Len())
	}

	tr = NewTracker(TrackerConfig{MaxMisses: 5})
	tr.Update(1, []Detection{det(1, 0)})
	tracks := tr.Update(4, nil) // gap of 3 frames
	if len(tracks) != 1 || tracks[0].Misses != 3 {
		t.Fatalf("misses after 3-frame gap = %+v, want Misses=3", tracks)
	}
}

func TestTrackerGapThenHitSurvives(t *testing.T) {
	// A gap caused by fast-path-skipped frames must not kill a track that
	// is re-confirmed on the refresh frame: the hit resets misses.
	tr := NewTracker(TrackerConfig{MaxMisses: 5})
	tr.Update(1, []Detection{det(1, 0)})
	tr.Update(4, []Detection{det(1, 1)})
	tracks := tr.Update(7, []Detection{det(1, 2)})
	if len(tracks) != 1 || tracks[0].Misses != 0 || tracks[0].Hits != 3 {
		t.Errorf("tracks after gapped hits = %+v", tracks)
	}
}

func TestTrackerConfidenceBuildsAndDecays(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	if tr.Confidence() != 0 {
		t.Errorf("empty tracker confidence = %v, want 0", tr.Confidence())
	}
	var prev float64
	for f := uint64(1); f <= 6; f++ {
		tr.Update(f, []Detection{det(1, 0)})
		c := tr.Confidence()
		if c <= prev {
			t.Fatalf("confidence not increasing under hit streak: frame %d %v <= %v", f, c, prev)
		}
		prev = c
	}
	// Six straight hits at InlierFrac 0.9 with gain 0.5 ≈ 0.886.
	if prev < 0.8 {
		t.Errorf("confidence after 6 hits = %v, want > 0.8", prev)
	}
	tr.Update(7, nil)
	c := tr.Confidence()
	if c >= prev {
		t.Errorf("confidence did not decay on miss: %v >= %v", c, prev)
	}
	// Decay must be applied once per missed frame, not per call: a
	// 3-frame gap decays by MissDecay^3.
	tr.Update(10, nil)
	want := c * 0.7 * 0.7 * 0.7
	if got := tr.Confidence(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("confidence after 3-frame gap = %v, want %v", got, want)
	}
}

func TestTrackerConfidenceIsMinAcrossTracks(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	for f := uint64(1); f <= 6; f++ {
		tr.Update(f, []Detection{det(1, 0)})
	}
	strong := tr.Confidence()
	// A newly-appeared object pulls the aggregate down to its own (low)
	// confidence even while object 1 stays stable.
	tr.Update(7, []Detection{det(1, 0), det(2, 5)})
	if c := tr.Confidence(); c >= strong {
		t.Errorf("aggregate confidence %v not dragged down by new track (strong=%v)", c, strong)
	}
}

func TestTrackerResetClearsFrameCursor(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Update(100, []Detection{det(1, 0)})
	tr.Reset()
	// After a session reset, earlier frame numbers must be accepted again.
	tracks := tr.Update(1, []Detection{det(1, 0)})
	if len(tracks) != 1 {
		t.Errorf("update after Reset ignored: tracks = %+v", tracks)
	}
	if tr.LastFrame() != 1 {
		t.Errorf("LastFrame after Reset+Update = %d, want 1", tr.LastFrame())
	}
}
