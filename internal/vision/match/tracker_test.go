package match

import (
	"testing"
)

func det(id int, x float64) Detection {
	return Detection{
		ObjectID:   id,
		Pose:       Homography{1, 0, x, 0, 1, 0, 0, 0, 1},
		Box:        BoundingBox{MinX: x, MinY: 0, MaxX: x + 10, MaxY: 10},
		InlierFrac: 0.9,
	}
}

func TestTrackerCreatesAndUpdates(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tracks := tr.Update(1, []Detection{det(5, 0)})
	if len(tracks) != 1 || tracks[0].ObjectID != 5 || tracks[0].Hits != 1 {
		t.Fatalf("tracks after first frame = %+v", tracks)
	}
	tracks = tr.Update(2, []Detection{det(5, 10)})
	if tracks[0].Hits != 2 {
		t.Errorf("hits = %d, want 2", tracks[0].Hits)
	}
	// Smoothed position should lie strictly between 0 and 10.
	if x := tracks[0].Box.MinX; x <= 0 || x >= 10 {
		t.Errorf("smoothed MinX = %v, want in (0, 10)", x)
	}
}

func TestTrackerSmoothingWeight(t *testing.T) {
	tr := NewTracker(TrackerConfig{Smoothing: 1}) // no smoothing
	tr.Update(1, []Detection{det(1, 0)})
	tracks := tr.Update(2, []Detection{det(1, 10)})
	if tracks[0].Box.MinX != 10 {
		t.Errorf("smoothing=1 MinX = %v, want 10", tracks[0].Box.MinX)
	}
}

func TestTrackerExpires(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxMisses: 2})
	tr.Update(1, []Detection{det(1, 0)})
	tr.Update(2, nil) // miss 1
	tr.Update(3, nil) // miss 2
	if tr.Len() != 1 {
		t.Fatalf("track expired too early: len = %d", tr.Len())
	}
	tr.Update(4, nil) // miss 3 > MaxMisses
	if tr.Len() != 0 {
		t.Errorf("track not expired: len = %d", tr.Len())
	}
}

func TestTrackerMissResetOnRedetection(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxMisses: 2})
	tr.Update(1, []Detection{det(1, 0)})
	tr.Update(2, nil)
	tr.Update(3, []Detection{det(1, 1)}) // re-detected: misses reset
	tr.Update(4, nil)
	tr.Update(5, nil)
	if tr.Len() != 1 {
		t.Error("track expired despite re-detection resetting misses")
	}
}

func TestTrackerMultipleObjectsSorted(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tracks := tr.Update(1, []Detection{det(9, 0), det(2, 5), det(4, 1)})
	if len(tracks) != 3 {
		t.Fatalf("len = %d, want 3", len(tracks))
	}
	for i, want := range []int{2, 4, 9} {
		if tracks[i].ObjectID != want {
			t.Errorf("tracks[%d].ObjectID = %d, want %d", i, tracks[i].ObjectID, want)
		}
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Update(1, []Detection{det(1, 0), det(2, 0)})
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("len after Reset = %d", tr.Len())
	}
}

func TestTrackerLastFrame(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Update(7, []Detection{det(1, 0)})
	tracks := tr.Update(9, []Detection{det(1, 0)})
	if tracks[0].LastFrame != 9 {
		t.Errorf("LastFrame = %d, want 9", tracks[0].LastFrame)
	}
}
