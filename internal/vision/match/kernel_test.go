package match

import (
	"math"
	"math/rand"
	"testing"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

// referenceRatioTest is the pre-deferred-sqrt kernel, kept as an oracle:
// per-pair sift.L2 (sqrt per distance), best/second selection on the
// sqrt'd values, ratio comparison on the same. The production kernel
// selects on squared distances and takes two sqrts per query feature;
// sqrt is monotone and L2 = Sqrt(L2Sq) with the identical summation, so
// results must match bit for bit.
func referenceRatioTest(query, train []sift.Feature, ratio float64) []Match {
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.8
	}
	if len(train) < 2 {
		return nil
	}
	var out []Match
	for qi := range query {
		best, second := math.Inf(1), math.Inf(1)
		bestIdx := -1
		for ti := range train {
			d := sift.L2(&query[qi].Desc, &train[ti].Desc)
			if d < best {
				second = best
				best = d
				bestIdx = ti
			} else if d < second {
				second = d
			}
		}
		if bestIdx < 0 {
			continue
		}
		if second > 0 && best < ratio*second {
			out = append(out, Match{QueryIdx: qi, TrainIdx: bestIdx, Dist: best})
		}
	}
	return out
}

func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, reference %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, reference %+v (Dist must be bit-identical)",
				label, i, got[i], want[i])
		}
	}
}

// TestRatioTestDeferredSqrtMatchesReference pins the deferred-sqrt
// kernels — serial, parallel, and batch — to the per-pair-sqrt
// reference scan with exact equality, including the emitted Dist.
func TestRatioTestDeferredSqrtMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		query := randomFeatures(rng, 60+trial*11)
		train := randomFeatures(rng, 45+trial*7)
		// Plant near-duplicates of some query descriptors so the emit
		// path is exercised (random pairs rarely pass the ratio test),
		// and duplicate train descriptors for the tie/ambiguity
		// rejection path (second == 0 after an exact duplicate best).
		for i := 0; i < 10; i++ {
			train[i*3].Desc = query[i*5].Desc
			for d := 0; d < 8; d++ {
				train[i*3].Desc[d] += float32(rng.NormFloat64()) * 0.01
			}
		}
		train[3] = train[7]
		want := referenceRatioTest(query, train, 0.8)
		if len(want) == 0 {
			t.Fatalf("trial %d: reference produced no matches; test data too weak", trial)
		}
		matchesEqual(t, "serial", ratioTest(query, train, 0.8, 1), want)
		matchesEqual(t, "parallel", ratioTest(query, train, 0.8, 4), want)
		batch := ratioTestBatch([][]sift.Feature{query, query[:20]}, train, 0.8, 1)
		matchesEqual(t, "batch[0]", batch[0], want)
		matchesEqual(t, "batch[1]", batch[1], referenceRatioTest(query[:20], train, 0.8))
	}
	// Exact-duplicate query/train pairs: best distance 0 must still win
	// the ratio test when the second-nearest is nonzero.
	query := randomFeatures(rng, 8)
	train := randomFeatures(rng, 8)
	copy(train[2].Desc[:], query[5].Desc[:])
	matchesEqual(t, "dup", ratioTest(query, train, 0.8, 1), referenceRatioTest(query, train, 0.8))
}
