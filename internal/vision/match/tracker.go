package match

import "sort"

// Detection is one recognized object in a frame: its reference-image ID,
// estimated pose, and match quality.
type Detection struct {
	ObjectID   int
	Pose       Homography
	Box        BoundingBox
	InlierFrac float64
}

// Track is the tracked state of one object across frames.
type Track struct {
	ObjectID  int
	Pose      Homography
	Box       BoundingBox
	LastFrame uint64 // frame number of the last supporting detection
	Hits      int    // total supporting detections
	Misses    int    // consecutive frames without a detection
}

// TrackerConfig controls track lifetime and smoothing.
type TrackerConfig struct {
	// MaxMisses is how many consecutive frames an object may go
	// undetected before its track is dropped (default 15, i.e. 0.5 s at
	// 30 FPS).
	MaxMisses int
	// Smoothing is the exponential moving-average weight given to the new
	// pose in [0, 1]; 1 disables smoothing (default 0.6).
	Smoothing float64
}

// Tracker follows recognized objects across frames, smoothing their poses
// and expiring objects that disappear. It is the "tracking" half of
// scAtteR's matching service. Tracker is not safe for concurrent use; the
// pipeline guarantees one frame in flight per tracker.
type Tracker struct {
	cfg    TrackerConfig
	tracks map[int]*Track
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = 15
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = 0.6
	}
	return &Tracker{cfg: cfg, tracks: make(map[int]*Track)}
}

// Update ingests the detections of frame frameNo and returns the current
// set of live tracks, sorted by ObjectID. Objects absent from detections
// accrue misses and are expired after MaxMisses consecutive absences.
func (t *Tracker) Update(frameNo uint64, detections []Detection) []Track {
	seen := make(map[int]bool, len(detections))
	for _, d := range detections {
		seen[d.ObjectID] = true
		tr, ok := t.tracks[d.ObjectID]
		if !ok {
			t.tracks[d.ObjectID] = &Track{
				ObjectID:  d.ObjectID,
				Pose:      d.Pose,
				Box:       d.Box,
				LastFrame: frameNo,
				Hits:      1,
			}
			continue
		}
		a := t.cfg.Smoothing
		for i := range tr.Pose {
			tr.Pose[i] = (1-a)*tr.Pose[i] + a*d.Pose[i]
		}
		tr.Pose.normalize()
		tr.Box = BoundingBox{
			MinX: (1-a)*tr.Box.MinX + a*d.Box.MinX,
			MinY: (1-a)*tr.Box.MinY + a*d.Box.MinY,
			MaxX: (1-a)*tr.Box.MaxX + a*d.Box.MaxX,
			MaxY: (1-a)*tr.Box.MaxY + a*d.Box.MaxY,
		}
		tr.LastFrame = frameNo
		tr.Hits++
		tr.Misses = 0
	}
	for id, tr := range t.tracks {
		if seen[id] {
			continue
		}
		tr.Misses++
		if tr.Misses > t.cfg.MaxMisses {
			delete(t.tracks, id)
		}
	}
	out := make([]Track, 0, len(t.tracks))
	for _, tr := range t.tracks {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

// Len returns the number of live tracks.
func (t *Tracker) Len() int { return len(t.tracks) }

// Reset drops all tracks (used when a client session ends).
func (t *Tracker) Reset() { t.tracks = make(map[int]*Track) }
