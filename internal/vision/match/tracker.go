package match

import (
	"math"
	"sort"
)

// Detection is one recognized object in a frame: its reference-image ID,
// estimated pose, and match quality.
type Detection struct {
	ObjectID   int
	Pose       Homography
	Box        BoundingBox
	InlierFrac float64
}

// Track is the tracked state of one object across frames.
type Track struct {
	ObjectID  int
	Pose      Homography
	Box       BoundingBox
	LastFrame uint64 // frame number of the last supporting detection
	Hits      int    // total supporting detections
	Misses    int    // consecutive frames without a detection
	// Confidence is the inlier-fraction-weighted hit streak in [0, 1]:
	// each supporting detection pulls it toward that detection's inlier
	// fraction by ConfidenceGain, and each missed frame multiplies it by
	// MissDecay — so a track is confident only after a streak of
	// well-supported detections, and confidence erodes as soon as the
	// object stops being re-confirmed.
	Confidence float64
}

// TrackerConfig controls track lifetime, smoothing, and confidence.
type TrackerConfig struct {
	// MaxMisses is how many consecutive frames an object may go
	// undetected before its track is dropped (default 15, i.e. 0.5 s at
	// 30 FPS).
	MaxMisses int
	// Smoothing is the exponential moving-average weight given to the new
	// pose in [0, 1]; 1 disables smoothing (default 0.6).
	Smoothing float64
	// ConfidenceGain is the EWMA weight a supporting detection's inlier
	// fraction contributes to the track's confidence (default 0.5): from
	// zero, a track needs several consecutive hits before its confidence
	// approaches the detections' inlier fraction.
	ConfidenceGain float64
	// MissDecay multiplies a track's confidence once per missed frame
	// (default 0.7).
	MissDecay float64
}

// Tracker follows recognized objects across frames, smoothing their poses
// and expiring objects that disappear. It is the "tracking" half of
// scAtteR's matching service. Tracker is not safe for concurrent use; the
// pipeline guarantees one frame in flight per tracker.
type Tracker struct {
	cfg       TrackerConfig
	tracks    map[int]*Track
	lastFrame uint64 // highest frame number ingested so far
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = 15
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = 0.6
	}
	if cfg.ConfidenceGain <= 0 || cfg.ConfidenceGain > 1 {
		cfg.ConfidenceGain = 0.5
	}
	if cfg.MissDecay <= 0 || cfg.MissDecay >= 1 {
		cfg.MissDecay = 0.7
	}
	return &Tracker{cfg: cfg, tracks: make(map[int]*Track)}
}

// Update ingests the detections of frame frameNo and returns the current
// set of live tracks, sorted by ObjectID. Objects absent from detections
// accrue misses and are expired once their misses exceed MaxMisses.
//
// Frame numbers must be monotonically increasing: a stale or duplicated
// frame (frameNo at or below the last ingested frame) is ignored — its
// detections would smooth poses backwards in time — and the current
// tracks are returned unchanged. When frames are skipped between updates
// (late arrivals dropped upstream, or the recognition fast path answering
// intermediate frames from this tracker), absent objects accrue one miss
// per skipped frame, not one miss per Update call, so track expiry tracks
// real elapsed frames rather than invocation count.
func (t *Tracker) Update(frameNo uint64, detections []Detection) []Track {
	if t.lastFrame != 0 && frameNo <= t.lastFrame {
		return t.snapshot()
	}
	gap := uint64(1)
	if t.lastFrame != 0 {
		gap = frameNo - t.lastFrame
	}
	t.lastFrame = frameNo
	seen := make(map[int]bool, len(detections))
	for _, d := range detections {
		seen[d.ObjectID] = true
		tr, ok := t.tracks[d.ObjectID]
		if !ok {
			t.tracks[d.ObjectID] = &Track{
				ObjectID:   d.ObjectID,
				Pose:       d.Pose,
				Box:        d.Box,
				LastFrame:  frameNo,
				Hits:       1,
				Confidence: t.cfg.ConfidenceGain * d.InlierFrac,
			}
			continue
		}
		a := t.cfg.Smoothing
		for i := range tr.Pose {
			tr.Pose[i] = (1-a)*tr.Pose[i] + a*d.Pose[i]
		}
		tr.Pose.normalize()
		tr.Box = BoundingBox{
			MinX: (1-a)*tr.Box.MinX + a*d.Box.MinX,
			MinY: (1-a)*tr.Box.MinY + a*d.Box.MinY,
			MaxX: (1-a)*tr.Box.MaxX + a*d.Box.MaxX,
			MaxY: (1-a)*tr.Box.MaxY + a*d.Box.MaxY,
		}
		tr.LastFrame = frameNo
		tr.Hits++
		tr.Misses = 0
		g := t.cfg.ConfidenceGain
		tr.Confidence += g * (d.InlierFrac - tr.Confidence)
	}
	for id, tr := range t.tracks {
		if seen[id] {
			continue
		}
		tr.Misses += int(gap)
		tr.Confidence *= math.Pow(t.cfg.MissDecay, float64(gap))
		if tr.Misses > t.cfg.MaxMisses {
			delete(t.tracks, id)
		}
	}
	return t.snapshot()
}

func (t *Tracker) snapshot() []Track {
	out := make([]Track, 0, len(t.tracks))
	for _, tr := range t.tracks {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

// Confidence returns the tracker's aggregate confidence: the minimum
// confidence across live tracks, or 0 with no tracks. Taking the minimum
// means a single newly-appeared or poorly-supported object keeps full
// recognition running even while other objects are stably tracked — the
// conservative signal the recognition fast path gates on.
func (t *Tracker) Confidence() float64 {
	if len(t.tracks) == 0 {
		return 0
	}
	min := math.MaxFloat64
	for _, tr := range t.tracks {
		if tr.Confidence < min {
			min = tr.Confidence
		}
	}
	return min
}

// LastFrame returns the highest frame number ingested so far.
func (t *Tracker) LastFrame() uint64 { return t.lastFrame }

// Len returns the number of live tracks.
func (t *Tracker) Len() int { return len(t.tracks) }

// Reset drops all tracks and the frame cursor (used when a client session
// ends).
func (t *Tracker) Reset() {
	t.tracks = make(map[int]*Track)
	t.lastFrame = 0
}
