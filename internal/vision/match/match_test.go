package match

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentityApply(t *testing.T) {
	h := Identity()
	p := h.Apply(Point{3, -7})
	if p.X != 3 || p.Y != -7 {
		t.Errorf("identity moved point to %+v", p)
	}
}

func TestApplyTranslation(t *testing.T) {
	h := Homography{1, 0, 5, 0, 1, -2, 0, 0, 1}
	p := h.Apply(Point{1, 1})
	if p.X != 6 || p.Y != -1 {
		t.Errorf("translation result %+v, want (6, -1)", p)
	}
}

func TestApplyDegenerateW(t *testing.T) {
	h := Homography{1, 0, 0, 0, 1, 0, 1, 0, 0} // w = x
	p := h.Apply(Point{0, 5})
	if !math.IsNaN(p.X) || !math.IsNaN(p.Y) {
		t.Errorf("point at infinity mapped to %+v, want NaN", p)
	}
}

func TestMulComposition(t *testing.T) {
	shift := Homography{1, 0, 2, 0, 1, 3, 0, 0, 1}
	scale := Homography{2, 0, 0, 0, 2, 0, 0, 0, 1}
	// scale∘shift: first shift, then scale.
	comp := scale.Mul(&shift)
	p := comp.Apply(Point{1, 1})
	if !almostEqual(p.X, 6, 1e-12) || !almostEqual(p.Y, 8, 1e-12) {
		t.Errorf("composition result %+v, want (6, 8)", p)
	}
}

// knownH returns a well-conditioned projective transform used in tests.
func knownH() Homography {
	return Homography{
		1.2, 0.1, 15,
		-0.08, 0.95, -7,
		0.0004, -0.0002, 1,
	}
}

func applyAll(h *Homography, pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = h.Apply(p)
	}
	return out
}

func gridPoints(n int, w, h float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

func TestHomographyFromPairsExact(t *testing.T) {
	truth := knownH()
	src := []Point{{0, 0}, {100, 0}, {100, 80}, {0, 80}, {50, 40}, {20, 60}}
	dst := applyAll(&truth, src)
	h, err := homographyFromPairs(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{10, 10}, {90, 70}, {33, 5}} {
		want := truth.Apply(p)
		got := h.Apply(p)
		if !almostEqual(got.X, want.X, 1e-6) || !almostEqual(got.Y, want.Y, 1e-6) {
			t.Errorf("recovered H maps %+v to %+v, want %+v", p, got, want)
		}
	}
}

func TestHomographyFromPairsDegenerate(t *testing.T) {
	// Collinear points cannot determine a homography.
	src := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	dst := []Point{{0, 0}, {2, 2}, {4, 4}, {6, 6}}
	if _, err := homographyFromPairs(src, dst); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear points err = %v, want ErrDegenerate", err)
	}
	if _, err := homographyFromPairs(src[:3], dst[:3]); !errors.Is(err, ErrDegenerate) {
		t.Errorf("3 points err = %v, want ErrDegenerate", err)
	}
}

// Regression test: non-finite input coordinates (a point mapped to the
// plane at infinity upstream) used to sail through solveLinear — NaN
// defeats the `pivot < eps` singularity check — and come back as a NaN
// homography that RANSAC would happily score.
func TestHomographyFromPairsNaNInput(t *testing.T) {
	src := []Point{{0, 0}, {100, 0}, {100, 80}, {0, 80}}
	dst := []Point{{0, 0}, {100, 0}, {math.NaN(), math.NaN()}, {0, 80}}
	if _, err := homographyFromPairs(src, dst); !errors.Is(err, ErrDegenerate) {
		t.Errorf("NaN input err = %v, want ErrDegenerate", err)
	}
	inf := []Point{{0, 0}, {100, 0}, {math.Inf(1), 80}, {0, 80}}
	if _, err := homographyFromPairs(inf, src); !errors.Is(err, ErrDegenerate) {
		t.Errorf("Inf input err = %v, want ErrDegenerate", err)
	}
}

// Regression test: three-of-four collinear points leave the DLT system
// rank-deficient; the estimate must be reported degenerate (or at minimum
// finite), never a silent NaN/Inf model.
func TestHomographyFromPairsNearCollinear(t *testing.T) {
	src := []Point{{0, 0}, {50, 50}, {100, 100}, {0, 80}}
	dst := []Point{{0, 0}, {55, 55}, {110, 110}, {0, 90}}
	h, err := homographyFromPairs(src, dst)
	if err == nil && !h.isFinite() {
		t.Fatalf("near-collinear estimate returned non-finite H = %+v with nil error", h)
	}
	// Exactly repeated points are rank-deficient outright.
	rep := []Point{{0, 0}, {0, 0}, {100, 100}, {0, 80}}
	if _, err := homographyFromPairs(rep, rep); !errors.Is(err, ErrDegenerate) {
		t.Errorf("repeated-point err = %v, want ErrDegenerate", err)
	}
}

// RANSAC must skip degenerate/non-finite minimal samples and still recover
// the model from the clean correspondences.
func TestRANSACSkipsNaNCorrespondences(t *testing.T) {
	truth := knownH()
	rng := rand.New(rand.NewSource(35))
	src := gridPoints(60, 640, 480, rng)
	dst := applyAll(&truth, src)
	for i := 0; i < 10; i++ {
		dst[i] = Point{math.NaN(), math.NaN()}
	}
	res, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.isFinite() {
		t.Fatalf("RANSAC returned non-finite H = %+v", res.H)
	}
	for _, idx := range res.Inliers {
		if idx < 10 {
			t.Errorf("NaN correspondence %d accepted as inlier", idx)
		}
	}
	for _, p := range []Point{{100, 100}, {500, 400}} {
		want := truth.Apply(p)
		got := res.H.Apply(p)
		if math.Hypot(got.X-want.X, got.Y-want.Y) > 1.0 {
			t.Errorf("H maps %+v to %+v, want %+v", p, got, want)
		}
	}
}

func TestRANSACWithOutliers(t *testing.T) {
	truth := knownH()
	rng := rand.New(rand.NewSource(31))
	src := gridPoints(100, 640, 480, rng)
	dst := applyAll(&truth, src)
	// Corrupt 30% with gross outliers.
	nOut := 30
	for i := 0; i < nOut; i++ {
		dst[i].X += 50 + rng.Float64()*200
		dst[i].Y -= 50 + rng.Float64()*200
	}
	res, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.InlierFrac < 0.65 {
		t.Errorf("inlier fraction = %v, want >= 0.65", res.InlierFrac)
	}
	// Inliers must exclude the corrupted indices (mostly).
	corrupted := 0
	for _, idx := range res.Inliers {
		if idx < nOut {
			corrupted++
		}
	}
	if corrupted > 2 {
		t.Errorf("%d corrupted correspondences accepted as inliers", corrupted)
	}
	// Recovered transform must be close to truth on clean points.
	for _, p := range []Point{{100, 100}, {500, 400}} {
		want := truth.Apply(p)
		got := res.H.Apply(p)
		if math.Hypot(got.X-want.X, got.Y-want.Y) > 1.0 {
			t.Errorf("RANSAC H maps %+v to %+v, want %+v", p, got, want)
		}
	}
}

func TestRANSACAllOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := gridPoints(40, 640, 480, rng)
	dst := gridPoints(40, 640, 480, rng) // unrelated
	_, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 32, MinInliers: 12})
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("unrelated point sets err = %v, want ErrDegenerate", err)
	}
}

func TestRANSACTooFewPoints(t *testing.T) {
	src := []Point{{0, 0}, {1, 0}, {0, 1}}
	if _, err := EstimateHomographyRANSAC(src, src, RANSACConfig{}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("3 points err = %v, want ErrDegenerate", err)
	}
}

func TestRANSACDeterministic(t *testing.T) {
	truth := knownH()
	rng := rand.New(rand.NewSource(33))
	src := gridPoints(60, 640, 480, rng)
	dst := applyAll(&truth, src)
	for i := 0; i < 10; i++ {
		dst[i].X += 120
	}
	r1, err1 := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 5})
	r2, err2 := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 5})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.H != r2.H || len(r1.Inliers) != len(r2.Inliers) {
		t.Error("same seed produced different RANSAC results")
	}
}

func TestRatioTest(t *testing.T) {
	mkFeat := func(vals ...float32) sift.Feature {
		var f sift.Feature
		copy(f.Desc[:], vals)
		// Normalize.
		var n float64
		for _, v := range f.Desc {
			n += float64(v) * float64(v)
		}
		if n > 0 {
			n = math.Sqrt(n)
			for i := range f.Desc {
				f.Desc[i] = float32(float64(f.Desc[i]) / n)
			}
		}
		return f
	}
	train := []sift.Feature{
		mkFeat(1, 0, 0),
		mkFeat(0, 1, 0),
		mkFeat(0, 0, 1),
	}
	// Query near train[0]: unambiguous, should match.
	query := []sift.Feature{mkFeat(0.98, 0.1, 0)}
	matches := RatioTest(query, train, 0.8)
	if len(matches) != 1 || matches[0].TrainIdx != 0 {
		t.Fatalf("unambiguous query matches = %+v", matches)
	}
	// Ambiguous query equidistant to two train features: ratio test must
	// reject it.
	query = []sift.Feature{mkFeat(0.7071, 0.7071, 0)}
	if matches := RatioTest(query, train, 0.8); len(matches) != 0 {
		t.Errorf("ambiguous query produced matches %+v", matches)
	}
}

func TestRatioTestEmpty(t *testing.T) {
	if m := RatioTest(nil, nil, 0.8); len(m) != 0 {
		t.Errorf("empty inputs produced %+v", m)
	}
}

// Regression test: degenerate train sets (<2 features, or duplicate
// descriptors tying the two nearest neighbours) have no meaningful
// second-nearest distance. The old code admitted such matches — with one
// train feature every query "matched" it unconditionally.
func TestRatioTestDegenerateTrainSets(t *testing.T) {
	unit := func(axis int) sift.Feature {
		var f sift.Feature
		f.Desc[axis] = 1
		return f
	}
	query := []sift.Feature{unit(0), unit(1)}
	cases := []struct {
		name  string
		train []sift.Feature
		want  int
	}{
		{"empty train", nil, 0},
		{"single train feature", []sift.Feature{unit(0)}, 0},
		{"duplicate train descriptors", []sift.Feature{unit(0), unit(0)}, 0},
		// Only query unit(0) matches: unit(1) is equidistant from both
		// train features and is rightly rejected as ambiguous.
		{"two distinct train features", []sift.Feature{unit(0), unit(5)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := RatioTest(query, tc.train, 0.8)
			if len(got) != tc.want {
				t.Errorf("%s: %d matches, want %d (%+v)", tc.name, len(got), tc.want, got)
			}
		})
	}
}

// Parallel kernel contract: the row-parallel scan returns the same matches
// in the same (query) order as the serial scan.
func TestRatioTestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	mk := func(n int) []sift.Feature {
		out := make([]sift.Feature, n)
		for i := range out {
			var norm float64
			for j := range out[i].Desc {
				v := rng.Float64()
				out[i].Desc[j] = float32(v)
				norm += v * v
			}
			norm = math.Sqrt(norm)
			for j := range out[i].Desc {
				out[i].Desc[j] = float32(float64(out[i].Desc[j]) / norm)
			}
		}
		return out
	}
	query, train := mk(123), mk(97)
	want := ratioTest(query, train, 0.85, 1)
	for _, workers := range []int{2, 4, 8} {
		got := ratioTest(query, train, 0.85, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d matches, serial %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: match %d = %+v, serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestProjectBox(t *testing.T) {
	shift := Homography{1, 0, 10, 0, 1, 20, 0, 0, 1}
	box := ProjectBox(&shift, 100, 50)
	if box.MinX != 10 || box.MinY != 20 || box.MaxX != 110 || box.MaxY != 70 {
		t.Errorf("projected box = %+v", box)
	}
}

// Property: homographyFromPairs recovers random well-conditioned affine
// transforms from noiseless correspondences.
func TestHomographyRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Homography{
			1 + rng.Float64()*0.5, rng.Float64() * 0.2, rng.Float64() * 100,
			rng.Float64() * 0.2, 1 + rng.Float64()*0.5, rng.Float64() * 100,
			0, 0, 1,
		}
		src := gridPoints(12, 640, 480, rng)
		dst := applyAll(&truth, src)
		h, err := homographyFromPairs(src, dst)
		if err != nil {
			return false
		}
		p := Point{rng.Float64() * 640, rng.Float64() * 480}
		want := truth.Apply(p)
		got := h.Apply(p)
		return math.Hypot(got.X-want.X, got.Y-want.Y) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, ok := solveLinear(a, b); ok {
		t.Error("singular system reported solvable")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

// BenchmarkRatioTest200x300 is the brute-force matching scaling row;
// compare with -cpu 1,4,8.
func BenchmarkRatioTest200x300(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	mk := func(n int) []sift.Feature {
		out := make([]sift.Feature, n)
		for i := range out {
			for j := range out[i].Desc {
				out[i].Desc[j] = rng.Float32()
			}
		}
		return out
	}
	query, train := mk(200), mk(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RatioTest(query, train, 0.8)
	}
}

func BenchmarkRANSAC100(b *testing.B) {
	truth := knownH()
	rng := rand.New(rand.NewSource(34))
	src := gridPoints(100, 640, 480, rng)
	dst := applyAll(&truth, src)
	for i := 0; i < 20; i++ {
		dst[i].X += 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIoU(t *testing.T) {
	a := BoundingBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if got := IoU(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("self IoU = %v", got)
	}
	b := BoundingBox{MinX: 5, MinY: 0, MaxX: 15, MaxY: 10}
	// Intersection 50, union 150.
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("half-overlap IoU = %v, want 1/3", got)
	}
	c := BoundingBox{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30}
	if got := IoU(a, c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	deg := BoundingBox{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	if got := IoU(a, deg); got != 0 {
		t.Errorf("degenerate IoU = %v", got)
	}
}
