package match

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentityApply(t *testing.T) {
	h := Identity()
	p := h.Apply(Point{3, -7})
	if p.X != 3 || p.Y != -7 {
		t.Errorf("identity moved point to %+v", p)
	}
}

func TestApplyTranslation(t *testing.T) {
	h := Homography{1, 0, 5, 0, 1, -2, 0, 0, 1}
	p := h.Apply(Point{1, 1})
	if p.X != 6 || p.Y != -1 {
		t.Errorf("translation result %+v, want (6, -1)", p)
	}
}

func TestApplyDegenerateW(t *testing.T) {
	h := Homography{1, 0, 0, 0, 1, 0, 1, 0, 0} // w = x
	p := h.Apply(Point{0, 5})
	if !math.IsNaN(p.X) || !math.IsNaN(p.Y) {
		t.Errorf("point at infinity mapped to %+v, want NaN", p)
	}
}

func TestMulComposition(t *testing.T) {
	shift := Homography{1, 0, 2, 0, 1, 3, 0, 0, 1}
	scale := Homography{2, 0, 0, 0, 2, 0, 0, 0, 1}
	// scale∘shift: first shift, then scale.
	comp := scale.Mul(&shift)
	p := comp.Apply(Point{1, 1})
	if !almostEqual(p.X, 6, 1e-12) || !almostEqual(p.Y, 8, 1e-12) {
		t.Errorf("composition result %+v, want (6, 8)", p)
	}
}

// knownH returns a well-conditioned projective transform used in tests.
func knownH() Homography {
	return Homography{
		1.2, 0.1, 15,
		-0.08, 0.95, -7,
		0.0004, -0.0002, 1,
	}
}

func applyAll(h *Homography, pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = h.Apply(p)
	}
	return out
}

func gridPoints(n int, w, h float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

func TestHomographyFromPairsExact(t *testing.T) {
	truth := knownH()
	src := []Point{{0, 0}, {100, 0}, {100, 80}, {0, 80}, {50, 40}, {20, 60}}
	dst := applyAll(&truth, src)
	h, err := homographyFromPairs(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{10, 10}, {90, 70}, {33, 5}} {
		want := truth.Apply(p)
		got := h.Apply(p)
		if !almostEqual(got.X, want.X, 1e-6) || !almostEqual(got.Y, want.Y, 1e-6) {
			t.Errorf("recovered H maps %+v to %+v, want %+v", p, got, want)
		}
	}
}

func TestHomographyFromPairsDegenerate(t *testing.T) {
	// Collinear points cannot determine a homography.
	src := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	dst := []Point{{0, 0}, {2, 2}, {4, 4}, {6, 6}}
	if _, err := homographyFromPairs(src, dst); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear points err = %v, want ErrDegenerate", err)
	}
	if _, err := homographyFromPairs(src[:3], dst[:3]); !errors.Is(err, ErrDegenerate) {
		t.Errorf("3 points err = %v, want ErrDegenerate", err)
	}
}

func TestRANSACWithOutliers(t *testing.T) {
	truth := knownH()
	rng := rand.New(rand.NewSource(31))
	src := gridPoints(100, 640, 480, rng)
	dst := applyAll(&truth, src)
	// Corrupt 30% with gross outliers.
	nOut := 30
	for i := 0; i < nOut; i++ {
		dst[i].X += 50 + rng.Float64()*200
		dst[i].Y -= 50 + rng.Float64()*200
	}
	res, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.InlierFrac < 0.65 {
		t.Errorf("inlier fraction = %v, want >= 0.65", res.InlierFrac)
	}
	// Inliers must exclude the corrupted indices (mostly).
	corrupted := 0
	for _, idx := range res.Inliers {
		if idx < nOut {
			corrupted++
		}
	}
	if corrupted > 2 {
		t.Errorf("%d corrupted correspondences accepted as inliers", corrupted)
	}
	// Recovered transform must be close to truth on clean points.
	for _, p := range []Point{{100, 100}, {500, 400}} {
		want := truth.Apply(p)
		got := res.H.Apply(p)
		if math.Hypot(got.X-want.X, got.Y-want.Y) > 1.0 {
			t.Errorf("RANSAC H maps %+v to %+v, want %+v", p, got, want)
		}
	}
}

func TestRANSACAllOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := gridPoints(40, 640, 480, rng)
	dst := gridPoints(40, 640, 480, rng) // unrelated
	_, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 32, MinInliers: 12})
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("unrelated point sets err = %v, want ErrDegenerate", err)
	}
}

func TestRANSACTooFewPoints(t *testing.T) {
	src := []Point{{0, 0}, {1, 0}, {0, 1}}
	if _, err := EstimateHomographyRANSAC(src, src, RANSACConfig{}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("3 points err = %v, want ErrDegenerate", err)
	}
}

func TestRANSACDeterministic(t *testing.T) {
	truth := knownH()
	rng := rand.New(rand.NewSource(33))
	src := gridPoints(60, 640, 480, rng)
	dst := applyAll(&truth, src)
	for i := 0; i < 10; i++ {
		dst[i].X += 120
	}
	r1, err1 := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 5})
	r2, err2 := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: 5})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.H != r2.H || len(r1.Inliers) != len(r2.Inliers) {
		t.Error("same seed produced different RANSAC results")
	}
}

func TestRatioTest(t *testing.T) {
	mkFeat := func(vals ...float32) sift.Feature {
		var f sift.Feature
		copy(f.Desc[:], vals)
		// Normalize.
		var n float64
		for _, v := range f.Desc {
			n += float64(v) * float64(v)
		}
		if n > 0 {
			n = math.Sqrt(n)
			for i := range f.Desc {
				f.Desc[i] = float32(float64(f.Desc[i]) / n)
			}
		}
		return f
	}
	train := []sift.Feature{
		mkFeat(1, 0, 0),
		mkFeat(0, 1, 0),
		mkFeat(0, 0, 1),
	}
	// Query near train[0]: unambiguous, should match.
	query := []sift.Feature{mkFeat(0.98, 0.1, 0)}
	matches := RatioTest(query, train, 0.8)
	if len(matches) != 1 || matches[0].TrainIdx != 0 {
		t.Fatalf("unambiguous query matches = %+v", matches)
	}
	// Ambiguous query equidistant to two train features: ratio test must
	// reject it.
	query = []sift.Feature{mkFeat(0.7071, 0.7071, 0)}
	if matches := RatioTest(query, train, 0.8); len(matches) != 0 {
		t.Errorf("ambiguous query produced matches %+v", matches)
	}
}

func TestRatioTestEmpty(t *testing.T) {
	if m := RatioTest(nil, nil, 0.8); len(m) != 0 {
		t.Errorf("empty inputs produced %+v", m)
	}
}

func TestProjectBox(t *testing.T) {
	shift := Homography{1, 0, 10, 0, 1, 20, 0, 0, 1}
	box := ProjectBox(&shift, 100, 50)
	if box.MinX != 10 || box.MinY != 20 || box.MaxX != 110 || box.MaxY != 70 {
		t.Errorf("projected box = %+v", box)
	}
}

// Property: homographyFromPairs recovers random well-conditioned affine
// transforms from noiseless correspondences.
func TestHomographyRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Homography{
			1 + rng.Float64()*0.5, rng.Float64() * 0.2, rng.Float64() * 100,
			rng.Float64() * 0.2, 1 + rng.Float64()*0.5, rng.Float64() * 100,
			0, 0, 1,
		}
		src := gridPoints(12, 640, 480, rng)
		dst := applyAll(&truth, src)
		h, err := homographyFromPairs(src, dst)
		if err != nil {
			return false
		}
		p := Point{rng.Float64() * 640, rng.Float64() * 480}
		want := truth.Apply(p)
		got := h.Apply(p)
		return math.Hypot(got.X-want.X, got.Y-want.Y) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, ok := solveLinear(a, b); ok {
		t.Error("singular system reported solvable")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func BenchmarkRANSAC100(b *testing.B) {
	truth := knownH()
	rng := rand.New(rand.NewSource(34))
	src := gridPoints(100, 640, 480, rng)
	dst := applyAll(&truth, src)
	for i := 0; i < 20; i++ {
		dst[i].X += 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateHomographyRANSAC(src, dst, RANSACConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIoU(t *testing.T) {
	a := BoundingBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if got := IoU(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("self IoU = %v", got)
	}
	b := BoundingBox{MinX: 5, MinY: 0, MaxX: 15, MaxY: 10}
	// Intersection 50, union 150.
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("half-overlap IoU = %v, want 1/3", got)
	}
	c := BoundingBox{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30}
	if got := IoU(a, c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	deg := BoundingBox{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	if got := IoU(a, deg); got != 0 {
		t.Errorf("degenerate IoU = %v", got)
	}
}
