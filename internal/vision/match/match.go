// Package match implements scAtteR's matching service substrate: nearest-
// neighbour descriptor matching with Lowe's ratio test, robust planar pose
// estimation via RANSAC over homographies, and cross-frame object tracking.
package match

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/edge-mar/scatter/internal/vision/parallel"
	"github.com/edge-mar/scatter/internal/vision/sift"
)

// Match pairs a query feature index with a train (reference) feature index.
type Match struct {
	QueryIdx int
	TrainIdx int
	Dist     float64
}

// ratioGrain is the query-row granularity of the parallel brute-force
// scan; fixed so chunk boundaries never depend on the worker count.
const ratioGrain = 16

// RatioTest matches each query descriptor to its nearest train descriptor,
// keeping only matches whose nearest distance is below ratio × the
// second-nearest distance (Lowe's ratio test). A typical ratio is 0.8.
// The O(|query|×|train|) scan is row-parallel over query features; matches
// are returned in query order, identical to the serial scan.
func RatioTest(query, train []sift.Feature, ratio float64) []Match {
	return ratioTest(query, train, ratio, 0)
}

// ratioTest is RatioTest with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial) — the knob the parallel-vs-serial equivalence tests use.
func ratioTest(query, train []sift.Feature, ratio float64, workers int) []Match {
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.8
	}
	// Fewer than two train features cannot support the ratio test: there
	// is no second-nearest distance to compare against, so every match
	// would be unverifiable. Return none rather than admitting them.
	if len(train) < 2 {
		return nil
	}
	parts := make([][]Match, parallel.Chunks(len(query), ratioGrain))
	parallel.For(workers, len(query), ratioGrain, func(chunk, start, end int) {
		var out []Match
		for qi := start; qi < end; qi++ {
			// Deferred sqrt: best/second are tracked as squared L2 — sqrt
			// is monotone, so the selection picks the same pair — and only
			// the two survivors are sqrt'd, turning |train| sqrts per query
			// feature into two. The emitted Dist and the ratio comparison
			// use the sqrt'd values, so output matches a per-pair-L2 scan.
			best, second := math.Inf(1), math.Inf(1)
			bestIdx := -1
			for ti := range train {
				d := sift.L2Sq(&query[qi].Desc, &train[ti].Desc)
				if d < best {
					second = best
					best = d
					bestIdx = ti
				} else if d < second {
					second = d
				}
			}
			if bestIdx < 0 {
				continue
			}
			bestD, secondD := math.Sqrt(best), math.Sqrt(second)
			// secondD == 0 means a duplicate train descriptor ties the
			// best match exactly — ambiguous, so reject it (the old
			// behavior admitted these bogus matches).
			if secondD > 0 && bestD < ratio*secondD {
				out = append(out, Match{QueryIdx: qi, TrainIdx: bestIdx, Dist: bestD})
			}
		}
		parts[chunk] = out
	})
	var out []Match
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// distPool recycles the batch distance matrix RatioTestBatch fills, so a
// steady stream of batches reuses one allocation for all query sets.
var distPool parallel.SlicePool[float64]

// RatioTestBatch runs the ratio test for several query sets against one
// train set, reusing a single pooled distance-matrix allocation across
// the whole batch (sized for the largest query set). Each result is
// bit-identical to RatioTest on the same query set: distances are the
// same sift.L2Sq evaluations and best/second selection scans train
// indices in the same order, so a batch of one degenerates to RatioTest.
func RatioTestBatch(queries [][]sift.Feature, train []sift.Feature, ratio float64) [][]Match {
	return ratioTestBatch(queries, train, ratio, 0)
}

// ratioTestBatch is RatioTestBatch with an explicit worker count — the
// knob the batch-vs-serial equivalence tests use.
func ratioTestBatch(queries [][]sift.Feature, train []sift.Feature, ratio float64, workers int) [][]Match {
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.8
	}
	out := make([][]Match, len(queries))
	if len(train) < 2 {
		// Same contract as RatioTest: no second-nearest distance exists,
		// so every query set yields no verifiable matches.
		return out
	}
	maxQ := 0
	for _, q := range queries {
		if len(q) > maxQ {
			maxQ = len(q)
		}
	}
	dist := distPool.Get(maxQ * len(train))
	for b, query := range queries {
		parts := make([][]Match, parallel.Chunks(len(query), ratioGrain))
		parallel.For(workers, len(query), ratioGrain, func(chunk, start, end int) {
			var part []Match
			for qi := start; qi < end; qi++ {
				// Same deferred-sqrt kernel as ratioTest: the row holds
				// squared L2 and only the surviving pair is sqrt'd.
				row := dist[qi*len(train) : (qi+1)*len(train)]
				for ti := range train {
					row[ti] = sift.L2Sq(&query[qi].Desc, &train[ti].Desc)
				}
				best, second := math.Inf(1), math.Inf(1)
				bestIdx := -1
				for ti, d := range row {
					if d < best {
						second = best
						best = d
						bestIdx = ti
					} else if d < second {
						second = d
					}
				}
				if bestIdx < 0 {
					continue
				}
				bestD, secondD := math.Sqrt(best), math.Sqrt(second)
				if secondD > 0 && bestD < ratio*secondD {
					part = append(part, Match{QueryIdx: qi, TrainIdx: bestIdx, Dist: bestD})
				}
			}
			parts[chunk] = part
		})
		var matches []Match
		for _, part := range parts {
			matches = append(matches, part...)
		}
		out[b] = matches
	}
	distPool.Put(dist)
	return out
}

// Point is a 2-D image point.
type Point struct {
	X, Y float64
}

// Homography is a 3×3 planar projective transform in row-major order,
// normalized so that H[8] == 1 where possible.
type Homography [9]float64

// Identity returns the identity homography.
func Identity() Homography {
	return Homography{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Apply maps a point through the homography. Points mapped to the plane at
// infinity (w ≈ 0) return NaN coordinates.
func (h *Homography) Apply(p Point) Point {
	w := h[6]*p.X + h[7]*p.Y + h[8]
	if math.Abs(w) < 1e-12 {
		return Point{math.NaN(), math.NaN()}
	}
	return Point{
		X: (h[0]*p.X + h[1]*p.Y + h[2]) / w,
		Y: (h[3]*p.X + h[4]*p.Y + h[5]) / w,
	}
}

// Mul returns the composition h∘g (apply g first, then h).
func (h *Homography) Mul(g *Homography) Homography {
	var out Homography
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += h[3*r+k] * g[3*k+c]
			}
			out[3*r+c] = s
		}
	}
	out.normalize()
	return out
}

func (h *Homography) normalize() {
	if math.Abs(h[8]) > 1e-12 {
		inv := 1 / h[8]
		for i := range h {
			h[i] *= inv
		}
	}
}

// ErrDegenerate is returned when a homography cannot be estimated from the
// given correspondences (collinear points, insufficient count, or a
// singular system).
var ErrDegenerate = errors.New("match: degenerate correspondence set")

// solveLinear solves the n×n system a·x = b in place using Gaussian
// elimination with partial pivoting. Returns false if singular.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		// The comparison is written so a NaN pivot (from NaN/Inf input
		// coordinates) also reports singular instead of silently
		// propagating NaN through back-substitution.
		if !(maxAbs >= 1e-12) {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// homographyFromPairs estimates H mapping src[i] -> dst[i] by solving the
// DLT linear system with h22 fixed to 1. It requires >= 4 pairs; with more
// than 4 it solves the least-squares normal equations.
func homographyFromPairs(src, dst []Point) (Homography, error) {
	n := len(src)
	if n < 4 || len(dst) != n {
		return Identity(), fmt.Errorf("%w: %d pairs", ErrDegenerate, n)
	}
	// Normalize points for conditioning (Hartley normalization).
	srcN, tSrc := normalizePoints(src)
	dstN, tDst := normalizePoints(dst)

	// Build the 2n×8 design matrix rows; solve least squares via normal
	// equations AtA x = Atb (8×8).
	ata := make([][]float64, 8)
	for i := range ata {
		ata[i] = make([]float64, 8)
	}
	atb := make([]float64, 8)
	row := make([]float64, 8)
	addRow := func(rhs float64) {
		for i := 0; i < 8; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < 8; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * rhs
		}
	}
	for i := 0; i < n; i++ {
		x, y := srcN[i].X, srcN[i].Y
		u, v := dstN[i].X, dstN[i].Y
		row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7] =
			x, y, 1, 0, 0, 0, -u*x, -u*y
		addRow(u)
		row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7] =
			0, 0, 0, x, y, 1, -v*x, -v*y
		addRow(v)
	}
	sol, ok := solveLinear(ata, atb)
	if !ok {
		return Identity(), ErrDegenerate
	}
	hn := Homography{sol[0], sol[1], sol[2], sol[3], sol[4], sol[5], sol[6], sol[7], 1}
	// Denormalize: H = tDst^-1 · Hn · tSrc.
	tDstInv, err := tDst.invertAffine()
	if err != nil {
		return Identity(), err
	}
	tmp := hn.Mul(&tSrc)
	h := tDstInv.Mul(&tmp)
	// Near-collinear configurations can slip past the pivot threshold and
	// produce enormous or non-finite entries; callers (RANSAC scoring)
	// must never see such a model as a success.
	if !h.isFinite() {
		return Identity(), ErrDegenerate
	}
	return h, nil
}

// isFinite reports whether every entry of the homography is a finite
// number.
func (h *Homography) isFinite() bool {
	for _, v := range h {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// normalizePoints translates points to zero centroid and scales to mean
// distance sqrt(2) (Hartley). Returns the transformed points and the
// similarity transform T with out = T(in).
func normalizePoints(pts []Point) ([]Point, Homography) {
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pts))
	cx /= n
	cy /= n
	var meanDist float64
	for _, p := range pts {
		meanDist += math.Hypot(p.X-cx, p.Y-cy)
	}
	meanDist /= n
	scale := 1.0
	if meanDist > 1e-12 {
		scale = math.Sqrt2 / meanDist
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{X: (p.X - cx) * scale, Y: (p.Y - cy) * scale}
	}
	t := Homography{scale, 0, -scale * cx, 0, scale, -scale * cy, 0, 0, 1}
	return out, t
}

// invertAffine inverts a similarity/affine homography (bottom row 0 0 1).
func (h *Homography) invertAffine() (Homography, error) {
	a, b, c := h[0], h[1], h[2]
	d, e, f := h[3], h[4], h[5]
	det := a*e - b*d
	if math.Abs(det) < 1e-15 {
		return Identity(), ErrDegenerate
	}
	inv := 1 / det
	return Homography{
		e * inv, -b * inv, (b*f - c*e) * inv,
		-d * inv, a * inv, (c*d - a*f) * inv,
		0, 0, 1,
	}, nil
}

// RANSACResult is the outcome of robust homography estimation.
type RANSACResult struct {
	H          Homography
	Inliers    []int // indices into the correspondence arrays
	InlierFrac float64
}

// RANSACConfig controls EstimateHomographyRANSAC.
type RANSACConfig struct {
	Iterations int     // default 500
	Threshold  float64 // inlier reprojection threshold in pixels (default 3)
	Seed       int64   // default 1
	MinInliers int     // minimum inliers to accept (default 8)
}

// EstimateHomographyRANSAC robustly fits a homography src -> dst. It
// returns ErrDegenerate when no model reaches MinInliers.
func EstimateHomographyRANSAC(src, dst []Point, cfg RANSACConfig) (*RANSACResult, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MinInliers <= 0 {
		cfg.MinInliers = 8
	}
	n := len(src)
	if n < 4 || len(dst) != n {
		return nil, fmt.Errorf("%w: %d correspondences", ErrDegenerate, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	thresholdSq := cfg.Threshold * cfg.Threshold

	var bestInliers []int
	sample := make([]int, 4)
	s4, d4 := make([]Point, 4), make([]Point, 4)
	for it := 0; it < cfg.Iterations; it++ {
		// Sample 4 distinct indices.
		for i := range sample {
			for {
				c := rng.Intn(n)
				dup := false
				for j := 0; j < i; j++ {
					if sample[j] == c {
						dup = true
						break
					}
				}
				if !dup {
					sample[i] = c
					break
				}
			}
		}
		for i, idx := range sample {
			s4[i] = src[idx]
			d4[i] = dst[idx]
		}
		h, err := homographyFromPairs(s4, d4)
		if err != nil {
			continue
		}
		var inliers []int
		for i := 0; i < n; i++ {
			p := h.Apply(src[i])
			if math.IsNaN(p.X) {
				continue
			}
			dx := p.X - dst[i].X
			dy := p.Y - dst[i].Y
			if dx*dx+dy*dy <= thresholdSq {
				inliers = append(inliers, i)
			}
		}
		if len(inliers) > len(bestInliers) {
			bestInliers = inliers
			// Early exit when almost everything is an inlier.
			if len(bestInliers) > n*95/100 {
				break
			}
		}
	}
	if len(bestInliers) < cfg.MinInliers {
		return nil, fmt.Errorf("%w: best model has %d inliers < %d",
			ErrDegenerate, len(bestInliers), cfg.MinInliers)
	}
	// Refine on all inliers.
	srcIn := make([]Point, len(bestInliers))
	dstIn := make([]Point, len(bestInliers))
	for i, idx := range bestInliers {
		srcIn[i] = src[idx]
		dstIn[i] = dst[idx]
	}
	h, err := homographyFromPairs(srcIn, dstIn)
	if err != nil {
		return nil, err
	}
	return &RANSACResult{
		H:          h,
		Inliers:    bestInliers,
		InlierFrac: float64(len(bestInliers)) / float64(n),
	}, nil
}

// BoundingBox is an axis-aligned box in image coordinates.
type BoundingBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// IoU returns the intersection-over-union of two axis-aligned boxes,
// zero when they do not overlap or either is degenerate.
func IoU(a, b BoundingBox) float64 {
	ix := math.Min(a.MaxX, b.MaxX) - math.Max(a.MinX, b.MinX)
	iy := math.Min(a.MaxY, b.MaxY) - math.Max(a.MinY, b.MinY)
	if ix <= 0 || iy <= 0 {
		return 0
	}
	inter := ix * iy
	areaA := (a.MaxX - a.MinX) * (a.MaxY - a.MinY)
	areaB := (b.MaxX - b.MinX) * (b.MaxY - b.MinY)
	if areaA <= 0 || areaB <= 0 {
		return 0
	}
	return inter / (areaA + areaB - inter)
}

// ProjectBox maps the four corners of a reference-image box through a
// homography and returns the axis-aligned bounding box of the result —
// the box scAtteR draws over a recognized object.
func ProjectBox(h *Homography, refW, refH float64) BoundingBox {
	corners := []Point{{0, 0}, {refW, 0}, {refW, refH}, {0, refH}}
	box := BoundingBox{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, c := range corners {
		p := h.Apply(c)
		if math.IsNaN(p.X) {
			continue
		}
		box.MinX = math.Min(box.MinX, p.X)
		box.MinY = math.Min(box.MinY, p.Y)
		box.MaxX = math.Max(box.MaxX, p.X)
		box.MaxY = math.Max(box.MaxY, p.Y)
	}
	return box
}
