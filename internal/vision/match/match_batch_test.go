package match

import (
	"math"
	"math/rand"
	"testing"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

func randFeats(rng *rand.Rand, n int) []sift.Feature {
	out := make([]sift.Feature, n)
	for i := range out {
		var norm float64
		for j := range out[i].Desc {
			v := rng.Float64()
			out[i].Desc[j] = float32(v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for j := range out[i].Desc {
			out[i].Desc[j] = float32(float64(out[i].Desc[j]) / norm)
		}
	}
	return out
}

// Batched kernel contract: RatioTestBatch reuses one distance matrix
// across the batch but each result must be bit-identical to a serial
// RatioTest of the same query set.
func TestRatioTestBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	train := randFeats(rng, 97)
	queries := [][]sift.Feature{
		randFeats(rng, 60),
		randFeats(rng, 1), // single query feature
		{},                // empty query mid-batch
		randFeats(rng, 123),
	}
	for _, workers := range []int{1, 4} {
		got := ratioTestBatch(queries, train, 0.85, workers)
		if len(got) != len(queries) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(queries))
		}
		for b, q := range queries {
			want := RatioTest(q, train, 0.85)
			if len(got[b]) != len(want) {
				t.Fatalf("workers=%d item %d: %d matches, serial %d", workers, b, len(got[b]), len(want))
			}
			for i := range want {
				if got[b][i] != want[i] {
					t.Fatalf("workers=%d item %d match %d: %+v, serial %+v", workers, b, i, got[b][i], want[i])
				}
			}
		}
	}
}

func TestRatioTestBatchSizeOneAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	train := randFeats(rng, 50)
	query := randFeats(rng, 40)
	one := RatioTestBatch([][]sift.Feature{query}, train, 0.85)
	if len(one) != 1 {
		t.Fatalf("batch of one returned %d results", len(one))
	}
	want := RatioTest(query, train, 0.85)
	if len(one[0]) != len(want) {
		t.Fatalf("batch of one: %d matches, serial %d", len(one[0]), len(want))
	}
	for i := range want {
		if one[0][i] != want[i] {
			t.Fatalf("batch of one match %d: %+v, serial %+v", i, one[0][i], want[i])
		}
	}
	if out := RatioTestBatch(nil, train, 0.85); len(out) != 0 {
		t.Fatalf("RatioTestBatch(nil) = %v, want empty", out)
	}
	// A train set below two features can never pass the ratio test;
	// the batch path must mirror RatioTest's nil results.
	short := RatioTestBatch([][]sift.Feature{query}, train[:1], 0.85)
	if len(short) != 1 || short[0] != nil {
		t.Fatalf("short-train batch = %v, want one nil entry", short)
	}
}
