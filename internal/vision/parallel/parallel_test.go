package parallel

import (
	"reflect"
	"sort"
	"sync"
	"testing"
)

// chunkBounds records every (chunk, start, end) triple For produces.
func chunkBounds(workers, n, grain int) [][3]int {
	var mu sync.Mutex
	var out [][3]int
	For(workers, n, grain, func(chunk, start, end int) {
		mu.Lock()
		out = append(out, [3]int{chunk, start, end})
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 64, 100} {
			counts := make([]int, n)
			var mu sync.Mutex
			For(workers, n, 9, func(_, start, end int) {
				mu.Lock()
				for i := start; i < end; i++ {
					counts[i]++
				}
				mu.Unlock()
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunkBoundariesIndependentOfWorkers(t *testing.T) {
	for _, n := range []int{1, 10, 33, 257} {
		serial := chunkBounds(1, n, 16)
		wide := chunkBounds(8, n, 16)
		if !reflect.DeepEqual(serial, wide) {
			t.Fatalf("n=%d: chunk layout differs between 1 and 8 workers:\n%v\n%v", n, serial, wide)
		}
		if len(serial) != Chunks(n, 16) {
			t.Fatalf("n=%d: Chunks=%d but For produced %d chunks", n, Chunks(n, 16), len(serial))
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var seen []int
	For(1, 50, 8, func(chunk, start, end int) {
		seen = append(seen, chunk)
	})
	for i, c := range seen {
		if c != i {
			t.Fatalf("serial chunk order %v", seen)
		}
	}
}

// Per-chunk partial sums merged in chunk order must be bit-identical
// regardless of worker count — the determinism contract every kernel
// relies on.
func TestChunkMergeDeterminism(t *testing.T) {
	n := 1013
	data := make([]float64, n)
	for i := range data {
		data[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		parts := make([]float64, Chunks(n, 32))
		For(workers, n, 32, func(chunk, start, end int) {
			var s float64
			for i := start; i < end; i++ {
				s += data[i]
			}
			parts[chunk] = s
		})
		var total float64
		for _, p := range parts {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, w := range []int{2, 4, 8} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d sum %v != serial %v", w, got, ref)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

func TestChunksEdgeCases(t *testing.T) {
	for _, tc := range []struct{ n, grain, want int }{
		{0, 8, 0}, {-3, 8, 0}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {5, 0, 5},
	} {
		if got := Chunks(tc.n, tc.grain); got != tc.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", tc.n, tc.grain, got, tc.want)
		}
	}
}

func TestSlicePoolZeroesReusedBuffers(t *testing.T) {
	var pool SlicePool[float64]
	b := pool.Get(16)
	if len(b) != 16 {
		t.Fatalf("Get(16) len = %d", len(b))
	}
	for i := range b {
		b[i] = float64(i) + 1
	}
	pool.Put(b)
	c := pool.Get(8)
	if len(c) != 8 {
		t.Fatalf("Get(8) len = %d", len(c))
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	pool.Put(nil) // must not panic
}

func TestSlicePoolConcurrent(t *testing.T) {
	var pool SlicePool[int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := pool.Get(64)
				for j := range s {
					if s[j] != 0 {
						t.Error("dirty pooled buffer")
						return
					}
					s[j] = j
				}
				pool.Put(s)
			}
		}()
	}
	wg.Wait()
}
