// Package parallel is the shared worker-pool substrate for the vision
// kernels (SIFT, Fisher encoding, LSH, matching). The paper's scAtteR
// pipeline is compute-bound on these stages; this package lets each kernel
// fan work out across cores while keeping a hard determinism contract:
//
//   - Work is split into grain-sized chunks whose boundaries depend only on
//     the input size and the grain — never on the worker count. A kernel
//     that computes chunk-local results and merges them in chunk order
//     therefore produces bit-identical output at any worker count,
//     including the serial (one-worker) fallback.
//   - Each chunk owns a disjoint slice of the output; workers never share
//     mutable state beyond the chunk dispenser.
//   - Scratch buffers come from typed sync.Pool wrappers so steady-state
//     per-frame work does not re-allocate accumulators.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker-pool size: GOMAXPROCS, floored at 1.
// Kernels use this when their configured worker count is zero, so `go test
// -cpu 1,4,8` benchmark rows exercise the pool at each width.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Chunks returns the number of grain-sized chunks covering n items — the
// length a caller's per-chunk result slice must have.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For partitions [0, n) into grain-sized chunks and invokes body once per
// chunk as body(chunk, start, end). workers <= 0 uses Workers(); a worker
// count of one (or a single chunk) runs serially in chunk order with no
// goroutines. Chunk boundaries are a pure function of n and grain, so any
// chunk-order merge of chunk-local results is bit-identical across worker
// counts. body must only write state owned by its chunk.
func For(workers, n, grain int, body func(chunk, start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if workers <= 0 {
		workers = Workers()
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			start := c * grain
			end := start + grain
			if end > n {
				end = n
			}
			body(c, start, end)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				start := c * grain
				end := start + grain
				if end > n {
					end = n
				}
				body(c, start, end)
			}
		}()
	}
	wg.Wait()
}

// SlicePool recycles scratch slices across goroutines. Get returns a
// zeroed slice of exactly the requested length, so pooled buffers are safe
// to use as accumulators without an explicit clear at every call site.
type SlicePool[T any] struct {
	pool sync.Pool
}

// Get returns a zeroed slice of length n, reusing pooled capacity when a
// large-enough buffer is available.
func (sp *SlicePool[T]) Get(n int) []T {
	if v, _ := sp.pool.Get().(*[]T); v != nil && cap(*v) >= n {
		s := (*v)[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	return make([]T, n)
}

// Put returns a slice to the pool. Empty slices are dropped.
func (sp *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	sp.pool.Put(&s)
}
