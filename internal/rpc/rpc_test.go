package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(func(method string, body []byte) ([]byte, error) {
		switch method {
		case "echo":
			return body, nil
		case "upper":
			return bytes.ToUpper(body), nil
		case "fail":
			return nil, errors.New("boom")
		case "slow":
			time.Sleep(50 * time.Millisecond)
			return body, nil
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestCallEcho(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()
	got, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("echo = %q", got)
	}
	got, err = c.Call(context.Background(), "upper", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ABC" {
		t.Errorf("upper = %q", got)
	}
}

func TestCallError(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()
	_, err := c.Call(context.Background(), "fail", nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want remote boom", err)
	}
	// The connection survives an error response.
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Errorf("call after error: %v", err)
	}
}

func TestConcurrentPipelinedCalls(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, 2*time.Second)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			got, err := c.Call(context.Background(), "echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("mismatched response: %q vs %q", got, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallTimeout(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, 10*time.Millisecond)
	defer c.Close()
	_, err := c.Call(context.Background(), "slow", nil)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestContextCancel(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := c.Call(ctx, "slow", nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDialFailure(t *testing.T) {
	c := Dial("127.0.0.1:1", 200*time.Millisecond) // closed port
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", nil); err == nil {
		t.Error("call to closed port succeeded")
	}
}

func TestReconnectAfterServerRestart(t *testing.T) {
	srv := NewServer(func(method string, body []byte) ([]byte, error) { return body, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr, time.Second)
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("1")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// First call after close fails (broken conn), then a new server on
	// the same port allows a later call to succeed via reconnect.
	_, _ = c.Call(context.Background(), "echo", []byte("2"))
	srv2 := NewServer(func(method string, body []byte) ([]byte, error) { return body, nil })
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("port not immediately reusable: %v", err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "echo", []byte("3")); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	_, srv := echoServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNewServerNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewServer(nil) did not panic")
		}
	}()
	NewServer(nil)
}

func TestLargeBody(t *testing.T) {
	addr, _ := echoServer(t)
	c := Dial(addr, 5*time.Second)
	defer c.Close()
	body := make([]byte, 1<<20) // 1 MiB, the size of a feature-rich state
	for i := range body {
		body[i] = byte(i)
	}
	got, err := c.Call(context.Background(), "echo", body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Error("large body corrupted")
	}
}

func BenchmarkCall(b *testing.B) {
	srv := NewServer(func(method string, body []byte) ([]byte, error) { return body, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr, 5*time.Second)
	defer c.Close()
	body := make([]byte, 1024)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo", body); err != nil {
			b.Fatal(err)
		}
	}
}
