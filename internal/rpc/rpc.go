// Package rpc implements a minimal framed request/response protocol over
// TCP — the stdlib-only substitute for the gRPC calls scAtteR++'s sidecar
// makes into its service, and for matching's state-fetch requests to sift
// in the stateful pipeline.
//
// Wire format (big-endian): each message is
//
//	u32 frame length | u64 request id | u8 kind | u8 method length |
//	method bytes | body bytes
//
// where kind distinguishes requests, responses, and error responses
// (whose body is the error string). Responses are matched to requests by
// id, so a connection supports pipelined concurrent calls.
package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message kinds.
const (
	kindRequest = iota
	kindResponse
	kindError
)

// maxFrame bounds a single message (headers + body).
const maxFrame = 16 << 20

// Protocol errors.
var (
	ErrTooLarge    = errors.New("rpc: frame too large")
	ErrClosed      = errors.New("rpc: connection closed")
	ErrBadResponse = errors.New("rpc: malformed response")
)

// Handler serves one method call. Returning an error sends an error frame
// to the caller.
type Handler func(method string, body []byte) ([]byte, error)

// Server accepts connections and dispatches calls to a Handler.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server around the handler.
func NewServer(handler Handler) *Server {
	if handler == nil {
		panic("rpc: nil handler")
	}
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port", port 0 for ephemeral) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var writeMu sync.Mutex
	for {
		id, kind, method, body, err := readMessage(r)
		if err != nil {
			return
		}
		if kind != kindRequest {
			continue // ignore stray frames
		}
		// Handle sequentially per connection read, but allow concurrent
		// in-flight handlers (pipelining).
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp, err := s.handler(method, body)
			writeMu.Lock()
			defer writeMu.Unlock()
			if err != nil {
				writeMessage(conn, id, kindError, "", []byte(err.Error()))
				return
			}
			writeMessage(conn, id, kindResponse, "", resp)
		}()
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func writeMessage(w io.Writer, id uint64, kind byte, method string, body []byte) error {
	if len(method) > 255 {
		return ErrTooLarge
	}
	n := 8 + 1 + 1 + len(method) + len(body)
	if n > maxFrame {
		return ErrTooLarge
	}
	buf := make([]byte, 0, 4+n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = append(buf, kind, byte(len(method)))
	buf = append(buf, method...)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	return err
}

func readMessage(r *bufio.Reader) (id uint64, kind byte, method string, body []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 10 || n > maxFrame {
		err = ErrTooLarge
		return
	}
	frame := make([]byte, n)
	if _, err = io.ReadFull(r, frame); err != nil {
		return
	}
	id = binary.BigEndian.Uint64(frame)
	kind = frame[8]
	mlen := int(frame[9])
	if 10+mlen > len(frame) {
		err = ErrBadResponse
		return
	}
	method = string(frame[10 : 10+mlen])
	body = frame[10+mlen:]
	return
}

// Client is a connection pool of one TCP connection with pipelined calls.
// It reconnects lazily after failures. Safe for concurrent use.
type Client struct {
	addr    string
	timeout time.Duration

	mu      sync.Mutex
	conn    net.Conn
	nextID  uint64
	pending map[uint64]chan result
}

type result struct {
	body []byte
	err  error
}

// Dial creates a client for the server address. The connection is
// established on first call.
func Dial(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{addr: addr, timeout: timeout, pending: make(map[uint64]chan result)}
}

func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	go c.readLoop(conn)
	return nil
}

func (c *Client) readLoop(conn net.Conn) {
	r := bufio.NewReader(conn)
	for {
		id, kind, _, body, err := readMessage(r)
		if err != nil {
			c.failAll(conn, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			continue
		}
		switch kind {
		case kindResponse:
			ch <- result{body: body}
		case kindError:
			ch <- result{err: fmt.Errorf("rpc: remote: %s", body)}
		default:
			ch <- result{err: ErrBadResponse}
		}
	}
}

func (c *Client) failAll(conn net.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: fmt.Errorf("%w: %v", ErrClosed, err)}
	}
}

// Call performs a unary request and waits for the response, the context,
// or the client timeout.
func (c *Client) Call(ctx context.Context, method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	if err := c.ensureConnLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan result, 1)
	c.pending[id] = ch
	conn := c.conn
	err := writeMessage(conn, id, kindRequest, method, body)
	if err != nil {
		delete(c.pending, id)
		c.mu.Unlock()
		c.failAll(conn, err)
		return nil, err
	}
	c.mu.Unlock()

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		c.drop(id)
		return nil, ctx.Err()
	case <-timer.C:
		c.drop(id)
		return nil, fmt.Errorf("rpc: call %s timed out after %v", method, c.timeout)
	}
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		c.failAll(conn, ErrClosed)
	}
	return nil
}
