package orchestrator

import (
	"fmt"
	"sort"
)

// HierarchicalScheduler reproduces Oakestra's two-level placement: the
// root orchestrator first selects a cluster by aggregate fit (most free
// aggregate memory among clusters containing at least one feasible
// node), then delegates node selection within that cluster to an inner
// scheduler. Replicas repeat the full two-level decision, so they can
// land in different clusters only when the preferred cluster runs out of
// feasible nodes.
type HierarchicalScheduler struct {
	// Inner picks nodes within the chosen cluster (default
	// SpreadScheduler).
	Inner Scheduler
}

// Place implements Scheduler.
func (h HierarchicalScheduler) Place(svc ServiceSLA, candidates []*node) ([]*node, error) {
	inner := h.Inner
	if inner == nil {
		inner = SpreadScheduler{}
	}
	// Root level: assign each replica a cluster, tracking the memory the
	// earlier replicas of this call will reserve.
	adjust := make(map[string]int64)
	counts := make(map[string]int)
	var clusterOrder []string
	for replica := 0; replica < svc.Replicas; replica++ {
		cluster, err := h.pickCluster(svc, candidates, adjust)
		if err != nil {
			return nil, err
		}
		if counts[cluster] == 0 {
			clusterOrder = append(clusterOrder, cluster)
		}
		counts[cluster]++
		adjust[cluster] += svc.Requirements.MemBytes
	}
	// Cluster level: delegate batched node selection so the inner
	// scheduler can spread replicas within the cluster.
	var out []*node
	for _, cluster := range clusterOrder {
		var clusterNodes []*node
		for _, n := range candidates {
			if n.info.Cluster == cluster {
				clusterNodes = append(clusterNodes, n)
			}
		}
		batch := svc
		batch.Replicas = counts[cluster]
		placed, err := inner.Place(batch, clusterNodes)
		if err != nil {
			return nil, err
		}
		out = append(out, placed...)
	}
	return out, nil
}

// pickCluster returns the cluster with the most aggregate free memory
// (minus the adjustments this call already committed) among those
// containing a feasible node. Deterministic: ties break by cluster name.
func (h HierarchicalScheduler) pickCluster(svc ServiceSLA, candidates []*node, adjust map[string]int64) (string, error) {
	type agg struct {
		name     string
		free     int64
		feasible bool
	}
	byName := make(map[string]*agg)
	for _, n := range candidates {
		a, ok := byName[n.info.Cluster]
		if !ok {
			a = &agg{name: n.info.Cluster, free: -adjust[n.info.Cluster]}
			byName[n.info.Cluster] = a
		}
		a.free += n.info.MemBytes - n.reservedMem
		if n.feasible(svc.Requirements, 0) {
			a.feasible = true
		}
	}
	var clusters []*agg
	for _, a := range byName {
		if a.feasible {
			clusters = append(clusters, a)
		}
	}
	if len(clusters) == 0 {
		return "", fmt.Errorf("%w: %s (no cluster has a feasible node)", ErrUnschedulable, svc.Name)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].free != clusters[j].free {
			return clusters[i].free > clusters[j].free
		}
		return clusters[i].name < clusters[j].name
	})
	return clusters[0].name, nil
}
