package orchestrator

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/wire"
)

// deployScatter deploys the standard SLA and returns the root.
func deployScatter(t *testing.T, opts ...Option) *Root {
	t.Helper()
	r := newTestRoot(t, opts...)
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	return r
}

// beat reports one service's cumulative counters from node E1.
func beat(t *testing.T, r *Root, at time.Time, svc string, arrived, dropped uint64) {
	t.Helper()
	err := r.Heartbeat("E1", NodeStatus{
		LastHeartbeat: at,
		Services: []ServiceTelemetry{{
			Service: svc, Arrived: arrived, Dropped: dropped,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewAutoscalerPanics(t *testing.T) {
	r := newTestRoot(t)
	for name, f := range map[string]func(){
		"nil root":   func() { NewAutoscaler(nil, AutoscalerConfig{App: "a", Policy: appaware.QoSPolicy{}}) },
		"no app":     func() { NewAutoscaler(r, AutoscalerConfig{Policy: appaware.QoSPolicy{}}) },
		"nil policy": func() { NewAutoscaler(r, AutoscalerConfig{App: "a"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAutoscalerWindowsCountersAndScalesUp drives the live loop through
// the windowing lifecycle: the first tick only primes (cumulative totals
// are not one period's activity), a distressed window scales out, an
// unchanged-counter window is idle — the regression for the cumulative-
// ratio bug — and a counter reset windows saturating instead of wrapping.
func TestAutoscalerWindowsCountersAndScalesUp(t *testing.T) {
	r := deployScatter(t)
	a := NewAutoscaler(r, AutoscalerConfig{App: "scatter", Policy: appaware.QoSPolicy{}})
	t0 := time.Unix(100, 0)

	// Priming tick: huge cumulative totals with an awful lifetime ratio
	// must not trigger anything.
	beat(t, r, t0, "sift", 10_000, 5_000)
	a.Tick(t0)
	if ev := a.Events(); len(ev) != 0 {
		t.Fatalf("priming tick acted: %+v", ev)
	}

	// One bad period: +300 arrivals, +150 drops → windowed ratio 0.5.
	t1 := t0.Add(2 * time.Second)
	beat(t, r, t1, "sift", 10_300, 5_150)
	a.Tick(t1)
	ev := a.Events()
	if len(ev) != 1 || ev[0].Service != "sift" || ev[0].Verb != "scale-up" {
		t.Fatalf("events = %+v, want one sift scale-up", ev)
	}
	d, err := r.Deployment("scatter")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.InstancesOf("sift")); n != 2 {
		t.Fatalf("sift replicas = %d after scale-up", n)
	}

	// Unchanged counters: the lifetime ratio is still 0.5 but the window
	// is empty — the cumulative-signal bug would keep scaling forever.
	t2 := t1.Add(2 * time.Second)
	beat(t, r, t2, "sift", 10_300, 5_150)
	a.Tick(t2)
	if ev := a.Events(); len(ev) != 1 {
		t.Fatalf("idle window acted: %+v", ev)
	}

	// Counter reset (worker replaced): cur < last must window as cur, so
	// 40 drops over 50 arrivals reads as 80% distress, not wraparound.
	t3 := t2.Add(2 * time.Second)
	beat(t, r, t3, "sift", 50, 40)
	a.Tick(t3)
	ev = a.Events()
	if len(ev) != 2 || ev[1].Verb != "scale-up" {
		t.Fatalf("events after reset = %+v, want second scale-up", ev)
	}
	st := a.Status()
	if st.ScaleUps != 2 || st.Evaluations != 4 {
		t.Errorf("digest = %+v, want 2 scale-ups over 4 evaluations", st)
	}
}

// TestAutoscalerZeroArrivalDistress covers the DropRatio bugfix at the
// live loop: a window with drops but no arrivals is full distress.
func TestAutoscalerZeroArrivalDistress(t *testing.T) {
	r := deployScatter(t)
	a := NewAutoscaler(r, AutoscalerConfig{App: "scatter", Policy: appaware.QoSPolicy{}})
	t0 := time.Unix(100, 0)
	beat(t, r, t0, "lsh", 500, 10)
	a.Tick(t0)
	// Backlog shed with nothing admitted: arrivals flat, drops climbing.
	t1 := t0.Add(2 * time.Second)
	beat(t, r, t1, "lsh", 500, 60)
	a.Tick(t1)
	ev := a.Events()
	if len(ev) != 1 || ev[0].Service != "lsh" || ev[0].Verb != "scale-up" {
		t.Fatalf("events = %+v, want lsh scale-up on zero-arrival drops", ev)
	}
}

// TestAutoscalerCapEscalatesAndRecovers walks the admission ladder: at
// the replica cap distress escalates admit → degrade → reject onto the
// heartbeat downlink, and windowed recovery relaxes it one level per
// period until the verdict set empties.
func TestAutoscalerCapEscalatesAndRecovers(t *testing.T) {
	r := deployScatter(t)
	var transitions []string
	a := NewAutoscaler(r, AutoscalerConfig{
		App: "scatter", Policy: appaware.QoSPolicy{},
		MaxReplicas: 1, AdmissionEnabled: true,
		OnAdmission: func(svc string, st core.AdmitState, reason string) {
			transitions = append(transitions, svc+":"+st.String())
		},
	})
	t0 := time.Unix(100, 0)
	beat(t, r, t0, "sift", 1000, 0)
	a.Tick(t0)

	// Moderate distress at the cap: degrade, carried on heartbeats.
	now := t0.Add(2 * time.Second)
	beat(t, r, now, "sift", 1300, 60) // windowed ratio 0.2
	a.Tick(now)
	if st := a.AdmitStateOf(wire.StepSIFT); st != core.AdmitDegrade {
		t.Fatalf("after moderate distress: %v, want degrade", st)
	}
	adm := r.Admissions()
	if len(adm) != 1 || adm[0].Service != "sift" || adm[0].State != "degrade" {
		t.Fatalf("heartbeat downlink = %+v", adm)
	}
	if !strings.Contains(adm[0].Reason, "replica cap") {
		t.Errorf("reason = %q, want replica-cap mention", adm[0].Reason)
	}

	// Severe distress: straight past degrade to reject.
	now = now.Add(2 * time.Second)
	beat(t, r, now, "sift", 1400, 140) // windowed ratio 0.8
	a.Tick(now)
	if st := a.AdmitStateOf(wire.StepSIFT); st != core.AdmitReject {
		t.Fatalf("after severe distress: %v, want reject", st)
	}

	// Recovery: two healthy windows step reject → degrade → admit and
	// clear the downlink.
	for i := 0; i < 2; i++ {
		now = now.Add(2 * time.Second)
		beat(t, r, now, "sift", 1400, 140) // unchanged: idle window
		a.Tick(now)
	}
	if st := a.AdmitStateOf(wire.StepSIFT); st != core.AdmitOK {
		t.Fatalf("after recovery: %v, want admit", st)
	}
	if adm := r.Admissions(); len(adm) != 0 {
		t.Errorf("downlink not cleared: %+v", adm)
	}
	want := []string{"sift:degrade", "sift:reject", "sift:degrade", "sift:admit"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	st := a.Status()
	if st.Escalations != 2 || st.Relaxations != 2 {
		t.Errorf("digest = %+v, want 2 escalations / 2 relaxations", st)
	}
}

// TestAutoscalerScaleDownFloor: the scale-in arm retires idle extra
// replicas through Root.ScaleDown but never below MinReplicas.
func TestAutoscalerScaleDownFloor(t *testing.T) {
	var removed []Instance
	r := newTestRoot(t, WithHooks(Hooks{
		OnRemove: func(inst Instance) { removed = append(removed, inst) },
	}))
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ScaleUp("scatter", "encoding"); err != nil {
		t.Fatal(err)
	}
	a := NewAutoscaler(r, AutoscalerConfig{
		App: "scatter", Policy: appaware.QoSPolicy{EnableScaleDown: true},
	})
	t0 := time.Unix(100, 0)
	beat(t, r, t0, "encoding", 100, 0)
	a.Tick(t0)
	for i := 1; i <= 3; i++ {
		now := t0.Add(time.Duration(i) * 2 * time.Second)
		beat(t, r, now, "encoding", 100, 0) // idle windows
		a.Tick(now)
	}
	d, err := r.Deployment("scatter")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.InstancesOf("encoding")); n != 1 {
		t.Errorf("encoding replicas = %d, want scale-in to the floor of 1", n)
	}
	if len(removed) != 1 || removed[0].Service != "encoding" {
		t.Errorf("OnRemove calls = %+v, want one encoding removal", removed)
	}
	if st := a.Status(); st.ScaleDowns != 1 {
		t.Errorf("digest = %+v, want exactly 1 scale-down", st)
	}
}

// TestAutoscalerHardwarePolicyReadsLiveGauges: the live loop feeds node
// gauges to the policy — low utilization during an app-level collapse
// leaves the hardware policy inert (the paper's blind spot), while a hot
// gauge fires it.
func TestAutoscalerHardwarePolicyReadsLiveGauges(t *testing.T) {
	r := deployScatter(t)
	a := NewAutoscaler(r, AutoscalerConfig{App: "scatter", Policy: appaware.HardwarePolicy{}})
	t0 := time.Unix(100, 0)
	hb := func(at time.Time, gpu float64, arrived, dropped uint64) {
		t.Helper()
		err := r.Heartbeat("E1", NodeStatus{
			LastHeartbeat: at, GPUUtil: gpu,
			Services: []ServiceTelemetry{{Service: "sift", Arrived: arrived, Dropped: dropped}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hb(t0, 0.2, 1000, 0)
	a.Tick(t0)
	// Collapse with cool hardware: heavy drops, utilization low.
	t1 := t0.Add(2 * time.Second)
	hb(t1, 0.2, 1300, 200)
	a.Tick(t1)
	if ev := a.Events(); len(ev) != 0 {
		t.Fatalf("hardware policy acted on a cool collapse: %+v", ev)
	}
	// Hot gauge: fires, targeting the busiest service by ingress.
	t2 := t1.Add(2 * time.Second)
	hb(t2, 0.95, 1600, 200)
	a.Tick(t2)
	ev := a.Events()
	if len(ev) != 1 || ev[0].Service != "sift" || ev[0].Verb != "scale-up" {
		t.Fatalf("events = %+v, want sift scale-up on hot GPU", ev)
	}
}

func TestRootScaleAPIErrors(t *testing.T) {
	r := deployScatter(t)
	if _, err := r.ScaleUp("ghost", "sift"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("unknown app err = %v", err)
	}
	if _, err := r.ScaleUp("scatter", "ghost"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown service err = %v", err)
	}
	if _, err := r.ScaleDown("scatter", "sift"); !errors.Is(err, ErrMinReplicas) {
		t.Errorf("floor err = %v", err)
	}
	// Scale-up commits bookkeeping: the new replica gets the next index
	// and survives a round trip through the deployment view.
	inst, err := r.ScaleUp("scatter", "sift")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Replica != 1 || inst.State != StateRunning {
		t.Errorf("scaled instance = %+v", inst)
	}
	down, err := r.ScaleDown("scatter", "sift")
	if err != nil {
		t.Fatal(err)
	}
	if down.Key() != inst.Key() {
		t.Errorf("scale-down removed %s, want the newest replica %s", down.Key(), inst.Key())
	}
}
