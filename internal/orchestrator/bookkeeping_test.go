package orchestrator

import (
	"testing"
	"time"
)

// twoNodeRoot registers nodes A (memA) and B (memB) in one "edge"
// cluster.
func twoNodeRoot(t *testing.T, memA, memB int64, opts ...Option) *Root {
	t.Helper()
	r := NewRoot(opts...)
	for _, n := range []NodeInfo{
		{Name: "A", Cluster: "edge", CPUCores: 8, MemBytes: memA},
		{Name: "B", Cluster: "edge", CPUCores: 8, MemBytes: memB},
	} {
		if err := r.RegisterNode(n, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestFailoverConservesReservedMem is the regression test for the
// DetectFailures bookkeeping bug: the migration target got instances++
// but never reservedMem += the service's memory, so every failover
// leaked a reservation and the cluster's accounted capacity drifted.
func TestFailoverConservesReservedMem(t *testing.T) {
	const mem = 1 << 30
	r := twoNodeRoot(t, 8<<30, 8<<30, WithHeartbeatTimeout(time.Second))
	sla := SLA{AppName: "app", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{MemBytes: mem, Machines: []string{"A"}},
	}}}
	if _, err := r.Deploy(sla); err != nil {
		t.Fatal(err)
	}
	if res := r.ClusterResources("edge"); res.ReservedMem != mem || res.Instances != 1 {
		t.Fatalf("after deploy: %+v", res)
	}
	// A goes silent; the pin must be widened or the migration has nowhere
	// to go — re-pin to both so failover to B is legal.
	r.mu.Lock()
	r.deployed["app"].sla.Microservices[0].Requirements.Machines = []string{"A", "B"}
	r.mu.Unlock()
	now := time.Unix(1000, 0)
	if err := r.Heartbeat("B", NodeStatus{LastHeartbeat: now}); err != nil {
		t.Fatal(err)
	}
	migrated := r.DetectFailures(now)
	if len(migrated) != 1 || migrated[0].Node != "B" {
		t.Fatalf("migrated = %+v", migrated)
	}
	res := r.ClusterResources("edge")
	if res.ReservedMem != mem {
		t.Errorf("reserved mem after failover = %d, want %d (conserved)", res.ReservedMem, mem)
	}
	if res.Instances != 1 {
		t.Errorf("instances after failover = %d, want 1", res.Instances)
	}
}

// TestFailoverCannotOvercommit drives repeated migrations at a target
// too small for all of them: without the reservation commit, memory
// feasibility never sees earlier migrations and the node overcommits.
func TestFailoverCannotOvercommit(t *testing.T) {
	const mem = 1 << 30
	// A fits all three services; B fits exactly one.
	r := twoNodeRoot(t, 4<<30, 1<<30, WithHeartbeatTimeout(time.Second))
	sla := SLA{AppName: "app", Microservices: []ServiceSLA{
		{Name: "s1", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: mem, Machines: []string{"A", "B"}}},
		{Name: "s2", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: mem, Machines: []string{"A", "B"}}},
		{Name: "s3", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: mem, Machines: []string{"A", "B"}}},
	}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances {
		if inst.Node != "A" {
			t.Fatalf("%s deployed on %s, want A (pin order)", inst.Key(), inst.Node)
		}
	}
	now := time.Unix(1000, 0)
	if err := r.Heartbeat("B", NodeStatus{LastHeartbeat: now}); err != nil {
		t.Fatal(err)
	}
	migrated := r.DetectFailures(now)
	if len(migrated) != 1 {
		t.Fatalf("migrated %d services onto a node with room for 1", len(migrated))
	}
	res := r.ClusterResources("edge")
	if res.ReservedMem != mem {
		t.Errorf("reserved mem = %d, want %d (B must not overcommit)", res.ReservedMem, mem)
	}
	d2, err := r.Deployment("app")
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for _, inst := range d2.Instances {
		if inst.State == StateFailed {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("failed instances = %d, want 2 (no capacity on B)", failed)
	}
}

// TestUndeployAfterFailedMigration guards the double-release: a failed
// migration already gave back the dead node's reservation, so Undeploy
// releasing it again would drive the books negative and hand phantom
// capacity to the next deployment.
func TestUndeployAfterFailedMigration(t *testing.T) {
	const mem = 1 << 30
	r := twoNodeRoot(t, 4<<30, 1<<30, WithHeartbeatTimeout(time.Second))
	sla := SLA{AppName: "app", Microservices: []ServiceSLA{
		{Name: "s1", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: mem, Machines: []string{"A", "B"}}},
		{Name: "s2", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: mem, Machines: []string{"A", "B"}}},
	}}
	if _, err := r.Deploy(sla); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	if err := r.Heartbeat("B", NodeStatus{LastHeartbeat: now}); err != nil {
		t.Fatal(err)
	}
	if migrated := r.DetectFailures(now); len(migrated) != 1 {
		t.Fatalf("migrated = %d, want 1", len(migrated))
	}
	if err := r.Undeploy("app"); err != nil {
		t.Fatal(err)
	}
	res := r.ClusterResources("edge")
	if res.ReservedMem != 0 || res.Instances != 0 {
		t.Errorf("after undeploy: reserved=%d instances=%d, want 0/0", res.ReservedMem, res.Instances)
	}
}

// TestPlaceDoesNotMutateCandidates pins the Scheduler contract: Place is
// pure and the Root alone commits reservations.
func TestPlaceDoesNotMutateCandidates(t *testing.T) {
	mkNodes := func() []*node {
		return []*node{
			{info: NodeInfo{Name: "A", Cluster: "edge", CPUCores: 8, MemBytes: 4 << 30}, alive: true},
			{info: NodeInfo{Name: "B", Cluster: "edge", CPUCores: 8, MemBytes: 8 << 30}, alive: true},
		}
	}
	svc := ServiceSLA{Name: "svc", Image: "x", Replicas: 3,
		Requirements: Requirements{MemBytes: 1 << 30}}
	for _, sched := range []Scheduler{SpreadScheduler{}, BestFitScheduler{}} {
		nodes := mkNodes()
		first, err := sched.Place(svc, nodes)
		if err != nil {
			t.Fatalf("%T: %v", sched, err)
		}
		for _, n := range nodes {
			if n.reservedMem != 0 || n.instances != 0 {
				t.Errorf("%T mutated candidate %s: reserved=%d instances=%d",
					sched, n.info.Name, n.reservedMem, n.instances)
			}
		}
		// Purity implies the same call repeats identically.
		second, err := sched.Place(svc, nodes)
		if err != nil {
			t.Fatalf("%T second call: %v", sched, err)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Errorf("%T is not deterministic across identical calls", sched)
			}
		}
	}
}

// TestPlaceInPassMemoryAccounting verifies that a pure Place still
// refuses to stack more replicas onto a node than its memory allows
// within one call.
func TestPlaceInPassMemoryAccounting(t *testing.T) {
	nodes := []*node{
		{info: NodeInfo{Name: "A", Cluster: "edge", CPUCores: 8, MemBytes: 2 << 30}, alive: true},
	}
	svc := ServiceSLA{Name: "svc", Image: "x", Replicas: 3,
		Requirements: Requirements{MemBytes: 1 << 30}}
	for _, sched := range []Scheduler{SpreadScheduler{}, BestFitScheduler{}} {
		if _, err := sched.Place(svc, nodes); err == nil {
			t.Errorf("%T placed 3 GiB of replicas onto a 2 GiB node", sched)
		}
	}
}
