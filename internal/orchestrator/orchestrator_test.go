package orchestrator

import (
	"errors"
	"testing"
	"time"
)

func testbedNodes() []NodeInfo {
	return []NodeInfo{
		{Name: "E1", Cluster: "edge", CPUCores: 16, GPUs: 2, GPUArch: "geforce-rtx", MemBytes: 128 << 30},
		{Name: "E2", Cluster: "edge", CPUCores: 64, GPUs: 2, GPUArch: "ampere", MemBytes: 264 << 30},
		{Name: "cloud", Cluster: "cloud", CPUCores: 4, GPUs: 1, GPUArch: "tesla", MemBytes: 64 << 30},
	}
}

func newTestRoot(t *testing.T, opts ...Option) *Root {
	t.Helper()
	r := NewRoot(opts...)
	for _, n := range testbedNodes() {
		if err := r.RegisterNode(n, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func scatterSLA() SLA {
	gpuArchs := []string{"geforce-rtx", "ampere", "tesla"}
	return SLA{
		AppName: "scatter",
		Microservices: []ServiceSLA{
			{Name: "primary", Image: "scatter/primary", Replicas: 1,
				Requirements: Requirements{MemBytes: 400 << 20}},
			{Name: "sift", Image: "scatter/sift", Replicas: 1,
				Requirements: Requirements{MemBytes: 1200 << 20, NeedsGPU: true, GPUArchIn: gpuArchs}},
			{Name: "encoding", Image: "scatter/encoding", Replicas: 1,
				Requirements: Requirements{MemBytes: 800 << 20, NeedsGPU: true, GPUArchIn: gpuArchs}},
			{Name: "lsh", Image: "scatter/lsh", Replicas: 1,
				Requirements: Requirements{MemBytes: 600 << 20, NeedsGPU: true, GPUArchIn: gpuArchs}},
			{Name: "matching", Image: "scatter/matching", Replicas: 1,
				Requirements: Requirements{MemBytes: 1000 << 20, NeedsGPU: true, GPUArchIn: gpuArchs}},
		},
	}
}

func TestRegisterNodeValidation(t *testing.T) {
	r := NewRoot()
	if err := r.RegisterNode(NodeInfo{}, time.Now()); err == nil {
		t.Error("invalid node registered")
	}
	good := testbedNodes()[0]
	if err := r.RegisterNode(good, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterNode(good, time.Now()); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate register err = %v", err)
	}
}

func TestClustersAndNodes(t *testing.T) {
	r := newTestRoot(t)
	cs := r.Clusters()
	if len(cs) != 2 || cs[0] != "cloud" || cs[1] != "edge" {
		t.Errorf("clusters = %v", cs)
	}
	ns := r.Nodes()
	if len(ns) != 3 {
		t.Errorf("nodes = %v", ns)
	}
}

func TestDeployPinnedPlacement(t *testing.T) {
	r := newTestRoot(t)
	sla := scatterSLA()
	// Pin the C12 configuration: primary+sift on E1, rest on E2.
	pins := []string{"E1", "E1", "E2", "E2", "E2"}
	for i := range sla.Microservices {
		sla.Microservices[i].Requirements.Machines = []string{pins[i]}
	}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Instances) != 5 {
		t.Fatalf("instances = %d", len(d.Instances))
	}
	for i, svc := range []string{"primary", "sift", "encoding", "lsh", "matching"} {
		insts := d.InstancesOf(svc)
		if len(insts) != 1 || insts[0].Node != pins[i] {
			t.Errorf("%s placed on %+v, want %s", svc, insts, pins[i])
		}
	}
}

func TestDeployGPUConstraints(t *testing.T) {
	r := newTestRoot(t)
	sla := SLA{AppName: "gpu-only", Microservices: []ServiceSLA{{
		Name: "sift", Image: "x", Replicas: 1,
		Requirements: Requirements{NeedsGPU: true, GPUArchIn: []string{"ampere"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Node != "E2" {
		t.Errorf("ampere-constrained service on %s, want E2", d.Instances[0].Node)
	}
	// An architecture nobody has is unschedulable.
	bad := SLA{AppName: "nope", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{NeedsGPU: true, GPUArchIn: []string{"hopper"}},
	}}}
	if _, err := r.Deploy(bad); !errors.Is(err, ErrUnschedulable) {
		t.Errorf("impossible arch err = %v", err)
	}
}

func TestDeployMemoryConstraint(t *testing.T) {
	r := newTestRoot(t)
	big := SLA{AppName: "big", Microservices: []ServiceSLA{{
		Name: "hog", Image: "x", Replicas: 1,
		Requirements: Requirements{MemBytes: 1 << 40}, // 1 TiB
	}}}
	if _, err := r.Deploy(big); !errors.Is(err, ErrUnschedulable) {
		t.Errorf("oversized memory err = %v", err)
	}
}

func TestDeployReplicasSpread(t *testing.T) {
	r := newTestRoot(t)
	sla := SLA{AppName: "spread", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 2,
		Requirements: Requirements{NeedsGPU: true, Clusters: []string{"edge"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, in := range d.Instances {
		nodes[in.Node] = true
	}
	if len(nodes) != 2 {
		t.Errorf("2 replicas on %v, want spread across E1+E2", nodes)
	}
}

func TestDeployPinnedReplicaOrder(t *testing.T) {
	r := newTestRoot(t)
	sla := SLA{AppName: "pinned", Microservices: []ServiceSLA{{
		Name: "sift", Image: "x", Replicas: 2,
		Requirements: Requirements{Machines: []string{"E2", "E1"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	insts := d.InstancesOf("sift")
	if insts[0].Node != "E2" || insts[1].Node != "E1" {
		t.Errorf("pinned replica order = %s,%s want E2,E1", insts[0].Node, insts[1].Node)
	}
}

func TestDeployDuplicateApp(t *testing.T) {
	r := newTestRoot(t)
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy(scatterSLA()); !errors.Is(err, ErrDuplicateApp) {
		t.Errorf("duplicate deploy err = %v", err)
	}
}

func TestDeployAllOrNothing(t *testing.T) {
	r := newTestRoot(t)
	sla := scatterSLA()
	sla.Microservices[4].Requirements.GPUArchIn = []string{"hopper"} // unsatisfiable
	if _, err := r.Deploy(sla); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v", err)
	}
	// Failed deploy must leave no reservations: the full SLA must still fit.
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Errorf("redeploy after failed attempt: %v", err)
	}
}

func TestUndeployReleasesResources(t *testing.T) {
	var scheduled, removed []Instance
	r := newTestRoot(t, WithHooks(Hooks{
		OnSchedule: func(i Instance) { scheduled = append(scheduled, i) },
		OnRemove:   func(i Instance) { removed = append(removed, i) },
	}))
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	if len(scheduled) != 5 {
		t.Errorf("OnSchedule fired %d times", len(scheduled))
	}
	if err := r.Undeploy("scatter"); err != nil {
		t.Fatal(err)
	}
	if len(removed) != 5 {
		t.Errorf("OnRemove fired %d times", len(removed))
	}
	if err := r.Undeploy("scatter"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("double undeploy err = %v", err)
	}
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Errorf("redeploy after undeploy: %v", err)
	}
}

func TestHeartbeatAndStatus(t *testing.T) {
	r := newTestRoot(t)
	st := NodeStatus{CPUUtil: 0.4, GPUUtil: 0.2, MemUsed: 1 << 30, LastHeartbeat: time.Unix(100, 0)}
	if err := r.Heartbeat("E1", st); err != nil {
		t.Fatal(err)
	}
	got, err := r.Status("E1")
	if err != nil {
		t.Fatal(err)
	}
	if got.CPUUtil != 0.4 || got.MemUsed != 1<<30 {
		t.Errorf("status = %+v", got)
	}
	if err := r.Heartbeat("ghost", st); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node heartbeat err = %v", err)
	}
}

func TestFailureRedeployment(t *testing.T) {
	var removed, scheduled []Instance
	r := newTestRoot(t, WithHooks(Hooks{
		OnSchedule: func(i Instance) { scheduled = append(scheduled, i) },
		OnRemove:   func(i Instance) { removed = append(removed, i) },
	}), WithHeartbeatTimeout(time.Second))
	sla := scatterSLA()
	// Constrain everything to the edge cluster; pin sift to E1 initially.
	for i := range sla.Microservices {
		sla.Microservices[i].Requirements.Clusters = []string{"edge"}
	}
	sla.Microservices[1].Requirements.Machines = nil
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	scheduled = scheduled[:0]

	// Heartbeat E2 and cloud recently; E1 goes silent.
	now := time.Unix(1000, 0)
	for _, n := range []string{"E2", "cloud"} {
		if err := r.Heartbeat(n, NodeStatus{LastHeartbeat: now}); err != nil {
			t.Fatal(err)
		}
	}
	// Detect within E2/cloud's heartbeat window but far past E1's last
	// report (registration at t=0).
	migrated := r.DetectFailures(now.Add(500 * time.Millisecond))
	var onE1 int
	for _, inst := range d.Instances {
		if inst.Node == "E1" {
			onE1++
		}
	}
	if onE1 == 0 {
		t.Skip("nothing was placed on E1")
	}
	if len(migrated) != onE1 {
		t.Fatalf("migrated %d instances, want %d (those on E1)", len(migrated), onE1)
	}
	for _, inst := range migrated {
		if inst.Node == "E1" {
			t.Errorf("instance %s migrated onto the dead node", inst.Key())
		}
		if inst.State != StateRunning {
			t.Errorf("migrated instance state = %s", inst.State)
		}
	}
	if len(removed) != onE1 || len(scheduled) != onE1 {
		t.Errorf("hooks: removed=%d scheduled=%d want %d", len(removed), len(scheduled), onE1)
	}
	// Deployment view reflects the migration.
	d2, err := r.Deployment("scatter")
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d2.Instances {
		if inst.Node == "E1" {
			t.Errorf("deployment still shows %s on dead E1", inst.Key())
		}
	}
}

func TestDetectFailuresNoDeadNodes(t *testing.T) {
	r := newTestRoot(t, WithHeartbeatTimeout(time.Hour))
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	if migrated := r.DetectFailures(time.Unix(10, 0)); migrated != nil {
		t.Errorf("migrated = %v with healthy nodes", migrated)
	}
}

func TestBalancerRoundRobin(t *testing.T) {
	r := newTestRoot(t)
	sla := SLA{AppName: "app", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 3,
		Requirements: Requirements{},
	}}}
	if _, err := r.Deploy(sla); err != nil {
		t.Fatal(err)
	}
	b, err := r.Balancer("app", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("balancer len = %d", b.Len())
	}
	first := b.Next()
	second := b.Next()
	third := b.Next()
	fourth := b.Next()
	if first.Replica == second.Replica || first.Replica != fourth.Replica {
		t.Errorf("rotation broken: %d %d %d %d", first.Replica, second.Replica, third.Replica, fourth.Replica)
	}
	// Balancer is cached: rotation state persists.
	b2, err := r.Balancer("app", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Next().Replica != second.Replica {
		t.Error("balancer state not shared across lookups")
	}
	if _, err := r.Balancer("app", "ghost"); err == nil {
		t.Error("balancer for unknown service succeeded")
	}
	if _, err := r.Balancer("ghost", "svc"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("balancer for unknown app err = %v", err)
	}
}

func TestParseSLA(t *testing.T) {
	doc := []byte(`{
		"app_name": "scatter",
		"microservices": [
			{"microservice_name": "primary", "image": "scatter/primary", "replicas": 1,
			 "requirements": {"mem_bytes": 1024}},
			{"microservice_name": "sift", "image": "scatter/sift", "replicas": 2,
			 "requirements": {"mem_bytes": 2048, "needs_gpu": true, "gpu_arch_in": ["ampere"]}}
		]
	}`)
	sla, err := ParseSLA(doc)
	if err != nil {
		t.Fatal(err)
	}
	if sla.AppName != "scatter" || len(sla.Microservices) != 2 {
		t.Errorf("parsed = %+v", sla)
	}
	if !sla.Microservices[1].Requirements.NeedsGPU {
		t.Error("needs_gpu lost in parsing")
	}
	if _, err := ParseSLA([]byte(`{"app_name": ""}`)); err == nil {
		t.Error("invalid SLA parsed")
	}
	if _, err := ParseSLA([]byte(`not json`)); err == nil {
		t.Error("garbage parsed")
	}
}

func TestSLAValidation(t *testing.T) {
	bad := []SLA{
		{},
		{AppName: "x"},
		{AppName: "x", Microservices: []ServiceSLA{{Name: "", Replicas: 1}}},
		{AppName: "x", Microservices: []ServiceSLA{{Name: "a", Replicas: 0}}},
		{AppName: "x", Microservices: []ServiceSLA{{Name: "a", Replicas: 1}, {Name: "a", Replicas: 1}}},
	}
	for i, sla := range bad {
		if err := sla.Validate(); err == nil {
			t.Errorf("SLA %d validated: %+v", i, sla)
		}
	}
}

func TestInstanceKey(t *testing.T) {
	in := Instance{App: "a", Service: "s", Replica: 2}
	if in.Key() != "a/s/2" {
		t.Errorf("key = %s", in.Key())
	}
}
