package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/obs/routestats"
)

// Hooks notify the runtime about instance lifecycle transitions so it can
// actually start/stop workers (node agents in real deployments, simulated
// instances in the testbed). Hooks may be nil.
type Hooks struct {
	// OnSchedule fires when an instance is placed on a node.
	OnSchedule func(Instance)
	// OnRemove fires when an instance is torn down (undeploy or node
	// failure).
	OnRemove func(Instance)
}

// Root is the root orchestrator: the top of the Oakestra hierarchy. It is
// safe for concurrent use.
type Root struct {
	mu        sync.Mutex
	clusters  map[string]map[string]*node // cluster -> node name -> node
	nodes     map[string]*node
	deployed  map[string]*appState // app -> state
	scheduler Scheduler
	hooks     Hooks
	// HeartbeatTimeout marks nodes dead when exceeded (default 3 s).
	heartbeatTimeout time.Duration
	// admissions holds the admission verdicts the control loop pushes to
	// sidecars on heartbeat responses (service -> verdict).
	admissions map[string]ServiceAdmission
}

type appState struct {
	sla       SLA
	instances map[string]*Instance // key -> instance
	balancers map[string]*RoundRobin
}

// Option configures a Root.
type Option func(*Root)

// WithScheduler overrides the default SpreadScheduler.
func WithScheduler(s Scheduler) Option { return func(r *Root) { r.scheduler = s } }

// WithHooks installs lifecycle hooks.
func WithHooks(h Hooks) Option { return func(r *Root) { r.hooks = h } }

// WithHeartbeatTimeout overrides the failure-detection window.
func WithHeartbeatTimeout(d time.Duration) Option {
	return func(r *Root) { r.heartbeatTimeout = d }
}

// NewRoot creates a root orchestrator.
func NewRoot(opts ...Option) *Root {
	r := &Root{
		clusters:         make(map[string]map[string]*node),
		nodes:            make(map[string]*node),
		deployed:         make(map[string]*appState),
		scheduler:        SpreadScheduler{},
		heartbeatTimeout: 3 * time.Second,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Errors returned by Root operations.
var (
	ErrDuplicateNode = errors.New("orchestrator: duplicate node")
	ErrUnknownNode   = errors.New("orchestrator: unknown node")
	ErrDuplicateApp  = errors.New("orchestrator: app already deployed")
	ErrUnknownApp    = errors.New("orchestrator: unknown app")
)

// RegisterNode adds a worker node under its cluster orchestrator,
// creating the cluster on first use (clusters in Oakestra register with
// the root dynamically).
func (r *Root) RegisterNode(info NodeInfo, now time.Time) error {
	if err := info.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[info.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, info.Name)
	}
	n := &node{info: info, alive: true, status: NodeStatus{LastHeartbeat: now}}
	r.nodes[info.Name] = n
	cl, ok := r.clusters[info.Cluster]
	if !ok {
		cl = make(map[string]*node)
		r.clusters[info.Cluster] = cl
	}
	cl[info.Name] = n
	return nil
}

// Clusters returns the cluster names, sorted.
func (r *Root) Clusters() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clusters))
	for c := range r.clusters {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Nodes returns the registered node infos, sorted by name.
func (r *Root) Nodes() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeInfo, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// candidatesLocked returns scheduling candidates in deterministic order.
func (r *Root) candidatesLocked() []*node {
	names := make([]string, 0, len(r.nodes))
	for name := range r.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*node, 0, len(names))
	for _, name := range names {
		out = append(out, r.nodes[name])
	}
	return out
}

// Deploy schedules every microservice of the SLA, fires OnSchedule hooks,
// and returns the deployment. Scheduling is all-or-nothing: on failure no
// instance is retained.
func (r *Root) Deploy(sla SLA) (*Deployment, error) {
	if err := sla.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, ok := r.deployed[sla.AppName]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDuplicateApp, sla.AppName)
	}
	candidates := r.candidatesLocked()
	state := &appState{
		sla:       sla,
		instances: make(map[string]*Instance),
		balancers: make(map[string]*RoundRobin),
	}
	var placed []Instance
	var reservations []func() // rollbacks
	fail := func(err error) (*Deployment, error) {
		for _, undo := range reservations {
			undo()
		}
		r.mu.Unlock()
		return nil, err
	}
	for _, svc := range sla.Microservices {
		nodes, err := r.scheduler.Place(svc, candidates)
		if err != nil {
			return fail(err)
		}
		if len(nodes) != svc.Replicas {
			return fail(fmt.Errorf("orchestrator: scheduler returned %d placements for %d replicas of %s",
				len(nodes), svc.Replicas, svc.Name))
		}
		for replica, n := range nodes {
			// The Root commits all bookkeeping; Place is pure.
			mem := svc.Requirements.MemBytes
			n.instances++
			n.reservedMem += mem
			n := n
			reservations = append(reservations, func() {
				n.instances--
				n.reservedMem -= mem
			})
			inst := Instance{
				App:     sla.AppName,
				Service: svc.Name,
				Replica: replica,
				Shard:   svc.ShardOf(replica),
				Node:    n.info.Name,
				State:   StateRunning,
			}
			placed = append(placed, inst)
		}
	}
	for i := range placed {
		inst := placed[i]
		state.instances[inst.Key()] = &placed[i]
	}
	r.deployed[sla.AppName] = state
	r.mu.Unlock()

	if r.hooks.OnSchedule != nil {
		for _, inst := range placed {
			r.hooks.OnSchedule(inst)
		}
	}
	return &Deployment{App: sla.AppName, Instances: placed}, nil
}

// Undeploy tears down an application, firing OnRemove for each instance.
func (r *Root) Undeploy(app string) error {
	r.mu.Lock()
	state, ok := r.deployed[app]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	delete(r.deployed, app)
	var removed []Instance
	for _, inst := range state.instances {
		removed = append(removed, *inst)
		if inst.State == StateFailed {
			// A failed migration already released the dead node's
			// reservation in DetectFailures and never acquired a new one;
			// releasing again would leak capacity to other apps.
			continue
		}
		if n, ok := r.nodes[inst.Node]; ok {
			n.instances--
			n.reservedMem -= r.memOfLocked(state.sla, inst.Service)
		}
	}
	r.mu.Unlock()
	if r.hooks.OnRemove != nil {
		sort.Slice(removed, func(i, j int) bool { return removed[i].Key() < removed[j].Key() })
		for _, inst := range removed {
			r.hooks.OnRemove(inst)
		}
	}
	return nil
}

func (r *Root) memOfLocked(sla SLA, service string) int64 {
	for _, ms := range sla.Microservices {
		if ms.Name == service {
			return ms.Requirements.MemBytes
		}
	}
	return 0
}

// Heartbeat ingests a node's telemetry report.
func (r *Root) Heartbeat(nodeName string, status NodeStatus) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[nodeName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	n.status = status
	n.alive = true
	return nil
}

// Status returns the last known hardware telemetry of a node.
func (r *Root) Status(nodeName string) (NodeStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[nodeName]
	if !ok {
		return NodeStatus{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	return n.status, nil
}

// AppTelemetry aggregates the application digests from the latest
// heartbeats of all live nodes into one per-service view: counters are
// summed, drop ratios recomputed from the sums, queue depths summed, and
// p95 taken as the worst replica (the replica a QoS policy must relieve).
// Per-replica route windows (NodeStatus.Routes) merge across observing
// nodes into ServiceTelemetry.Replicas — outcome counters sum, latency
// and state take the worst report, weight the most pessimistic — so the
// root can tell one sick replica from a sick service. Services are
// returned sorted by name. Nodes that only report hardware telemetry
// contribute nothing — the pre-extension status quo.
func (r *Root) AppTelemetry() []ServiceTelemetry {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := make(map[string]*ServiceTelemetry)
	service := func(name string) *ServiceTelemetry {
		t, ok := agg[name]
		if !ok {
			t = &ServiceTelemetry{Service: name}
			agg[name] = t
		}
		return t
	}
	type replicaKey struct{ service, replica string }
	routes := make(map[replicaKey]*ReplicaTelemetry)
	for _, n := range r.nodes {
		if !n.alive {
			continue
		}
		for _, st := range n.status.Services {
			t := service(st.Service)
			t.Arrived += st.Arrived
			t.Processed += st.Processed
			t.Dropped += st.Dropped
			t.AdmissionDrops += st.AdmissionDrops
			t.QueueLen += st.QueueLen
			if st.P95Micros > t.P95Micros {
				t.P95Micros = st.P95Micros
			}
			if st.P99Micros > t.P99Micros {
				t.P99Micros = st.P99Micros
			}
		}
		for _, rt := range n.status.Routes {
			k := replicaKey{rt.Service, rt.Replica}
			m, ok := routes[k]
			if !ok {
				m = &ReplicaTelemetry{Service: rt.Service, Replica: rt.Replica,
					State: rt.State, Weight: rt.Weight}
				routes[k] = m
			} else {
				if routestats.ParseState(rt.State).Rank() > routestats.ParseState(m.State).Rank() {
					m.State = rt.State
				}
				if rt.Weight < m.Weight {
					m.Weight = rt.Weight
				}
			}
			m.Sent += rt.Sent
			m.Acked += rt.Acked
			m.Lost += rt.Lost
			m.SendErrors += rt.SendErrors
			if rt.LatencyMicros > m.LatencyMicros {
				m.LatencyMicros = rt.LatencyMicros
			}
			m.Observers++
		}
	}
	for _, m := range routes {
		if m.Sent > 0 {
			m.LossRatio = float64(m.Lost+m.SendErrors) / float64(m.Sent)
		}
		t := service(m.Service)
		t.Replicas = append(t.Replicas, *m)
	}
	out := make([]ServiceTelemetry, 0, len(agg))
	for _, t := range agg {
		if t.Arrived > 0 {
			t.DropRatio = float64(t.Dropped) / float64(t.Arrived)
		}
		sort.Slice(t.Replicas, func(i, j int) bool {
			return t.Replicas[i].Replica < t.Replicas[j].Replica
		})
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// NodeCounts reports how many registered nodes are currently considered
// alive and dead.
func (r *Root) NodeCounts() (alive, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n.alive {
			alive++
		} else {
			dead++
		}
	}
	return alive, dead
}

// Deployment returns the current instances of an app.
func (r *Root) Deployment(app string) (*Deployment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	state, ok := r.deployed[app]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	d := &Deployment{App: app}
	for _, inst := range state.instances {
		d.Instances = append(d.Instances, *inst)
	}
	sort.Slice(d.Instances, func(i, j int) bool { return d.Instances[i].Key() < d.Instances[j].Key() })
	return d, nil
}

// DetectFailures marks nodes whose heartbeat is older than the timeout as
// dead and re-schedules their instances elsewhere (Oakestra's automatic
// service recovery). It returns the migrated instances (new placements).
func (r *Root) DetectFailures(now time.Time) []Instance {
	r.mu.Lock()
	var dead []*node
	for _, n := range r.nodes {
		if n.alive && now.Sub(n.status.LastHeartbeat) > r.heartbeatTimeout {
			n.alive = false
			dead = append(dead, n)
		}
	}
	if len(dead) == 0 {
		r.mu.Unlock()
		return nil
	}
	deadNames := make(map[string]bool, len(dead))
	for _, n := range dead {
		deadNames[n.info.Name] = true
	}
	type migration struct {
		old  Instance
		inst *Instance
		svc  ServiceSLA
	}
	var migrations []migration
	// Deterministic app order.
	apps := make([]string, 0, len(r.deployed))
	for app := range r.deployed {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		state := r.deployed[app]
		keys := make([]string, 0, len(state.instances))
		for k := range state.instances {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			inst := state.instances[k]
			if !deadNames[inst.Node] {
				continue
			}
			var svc ServiceSLA
			for _, ms := range state.sla.Microservices {
				if ms.Name == inst.Service {
					svc = ms
					break
				}
			}
			migrations = append(migrations, migration{old: *inst, inst: inst, svc: svc})
		}
	}
	candidates := r.candidatesLocked()
	var migrated []Instance
	var removedOld []Instance
	for _, m := range migrations {
		// Release the dead node's bookkeeping.
		if n, ok := r.nodes[m.old.Node]; ok {
			n.instances--
			n.reservedMem -= m.svc.Requirements.MemBytes
		}
		one := m.svc
		one.Replicas = 1
		nodes, err := r.scheduler.Place(one, candidates)
		if err != nil {
			m.inst.State = StateFailed
			continue
		}
		n := nodes[0]
		// Commit the full reservation on the target. Incrementing only the
		// instance count here (the old bug) made migrated services invisible
		// to memory feasibility, so repeated failovers could overcommit a
		// node far past its capacity.
		n.instances++
		n.reservedMem += m.svc.Requirements.MemBytes
		m.inst.Node = n.info.Name
		m.inst.State = StateRunning
		removedOld = append(removedOld, m.old)
		migrated = append(migrated, *m.inst)
	}
	r.mu.Unlock()
	if r.hooks.OnRemove != nil {
		for _, inst := range removedOld {
			r.hooks.OnRemove(inst)
		}
	}
	if r.hooks.OnSchedule != nil {
		for _, inst := range migrated {
			r.hooks.OnSchedule(inst)
		}
	}
	return migrated
}

// Balancer returns the round-robin semantic-address balancer for one
// microservice of a deployed app. Balancers are cached per service so
// rotation state persists across calls.
func (r *Root) Balancer(app, service string) (*RoundRobin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	state, ok := r.deployed[app]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	if b, ok := state.balancers[service]; ok {
		return b, nil
	}
	var insts []Instance
	for _, inst := range state.instances {
		if inst.Service == service {
			insts = append(insts, *inst)
		}
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("orchestrator: app %s has no service %s", app, service)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].Replica < insts[j].Replica })
	b := NewRoundRobin(insts)
	state.balancers[service] = b
	return b, nil
}

// RoundRobin rotates over a microservice's replicas — Oakestra's semantic
// addressing (a ServiceIP that balances across instances). Safe for
// concurrent use.
type RoundRobin struct {
	mu    sync.Mutex
	insts []Instance
	next  int
}

// NewRoundRobin builds a balancer over instances (order preserved).
func NewRoundRobin(insts []Instance) *RoundRobin {
	cp := append([]Instance(nil), insts...)
	return &RoundRobin{insts: cp}
}

// Next returns the next instance in rotation.
func (b *RoundRobin) Next() Instance {
	b.mu.Lock()
	defer b.mu.Unlock()
	inst := b.insts[b.next%len(b.insts)]
	b.next++
	return inst
}

// Len returns the number of balanced replicas.
func (b *RoundRobin) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.insts)
}
