package orchestrator

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func clientFixture(t *testing.T) (*Client, *Root) {
	t.Helper()
	root := NewRoot()
	srv := httptest.NewServer(NewAPIServer(root).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, time.Second), root
}

func TestClientRegisterAndNodes(t *testing.T) {
	c, _ := clientFixture(t)
	ctx := context.Background()
	for _, n := range testbedNodes() {
		if err := c.Register(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	nodes, err := c.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("nodes = %d", len(nodes))
	}
	// Duplicate registration surfaces the server error.
	err = c.Register(ctx, testbedNodes()[0])
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestClientDeployLifecycle(t *testing.T) {
	c, _ := clientFixture(t)
	ctx := context.Background()
	for _, n := range testbedNodes() {
		if err := c.Register(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Deploy(ctx, scatterSLA())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Instances) != 5 {
		t.Errorf("instances = %d", len(d.Instances))
	}
	got, err := c.GetDeployment(ctx, "scatter")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instances) != 5 {
		t.Errorf("fetched = %d", len(got.Instances))
	}
	if err := c.Undeploy(ctx, "scatter"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetDeployment(ctx, "scatter"); err == nil {
		t.Error("deployment survives undeploy")
	}
}

func TestClientHeartbeatLoop(t *testing.T) {
	c, root := clientFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var beats atomic.Int32
	err := c.StartHeartbeats(ctx, testbedNodes()[0], 20*time.Millisecond,
		func() NodeStatus {
			beats.Add(1)
			return NodeStatus{CPUUtil: 0.1}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for beats.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d beats", beats.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := root.Status("E1")
	if err != nil {
		t.Fatal(err)
	}
	if st.CPUUtil != 0.1 {
		t.Errorf("status = %+v", st)
	}
	cancel()
}

func TestClientConnectionError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", 200*time.Millisecond)
	if _, err := c.Nodes(context.Background()); err == nil {
		t.Error("call to closed port succeeded")
	}
}

func TestClientHeartbeatErrors(t *testing.T) {
	c, _ := clientFixture(t)
	ctx := context.Background()
	// Heartbeating an unregistered node surfaces 404.
	_, err := c.Heartbeat(ctx, "ghost", NodeStatus{})
	if err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
}
