package orchestrator

import (
	"testing"
	"time"
)

func fourNodeRoot(t *testing.T) *Root {
	t.Helper()
	r := NewRoot()
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		err := r.RegisterNode(NodeInfo{
			Name: name, Cluster: "edge", CPUCores: 8, MemBytes: 32 << 30,
		}, time.Unix(0, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func shardedSLA(replicas, shards, replication int) SLA {
	return SLA{AppName: "shards", Microservices: []ServiceSLA{{
		Name: "lsh", Image: "scatter/lsh", Replicas: replicas,
		Shards: shards, ShardReplication: replication,
		Requirements: Requirements{MemBytes: 1 << 30},
	}}}
}

func TestShardedSLAValidation(t *testing.T) {
	cases := []struct {
		name string
		sla  SLA
		ok   bool
	}{
		{"unsharded", shardedSLA(2, 0, 0), true},
		{"even", shardedSLA(8, 4, 2), true},
		{"replication inferred", shardedSLA(8, 4, 0), true},
		{"negative shards", shardedSLA(4, -1, 0), false},
		{"negative replication", shardedSLA(4, 2, -1), false},
		{"replication without shards", shardedSLA(4, 0, 2), false},
		{"uncovered shards", shardedSLA(3, 4, 0), false},
		{"uneven split", shardedSLA(6, 4, 0), false},
		{"replication mismatch", shardedSLA(8, 4, 3), false},
	}
	for _, c := range cases {
		if err := c.sla.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestDeployAssignsShards pins the replica→shard map (replica mod
// shards) and the anti-affinity property: no node hosts two replicas of
// the same shard while a shard-free node exists.
func TestDeployAssignsShards(t *testing.T) {
	r := fourNodeRoot(t)
	d, err := r.Deploy(shardedSLA(8, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	hosting := make(map[string]map[int]int) // node -> shard -> replicas
	for _, in := range d.InstancesOf("lsh") {
		if in.Shard != in.Replica%4 {
			t.Errorf("replica %d assigned shard %d, want %d", in.Replica, in.Shard, in.Replica%4)
		}
		if hosting[in.Node] == nil {
			hosting[in.Node] = make(map[int]int)
		}
		hosting[in.Node][in.Shard]++
	}
	// 8 replicas over 4 nodes: every node hosts 2, and with shard
	// anti-affinity the two must differ (same-shard co-location wastes
	// the replication).
	for node, shards := range hosting {
		for shard, n := range shards {
			if n > 1 {
				t.Errorf("node %s hosts %d replicas of shard %d", node, n, shard)
			}
		}
	}
	groups := d.ShardInstances("lsh")
	if len(groups) != 4 {
		t.Fatalf("ShardInstances groups = %d, want 4", len(groups))
	}
	for s, g := range groups {
		if len(g) != 2 {
			t.Errorf("shard %d has %d replicas, want 2", s, len(g))
		}
		for _, in := range g {
			if in.Shard != s {
				t.Errorf("shard group %d contains instance of shard %d", s, in.Shard)
			}
		}
	}
}

func TestScaleUpRotatesShards(t *testing.T) {
	r := fourNodeRoot(t)
	if _, err := r.Deploy(shardedSLA(4, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// The next replica index is 4 → shard 0: scale-out thickens shards
	// in rotation, never leaving a hole.
	inst, err := r.ScaleUp("shards", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Replica != 4 || inst.Shard != 0 {
		t.Fatalf("scaled-up instance %+v, want replica 4 shard 0", inst)
	}
}

func TestShardHealthTracksNodeDeath(t *testing.T) {
	r := fourNodeRoot(t)
	r.heartbeatTimeout = time.Second
	d, err := r.Deploy(shardedSLA(4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	health, err := r.ShardHealth("shards", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	if len(health) != 4 {
		t.Fatalf("health entries = %d, want 4", len(health))
	}
	for _, h := range health {
		if h.Replicas != 1 || h.Live != 1 {
			t.Fatalf("healthy deployment reports %+v", h)
		}
	}
	if un, _ := r.UncoveredShards("shards", "lsh"); len(un) != 0 {
		t.Fatalf("healthy deployment has uncovered shards %v", un)
	}

	// Let shard 2's node miss its heartbeat: failure detection must
	// migrate the replica with its shard identity intact, restoring
	// coverage.
	var victim Instance
	for _, in := range d.InstancesOf("lsh") {
		if in.Shard == 2 {
			victim = in
		}
	}
	now := time.Unix(10, 0)
	for _, n := range []string{"n0", "n1", "n2", "n3"} {
		if n == victim.Node {
			continue
		}
		if err := r.Heartbeat(n, NodeStatus{LastHeartbeat: now}); err != nil {
			t.Fatal(err)
		}
	}
	migrated := r.DetectFailures(now.Add(500 * time.Millisecond))
	// The dead node's replica migrates to a live node and keeps its
	// shard: coverage is restored, identity preserved.
	if len(migrated) != 1 || migrated[0].Shard != victim.Shard {
		t.Fatalf("migration lost shard identity: %+v (victim %+v)", migrated, victim)
	}
	if migrated[0].Node == victim.Node {
		t.Fatalf("migrated replica still on dead node %s", victim.Node)
	}
	health, err = r.ShardHealth("shards", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	if health[victim.Shard].Live != 1 {
		t.Fatalf("migrated shard %d not live: %+v", victim.Shard, health)
	}
}

func TestShardHealthUncovered(t *testing.T) {
	// One node only: all four shard replicas land on it; when it dies
	// there is nowhere to migrate, so every shard reads uncovered.
	r := NewRoot()
	if err := r.RegisterNode(NodeInfo{Name: "solo", Cluster: "edge", CPUCores: 8, MemBytes: 32 << 30}, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy(shardedSLA(4, 4, 1)); err != nil {
		t.Fatal(err)
	}
	r.DetectFailures(time.Unix(100, 0))
	un, err := r.UncoveredShards("shards", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	if len(un) != 4 {
		t.Fatalf("uncovered shards = %v, want all 4", un)
	}
}
