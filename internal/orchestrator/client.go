package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a root orchestrator's HTTP control plane — what node
// agents use to register and heartbeat, and operators use to deploy SLAs.
type Client struct {
	base string
	http *http.Client
	// onAdmission receives the admission verdicts from every successful
	// heartbeat response (SetAdmissionHandler).
	onAdmission func([]ServiceAdmission)
}

// NewClient creates a control-plane client for the given base URL (e.g.
// "http://orchestrator:8600").
func NewClient(baseURL string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{
		base: baseURL,
		http: &http.Client{Timeout: timeout},
	}
}

// apiErr decodes an error payload into a Go error.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e apiError
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("orchestrator: %s (%d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("orchestrator: status %d", resp.StatusCode)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("orchestrator: encode request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("orchestrator: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("orchestrator: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiErr(resp)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			if err == io.EOF {
				return nil // empty body: older server, nothing to decode
			}
			return fmt.Errorf("orchestrator: decode response: %w", err)
		}
	}
	return nil
}

// Register adds this node to the orchestrator.
func (c *Client) Register(ctx context.Context, info NodeInfo) error {
	return c.do(ctx, http.MethodPost, "/api/v1/nodes", info, nil)
}

// Heartbeat reports telemetry for a node and returns the control plane's
// downlink: the admission verdicts currently in force. An empty response
// (including one from an older server replying 204) means every service
// is admitted.
func (c *Client) Heartbeat(ctx context.Context, nodeName string, status NodeStatus) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/nodes/"+nodeName+"/heartbeat", status, &out)
	return out, err
}

// SetAdmissionHandler installs the callback that receives admission
// verdicts from every successful heartbeat response. It is called even
// with an empty list, so a cleared verdict set resets enforcement to
// admit. Install before StartHeartbeats.
func (c *Client) SetAdmissionHandler(fn func([]ServiceAdmission)) { c.onAdmission = fn }

// Nodes lists the registered nodes.
func (c *Client) Nodes(ctx context.Context) ([]NodeInfo, error) {
	var out []NodeInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/nodes", nil, &out)
	return out, err
}

// Deploy schedules an SLA and returns the placement.
func (c *Client) Deploy(ctx context.Context, sla SLA) (*Deployment, error) {
	var out Deployment
	if err := c.do(ctx, http.MethodPost, "/api/v1/apps", sla, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetDeployment fetches the current instances of an app.
func (c *Client) GetDeployment(ctx context.Context, app string) (*Deployment, error) {
	var out Deployment
	if err := c.do(ctx, http.MethodGet, "/api/v1/apps/"+app, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Undeploy tears an app down.
func (c *Client) Undeploy(ctx context.Context, app string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/apps/"+app, nil, nil)
}

// StartHeartbeats registers the node and sends telemetry on the interval
// until ctx is cancelled. status is sampled on every beat. Errors are
// delivered to onErr (which may be nil).
func (c *Client) StartHeartbeats(ctx context.Context, info NodeInfo, interval time.Duration,
	status func() NodeStatus, onErr func(error)) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if status == nil {
		status = func() NodeStatus { return NodeStatus{} }
	}
	if err := c.Register(ctx, info); err != nil {
		return err
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				st := status()
				if st.LastHeartbeat.IsZero() {
					st.LastHeartbeat = time.Now()
				}
				resp, err := c.Heartbeat(ctx, info.Name, st)
				if err != nil {
					if onErr != nil {
						onErr(err)
					}
					continue
				}
				if c.onAdmission != nil {
					c.onAdmission(resp.Admissions)
				}
			}
		}
	}()
	return nil
}
