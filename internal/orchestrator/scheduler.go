package orchestrator

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnschedulable is returned when no node satisfies a microservice's
// requirements.
var ErrUnschedulable = errors.New("orchestrator: unschedulable")

// node is the scheduler's internal view of a worker.
type node struct {
	info   NodeInfo
	status NodeStatus
	// reservedMem is the memory committed to scheduled instances (the
	// scheduler's bookkeeping, distinct from live telemetry).
	reservedMem int64
	// instances counts replicas scheduled here (for spreading).
	instances int
	alive     bool
}

// feasible reports whether the node satisfies the requirements, given
// extraMem bytes already tentatively placed on it earlier in the same
// scheduling pass. Place must not mutate candidates, so in-pass
// reservations travel beside the node, not on it.
func (n *node) feasible(r Requirements, extraMem int64) bool {
	if !n.alive {
		return false
	}
	if r.NeedsGPU && n.info.GPUs == 0 {
		return false
	}
	if len(r.GPUArchIn) > 0 {
		ok := false
		for _, arch := range r.GPUArchIn {
			if arch == n.info.GPUArch {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Clusters) > 0 {
		ok := false
		for _, c := range r.Clusters {
			if c == n.info.Cluster {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Machines) > 0 {
		ok := false
		for _, m := range r.Machines {
			if m == n.info.Name {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if n.reservedMem+extraMem+r.MemBytes > n.info.MemBytes {
		return false
	}
	return true
}

// Scheduler places microservice replicas onto nodes. Implementations must
// be deterministic for a given input, so experiment placements reproduce.
type Scheduler interface {
	// Place returns one node per replica (a node may repeat). It must not
	// mutate the candidates: the Root alone commits reservations
	// (instances, reserved memory) once a placement is accepted, so a
	// rejected or partially failed placement leaves no residue. Replicas
	// placed earlier in the same call must be tracked locally when judging
	// feasibility of later ones.
	Place(svc ServiceSLA, candidates []*node) ([]*node, error)
}

// SpreadScheduler is the default placement policy, mirroring Oakestra's
// resource-aware behaviour: filter infeasible nodes, then for each
// replica pick the feasible node with (a) the fewest scheduled instances
// and (b) the most free memory, preferring pinned machine order when the
// SLA pins machines. Replicas of one service spread across distinct nodes
// when possible.
type SpreadScheduler struct{}

// Place implements Scheduler.
func (SpreadScheduler) Place(svc ServiceSLA, candidates []*node) ([]*node, error) {
	r := svc.Requirements
	var out []*node
	// Track per-call placements locally so multiple replicas spread and
	// memory feasibility accounts for them — candidates stay unmutated.
	extra := make(map[*node]int)
	extraMem := make(map[*node]int64)
	// For sharded services, additionally track which shards each node
	// already hosts this call: co-locating two replicas of the same shard
	// wastes the replication (one node failure still kills the shard).
	sameShard := make(map[*node]map[int]int)
	for replica := 0; replica < svc.Replicas; replica++ {
		shard := svc.ShardOf(replica)
		var feasible []*node
		for _, n := range candidates {
			if n.feasible(r, extraMem[n]) {
				feasible = append(feasible, n)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("%w: %s replica %d (no feasible node)", ErrUnschedulable, svc.Name, replica)
		}
		pinRank := func(n *node) int {
			for i, m := range r.Machines {
				if n.info.Name == m {
					return i
				}
			}
			return len(r.Machines)
		}
		sort.SliceStable(feasible, func(i, j int) bool {
			a, b := feasible[i], feasible[j]
			// Pinned order dominates: the paper's configurations name
			// machines in priority order.
			if pa, pb := pinRank(a), pinRank(b); pa != pb {
				return pa < pb
			}
			// Shard anti-affinity dominates general spreading: a replica
			// prefers any node not yet hosting its shard.
			if svc.Shards > 1 {
				as, bs := sameShard[a][shard], sameShard[b][shard]
				if as != bs {
					return as < bs
				}
			}
			ai := a.instances + extra[a]
			bi := b.instances + extra[b]
			if ai != bi {
				return ai < bi
			}
			af := a.info.MemBytes - a.reservedMem - extraMem[a]
			bf := b.info.MemBytes - b.reservedMem - extraMem[b]
			if af != bf {
				return af > bf
			}
			return a.info.Name < b.info.Name
		})
		pick := feasible[0]
		// Spread replicas of this call across pinned machines round-robin
		// when multiple are pinned: replica k prefers pin k mod len(pins),
		// and when that pin is infeasible (full, dead, filtered) falls
		// through to the next pin in priority order, wrapping — not to
		// feasible[0], which would stack every displaced replica on the
		// first-ranked machine.
		if len(r.Machines) > 1 {
		pins:
			for off := 0; off < len(r.Machines); off++ {
				want := r.Machines[(replica+off)%len(r.Machines)]
				for _, n := range feasible {
					if n.info.Name == want {
						pick = n
						break pins
					}
				}
			}
		}
		extraMem[pick] += r.MemBytes
		extra[pick]++
		if svc.Shards > 1 {
			if sameShard[pick] == nil {
				sameShard[pick] = make(map[int]int)
			}
			sameShard[pick][shard]++
		}
		out = append(out, pick)
	}
	return out, nil
}
