package orchestrator

import (
	"fmt"
	"sort"
)

// BestFitScheduler packs replicas onto the fewest feasible nodes: each
// replica lands on the feasible node with the *least* free memory that
// still fits (classic best-fit decreasing flavour). Compared to the
// default SpreadScheduler it trades fault isolation for consolidation —
// the choice a resource-constrained edge operator might make, and a
// useful counterpoint in scheduler experiments.
type BestFitScheduler struct{}

// Place implements Scheduler.
func (BestFitScheduler) Place(svc ServiceSLA, candidates []*node) ([]*node, error) {
	r := svc.Requirements
	var out []*node
	// In-pass reservations stay local: Place must not mutate candidates.
	extraMem := make(map[*node]int64)
	for replica := 0; replica < svc.Replicas; replica++ {
		var feasible []*node
		for _, n := range candidates {
			if n.feasible(r, extraMem[n]) {
				feasible = append(feasible, n)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("%w: %s replica %d (no feasible node)", ErrUnschedulable, svc.Name, replica)
		}
		pinRank := func(n *node) int {
			for i, m := range r.Machines {
				if n.info.Name == m {
					return i
				}
			}
			return len(r.Machines)
		}
		sort.SliceStable(feasible, func(i, j int) bool {
			a, b := feasible[i], feasible[j]
			if pa, pb := pinRank(a), pinRank(b); pa != pb {
				return pa < pb
			}
			af := a.info.MemBytes - a.reservedMem - extraMem[a]
			bf := b.info.MemBytes - b.reservedMem - extraMem[b]
			if af != bf {
				return af < bf // tightest fit first
			}
			return a.info.Name < b.info.Name
		})
		pick := feasible[0]
		extraMem[pick] += r.MemBytes
		out = append(out, pick)
	}
	return out, nil
}

// ClusterResources summarizes a cluster's aggregate capacity and the
// scheduler's current reservations — the view a cluster orchestrator
// reports upward to the root in Oakestra's hierarchy.
type ClusterResources struct {
	Cluster     string `json:"cluster"`
	Nodes       int    `json:"nodes"`
	AliveNodes  int    `json:"alive_nodes"`
	CPUCores    int    `json:"cpu_cores"`
	GPUs        int    `json:"gpus"`
	MemBytes    int64  `json:"mem_bytes"`
	ReservedMem int64  `json:"reserved_mem"`
	Instances   int    `json:"instances"`
}

// ClusterResources returns the aggregate view of one cluster. Unknown
// clusters return a zero value with the given name.
func (r *Root) ClusterResources(cluster string) ClusterResources {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := ClusterResources{Cluster: cluster}
	for _, n := range r.clusters[cluster] {
		out.Nodes++
		if n.alive {
			out.AliveNodes++
		}
		out.CPUCores += n.info.CPUCores
		out.GPUs += n.info.GPUs
		out.MemBytes += n.info.MemBytes
		out.ReservedMem += n.reservedMem
		out.Instances += n.instances
	}
	return out
}
