package orchestrator

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestAppTelemetryAggregation(t *testing.T) {
	r := newTestRoot(t)
	now := time.Unix(100, 0)
	if err := r.Heartbeat("E1", NodeStatus{LastHeartbeat: now, Services: []ServiceTelemetry{
		{Service: "primary", Arrived: 100, Processed: 98, Dropped: 2, QueueLen: 1, P95Micros: 900},
		{Service: "sift", Arrived: 98, Processed: 60, Dropped: 38, QueueLen: 7, P95Micros: 42_000},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Heartbeat("E2", NodeStatus{LastHeartbeat: now, Services: []ServiceTelemetry{
		{Service: "sift", Arrived: 102, Processed: 90, Dropped: 12, QueueLen: 3, P95Micros: 30_000},
	}}); err != nil {
		t.Fatal(err)
	}
	// Hardware-only heartbeat contributes nothing.
	if err := r.Heartbeat("cloud", NodeStatus{LastHeartbeat: now, CPUUtil: 0.5}); err != nil {
		t.Fatal(err)
	}

	tel := r.AppTelemetry()
	if len(tel) != 2 {
		t.Fatalf("telemetry services = %d, want 2", len(tel))
	}
	if tel[0].Service != "primary" || tel[1].Service != "sift" {
		t.Fatalf("services not sorted: %+v", tel)
	}
	sift := tel[1]
	if sift.Arrived != 200 || sift.Processed != 150 || sift.Dropped != 50 {
		t.Errorf("sift counters not summed: %+v", sift)
	}
	if sift.DropRatio != 0.25 {
		t.Errorf("sift drop ratio = %g, want 0.25 recomputed from sums", sift.DropRatio)
	}
	if sift.QueueLen != 10 {
		t.Errorf("sift queue len = %d, want 10", sift.QueueLen)
	}
	if sift.P95Micros != 42_000 {
		t.Errorf("sift p95 = %d, want worst replica 42000", sift.P95Micros)
	}
}

func TestAppTelemetrySkipsDeadNodes(t *testing.T) {
	r := newTestRoot(t, WithHeartbeatTimeout(time.Second))
	now := time.Unix(100, 0)
	for _, n := range []string{"E1", "E2", "cloud"} {
		if err := r.Heartbeat(n, NodeStatus{LastHeartbeat: now, Services: []ServiceTelemetry{
			{Service: "sift", Arrived: 10, Dropped: 5},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	r.DetectFailures(now.Add(10 * time.Second)) // everyone times out
	if tel := r.AppTelemetry(); len(tel) != 0 {
		t.Errorf("dead nodes still contribute telemetry: %+v", tel)
	}
	alive, dead := r.NodeCounts()
	if alive != 0 || dead != 3 {
		t.Errorf("node counts = %d alive / %d dead, want 0/3", alive, dead)
	}
}

func TestAPITelemetryAndMetrics(t *testing.T) {
	srv, _ := apiFixture(t)
	for _, n := range testbedNodes() {
		if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes", n, nil); code != http.StatusCreated {
			t.Fatalf("register %s: %d", n.Name, code)
		}
	}
	status := NodeStatus{Services: []ServiceTelemetry{
		{Service: "sift", Arrived: 100, Processed: 75, Dropped: 25, DropRatio: 0.25, QueueLen: 4, P95Micros: 50_000},
	}}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", status, nil); code != http.StatusOK {
		t.Fatalf("heartbeat with services: %d", code)
	}

	var tel []ServiceTelemetry
	if code := doJSON(t, "GET", srv.URL+"/api/v1/telemetry", nil, &tel); code != http.StatusOK {
		t.Fatalf("telemetry: %d", code)
	}
	if len(tel) != 1 || tel[0].Service != "sift" || tel[0].DropRatio != 0.25 {
		t.Fatalf("telemetry = %+v", tel)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`scatter_orchestrator_nodes{state="alive"} 3`,
		`scatter_app_service_dropped_total{service="sift"} 25`,
		`scatter_app_service_drop_ratio{service="sift"} 0.25`,
		`scatter_app_service_latency_p95_seconds{service="sift"} 0.05`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
