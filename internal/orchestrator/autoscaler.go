package orchestrator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/wire"
)

// AutoscalerConfig parameterizes the live control loop.
type AutoscalerConfig struct {
	// App is the deployed application the loop manages. Required.
	App string
	// Period is the evaluation interval (default 2 s).
	Period time.Duration
	// Policy decides scaling from the windowed signal. Required.
	Policy appaware.Policy
	// MaxReplicas caps replicas per service (default 3).
	MaxReplicas int
	// MinReplicas floors scale-in (default 1).
	MinReplicas int
	// AdmissionEnabled escalates to admission control when scale-out is
	// capped or unschedulable.
	AdmissionEnabled bool
	// Admission tunes the escalation thresholds (defaults applied).
	Admission appaware.AdmissionPolicy
	// OnAdmission, when set, fires on every verdict transition — the
	// in-process downlink for deployments where the Deployer runs beside
	// the orchestrator (remote nodes get verdicts on heartbeat responses
	// instead).
	OnAdmission func(service string, state core.AdmitState, reason string)
}

// AutoscaleEvent is one applied control action: a replica added or
// retired, or an admission verdict transition (Admission true).
type AutoscaleEvent struct {
	At        time.Time       `json:"at"`
	Service   string          `json:"service"`
	Verb      string          `json:"verb"`
	Node      string          `json:"node,omitempty"`
	Reason    string          `json:"reason"`
	Admission bool            `json:"admission,omitempty"`
	Admit     core.AdmitState `json:"-"`
	AdmitStr  string          `json:"admit,omitempty"`
}

// Autoscaler is the orchestrator-side control loop that closes the
// paper's §6 feedback path: each period it windows the merged heartbeat
// telemetry into an appaware.Signal, lets the configured policy decide,
// and actuates through Root.ScaleUp/ScaleDown (which fire the Deployer
// hooks). When scale-out is exhausted it pushes admission verdicts to
// the sidecars via heartbeat responses. Safe for concurrent use; Tick is
// serialized internally.
type Autoscaler struct {
	root *Root
	cfg  AutoscalerConfig

	mu     sync.Mutex
	primed bool
	anchor time.Time

	lastArrived   [wire.NumSteps]uint64
	lastDropped   [wire.NumSteps]uint64
	lastAdmission [wire.NumSteps]uint64

	admit      [wire.NumSteps]core.AdmitState
	lastReason [wire.NumSteps]string

	evaluations uint64
	scaleUps    uint64
	scaleDowns  uint64
	escalations uint64
	relaxations uint64

	lastSignal appaware.Signal
	events     []AutoscaleEvent
}

// NewAutoscaler wires the live control loop. It panics on a missing app
// or policy — configuration errors in deployment construction.
func NewAutoscaler(root *Root, cfg AutoscalerConfig) *Autoscaler {
	if root == nil {
		panic("orchestrator: autoscaler without root")
	}
	if cfg.App == "" {
		panic("orchestrator: autoscaler without app")
	}
	if cfg.Policy == nil {
		panic("orchestrator: autoscaler without policy")
	}
	if cfg.Period <= 0 {
		cfg.Period = 2 * time.Second
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 3
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	return &Autoscaler{root: root, cfg: cfg}
}

// Run evaluates every Period until the context ends.
func (a *Autoscaler) Run(ctx context.Context) {
	t := time.NewTicker(a.cfg.Period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			a.Tick(now)
		}
	}
}

// Tick runs one control-loop evaluation at now. The first call only
// primes the counter window (the loop may attach to a long-running
// deployment whose cumulative totals are not one period's activity).
func (a *Autoscaler) Tick(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tel := a.root.AppTelemetry()
	dep, err := a.root.Deployment(a.cfg.App)
	if err != nil {
		return // app not deployed (yet)
	}
	sig := a.windowLocked(now, tel, dep)
	a.lastSignal = sig
	a.evaluations++
	if !a.primed {
		a.primed = true
		return
	}

	for _, d := range a.cfg.Policy.Decide(sig) {
		switch d.Verb {
		case appaware.VerbScaleUp:
			a.scaleUpLocked(now, sig, d)
		case appaware.VerbScaleDown:
			if sig.Services[d.Step].Replicas <= a.cfg.MinReplicas {
				continue
			}
			inst, err := a.root.ScaleDown(a.cfg.App, d.Step.String())
			if err != nil {
				continue
			}
			a.scaleDowns++
			a.events = append(a.events, AutoscaleEvent{
				At: now, Service: d.Step.String(), Verb: appaware.VerbScaleDown.String(),
				Node: inst.Node, Reason: d.Reason,
			})
		}
	}

	// Admission recovery: verdicts relax as the windowed distress ratio
	// falls, independent of what the policy decided this period.
	if a.cfg.AdmissionEnabled {
		for step := 0; step < wire.NumSteps; step++ {
			cur := a.admit[step]
			if cur == core.AdmitOK {
				continue
			}
			capped := sig.Services[step].Replicas >= a.cfg.MaxReplicas
			next := a.cfg.Admission.Next(cur, sig.Services[step], capped)
			if next != cur {
				a.setAdmitLocked(now, wire.Step(step), next, "windowed distress ratio recovered")
			}
		}
		a.publishAdmissionsLocked()
	}
}

// windowLocked assembles the windowed policy signal from the merged
// heartbeat telemetry and the live deployment.
func (a *Autoscaler) windowLocked(now time.Time, tel []ServiceTelemetry, dep *Deployment) appaware.Signal {
	if a.anchor.IsZero() {
		a.anchor = now
	}
	sig := appaware.Signal{Now: sim.Time(now.Sub(a.anchor))}
	for step := 0; step < wire.NumSteps; step++ {
		sig.Services[step].Step = wire.Step(step)
	}
	for _, t := range tel {
		step, err := wire.ParseStep(t.Service)
		if err != nil || int(step) >= wire.NumSteps {
			continue
		}
		i := int(step)
		dArr := appaware.WindowDelta(t.Arrived, a.lastArrived[i])
		dDrop := appaware.WindowDelta(t.Dropped, a.lastDropped[i])
		dAdm := appaware.WindowDelta(t.AdmissionDrops, a.lastAdmission[i])
		a.lastArrived[i] = t.Arrived
		a.lastDropped[i] = t.Dropped
		a.lastAdmission[i] = t.AdmissionDrops
		svc := appaware.ServiceSignal{
			Step:             step,
			Arrived:          dArr,
			Dropped:          dDrop,
			AdmissionDropped: dAdm,
			P95Micros:        t.P95Micros,
			P99Micros:        t.P99Micros,
			QueueLen:         t.QueueLen,
		}
		switch {
		case dArr > 0:
			svc.DropRatio = float64(dDrop) / float64(dArr)
		case dDrop > 0:
			// Drops with zero arrivals: backlog shed while nothing was
			// admitted — full distress, not perfect health.
			svc.DropRatio = 1
		}
		sig.Services[i] = svc
	}
	for _, inst := range dep.Instances {
		step, err := wire.ParseStep(inst.Service)
		if err != nil || int(step) >= wire.NumSteps || inst.State != StateRunning {
			continue
		}
		sig.Services[int(step)].Replicas++
	}
	// Node gauges are already instantaneous (no cumulative busy
	// integrals), so they pass through WindowMachines untouched.
	for _, info := range a.root.Nodes() {
		st, err := a.root.Status(info.Name)
		if err != nil {
			continue
		}
		sig.Machines = append(sig.Machines, metrics.MachineUsage{
			Machine:  info.Name,
			CPUUtil:  st.CPUUtil,
			GPUUtil:  st.GPUUtil,
			MemBytes: st.MemUsed,
		})
	}
	return sig
}

// scaleUpLocked applies one scale-out decision, escalating to admission
// control when the service is capped or unschedulable.
func (a *Autoscaler) scaleUpLocked(now time.Time, sig appaware.Signal, d appaware.Decision) {
	service := d.Step.String()
	if sig.Services[d.Step].Replicas >= a.cfg.MaxReplicas {
		a.escalateLocked(now, sig, d.Step, "replica cap reached: "+d.Reason)
		return
	}
	inst, err := a.root.ScaleUp(a.cfg.App, service)
	if err != nil {
		a.escalateLocked(now, sig, d.Step, fmt.Sprintf("unschedulable (%v): %s", err, d.Reason))
		return
	}
	a.scaleUps++
	a.events = append(a.events, AutoscaleEvent{
		At: now, Service: service, Verb: appaware.VerbScaleUp.String(),
		Node: inst.Node, Reason: d.Reason,
	})
}

// escalateLocked raises a service's admission verdict when scale-out
// cannot relieve it.
func (a *Autoscaler) escalateLocked(now time.Time, sig appaware.Signal, step wire.Step, reason string) {
	if !a.cfg.AdmissionEnabled {
		return
	}
	cur := a.admit[step]
	next := a.cfg.Admission.Next(cur, sig.Services[step], true)
	if next != cur {
		a.setAdmitLocked(now, step, next, reason)
		a.publishAdmissionsLocked()
	}
}

func (a *Autoscaler) setAdmitLocked(now time.Time, step wire.Step, next core.AdmitState, reason string) {
	prev := a.admit[step]
	a.admit[step] = next
	a.lastReason[step] = reason
	if next > prev {
		a.escalations++
	} else {
		a.relaxations++
	}
	a.events = append(a.events, AutoscaleEvent{
		At: now, Service: step.String(), Reason: reason,
		Admission: true, Admit: next, AdmitStr: next.String(),
	})
	if a.cfg.OnAdmission != nil {
		a.cfg.OnAdmission(step.String(), next, reason)
	}
}

// publishAdmissionsLocked pushes the full verdict set to the Root so the
// next heartbeat response carries it to every node.
func (a *Autoscaler) publishAdmissionsLocked() {
	var adm []ServiceAdmission
	for step := 0; step < wire.NumSteps; step++ {
		if a.admit[step] == core.AdmitOK {
			continue
		}
		adm = append(adm, ServiceAdmission{
			Service: wire.Step(step).String(),
			State:   a.admit[step].String(),
			Reason:  a.lastReason[step],
		})
	}
	a.root.SetAdmissions(adm)
}

// AdmitStateOf returns the verdict currently in force for a service.
func (a *Autoscaler) AdmitStateOf(step wire.Step) core.AdmitState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admit[step]
}

// Events returns the applied control actions so far.
func (a *Autoscaler) Events() []AutoscaleEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AutoscaleEvent(nil), a.events...)
}

// Status snapshots the control loop for /api/v1/autoscaler and the
// scatter_autoscale_* exposition.
func (a *Autoscaler) Status() obs.AutoscaleDigest {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := obs.AutoscaleDigest{
		Policy:      a.cfg.Policy.Name(),
		Evaluations: a.evaluations,
		ScaleUps:    a.scaleUps,
		ScaleDowns:  a.scaleDowns,
		Escalations: a.escalations,
		Relaxations: a.relaxations,
	}
	for step := 0; step < wire.NumSteps; step++ {
		svc := a.lastSignal.Services[step]
		if svc.Replicas == 0 && a.admit[step] == core.AdmitOK && svc.Arrived == 0 {
			continue // service not deployed / never seen
		}
		d.Services = append(d.Services, obs.AutoscaleServiceDigest{
			Service:    wire.Step(step).String(),
			Replicas:   svc.Replicas,
			DropRatio:  svc.DropRatio,
			P95Micros:  svc.P95Micros,
			Admit:      a.admit[step].String(),
			LastReason: a.lastReason[step],
		})
	}
	return d
}
