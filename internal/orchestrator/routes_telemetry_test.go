package orchestrator

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/obs/routestats"
)

func TestAppTelemetryReplicaMerge(t *testing.T) {
	r := newTestRoot(t)
	now := time.Unix(100, 0)
	// Two forwarders observe the same sift replicas; their windows
	// disagree — E1 saw s1 degraded and slow, E2 still saw it healthy.
	if err := r.Heartbeat("E1", NodeStatus{LastHeartbeat: now,
		Services: []ServiceTelemetry{{Service: "sift", Arrived: 50, Processed: 50}},
		Routes: []ReplicaTelemetry{
			{Service: "sift", Replica: "10.0.0.1:7001", State: "healthy", Weight: 0.9,
				LatencyMicros: 1000, Sent: 40, Acked: 40},
			{Service: "sift", Replica: "10.0.0.2:7001", State: "degraded", Weight: 0.2,
				LatencyMicros: 60_000, Sent: 40, Acked: 30, Lost: 8, SendErrors: 2},
		}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Heartbeat("E2", NodeStatus{LastHeartbeat: now,
		Routes: []ReplicaTelemetry{
			{Service: "sift", Replica: "10.0.0.2:7001", State: "healthy", Weight: 0.8,
				LatencyMicros: 2000, Sent: 60, Acked: 58, Lost: 2},
		}}); err != nil {
		t.Fatal(err)
	}

	tel := r.AppTelemetry()
	if len(tel) != 1 || tel[0].Service != "sift" {
		t.Fatalf("telemetry = %+v", tel)
	}
	reps := tel[0].Replicas
	if len(reps) != 2 {
		t.Fatalf("replicas = %+v, want 2", reps)
	}
	if reps[0].Replica != "10.0.0.1:7001" || reps[1].Replica != "10.0.0.2:7001" {
		t.Fatalf("replicas not sorted by address: %+v", reps)
	}
	sick := reps[1]
	if sick.Sent != 100 || sick.Acked != 88 || sick.Lost != 10 || sick.SendErrors != 2 {
		t.Errorf("sick counters not summed: %+v", sick)
	}
	if sick.State != "degraded" {
		t.Errorf("merged state = %q, want the worst report (degraded)", sick.State)
	}
	if sick.Weight != 0.2 {
		t.Errorf("merged weight = %g, want the most pessimistic 0.2", sick.Weight)
	}
	if sick.LatencyMicros != 60_000 {
		t.Errorf("merged latency = %d, want the worst 60000", sick.LatencyMicros)
	}
	if sick.LossRatio != 0.12 {
		t.Errorf("loss ratio = %g, want 0.12 recomputed from sums", sick.LossRatio)
	}
	if sick.Observers != 2 || reps[0].Observers != 1 {
		t.Errorf("observer counts wrong: %+v", reps)
	}
}

// TestAppTelemetryRoutesWithoutLocalService covers the forwarder-only
// node: it routes to a service it does not host, so the service entry is
// created purely from the route windows.
func TestAppTelemetryRoutesWithoutLocalService(t *testing.T) {
	r := newTestRoot(t)
	if err := r.Heartbeat("E1", NodeStatus{LastHeartbeat: time.Unix(100, 0),
		Routes: []ReplicaTelemetry{
			{Service: "lsh", Replica: "10.0.0.3:7002", State: "ejected",
				Sent: 10, Lost: 10, LossRatio: 1},
		}}); err != nil {
		t.Fatal(err)
	}
	tel := r.AppTelemetry()
	if len(tel) != 1 || tel[0].Service != "lsh" || len(tel[0].Replicas) != 1 {
		t.Fatalf("telemetry = %+v", tel)
	}
	if got := tel[0].Replicas[0]; got.State != "ejected" || got.LossRatio != 1 {
		t.Errorf("route-only replica wrong: %+v", got)
	}
}

func TestRouteTelemetryConversion(t *testing.T) {
	if got := RouteTelemetry(nil); got != nil {
		t.Fatalf("empty digest should convert to nil, got %+v", got)
	}
	got := RouteTelemetry([]routestats.RouteDigest{
		{Step: "sift", Replica: "a:1", State: "probation", Weight: 0.5,
			LatencyMicros: 700, LossRatio: 0.1, Sent: 9, Acked: 8, Lost: 1},
	})
	if len(got) != 1 {
		t.Fatalf("converted = %+v", got)
	}
	want := ReplicaTelemetry{Service: "sift", Replica: "a:1", State: "probation",
		Weight: 0.5, LatencyMicros: 700, LossRatio: 0.1, Sent: 9, Acked: 8, Lost: 1}
	if got[0] != want {
		t.Errorf("converted = %+v, want %+v", got[0], want)
	}
}

func TestAPIMetricsReplicaLines(t *testing.T) {
	srv, _ := apiFixture(t)
	for _, n := range testbedNodes() {
		if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes", n, nil); code != http.StatusCreated {
			t.Fatalf("register %s: %d", n.Name, code)
		}
	}
	status := NodeStatus{Routes: []ReplicaTelemetry{
		{Service: "sift", Replica: "10.0.0.2:7001", State: "degraded", Weight: 0.25,
			LatencyMicros: 50_000, LossRatio: 0.2, Sent: 50, Acked: 40, Lost: 10},
	}}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", status, nil); code != http.StatusOK {
		t.Fatalf("heartbeat with routes: %d", code)
	}

	var tel []ServiceTelemetry
	if code := doJSON(t, "GET", srv.URL+"/api/v1/telemetry", nil, &tel); code != http.StatusOK {
		t.Fatalf("telemetry: %d", code)
	}
	if len(tel) != 1 || len(tel[0].Replicas) != 1 || tel[0].Replicas[0].Observers != 1 {
		t.Fatalf("telemetry = %+v", tel)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`scatter_app_replica_sent_total{service="sift",replica="10.0.0.2:7001"} 50`,
		`scatter_app_replica_lost_total{service="sift",replica="10.0.0.2:7001"} 10`,
		`scatter_app_replica_state{service="sift",replica="10.0.0.2:7001"} 1`,
		`scatter_app_replica_weight{service="sift",replica="10.0.0.2:7001"} 0.25`,
		`scatter_app_replica_loss_ratio{service="sift",replica="10.0.0.2:7001"} 0.2`,
		`scatter_app_replica_latency_seconds{service="sift",replica="10.0.0.2:7001"} 0.05`,
		`scatter_app_replica_observers{service="sift",replica="10.0.0.2:7001"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
