package orchestrator

import (
	"testing"
	"time"
)

func TestBestFitPacksTightly(t *testing.T) {
	r := newTestRoot(t, WithScheduler(BestFitScheduler{}))
	// Two replicas with no pins: best-fit should pack both onto the node
	// with the least free memory (cloud: 64 GB) instead of spreading.
	sla := SLA{AppName: "pack", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 2,
		Requirements: Requirements{MemBytes: 1 << 30},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		if in.Node != "cloud" {
			t.Errorf("best-fit placed %s on %s, want cloud (tightest fit)", in.Key(), in.Node)
		}
	}
}

func TestBestFitRespectsConstraints(t *testing.T) {
	r := newTestRoot(t, WithScheduler(BestFitScheduler{}))
	sla := SLA{AppName: "gpu", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{NeedsGPU: true, GPUArchIn: []string{"ampere"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Node != "E2" {
		t.Errorf("placed on %s, want E2", d.Instances[0].Node)
	}
}

func TestBestFitHonoursPins(t *testing.T) {
	r := newTestRoot(t, WithScheduler(BestFitScheduler{}))
	sla := SLA{AppName: "pin", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{Machines: []string{"E1"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Node != "E1" {
		t.Errorf("pinned service on %s", d.Instances[0].Node)
	}
}

func TestBestFitUnschedulable(t *testing.T) {
	r := newTestRoot(t, WithScheduler(BestFitScheduler{}))
	sla := SLA{AppName: "huge", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{MemBytes: 1 << 50},
	}}}
	if _, err := r.Deploy(sla); err == nil {
		t.Error("oversized service scheduled")
	}
}

func TestClusterResources(t *testing.T) {
	r := newTestRoot(t)
	if _, err := r.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	edge := r.ClusterResources("edge")
	if edge.Nodes != 2 || edge.AliveNodes != 2 {
		t.Errorf("edge nodes = %+v", edge)
	}
	if edge.CPUCores != 16+64 || edge.GPUs != 4 {
		t.Errorf("edge capacity = %+v", edge)
	}
	if edge.Instances == 0 || edge.ReservedMem == 0 {
		t.Errorf("edge reservations missing: %+v", edge)
	}
	cloud := r.ClusterResources("cloud")
	if cloud.Nodes != 1 {
		t.Errorf("cloud = %+v", cloud)
	}
	ghost := r.ClusterResources("nowhere")
	if ghost.Nodes != 0 || ghost.Cluster != "nowhere" {
		t.Errorf("ghost = %+v", ghost)
	}
	_ = time.Now // keep time import for fixture
}
