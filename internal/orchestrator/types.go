// Package orchestrator implements an Oakestra-style hierarchical edge
// orchestration framework: a root orchestrator federating per-cluster
// orchestrators, worker nodes with heterogeneous capabilities (CPU, GPU
// count and architecture, memory), SLA-driven service deployment with
// hardware constraints, round-robin semantic addressing across replicas,
// heartbeat-based failure detection with automatic re-deployment, and
// hardware-level resource monitoring.
//
// Two properties of the paper's setting are deliberately preserved:
//
//   - Scheduling and monitoring see only hardware-level metrics. The
//     orchestrator has no visibility into application QoS — which is
//     exactly the blind spot the paper's insights (I) and (IV) identify.
//   - Machines expose GPU architectures (GeForce RTX / Ampere / Tesla)
//     and SLAs constrain placements to architectures their images were
//     compiled for, reproducing the manual image–target mapping problem
//     the paper automates with Oakestra.
package orchestrator

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
)

// NodeInfo describes a worker node's immutable capabilities.
type NodeInfo struct {
	Name     string `json:"name"`
	Cluster  string `json:"cluster"`
	CPUCores int    `json:"cpu_cores"`
	GPUs     int    `json:"gpus"`
	GPUArch  string `json:"gpu_arch,omitempty"`
	MemBytes int64  `json:"mem_bytes"`
	// Addr is the node agent's reachable address (real deployments).
	Addr string `json:"addr,omitempty"`
}

// Validate reports configuration errors.
func (n NodeInfo) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("orchestrator: node without name")
	}
	if n.Cluster == "" {
		return fmt.Errorf("orchestrator: node %q without cluster", n.Name)
	}
	if n.CPUCores <= 0 || n.MemBytes <= 0 || n.GPUs < 0 {
		return fmt.Errorf("orchestrator: node %q has invalid resources", n.Name)
	}
	return nil
}

// NodeStatus is a node's telemetry report. The hardware fields are all
// today's orchestrators see; Services optionally carries the node's live
// application-metrics digest — the §6 extension that closes the QoS blind
// spot, letting app-aware policies read drop ratios straight from
// heartbeats.
type NodeStatus struct {
	CPUUtil       float64   `json:"cpu_util"`
	GPUUtil       float64   `json:"gpu_util"`
	MemUsed       int64     `json:"mem_used"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	// Services is the per-service application telemetry digest hosted on
	// this node (empty when the node exports hardware metrics only).
	Services []ServiceTelemetry `json:"services,omitempty"`
	// Routes is the node's forwarder-side view of downstream replicas:
	// one entry per (service, replica address) routing window. Where
	// Services reports how this node's own workers fare, Routes reports
	// how the replicas this node sends to respond — the signal that lets
	// the root tell a sick replica from a sick service.
	Routes []ReplicaTelemetry `json:"routes,omitempty"`
}

// ServiceTelemetry is one service's application-level digest as carried in
// a heartbeat: ingress counters, drop ratio, live queue depth, and the p95
// service latency from the node's streaming histogram.
type ServiceTelemetry struct {
	Service   string  `json:"service"`
	Arrived   uint64  `json:"arrived"`
	Processed uint64  `json:"processed"`
	Dropped   uint64  `json:"dropped"`
	DropRatio float64 `json:"drop_ratio"`
	QueueLen  int64   `json:"queue_len"`
	P95Micros uint64  `json:"p95_us"`
	P99Micros uint64  `json:"p99_us,omitempty"`
	// AdmissionDrops counts ingress frames refused by admission control —
	// reported separately from Dropped so the distress drop ratio
	// reflects the service's health, not the controller's own refusals.
	AdmissionDrops uint64 `json:"admission_drops,omitempty"`
	// Replicas is the per-replica breakdown merged from the forwarder
	// windows every live node reported (AppTelemetry fills it; heartbeats
	// carry the raw windows in NodeStatus.Routes instead).
	Replicas []ReplicaTelemetry `json:"replicas,omitempty"`
}

// ReplicaTelemetry is one downstream replica as seen by the forwarders
// routing to it: the live window summary (EWMA latency, loss ratio,
// health state, selection weight) plus the raw outcome counters. In a
// heartbeat it is one node's view; in AppTelemetry it is the merge
// across all observing nodes.
type ReplicaTelemetry struct {
	Service       string  `json:"service"`
	Replica       string  `json:"replica"` // the replica's ingress address
	State         string  `json:"state"`
	Weight        float64 `json:"weight"`
	LatencyMicros uint64  `json:"latency_us"`
	LossRatio     float64 `json:"loss_ratio"`
	Sent          uint64  `json:"sent"`
	Acked         uint64  `json:"acked"`
	Lost          uint64  `json:"lost"`
	SendErrors    uint64  `json:"send_errors"`
	// Observers is how many live nodes reported a window for this
	// replica (set by the root's merge, zero in raw heartbeats).
	Observers int `json:"observers,omitempty"`
}

// ServiceAdmission is one service's admission verdict as carried on a
// heartbeat response — the control plane's downlink to the sidecars.
type ServiceAdmission struct {
	Service string `json:"service"`
	// State is the wire form of core.AdmitState: "admit", "degrade",
	// "reject". Unknown strings must be treated as "admit".
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// HeartbeatResponse is the orchestrator's reply to a heartbeat: the
// current admission verdicts for every service under admission control.
// Services absent from the list are admitted — a node applies the list
// and resets everything else to admit, so a controller restart can never
// wedge a service shut.
type HeartbeatResponse struct {
	Admissions []ServiceAdmission `json:"admissions,omitempty"`
}

// TelemetryFromDigests converts a node registry's live service digests
// into the heartbeat representation — what a node agent puts in
// NodeStatus.Services.
func TelemetryFromDigests(ds []obs.ServiceDigest) []ServiceTelemetry {
	if len(ds) == 0 {
		return nil
	}
	out := make([]ServiceTelemetry, 0, len(ds))
	for _, d := range ds {
		out = append(out, ServiceTelemetry{
			Service:        d.Service,
			Arrived:        d.Arrived,
			Processed:      d.Processed,
			Dropped:        d.Dropped,
			DropRatio:      d.DropRatio,
			QueueLen:       d.QueueLen,
			P95Micros:      d.P95Micros,
			P99Micros:      d.P99Micros,
			AdmissionDrops: d.AdmissionDrops,
		})
	}
	return out
}

// RouteTelemetry converts a router's route-window digest into the
// heartbeat representation — what a node agent puts in
// NodeStatus.Routes.
func RouteTelemetry(digests []routestats.RouteDigest) []ReplicaTelemetry {
	if len(digests) == 0 {
		return nil
	}
	out := make([]ReplicaTelemetry, 0, len(digests))
	for _, d := range digests {
		out = append(out, ReplicaTelemetry{
			Service:       d.Step,
			Replica:       d.Replica,
			State:         d.State,
			Weight:        d.Weight,
			LatencyMicros: d.LatencyMicros,
			LossRatio:     d.LossRatio,
			Sent:          d.Sent,
			Acked:         d.Acked,
			Lost:          d.Lost,
			SendErrors:    d.SendErrors,
		})
	}
	return out
}

// Requirements constrain where a microservice may be placed.
type Requirements struct {
	MemBytes int64 `json:"mem_bytes"`
	NeedsGPU bool  `json:"needs_gpu"`
	// GPUArchIn lists architectures the service image is compiled for;
	// empty means any (or none needed).
	GPUArchIn []string `json:"gpu_arch_in,omitempty"`
	// Clusters restricts candidate clusters; empty means any.
	Clusters []string `json:"clusters,omitempty"`
	// Machines pins candidate machines in priority order; empty means
	// any. The paper's experiments pin every placement explicitly.
	Machines []string `json:"machines,omitempty"`
}

// ServiceSLA describes one microservice in an application SLA.
type ServiceSLA struct {
	Name     string `json:"microservice_name"`
	Image    string `json:"image"`
	Replicas int    `json:"replicas"`
	// Shards partitions the service's reference database by hash space:
	// replica r serves shard r mod Shards, so consecutive replica
	// indices rotate across shards and scaling up thickens shards in
	// round-robin order. Zero or one means unsharded.
	Shards int `json:"shards,omitempty"`
	// ShardReplication, when set, demands exactly that many replicas per
	// shard: Replicas must equal Shards*ShardReplication.
	ShardReplication int          `json:"shard_replication,omitempty"`
	Requirements     Requirements `json:"requirements"`
}

// ShardOf maps a replica index to the shard it serves (always 0 for
// unsharded services).
func (s ServiceSLA) ShardOf(replica int) int {
	if s.Shards <= 1 {
		return 0
	}
	return replica % s.Shards
}

// Validate reports SLA errors.
func (s ServiceSLA) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("orchestrator: microservice without name")
	}
	if s.Replicas <= 0 {
		return fmt.Errorf("orchestrator: microservice %q has %d replicas", s.Name, s.Replicas)
	}
	if s.Requirements.MemBytes < 0 {
		return fmt.Errorf("orchestrator: microservice %q has negative memory demand", s.Name)
	}
	if s.Shards < 0 {
		return fmt.Errorf("orchestrator: microservice %q has %d shards", s.Name, s.Shards)
	}
	if s.ShardReplication < 0 {
		return fmt.Errorf("orchestrator: microservice %q has negative shard replication", s.Name)
	}
	if s.ShardReplication > 0 && s.Shards == 0 {
		return fmt.Errorf("orchestrator: microservice %q sets shard replication without shards", s.Name)
	}
	if s.Shards > 1 {
		// Every shard must be covered, or gathers can never reach quorum.
		if s.Replicas < s.Shards {
			return fmt.Errorf("orchestrator: microservice %q has %d replicas for %d shards (shards would be uncovered)",
				s.Name, s.Replicas, s.Shards)
		}
		if s.Replicas%s.Shards != 0 {
			return fmt.Errorf("orchestrator: microservice %q: %d replicas do not divide evenly over %d shards",
				s.Name, s.Replicas, s.Shards)
		}
		if s.ShardReplication > 0 && s.Replicas != s.Shards*s.ShardReplication {
			return fmt.Errorf("orchestrator: microservice %q: %d replicas != %d shards x %d replication",
				s.Name, s.Replicas, s.Shards, s.ShardReplication)
		}
	}
	return nil
}

// SLA is an application-level service agreement: the unit of deployment.
type SLA struct {
	AppName       string       `json:"app_name"`
	Microservices []ServiceSLA `json:"microservices"`
}

// Validate reports SLA errors.
func (s SLA) Validate() error {
	if s.AppName == "" {
		return fmt.Errorf("orchestrator: SLA without app name")
	}
	if len(s.Microservices) == 0 {
		return fmt.Errorf("orchestrator: SLA %q has no microservices", s.AppName)
	}
	seen := make(map[string]bool)
	for _, ms := range s.Microservices {
		if err := ms.Validate(); err != nil {
			return err
		}
		if seen[ms.Name] {
			return fmt.Errorf("orchestrator: SLA %q repeats microservice %q", s.AppName, ms.Name)
		}
		seen[ms.Name] = true
	}
	return nil
}

// ParseSLA decodes a JSON SLA document and validates it.
func ParseSLA(data []byte) (SLA, error) {
	var s SLA
	if err := json.Unmarshal(data, &s); err != nil {
		return SLA{}, fmt.Errorf("orchestrator: parse SLA: %w", err)
	}
	if err := s.Validate(); err != nil {
		return SLA{}, err
	}
	return s, nil
}

// InstanceState tracks an instance through its lifecycle.
type InstanceState string

// Instance lifecycle states.
const (
	StateScheduled InstanceState = "scheduled"
	StateRunning   InstanceState = "running"
	StateFailed    InstanceState = "failed"
)

// Instance is one scheduled replica of a microservice.
type Instance struct {
	App     string `json:"app"`
	Service string `json:"service"`
	Replica int    `json:"replica"`
	// Shard is the database partition this replica serves — meaningful
	// only when the owning SLA declares Shards > 1 (otherwise 0).
	Shard int           `json:"shard,omitempty"`
	Node  string        `json:"node"`
	State InstanceState `json:"state"`
}

// Key uniquely identifies the instance slot.
func (i Instance) Key() string {
	return fmt.Sprintf("%s/%s/%d", i.App, i.Service, i.Replica)
}

// Deployment is the scheduling outcome for one SLA.
type Deployment struct {
	App       string     `json:"app"`
	Instances []Instance `json:"instances"`
}

// InstancesOf returns the deployed replicas of one microservice, ordered
// by replica index.
func (d *Deployment) InstancesOf(service string) []Instance {
	var out []Instance
	for _, in := range d.Instances {
		if in.Service == service {
			out = append(out, in)
		}
	}
	return out
}
