package orchestrator

import "testing"

func pinNode(name string, mem int64) *node {
	return &node{
		info:  NodeInfo{Name: name, Cluster: "edge", CPUCores: 8, MemBytes: mem},
		alive: true,
	}
}

// TestSpreadPinFallThrough is the regression test for the pinned
// round-robin fallback: when replica k's preferred pin is infeasible, the
// replica must fall through to the NEXT pin in priority order — the old
// code fell back to feasible[0], stacking every displaced replica on the
// first-ranked machine.
func TestSpreadPinFallThrough(t *testing.T) {
	e1 := pinNode("E1", 8<<30)
	e2 := pinNode("E2", 0) // full: infeasible for any request
	e3 := pinNode("E3", 8<<30)
	svc := ServiceSLA{
		Name: "sift", Image: "x", Replicas: 3,
		Requirements: Requirements{MemBytes: 1 << 30, Machines: []string{"E1", "E2", "E3"}},
	}
	nodes, err := SpreadScheduler{}.Place(svc, []*node{e1, e2, e3})
	if err != nil {
		t.Fatal(err)
	}
	got := []string{nodes[0].info.Name, nodes[1].info.Name, nodes[2].info.Name}
	// Replica 1 prefers the full E2 and must land on the next pin E3 —
	// not back on E1 (the old feasible[0] fallback).
	want := []string{"E1", "E3", "E3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement = %v, want %v", got, want)
		}
	}
}

// TestSpreadPinFallThroughWraps checks the wrap-around arm: a displaced
// replica whose later pins are all infeasible walks past the end of the
// pin list back to the earlier pins.
func TestSpreadPinFallThroughWraps(t *testing.T) {
	e1 := pinNode("E1", 8<<30)
	e2 := pinNode("E2", 0)
	// E3 fits exactly one replica; in-pass memory bookkeeping must stop a
	// second one from landing there.
	e3 := pinNode("E3", 1<<30+1<<29)
	svc := ServiceSLA{
		Name: "sift", Image: "x", Replicas: 3,
		Requirements: Requirements{MemBytes: 1 << 30, Machines: []string{"E1", "E2", "E3"}},
	}
	nodes, err := SpreadScheduler{}.Place(svc, []*node{e1, e2, e3})
	if err != nil {
		t.Fatal(err)
	}
	got := []string{nodes[0].info.Name, nodes[1].info.Name, nodes[2].info.Name}
	// Replica 2 prefers E3 (now full from replica 1's tentative placement)
	// and E2 is full too, so it wraps to E1.
	want := []string{"E1", "E3", "E1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement = %v, want %v", got, want)
		}
	}
}

// TestSpreadPlaceLeavesCandidatesUnmutated is the bookkeeping regression
// rider: Place must track in-pass reservations locally — the Root alone
// commits them — so a rejected placement leaves no residue.
func TestSpreadPlaceLeavesCandidatesUnmutated(t *testing.T) {
	e1 := pinNode("E1", 8<<30)
	e2 := pinNode("E2", 8<<30)
	svc := ServiceSLA{
		Name: "sift", Image: "x", Replicas: 4,
		Requirements: Requirements{MemBytes: 1 << 30, Machines: []string{"E1", "E2"}},
	}
	if _, err := (SpreadScheduler{}).Place(svc, []*node{e1, e2}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*node{e1, e2} {
		if n.instances != 0 || n.reservedMem != 0 {
			t.Errorf("%s mutated by Place: instances=%d reservedMem=%d",
				n.info.Name, n.instances, n.reservedMem)
		}
	}
}
