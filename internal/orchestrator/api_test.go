package orchestrator

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func apiFixture(t *testing.T) (*httptest.Server, *APIServer) {
	t.Helper()
	api := NewAPIServer(NewRoot())
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv, api
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestAPIRegisterAndList(t *testing.T) {
	srv, _ := apiFixture(t)
	for _, n := range testbedNodes() {
		if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes", n, nil); code != http.StatusCreated {
			t.Fatalf("register %s: %d", n.Name, code)
		}
	}
	// Duplicate registration conflicts.
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes", testbedNodes()[0], nil); code != http.StatusConflict {
		t.Errorf("duplicate register code = %d", code)
	}
	var nodes []NodeInfo
	if code := doJSON(t, "GET", srv.URL+"/api/v1/nodes", nil, &nodes); code != http.StatusOK {
		t.Fatalf("list code = %d", code)
	}
	if len(nodes) != 3 {
		t.Errorf("nodes = %d", len(nodes))
	}
	// Invalid node rejected.
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes", NodeInfo{}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid register code = %d", code)
	}
}

func TestAPIDeployLifecycle(t *testing.T) {
	srv, _ := apiFixture(t)
	for _, n := range testbedNodes() {
		doJSON(t, "POST", srv.URL+"/api/v1/nodes", n, nil)
	}
	var dep Deployment
	if code := doJSON(t, "POST", srv.URL+"/api/v1/apps", scatterSLA(), &dep); code != http.StatusCreated {
		t.Fatalf("deploy code = %d", code)
	}
	if len(dep.Instances) != 5 {
		t.Errorf("instances = %d", len(dep.Instances))
	}
	var dep2 Deployment
	if code := doJSON(t, "GET", srv.URL+"/api/v1/apps/scatter", nil, &dep2); code != http.StatusOK {
		t.Fatalf("get deployment code = %d", code)
	}
	if len(dep2.Instances) != 5 {
		t.Errorf("fetched instances = %d", len(dep2.Instances))
	}
	// Duplicate deploy conflicts.
	if code := doJSON(t, "POST", srv.URL+"/api/v1/apps", scatterSLA(), nil); code != http.StatusConflict {
		t.Errorf("duplicate deploy code = %d", code)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/api/v1/apps/scatter", nil, nil); code != http.StatusNoContent {
		t.Errorf("undeploy code = %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/api/v1/apps/scatter", nil, nil); code != http.StatusNotFound {
		t.Errorf("get after undeploy code = %d", code)
	}
}

func TestAPIUnschedulable(t *testing.T) {
	srv, _ := apiFixture(t)
	doJSON(t, "POST", srv.URL+"/api/v1/nodes", testbedNodes()[0], nil)
	sla := SLA{AppName: "x", Microservices: []ServiceSLA{{
		Name: "svc", Image: "i", Replicas: 1,
		Requirements: Requirements{NeedsGPU: true, GPUArchIn: []string{"hopper"}},
	}}}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/apps", sla, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("unschedulable code = %d", code)
	}
}

func TestAPIHeartbeatAndStatus(t *testing.T) {
	srv, _ := apiFixture(t)
	doJSON(t, "POST", srv.URL+"/api/v1/nodes", testbedNodes()[0], nil)
	st := NodeStatus{CPUUtil: 0.5, GPUUtil: 0.25, MemUsed: 42}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", st, nil); code != http.StatusOK {
		t.Fatalf("heartbeat code = %d", code)
	}
	var got NodeStatus
	if code := doJSON(t, "GET", srv.URL+"/api/v1/nodes/E1/status", nil, &got); code != http.StatusOK {
		t.Fatalf("status code = %d", code)
	}
	if got.CPUUtil != 0.5 || got.MemUsed != 42 {
		t.Errorf("status = %+v", got)
	}
	if got.LastHeartbeat.IsZero() {
		t.Error("heartbeat time not defaulted")
	}
	if code := doJSON(t, "POST", srv.URL+"/api/v1/nodes/ghost/heartbeat", st, nil); code != http.StatusNotFound {
		t.Errorf("unknown node heartbeat code = %d", code)
	}
}

func TestAPIDetectFailures(t *testing.T) {
	root := NewRoot(WithHeartbeatTimeout(time.Second))
	api := NewAPIServer(root)
	base := time.Unix(1000, 0)
	api.now = func() time.Time { return base }
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	for _, n := range testbedNodes() {
		doJSON(t, "POST", srv.URL+"/api/v1/nodes", n, nil)
	}
	doJSON(t, "POST", srv.URL+"/api/v1/apps", scatterSLA(), nil)
	// Advance time so every node looks dead except those that heartbeat.
	api.now = func() time.Time { return base.Add(10 * time.Second) }
	hb := NodeStatus{LastHeartbeat: base.Add(10 * time.Second)}
	doJSON(t, "POST", srv.URL+"/api/v1/nodes/E2/heartbeat", hb, nil)
	doJSON(t, "POST", srv.URL+"/api/v1/nodes/cloud/heartbeat", hb, nil)

	var migrated []Instance
	if code := doJSON(t, "POST", srv.URL+"/api/v1/failures/detect", nil, &migrated); code != http.StatusOK {
		t.Fatalf("detect code = %d", code)
	}
	for _, inst := range migrated {
		if inst.Node == "E1" {
			t.Errorf("instance %s still on dead node", inst.Key())
		}
	}
}

func TestAPIRejectsUnknownFields(t *testing.T) {
	srv, _ := apiFixture(t)
	req, _ := http.NewRequest("POST", srv.URL+"/api/v1/nodes",
		bytes.NewBufferString(`{"name":"x","cluster":"c","cpu_cores":1,"mem_bytes":1,"bogus":true}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field code = %d", resp.StatusCode)
	}
}
