package orchestrator

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the scale APIs.
var (
	ErrUnknownService = errors.New("orchestrator: unknown service")
	ErrMinReplicas    = errors.New("orchestrator: cannot scale below one replica")
)

// ScaleUp schedules one additional replica of a deployed microservice,
// committing the reservation and firing OnSchedule — the control loop's
// actuator for scale-out. The new replica gets the next free replica
// index so existing replica identities (and their routes) are untouched.
func (r *Root) ScaleUp(app, service string) (Instance, error) {
	r.mu.Lock()
	state, ok := r.deployed[app]
	if !ok {
		r.mu.Unlock()
		return Instance{}, fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	var svc ServiceSLA
	found := false
	for _, ms := range state.sla.Microservices {
		if ms.Name == service {
			svc = ms
			found = true
			break
		}
	}
	if !found {
		r.mu.Unlock()
		return Instance{}, fmt.Errorf("%w: %s/%s", ErrUnknownService, app, service)
	}
	next := 0
	for _, inst := range state.instances {
		if inst.Service == service && inst.Replica >= next {
			next = inst.Replica + 1
		}
	}
	one := svc
	one.Replicas = 1
	nodes, err := r.scheduler.Place(one, r.candidatesLocked())
	if err != nil {
		r.mu.Unlock()
		return Instance{}, err
	}
	n := nodes[0]
	n.instances++
	n.reservedMem += svc.Requirements.MemBytes
	inst := Instance{
		App:     app,
		Service: service,
		Replica: next,
		Shard:   svc.ShardOf(next),
		Node:    n.info.Name,
		State:   StateRunning,
	}
	state.instances[inst.Key()] = &inst
	// Invalidate the cached balancer so semantic addressing sees the new
	// replica immediately.
	delete(state.balancers, service)
	r.mu.Unlock()

	if r.hooks.OnSchedule != nil {
		r.hooks.OnSchedule(inst)
	}
	return inst, nil
}

// ScaleDown removes the highest-index running replica of a deployed
// microservice, releasing its reservation and firing OnRemove. It
// refuses to go below one running replica.
func (r *Root) ScaleDown(app, service string) (Instance, error) {
	r.mu.Lock()
	state, ok := r.deployed[app]
	if !ok {
		r.mu.Unlock()
		return Instance{}, fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	var victim *Instance
	running := 0
	for _, inst := range state.instances {
		if inst.Service != service || inst.State != StateRunning {
			continue
		}
		running++
		if victim == nil || inst.Replica > victim.Replica {
			victim = inst
		}
	}
	if victim == nil {
		r.mu.Unlock()
		return Instance{}, fmt.Errorf("%w: %s/%s", ErrUnknownService, app, service)
	}
	if running <= 1 {
		r.mu.Unlock()
		return Instance{}, fmt.Errorf("%w: %s/%s", ErrMinReplicas, app, service)
	}
	removed := *victim
	delete(state.instances, victim.Key())
	if n, ok := r.nodes[victim.Node]; ok {
		n.instances--
		n.reservedMem -= r.memOfLocked(state.sla, service)
	}
	delete(state.balancers, service)
	r.mu.Unlock()

	if r.hooks.OnRemove != nil {
		r.hooks.OnRemove(removed)
	}
	return removed, nil
}

// SetAdmissions replaces the admission verdicts carried on heartbeat
// responses. The control loop publishes its full verdict set each
// period; services absent from the set read as admitted on the nodes.
func (r *Root) SetAdmissions(adm []ServiceAdmission) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(adm) == 0 {
		r.admissions = nil
		return
	}
	m := make(map[string]ServiceAdmission, len(adm))
	for _, a := range adm {
		m[a.Service] = a
	}
	r.admissions = m
}

// Admissions returns the current admission verdicts, sorted by service —
// the payload of every heartbeat response.
func (r *Root) Admissions() []ServiceAdmission {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.admissions) == 0 {
		return nil
	}
	out := make([]ServiceAdmission, 0, len(r.admissions))
	for _, a := range r.admissions {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}
