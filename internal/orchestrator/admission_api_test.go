package orchestrator

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
)

// TestAPIHeartbeatCarriesAdmissions: the heartbeat response is the
// control plane's downlink — verdicts set on the root ride back to the
// node, and clearing them empties the response.
func TestAPIHeartbeatCarriesAdmissions(t *testing.T) {
	srv, api := apiFixture(t)
	api.root.RegisterNode(testbedNodes()[0], time.Unix(0, 0))

	var resp HeartbeatResponse
	code := doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", NodeStatus{}, &resp)
	if code != http.StatusOK {
		t.Fatalf("heartbeat code = %d", code)
	}
	if len(resp.Admissions) != 0 {
		t.Fatalf("admissions before any verdict: %+v", resp.Admissions)
	}

	api.root.SetAdmissions([]ServiceAdmission{
		{Service: "sift", State: "degrade", Reason: "replica cap reached"},
	})
	resp = HeartbeatResponse{}
	doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", NodeStatus{}, &resp)
	if len(resp.Admissions) != 1 || resp.Admissions[0].Service != "sift" ||
		resp.Admissions[0].State != "degrade" {
		t.Fatalf("admissions = %+v", resp.Admissions)
	}

	api.root.SetAdmissions(nil)
	resp = HeartbeatResponse{}
	doJSON(t, "POST", srv.URL+"/api/v1/nodes/E1/heartbeat", NodeStatus{}, &resp)
	if len(resp.Admissions) != 0 {
		t.Fatalf("admissions after clear: %+v", resp.Admissions)
	}
}

// TestClientAdmissionHandler: the node-agent client surfaces the downlink
// through SetAdmissionHandler on every successful beat — including the
// empty list that resets enforcement.
func TestClientAdmissionHandler(t *testing.T) {
	srv, api := apiFixture(t)
	api.root.RegisterNode(testbedNodes()[0], time.Unix(0, 0))
	api.root.SetAdmissions([]ServiceAdmission{{Service: "lsh", State: "reject"}})

	c := NewClient(srv.URL, time.Second)
	got := make(chan []ServiceAdmission, 8)
	c.SetAdmissionHandler(func(adm []ServiceAdmission) { got <- adm })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := c.StartHeartbeats(ctx, NodeInfo{
		Name: "n-agent", Cluster: "edge", CPUCores: 4, MemBytes: 1 << 30,
	}, 10*time.Millisecond, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case adm := <-got:
		if len(adm) != 1 || adm[0].Service != "lsh" || adm[0].State != "reject" {
			t.Fatalf("handler got %+v", adm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admission handler never called")
	}
	// Clearing the verdicts must reach the handler as an empty list.
	api.root.SetAdmissions(nil)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case adm := <-got:
			if len(adm) == 0 {
				return
			}
		case <-deadline:
			t.Fatal("cleared verdict set never delivered")
		}
	}
}

// TestClientHeartbeatTolerates204: an older server replying 204 with an
// empty body must read as "everything admitted", not a decode error.
func TestClientHeartbeatTolerates204(t *testing.T) {
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer old.Close()
	c := NewClient(old.URL, time.Second)
	resp, err := c.Heartbeat(context.Background(), "n1", NodeStatus{})
	if err != nil {
		t.Fatalf("204 heartbeat err = %v", err)
	}
	if len(resp.Admissions) != 0 {
		t.Fatalf("admissions = %+v", resp.Admissions)
	}
}

// TestAPIAutoscalerEndpoint: /api/v1/autoscaler is 404 without a control
// loop and serves the digest (plus scatter_autoscale_* on /metrics) with
// one attached.
func TestAPIAutoscalerEndpoint(t *testing.T) {
	srv, api := apiFixture(t)
	for _, n := range testbedNodes() {
		api.root.RegisterNode(n, time.Unix(0, 0))
	}
	if code := doJSON(t, "GET", srv.URL+"/api/v1/autoscaler", nil, nil); code != http.StatusNotFound {
		t.Fatalf("autoscaler without loop code = %d", code)
	}
	if _, err := api.root.Deploy(scatterSLA()); err != nil {
		t.Fatal(err)
	}
	a := NewAutoscaler(api.root, AutoscalerConfig{App: "scatter", Policy: appaware.QoSPolicy{}})
	api.SetAutoscaler(a)

	t0 := time.Unix(100, 0)
	api.root.Heartbeat("E1", NodeStatus{LastHeartbeat: t0, Services: []ServiceTelemetry{
		{Service: "sift", Arrived: 1000, Dropped: 0},
	}})
	a.Tick(t0)
	t1 := t0.Add(2 * time.Second)
	api.root.Heartbeat("E1", NodeStatus{LastHeartbeat: t1, Services: []ServiceTelemetry{
		{Service: "sift", Arrived: 1300, Dropped: 150},
	}})
	a.Tick(t1)

	var out struct {
		Policy   string           `json:"policy"`
		ScaleUps uint64           `json:"scale_ups"`
		Events   []AutoscaleEvent `json:"events"`
	}
	if code := doJSON(t, "GET", srv.URL+"/api/v1/autoscaler", nil, &out); code != http.StatusOK {
		t.Fatalf("autoscaler code = %d", code)
	}
	if out.Policy != "qos" || out.ScaleUps != 1 || len(out.Events) != 1 {
		t.Fatalf("autoscaler payload = %+v", out)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`scatter_autoscale_scale_ups_total{policy="qos"} 1`,
		// The digest is the signal the loop last decided on — captured
		// before the scale-up it triggered.
		`scatter_autoscale_replicas{service="sift"} 1`,
		`scatter_autoscale_drop_ratio{service="sift"} 0.5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
