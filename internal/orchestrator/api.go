package orchestrator

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
)

// APIServer exposes the root orchestrator over HTTP/JSON — the control
// plane node agents and operators talk to, mirroring Oakestra's root API.
//
//	POST   /api/v1/nodes                  register a worker node
//	GET    /api/v1/nodes                  list nodes
//	POST   /api/v1/nodes/{name}/heartbeat ingest telemetry
//	GET    /api/v1/nodes/{name}/status    last telemetry
//	POST   /api/v1/apps                   deploy an SLA
//	GET    /api/v1/apps/{name}            current deployment
//	DELETE /api/v1/apps/{name}            undeploy
//	POST   /api/v1/failures/detect        run failure detection
//	GET    /api/v1/autoscaler             control-loop status (404 without one)
type APIServer struct {
	root *Root
	mux  *http.ServeMux
	// now is injectable for tests.
	now func() time.Time
	// autoscaler is the attached control loop (SetAutoscaler); nil serves
	// 404 on /api/v1/autoscaler.
	autoscaler *Autoscaler
}

// NewAPIServer wraps a Root with the HTTP control plane.
func NewAPIServer(root *Root) *APIServer {
	s := &APIServer{root: root, mux: http.NewServeMux(), now: time.Now}
	s.mux.HandleFunc("POST /api/v1/nodes", s.registerNode)
	s.mux.HandleFunc("GET /api/v1/nodes", s.listNodes)
	s.mux.HandleFunc("POST /api/v1/nodes/{name}/heartbeat", s.heartbeat)
	s.mux.HandleFunc("GET /api/v1/nodes/{name}/status", s.nodeStatus)
	s.mux.HandleFunc("POST /api/v1/apps", s.deploy)
	s.mux.HandleFunc("GET /api/v1/apps/{name}", s.deployment)
	s.mux.HandleFunc("DELETE /api/v1/apps/{name}", s.undeploy)
	s.mux.HandleFunc("POST /api/v1/failures/detect", s.detectFailures)
	s.mux.HandleFunc("GET /api/v1/telemetry", s.telemetry)
	s.mux.HandleFunc("GET /api/v1/autoscaler", s.autoscalerStatus)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// Handler returns the API's HTTP handler.
func (s *APIServer) Handler() http.Handler { return s.mux }

// SetAutoscaler attaches a control loop so the API exposes its status at
// /api/v1/autoscaler and as scatter_autoscale_* on /metrics.
func (s *APIServer) SetAutoscaler(a *Autoscaler) { s.autoscaler = a }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownApp), errors.Is(err, ErrUnknownNode):
		code = http.StatusNotFound
	case errors.Is(err, ErrDuplicateApp), errors.Is(err, ErrDuplicateNode):
		code = http.StatusConflict
	case errors.Is(err, ErrUnschedulable):
		code = http.StatusUnprocessableEntity
	default:
		// Validation failures map to 400 by default.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("orchestrator: decode request: %w", err)
	}
	return nil
}

func (s *APIServer) registerNode(w http.ResponseWriter, r *http.Request) {
	var info NodeInfo
	if err := decodeBody(r, &info); err != nil {
		writeError(w, err)
		return
	}
	if err := s.root.RegisterNode(info, s.now()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *APIServer) listNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.root.Nodes())
}

func (s *APIServer) heartbeat(w http.ResponseWriter, r *http.Request) {
	var status NodeStatus
	if err := decodeBody(r, &status); err != nil {
		writeError(w, err)
		return
	}
	if status.LastHeartbeat.IsZero() {
		status.LastHeartbeat = s.now()
	}
	if err := s.root.Heartbeat(r.PathValue("name"), status); err != nil {
		writeError(w, err)
		return
	}
	// The response is the control plane's downlink: current admission
	// verdicts for every service under admission control. An empty list
	// means everything is admitted.
	writeJSON(w, http.StatusOK, HeartbeatResponse{Admissions: s.root.Admissions()})
}

func (s *APIServer) nodeStatus(w http.ResponseWriter, r *http.Request) {
	status, err := s.root.Status(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *APIServer) deploy(w http.ResponseWriter, r *http.Request) {
	var sla SLA
	if err := decodeBody(r, &sla); err != nil {
		writeError(w, err)
		return
	}
	d, err := s.root.Deploy(sla)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, d)
}

func (s *APIServer) deployment(w http.ResponseWriter, r *http.Request) {
	d, err := s.root.Deployment(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *APIServer) undeploy(w http.ResponseWriter, r *http.Request) {
	if err := s.root.Undeploy(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *APIServer) detectFailures(w http.ResponseWriter, r *http.Request) {
	migrated := s.root.DetectFailures(s.now())
	if migrated == nil {
		migrated = []Instance{}
	}
	writeJSON(w, http.StatusOK, migrated)
}

func (s *APIServer) telemetry(w http.ResponseWriter, r *http.Request) {
	t := s.root.AppTelemetry()
	if t == nil {
		t = []ServiceTelemetry{}
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *APIServer) autoscalerStatus(w http.ResponseWriter, r *http.Request) {
	if s.autoscaler == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		obs.AutoscaleDigest
		Events []AutoscaleEvent `json:"events,omitempty"`
	}{s.autoscaler.Status(), s.autoscaler.Events()})
}

func (s *APIServer) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metrics renders the root's fleet view in Prometheus text exposition
// format: node liveness plus the per-service application telemetry
// aggregated from heartbeats.
func (s *APIServer) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	alive, dead := s.root.NodeCounts()
	fmt.Fprintf(w, "# TYPE scatter_orchestrator_nodes gauge\n")
	fmt.Fprintf(w, "scatter_orchestrator_nodes{state=\"alive\"} %d\n", alive)
	fmt.Fprintf(w, "scatter_orchestrator_nodes{state=\"dead\"} %d\n", dead)
	if s.autoscaler != nil {
		obs.WriteAutoscaleText(w, s.autoscaler.Status())
	}
	tel := s.root.AppTelemetry()
	if len(tel) == 0 {
		return
	}
	for _, name := range []string{"arrived", "processed", "dropped", "admission_dropped"} {
		fmt.Fprintf(w, "# TYPE scatter_app_service_%s_total counter\n", name)
	}
	fmt.Fprintf(w, "# TYPE scatter_app_service_drop_ratio gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_service_queue_len gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_service_latency_p95_seconds gauge\n")
	for _, t := range tel {
		l := fmt.Sprintf("{service=%q}", t.Service)
		fmt.Fprintf(w, "scatter_app_service_arrived_total%s %d\n", l, t.Arrived)
		fmt.Fprintf(w, "scatter_app_service_processed_total%s %d\n", l, t.Processed)
		fmt.Fprintf(w, "scatter_app_service_dropped_total%s %d\n", l, t.Dropped)
		fmt.Fprintf(w, "scatter_app_service_admission_dropped_total%s %d\n", l, t.AdmissionDrops)
		fmt.Fprintf(w, "scatter_app_service_drop_ratio%s %g\n", l, t.DropRatio)
		fmt.Fprintf(w, "scatter_app_service_queue_len%s %d\n", l, t.QueueLen)
		fmt.Fprintf(w, "scatter_app_service_latency_p95_seconds%s %g\n", l, float64(t.P95Micros)/1e6)
	}
	replicas := false
	for _, t := range tel {
		if len(t.Replicas) > 0 {
			replicas = true
			break
		}
	}
	if !replicas {
		return
	}
	for _, name := range []string{"sent", "acked", "lost", "send_errors"} {
		fmt.Fprintf(w, "# TYPE scatter_app_replica_%s_total counter\n", name)
	}
	fmt.Fprintf(w, "# TYPE scatter_app_replica_state gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_replica_weight gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_replica_loss_ratio gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_replica_latency_seconds gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_app_replica_observers gauge\n")
	for _, t := range tel {
		for _, rt := range t.Replicas {
			l := fmt.Sprintf("{service=%q,replica=%q}", rt.Service, rt.Replica)
			fmt.Fprintf(w, "scatter_app_replica_sent_total%s %d\n", l, rt.Sent)
			fmt.Fprintf(w, "scatter_app_replica_acked_total%s %d\n", l, rt.Acked)
			fmt.Fprintf(w, "scatter_app_replica_lost_total%s %d\n", l, rt.Lost)
			fmt.Fprintf(w, "scatter_app_replica_send_errors_total%s %d\n", l, rt.SendErrors)
			fmt.Fprintf(w, "scatter_app_replica_state%s %d\n", l, routestats.ParseState(rt.State).Rank())
			fmt.Fprintf(w, "scatter_app_replica_weight%s %g\n", l, rt.Weight)
			fmt.Fprintf(w, "scatter_app_replica_loss_ratio%s %g\n", l, rt.LossRatio)
			fmt.Fprintf(w, "scatter_app_replica_latency_seconds%s %g\n", l, float64(rt.LatencyMicros)/1e6)
			fmt.Fprintf(w, "scatter_app_replica_observers%s %d\n", l, rt.Observers)
		}
	}
}
