package orchestrator

import (
	"fmt"
	"sort"
)

// ShardHealth is the control plane's coverage view of one database
// partition: how many replicas the deployment holds for the shard and
// how many are currently serving (running state on a live node). A
// shard with Live == 0 is uncovered — every gather touching it runs
// below strict quorum, so bit-identity with the monolithic index is
// lost until the shard is re-covered.
type ShardHealth struct {
	Shard    int `json:"shard"`
	Replicas int `json:"replicas"`
	Live     int `json:"live"`
}

// ShardHealth reports per-shard replica coverage for one microservice
// of a deployed app, indexed by shard number. Unsharded services return
// a single entry for shard 0 — the degenerate one-partition view.
func (r *Root) ShardHealth(app, service string) ([]ShardHealth, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	state, ok := r.deployed[app]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownApp, app)
	}
	shards := 1
	found := false
	for _, ms := range state.sla.Microservices {
		if ms.Name == service {
			if ms.Shards > 1 {
				shards = ms.Shards
			}
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownService, app, service)
	}
	out := make([]ShardHealth, shards)
	for s := range out {
		out[s].Shard = s
	}
	for _, inst := range state.instances {
		if inst.Service != service || inst.Shard >= shards {
			continue
		}
		h := &out[inst.Shard]
		h.Replicas++
		if inst.State != StateRunning {
			continue
		}
		if n, ok := r.nodes[inst.Node]; ok && n.alive {
			h.Live++
		}
	}
	return out, nil
}

// UncoveredShards returns the shard numbers of a service that currently
// have no live replica — the set a gather client cannot reach and an
// autoscaler must re-cover first.
func (r *Root) UncoveredShards(app, service string) ([]int, error) {
	health, err := r.ShardHealth(app, service)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, h := range health {
		if h.Live == 0 {
			out = append(out, h.Shard)
		}
	}
	return out, nil
}

// ShardInstances groups the deployed replicas of one microservice by
// shard: the outer slice is indexed by shard number, each group ordered
// by replica index. This is exactly the [][]addr layout a gather client
// consumes. Unsharded services collapse into one group.
func (d *Deployment) ShardInstances(service string) [][]Instance {
	maxShard := 0
	var insts []Instance
	for _, in := range d.Instances {
		if in.Service != service {
			continue
		}
		insts = append(insts, in)
		if in.Shard > maxShard {
			maxShard = in.Shard
		}
	}
	if len(insts) == 0 {
		return nil
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].Replica < insts[j].Replica })
	out := make([][]Instance, maxShard+1)
	for _, in := range insts {
		out[in.Shard] = append(out[in.Shard], in)
	}
	return out
}
