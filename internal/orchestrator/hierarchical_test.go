package orchestrator

import (
	"errors"
	"testing"
)

func TestHierarchicalPrefersRoomiestCluster(t *testing.T) {
	r := newTestRoot(t, WithScheduler(HierarchicalScheduler{}))
	// No constraints: the edge cluster (128+264 GB free) beats the cloud
	// cluster (64 GB).
	sla := SLA{AppName: "a", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1, Requirements: Requirements{MemBytes: 1 << 30},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	node := d.Instances[0].Node
	if node != "E1" && node != "E2" {
		t.Errorf("placed on %s, want an edge node", node)
	}
}

func TestHierarchicalRespectsClusterConstraint(t *testing.T) {
	r := newTestRoot(t, WithScheduler(HierarchicalScheduler{}))
	sla := SLA{AppName: "c", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{Clusters: []string{"cloud"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Node != "cloud" {
		t.Errorf("placed on %s, want cloud", d.Instances[0].Node)
	}
}

func TestHierarchicalSpreadsWithinCluster(t *testing.T) {
	r := newTestRoot(t, WithScheduler(HierarchicalScheduler{}))
	sla := SLA{AppName: "s", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 2,
		Requirements: Requirements{NeedsGPU: true, Clusters: []string{"edge"}},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, in := range d.Instances {
		nodes[in.Node] = true
	}
	if len(nodes) != 2 {
		t.Errorf("replicas on %v, want spread across the edge cluster", nodes)
	}
}

func TestHierarchicalUnschedulable(t *testing.T) {
	r := newTestRoot(t, WithScheduler(HierarchicalScheduler{}))
	sla := SLA{AppName: "u", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 1,
		Requirements: Requirements{GPUArchIn: []string{"hopper"}, NeedsGPU: true},
	}}}
	if _, err := r.Deploy(sla); !errors.Is(err, ErrUnschedulable) {
		t.Errorf("err = %v", err)
	}
}

func TestHierarchicalCustomInner(t *testing.T) {
	r := newTestRoot(t, WithScheduler(HierarchicalScheduler{Inner: BestFitScheduler{}}))
	// Best-fit within the edge cluster packs onto E1 (less free memory
	// than E2).
	sla := SLA{AppName: "bf", Microservices: []ServiceSLA{{
		Name: "svc", Image: "x", Replicas: 2,
		Requirements: Requirements{Clusters: []string{"edge"}, MemBytes: 1 << 30},
	}}}
	d, err := r.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		if in.Node != "E1" {
			t.Errorf("best-fit inner placed %s on %s, want E1", in.Key(), in.Node)
		}
	}
}
