package appaware

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

type world struct {
	eng    *sim.Engine
	fabric *core.Fabric
	col    *metrics.Collector
	e1, e2 *testbed.Machine
}

func newWorld(seed int64) *world {
	eng := sim.New(seed)
	return &world{
		eng:    eng,
		fabric: core.NewFabric(eng),
		col:    metrics.NewCollector(),
		e1:     testbed.NewMachine(testbed.E1(), eng),
		e2:     testbed.NewMachine(testbed.E2(), eng),
	}
}

// run deploys on E1, ramps to 4 clients, optionally under an autoscaler.
func run(t *testing.T, mode core.Mode, policy Policy) (metrics.Summary, []ScaleEvent) {
	t.Helper()
	w := newWorld(42)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: mode})
	duration := 60 * time.Second
	for i := 0; i < 4; i++ {
		p.AddClient(core.ClientConfig{
			ID: uint32(i + 1), FPS: 30,
			Start: sim.Time(i) * 5 * time.Second,
			Stop:  duration,
		})
	}
	var a *Autoscaler
	if policy != nil {
		a = New(w.eng, p, w.col, policy, Config{
			Period: 5 * time.Second,
			Hosts:  []*testbed.Machine{w.e2},
		})
		a.Start(duration)
	}
	w.eng.Run(duration + 500*time.Millisecond)
	_, machines := p.Usage()
	s := w.col.Summarize(duration, 4, machines)
	var events []ScaleEvent
	if a != nil {
		events = a.Events()
	}
	return s, events
}

func TestStaticPolicyNeverScales(t *testing.T) {
	if d := (StaticPolicy{}).Decide(Signal{}); d != nil {
		t.Errorf("static policy decided %v", d)
	}
	if (StaticPolicy{}).Name() != "static" {
		t.Error("name")
	}
}

func TestHardwarePolicyBlindDuringCollapse(t *testing.T) {
	// scAtteR collapsing under 4 clients keeps hardware utilization low —
	// the hardware policy must never fire (the paper's insight I/IV).
	w := newWorld(7)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatter})
	for i := 0; i < 4; i++ {
		p.AddClient(core.ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 30 * time.Second})
	}
	a := New(w.eng, p, w.col, HardwarePolicy{}, Config{
		Period: 5 * time.Second, Hosts: []*testbed.Machine{w.e2},
	})
	a.Start(30 * time.Second)
	w.eng.Run(31 * time.Second)
	if len(a.Events()) != 0 {
		t.Errorf("hardware policy scaled %d times during a low-utilization collapse: %+v",
			len(a.Events()), a.Events())
	}
	// Sanity: the application *was* collapsing.
	s := w.col.Summarize(30*time.Second, 4, nil)
	if s.SuccessRate > 0.3 {
		t.Errorf("expected collapse, success = %.2f", s.SuccessRate)
	}
}

func TestQoSPolicyScalesDistressedService(t *testing.T) {
	w := newWorld(8)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatterPP})
	for i := 0; i < 4; i++ {
		p.AddClient(core.ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 40 * time.Second})
	}
	a := New(w.eng, p, w.col, QoSPolicy{}, Config{
		Period: 5 * time.Second, Hosts: []*testbed.Machine{w.e2},
	})
	a.Start(40 * time.Second)
	w.eng.Run(41 * time.Second)
	events := a.Events()
	if len(events) == 0 {
		t.Fatal("QoS policy never scaled a saturated pipeline")
	}
	// The first distressed service under 4 clients is sift.
	if events[0].Step != wire.StepSIFT {
		t.Errorf("first scale-out = %s, want sift", events[0].Step)
	}
	if len(p.Instances(wire.StepSIFT)) < 2 {
		t.Error("sift replica not added")
	}
}

func TestQoSAutoscalingImprovesThroughput(t *testing.T) {
	static, _ := run(t, core.ModeScatterPP, nil)
	scaled, _ := run(t, core.ModeScatterPP, QoSPolicy{})
	if scaled.FPSAggregate <= static.FPSAggregate*1.1 {
		t.Errorf("QoS autoscaling did not help: %.1f vs %.1f aggregate FPS",
			scaled.FPSAggregate, static.FPSAggregate)
	}
}

func TestMaxReplicasCap(t *testing.T) {
	w := newWorld(9)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatterPP})
	for i := 0; i < 8; i++ {
		p.AddClient(core.ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 60 * time.Second})
	}
	a := New(w.eng, p, w.col, QoSPolicy{}, Config{
		Period:      3 * time.Second,
		Hosts:       []*testbed.Machine{w.e2},
		MaxReplicas: 2,
	})
	a.Start(60 * time.Second)
	w.eng.Run(61 * time.Second)
	for step := 0; step < wire.NumSteps; step++ {
		if n := len(p.Instances(wire.Step(step))); n > 2 {
			t.Errorf("%s has %d replicas, cap 2", wire.Step(step), n)
		}
	}
}

func TestNewPanics(t *testing.T) {
	w := newWorld(1)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(), core.Options{})
	for _, f := range []func(){
		func() { New(w.eng, p, w.col, nil, Config{Hosts: []*testbed.Machine{w.e2}}) },
		func() { New(w.eng, p, w.col, QoSPolicy{}, Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New with invalid config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHardwarePolicyFiresWhenHot(t *testing.T) {
	sig := Signal{
		Machines: []metrics.MachineUsage{{Machine: "E1", GPUUtil: 0.95}},
	}
	sig.Services[wire.StepSIFT] = ServiceSignal{Step: wire.StepSIFT, Arrived: 100}
	d := HardwarePolicy{}.Decide(sig)
	if len(d) != 1 || d[0].Step != wire.StepSIFT {
		t.Errorf("decisions = %+v", d)
	}
}

func TestQoSPolicyMinSamples(t *testing.T) {
	var sig Signal
	sig.Services[wire.StepSIFT] = ServiceSignal{Step: wire.StepSIFT, Arrived: 5, Dropped: 5, DropRatio: 1}
	if d := (QoSPolicy{}).Decide(sig); d != nil {
		t.Errorf("policy reacted to %d samples: %v", 5, d)
	}
}
