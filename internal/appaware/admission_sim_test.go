package appaware

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestSimAdmissionEscalatesAtCapAndRecovers drives the sim mirror of the
// live loop end to end: with scale-out capped at the seed replica count,
// sustained distress must escalate to an admission verdict the pipeline
// enforces (refused frames counted as admission drops, not distress),
// and once the client load stops the verdict must relax back to admit.
func TestSimAdmissionEscalatesAtCapAndRecovers(t *testing.T) {
	w := newWorld(11)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatterPP})
	load := 40 * time.Second
	for i := 0; i < 6; i++ {
		p.AddClient(core.ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: load})
	}
	a := New(w.eng, p, w.col, QoSPolicy{}, Config{
		Period:           4 * time.Second,
		Hosts:            []*testbed.Machine{w.e2},
		MaxReplicas:      1, // scale-out exhausted from the start
		AdmissionEnabled: true,
	})
	total := 80 * time.Second
	a.Start(total)
	w.eng.Run(total + 500*time.Millisecond)

	var escalated, relaxed bool
	var worst AdmitState
	var step wire.Step
	for _, ev := range a.Events() {
		if ev.Verb == VerbScaleUp && !ev.Admission {
			t.Fatalf("replica added past MaxReplicas=1: %+v", ev)
		}
		if !ev.Admission {
			continue
		}
		if ev.Admit > worst {
			worst, step = ev.Admit, ev.Step
		}
		if ev.Admit > AdmitOK {
			escalated = true
		} else if escalated {
			relaxed = true
		}
	}
	if !escalated {
		t.Fatalf("capped distress never escalated to admission control; events: %+v", a.Events())
	}
	if drops := w.col.ServiceAdmissionDrops(step.String()); drops == 0 {
		t.Errorf("%s escalated to %v but the pipeline recorded no admission drops", step, worst)
	}
	// Admission drops stay out of the distress counters.
	arrived, _, dropped := w.col.ServiceCounters(step.String())
	if dropped > arrived {
		t.Errorf("%s distress drops %d exceed arrivals %d — admission drops leaked in",
			step, dropped, arrived)
	}
	if !relaxed {
		t.Error("verdict never stepped back down after the load stopped")
	}
	for s := 0; s < wire.NumSteps; s++ {
		if st := p.AdmitStateOf(wire.Step(s)); st != core.AdmitOK {
			t.Errorf("%s still %v long after the load stopped", wire.Step(s), st)
		}
	}
}

// TestSimScaleDownRetiresIdleReplica checks the scale-in arm against the
// simulated pipeline: after a burst forces a scale-out, an idle tail must
// let the policy retire the extra replica down to MinReplicas.
func TestSimScaleDownRetiresIdleReplica(t *testing.T) {
	w := newWorld(12)
	p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1), core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatterPP})
	load := 30 * time.Second
	for i := 0; i < 4; i++ {
		p.AddClient(core.ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: load})
	}
	a := New(w.eng, p, w.col, QoSPolicy{EnableScaleDown: true}, Config{
		Period: 5 * time.Second,
		Hosts:  []*testbed.Machine{w.e2},
	})
	total := 70 * time.Second
	a.Start(total)
	w.eng.Run(total + 500*time.Millisecond)

	var ups, downs int
	for _, ev := range a.Events() {
		switch {
		case ev.Admission:
		case ev.Verb == VerbScaleUp:
			ups++
		case ev.Verb == VerbScaleDown:
			downs++
		}
	}
	if ups == 0 {
		t.Fatal("burst never forced a scale-out")
	}
	if downs == 0 {
		t.Fatalf("idle tail never retired a replica; events: %+v", a.Events())
	}
	for s := 0; s < wire.NumSteps; s++ {
		if n := len(p.Instances(wire.Step(s))); n > 1 {
			t.Errorf("%s still at %d replicas after a long idle tail", wire.Step(s), n)
		}
	}
}
