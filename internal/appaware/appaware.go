// Package appaware implements the paper's §6 future-work proposal: an
// application-aware orchestrator that consumes internal application
// metrics (exported through predefined sidecar hooks) alongside hardware
// telemetry, and scales services out when the application — not the
// hardware — shows distress.
//
// Two policies make the paper's insight (I)/(IV) measurable:
//
//   - HardwarePolicy mimics today's orchestrators (Kubernetes-style):
//     it only sees CPU/GPU utilization and scales the busiest service on
//     an overloaded machine. During scAtteR's collapse, utilization stays
//     low or even declines, so this policy never reacts.
//   - QoSPolicy consumes the sidecar analytics (ingress drop ratios) and
//     scales the first distressed service in pipeline order.
//
// The Autoscaler evaluates a policy on a fixed control period over a
// simulated deployment and applies its decisions via dynamic replica
// addition (core.Pipeline.AddReplica).
package appaware

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// ServiceSignal is one service's application-level telemetry over the
// last control period — what the extended sidecar exposes to the
// orchestrator.
type ServiceSignal struct {
	Step      wire.Step
	Arrived   uint64 // ingress requests in the window
	Dropped   uint64 // ingress drops in the window
	DropRatio float64
	Replicas  int
}

// Signal is the telemetry snapshot a policy decides on.
type Signal struct {
	Now      sim.Time
	Services [wire.NumSteps]ServiceSignal
	Machines []metrics.MachineUsage // cumulative hardware telemetry
}

// Decision asks for one more replica of a step.
type Decision struct {
	Step   wire.Step
	Reason string
}

// Policy maps a telemetry snapshot to scaling decisions. Implementations
// must be deterministic.
type Policy interface {
	Name() string
	Decide(sig Signal) []Decision
}

// HardwarePolicy scales on hardware utilization only — the information
// today's orchestration frameworks act on. When any machine exceeds the
// thresholds, it scales the service with the highest ingress load.
type HardwarePolicy struct {
	// CPUThreshold and GPUThreshold are utilization fractions in (0, 1].
	// Zero values default to 0.8.
	CPUThreshold float64
	GPUThreshold float64
}

// Name implements Policy.
func (HardwarePolicy) Name() string { return "hardware" }

// Decide implements Policy.
func (p HardwarePolicy) Decide(sig Signal) []Decision {
	cpuT := p.CPUThreshold
	if cpuT <= 0 {
		cpuT = 0.8
	}
	gpuT := p.GPUThreshold
	if gpuT <= 0 {
		gpuT = 0.8
	}
	overloaded := false
	for _, m := range sig.Machines {
		if m.CPUUtil > cpuT || m.GPUUtil > gpuT {
			overloaded = true
			break
		}
	}
	if !overloaded {
		return nil
	}
	// Scale the busiest service by ingress volume.
	best := -1
	var bestArrived uint64
	for i, svc := range sig.Services {
		if svc.Arrived > bestArrived {
			bestArrived = svc.Arrived
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return []Decision{{
		Step:   wire.Step(best),
		Reason: fmt.Sprintf("hardware utilization above threshold; busiest service %s", wire.Step(best)),
	}}
}

// QoSPolicy scales on application QoS: any service whose windowed ingress
// drop ratio exceeds the threshold gets a replica (earliest pipeline
// stage first, since upstream relief propagates downstream).
type QoSPolicy struct {
	// DropThreshold is the windowed drop-ratio trigger (default 0.1).
	DropThreshold float64
	// MinSamples avoids reacting to nearly idle services (default 30).
	MinSamples uint64
}

// Name implements Policy.
func (QoSPolicy) Name() string { return "qos" }

// Decide implements Policy.
func (p QoSPolicy) Decide(sig Signal) []Decision {
	threshold := p.DropThreshold
	if threshold <= 0 {
		threshold = 0.1
	}
	minSamples := p.MinSamples
	if minSamples == 0 {
		minSamples = 30
	}
	for _, svc := range sig.Services {
		if svc.Arrived < minSamples {
			continue
		}
		if svc.DropRatio > threshold {
			return []Decision{{
				Step: svc.Step,
				Reason: fmt.Sprintf("%s drop ratio %.0f%% over threshold %.0f%%",
					svc.Step, svc.DropRatio*100, threshold*100),
			}}
		}
	}
	return nil
}

// StaticPolicy never scales — the baseline.
type StaticPolicy struct{}

// Name implements Policy.
func (StaticPolicy) Name() string { return "static" }

// Decide implements Policy.
func (StaticPolicy) Decide(Signal) []Decision { return nil }

// ScaleEvent records one applied decision.
type ScaleEvent struct {
	At      sim.Time
	Step    wire.Step
	Machine string
	Reason  string
}

// Config parameterizes an Autoscaler.
type Config struct {
	// Period is the control-loop interval (default 5 s).
	Period time.Duration
	// Hosts receive new replicas, round-robin. Required.
	Hosts []*testbed.Machine
	// MaxReplicas caps replicas per service (default 3).
	MaxReplicas int
}

// Autoscaler runs a Policy's control loop against a simulated pipeline.
type Autoscaler struct {
	eng    *sim.Engine
	p      *core.Pipeline
	col    *metrics.Collector
	policy Policy
	cfg    Config

	lastArrived [wire.NumSteps]uint64
	lastDropped [wire.NumSteps]uint64
	nextHost    int
	events      []ScaleEvent
}

// New wires an autoscaler. It panics on a missing policy or hosts —
// configuration errors in experiment construction.
func New(eng *sim.Engine, p *core.Pipeline, col *metrics.Collector, policy Policy, cfg Config) *Autoscaler {
	if policy == nil {
		panic("appaware: nil policy")
	}
	if len(cfg.Hosts) == 0 {
		panic("appaware: no scale-out hosts")
	}
	if cfg.Period <= 0 {
		cfg.Period = 5 * time.Second
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 3
	}
	return &Autoscaler{eng: eng, p: p, col: col, policy: policy, cfg: cfg}
}

// Start schedules the control loop until the deadline.
func (a *Autoscaler) Start(deadline sim.Time) {
	var tick func()
	tick = func() {
		a.evaluate()
		if a.eng.Now()+a.cfg.Period <= deadline {
			a.eng.After(a.cfg.Period, tick)
		}
	}
	a.eng.After(a.cfg.Period, tick)
}

// Events returns the applied scale-out actions.
func (a *Autoscaler) Events() []ScaleEvent { return a.events }

func (a *Autoscaler) evaluate() {
	sig := Signal{Now: a.eng.Now()}
	for step := 0; step < wire.NumSteps; step++ {
		name := wire.Step(step).String()
		arrived, _, dropped := a.col.ServiceCounters(name)
		dArr := arrived - a.lastArrived[step]
		dDrop := dropped - a.lastDropped[step]
		a.lastArrived[step] = arrived
		a.lastDropped[step] = dropped
		svc := ServiceSignal{
			Step:     wire.Step(step),
			Arrived:  dArr,
			Dropped:  dDrop,
			Replicas: len(a.p.Instances(wire.Step(step))),
		}
		if dArr > 0 {
			svc.DropRatio = float64(dDrop) / float64(dArr)
		}
		sig.Services[step] = svc
	}
	_, sig.Machines = a.p.Usage()

	for _, d := range a.policy.Decide(sig) {
		if len(a.p.Instances(d.Step)) >= a.cfg.MaxReplicas {
			continue
		}
		host := a.cfg.Hosts[a.nextHost%len(a.cfg.Hosts)]
		a.nextHost++
		if _, err := a.p.AddReplica(d.Step, host); err != nil {
			continue // host full; try another next round
		}
		a.events = append(a.events, ScaleEvent{
			At:      a.eng.Now(),
			Step:    d.Step,
			Machine: host.Name(),
			Reason:  d.Reason,
		})
	}
}
