// Package appaware implements the paper's §6 proposal: an
// application-aware control plane that consumes internal application
// metrics (exported through predefined sidecar hooks) alongside hardware
// telemetry, and scales services when the application — not the
// hardware — shows distress.
//
// Two policies make the paper's insight (I)/(IV) measurable:
//
//   - HardwarePolicy mimics today's orchestrators (Kubernetes-style):
//     it only sees CPU/GPU utilization and scales the busiest service on
//     an overloaded machine. During scAtteR's collapse, utilization stays
//     low or even declines, so this policy never reacts.
//   - QoSPolicy consumes the sidecar analytics (windowed ingress drop
//     ratios and tail latency) and scales the first distressed service in
//     pipeline order, optionally scaling idle over-provisioned services
//     back in.
//
// The decision layer here is shared by two drivers: the sim Autoscaler
// below evaluates a policy against a simulated deployment
// (core.Pipeline.AddReplica/RemoveReplica), and the orchestrator's live
// controller evaluates the same policies against merged heartbeat
// digests, acting through the scheduler and agent.Deployer. When
// scale-out is capped or unschedulable, both escalate to admission
// control (AdmissionPolicy): per-service admit/degrade/reject verdicts
// enforced at the sidecar ingress before queues saturate.
//
// Every signal a policy sees is windowed over one control period.
// Service counters are cumulative at the source, so the drivers compute
// saturating per-period deltas (robust to collector resets); machine
// utilization is likewise windowed from the devices' busy integrals —
// cumulative utilization would let a long-idle machine never cross a
// threshold during a late overload and keep a long-busy one tripped
// forever after it cooled down.
package appaware

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// AdmitState re-exports the shared admission verdict so policy consumers
// need not import core directly.
type AdmitState = core.AdmitState

// Admission verdicts, re-exported.
const (
	AdmitOK      = core.AdmitOK
	AdmitDegrade = core.AdmitDegrade
	AdmitReject  = core.AdmitReject
)

// ServiceSignal is one service's application-level telemetry over the
// last control period — what the extended sidecar exposes to the
// orchestrator.
type ServiceSignal struct {
	Step      wire.Step
	Arrived   uint64 // ingress requests in the window
	Dropped   uint64 // distress drops in the window (busy/overflow/threshold)
	DropRatio float64
	// AdmissionDropped counts frames this window refused by admission
	// control — excluded from Dropped/DropRatio so the distress signal
	// recovers while rejection holds.
	AdmissionDropped uint64
	// P95Micros/P99Micros are the service-latency tail from the live
	// digest histograms (zero when the driver has no latency source —
	// the sim collector tracks means only).
	P95Micros uint64
	P99Micros uint64
	QueueLen  int64
	Replicas  int
}

// Signal is the telemetry snapshot a policy decides on. All fields are
// windowed over the last control period.
type Signal struct {
	Now      sim.Time
	Services [wire.NumSteps]ServiceSignal
	Machines []metrics.MachineUsage // windowed hardware telemetry (per-period utilization)
}

// Verb says which direction a decision scales.
type Verb int

// Decision verbs. The zero value is scale-up, so pre-existing
// construction sites keep their meaning.
const (
	VerbScaleUp Verb = iota
	VerbScaleDown
)

// String names the verb for events and exposition.
func (v Verb) String() string {
	if v == VerbScaleDown {
		return "scale-down"
	}
	return "scale-up"
}

// Decision asks for one replica more (or fewer) of a step.
type Decision struct {
	Step   wire.Step
	Verb   Verb
	Reason string
}

// Policy maps a telemetry snapshot to scaling decisions. Implementations
// must be deterministic.
type Policy interface {
	Name() string
	Decide(sig Signal) []Decision
}

// HardwarePolicy scales on hardware utilization only — the information
// today's orchestration frameworks act on. When any machine exceeds the
// thresholds over the last control period, it scales the service with
// the highest ingress load.
type HardwarePolicy struct {
	// CPUThreshold and GPUThreshold are utilization fractions in (0, 1].
	// Zero values default to 0.8.
	CPUThreshold float64
	GPUThreshold float64
}

// Name implements Policy.
func (HardwarePolicy) Name() string { return "hardware" }

// Decide implements Policy.
func (p HardwarePolicy) Decide(sig Signal) []Decision {
	cpuT := p.CPUThreshold
	if cpuT <= 0 {
		cpuT = 0.8
	}
	gpuT := p.GPUThreshold
	if gpuT <= 0 {
		gpuT = 0.8
	}
	overloaded := false
	for _, m := range sig.Machines {
		if m.CPUUtil > cpuT || m.GPUUtil > gpuT {
			overloaded = true
			break
		}
	}
	if !overloaded {
		return nil
	}
	// Scale the busiest service by ingress volume.
	best := -1
	var bestArrived uint64
	for i, svc := range sig.Services {
		if svc.Arrived > bestArrived {
			bestArrived = svc.Arrived
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return []Decision{{
		Step:   wire.Step(best),
		Reason: fmt.Sprintf("hardware utilization above threshold; busiest service %s", wire.Step(best)),
	}}
}

// QoSPolicy scales on application QoS: any service whose windowed
// ingress drop ratio — or, when a latency SLO is set, p95 service
// latency — exceeds its threshold gets a replica (earliest pipeline
// stage first, since upstream relief propagates downstream). With
// scale-in enabled it also retires a replica from the most
// over-provisioned healthy service, so capacity follows load in both
// directions.
type QoSPolicy struct {
	// DropThreshold is the windowed drop-ratio trigger (default 0.1).
	DropThreshold float64
	// MinSamples avoids reacting to nearly idle services (default 30).
	MinSamples uint64
	// P95ThresholdMicros triggers scale-out when a service's p95 service
	// latency exceeds it — the latency-aware arm of the policy. Zero
	// disables the latency trigger (drop ratio only).
	P95ThresholdMicros uint64
	// EnableScaleDown lets the policy retire replicas of idle services.
	EnableScaleDown bool
	// IdlePerReplica is the windowed arrivals-per-replica floor under
	// which a multi-replica service with no drops counts as
	// over-provisioned (default 5, used only with EnableScaleDown).
	IdlePerReplica uint64
}

// Name implements Policy.
func (QoSPolicy) Name() string { return "qos" }

// Decide implements Policy.
func (p QoSPolicy) Decide(sig Signal) []Decision {
	threshold := p.DropThreshold
	if threshold <= 0 {
		threshold = 0.1
	}
	minSamples := p.MinSamples
	if minSamples == 0 {
		minSamples = 30
	}
	for _, svc := range sig.Services {
		if svc.Arrived < minSamples && !(svc.Dropped > 0 && svc.Arrived == 0) {
			continue
		}
		if svc.DropRatio > threshold {
			return []Decision{{
				Step: svc.Step,
				Verb: VerbScaleUp,
				Reason: fmt.Sprintf("%s drop ratio %.0f%% over threshold %.0f%%",
					svc.Step, svc.DropRatio*100, threshold*100),
			}}
		}
		if p.P95ThresholdMicros > 0 && svc.P95Micros > p.P95ThresholdMicros {
			return []Decision{{
				Step: svc.Step,
				Verb: VerbScaleUp,
				Reason: fmt.Sprintf("%s p95 %.1fms over threshold %.1fms",
					svc.Step, float64(svc.P95Micros)/1000, float64(p.P95ThresholdMicros)/1000),
			}}
		}
	}
	if !p.EnableScaleDown {
		return nil
	}
	idle := p.IdlePerReplica
	if idle == 0 {
		idle = 5
	}
	// No distress anywhere: retire one replica from the most
	// over-provisioned idle service (deepest stage first, so upstream
	// capacity — which shields the stages behind it — goes last).
	for i := len(sig.Services) - 1; i >= 0; i-- {
		svc := sig.Services[i]
		if svc.Replicas <= 1 || svc.Dropped > 0 || svc.AdmissionDropped > 0 {
			continue
		}
		if svc.Arrived/uint64(svc.Replicas) < idle {
			return []Decision{{
				Step: svc.Step,
				Verb: VerbScaleDown,
				Reason: fmt.Sprintf("%s idle: %d arrivals over %d replicas this window",
					svc.Step, svc.Arrived, svc.Replicas),
			}}
		}
	}
	return nil
}

// StaticPolicy never scales — the baseline.
type StaticPolicy struct{}

// Name implements Policy.
func (StaticPolicy) Name() string { return "static" }

// Decide implements Policy.
func (StaticPolicy) Decide(Signal) []Decision { return nil }

// AdmissionPolicy maps sustained distress at the replica cap to a
// per-service admission verdict with hysteresis: distress escalates one
// severity level at a time (admit → degrade → reject, straight to
// reject past RejectRatio), recovery steps back down one level per
// period once the windowed distress ratio falls under RecoverRatio.
// Because admission drops are excluded from the distress ratio, a
// rejected service's ratio collapses as its queue drains — which is
// exactly the signal that steps the verdict back down.
type AdmissionPolicy struct {
	// DegradeRatio is the windowed distress drop ratio that engages
	// ingress decimation (default 0.1).
	DegradeRatio float64
	// RejectRatio is the ratio that turns all ingress away (default 0.5).
	RejectRatio float64
	// RecoverRatio is the ratio under which the verdict relaxes one
	// level (default 0.02).
	RecoverRatio float64
	// MinSamples below which a window counts as recovered — an idle
	// service must never stay rejected (default 10).
	MinSamples uint64
}

func (p AdmissionPolicy) withDefaults() AdmissionPolicy {
	if p.DegradeRatio <= 0 {
		p.DegradeRatio = 0.1
	}
	if p.RejectRatio <= 0 {
		p.RejectRatio = 0.5
	}
	if p.RecoverRatio <= 0 {
		p.RecoverRatio = 0.02
	}
	if p.MinSamples == 0 {
		p.MinSamples = 10
	}
	return p
}

// Next returns the verdict for one service given its windowed signal and
// whether scale-out is exhausted (at the replica cap or unschedulable).
// While scale-out can still act, admission always relaxes toward admit —
// adding replicas is strictly preferable to turning users away.
func (p AdmissionPolicy) Next(cur AdmitState, svc ServiceSignal, capped bool) AdmitState {
	p = p.withDefaults()
	relax := func() AdmitState {
		if cur > AdmitOK {
			return cur - 1
		}
		return AdmitOK
	}
	if !capped {
		return relax()
	}
	ratio := svc.DropRatio
	if svc.Arrived < p.MinSamples && !(svc.Dropped > 0 && svc.Arrived == 0) {
		ratio = 0
	}
	switch {
	case ratio >= p.RejectRatio:
		return AdmitReject
	case ratio >= p.DegradeRatio:
		if cur < AdmitDegrade {
			return AdmitDegrade
		}
		return cur
	case ratio <= p.RecoverRatio:
		return relax()
	default:
		return cur
	}
}

// WindowDelta is the saturating counter delta the control loop windows
// cumulative telemetry with: a source reset (collector restart, worker
// replacement) makes cur < last, in which case cur itself is the best
// estimate of the period's activity — never a uint64 wraparound.
func WindowDelta(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// WindowMachines converts cumulative machine usage snapshots into
// per-period utilization: for each machine in cur, utilization is the
// busy-integral delta against prev (matched by name; absent means zero)
// over the elapsed window. Machines whose snapshots carry no busy
// integrals (CPUBusy==0 with CPUUtil>0 — a hardware-only telemetry
// source) keep their reported utilization, which for live gauges is
// already instantaneous.
func WindowMachines(prev, cur []metrics.MachineUsage, window time.Duration) []metrics.MachineUsage {
	if window <= 0 {
		return cur
	}
	last := make(map[string]metrics.MachineUsage, len(prev))
	for _, m := range prev {
		last[m.Machine] = m
	}
	out := make([]metrics.MachineUsage, len(cur))
	for i, m := range cur {
		w := m
		if m.CPUBusy > 0 || m.GPUBusy > 0 || m.CPUUtil == 0 && m.GPUUtil == 0 {
			p := last[m.Machine]
			if m.CPUSlots > 0 {
				d := m.CPUBusy - p.CPUBusy
				if d < 0 {
					d = m.CPUBusy
				}
				w.CPUUtil = float64(d) / float64(time.Duration(m.CPUSlots)*window)
			}
			if m.GPUSlots > 0 {
				d := m.GPUBusy - p.GPUBusy
				if d < 0 {
					d = m.GPUBusy
				}
				w.GPUUtil = float64(d) / float64(time.Duration(m.GPUSlots)*window)
			}
		}
		out[i] = w
	}
	return out
}

// ScaleEvent records one applied decision — a replica added or retired,
// or an admission verdict change (Machine empty, Admit set).
type ScaleEvent struct {
	At      sim.Time
	Step    wire.Step
	Verb    Verb
	Machine string
	Reason  string
	// Admission marks an admit-state transition event; Admit is the new
	// verdict.
	Admission bool
	Admit     AdmitState
}

// Config parameterizes an Autoscaler.
type Config struct {
	// Period is the control-loop interval (default 5 s).
	Period time.Duration
	// Hosts receive new replicas, round-robin. Required.
	Hosts []*testbed.Machine
	// MaxReplicas caps replicas per service (default 3).
	MaxReplicas int
	// MinReplicas floors scale-in (default 1).
	MinReplicas int
	// AdmissionEnabled escalates to admission control when a scale-up
	// decision cannot be applied (cap reached or no host fits).
	AdmissionEnabled bool
	// Admission tunes the escalation thresholds (defaults applied).
	Admission AdmissionPolicy
}

// Autoscaler runs a Policy's control loop against a simulated pipeline.
type Autoscaler struct {
	eng    *sim.Engine
	p      *core.Pipeline
	col    *metrics.Collector
	policy Policy
	cfg    Config

	lastArrived   [wire.NumSteps]uint64
	lastDropped   [wire.NumSteps]uint64
	lastAdmission [wire.NumSteps]uint64
	lastMachines  []metrics.MachineUsage
	lastEval      sim.Time
	nextHost      int
	events        []ScaleEvent
}

// New wires an autoscaler. It panics on a missing policy or hosts —
// configuration errors in experiment construction.
func New(eng *sim.Engine, p *core.Pipeline, col *metrics.Collector, policy Policy, cfg Config) *Autoscaler {
	if policy == nil {
		panic("appaware: nil policy")
	}
	if len(cfg.Hosts) == 0 {
		panic("appaware: no scale-out hosts")
	}
	if cfg.Period <= 0 {
		cfg.Period = 5 * time.Second
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 3
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	cfg.Admission = cfg.Admission.withDefaults()
	return &Autoscaler{eng: eng, p: p, col: col, policy: policy, cfg: cfg}
}

// Start schedules the control loop until the deadline.
func (a *Autoscaler) Start(deadline sim.Time) {
	var tick func()
	tick = func() {
		a.evaluate()
		if a.eng.Now()+a.cfg.Period <= deadline {
			a.eng.After(a.cfg.Period, tick)
		}
	}
	a.eng.After(a.cfg.Period, tick)
}

// Events returns the applied scale and admission actions.
func (a *Autoscaler) Events() []ScaleEvent { return a.events }

// signal assembles the windowed telemetry snapshot for this period.
func (a *Autoscaler) signal() Signal {
	now := a.eng.Now()
	sig := Signal{Now: now}
	for step := 0; step < wire.NumSteps; step++ {
		name := wire.Step(step).String()
		arrived, _, dropped := a.col.ServiceCounters(name)
		admissionDropped := a.col.ServiceAdmissionDrops(name)
		dArr := WindowDelta(arrived, a.lastArrived[step])
		dDrop := WindowDelta(dropped, a.lastDropped[step])
		dAdm := WindowDelta(admissionDropped, a.lastAdmission[step])
		a.lastArrived[step] = arrived
		a.lastDropped[step] = dropped
		a.lastAdmission[step] = admissionDropped
		// Arrived counts every ingress request including ones admission
		// later refused; Dropped carries distress drops only, so the
		// ratio is the service's own health, not the controller's hand.
		svc := ServiceSignal{
			Step:             wire.Step(step),
			Arrived:          dArr,
			Dropped:          dDrop,
			AdmissionDropped: dAdm,
			Replicas:         len(a.p.Instances(wire.Step(step))),
		}
		switch {
		case dArr > 0:
			svc.DropRatio = float64(dDrop) / float64(dArr)
		case dDrop > 0:
			// Drops with zero arrivals: the service worked off (and shed)
			// backlog while admitting nothing new — full distress, not
			// perfect health.
			svc.DropRatio = 1
		}
		sig.Services[step] = svc
	}
	_, cum := a.p.Usage()
	sig.Machines = WindowMachines(a.lastMachines, cum, time.Duration(now-a.lastEval))
	a.lastMachines = cum
	a.lastEval = now
	return sig
}

func (a *Autoscaler) evaluate() {
	sig := a.signal()

	for _, d := range a.policy.Decide(sig) {
		switch d.Verb {
		case VerbScaleUp:
			a.scaleUp(sig, d)
		case VerbScaleDown:
			if len(a.p.Instances(d.Step)) <= a.cfg.MinReplicas {
				continue
			}
			if err := a.p.RemoveReplica(d.Step); err != nil {
				continue
			}
			a.events = append(a.events, ScaleEvent{
				At:     a.eng.Now(),
				Step:   d.Step,
				Verb:   VerbScaleDown,
				Reason: d.Reason,
			})
		}
	}

	// Admission recovery: verdicts relax as the distress ratio falls,
	// independent of whether the policy decided anything this period.
	if a.cfg.AdmissionEnabled {
		for step := 0; step < wire.NumSteps; step++ {
			st := wire.Step(step)
			cur := a.p.AdmitStateOf(st)
			if cur == core.AdmitOK {
				continue
			}
			capped := len(a.p.Instances(st)) >= a.cfg.MaxReplicas
			next := a.cfg.Admission.Next(cur, sig.Services[step], capped)
			if next != cur {
				a.setAdmit(st, next, "windowed distress ratio recovered")
			}
		}
	}
}

// scaleUp applies one scale-out decision, trying every host round-robin;
// when the service is capped or no host fits, it escalates to admission
// control instead (if enabled).
func (a *Autoscaler) scaleUp(sig Signal, d Decision) {
	step := d.Step
	if len(a.p.Instances(step)) >= a.cfg.MaxReplicas {
		a.escalate(sig, step, "replica cap reached: "+d.Reason)
		return
	}
	for try := 0; try < len(a.cfg.Hosts); try++ {
		host := a.cfg.Hosts[a.nextHost%len(a.cfg.Hosts)]
		a.nextHost++
		if _, err := a.p.AddReplica(step, host); err != nil {
			continue // host full; try the next
		}
		a.events = append(a.events, ScaleEvent{
			At:      a.eng.Now(),
			Step:    step,
			Verb:    VerbScaleUp,
			Machine: host.Name(),
			Reason:  d.Reason,
		})
		return
	}
	a.escalate(sig, step, "unschedulable: "+d.Reason)
}

// escalate raises a service's admission verdict when scale-out cannot
// relieve it.
func (a *Autoscaler) escalate(sig Signal, step wire.Step, reason string) {
	if !a.cfg.AdmissionEnabled {
		return
	}
	cur := a.p.AdmitStateOf(step)
	next := a.cfg.Admission.Next(cur, sig.Services[step], true)
	if next != cur {
		a.setAdmit(step, next, reason)
	}
}

func (a *Autoscaler) setAdmit(step wire.Step, next AdmitState, reason string) {
	a.p.SetAdmitState(step, next)
	a.events = append(a.events, ScaleEvent{
		At:        a.eng.Now(),
		Step:      step,
		Reason:    reason,
		Admission: true,
		Admit:     next,
	})
}
