package appaware

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/wire"
)

func TestWindowDelta(t *testing.T) {
	cases := []struct {
		name      string
		cur, last uint64
		want      uint64
	}{
		{"first tick", 120, 0, 120},
		{"steady", 150, 120, 30},
		{"idle window", 150, 150, 0},
		// A source reset (collector restart, worker replacement) makes
		// cur < last; cur is the period's best estimate — never wraparound.
		{"reset", 40, 150, 40},
		{"reset to zero", 0, 150, 0},
	}
	for _, c := range cases {
		if got := WindowDelta(c.cur, c.last); got != c.want {
			t.Errorf("%s: WindowDelta(%d, %d) = %d, want %d", c.name, c.cur, c.last, got, c.want)
		}
	}
}

func TestWindowMachinesIntegralDeltas(t *testing.T) {
	// The satellite bugfix: cumulative utilization hides late overloads.
	// A machine idle for 95 s then saturated for 5 s reports ~5% cumulative
	// utilization — but the windowed view over the last 5 s must read ~100%.
	window := 5 * time.Second
	prev := []metrics.MachineUsage{{
		Machine: "E1", CPUSlots: 4, CPUBusy: 2 * time.Second, CPUUtil: 0.005,
	}}
	cur := []metrics.MachineUsage{{
		Machine: "E1", CPUSlots: 4, CPUBusy: 2*time.Second + 20*time.Second, CPUUtil: 0.055,
	}}
	out := WindowMachines(prev, cur, window)
	if len(out) != 1 {
		t.Fatalf("machines = %d", len(out))
	}
	if got := out[0].CPUUtil; got < 0.99 || got > 1.01 {
		t.Errorf("windowed CPUUtil = %.3f, want ~1.0 (20s busy over 4 slots x 5s)", got)
	}
}

func TestWindowMachinesFirstWindowAndIdle(t *testing.T) {
	window := 10 * time.Second
	cur := []metrics.MachineUsage{{
		Machine: "E2", GPUSlots: 2, GPUBusy: 4 * time.Second, GPUUtil: 0.9,
	}}
	// First window: no prev entry means the full integral is this period's.
	out := WindowMachines(nil, cur, window)
	if got := out[0].GPUUtil; got < 0.19 || got > 0.21 {
		t.Errorf("first-window GPUUtil = %.3f, want 0.2", got)
	}
	// Idle window: integral unchanged, utilization must drop to zero even
	// though the machine was busy earlier (the long-busy-forever-tripped bug).
	out = WindowMachines(cur, cur, window)
	if got := out[0].GPUUtil; got != 0 {
		t.Errorf("idle-window GPUUtil = %.3f, want 0", got)
	}
}

func TestWindowMachinesResetAndGaugePassthrough(t *testing.T) {
	window := 5 * time.Second
	// Device restart: the busy integral went backwards. The new integral is
	// the period's best estimate, same saturating rule as WindowDelta.
	prev := []metrics.MachineUsage{{Machine: "E1", CPUSlots: 2, CPUBusy: 30 * time.Second}}
	cur := []metrics.MachineUsage{{Machine: "E1", CPUSlots: 2, CPUBusy: time.Second}}
	out := WindowMachines(prev, cur, window)
	if got := out[0].CPUUtil; got < 0.09 || got > 0.11 {
		t.Errorf("post-reset CPUUtil = %.3f, want 0.1", got)
	}
	// A hardware-only source reports instantaneous gauges with no busy
	// integrals; those pass through untouched.
	gauge := []metrics.MachineUsage{{Machine: "n1", CPUUtil: 0.7, GPUUtil: 0.4}}
	out = WindowMachines(nil, gauge, window)
	if out[0].CPUUtil != 0.7 || out[0].GPUUtil != 0.4 {
		t.Errorf("gauge passthrough mangled: %+v", out[0])
	}
	// Zero window: nothing to normalize by, snapshots pass through.
	out = WindowMachines(prev, cur, 0)
	if out[0].CPUBusy != time.Second {
		t.Errorf("zero-window output = %+v", out[0])
	}
}

func TestQoSPolicyZeroArrivalDistress(t *testing.T) {
	// The DropRatio bugfix: a window with drops but zero arrivals is full
	// distress (backlog shed while nothing was admitted), and MinSamples
	// must not mask it.
	var sig Signal
	sig.Services[wire.StepSIFT] = ServiceSignal{
		Step: wire.StepSIFT, Arrived: 0, Dropped: 12, DropRatio: 1,
	}
	d := (QoSPolicy{}).Decide(sig)
	if len(d) != 1 || d[0].Step != wire.StepSIFT || d[0].Verb != VerbScaleUp {
		t.Errorf("decisions = %+v, want scale-up sift", d)
	}
}

func TestQoSPolicyLatencyTrigger(t *testing.T) {
	var sig Signal
	sig.Services[wire.StepEncoding] = ServiceSignal{
		Step: wire.StepEncoding, Arrived: 100, P95Micros: 250_000,
	}
	p := QoSPolicy{P95ThresholdMicros: 200_000}
	d := p.Decide(sig)
	if len(d) != 1 || d[0].Step != wire.StepEncoding || d[0].Verb != VerbScaleUp {
		t.Errorf("decisions = %+v, want latency scale-up encoding", d)
	}
	// Without the SLO configured the same signal is healthy.
	if d := (QoSPolicy{}).Decide(sig); d != nil {
		t.Errorf("latency trigger fired with no SLO: %+v", d)
	}
}

func TestQoSPolicyScaleDown(t *testing.T) {
	var sig Signal
	// Two over-provisioned idle services: the deepest stage retires first
	// (upstream capacity shields the stages behind it).
	sig.Services[wire.StepSIFT] = ServiceSignal{Step: wire.StepSIFT, Arrived: 2, Replicas: 3}
	sig.Services[wire.StepLSH] = ServiceSignal{Step: wire.StepLSH, Arrived: 1, Replicas: 2}
	p := QoSPolicy{EnableScaleDown: true}
	d := p.Decide(sig)
	if len(d) != 1 || d[0].Step != wire.StepLSH || d[0].Verb != VerbScaleDown {
		t.Errorf("decisions = %+v, want scale-down lsh", d)
	}
	// Any distress suppresses scale-in entirely.
	sig.Services[wire.StepPrimary] = ServiceSignal{
		Step: wire.StepPrimary, Arrived: 100, Dropped: 50, DropRatio: 0.5,
	}
	d = p.Decide(sig)
	if len(d) != 1 || d[0].Verb != VerbScaleUp {
		t.Errorf("decisions = %+v, want scale-up only", d)
	}
	// Disabled by default.
	sig.Services[wire.StepPrimary] = ServiceSignal{Step: wire.StepPrimary}
	if d := (QoSPolicy{}).Decide(sig); d != nil {
		t.Errorf("scale-down fired while disabled: %+v", d)
	}
}

func TestAdmissionPolicyHysteresis(t *testing.T) {
	p := AdmissionPolicy{} // defaults: degrade 0.1, reject 0.5, recover 0.02
	svc := func(arrived, dropped uint64, ratio float64) ServiceSignal {
		return ServiceSignal{Arrived: arrived, Dropped: dropped, DropRatio: ratio}
	}
	cases := []struct {
		name   string
		cur    AdmitState
		svc    ServiceSignal
		capped bool
		want   AdmitState
	}{
		{"healthy stays admitted", AdmitOK, svc(100, 0, 0), true, AdmitOK},
		{"distress escalates one level", AdmitOK, svc(100, 20, 0.2), true, AdmitDegrade},
		{"severe goes straight to reject", AdmitOK, svc(100, 80, 0.8), true, AdmitReject},
		{"degrade holds in the dead band", AdmitDegrade, svc(100, 5, 0.05), true, AdmitDegrade},
		{"degrade does not re-escalate below reject", AdmitDegrade, svc(100, 20, 0.2), true, AdmitDegrade},
		{"recovery steps down one level", AdmitReject, svc(100, 1, 0.01), true, AdmitDegrade},
		{"recovery from degrade reaches admit", AdmitDegrade, svc(100, 0, 0), true, AdmitOK},
		// Below MinSamples a window counts as recovered — an idle service
		// must never stay rejected…
		{"idle window relaxes despite ratio", AdmitReject, svc(4, 4, 1), true, AdmitDegrade},
		// …unless it's the zero-arrival backlog-shed distress signal.
		{"zero-arrival distress holds", AdmitReject, svc(0, 9, 1), true, AdmitReject},
		// While scale-out can still act, admission always relaxes.
		{"uncapped relaxes under distress", AdmitReject, svc(100, 80, 0.8), false, AdmitDegrade},
		{"uncapped admit stays admit", AdmitOK, svc(100, 80, 0.8), false, AdmitOK},
	}
	for _, c := range cases {
		if got := p.Next(c.cur, c.svc, c.capped); got != c.want {
			t.Errorf("%s: Next(%v, %+v, capped=%v) = %v, want %v",
				c.name, c.cur, c.svc, c.capped, got, c.want)
		}
	}
}

// TestPolicyDivergenceOnLowUtilizationCollapse is the regression suite
// for the paper's insight (I)/(IV) at the decision layer: identical
// signals — heavy application distress, cool hardware — must leave the
// hardware policy inert while the QoS policy scales, then scales back
// in when the distress clears.
func TestPolicyDivergenceOnLowUtilizationCollapse(t *testing.T) {
	var collapse Signal
	collapse.Machines = []metrics.MachineUsage{
		{Machine: "E1", CPUUtil: 0.22, GPUUtil: 0.15},
		{Machine: "E2", CPUUtil: 0.05, GPUUtil: 0.0},
	}
	collapse.Services[wire.StepSIFT] = ServiceSignal{
		Step: wire.StepSIFT, Arrived: 300, Dropped: 180, DropRatio: 0.6, Replicas: 1,
	}
	if d := (HardwarePolicy{}).Decide(collapse); d != nil {
		t.Errorf("hardware policy reacted to a low-utilization collapse: %+v", d)
	}
	qos := QoSPolicy{EnableScaleDown: true}
	d := qos.Decide(collapse)
	if len(d) != 1 || d[0].Step != wire.StepSIFT || d[0].Verb != VerbScaleUp {
		t.Fatalf("qos decisions = %+v, want scale-up sift", d)
	}

	// After relief: no drops, load light relative to the added replicas —
	// the QoS policy hands capacity back, the hardware policy still silent.
	var relieved Signal
	relieved.Machines = collapse.Machines
	relieved.Services[wire.StepSIFT] = ServiceSignal{
		Step: wire.StepSIFT, Arrived: 8, Replicas: 3,
	}
	if d := (HardwarePolicy{}).Decide(relieved); d != nil {
		t.Errorf("hardware policy reacted post-relief: %+v", d)
	}
	d = qos.Decide(relieved)
	if len(d) != 1 || d[0].Step != wire.StepSIFT || d[0].Verb != VerbScaleDown {
		t.Errorf("qos post-relief decisions = %+v, want scale-down sift", d)
	}
}
