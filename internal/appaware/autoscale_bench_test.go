package appaware

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
)

// BenchmarkAutoscalePolicy is the control-loop quality headline: the same
// 4-client saturation ramp on E1 (scAtteR++ mode) under static, hardware,
// and qos policies, with E2 available for scale-out. Each sub-benchmark
// reports
//
//	fps        — delivered frames per second per client over the run
//	             (the paper targets 30)
//	react_s    — virtual seconds until the first applied scale-out; the
//	             full run length when the policy never acts
//	actions    — replicas added over the run
//
// so BENCH_autoscale.json records how much QoS each policy buys per
// action. In this queued (scAtteR++) collapse the shared GPU does
// saturate, so the utilization baseline eventually fires — but it scales
// the busiest-by-ingress stage rather than the distressed one, spending
// more actions for less delivered FPS than the app-aware policy.
func BenchmarkAutoscalePolicy(b *testing.B) {
	const duration = 60 * time.Second
	cases := []struct {
		name   string
		policy Policy
	}{
		{"static", StaticPolicy{}},
		{"hardware", HardwarePolicy{}},
		{"qos", QoSPolicy{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var fps, react, actions float64
			for i := 0; i < b.N; i++ {
				w := newWorld(42)
				p := core.NewPipeline(w.eng, w.fabric, w.col, core.PlaceAll(w.e1),
					core.DefaultProfiles(), core.Options{Mode: core.ModeScatterPP})
				for c := 0; c < 4; c++ {
					p.AddClient(core.ClientConfig{
						ID: uint32(c + 1), FPS: 30,
						Start: sim.Time(c) * 5 * time.Second,
						Stop:  duration,
					})
				}
				a := New(w.eng, p, w.col, tc.policy, Config{
					Period: 5 * time.Second,
					Hosts:  []*testbed.Machine{w.e2},
				})
				a.Start(duration)
				w.eng.Run(duration + 500*time.Millisecond)
				_, machines := p.Usage()
				s := w.col.Summarize(duration, 4, machines)
				fps = s.FPSPerClient
				react = duration.Seconds()
				actions = 0
				for _, ev := range a.Events() {
					if ev.Admission || ev.Verb != VerbScaleUp {
						continue
					}
					if actions == 0 {
						react = time.Duration(ev.At).Seconds()
					}
					actions++
				}
			}
			b.ReportMetric(fps, "fps")
			b.ReportMetric(react, "react_s")
			b.ReportMetric(actions, "actions")
		})
	}
}
