package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// siftReplicatedPlacement puts everything on e1 except sift, which gets a
// second replica on e2 — the smallest topology where routing matters.
func siftReplicatedPlacement(e *env) Placement {
	pl := PlaceAll(e.e1)
	pl[wire.StepSIFT] = []*testbed.Machine{e.e1, e.e2}
	return pl
}

// TestWeightedRoutingColdIsIdenticalToRR pins the acceptance criterion in
// the sim: with windows that can never warm (huge MinSamples), a
// WeightedRouting run is bit-identical to the plain round-robin run —
// same selections, same drops, same latencies. RouteStats.Seed is pinned
// so the engine RNG draw sequence matches the disabled run.
func TestWeightedRoutingColdIsIdenticalToRR(t *testing.T) {
	run := func(opts Options) metrics.Summary {
		e := newEnv(42)
		p := NewPipeline(e.eng, e.fabric, e.col, siftReplicatedPlacement(e), DefaultProfiles(), opts)
		return e.run(p, 3, 15*time.Second)
	}
	plain := run(Options{Mode: ModeScatterPP})
	cold := run(Options{Mode: ModeScatterPP, WeightedRouting: true,
		RouteStats: routestats.Config{MinSamples: 1 << 30, Seed: 99}})
	if !reflect.DeepEqual(plain, cold) {
		t.Errorf("cold weighted routing diverged from plain round-robin:\nplain: %+v\ncold:  %+v", plain, cold)
	}
}

// TestWeightedRoutingShedsSlowReplica is the sim-side policy check: with
// one sift replica behind a lossy, slow link, stats-driven selection
// shifts traffic to the healthy replica and delivers more frames than
// round-robin over the identical world.
func TestWeightedRoutingShedsSlowReplica(t *testing.T) {
	sick := netem.LinkConfig{Name: "sick-lan", RTT: 40 * time.Millisecond,
		BandwidthBps: 100e6, Loss: 0.3}
	run := func(weighted bool) (metrics.Summary, []routestats.RouteDigest) {
		e := newEnv(43)
		e.fabric.SetLink("E1", "E2", sick)
		opts := Options{Mode: ModeScatterPP}
		if weighted {
			opts.WeightedRouting = true
			opts.RouteStats = routestats.Config{Seed: 7}
		}
		p := NewPipeline(e.eng, e.fabric, e.col, siftReplicatedPlacement(e), DefaultProfiles(), opts)
		// One client: E1 alone can absorb the full load, so offloading to
		// the sick replica buys nothing and its link loss dominates.
		return e.run(p, 1, 20*time.Second), p.RouteDigests()
	}
	rr, _ := run(false)
	weighted, digests := run(true)

	if weighted.SuccessRate <= rr.SuccessRate {
		t.Errorf("weighted routing did not beat RR under a sick replica: weighted %.3f <= rr %.3f",
			weighted.SuccessRate, rr.SuccessRate)
	}
	var healthy, sickD *routestats.RouteDigest
	for i, d := range digests {
		if d.Step != wire.StepSIFT.String() {
			continue
		}
		if d.Replica == "E2#1" {
			sickD = &digests[i]
		} else {
			healthy = &digests[i]
		}
	}
	if healthy == nil || sickD == nil {
		t.Fatalf("sift digests missing: %+v", digests)
	}
	if sickD.Sent*2 >= healthy.Sent {
		t.Errorf("sick replica was not shed: sick sent %d vs healthy %d", sickD.Sent, healthy.Sent)
	}
	if sickD.LossRatio < 0.1 {
		t.Errorf("sick replica loss window = %.3f, want the injected loss visible", sickD.LossRatio)
	}
	if routestats.ParseState(sickD.State).Rank() < routestats.StateDegraded.Rank() {
		t.Errorf("sick replica state = %s, want at least degraded", sickD.State)
	}
}

// TestWeightedRoutingScaleOutSyncsWindows checks AddReplica keeps the
// route table coherent: the new replica gets a window, survivors keep
// their counters.
func TestWeightedRoutingScaleOutSyncsWindows(t *testing.T) {
	e := newEnv(44)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatterPP, WeightedRouting: true, RouteStats: routestats.Config{Seed: 5}})
	p.AddClient(ClientConfig{ID: 1, FPS: 30, Stop: 2 * time.Second})
	e.eng.Run(2 * time.Second)
	var before uint64
	for _, d := range p.RouteDigests() {
		if d.Step == wire.StepSIFT.String() {
			before = d.Sent
		}
	}
	if before == 0 {
		t.Fatal("sift window saw no traffic before scale-out")
	}
	if _, err := p.AddReplica(wire.StepSIFT, e.e2); err != nil {
		t.Fatal(err)
	}
	var siftWindows int
	for _, d := range p.RouteDigests() {
		if d.Step != wire.StepSIFT.String() {
			continue
		}
		siftWindows++
		if d.Replica == "E1#0" && d.Sent != before {
			t.Errorf("survivor window lost its counters: %d != %d", d.Sent, before)
		}
	}
	if siftWindows != 2 {
		t.Errorf("sift windows after scale-out = %d, want 2", siftWindows)
	}
}
