package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/vision/fisher"
	"github.com/edge-mar/scatter/internal/vision/imgproc"
	"github.com/edge-mar/scatter/internal/vision/lsh"
	"github.com/edge-mar/scatter/internal/vision/match"
	"github.com/edge-mar/scatter/internal/vision/orb"
	"github.com/edge-mar/scatter/internal/vision/pca"
	"github.com/edge-mar/scatter/internal/vision/sift"
	"github.com/edge-mar/scatter/internal/wire"
)

// Processor is one real pipeline service: it transforms a frame's payload
// and advances its step. Processors are used by the real UDP runtime and
// the in-process example pipelines; the experiment testbed models their
// timing instead of executing them.
type Processor interface {
	Step() wire.Step
	Process(fr *wire.Frame) error
}

// BatchHandler is an optional extension of Processor for services whose
// kernels can amortize setup cost across several frames. ProcessBatch
// must behave exactly as calling Process on each frame in slice order —
// bit-identical payloads and step advancement, with the i-th returned
// error (nil on success) matching what Process would have returned — so
// callers may mix batched and per-frame dispatch freely.
type BatchHandler interface {
	Processor
	ProcessBatch(frs []*wire.Frame) []error
}

// Errors shared by the real processors.
var (
	ErrMissingSection = errors.New("core: payload missing required section")
	ErrStateMiss      = errors.New("core: sift state not found")
)

func decodeFor(fr *wire.Frame, step wire.Step) (*Payload, error) {
	if fr.Step != step {
		return nil, fmt.Errorf("core: %s received frame at step %s", step, fr.Step)
	}
	return DecodePayload(fr.Payload)
}

func advance(fr *wire.Frame, p *Payload) {
	fr.Payload = p.Encode()
	fr.Step = fr.Step.Next()
}

// Primary implements the pre-processing service: grayscaling (the client
// sends 8-bit grayscale already quantized by the capture path) and
// dimension reduction to the analysis resolution.
type Primary struct {
	// TargetW/TargetH is the analysis resolution (defaults 320×180).
	TargetW, TargetH int

	gate *FastPathGate
}

// NewPrimary returns the pre-processing service.
func NewPrimary(targetW, targetH int) *Primary {
	if targetW <= 0 {
		targetW = 320
	}
	if targetH <= 0 {
		targetH = 180
	}
	return &Primary{TargetW: targetW, TargetH: targetH}
}

// Step implements Processor.
func (s *Primary) Step() wire.Step { return wire.StepPrimary }

// SetFastPath installs the tracker-gated recognition fast path: before
// paying for image decode, Process consults the gate and — when the
// client's tracker is confident — rewrites the frame as the terminal
// fast-path detection payload at StepDone, skipping sift→fisher→lsh→match
// entirely. A nil or disabled gate leaves Process bit-identical to a
// build without the gate.
func (s *Primary) SetFastPath(g *FastPathGate) { s.gate = g }

// Process implements Processor.
func (s *Primary) Process(fr *wire.Frame) error {
	if fr.Step == wire.StepPrimary && s.gate.Enabled() {
		// The gate copies the pre-encoded verdict into the frame's own
		// buffer under its lock (append into Payload[:0], reusing pooled
		// capacity), so the frame never aliases gate-owned bytes.
		if out, ok := s.gate.VerdictAppend(fr.ClientID, fr.FrameNo, fr.Payload[:0]); ok {
			fr.Payload = out
			fr.Step = wire.StepDone
			return nil
		}
	}
	p, err := decodeFor(fr, wire.StepPrimary)
	if err != nil {
		return err
	}
	if p.Image == nil {
		return fmt.Errorf("%w: image at primary", ErrMissingSection)
	}
	img := payloadToGray(p.Image)
	if img.W != s.TargetW || img.H != s.TargetH {
		img = imgproc.Resize(img, s.TargetW, s.TargetH)
	}
	p.Image = grayToPayload(img)
	advance(fr, p)
	return nil
}

func payloadToGray(ip *ImagePayload) *imgproc.Gray {
	g := imgproc.NewGray(ip.W, ip.H)
	for i, v := range ip.Pix {
		g.Pix[i] = float32(v) / 255
	}
	return g
}

func grayToPayload(g *imgproc.Gray) *ImagePayload {
	out := &ImagePayload{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	for i, v := range g.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out.Pix[i] = uint8(v*255 + 0.5)
	}
	return out
}

// GrayToPayload converts an image for client submission.
func GrayToPayload(g *imgproc.Gray) *ImagePayload { return grayToPayload(g) }

// Extractor converts a grayscale frame into features. The default is the
// SIFT implementation; NewFastSIFT substitutes the ORB extractor (the
// "faster model" option the paper's §5 discusses).
type Extractor func(img *imgproc.Gray) *Features

// SIFT implements the object-detection service. In stateful (scAtteR)
// mode it retains each frame's features in memory until matching fetches
// them or they time out; in stateless (scAtteR++) mode the features ride
// in the frame payload.
type SIFT struct {
	extract   Extractor
	stateless bool

	mu     sync.Mutex
	states map[stateKey]*siftState
	// StateTimeout bounds state retention (default 1s).
	StateTimeout time.Duration
	// now allows tests to control time; defaults to time.Now.
	now func() time.Time
}

type siftState struct {
	features *Features
	expires  time.Time
}

// NewSIFT returns the detection service with the SIFT extractor.
// maxFeatures caps per-frame features (0 = no cap); stateless selects
// scAtteR++ behaviour.
func NewSIFT(maxFeatures int, stateless bool) *SIFT {
	cfg := sift.Defaults()
	cfg.MaxFeatures = maxFeatures
	det := sift.New(cfg)
	return NewDetectService(func(img *imgproc.Gray) *Features {
		feats := det.Detect(img)
		f := &Features{
			Keypoints:   make([]FeatureKeypoint, len(feats)),
			Descriptors: make([]sift.Descriptor, len(feats)),
		}
		for i, ft := range feats {
			f.Keypoints[i] = FeatureKeypoint{
				X: float32(ft.X), Y: float32(ft.Y),
				Sigma: float32(ft.Sigma), Orientation: float32(ft.Orientation),
			}
			f.Descriptors[i] = ft.Desc
		}
		return f
	}, stateless)
}

// NewFastSIFT returns the detection service with the ORB extractor —
// several times faster than SIFT at the cost of binary (embedded)
// descriptors. 256-bit BRIEF descriptors are folded into the 128-d
// descriptor space by summing ±1 bit pairs, preserving the Hamming
// metric up to quantization so the downstream PCA/Fisher/LSH/matching
// stages work unchanged.
func NewFastSIFT(maxFeatures int, stateless bool) *SIFT {
	det := orb.New(orb.Config{MaxFeatures: maxFeatures})
	return NewDetectService(func(img *imgproc.Gray) *Features {
		feats := det.Detect(img)
		f := &Features{
			Keypoints:   make([]FeatureKeypoint, len(feats)),
			Descriptors: make([]sift.Descriptor, len(feats)),
		}
		for i := range feats {
			ft := &feats[i]
			f.Keypoints[i] = FeatureKeypoint{
				X: float32(ft.X), Y: float32(ft.Y),
				Sigma: 1, Orientation: float32(ft.Orientation),
			}
			f.Descriptors[i] = foldORB(&ft.Desc)
		}
		return f
	}, stateless)
}

// foldORB folds a 256-bit ORB descriptor into the 128-d float descriptor
// space: component k sums bits 2k and 2k+1 as ±1 and the vector is
// L2-normalized.
func foldORB(d *orb.Descriptor) sift.Descriptor {
	var out sift.Descriptor
	var norm float64
	for k := 0; k < sift.DescriptorSize; k++ {
		v := float32(0)
		for _, bit := range [2]int{2 * k, 2*k + 1} {
			if d[bit/64]&(1<<uint(bit%64)) != 0 {
				v++
			} else {
				v--
			}
		}
		out[k] = v
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for k := range out {
			out[k] *= inv
		}
	}
	return out
}

// NewDetectService wraps an arbitrary extractor with the detection
// service's state semantics.
func NewDetectService(extract Extractor, stateless bool) *SIFT {
	if extract == nil {
		panic("core: nil extractor")
	}
	return &SIFT{
		extract:      extract,
		stateless:    stateless,
		states:       make(map[stateKey]*siftState),
		StateTimeout: time.Second,
		now:          time.Now,
	}
}

// Step implements Processor.
func (s *SIFT) Step() wire.Step { return wire.StepSIFT }

// Stateless reports the configured mode.
func (s *SIFT) Stateless() bool { return s.stateless }

// StateCount returns the number of retained frame states.
func (s *SIFT) StateCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.states)
}

// Process implements Processor.
func (s *SIFT) Process(fr *wire.Frame) error {
	p, err := decodeFor(fr, wire.StepSIFT)
	if err != nil {
		return err
	}
	if p.Image == nil {
		return fmt.Errorf("%w: image at sift", ErrMissingSection)
	}
	img := payloadToGray(p.Image)
	f := s.extract(img)
	p.Image = nil
	p.Features = f
	if !s.stateless {
		// Retain state for matching; strip it from the forwarded frame so
		// downstream stages carry only what they need.
		s.mu.Lock()
		s.expireLocked()
		s.states[stateKey{client: fr.ClientID, frame: fr.FrameNo}] = &siftState{
			features: f,
			expires:  s.now().Add(s.StateTimeout),
		}
		s.mu.Unlock()
	}
	fr.Stateless = s.stateless
	advance(fr, p)
	if !s.stateless {
		// Downstream carries only descriptors for encoding; keypoints are
		// fetched back by matching. (Descriptors are needed by encoding.)
		return nil
	}
	return nil
}

func (s *SIFT) expireLocked() {
	now := s.now()
	for k, st := range s.states {
		if now.After(st.expires) {
			delete(s.states, k)
		}
	}
}

// Fetch returns and removes the retained features for a frame — the
// request matching issues in the stateful pipeline.
func (s *SIFT) Fetch(clientID uint32, frameNo uint64) (*Features, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	key := stateKey{client: clientID, frame: frameNo}
	st, ok := s.states[key]
	if !ok {
		return nil, fmt.Errorf("%w: client %d frame %d", ErrStateMiss, clientID, frameNo)
	}
	delete(s.states, key)
	return st.features, nil
}

// Encoding implements the PCA + Fisher encoding service.
type Encoding struct {
	proj *pca.Projection
	enc  *fisher.Encoder
}

// NewEncoding returns the encoding service over a trained model.
func NewEncoding(proj *pca.Projection, enc *fisher.Encoder) *Encoding {
	if proj == nil || enc == nil {
		panic("core: NewEncoding with nil model")
	}
	return &Encoding{proj: proj, enc: enc}
}

// Step implements Processor.
func (s *Encoding) Step() wire.Step { return wire.StepEncoding }

// Process implements Processor.
func (s *Encoding) Process(fr *wire.Frame) error {
	p, err := decodeFor(fr, wire.StepEncoding)
	if err != nil {
		return err
	}
	if p.Features == nil {
		return fmt.Errorf("%w: features at encoding", ErrMissingSection)
	}
	p.Fisher = s.encodeFeatures(p.Features)
	if !fr.Stateless {
		// Stateful pipeline: only the Fisher vector travels on.
		p.Features = nil
	}
	advance(fr, p)
	return nil
}

// ProcessBatch implements BatchHandler: descriptor sets for the whole
// batch are projected up front and encoded through fisher.EncodeBatch,
// which shares one gradient accumulator across frames.
func (s *Encoding) ProcessBatch(frs []*wire.Frame) []error {
	errs := make([]error, len(frs))
	payloads := make([]*Payload, len(frs))
	reduced := make([][][]float32, 0, len(frs))
	live := make([]int, 0, len(frs))
	for i, fr := range frs {
		p, err := decodeFor(fr, wire.StepEncoding)
		if err != nil {
			errs[i] = err
			continue
		}
		if p.Features == nil {
			errs[i] = fmt.Errorf("%w: features at encoding", ErrMissingSection)
			continue
		}
		r := make([][]float32, len(p.Features.Descriptors))
		for j := range p.Features.Descriptors {
			r[j] = s.proj.Project(p.Features.Descriptors[j][:])
		}
		payloads[i] = p
		reduced = append(reduced, r)
		live = append(live, i)
	}
	vecs := s.enc.EncodeBatch(reduced)
	for b, i := range live {
		p := payloads[i]
		p.Fisher = vecs[b]
		if !frs[i].Stateless {
			p.Features = nil
		}
		advance(frs[i], p)
	}
	return errs
}

func (s *Encoding) encodeFeatures(f *Features) []float32 {
	reduced := make([][]float32, len(f.Descriptors))
	for i := range f.Descriptors {
		reduced[i] = s.proj.Project(f.Descriptors[i][:])
	}
	return s.enc.Encode(reduced)
}

// LSHService implements nearest-neighbour lookup over reference images.
type LSHService struct {
	index NNIndex
	// K is how many candidates to forward (default 3).
	K int
	// Cache, when non-nil, short-circuits index queries through the
	// cross-client recognition cache: the Fisher vector's LSH sketch is
	// computed (a fraction of a full multi-probe query + exact ranking),
	// and a fresh-enough entry from any client viewing the same scene is
	// reused. Nil leaves Process bit-identical to a build without it.
	Cache *RecognitionCache
}

// NewLSHService wraps a populated index backend — a monolithic
// *lsh.Index, an in-process *lsh.ShardedIndex, or a remote shard-gather
// client.
func NewLSHService(index NNIndex, k int) *LSHService {
	if index == nil {
		panic("core: NewLSHService with nil index")
	}
	if k <= 0 {
		k = 3
	}
	return &LSHService{index: index, K: k}
}

// Step implements Processor.
func (s *LSHService) Step() wire.Step { return wire.StepLSH }

// Process implements Processor.
func (s *LSHService) Process(fr *wire.Frame) error {
	p, err := decodeFor(fr, wire.StepLSH)
	if err != nil {
		return err
	}
	if p.Fisher == nil {
		return fmt.Errorf("%w: fisher vector at lsh", ErrMissingSection)
	}
	var sketch string
	if s.Cache != nil {
		sketch = s.Cache.Sketch(p.Fisher)
		if cached, ok := s.Cache.Lookup(sketch); ok {
			p.Candidates = cached
			p.Fisher = nil
			advance(fr, p)
			return nil
		}
	}
	neighbors := s.index.Query(p.Fisher, s.K)
	if len(neighbors) < s.K && s.index.Len() >= s.K {
		// Small reference sets can miss probe buckets; top up with the
		// exact scan so recognition never silently goes blind.
		neighbors = s.index.ExactNN(p.Fisher, s.K)
	}
	p.Candidates = make([]Candidate, len(neighbors))
	for i, n := range neighbors {
		p.Candidates[i] = Candidate{ObjectID: int32(n.ID), Dist: float32(n.Dist)}
	}
	if s.Cache != nil {
		s.Cache.Store(sketch, p.Candidates)
	}
	p.Fisher = nil
	advance(fr, p)
	return nil
}

// ProcessBatch implements BatchHandler: Fisher vectors for the whole
// batch go through lsh.Index.QueryBatch — one lock acquisition and
// pooled candidate buffers — with the same per-frame ExactNN top-up as
// Process.
func (s *LSHService) ProcessBatch(frs []*wire.Frame) []error {
	errs := make([]error, len(frs))
	payloads := make([]*Payload, len(frs))
	sketches := make([]string, len(frs))
	vecs := make([][]float32, 0, len(frs))
	live := make([]int, 0, len(frs))
	for i, fr := range frs {
		p, err := decodeFor(fr, wire.StepLSH)
		if err != nil {
			errs[i] = err
			continue
		}
		if p.Fisher == nil {
			errs[i] = fmt.Errorf("%w: fisher vector at lsh", ErrMissingSection)
			continue
		}
		if s.Cache != nil {
			sketches[i] = s.Cache.Sketch(p.Fisher)
			if cached, ok := s.Cache.Lookup(sketches[i]); ok {
				p.Candidates = cached
				p.Fisher = nil
				advance(fr, p)
				continue
			}
		}
		payloads[i] = p
		vecs = append(vecs, p.Fisher)
		live = append(live, i)
	}
	results := s.index.QueryBatch(vecs, s.K)
	for b, i := range live {
		p := payloads[i]
		neighbors := results[b]
		if len(neighbors) < s.K && s.index.Len() >= s.K {
			neighbors = s.index.ExactNN(p.Fisher, s.K)
		}
		p.Candidates = make([]Candidate, len(neighbors))
		for j, n := range neighbors {
			p.Candidates[j] = Candidate{ObjectID: int32(n.ID), Dist: float32(n.Dist)}
		}
		if s.Cache != nil {
			s.Cache.Store(sketches[i], p.Candidates)
		}
		p.Fisher = nil
		advance(frs[i], p)
	}
	return errs
}

// ReferenceObject is one trained object: its features in reference-image
// coordinates and the reference dimensions for box projection.
type ReferenceObject struct {
	ID       int32
	Name     string
	Features []sift.Feature
	W, H     float64
}

// StateFetcher retrieves sift state for a frame (the matching→sift
// dependency of the stateful pipeline). Implementations: direct call
// (in-process), RPC (real deployment).
type StateFetcher func(clientID uint32, frameNo uint64) (*Features, error)

// Matching implements feature matching, pose estimation, and cross-frame
// tracking.
type Matching struct {
	refs    map[int32]*ReferenceObject
	fetch   StateFetcher
	ratio   float64
	ransac  match.RANSACConfig
	minHits int
	gate    *FastPathGate

	mu          sync.Mutex
	trackers    map[uint32]*clientTracker
	idleTimeout time.Duration
	nextSweep   time.Time
	now         func() time.Time
}

// clientTracker pairs a per-client tracker with its last activity time,
// so trackers for churned clients can be evicted.
type clientTracker struct {
	tr       *match.Tracker
	lastSeen time.Time
}

// NewMatching returns the matching service. fetch may be nil when the
// pipeline runs stateless (features arrive in the payload).
func NewMatching(refs []*ReferenceObject, fetch StateFetcher) *Matching {
	m := &Matching{
		refs:        make(map[int32]*ReferenceObject, len(refs)),
		fetch:       fetch,
		ratio:       0.85,
		ransac:      match.RANSACConfig{Iterations: 400, Threshold: 5, MinInliers: 5, Seed: 1},
		minHits:     1,
		trackers:    make(map[uint32]*clientTracker),
		idleTimeout: time.Minute,
		now:         time.Now,
	}
	for _, r := range refs {
		m.refs[r.ID] = r
	}
	return m
}

// Step implements Processor.
func (s *Matching) Step() wire.Step { return wire.StepMatching }

// SetMinHits requires a track to accumulate n supporting detections
// before its detection is emitted to the client, suppressing single-frame
// flicker from spurious matches. The default 1 emits on the first hit
// (the historical behaviour).
func (s *Matching) SetMinHits(n int) {
	if n < 1 {
		n = 1
	}
	s.minHits = n
}

// SetTrackerIdleTimeout sets how long a client's tracker survives without
// frames before being evicted (default 1 minute). Non-positive values
// keep the default.
func (s *Matching) SetTrackerIdleTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.idleTimeout = d
	s.nextSweep = time.Time{}
	s.mu.Unlock()
}

// SetFastPath installs the gate that Matching publishes its per-client
// verdict into after every full recognition pass.
func (s *Matching) SetFastPath(g *FastPathGate) { s.gate = g }

// EndSession drops the tracker and fast-path verdict for a client whose
// session ended, so its next stream starts from a clean tracking state
// instead of stale tracks (and so churning clients don't leak trackers).
func (s *Matching) EndSession(clientID uint32) {
	s.mu.Lock()
	if ct, ok := s.trackers[clientID]; ok {
		ct.tr.Reset()
		delete(s.trackers, clientID)
	}
	s.mu.Unlock()
	s.gate.EndSession(clientID)
}

// TrackerCount returns the number of live per-client trackers.
func (s *Matching) TrackerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.trackers)
}

// Process implements Processor.
func (s *Matching) Process(fr *wire.Frame) error {
	p, err := decodeFor(fr, wire.StepMatching)
	if err != nil {
		return err
	}
	feats := p.Features
	if feats == nil {
		if s.fetch == nil {
			return fmt.Errorf("%w: features at matching (stateless) or fetcher (stateful)", ErrMissingSection)
		}
		feats, err = s.fetch(fr.ClientID, fr.FrameNo)
		if err != nil {
			return err
		}
	}
	query := featuresToSIFT(feats)
	var detections []match.Detection
	for _, cand := range p.Candidates {
		ref, ok := s.refs[cand.ObjectID]
		if !ok {
			continue
		}
		det, ok := s.matchObject(query, ref)
		if ok {
			detections = append(detections, det)
		}
	}
	s.track(fr, detections)
	return nil
}

// ProcessBatch implements BatchHandler: candidate ratio tests are
// regrouped by reference object so match.RatioTestBatch reuses one
// distance matrix per object across every frame in the batch. Pose
// estimation and tracker updates then run per frame in slice order,
// which keeps cross-frame tracking identical to serial processing.
func (s *Matching) ProcessBatch(frs []*wire.Frame) []error {
	errs := make([]error, len(frs))
	payloads := make([]*Payload, len(frs))
	queries := make([][]sift.Feature, len(frs))
	for i, fr := range frs {
		p, err := decodeFor(fr, wire.StepMatching)
		if err != nil {
			errs[i] = err
			continue
		}
		feats := p.Features
		if feats == nil {
			if s.fetch == nil {
				errs[i] = fmt.Errorf("%w: features at matching (stateless) or fetcher (stateful)", ErrMissingSection)
				continue
			}
			feats, err = s.fetch(fr.ClientID, fr.FrameNo)
			if err != nil {
				errs[i] = err
				continue
			}
		}
		payloads[i] = p
		queries[i] = featuresToSIFT(feats)
	}

	type site struct{ frame, cand int }
	groups := make(map[int32][]site)
	for i := range frs {
		if payloads[i] == nil {
			continue
		}
		for ci, cand := range payloads[i].Candidates {
			if _, ok := s.refs[cand.ObjectID]; ok {
				groups[cand.ObjectID] = append(groups[cand.ObjectID], site{i, ci})
			}
		}
	}
	matchesAt := make(map[site][]match.Match)
	for id, sites := range groups {
		ref := s.refs[id]
		qs := make([][]sift.Feature, len(sites))
		for k, st := range sites {
			qs[k] = queries[st.frame]
		}
		res := match.RatioTestBatch(qs, ref.Features, s.ratio)
		for k, st := range sites {
			matchesAt[st] = res[k]
		}
	}

	for i, fr := range frs {
		if payloads[i] == nil {
			continue
		}
		var detections []match.Detection
		for ci, cand := range payloads[i].Candidates {
			ref, ok := s.refs[cand.ObjectID]
			if !ok {
				continue
			}
			det, ok := s.poseFromMatches(queries[i], ref, matchesAt[site{frame: i, cand: ci}])
			if ok {
				detections = append(detections, det)
			}
		}
		s.track(fr, detections)
	}
	return errs
}

// track folds detections into the per-client tracker and rewrites the
// frame as the terminal detection payload. It also evicts trackers for
// idle clients (throttled to every idleTimeout/4) and publishes the
// client's verdict into the fast-path gate.
func (s *Matching) track(fr *wire.Frame, detections []match.Detection) {
	s.mu.Lock()
	now := s.now()
	s.sweepTrackersLocked(now)
	ct, ok := s.trackers[fr.ClientID]
	if !ok {
		ct = &clientTracker{tr: match.NewTracker(match.TrackerConfig{})}
		s.trackers[fr.ClientID] = ct
	}
	ct.lastSeen = now
	tracks := ct.tr.Update(fr.FrameNo, detections)
	s.mu.Unlock()

	// The published verdict confidence is the mean over emitted tracks: a
	// single intermittently-visible object should not starve the fast path
	// for a client whose stable tracks are well-confirmed (its smoothed
	// box coasts in the verdict either way).
	var conf float64
	out := make([]Detection, 0, len(tracks))
	for _, t := range tracks {
		if t.Hits < s.minHits {
			continue
		}
		conf += t.Confidence
		out = append(out, Detection{
			ObjectID: int32(t.ObjectID),
			MinX:     float32(t.Box.MinX), MinY: float32(t.Box.MinY),
			MaxX: float32(t.Box.MaxX), MaxY: float32(t.Box.MaxY),
		})
	}
	if len(out) > 0 {
		conf /= float64(len(out))
	}
	s.gate.Publish(fr.ClientID, fr.FrameNo, conf, out)
	fr.Payload = (&Payload{Detections: out}).Encode()
	fr.Step = wire.StepDone
}

func (s *Matching) sweepTrackersLocked(now time.Time) {
	if now.Before(s.nextSweep) {
		return
	}
	s.nextSweep = now.Add(s.idleTimeout / 4)
	for id, ct := range s.trackers {
		if now.Sub(ct.lastSeen) > s.idleTimeout {
			delete(s.trackers, id)
		}
	}
}

func (s *Matching) matchObject(query []sift.Feature, ref *ReferenceObject) (match.Detection, bool) {
	return s.poseFromMatches(query, ref, match.RatioTest(query, ref.Features, s.ratio))
}

// poseFromMatches runs RANSAC pose estimation over precomputed ratio-test
// matches — the shared tail of the serial and batched paths.
func (s *Matching) poseFromMatches(query []sift.Feature, ref *ReferenceObject, matches []match.Match) (match.Detection, bool) {
	if len(matches) < s.ransac.MinInliers {
		return match.Detection{}, false
	}
	src := make([]match.Point, len(matches))
	dst := make([]match.Point, len(matches))
	for i, m := range matches {
		rf := ref.Features[m.TrainIdx]
		qf := query[m.QueryIdx]
		src[i] = match.Point{X: rf.X, Y: rf.Y}
		dst[i] = match.Point{X: qf.X, Y: qf.Y}
	}
	res, err := match.EstimateHomographyRANSAC(src, dst, s.ransac)
	if err != nil {
		return match.Detection{}, false
	}
	return match.Detection{
		ObjectID:   int(ref.ID),
		Pose:       res.H,
		Box:        match.ProjectBox(&res.H, ref.W, ref.H),
		InlierFrac: res.InlierFrac,
	}, true
}

func featuresToSIFT(f *Features) []sift.Feature {
	out := make([]sift.Feature, len(f.Keypoints))
	for i, kp := range f.Keypoints {
		out[i] = sift.Feature{
			Keypoint: sift.Keypoint{
				X: float64(kp.X), Y: float64(kp.Y),
				Sigma: float64(kp.Sigma), Orientation: float64(kp.Orientation),
			},
			Desc: f.Descriptors[i],
		}
	}
	return out
}

// Model bundles everything the recognition pipeline learns from the
// reference dataset: the PCA projection, the Fisher encoder, the LSH
// index over reference Fisher vectors, and per-object reference features.
type Model struct {
	PCA     *pca.Projection
	Encoder *fisher.Encoder
	Index   *lsh.Index
	Objects []*ReferenceObject
}

// TrainConfig controls model building.
type TrainConfig struct {
	PCADim      int   // descriptor dimensionality after PCA (default 24)
	GMMK        int   // Fisher mixture components (default 8)
	GMMIters    int   // EM iterations (default 15)
	MaxFeatures int   // per-image feature cap (default 150)
	Seed        int64 // default 1
	// FastExtractor trains with the ORB extractor instead of SIFT; the
	// resulting model must be served by NewFastSIFT-based pipelines.
	FastExtractor bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.PCADim <= 0 {
		c.PCADim = 24
	}
	if c.GMMK <= 0 {
		c.GMMK = 8
	}
	if c.GMMIters <= 0 {
		c.GMMIters = 15
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = 150
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Train builds a Model from reference images (the training dataset the
// paper's pipeline recognizes against).
func Train(refs []trace.ReferenceImage, cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(refs) == 0 {
		return nil, errors.New("core: no reference images")
	}
	var detect func(img *imgproc.Gray) []sift.Feature
	if cfg.FastExtractor {
		det := orb.New(orb.Config{MaxFeatures: cfg.MaxFeatures, Seed: cfg.Seed})
		detect = func(img *imgproc.Gray) []sift.Feature {
			raw := det.Detect(img)
			out := make([]sift.Feature, len(raw))
			for i := range raw {
				out[i] = sift.Feature{
					Keypoint: sift.Keypoint{
						X: raw[i].X, Y: raw[i].Y,
						Sigma: 1, Orientation: raw[i].Orientation,
						Response: raw[i].Score,
					},
					Desc: foldORB(&raw[i].Desc),
				}
			}
			return out
		}
	} else {
		detCfg := sift.Defaults()
		detCfg.MaxFeatures = cfg.MaxFeatures
		det := sift.New(detCfg)
		detect = det.Detect
	}

	var allDescs [][]float32
	objects := make([]*ReferenceObject, 0, len(refs))
	for _, ref := range refs {
		feats := detect(ref.Img)
		if len(feats) == 0 {
			return nil, fmt.Errorf("core: reference image %q yields no features", ref.Name)
		}
		objects = append(objects, &ReferenceObject{
			ID:       int32(ref.ObjectID),
			Name:     ref.Name,
			Features: feats,
			W:        float64(ref.Img.W),
			H:        float64(ref.Img.H),
		})
		for i := range feats {
			allDescs = append(allDescs, feats[i].Desc[:])
		}
	}
	proj, err := pca.Fit(allDescs, cfg.PCADim)
	if err != nil {
		return nil, fmt.Errorf("core: train PCA: %w", err)
	}
	reduced := proj.ProjectAll(allDescs)
	gmm, err := fisher.TrainGMM(reduced, cfg.GMMK, cfg.GMMIters, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: train GMM: %w", err)
	}
	enc := fisher.NewEncoder(gmm)
	index := lsh.New(lsh.Config{Dim: enc.Size(), Tables: 8, Bits: 6, Probes: 2, Seed: cfg.Seed})
	// Index each object's reference Fisher vector.
	for _, obj := range objects {
		descs := make([][]float32, len(obj.Features))
		for i := range obj.Features {
			descs[i] = proj.Project(obj.Features[i].Desc[:])
		}
		index.Add(int(obj.ID), enc.Encode(descs))
	}
	return &Model{PCA: proj, Encoder: enc, Index: index, Objects: objects}, nil
}

// NewProcessors builds the five real services over a trained model.
// stateless selects scAtteR++ semantics; in stateful mode the returned
// Matching fetches directly from the returned SIFT instance (in-process
// wiring; the distributed runtime substitutes an RPC fetcher).
func NewProcessors(m *Model, stateless bool, analysisW, analysisH int) [wire.NumSteps]Processor {
	return newProcessors(m, stateless, analysisW, analysisH, false)
}

// NewFastProcessors is NewProcessors with the ORB extractor at the
// detection stage — use with a Model trained with FastExtractor.
func NewFastProcessors(m *Model, stateless bool, analysisW, analysisH int) [wire.NumSteps]Processor {
	return newProcessors(m, stateless, analysisW, analysisH, true)
}

func newProcessors(m *Model, stateless bool, analysisW, analysisH int, fast bool) [wire.NumSteps]Processor {
	var s *SIFT
	if fast {
		s = NewFastSIFT(150, stateless)
	} else {
		s = NewSIFT(150, stateless)
	}
	var fetch StateFetcher
	if !stateless {
		fetch = s.Fetch
	}
	return [wire.NumSteps]Processor{
		wire.StepPrimary:  NewPrimary(analysisW, analysisH),
		wire.StepSIFT:     s,
		wire.StepEncoding: NewEncoding(m.PCA, m.Encoder),
		wire.StepLSH:      NewLSHService(m.Index, 3),
		wire.StepMatching: NewMatching(m.Objects, fetch),
	}
}
