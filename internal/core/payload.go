package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

// Payload is the typed content of a frame travelling between the real
// pipeline services. Sections are optional and accumulate along the
// pipeline: primary produces Image, sift adds Features, encoding adds
// Fisher, lsh adds Candidates, matching replaces everything with
// Detections. In scAtteR++ (stateless) mode Features stay in the payload
// through every stage so matching never needs to call back into sift.
type Payload struct {
	Image      *ImagePayload
	Features   *Features
	Fisher     []float32
	Candidates []Candidate
	Detections []Detection
	// FastPath marks a result answered by the tracker-gated fast path
	// (detections came from smoothed tracks, not a fresh recognition
	// pass). It is a one-bit flag with no body, so fast-path and full
	// results with the same detections differ only in this bit.
	FastPath bool
}

// ImagePayload is an 8-bit grayscale image.
type ImagePayload struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// FeatureKeypoint is the wire form of a SIFT keypoint.
type FeatureKeypoint struct {
	X, Y        float32
	Sigma       float32
	Orientation float32
}

// Features is a set of SIFT keypoints with descriptors.
type Features struct {
	Keypoints   []FeatureKeypoint
	Descriptors []sift.Descriptor
}

// Candidate is one LSH nearest-neighbour result.
type Candidate struct {
	ObjectID int32
	Dist     float32
}

// Detection is one recognized/tracked object with its bounding box.
type Detection struct {
	ObjectID   int32
	MinX, MinY float32
	MaxX, MaxY float32
	InlierFrac float32
}

// Payload section flags.
const (
	secImage = 1 << iota
	secFeatures
	secFisher
	secCandidates
	secDetections
	secFastPath
)

// Codec limits guard against corrupt inputs.
const (
	maxImagePixels  = 64 << 20
	maxFeatureCount = 1 << 20
	maxVectorLen    = 1 << 20
	maxListLen      = 1 << 16
)

// ErrBadPayload reports a malformed payload encoding.
var ErrBadPayload = errors.New("core: bad payload")

// Encode serializes the payload (little-endian, length-prefixed).
func (p *Payload) Encode() []byte {
	var flags byte
	if p.Image != nil {
		flags |= secImage
	}
	if p.Features != nil {
		flags |= secFeatures
	}
	if p.Fisher != nil {
		flags |= secFisher
	}
	if p.Candidates != nil {
		flags |= secCandidates
	}
	if p.Detections != nil {
		flags |= secDetections
	}
	if p.FastPath {
		flags |= secFastPath
	}
	buf := []byte{flags}
	le := binary.LittleEndian
	if p.Image != nil {
		buf = le.AppendUint32(buf, uint32(p.Image.W))
		buf = le.AppendUint32(buf, uint32(p.Image.H))
		buf = append(buf, p.Image.Pix...)
	}
	if p.Features != nil {
		buf = le.AppendUint32(buf, uint32(len(p.Features.Keypoints)))
		for _, kp := range p.Features.Keypoints {
			buf = le.AppendUint32(buf, math.Float32bits(kp.X))
			buf = le.AppendUint32(buf, math.Float32bits(kp.Y))
			buf = le.AppendUint32(buf, math.Float32bits(kp.Sigma))
			buf = le.AppendUint32(buf, math.Float32bits(kp.Orientation))
		}
		for _, d := range p.Features.Descriptors {
			for _, v := range d {
				buf = le.AppendUint32(buf, math.Float32bits(v))
			}
		}
	}
	if p.Fisher != nil {
		buf = le.AppendUint32(buf, uint32(len(p.Fisher)))
		for _, v := range p.Fisher {
			buf = le.AppendUint32(buf, math.Float32bits(v))
		}
	}
	if p.Candidates != nil {
		buf = le.AppendUint32(buf, uint32(len(p.Candidates)))
		for _, c := range p.Candidates {
			buf = le.AppendUint32(buf, uint32(c.ObjectID))
			buf = le.AppendUint32(buf, math.Float32bits(c.Dist))
		}
	}
	if p.Detections != nil {
		buf = le.AppendUint32(buf, uint32(len(p.Detections)))
		for _, d := range p.Detections {
			buf = le.AppendUint32(buf, uint32(d.ObjectID))
			for _, v := range []float32{d.MinX, d.MinY, d.MaxX, d.MaxY, d.InlierFrac} {
				buf = le.AppendUint32(buf, math.Float32bits(v))
			}
		}
	}
	return buf
}

type payloadReader struct {
	buf []byte
	off int
}

func (r *payloadReader) u8() (byte, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrBadPayload
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *payloadReader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrBadPayload
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *payloadReader) f32() (float32, error) {
	v, err := r.u32()
	return math.Float32frombits(v), err
}

func (r *payloadReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrBadPayload
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}

// DecodePayload parses an encoded payload.
func DecodePayload(data []byte) (*Payload, error) {
	r := &payloadReader{buf: data}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	p := &Payload{FastPath: flags&secFastPath != 0}
	if flags&secImage != 0 {
		w, err := r.u32()
		if err != nil {
			return nil, err
		}
		h, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(w)*uint64(h) > maxImagePixels {
			return nil, fmt.Errorf("%w: image %dx%d too large", ErrBadPayload, w, h)
		}
		pix, err := r.bytes(int(w) * int(h))
		if err != nil {
			return nil, err
		}
		p.Image = &ImagePayload{W: int(w), H: int(h), Pix: append([]uint8(nil), pix...)}
	}
	if flags&secFeatures != 0 {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > maxFeatureCount {
			return nil, fmt.Errorf("%w: %d features", ErrBadPayload, n)
		}
		f := &Features{
			Keypoints:   make([]FeatureKeypoint, n),
			Descriptors: make([]sift.Descriptor, n),
		}
		for i := range f.Keypoints {
			kp := &f.Keypoints[i]
			for _, dst := range []*float32{&kp.X, &kp.Y, &kp.Sigma, &kp.Orientation} {
				if *dst, err = r.f32(); err != nil {
					return nil, err
				}
			}
		}
		for i := range f.Descriptors {
			for j := 0; j < sift.DescriptorSize; j++ {
				if f.Descriptors[i][j], err = r.f32(); err != nil {
					return nil, err
				}
			}
		}
		p.Features = f
	}
	if flags&secFisher != 0 {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > maxVectorLen {
			return nil, fmt.Errorf("%w: fisher vector of %d", ErrBadPayload, n)
		}
		p.Fisher = make([]float32, n)
		for i := range p.Fisher {
			if p.Fisher[i], err = r.f32(); err != nil {
				return nil, err
			}
		}
	}
	if flags&secCandidates != 0 {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > maxListLen {
			return nil, fmt.Errorf("%w: %d candidates", ErrBadPayload, n)
		}
		p.Candidates = make([]Candidate, n)
		for i := range p.Candidates {
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			p.Candidates[i].ObjectID = int32(id)
			if p.Candidates[i].Dist, err = r.f32(); err != nil {
				return nil, err
			}
		}
	}
	if flags&secDetections != 0 {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > maxListLen {
			return nil, fmt.Errorf("%w: %d detections", ErrBadPayload, n)
		}
		p.Detections = make([]Detection, n)
		for i := range p.Detections {
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			d := &p.Detections[i]
			d.ObjectID = int32(id)
			for _, dst := range []*float32{&d.MinX, &d.MinY, &d.MaxX, &d.MaxY, &d.InlierFrac} {
				if *dst, err = r.f32(); err != nil {
					return nil, err
				}
			}
		}
	}
	return p, nil
}
