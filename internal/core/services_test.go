package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/vision/orb"
	"github.com/edge-mar/scatter/internal/wire"
)

// trainedModel builds a small model from the synthetic workplace scene.
func trainedModel(t testing.TB) (*Model, *trace.Generator) {
	t.Helper()
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	m, err := Train(gen.ReferenceImages(), TrainConfig{GMMK: 4, GMMIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m, gen
}

func clientFrame(t testing.TB, gen *trace.Generator, clientID uint32, frameNo uint64, idx int) *wire.Frame {
	t.Helper()
	img := gen.GrayFrame(idx)
	p := &Payload{Image: GrayToPayload(img)}
	return &wire.Frame{
		ClientID: clientID,
		FrameNo:  frameNo,
		Step:     wire.StepPrimary,
		Payload:  p.Encode(),
	}
}

// runPipeline pushes a frame through all five processors in order.
func runPipeline(t testing.TB, procs [wire.NumSteps]Processor, fr *wire.Frame) *Payload {
	t.Helper()
	for step := 0; step < wire.NumSteps; step++ {
		if err := procs[step].Process(fr); err != nil {
			t.Fatalf("step %s: %v", wire.Step(step), err)
		}
	}
	if fr.Step != wire.StepDone {
		t.Fatalf("final step = %v", fr.Step)
	}
	p, err := DecodePayload(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrainBuildsModel(t *testing.T) {
	m, _ := trainedModel(t)
	if len(m.Objects) != trace.NumObjects {
		t.Fatalf("objects = %d", len(m.Objects))
	}
	if m.Index.Len() != trace.NumObjects {
		t.Errorf("index size = %d", m.Index.Len())
	}
	for _, obj := range m.Objects {
		if len(obj.Features) == 0 {
			t.Errorf("object %s has no features", obj.Name)
		}
	}
	if m.Encoder.Size() != 2*4*24 {
		t.Errorf("fisher size = %d", m.Encoder.Size())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("Train with no references succeeded")
	}
}

func TestEndToEndStatefulPipelineRecognizes(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, false, 320, 180)
	found := make(map[int32]bool)
	for i := 0; i < 3; i++ {
		fr := clientFrame(t, gen, 1, uint64(i+1), i)
		p := runPipeline(t, procs, fr)
		for _, d := range p.Detections {
			found[d.ObjectID] = true
			if d.MaxX <= d.MinX || d.MaxY <= d.MinY {
				t.Errorf("degenerate box for object %d: %+v", d.ObjectID, d)
			}
		}
	}
	if len(found) == 0 {
		t.Fatal("stateful pipeline recognized nothing in the workplace scene")
	}
}

func TestEndToEndStatelessPipelineRecognizes(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	fr := clientFrame(t, gen, 1, 1, 0)
	p := runPipeline(t, procs, fr)
	if len(p.Detections) == 0 {
		t.Fatal("stateless pipeline recognized nothing")
	}
	// Stateless sift retains nothing.
	if procs[wire.StepSIFT].(*SIFT).StateCount() != 0 {
		t.Error("stateless sift retained state")
	}
}

func TestDetectionsMatchGroundTruth(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	fr := clientFrame(t, gen, 1, 1, 0)
	p := runPipeline(t, procs, fr)
	gt := gen.GroundTruth(0)
	for _, d := range p.Detections {
		truth := gt[d.ObjectID]
		if !truth.Visible {
			continue
		}
		// Ground-truth box center in frame coordinates.
		ref := m.Objects[0]
		for _, o := range m.Objects {
			if o.ID == d.ObjectID {
				ref = o
			}
		}
		cx := truth.OffX + truth.Scale*ref.W/2
		cy := truth.OffY + truth.Scale*ref.H/2
		dcx := float64(d.MinX+d.MaxX) / 2
		dcy := float64(d.MinY+d.MaxY) / 2
		if dx, dy := dcx-cx, dcy-cy; dx*dx+dy*dy > 40*40 {
			t.Errorf("object %d detected at (%.0f,%.0f), ground truth (%.0f,%.0f)",
				d.ObjectID, dcx, dcy, cx, cy)
		}
	}
}

func TestSIFTStatefulFetch(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, false, 320, 180)
	s := procs[wire.StepSIFT].(*SIFT)
	fr := clientFrame(t, gen, 9, 42, 0)
	if err := procs[wire.StepPrimary].Process(fr); err != nil {
		t.Fatal(err)
	}
	if err := s.Process(fr); err != nil {
		t.Fatal(err)
	}
	if s.StateCount() != 1 {
		t.Fatalf("state count = %d", s.StateCount())
	}
	f, err := s.Fetch(9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Descriptors) == 0 {
		t.Error("fetched state has no descriptors")
	}
	if s.StateCount() != 0 {
		t.Error("fetch did not remove state")
	}
	if _, err := s.Fetch(9, 42); !errors.Is(err, ErrStateMiss) {
		t.Errorf("double fetch err = %v", err)
	}
}

func TestSIFTStateExpiry(t *testing.T) {
	s := NewSIFT(50, false)
	now := time.Unix(0, 0)
	s.now = func() time.Time { return now }
	s.StateTimeout = time.Second
	gen := trace.NewGenerator(trace.Config{W: 160, H: 90, FPS: 10, Seconds: 1, Seed: 7})
	fr := clientFrame(t, gen, 1, 1, 0)
	pr := NewPrimary(160, 90)
	if err := pr.Process(fr); err != nil {
		t.Fatal(err)
	}
	if err := s.Process(fr); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if _, err := s.Fetch(1, 1); !errors.Is(err, ErrStateMiss) {
		t.Errorf("expired state fetch err = %v", err)
	}
}

func TestProcessorsRejectWrongStep(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	fr := clientFrame(t, gen, 1, 1, 0)
	// Feed a primary-step frame to sift.
	if err := procs[wire.StepSIFT].Process(fr); err == nil {
		t.Error("sift accepted a primary-step frame")
	}
}

func TestProcessorsRejectMissingSections(t *testing.T) {
	m, _ := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	empty := &Payload{}
	cases := []wire.Step{wire.StepPrimary, wire.StepSIFT, wire.StepEncoding, wire.StepLSH}
	for _, step := range cases {
		fr := &wire.Frame{Step: step, Payload: empty.Encode()}
		if err := procs[step].Process(fr); !errors.Is(err, ErrMissingSection) {
			t.Errorf("%s with empty payload err = %v", step, err)
		}
	}
}

func TestMatchingStatefulMissingFetcher(t *testing.T) {
	m, _ := trainedModel(t)
	matching := NewMatching(m.Objects, nil)
	fr := &wire.Frame{Step: wire.StepMatching, Payload: (&Payload{Candidates: []Candidate{}}).Encode()}
	if err := matching.Process(fr); !errors.Is(err, ErrMissingSection) {
		t.Errorf("err = %v", err)
	}
}

func TestPrimaryResizes(t *testing.T) {
	pr := NewPrimary(64, 36)
	p := &Payload{Image: &ImagePayload{W: 128, H: 72, Pix: make([]uint8, 128*72)}}
	fr := &wire.Frame{Step: wire.StepPrimary, Payload: p.Encode()}
	if err := pr.Process(fr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePayload(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Image.W != 64 || got.Image.H != 36 {
		t.Errorf("resized to %dx%d", got.Image.W, got.Image.H)
	}
	if fr.Step != wire.StepSIFT {
		t.Errorf("step after primary = %v", fr.Step)
	}
}

func TestNewEncodingPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEncoding(nil, nil) did not panic")
		}
	}()
	NewEncoding(nil, nil)
}

func BenchmarkFullPipelineStateless(b *testing.B) {
	m, gen := trainedModel(b)
	procs := NewProcessors(m, true, 320, 180)
	src := clientFrame(b, gen, 1, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := src.Clone()
		fr.FrameNo = uint64(i + 1)
		for step := 0; step < wire.NumSteps; step++ {
			if err := procs[step].Process(fr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestFastExtractorPipelineRecognizes(t *testing.T) {
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	m, err := Train(gen.ReferenceImages(), TrainConfig{GMMK: 4, GMMIters: 8, FastExtractor: true})
	if err != nil {
		t.Fatal(err)
	}
	procs := NewFastProcessors(m, true, 320, 180)
	found := 0
	for i := 0; i < 4; i++ {
		fr := clientFrame(t, gen, 1, uint64(i+1), i)
		p := runPipeline(t, procs, fr)
		found += len(p.Detections)
	}
	if found == 0 {
		t.Fatal("ORB-based pipeline recognized nothing")
	}
}

func TestFastExtractorIsFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	img := gen.GrayFrame(0)
	payload := (&Payload{Image: GrayToPayload(img)}).Encode()

	timeOne := func(s *SIFT) time.Duration {
		fr := &wire.Frame{ClientID: 1, FrameNo: 1, Step: wire.StepSIFT, Payload: payload}
		start := time.Now()
		if err := s.Process(fr); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slow := timeOne(NewSIFT(150, true))
	fast := timeOne(NewFastSIFT(150, true))
	if fast >= slow {
		t.Errorf("ORB extractor (%v) not faster than SIFT (%v)", fast, slow)
	}
}

func TestNewDetectServicePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDetectService(nil) did not panic")
		}
	}()
	NewDetectService(nil, true)
}

func TestFoldORBPreservesScale(t *testing.T) {
	var d orb.Descriptor
	d[0] = 0xFFFF // 16 set bits
	f := foldORB(&d)
	var norm float64
	for _, v := range f {
		norm += float64(v) * float64(v)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("folded descriptor norm² = %v", norm)
	}
	// All-zero and all-one descriptors fold to opposite vectors.
	var zero, ones orb.Descriptor
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	fz, fo := foldORB(&zero), foldORB(&ones)
	for i := range fz {
		if fz[i] != -fo[i] {
			t.Fatal("fold not antisymmetric")
		}
	}
}
