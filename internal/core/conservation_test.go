package core

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
)

// TestFrameConservation checks the fundamental accounting invariant of
// the simulated pipeline: every emitted frame is eventually either
// delivered or dropped for exactly one recorded reason — no frame is
// double-counted or silently lost. The run drains long past the last
// emission so nothing is in flight at the cutoff.
func TestFrameConservation(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
	}{
		{"scatter", ModeScatter},
		{"scatterpp", ModeScatterPP},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 2, 3} {
			for _, clients := range []int{1, 3, 5} {
				e := newEnv(seed)
				p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
					Options{Mode: tc.mode})
				duration := 12 * time.Second
				for i := 0; i < clients; i++ {
					p.AddClient(ClientConfig{
						ID: uint32(i + 1), FPS: 30,
						Start: sim.Time(i) * 5 * time.Millisecond,
						Stop:  duration,
					})
				}
				// Drain: longer than state timeout + threshold + any
				// network delay, so nothing is still in flight.
				e.eng.Run(duration + 5*time.Second)
				s := e.col.Summarize(duration, clients, nil)
				var drops uint64
				for _, v := range s.Drops {
					drops += v
				}
				if s.FramesOK+drops != s.FramesSent {
					t.Errorf("%s seed=%d clients=%d: sent=%d != delivered=%d + drops=%d (%v)",
						tc.name, seed, clients, s.FramesSent, s.FramesOK, drops, s.Drops)
				}
			}
		}
	}
}

// TestDropReasonsMatchMode verifies each pipeline variant only produces
// its own failure classes: scAtteR never records sidecar drops and
// scAtteR++ never records busy or fetch-timeout drops.
func TestDropReasonsMatchMode(t *testing.T) {
	run := func(mode Mode) map[metrics.DropReason]uint64 {
		e := newEnv(4)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: mode})
		for i := 0; i < 4; i++ {
			p.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 15 * time.Second})
		}
		e.eng.Run(20 * time.Second)
		return e.col.Summarize(15*time.Second, 4, nil).Drops
	}
	scatter := run(ModeScatter)
	if scatter[metrics.DropThreshold] != 0 || scatter[metrics.DropOverflow] != 0 {
		t.Errorf("scAtteR produced sidecar drops: %v", scatter)
	}
	if scatter[metrics.DropBusy] == 0 {
		t.Error("scAtteR produced no busy drops at 4 clients")
	}
	pp := run(ModeScatterPP)
	if pp[metrics.DropBusy] != 0 || pp[metrics.DropTimeout] != 0 {
		t.Errorf("scAtteR++ produced stateful-pipeline drops: %v", pp)
	}
	if pp[metrics.DropThreshold] == 0 {
		t.Error("scAtteR++ produced no threshold drops at 4 clients")
	}
}

// TestAddReplicaDynamic verifies dynamic scale-out takes traffic
// immediately and respects machine memory.
func TestAddReplicaDynamic(t *testing.T) {
	e := newEnv(5)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatterPP})
	for i := 0; i < 4; i++ {
		p.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 20 * time.Second})
	}
	var added *Instance
	e.eng.At(10*time.Second, func() {
		in, err := p.AddReplica(1, e.e2) // sift
		if err != nil {
			t.Errorf("AddReplica: %v", err)
			return
		}
		added = in
	})
	e.eng.Run(21 * time.Second)
	if added == nil {
		t.Fatal("replica never added")
	}
	st := added.Machine()
	if st != e.e2 {
		t.Error("replica on wrong machine")
	}
	// The new replica must have processed traffic (round-robin).
	services, _ := p.Usage()
	if services["sift"].MemBytes <= DefaultProfiles()[1].BaselineMem {
		t.Error("added replica's baseline memory not accounted")
	}
	if added.QueueLen() == 0 && added.StateCount() == 0 {
		// Queue may be empty at cutoff; check it actually worked by
		// comparing against a static run.
		eStatic := newEnv(5)
		ps := NewPipeline(eStatic.eng, eStatic.fabric, eStatic.col, PlaceAll(eStatic.e1),
			DefaultProfiles(), Options{Mode: ModeScatterPP})
		for i := 0; i < 4; i++ {
			ps.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 20 * time.Second})
		}
		eStatic.eng.Run(21 * time.Second)
		static := eStatic.col.Summarize(20*time.Second, 4, nil)
		scaled := e.col.Summarize(20*time.Second, 4, nil)
		if scaled.FramesOK <= static.FramesOK {
			t.Errorf("scale-out did not increase deliveries: %d vs %d",
				scaled.FramesOK, static.FramesOK)
		}
	}
}

// TestAddReplicaErrors covers the failure paths.
func TestAddReplicaErrors(t *testing.T) {
	e := newEnv(6)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{})
	if _, err := p.AddReplica(5, e.e1); err == nil { // StepDone
		t.Error("AddReplica(StepDone) succeeded")
	}
	// Fill E2's memory so the baseline allocation fails.
	for e.e2.AllocMem(1 << 30) {
	}
	if _, err := p.AddReplica(1, e.e2); err == nil {
		t.Error("AddReplica on a full machine succeeded")
	}
}

// TestMemoryConstrainedEdge reproduces the paper's warning that sift's
// state retention "can limit its deployment over memory-constrained edge
// hardware": on a host with little headroom beyond the service baselines,
// state allocations fail and success degrades versus an unconstrained
// host, with the failures surfaced as a distinct signal.
func TestMemoryConstrainedEdge(t *testing.T) {
	run := func(memBytes int64) metrics.Summary {
		eng := sim.New(31)
		fabric := NewFabric(eng)
		col := metrics.NewCollector()
		cfg := testbed.E1()
		cfg.MemBytes = memBytes
		m := testbed.NewMachine(cfg, eng)
		p := NewPipeline(eng, fabric, col, PlaceAll(m), DefaultProfiles(), Options{Mode: ModeScatter})
		for i := 0; i < 2; i++ {
			p.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 20 * time.Second})
		}
		eng.Run(25 * time.Second)
		return col.Summarize(20*time.Second, 2, nil)
	}
	// Baselines total ~4 GB; 4.25 GB leaves room for only a handful of
	// 24 MB states at a time.
	constrained := run(4352 << 20)
	roomy := run(128 << 30)
	if constrained.StateAllocFailures == 0 {
		t.Fatal("constrained host never failed a state allocation")
	}
	if roomy.StateAllocFailures != 0 {
		t.Errorf("unconstrained host failed %d state allocations", roomy.StateAllocFailures)
	}
	if constrained.SuccessRate >= roomy.SuccessRate {
		t.Errorf("memory pressure did not hurt success: %.2f vs %.2f",
			constrained.SuccessRate, roomy.SuccessRate)
	}
}
