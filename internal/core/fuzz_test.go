package core

import "testing"

// FuzzDecodePayload hardens the payload decoder: no panic on arbitrary
// bytes, and accepted payloads re-encode/decode stably.
func FuzzDecodePayload(f *testing.F) {
	f.Add(samplePayload().Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		out := p.Encode()
		q, err := DecodePayload(out)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if !payloadsEqual(p, q) {
			t.Fatal("payload re-encode round trip diverged")
		}
	})
}
