package core

import (
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/testbed"
)

func TestBatchOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.BatchMax != 1 {
		t.Errorf("BatchMax default = %d, want 1 (batching off)", o.BatchMax)
	}
	if o.BatchSlack != 10*time.Millisecond {
		t.Errorf("BatchSlack default = %v, want 10ms", o.BatchSlack)
	}
}

func TestProfileSetupValidation(t *testing.T) {
	ps := DefaultProfiles()
	ps[2].CPUSetup = ps[2].CPUTime + time.Millisecond
	if err := ps.Validate(); err == nil {
		t.Error("setup exceeding phase time validated")
	}
	ps = DefaultProfiles()
	ps[2].GPUSetup = -time.Millisecond
	if err := ps.Validate(); err == nil {
		t.Error("negative setup validated")
	}
	if !DefaultProfiles()[2].Batchable() {
		t.Error("encoding profile should be batchable")
	}
	if DefaultProfiles()[0].Batchable() {
		t.Error("primary profile should not be batchable")
	}
}

// Batching amortizes the setup component of batchable stages, so a
// saturated deployment sustains more delivered frames than the same
// deployment dispatching frame by frame.
func TestBatchingRaisesSaturatedThroughput(t *testing.T) {
	run := func(batchMax int) metrics.Summary {
		e := newEnv(31)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
			Options{Mode: ModeScatterPP, BatchMax: batchMax})
		return e.run(p, 8, 20*time.Second)
	}
	serial := run(1)
	batched := run(8)
	if batched.FPSPerClient <= serial.FPSPerClient {
		t.Errorf("batched FPS %.2f <= serial %.2f at saturation; batching should amortize setup",
			batched.FPSPerClient, serial.FPSPerClient)
	}
}

// The batch former must preserve threshold-drop semantics: no frame is
// ever admitted to processing after waiting past the latency budget, and
// waiting for a batch to fill never pushes the oldest member over it.
func TestBatchFormerRespectsThreshold(t *testing.T) {
	e := newEnv(32)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatterPP, BatchMax: 16, BatchSlack: 20 * time.Millisecond})
	rec := obs.NewRecorder(0)
	p.SetTracer(rec)
	e.run(p, 8, 20*time.Second)

	var batchSpans, multiFrame int
	for _, s := range rec.Spans() {
		if strings.HasSuffix(s.Service, "/batch") {
			batchSpans++
			if s.FrameNo >= 2 {
				multiFrame++
			}
			continue
		}
		if s.Outcome == obs.OutcomeOK && s.Queue > p.Options().Threshold {
			t.Fatalf("%s admitted a frame after %v in queue (threshold %v)",
				s.Service, s.Queue, p.Options().Threshold)
		}
	}
	if batchSpans == 0 {
		t.Error("no batch spans recorded under saturation")
	}
	if multiFrame == 0 {
		t.Error("no multi-frame batches formed under saturation")
	}
}

// A slack at or above the threshold collapses the former to
// flush-immediately: everything still flows and nothing waits.
func TestBatchSlackAboveThresholdFlushesImmediately(t *testing.T) {
	e := newEnv(33)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatterPP, BatchMax: 8, BatchSlack: 200 * time.Millisecond})
	s := e.run(p, 2, 10*time.Second)
	if s.FPSPerClient < 10 {
		t.Errorf("degenerate slack FPS = %.1f, want flowing pipeline", s.FPSPerClient)
	}
}

func TestComputeTimeBatchModel(t *testing.T) {
	eng := newEnv(34).eng
	m := testbed.NewMachine(testbed.MachineConfig{
		Name: "flat", CPUCores: 4, GPUs: 1, MemBytes: 8 << 30,
		CPUFactor: 1, GPUFactor: 1,
	}, eng)
	base, setup := 10*time.Millisecond, 4*time.Millisecond
	if got, want := m.ComputeTimeBatch(base, setup, 1, false), m.ComputeTime(base, false); got != want {
		t.Errorf("n=1 batch time %v, want ComputeTime %v", got, want)
	}
	if got, want := m.ComputeTimeBatch(base, setup, 4, false), setup+4*(base-setup); got != want {
		t.Errorf("n=4 batch time %v, want setup+4*marginal = %v", got, want)
	}
	// Setup is clamped into [0, base]: an over-long setup degenerates to
	// one full base cost for the whole batch.
	if got := m.ComputeTimeBatch(base, 2*base, 3, false); got != base {
		t.Errorf("over-long setup: got %v, want clamped %v", got, base)
	}
	if got, want := m.ComputeTimeBatch(base, -time.Millisecond, 2, false), 2*base; got != want {
		t.Errorf("negative setup: got %v, want %v", got, want)
	}
}
