package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/vision/match"
	"github.com/edge-mar/scatter/internal/wire"
)

// fpDet fabricates a well-supported detection for tracker-level tests.
func fpDet(id int) match.Detection {
	return match.Detection{
		ObjectID:   id,
		Pose:       match.Homography{1, 0, 0, 0, 1, 0, 0, 0, 1},
		Box:        match.BoundingBox{MinX: 10, MinY: 10, MaxX: 50, MaxY: 50},
		InlierFrac: 0.9,
	}
}

func TestPayloadFastPathRoundtrip(t *testing.T) {
	p := &Payload{
		FastPath:   true,
		Detections: []Detection{{ObjectID: 3, MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}},
	}
	dec, err := DecodePayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.FastPath {
		t.Error("FastPath flag lost in roundtrip")
	}
	if len(dec.Detections) != 1 || dec.Detections[0].ObjectID != 3 {
		t.Errorf("detections = %+v", dec.Detections)
	}
	dec, err = DecodePayload((&Payload{Detections: []Detection{}}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.FastPath {
		t.Error("FastPath flag set on a payload that never had it")
	}
}

func TestFastPathGateVerdictLifecycle(t *testing.T) {
	g := NewFastPathGate(FastPathConfig{Enabled: true, RefreshEvery: 3, MinConfidence: 0.5})
	if _, ok := g.VerdictAppend(1, 1, nil); ok {
		t.Fatal("gate skipped with no published verdict")
	}
	g.Publish(1, 1, 0.9, []Detection{{ObjectID: 4, MaxX: 5, MaxY: 5}})
	// A stale or replayed frame number never skips.
	if _, ok := g.VerdictAppend(1, 1, nil); ok {
		t.Fatal("gate skipped a frame at the published frame number")
	}
	out, ok := g.VerdictAppend(1, 2, nil)
	if !ok {
		t.Fatal("gate declined a fresh confident frame")
	}
	p, err := DecodePayload(out)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FastPath || len(p.Detections) != 1 || p.Detections[0].ObjectID != 4 {
		t.Fatalf("fast-path payload = %+v", p)
	}
	if _, ok := g.VerdictAppend(1, 3, nil); !ok {
		t.Fatal("second skip within the refresh window declined")
	}
	// RefreshEvery=3 allows at most 2 consecutive skips.
	if _, ok := g.VerdictAppend(1, 4, nil); ok {
		t.Fatal("gate skipped past the RefreshEvery boundary")
	}
	// A low-confidence publish never skips.
	g.Publish(1, 4, 0.2, nil)
	if _, ok := g.VerdictAppend(1, 5, nil); ok {
		t.Fatal("gate skipped below MinConfidence")
	}
	if g.Skips() != 2 || g.Fulls() != 4 {
		t.Errorf("skips=%d fulls=%d, want 2/4", g.Skips(), g.Fulls())
	}
	g.EndSession(1)
	if g.ClientCount() != 0 {
		t.Errorf("clients after EndSession = %d", g.ClientCount())
	}
}

func TestFastPathGateSkipDecay(t *testing.T) {
	g := NewFastPathGate(FastPathConfig{Enabled: true, RefreshEvery: 100, MinConfidence: 0.5, SkipDecay: 0.5})
	g.Publish(7, 1, 0.9, nil)
	if _, ok := g.VerdictAppend(7, 2, nil); !ok {
		t.Fatal("first skip declined")
	}
	// 0.9 * 0.5 = 0.45 < MinConfidence: the decayed verdict expires long
	// before the refresh boundary.
	if _, ok := g.VerdictAppend(7, 3, nil); ok {
		t.Fatal("gate kept skipping after confidence decayed away")
	}
}

func TestFastPathGateEvictsIdleClients(t *testing.T) {
	g := NewFastPathGate(FastPathConfig{Enabled: true, IdleTimeout: time.Second})
	now := time.Unix(0, 0)
	g.now = func() time.Time { return now }
	g.Publish(1, 1, 0.9, nil)
	g.Publish(2, 1, 0.9, nil)
	if g.ClientCount() != 2 {
		t.Fatalf("clients = %d", g.ClientCount())
	}
	now = now.Add(2 * time.Second)
	g.VerdictAppend(3, 1, nil) // any traffic triggers the sweep
	if g.ClientCount() != 0 {
		t.Errorf("idle clients not evicted: %d live", g.ClientCount())
	}
}

func TestFastPathGateReusesPooledBuffer(t *testing.T) {
	g := NewFastPathGate(FastPathConfig{Enabled: true})
	g.Publish(1, 1, 0.9, []Detection{{ObjectID: 2, MaxX: 1, MaxY: 1}})
	buf := make([]byte, 0, 256)
	out, ok := g.VerdictAppend(1, 2, buf)
	if !ok {
		t.Fatal("gate declined")
	}
	if &out[0] != &buf[:1][0] {
		t.Error("verdict not appended into the caller's buffer")
	}
	// Mutating the caller's copy must not corrupt the published verdict.
	for i := range out {
		out[i] = 0xFF
	}
	out2, ok := g.VerdictAppend(1, 3, nil)
	if !ok {
		t.Fatal("second verdict declined")
	}
	if _, err := DecodePayload(out2); err != nil {
		t.Errorf("published verdict corrupted by caller mutation: %v", err)
	}
}

func TestRecognitionCacheTTL(t *testing.T) {
	c := NewRecognitionCache(RecognitionCacheConfig{TTL: time.Second, Capacity: 8}, nil)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	c.Store("a", []Candidate{{ObjectID: 1, Dist: 0.5}})
	if got, ok := c.Lookup("a"); !ok || len(got) != 1 || got[0].ObjectID != 1 {
		t.Fatalf("fresh lookup = %v, %v", got, ok)
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry retained, len = %d", c.Len())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestRecognitionCacheLRUEviction(t *testing.T) {
	c := NewRecognitionCache(RecognitionCacheConfig{TTL: time.Hour, Capacity: 2}, nil)
	c.Store("a", []Candidate{{ObjectID: 1}})
	c.Store("b", []Candidate{{ObjectID: 2}})
	if _, ok := c.Lookup("a"); !ok { // touch a: b is now least recent
		t.Fatal("a missing")
	}
	c.Store("c", []Candidate{{ObjectID: 3}})
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup("b"); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Lookup(key); !ok {
			t.Errorf("entry %q evicted out of LRU order", key)
		}
	}
}

func TestRecognitionCacheEmptyResultIsValid(t *testing.T) {
	c := NewRecognitionCache(RecognitionCacheConfig{}, nil)
	c.Store("none", []Candidate{})
	got, ok := c.Lookup("none")
	if !ok {
		t.Fatal("cached empty candidate list read as a miss")
	}
	if len(got) != 0 {
		t.Errorf("candidates = %v", got)
	}
}

func TestLSHServiceSharesCacheAcrossClients(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	cache := NewRecognitionCache(RecognitionCacheConfig{}, m.Index)
	procs[wire.StepLSH].(*LSHService).Cache = cache

	toLSH := func(clientID uint32) *wire.Frame {
		fr := clientFrame(t, gen, clientID, 1, 0)
		for fr.Step != wire.StepLSH {
			if err := procs[fr.Step].Process(fr); err != nil {
				t.Fatal(err)
			}
		}
		return fr
	}
	fa, fb := toLSH(1), toLSH(2)
	if err := procs[wire.StepLSH].Process(fa); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 1 || cache.Hits() != 0 || cache.Len() != 1 {
		t.Fatalf("after first query: hits=%d misses=%d len=%d", cache.Hits(), cache.Misses(), cache.Len())
	}
	if err := procs[wire.StepLSH].Process(fb); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 {
		t.Fatalf("identical view from a second client missed the cache (hits=%d)", cache.Hits())
	}
	pa, err := DecodePayload(fa.Payload)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := DecodePayload(fb.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Candidates) == 0 || len(pa.Candidates) != len(pb.Candidates) {
		t.Fatalf("candidates: %d vs %d", len(pa.Candidates), len(pb.Candidates))
	}
	for i := range pa.Candidates {
		if pa.Candidates[i] != pb.Candidates[i] {
			t.Errorf("candidate %d differs: %+v vs %+v", i, pa.Candidates[i], pb.Candidates[i])
		}
	}
}

func TestMatchingMinHitsGatesDetections(t *testing.T) {
	mm := NewMatching(nil, nil)
	mm.SetMinHits(3)
	emit := func(frameNo uint64) int {
		fr := &wire.Frame{ClientID: 1, FrameNo: frameNo, Step: wire.StepMatching}
		mm.track(fr, []match.Detection{fpDet(5)})
		p, err := DecodePayload(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Step != wire.StepDone {
			t.Fatalf("step = %v", fr.Step)
		}
		return len(p.Detections)
	}
	if n := emit(1); n != 0 {
		t.Errorf("frame 1 emitted %d detections before min hits", n)
	}
	if n := emit(2); n != 0 {
		t.Errorf("frame 2 emitted %d detections before min hits", n)
	}
	if n := emit(3); n != 1 {
		t.Errorf("frame 3 emitted %d detections, want 1", n)
	}

	// The default emits on the first hit (the historical behaviour).
	def := NewMatching(nil, nil)
	fr := &wire.Frame{ClientID: 1, FrameNo: 1, Step: wire.StepMatching}
	def.track(fr, []match.Detection{fpDet(5)})
	p, err := DecodePayload(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Detections) != 1 {
		t.Errorf("default min hits emitted %d detections on first hit", len(p.Detections))
	}
}

func TestMatchingEvictsIdleTrackersUnderChurn(t *testing.T) {
	mm := NewMatching(nil, nil)
	mm.SetTrackerIdleTimeout(time.Second)
	now := time.Unix(0, 0)
	mm.now = func() time.Time { return now }
	for id := uint32(1); id <= 50; id++ {
		fr := &wire.Frame{ClientID: id, FrameNo: 1, Step: wire.StepMatching}
		mm.track(fr, nil)
	}
	if mm.TrackerCount() != 50 {
		t.Fatalf("trackers = %d, want 50", mm.TrackerCount())
	}
	now = now.Add(2 * time.Second)
	fr := &wire.Frame{ClientID: 99, FrameNo: 1, Step: wire.StepMatching}
	mm.track(fr, nil) // new traffic triggers the sweep
	if got := mm.TrackerCount(); got != 1 {
		t.Errorf("trackers after idle sweep = %d, want 1", got)
	}
}

func TestMatchingEndSessionClearsTrackerAndGate(t *testing.T) {
	mm := NewMatching(nil, nil)
	g := NewFastPathGate(FastPathConfig{Enabled: true})
	mm.SetFastPath(g)
	fr := &wire.Frame{ClientID: 7, FrameNo: 1, Step: wire.StepMatching}
	mm.track(fr, []match.Detection{fpDet(5)})
	if mm.TrackerCount() != 1 || g.ClientCount() != 1 {
		t.Fatalf("trackers=%d gate clients=%d", mm.TrackerCount(), g.ClientCount())
	}
	mm.EndSession(7)
	if mm.TrackerCount() != 0 || g.ClientCount() != 0 {
		t.Errorf("after EndSession: trackers=%d gate clients=%d", mm.TrackerCount(), g.ClientCount())
	}
}

// TestFastPathDisabledBitIdentical pins the regression contract: with the
// gate disabled (or absent) and min hits at the default, every frame's
// bytes are identical to a pipeline without any fast-path wiring.
func TestFastPathDisabledBitIdentical(t *testing.T) {
	m, gen := trainedModel(t)
	plain := NewProcessors(m, true, 320, 180)
	wired := NewProcessors(m, true, 320, 180)
	gate := NewFastPathGate(FastPathConfig{}) // Enabled = false
	wired[wire.StepPrimary].(*Primary).SetFastPath(gate)
	wm := wired[wire.StepMatching].(*Matching)
	wm.SetFastPath(gate)
	wm.SetMinHits(1)
	for i := 0; i < 4; i++ {
		fa := clientFrame(t, gen, 1, uint64(i+1), i)
		fb := clientFrame(t, gen, 1, uint64(i+1), i)
		for step := 0; step < wire.NumSteps; step++ {
			if err := plain[step].Process(fa); err != nil {
				t.Fatal(err)
			}
			if err := wired[step].Process(fb); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(fa.Payload, fb.Payload) {
			t.Fatalf("frame %d: disabled fast path is not bit-identical", i+1)
		}
	}
	if gate.Skips() != 0 || gate.ClientCount() != 0 {
		t.Errorf("disabled gate accrued state: skips=%d clients=%d", gate.Skips(), gate.ClientCount())
	}
}

// TestFastPathSteadyStateSkipRate drives the synthetic clip through the
// real pipeline with the gate enabled and measures the steady-state skip
// rate (the paper's temporal-coherence claim: consecutive AR frames are
// overwhelmingly redundant).
func TestFastPathSteadyStateSkipRate(t *testing.T) {
	m, gen := trainedModel(t)
	procs := NewProcessors(m, true, 320, 180)
	gate := NewFastPathGate(FastPathConfig{Enabled: true})
	procs[wire.StepPrimary].(*Primary).SetFastPath(gate)
	procs[wire.StepMatching].(*Matching).SetFastPath(gate)

	const warmup, measured = 10, 120
	skipped := 0
	for i := 0; i < warmup+measured; i++ {
		fr := clientFrame(t, gen, 1, uint64(i+1), i%gen.NumFrames())
		for fr.Step != wire.StepDone {
			if err := procs[fr.Step].Process(fr); err != nil {
				t.Fatal(err)
			}
		}
		p, err := DecodePayload(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if p.FastPath {
			if i >= warmup {
				skipped++
			}
			if len(p.Detections) == 0 {
				t.Fatalf("frame %d: fast-path result carries no detections", i+1)
			}
		}
	}
	rate := float64(skipped) / measured
	if rate < 0.8 {
		t.Fatalf("steady-state skip rate = %.2f, want >= 0.80", rate)
	}
	t.Logf("steady-state skip rate %.3f (%d/%d), gate skips=%d fulls=%d",
		rate, skipped, measured, gate.Skips(), gate.Fulls())
}

// TestSimFastPathMirrorsGate checks the simulator mirror: an enabled
// fast path skips the overwhelming majority of steady-state frames and
// records them in the run summary.
func TestSimFastPathMirrorsGate(t *testing.T) {
	e := newEnv(5)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatter, FastPath: FastPathSimOptions{Enabled: true}})
	s := e.run(p, 1, 30*time.Second)
	if s.FastPathSkips == 0 {
		t.Fatal("enabled sim fast path skipped nothing")
	}
	// 30 s at 30 FPS with RefreshEvery=30 and WarmHits=3: nearly all
	// frames after warm-up come from the gate.
	if frac := float64(s.FastPathSkips) / float64(s.FramesOK); frac < 0.8 {
		t.Errorf("sim skip fraction = %.2f, want >= 0.80", frac)
	}
	if s.SuccessRate < 0.95 {
		t.Errorf("success rate with fast path = %.2f", s.SuccessRate)
	}
}

func TestSimFastPathDisabledUnchanged(t *testing.T) {
	run := func(opts Options) float64 {
		e := newEnv(11)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), opts)
		s := e.run(p, 1, 10*time.Second)
		if s.FastPathSkips != 0 {
			t.Fatalf("disabled sim fast path skipped %d frames", s.FastPathSkips)
		}
		return s.E2EMean.Seconds()
	}
	base := run(Options{Mode: ModeScatter})
	again := run(Options{Mode: ModeScatter})
	if base != again {
		t.Errorf("baseline not deterministic: %v vs %v", base, again)
	}
}

// BenchmarkFastPathFrame compares the per-frame cost of a full
// recognition pass against a tracker-gated skip (make bench-fastpath).
func BenchmarkFastPathFrame(b *testing.B) {
	m, gen := trainedModel(b)

	b.Run("full", func(b *testing.B) {
		procs := NewProcessors(m, true, 320, 180)
		src := clientFrame(b, gen, 1, 1, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr := src.Clone()
			fr.FrameNo = uint64(i + 1)
			for fr.Step != wire.StepDone {
				if err := procs[fr.Step].Process(fr); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("tracked", func(b *testing.B) {
		procs := NewProcessors(m, true, 320, 180)
		// No refresh and no decay: every measured iteration is a pure
		// gate skip.
		gate := NewFastPathGate(FastPathConfig{
			Enabled: true, RefreshEvery: 1 << 30, SkipDecay: 1, MinConfidence: 0.01,
		})
		procs[wire.StepPrimary].(*Primary).SetFastPath(gate)
		procs[wire.StepMatching].(*Matching).SetFastPath(gate)
		// Warm the gate with full passes until it starts skipping.
		warm := clientFrame(b, gen, 1, 0, 0)
		for i := 0; i < 8; i++ {
			fr := warm.Clone()
			fr.FrameNo = uint64(i + 1)
			for fr.Step != wire.StepDone {
				if err := procs[fr.Step].Process(fr); err != nil {
					b.Fatal(err)
				}
			}
		}
		src := clientFrame(b, gen, 1, 1, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr := src.Clone()
			fr.FrameNo = uint64(i + 100)
			for fr.Step != wire.StepDone {
				if err := procs[fr.Step].Process(fr); err != nil {
					b.Fatal(err)
				}
			}
			if !bytesHasFastPath(fr.Payload) {
				b.Fatal("tracked frame ran full recognition")
			}
		}
	})
}

// bytesHasFastPath decodes just enough to check the fast-path flag.
func bytesHasFastPath(payload []byte) bool {
	p, err := DecodePayload(payload)
	return err == nil && p.FastPath
}
