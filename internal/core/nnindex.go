package core

import "github.com/edge-mar/scatter/internal/vision/lsh"

// NNIndex is the nearest-neighbour backend behind the lsh service. The
// monolithic *lsh.Index, the in-process *lsh.ShardedIndex scatter/gather
// router, and the agent's remote shard-gather client all satisfy it, so
// the recognition tier picks its reference-database layout purely by
// construction — Process/ProcessBatch are backend-agnostic and results
// are bit-identical across backends over the same reference set.
type NNIndex interface {
	// Query returns up to k nearest neighbours of v ranked by exact
	// cosine distance under the (distance, id) total order.
	Query(v []float32, k int) []lsh.Neighbor
	// QueryBatch answers several queries in one call; each result equals
	// Query on the same vector.
	QueryBatch(vs [][]float32, k int) [][]lsh.Neighbor
	// ExactNN is the brute-force fallback used to top up thin probe
	// results on small reference sets.
	ExactNN(v []float32, k int) []lsh.Neighbor
	// Len returns the number of stored reference items.
	Len() int
	// Tables returns the number of LSH hash tables.
	Tables() int
	// Hash returns the bucket key of v in one table — the recognition
	// cache builds its sketch keys from these.
	Hash(table int, v []float32) uint64
}

// LayoutSigner is implemented by NNIndex backends whose reference set is
// partitioned into a mutable layout (shard count, replication, resize
// epoch). The recognition cache folds the signature into its keys so an
// entry cached under one layout can never alias an entry under another.
type LayoutSigner interface {
	LayoutSignature() uint64
}

// PreRanker is implemented by NNIndex backends that support bit-packed
// Hamming pre-ranking (lsh.Index and lsh.ShardedIndex): queries cut the
// candidate set to n·k by sketch Hamming distance before the exact
// cosine pass. SetPreRank(0) restores exact mode — bit-identical
// ranking of every candidate. The control plane retunes it live; the
// remote shard-gather client does not implement it (the budget lives
// server-side on each shard's index).
type PreRanker interface {
	SetPreRank(n int)
}
