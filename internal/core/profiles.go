// Package core implements the scAtteR and scAtteR++ pipelines: the five
// services (primary, sift, encoding, lsh, matching), their stateful/
// stateless interaction semantics, sidecar queueing, replica load
// balancing, and the client frame sources. The same decision logic runs
// in two harnesses: the deterministic simulation testbed used by the
// experiment suite (this package + internal/sim) and the real UDP/RPC
// runtime (internal/agent) whose processors execute the actual vision
// algorithms.
package core

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// ServiceProfile is the calibrated compute model of one pipeline service
// (DESIGN.md §5). CPUTime and GPUTime are reference durations on E1; a
// machine scales them by its speed factors. GPU services first run their
// CPU phase (pre/post-processing, transfers) and then their GPU phase.
type ServiceProfile struct {
	Step    wire.Step
	CPUTime time.Duration
	GPUTime time.Duration
	// CPUSetup/GPUSetup is the fixed per-dispatch portion of the phase
	// cost — model load, kernel launch, lock and cache-warm overhead —
	// that micro-batching amortizes: a batch of n frames costs
	// setup + n*(phase-setup) instead of n*phase. Zero (the default)
	// marks the service as non-batchable; the sidecar then dispatches it
	// frame by frame.
	CPUSetup time.Duration
	GPUSetup time.Duration
	// BaselineMem is the resident memory of one deployed instance
	// (container image + loaded models).
	BaselineMem int64
	// StateBytes is the in-memory footprint of one held frame state
	// (sift only): extracted descriptors plus the retained DoG pyramid
	// data matching correlates against.
	StateBytes int64
	// FetchServe is the time sift spends serving one state-fetch request
	// from matching (sift only).
	FetchServe time.Duration
}

// Total returns the reference processing latency (CPU + GPU phases).
func (p ServiceProfile) Total() time.Duration { return p.CPUTime + p.GPUTime }

// UsesGPU reports whether the service has a GPU phase. In scAtteR all
// services except primary are GPU-dependent.
func (p ServiceProfile) UsesGPU() bool { return p.GPUTime > 0 }

// Batchable reports whether the service declares a setup component that
// batching can amortize — the sim-side analogue of a real service
// implementing BatchHandler.
func (p ServiceProfile) Batchable() bool { return p.CPUSetup > 0 || p.GPUSetup > 0 }

// Validate reports profile errors.
func (p ServiceProfile) Validate() error {
	if p.CPUTime < 0 || p.GPUTime < 0 || p.FetchServe < 0 {
		return fmt.Errorf("core: negative duration in %s profile", p.Step)
	}
	if p.CPUSetup < 0 || p.GPUSetup < 0 {
		return fmt.Errorf("core: negative setup time in %s profile", p.Step)
	}
	if p.CPUSetup > p.CPUTime || p.GPUSetup > p.GPUTime {
		return fmt.Errorf("core: %s profile setup exceeds phase time", p.Step)
	}
	if p.Total() == 0 {
		return fmt.Errorf("core: %s profile has zero compute time", p.Step)
	}
	if p.BaselineMem < 0 || p.StateBytes < 0 {
		return fmt.Errorf("core: negative memory in %s profile", p.Step)
	}
	return nil
}

// Profiles holds one profile per pipeline step.
type Profiles [wire.NumSteps]ServiceProfile

// DefaultProfiles returns the calibration used by every experiment:
// single-client E2E ≈ 40 ms on edge, primary throughput cap ≈ 240 FPS,
// sift the heaviest stage (DESIGN.md §5).
func DefaultProfiles() Profiles {
	return Profiles{
		wire.StepPrimary: {
			Step:        wire.StepPrimary,
			CPUTime:     4 * time.Millisecond, // 240 FPS cap (Fig. 8)
			BaselineMem: 400 << 20,
		},
		wire.StepSIFT: {
			Step:        wire.StepSIFT,
			CPUTime:     3 * time.Millisecond,
			GPUTime:     11 * time.Millisecond, // heaviest service
			BaselineMem: 1200 << 20,
			StateBytes:  24 << 20, // held descriptors + retained pyramid
			FetchServe:  time.Millisecond,
		},
		// The three stages whose real services implement BatchHandler
		// declare setup components (posterior/gradient scratch priming,
		// hash-table lock + key slab, distance-matrix fill) that a batch
		// dispatch pays once.
		wire.StepEncoding: {
			Step:        wire.StepEncoding,
			CPUTime:     2500 * time.Microsecond,
			GPUTime:     5 * time.Millisecond,
			CPUSetup:    800 * time.Microsecond,
			GPUSetup:    2 * time.Millisecond,
			BaselineMem: 800 << 20,
		},
		wire.StepLSH: {
			Step:        wire.StepLSH,
			CPUTime:     1500 * time.Microsecond,
			GPUTime:     3 * time.Millisecond,
			CPUSetup:    500 * time.Microsecond,
			GPUSetup:    1200 * time.Microsecond,
			BaselineMem: 600 << 20,
		},
		wire.StepMatching: {
			Step:        wire.StepMatching,
			CPUTime:     3 * time.Millisecond,
			GPUTime:     6 * time.Millisecond,
			CPUSetup:    1 * time.Millisecond,
			GPUSetup:    2 * time.Millisecond,
			BaselineMem: 1000 << 20,
		},
	}
}

// Validate checks every profile and that steps are self-consistent.
func (ps Profiles) Validate() error {
	for i, p := range ps {
		if int(p.Step) != i {
			return fmt.Errorf("core: profile %d labelled %s", i, p.Step)
		}
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}
