package core

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/wire"
)

// Mode selects the pipeline variant under test.
type Mode int

// The two systems the paper evaluates.
const (
	// ModeScatter is the baseline: stateful sift with a matching fetch
	// dependency loop, one frame in flight per service, and busy-drop
	// semantics (outstanding requests at busy services are dropped).
	ModeScatter Mode = iota
	// ModeScatterPP is scAtteR++: stateless sift (state rides in the
	// frame) and a sidecar in front of every service that queues,
	// threshold-filters, and RPCs requests in FIFO order.
	ModeScatterPP
)

// String names the mode as in the paper.
func (m Mode) String() string {
	if m == ModeScatterPP {
		return "scAtteR++"
	}
	return "scAtteR"
}

// Options tunes pipeline semantics. NewPipeline fills zero fields with
// the paper's parameters.
type Options struct {
	Mode Mode
	// Threshold is the scAtteR++ sidecar latency budget: frames whose
	// cumulative age exceeds it are dropped from the queue (100 ms, the
	// maximum tolerable XR latency).
	Threshold time.Duration
	// QueueCap bounds each sidecar queue.
	QueueCap int
	// FetchTimeout is how long matching busy-waits for sift's state
	// before discarding the frame (scAtteR).
	FetchTimeout time.Duration
	// StateTimeout is how long sift retains an unclaimed frame state.
	StateTimeout time.Duration
	// SidecarOverhead is the per-request RPC cost the sidecar adds.
	SidecarOverhead time.Duration
	// LBOverhead is the semantic-addressing proxy cost added when a step
	// has multiple replicas to balance across.
	LBOverhead time.Duration
	// ResultBytes is the size of the processed frame returned to the
	// client.
	ResultBytes int
	// ReliableTransport retransmits frames lost on a link instead of
	// dropping them (the paper's A.1.2 note that improved network
	// protocols instead of UDP may alleviate the hybrid deployment's
	// frame drops). Each retry costs one link RTT plus a small
	// retransmission timeout; Retries bounds the attempts (default 3
	// when reliable).
	ReliableTransport bool
	Retries           int
	// BatchMax caps how many queued frames a scAtteR++ sidecar coalesces
	// into one dispatch at services whose profile declares a setup
	// component (ServiceProfile.Batchable). 1 (the default) disables
	// batching.
	BatchMax int
	// BatchSlack is the flush margin of the batch former: a forming
	// batch is dispatched as soon as the oldest member's remaining
	// latency budget (Threshold minus queue wait) drops to this slack,
	// so waiting for more frames can never push a frame past its
	// threshold. Default 10 ms.
	BatchSlack time.Duration
	// WeightedRouting replaces the plain round-robin replica selection
	// with the runtime's stats-driven power-of-two-choices over live
	// per-replica windows (mirroring agent.StatsRouter). Windows are fed
	// at admission, exactly like the real data plane's hop acks: an
	// accepted frame is an OK outcome carrying the hop's transit+wait
	// latency; a busy/overflow drop or a terminal link loss is a loss
	// outcome. While any window of a step is cold, selection falls back
	// to the same deterministic round-robin as when this flag is off.
	WeightedRouting bool
	// RouteStats tunes the route windows when WeightedRouting is on. The
	// zero value takes the routestats defaults; Now is always overridden
	// with the engine's virtual clock, and a zero Seed is drawn from the
	// engine's deterministic RNG so runs stay reproducible.
	RouteStats routestats.Config
	// FastPath mirrors the runtime's tracker-gated recognition fast path
	// (core.FastPathGate): once a client's tracker is warm, frames are
	// answered at the primary stage for only GateCost and skip
	// sift→encoding→lsh→matching entirely. Disabled (the zero value),
	// scheduling is bit-identical to a build without the option.
	FastPath FastPathSimOptions
	// Sharding mirrors the sharded reference database (lsh.ShardedIndex /
	// agent.ShardGather) at the lsh step: per-dispatch compute drops to
	// the per-shard share plus a gather overhead, and shard legs can miss
	// the gather window. Disabled (the zero value), scheduling is
	// bit-identical to a build without the option.
	Sharding ShardingSimOptions
}

// ShardingSimOptions mirrors the scatter/gather reference-database layout
// on the simulator's virtual clock. The sim holds no reference vectors;
// what it models is the cost shape: each lsh dispatch pays the ranking
// cost of one shard's partition (CPUTime/Shards — candidate counts scale
// with partition size) plus the fan-out/merge overhead, and a shard leg
// that misses the gather window stalls the gather for GatherTimeout.
// Below-quorum gathers proceed with empty candidates, exactly like the
// runtime's ShardGather returning nil to the recognition service.
type ShardingSimOptions struct {
	Enabled bool
	// Shards is the hash-space partition count (default 4).
	Shards int
	// Replication is the replicas kept per shard — telemetry only in the
	// sim, where replica choice has no cost asymmetry (default 1).
	Replication int
	// Quorum is the minimum shard responses a gather needs to deliver
	// candidates. Zero defaults to Shards — strict bit-identity.
	Quorum int
	// GatherOverhead is the per-gather fan-out + k-way merge cost added
	// on top of the per-shard compute (default 200µs).
	GatherOverhead time.Duration
	// GatherTimeout is how long a gather waits out missing shard legs
	// (default 20ms).
	GatherTimeout time.Duration
	// ShardLossProb is the per-leg probability a shard misses the gather
	// window (replica overload, transit loss). Drawn from the engine's
	// deterministic RNG.
	ShardLossProb float64
}

// FastPathSimOptions mirrors FastPathConfig on the simulator's virtual
// clock. The sim has no real frames or trackers, so warm-up is modelled
// on delivered full recognitions: after WarmHits consecutive full results
// a client's track is warm; warm frames skip, except every
// RefreshEvery-th frame (drift-bounding refresh) and after TrackTTL
// without any result (track loss — e.g. the client stalled or its frames
// were dropped).
type FastPathSimOptions struct {
	Enabled bool
	// WarmHits is how many full recognitions must be delivered back-to-
	// back before the gate starts skipping (default 3 — the confidence
	// EWMA's rise time at the default gain).
	WarmHits int
	// RefreshEvery forces a full recognition at least every N-th frame
	// per client (default 30).
	RefreshEvery int
	// TrackTTL is how long a track survives without any delivered result
	// before the warm state resets (default 2s).
	TrackTTL time.Duration
	// GateCost is the primary-stage compute a skipped frame pays (gate
	// lookup + verdict copy) instead of the full pipeline (default 100µs).
	GateCost time.Duration
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 100 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 30 * time.Millisecond
	}
	if o.StateTimeout <= 0 {
		o.StateTimeout = time.Second
	}
	if o.SidecarOverhead <= 0 {
		o.SidecarOverhead = 300 * time.Microsecond
	}
	if o.LBOverhead <= 0 {
		o.LBOverhead = 800 * time.Microsecond
	}
	if o.ResultBytes <= 0 {
		o.ResultBytes = trace.FrameBytes(false)
	}
	if o.ReliableTransport && o.Retries <= 0 {
		o.Retries = 3
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 1
	}
	if o.BatchSlack <= 0 {
		o.BatchSlack = 10 * time.Millisecond
	}
	if o.FastPath.Enabled {
		if o.FastPath.WarmHits <= 0 {
			o.FastPath.WarmHits = 3
		}
		if o.FastPath.RefreshEvery <= 0 {
			o.FastPath.RefreshEvery = 30
		}
		if o.FastPath.TrackTTL <= 0 {
			o.FastPath.TrackTTL = 2 * time.Second
		}
		if o.FastPath.GateCost <= 0 {
			o.FastPath.GateCost = 100 * time.Microsecond
		}
	}
	if o.Sharding.Enabled {
		if o.Sharding.Shards <= 0 {
			o.Sharding.Shards = 4
		}
		if o.Sharding.Replication <= 0 {
			o.Sharding.Replication = 1
		}
		if o.Sharding.Quorum <= 0 || o.Sharding.Quorum > o.Sharding.Shards {
			o.Sharding.Quorum = o.Sharding.Shards
		}
		if o.Sharding.GatherOverhead <= 0 {
			o.Sharding.GatherOverhead = 200 * time.Microsecond
		}
		if o.Sharding.GatherTimeout <= 0 {
			o.Sharding.GatherTimeout = 20 * time.Millisecond
		}
	}
	return o
}

// Placement assigns each pipeline step a set of machine replicas, in
// order. Placement[wire.StepSIFT] = {E1, E2} deploys two sift replicas.
type Placement [wire.NumSteps][]*testbed.Machine

// PlaceAll returns a placement with every service on a single machine.
func PlaceAll(m *testbed.Machine) Placement {
	var p Placement
	for i := range p {
		p[i] = []*testbed.Machine{m}
	}
	return p
}

// PlaceOrdered returns a placement with one replica per step on the given
// machines, ordered [primary, sift, encoding, lsh, matching]. It panics
// unless exactly wire.NumSteps machines are given.
func PlaceOrdered(machines ...*testbed.Machine) Placement {
	if len(machines) != wire.NumSteps {
		panic(fmt.Sprintf("core: PlaceOrdered needs %d machines, got %d", wire.NumSteps, len(machines)))
	}
	var p Placement
	for i, m := range machines {
		p[i] = []*testbed.Machine{m}
	}
	return p
}

// Validate checks the placement covers every step.
func (pl Placement) Validate() error {
	for i, replicas := range pl {
		if len(replicas) == 0 {
			return fmt.Errorf("core: step %s has no replicas", wire.Step(i))
		}
		for _, m := range replicas {
			if m == nil {
				return fmt.Errorf("core: step %s has nil machine", wire.Step(i))
			}
		}
	}
	return nil
}

// simFrame is the unit of work in the simulated pipeline.
type simFrame struct {
	clientID uint32
	frameNo  uint64
	capture  sim.Time
	bytes    int
	sticky   *Instance // sift replica holding this frame's state (scAtteR)
	// hopRep is the route window of the replica this frame is currently
	// in flight to (WeightedRouting); the admission outcome resolves it.
	hopRep    *routestats.Replica
	hopSentAt sim.Time
	// fast marks a frame answered by the fast-path gate at primary; its
	// delivery must not bump the client's warm state.
	fast bool
}

// simTrack is the per-client warm state of the simulated fast path.
type simTrack struct {
	fulls    int // consecutive delivered full recognitions
	skips    int // frames skipped since the last full recognition
	lastFull sim.Time
}

type stateKey struct {
	client uint32
	frame  uint64
}

type stateEntry struct {
	bytes   int64
	timeout *sim.Event
}

type queuedFrame struct {
	fr *simFrame
	at sim.Time
}

// Instance is one deployed replica of a pipeline service.
type Instance struct {
	p       *Pipeline
	step    wire.Step
	replica int
	machine *testbed.Machine
	prof    ServiceProfile

	busy   bool
	queue  []queuedFrame
	states map[stateKey]*stateEntry
	// flush is the pending slack-deadline flush of a forming batch; nil
	// when no batch is waiting for more frames.
	flush *sim.Event

	cpuBusy  time.Duration
	gpuBusy  time.Duration
	stateMem int64

	// retired marks a replica removed by scale-in: it takes no new
	// frames (already out of the routing table) and frees its baseline
	// memory once drained (released).
	retired  bool
	released bool
}

// Name returns the service name (shared across replicas, as the paper's
// per-service figures aggregate replicas).
func (in *Instance) Name() string { return in.step.String() }

// Machine returns the hosting machine.
func (in *Instance) Machine() *testbed.Machine { return in.machine }

// QueueLen returns the sidecar queue length (scAtteR++).
func (in *Instance) QueueLen() int { return len(in.queue) }

// StateCount returns the number of held frame states (sift, scAtteR).
func (in *Instance) StateCount() int { return len(in.states) }

// Pipeline wires clients, service instances, and the network fabric into
// one simulated deployment.
type Pipeline struct {
	eng      *sim.Engine
	fabric   *Fabric
	col      *metrics.Collector
	opts     Options
	profiles Profiles
	tracer   *obs.Recorder

	instances [wire.NumSteps][]*Instance
	rr        [wire.NumSteps]int
	machines  []*testbed.Machine
	clients   int

	// admit holds the per-service admission verdicts pushed by an
	// application-aware controller (SetAdmitState); admissionDrops counts
	// the frames they refused, per step.
	admit          [wire.NumSteps]AdmitState
	admissionDrops [wire.NumSteps]uint64

	// routes mirrors the runtime's per-replica statistics windows on the
	// virtual clock (WeightedRouting); nil when routing is plain RR.
	routes *routestats.Table
	repOf  map[*Instance]*routestats.Replica

	// fastTracks is the per-client warm state of the simulated fast path;
	// nil when Options.FastPath is disabled.
	fastTracks map[uint32]*simTrack

	// shardSim counts the simulated scatter/gather activity at the lsh
	// step (Options.Sharding). The sim engine is single-threaded, so
	// plain fields suffice.
	shardSim struct {
		fanOuts     uint64
		gathers     uint64
		partials    uint64
		dropped     uint64
		belowQuorum uint64
		waitMicros  uint64
	}
}

// NewPipeline deploys the pipeline per the placement. It panics on
// invalid placement or profiles (experiment construction errors).
func NewPipeline(eng *sim.Engine, fabric *Fabric, col *metrics.Collector,
	placement Placement, profiles Profiles, opts Options) *Pipeline {
	if err := placement.Validate(); err != nil {
		panic(err)
	}
	if err := profiles.Validate(); err != nil {
		panic(err)
	}
	p := &Pipeline{
		eng:      eng,
		fabric:   fabric,
		col:      col,
		opts:     opts.withDefaults(),
		profiles: profiles,
	}
	seen := make(map[string]bool)
	for step := range placement {
		for r, m := range placement[step] {
			in := &Instance{
				p:       p,
				step:    wire.Step(step),
				replica: r,
				machine: m,
				prof:    profiles[step],
				states:  make(map[stateKey]*stateEntry),
			}
			// Reserve the instance's baseline memory for the whole run.
			if !m.AllocMem(in.prof.BaselineMem) {
				panic(fmt.Sprintf("core: machine %s cannot host %s baseline memory", m.Name(), in.Name()))
			}
			p.instances[step] = append(p.instances[step], in)
			if !seen[m.Name()] {
				seen[m.Name()] = true
				p.machines = append(p.machines, m)
			}
		}
	}
	if p.opts.FastPath.Enabled {
		p.fastTracks = make(map[uint32]*simTrack)
	}
	if p.opts.WeightedRouting {
		cfg := p.opts.RouteStats
		if cfg.Seed == 0 {
			cfg.Seed = uint64(eng.Rand().Int63())
		}
		cfg.Now = func() int64 { return int64(p.eng.Now()) }
		p.routes = routestats.New(cfg)
		p.repOf = make(map[*Instance]*routestats.Replica)
		for step := range p.instances {
			p.syncRoutes(wire.Step(step))
		}
	}
	return p
}

// routeAddr is the synthetic replica address the sim's route windows are
// keyed by — unique per (machine, replica slot) within a step.
func (in *Instance) routeAddr() string {
	return fmt.Sprintf("%s#%d", in.machine.Name(), in.replica)
}

// syncRoutes rebuilds the route window set of one step from the deployed
// replicas (windows of surviving replicas are preserved by address).
func (p *Pipeline) syncRoutes(step wire.Step) {
	if p.routes == nil {
		return
	}
	reps := p.instances[step]
	addrs := make([]string, len(reps))
	for i, in := range reps {
		addrs[i] = in.routeAddr()
	}
	p.routes.SetReplicas(step, addrs)
	for i, in := range reps {
		p.repOf[in] = p.routes.Find(step, addrs[i])
	}
}

// RouteDigests snapshots the per-replica routing windows, or nil when
// WeightedRouting is off.
func (p *Pipeline) RouteDigests() []routestats.RouteDigest {
	if p.routes == nil {
		return nil
	}
	return p.routes.Digest()
}

// Instances returns the replicas deployed for a step.
func (p *Pipeline) Instances(step wire.Step) []*Instance { return p.instances[step] }

// AddReplica deploys an additional replica of step on machine at the
// current virtual time — dynamic scale-out, the operation an
// application-aware orchestrator performs when sidecar analytics report
// distress. It returns an error when the machine cannot host the
// service's baseline memory.
func (p *Pipeline) AddReplica(step wire.Step, m *testbed.Machine) (*Instance, error) {
	if !step.Valid() || step == wire.StepDone {
		return nil, fmt.Errorf("core: cannot add replica for step %v", step)
	}
	prof := p.profiles[step]
	if !m.AllocMem(prof.BaselineMem) {
		return nil, fmt.Errorf("core: machine %s cannot host %s baseline memory", m.Name(), step)
	}
	in := &Instance{
		p:       p,
		step:    step,
		replica: len(p.instances[step]),
		machine: m,
		prof:    prof,
		states:  make(map[stateKey]*stateEntry),
	}
	p.instances[step] = append(p.instances[step], in)
	p.syncRoutes(step)
	known := false
	for _, existing := range p.machines {
		if existing == m {
			known = true
			break
		}
	}
	if !known {
		p.machines = append(p.machines, m)
	}
	return in, nil
}

// RemoveReplica retires the most recently added replica of step —
// dynamic scale-in, the inverse of AddReplica. The replica leaves the
// routing table immediately so no new frames reach it; frames already
// queued or in flight on it drain normally, and its baseline memory is
// released once it goes idle (immediately when it already is). Scaling a
// service below one replica is refused.
func (p *Pipeline) RemoveReplica(step wire.Step) error {
	if !step.Valid() || step == wire.StepDone {
		return fmt.Errorf("core: cannot remove replica for step %v", step)
	}
	reps := p.instances[step]
	if len(reps) <= 1 {
		return fmt.Errorf("core: %s has %d replica(s); cannot scale below one", step, len(reps))
	}
	in := reps[len(reps)-1]
	p.instances[step] = reps[:len(reps)-1]
	p.syncRoutes(step)
	if p.repOf != nil {
		delete(p.repOf, in)
	}
	in.retired = true
	in.maybeReleaseRetired()
	return nil
}

// maybeReleaseRetired frees a retired replica's baseline memory once it
// has fully drained (not busy, empty queue, no pending batch flush).
// Held sift states stay allocated until fetched or timed out — their
// release path already runs on the state lifecycle.
func (in *Instance) maybeReleaseRetired() {
	if !in.retired || in.released || in.busy || len(in.queue) > 0 || in.flush != nil {
		return
	}
	in.released = true
	in.machine.FreeMem(in.prof.BaselineMem)
}

// SetAdmitState installs a service's admission verdict — the sim mirror
// of the heartbeat-carried admit state the real sidecar enforces. It
// applies to frames arriving after this virtual instant.
func (p *Pipeline) SetAdmitState(step wire.Step, s AdmitState) {
	if !step.Valid() || step == wire.StepDone {
		return
	}
	p.admit[step] = s
}

// AdmitStateOf returns a service's current admission verdict.
func (p *Pipeline) AdmitStateOf(step wire.Step) AdmitState { return p.admit[step] }

// AdmissionDrops returns how many frames admission control refused at a
// step's ingress.
func (p *Pipeline) AdmissionDrops(step wire.Step) uint64 { return p.admissionDrops[step] }

// Options returns the effective options after defaulting.
func (p *Pipeline) Options() Options { return p.opts }

// SetTracer attaches a span recorder: every frame's passage through every
// service — both modes, all five stages, including drops — is recorded as
// an obs.Span. A nil recorder (the default) disables tracing with no
// overhead beyond a nil check, so benchmarks run untraced.
func (p *Pipeline) SetTracer(rec *obs.Recorder) { p.tracer = rec }

// Tracer returns the attached span recorder (nil when tracing is off).
func (p *Pipeline) Tracer() *obs.Recorder { return p.tracer }

// recordSpan emits one span for fr at this instance. enqueue/start/end
// are virtual times; for drops that never started processing, start and
// end coincide.
func (in *Instance) recordSpan(fr *simFrame, enqueue, start, end sim.Time, outcome obs.Outcome) {
	if in.p.tracer == nil {
		return
	}
	in.p.tracer.Record(obs.Span{
		Service:   in.Name(),
		Host:      in.machine.Name(),
		Step:      in.step,
		ClientID:  fr.clientID,
		FrameNo:   fr.frameNo,
		EnqueueAt: enqueue,
		StartAt:   start,
		EndAt:     end,
		Queue:     start - enqueue,
		Proc:      end - start,
		Outcome:   outcome,
	})
}

// route picks the replica that will serve the next request at a step:
// plain round-robin (Oakestra's semantic addressing), or — with
// WeightedRouting and warm windows — the runtime's power-of-two-choices
// over live replica weights. In scAtteR, frames balanced across sift
// replicas remain tied to the replica that processed them — downstream
// state fetches must go there (simFrame.sticky), which is why balancing
// cannot relieve the dependency loop.
func (p *Pipeline) route(step wire.Step, clientID uint32) *Instance {
	replicas := p.instances[step]
	if p.routes != nil && len(replicas) > 1 {
		if _, i, ok := p.routes.Pick(step); ok {
			return replicas[i]
		}
	}
	in := replicas[p.rr[step]%len(replicas)]
	p.rr[step]++
	return in
}

// send transits a frame from an endpoint to an instance, applying load-
// balancing overhead when the target step is replicated. Lost frames are
// terminal unless ReliableTransport retransmits them. With
// WeightedRouting the hop is charged to the target's route window: a
// terminal link loss resolves it as lost here, admission at the far end
// resolves it otherwise (routeOutcome).
func (p *Pipeline) send(from string, in *Instance, fr *simFrame) {
	var onLost func()
	if p.routes != nil {
		if rep := p.repOf[in]; rep != nil {
			rep.Begin()
			fr.hopRep = rep
			fr.hopSentAt = p.eng.Now()
			onLost = func() {
				fr.hopRep = nil
				rep.Outcome(0, false)
			}
		}
	}
	p.transit(p.fabric.Link(from, in.machine.Name()), fr.bytes, func() {
		p.arrive(in, fr)
	}, len(p.instances[in.step]) > 1, onLost)
}

// routeOutcome resolves a frame's in-flight hop against the target's
// route window — the sim's equivalent of the data plane's
// ack-on-admission: ok with the hop latency when the frame was admitted,
// lost when it was dropped at ingress.
func (p *Pipeline) routeOutcome(fr *simFrame, ok bool) {
	if fr.hopRep == nil {
		return
	}
	fr.hopRep.Outcome(time.Duration(p.eng.Now()-fr.hopSentAt), ok)
	fr.hopRep = nil
}

// transit moves bytes across a link and runs onArrive on delivery,
// applying the reliability policy. lb adds the load-balancing proxy
// overhead. onLost (may be nil) fires when the frame is terminally lost
// on the link.
func (p *Pipeline) transit(link *netem.Link, bytes int, onArrive func(), lb bool, onLost func()) {
	attempts := 1
	if p.opts.ReliableTransport {
		attempts += p.opts.Retries
	}
	var try func(left int)
	try = func(left int) {
		delay, dropped := link.Transit(bytes)
		if dropped {
			if left > 1 {
				// Loss detection costs roughly one RTT (ack timeout)
				// before the retransmission goes out.
				rto := link.Config().RTT + 10*time.Millisecond
				p.eng.After(rto, func() { try(left - 1) })
				return
			}
			p.col.FrameDropped(metrics.DropLoss)
			if onLost != nil {
				onLost()
			}
			return
		}
		if lb {
			delay += p.opts.LBOverhead
		}
		p.eng.After(delay, onArrive)
	}
	try(attempts)
}

// arrive is a frame hitting a service ingress. Admission resolves the
// hop's route window (WeightedRouting), mirroring the real data plane's
// ack-on-admission: a busy/overflow drop never acks, so it counts as a
// loss at the sender.
func (p *Pipeline) arrive(in *Instance, fr *simFrame) {
	p.col.ServiceArrived(in.Name(), p.eng.Now())
	// Admission control holds the door before either mode's queue/busy
	// check: reject turns every frame away, degrade decimates the ingress
	// to one frame in DegradeStride by frame number. Refused frames
	// resolve their hop as lost (no ack on the real data plane) and are
	// accounted as admission drops, not distress drops.
	if st := p.admit[in.step]; st != AdmitOK {
		if st == AdmitReject || fr.frameNo%DegradeStride != 0 {
			p.routeOutcome(fr, false)
			p.admissionDrops[in.step]++
			p.col.ServiceAdmissionDropped(in.Name())
			p.col.FrameDropped(metrics.DropAdmission)
			in.recordSpan(fr, p.eng.Now(), p.eng.Now(), p.eng.Now(), obs.OutcomeAdmission)
			return
		}
	}
	if p.opts.Mode == ModeScatter {
		if in.busy {
			// One frame at a time, no queue: outstanding requests at
			// busy services are dropped.
			p.routeOutcome(fr, false)
			p.col.ServiceDroppedAt(in.Name(), p.eng.Now())
			p.col.FrameDropped(metrics.DropBusy)
			in.recordSpan(fr, p.eng.Now(), p.eng.Now(), p.eng.Now(), obs.OutcomeBusy)
			return
		}
		p.routeOutcome(fr, true)
		in.busy = true
		in.start(fr, 0)
		return
	}
	// scAtteR++: sidecar queue.
	if len(in.queue) >= p.opts.QueueCap {
		p.routeOutcome(fr, false)
		p.col.ServiceDroppedAt(in.Name(), p.eng.Now())
		p.col.FrameDropped(metrics.DropOverflow)
		in.recordSpan(fr, p.eng.Now(), p.eng.Now(), p.eng.Now(), obs.OutcomeOverflow)
		return
	}
	p.routeOutcome(fr, true)
	in.queue = append(in.queue, queuedFrame{fr: fr, at: p.eng.Now()})
	in.kick()
}

// kick dispatches the sidecar queue: it filters frames that exceeded the
// latency threshold and, if idle, either starts the oldest admissible
// frame or — at batchable services with BatchMax > 1 — forms a batch,
// waiting for more frames until the oldest member's remaining latency
// budget drops to BatchSlack.
func (in *Instance) kick() {
	if in.busy {
		return
	}
	p := in.p
	// The sidecar's timing threshold applies to how long the request
	// waited in this sidecar's queue: a frame that queued past the
	// latency budget is no longer worth processing.
	for len(in.queue) > 0 {
		q := in.queue[0]
		wait := p.eng.Now() - q.at
		if wait <= p.opts.Threshold {
			break
		}
		copy(in.queue, in.queue[1:])
		in.queue = in.queue[:len(in.queue)-1]
		p.col.ServiceDroppedAt(in.Name(), p.eng.Now())
		p.col.FrameDropped(metrics.DropThreshold)
		in.recordSpan(q.fr, q.at, p.eng.Now(), p.eng.Now(), obs.OutcomeThreshold)
	}
	if len(in.queue) == 0 {
		return
	}
	if p.opts.BatchMax > 1 && in.prof.Batchable() {
		if len(in.queue) < p.opts.BatchMax {
			// Not full yet: hold the batch open until the oldest frame's
			// remaining budget hits the slack, then flush what we have.
			deadline := in.queue[0].at + p.opts.Threshold - p.opts.BatchSlack
			if p.eng.Now() < deadline {
				if in.flush == nil {
					in.flush = p.eng.At(deadline, func() {
						in.flush = nil
						in.kick()
					})
				}
				return
			}
		}
		n := len(in.queue)
		if n > p.opts.BatchMax {
			n = p.opts.BatchMax
		}
		in.startBatch(n)
		return
	}
	q := in.queue[0]
	copy(in.queue, in.queue[1:])
	in.queue = in.queue[:len(in.queue)-1]
	in.busy = true
	in.start(q.fr, p.eng.Now()-q.at)
}

// start runs the service's compute phases for one frame: the CPU phase
// (plus sidecar RPC overhead in scAtteR++), then the GPU phase if any,
// then step-specific completion.
func (in *Instance) start(fr *simFrame, queueWait time.Duration) {
	p := in.p
	began := p.eng.Now()
	// The tracker-gated fast path answers warm clients' frames at the
	// head of the pipeline for only the gate cost.
	if in.step == wire.StepPrimary && p.fastSkip(fr) {
		in.runGate(fr, queueWait, began)
		return
	}
	// scAtteR's matching first fetches the frame's state from sift.
	if in.step == wire.StepMatching && p.opts.Mode == ModeScatter {
		in.fetchThenProcess(fr, queueWait, began)
		return
	}
	in.runPhases(fr, queueWait, began)
}

// fastSkip decides whether fr can be answered from the client's warm
// track, mirroring FastPathGate.VerdictAppend: the track must be warm
// (WarmHits consecutive full recognitions), fresh (within TrackTTL), and
// not due for its RefreshEvery-th drift-bounding refresh.
func (p *Pipeline) fastSkip(fr *simFrame) bool {
	if p.fastTracks == nil {
		return false
	}
	t := p.fastTracks[fr.clientID]
	if t == nil {
		return false
	}
	fp := p.opts.FastPath
	if t.fulls > 0 && p.eng.Now()-t.lastFull > fp.TrackTTL {
		// Track loss: no result reached this client recently enough.
		t.fulls, t.skips = 0, 0
		return false
	}
	if t.fulls < fp.WarmHits || t.skips+1 >= fp.RefreshEvery {
		return false
	}
	t.skips++
	return true
}

// runGate is the fast-path service phase at primary: the frame pays only
// the gate lookup + verdict copy (plus the sidecar RPC in scAtteR++) and
// is delivered directly, never touching sift→matching.
func (in *Instance) runGate(fr *simFrame, queueWait time.Duration, began sim.Time) {
	p := in.p
	fr.fast = true
	cpu := in.machine.ComputeTime(p.opts.FastPath.GateCost, false)
	if p.opts.Mode == ModeScatterPP {
		cpu += p.opts.SidecarOverhead
	}
	in.machine.CPU.Acquire(func() {
		p.eng.After(cpu, func() {
			in.machine.CPU.Release()
			in.cpuBusy += cpu
			p.col.ServiceProcessed(in.Name(), queueWait, p.eng.Now()-began)
			p.col.FastPathSkipped()
			in.recordSpan(fr, began-queueWait, began, p.eng.Now(), obs.OutcomeOK)
			in.deliver(fr)
			in.idle()
		})
	})
}

// shardedCompute maps one lsh dispatch (batchN frames; 1 = serial) onto
// the scatter/gather cost model: per-shard compute is the monolithic
// cost over the shard count (candidate volume scales with partition
// size), every gather pays the fan-out/merge overhead, and a gather with
// missing shard legs waits out the gather window. It also advances the
// scatter/gather counters.
func (in *Instance) shardedCompute(batchN int) time.Duration {
	p := in.p
	sh := p.opts.Sharding
	perShard := in.prof.CPUTime / time.Duration(sh.Shards)
	var cpu time.Duration
	if batchN <= 1 {
		cpu = in.machine.ComputeTime(perShard, false)
	} else {
		cpu = in.machine.ComputeTimeBatch(perShard, in.prof.CPUSetup, batchN, false)
	}
	cpu += sh.GatherOverhead
	misses := 0
	if sh.ShardLossProb > 0 {
		for s := 0; s < sh.Shards; s++ {
			if p.eng.Rand().Float64() < sh.ShardLossProb {
				misses++
			}
		}
	}
	p.shardSim.fanOuts += uint64(sh.Shards)
	if misses > 0 {
		p.shardSim.dropped += uint64(misses)
		cpu += sh.GatherTimeout
		if sh.Shards-misses >= sh.Quorum {
			p.shardSim.partials++
			p.shardSim.gathers++
		} else {
			// Below quorum the gather delivers no candidates; the frame
			// still flows, recognition just comes back empty — exactly
			// the runtime ShardGather contract.
			p.shardSim.belowQuorum++
		}
	} else {
		p.shardSim.gathers++
	}
	p.shardSim.waitMicros += uint64(cpu / time.Microsecond)
	return cpu
}

// shardedStep reports whether this dispatch goes through the simulated
// scatter/gather path.
func (in *Instance) shardedStep() bool {
	return in.p.opts.Sharding.Enabled && in.step == wire.StepLSH
}

// ShardDigest snapshots the simulated scatter/gather counters in the
// obs exposition shape; ok is false when sharding is disabled.
func (p *Pipeline) ShardDigest() (obs.ShardDigest, bool) {
	if !p.opts.Sharding.Enabled {
		return obs.ShardDigest{}, false
	}
	return obs.ShardDigest{
		Shards:           p.opts.Sharding.Shards,
		Replication:      p.opts.Sharding.Replication,
		FanOuts:          p.shardSim.fanOuts,
		Gathers:          p.shardSim.gathers,
		PartialGathers:   p.shardSim.partials,
		DroppedShards:    p.shardSim.dropped,
		BelowQuorum:      p.shardSim.belowQuorum,
		GatherWaitMicros: p.shardSim.waitMicros,
	}, true
}

func (in *Instance) runPhases(fr *simFrame, queueWait time.Duration, began sim.Time) {
	p := in.p
	cpu := in.machine.ComputeTime(in.prof.CPUTime, false)
	if in.shardedStep() {
		cpu = in.shardedCompute(1)
	}
	if p.opts.Mode == ModeScatterPP {
		cpu += p.opts.SidecarOverhead
	}
	in.machine.CPU.Acquire(func() {
		p.eng.After(cpu, func() {
			in.machine.CPU.Release()
			in.cpuBusy += cpu
			if !in.prof.UsesGPU() {
				in.finish(fr, queueWait, began)
				return
			}
			gpu := in.machine.ComputeTime(in.prof.GPUTime, true)
			in.machine.GPU.Acquire(func() {
				p.eng.After(gpu, func() {
					in.machine.GPU.Release()
					in.gpuBusy += gpu
					in.finish(fr, queueWait, began)
				})
			})
		})
	})
}

// startBatch dispatches the first n queued frames as one batch: the
// service pays its setup cost once plus the marginal cost per frame
// (testbed.ComputeTimeBatch), holding the CPU/GPU slots for the whole
// batch window. One sidecar RPC carries the batch.
func (in *Instance) startBatch(n int) {
	p := in.p
	if in.flush != nil {
		in.flush.Cancel()
		in.flush = nil
	}
	batch := make([]queuedFrame, n)
	copy(batch, in.queue[:n])
	in.queue = in.queue[:copy(in.queue, in.queue[n:])]
	in.busy = true
	began := p.eng.Now()
	cpu := in.machine.ComputeTimeBatch(in.prof.CPUTime, in.prof.CPUSetup, n, false)
	if in.shardedStep() {
		cpu = in.shardedCompute(n)
	}
	if p.opts.Mode == ModeScatterPP {
		cpu += p.opts.SidecarOverhead
	}
	in.machine.CPU.Acquire(func() {
		p.eng.After(cpu, func() {
			in.machine.CPU.Release()
			in.cpuBusy += cpu
			if !in.prof.UsesGPU() {
				in.finishBatch(batch, began)
				return
			}
			gpu := in.machine.ComputeTimeBatch(in.prof.GPUTime, in.prof.GPUSetup, n, true)
			in.machine.GPU.Acquire(func() {
				p.eng.After(gpu, func() {
					in.machine.GPU.Release()
					in.gpuBusy += gpu
					in.finishBatch(batch, began)
				})
			})
		})
	})
}

// finishBatch completes a batch dispatch: per-frame service metrics are
// recorded with the amortized processing share (so service-latency
// aggregates stay comparable to serial runs), per-frame spans carry the
// full batch residency window, and one extra "<service>/batch" span
// records the dispatch itself with the batch size in FrameNo.
func (in *Instance) finishBatch(batch []queuedFrame, began sim.Time) {
	p := in.p
	now := p.eng.Now()
	share := (now - began) / time.Duration(len(batch))
	for _, q := range batch {
		p.col.ServiceProcessed(in.Name(), began-q.at, share)
		in.recordSpan(q.fr, q.at, began, now, obs.OutcomeOK)
	}
	if p.tracer != nil {
		first := batch[0]
		p.tracer.Record(obs.Span{
			Service:   in.Name() + "/batch",
			Host:      in.machine.Name(),
			Step:      in.step,
			ClientID:  first.fr.clientID,
			FrameNo:   uint64(len(batch)),
			EnqueueAt: first.at,
			StartAt:   began,
			EndAt:     now,
			Queue:     began - first.at,
			Proc:      now - began,
			Outcome:   obs.OutcomeOK,
		})
	}
	for _, q := range batch {
		fr := q.fr
		switch in.step {
		case wire.StepSIFT:
			if p.opts.Mode == ModeScatter {
				in.storeState(fr)
			} else {
				fr.bytes = trace.FrameBytes(true)
			}
		case wire.StepMatching:
			in.deliver(fr)
			continue
		}
		next := p.route(in.step.Next(), fr.clientID)
		p.send(in.machine.Name(), next, fr)
	}
	in.idle()
}

// finish records service metrics, forwards/delivers the frame, and frees
// the instance for the next request.
func (in *Instance) finish(fr *simFrame, queueWait time.Duration, began sim.Time) {
	p := in.p
	p.col.ServiceProcessed(in.Name(), queueWait, p.eng.Now()-began)
	in.recordSpan(fr, began-queueWait, began, p.eng.Now(), obs.OutcomeOK)
	switch in.step {
	case wire.StepSIFT:
		if p.opts.Mode == ModeScatter {
			in.storeState(fr)
		} else {
			// Stateless: descriptors and working state ride in the frame.
			fr.bytes = trace.FrameBytes(true)
		}
	case wire.StepMatching:
		in.deliver(fr)
		in.idle()
		return
	}
	next := p.route(in.step.Next(), fr.clientID)
	p.send(in.machine.Name(), next, fr)
	in.idle()
}

// idle releases the busy flag and, in scAtteR++, pulls the next queued
// frame.
func (in *Instance) idle() {
	in.busy = false
	if in.p.opts.Mode == ModeScatterPP {
		in.kick()
	}
	in.maybeReleaseRetired()
}

// deliver sends the processed frame back to its client. A full
// recognition completing here is the sim's equivalent of matching
// publishing into the gate: it bumps the client's warm state. Fast-path
// results never do.
func (in *Instance) deliver(fr *simFrame) {
	p := in.p
	if p.fastTracks != nil && !fr.fast {
		t := p.fastTracks[fr.clientID]
		if t == nil {
			t = &simTrack{}
			p.fastTracks[fr.clientID] = t
		}
		if t.fulls > 0 && p.eng.Now()-t.lastFull > p.opts.FastPath.TrackTTL {
			t.fulls = 0
		}
		t.fulls++
		t.skips = 0
		t.lastFull = p.eng.Now()
	}
	link := p.fabric.Link(in.machine.Name(), clientName(fr.clientID))
	capture := fr.capture
	clientID := fr.clientID
	p.transit(link, p.opts.ResultBytes, func() {
		p.col.FrameDelivered(clientID, capture, p.eng.Now())
	}, false, nil)
}

// storeState retains the frame's extracted features in sift's memory
// until matching fetches them or the retention timeout fires. A failed
// allocation (memory-constrained host) leaves no state, so matching will
// later miss.
func (in *Instance) storeState(fr *simFrame) {
	p := in.p
	fr.sticky = in
	key := stateKey{client: fr.clientID, frame: fr.frameNo}
	if !in.machine.AllocMem(in.prof.StateBytes) {
		p.col.StateAllocFailed()
		return
	}
	entry := &stateEntry{bytes: in.prof.StateBytes}
	entry.timeout = p.eng.After(p.opts.StateTimeout, func() {
		if _, ok := in.states[key]; ok {
			delete(in.states, key)
			in.stateMem -= entry.bytes
			in.machine.FreeMem(entry.bytes)
		}
	})
	in.states[key] = entry
	in.stateMem += entry.bytes
}

// takeState removes and returns whether the state for key was present,
// releasing its memory.
func (in *Instance) takeState(key stateKey) bool {
	entry, ok := in.states[key]
	if !ok {
		return false
	}
	entry.timeout.Cancel()
	delete(in.states, key)
	in.stateMem -= entry.bytes
	in.machine.FreeMem(entry.bytes)
	return true
}

// fetchBytes is the size of a state-fetch request/response header; the
// bulky state itself counts toward the response.
const fetchBytes = 1 << 10

// fetchThenProcess implements scAtteR's dependency loop: matching blocks
// on a state fetch to the sift replica holding the frame's state, holding
// its own busy flag (and thus dropping its ingress) until the response or
// a timeout.
func (in *Instance) fetchThenProcess(fr *simFrame, queueWait time.Duration, began sim.Time) {
	p := in.p
	sift := fr.sticky
	if sift == nil {
		// No sift state was ever recorded (should not happen in well-
		// formed deployments); treat as an immediate miss.
		p.col.FrameDropped(metrics.DropTimeout)
		in.recordSpan(fr, began-queueWait, began, p.eng.Now(), obs.OutcomeTimeout)
		in.idle()
		return
	}
	done := false
	timeout := p.eng.After(p.opts.FetchTimeout, func() {
		done = true
		p.col.FrameDropped(metrics.DropTimeout)
		in.recordSpan(fr, began-queueWait, began, p.eng.Now(), obs.OutcomeTimeout)
		in.idle()
	})
	key := stateKey{client: fr.clientID, frame: fr.frameNo}
	respond := func(hit bool) {
		respLink := p.fabric.Link(sift.machine.Name(), in.machine.Name())
		respSize := fetchBytes
		if hit {
			respSize = int(sift.prof.StateBytes / 64) // compacted on-wire state
		}
		delay, lost := respLink.Transit(respSize)
		if lost {
			return // matching's timeout will fire
		}
		p.eng.After(delay, func() {
			if done {
				return // response arrived after the timeout
			}
			done = true
			timeout.Cancel()
			if !hit {
				p.col.FrameDropped(metrics.DropTimeout)
				in.recordSpan(fr, began-queueWait, began, p.eng.Now(), obs.OutcomeTimeout)
				in.idle()
				return
			}
			in.runPhases(fr, queueWait, began)
		})
	}
	// The fetch request transits to sift and lands on its ingress: it is
	// dropped if sift is busy (the 2× load the paper identifies).
	reqLink := p.fabric.Link(in.machine.Name(), sift.machine.Name())
	delay, lost := reqLink.Transit(fetchBytes)
	if lost {
		return // timeout will fire
	}
	p.eng.After(delay, func() {
		p.col.ServiceArrived(sift.Name(), p.eng.Now())
		if sift.busy {
			p.col.ServiceDroppedAt(sift.Name(), p.eng.Now())
			return // fetch dropped; matching times out
		}
		sift.busy = true
		serve := sift.machine.ComputeTime(sift.prof.FetchServe, false)
		sift.machine.CPU.Acquire(func() {
			p.eng.After(serve, func() {
				sift.machine.CPU.Release()
				sift.cpuBusy += serve
				hit := sift.takeState(key)
				sift.idle()
				respond(hit)
			})
		})
	})
}

func clientName(id uint32) string { return fmt.Sprintf("client-%d", id) }

// ClientConfig describes one simulated client replaying the clip.
type ClientConfig struct {
	ID    uint32
	FPS   int      // default 30
	Start sim.Time // first frame emission
	Stop  sim.Time // emission stops at this time (exclusive)
	// EmitJitter perturbs each frame emission by ±EmitJitter (uniform),
	// modelling camera clock wobble — without it, clients at identical
	// frame rates phase-lock and collision patterns become degenerate.
	// Defaults to 2 ms; negative disables.
	EmitJitter time.Duration
}

// AddClient schedules a client's frame emissions.
func (p *Pipeline) AddClient(cfg ClientConfig) {
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	if cfg.Stop <= cfg.Start {
		panic("core: client Stop must be after Start")
	}
	if cfg.EmitJitter == 0 {
		cfg.EmitJitter = 2 * time.Millisecond
	} else if cfg.EmitJitter < 0 {
		cfg.EmitJitter = 0
	}
	p.clients++
	interval := time.Second / time.Duration(cfg.FPS)
	var frameNo uint64
	var emit func()
	emit = func() {
		if p.eng.Now() >= cfg.Stop {
			return
		}
		frameNo++
		p.col.FrameSent()
		fr := &simFrame{
			clientID: cfg.ID,
			frameNo:  frameNo,
			capture:  p.eng.Now(),
			bytes:    trace.FrameBytes(false),
		}
		in := p.route(wire.StepPrimary, cfg.ID)
		p.send(clientName(cfg.ID), in, fr)
		next := interval
		if cfg.EmitJitter > 0 {
			next += time.Duration(p.eng.Rand().Int63n(int64(2*cfg.EmitJitter))) - cfg.EmitJitter
		}
		p.eng.After(next, emit)
	}
	p.eng.At(cfg.Start, emit)
}

// Clients returns the number of clients added.
func (p *Pipeline) Clients() int { return p.clients }

// ServiceUsage is the per-service resource view of a run: resident memory
// (baseline + held state across replicas) and CPU/GPU utilization
// normalized against the total capacity of the deployed machines, as the
// paper normalizes.
type ServiceUsage struct {
	MemBytes int64
	CPUPct   float64
	GPUPct   float64
}

// Usage computes per-service resource usage over the run so far and the
// per-machine utilization snapshots.
func (p *Pipeline) Usage() (map[string]ServiceUsage, []metrics.MachineUsage) {
	duration := p.eng.Now()
	var totalCores, totalGPUs int
	for _, m := range p.machines {
		totalCores += m.Config().CPUCores
		totalGPUs += m.Config().GPUs
	}
	services := make(map[string]ServiceUsage, wire.NumSteps)
	for step := range p.instances {
		var u ServiceUsage
		for _, in := range p.instances[step] {
			u.MemBytes += in.prof.BaselineMem + in.stateMem
			if duration > 0 {
				if totalCores > 0 {
					u.CPUPct += float64(in.cpuBusy) / float64(time.Duration(totalCores)*duration)
				}
				if totalGPUs > 0 {
					u.GPUPct += float64(in.gpuBusy) / float64(time.Duration(totalGPUs)*duration)
				}
			}
		}
		services[wire.Step(step).String()] = u
	}
	machines := make([]metrics.MachineUsage, 0, len(p.machines))
	for _, m := range p.machines {
		machines = append(machines, metrics.MachineUsage{
			Machine:  m.Name(),
			CPUUtil:  m.CPU.Utilization(),
			GPUUtil:  m.GPU.Utilization(),
			MemBytes: m.MemUsed(),
			MemPeak:  m.MemPeak(),
			CPUBusy:  m.CPU.BusyIntegral(),
			GPUBusy:  m.GPU.BusyIntegral(),
			CPUSlots: m.Config().CPUCores,
			GPUSlots: m.Config().GPUs,
		})
	}
	return services, machines
}
