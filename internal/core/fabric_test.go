package core

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/sim"
)

func TestFabricDefaults(t *testing.T) {
	f := NewFabric(sim.New(1))
	cases := []struct {
		from, to string
		wantName string
	}{
		{"E1", "E1", "loopback"},
		{"E1", "E2", "e1-e2"},
		{"E2", "E1", "e1-e2"},
		{"E1", "cloud", "wan-transit"},
		{"cloud", "E2", "wan-transit"},
		{"client-1", "E1", "client-e1"},
		{"E1", "client-1", "client-e1"},
		{"client-1", "E2", "client-e1+lan"},
		{"client-1", "cloud", "client-e1+wan"},
	}
	for _, c := range cases {
		l := f.Link(c.from, c.to)
		if l.Config().Name != c.wantName {
			t.Errorf("Link(%s, %s) = %q, want %q", c.from, c.to, l.Config().Name, c.wantName)
		}
	}
}

func TestFabricLinksAreCached(t *testing.T) {
	f := NewFabric(sim.New(1))
	a := f.Link("E1", "E2")
	b := f.Link("E1", "E2")
	if a != b {
		t.Error("repeated Link() returned different links (stats would split)")
	}
	// Directions are distinct links.
	if f.Link("E2", "E1") == a {
		t.Error("reverse direction shares the forward link")
	}
}

func TestFabricClientToE2AddsLANHop(t *testing.T) {
	f := NewFabric(sim.New(1))
	direct := f.Link("client-1", "E1").Config().RTT
	viaLAN := f.Link("client-1", "E2").Config().RTT
	if viaLAN <= direct {
		t.Errorf("client->E2 RTT %v not above client->E1 %v", viaLAN, direct)
	}
}

func TestFabricSetLinkOverride(t *testing.T) {
	f := NewFabric(sim.New(1))
	custom := netem.LinkConfig{Name: "custom", RTT: 99 * time.Millisecond}
	f.SetLink("E1", "E2", custom)
	if got := f.Link("E1", "E2").Config().Name; got != "custom" {
		t.Errorf("override not applied: %s", got)
	}
	if got := f.Link("E2", "E1").Config().Name; got != "custom" {
		t.Errorf("override not bidirectional: %s", got)
	}
	// Override after a link was created invalidates the cache.
	f2 := NewFabric(sim.New(1))
	_ = f2.Link("E1", "E2")
	f2.SetLink("E1", "E2", custom)
	if got := f2.Link("E1", "E2").Config().RTT; got != 99*time.Millisecond {
		t.Errorf("cached link survived override: %v", got)
	}
}

func TestFabricSetClientAccess(t *testing.T) {
	f := NewFabric(sim.New(1))
	_ = f.Link("client-1", "E1") // populate cache
	lte := netem.LTE()
	f.SetClientAccess(lte)
	if got := f.Link("client-1", "E1").Config().RTT; got != lte.RTT {
		t.Errorf("client access RTT = %v, want %v", got, lte.RTT)
	}
	// Machine-to-machine links unaffected.
	if got := f.Link("E1", "E2").Config().Name; got != "e1-e2" {
		t.Errorf("machine link affected by client access override: %s", got)
	}
	// The E2 LAN hop still stacks on the new access profile.
	if got := f.Link("client-1", "E2").Config().RTT; got != lte.RTT+netem.EdgeLAN().RTT {
		t.Errorf("client->E2 RTT = %v", got)
	}
}

func TestFabricStats(t *testing.T) {
	f := NewFabric(sim.New(1))
	l := f.Link("E1", "E2")
	l.Transit(100)
	l.Transit(100)
	stats := f.Stats()
	if stats["E1->E2"].Sent != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestIsClient(t *testing.T) {
	if !IsClient("client-3") || IsClient("E1") || IsClient("cloud") {
		t.Error("IsClient misclassifies")
	}
}
