package core

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// FastPathConfig controls the tracker-gated recognition fast path.
//
// The fast path exploits the temporal coherence of AR streams: once the
// matching stage's per-client tracker is confident, consecutive frames
// are ~97% redundant and their detections can be answered from the
// smoothed tracks without running sift→fisher→lsh→match at all. The gate
// sits at the head of the pipeline (the primary service): matching
// publishes its verdict after each full recognition, and primary consults
// it before paying for image decode. Full recognition still runs on track
// loss, on confidence decay, and on an every-RefreshEvery-th frame
// refresh that bounds pose drift and lets the tracker re-confirm its
// tracks.
type FastPathConfig struct {
	// Enabled turns the gate on. Disabled (the zero value), the pipeline
	// is bit-identical to a build without the gate.
	Enabled bool
	// MinConfidence is the tracker confidence below which frames always
	// run full recognition (default 0.5).
	MinConfidence float64
	// RefreshEvery forces a full recognition at least every N-th frame
	// per client, bounding drift; N-1 consecutive frames may be skipped
	// (default 30, ≈1 s at 30 FPS → 96.7% steady-state skip rate).
	RefreshEvery int
	// SkipDecay multiplies the published confidence once per skipped
	// frame, so a long skip run falls below MinConfidence even without a
	// refresh (default 0.98).
	SkipDecay float64
	// IdleTimeout evicts gate entries for clients that have not sent a
	// frame recently (default 60s).
	IdleTimeout time.Duration
}

func (c FastPathConfig) withDefaults() FastPathConfig {
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.5
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 30
	}
	if c.SkipDecay <= 0 || c.SkipDecay > 1 {
		c.SkipDecay = 0.98
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	return c
}

// gateEntry is the per-client verdict published by matching.
type gateEntry struct {
	payload    []byte // pre-encoded fast-path Payload (Detections + FastPath bit)
	confidence float64
	lastFull   uint64 // frame number of the last full recognition
	skips      int    // consecutive frames answered from this verdict
	lastSeen   time.Time
}

// FastPathGate is the shared in-process verdict table between the
// matching stage (writer, via Publish) and the primary stage (reader, via
// VerdictAppend). In the distributed runtime it is node-local: when
// primary and matching are co-located it short-circuits; when they are
// not, Publish is never called and the gate never skips — which is safe,
// just not fast. All methods are safe for concurrent use.
type FastPathGate struct {
	cfg FastPathConfig
	now func() time.Time

	mu        sync.Mutex
	clients   map[uint32]*gateEntry
	nextSweep time.Time

	skips atomic.Uint64
	fulls atomic.Uint64
}

// NewFastPathGate returns a gate with cfg (defaults applied).
func NewFastPathGate(cfg FastPathConfig) *FastPathGate {
	return &FastPathGate{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		clients: make(map[uint32]*gateEntry),
	}
}

// Enabled reports whether the gate may skip frames.
func (g *FastPathGate) Enabled() bool { return g != nil && g.cfg.Enabled }

// VerdictAppend decides whether frame frameNo of clientID can be answered
// from the last published verdict. On a skip it appends the pre-encoded
// fast-path payload to dst (which may be a pooled frame's Payload[:0] —
// the bytes are copied under the gate lock, never aliased, so the caller
// owns the result) and returns (dst, true). Otherwise dst is returned
// unchanged with false and the frame must run full recognition.
func (g *FastPathGate) VerdictAppend(clientID uint32, frameNo uint64, dst []byte) ([]byte, bool) {
	if !g.Enabled() {
		return dst, false
	}
	g.mu.Lock()
	now := g.now()
	g.sweepLocked(now)
	e, ok := g.clients[clientID]
	if !ok {
		g.mu.Unlock()
		g.fulls.Add(1)
		return dst, false
	}
	e.lastSeen = now
	// Stale or replayed frame numbers never skip: the verdict was
	// published for a newer frame.
	if frameNo <= e.lastFull ||
		e.skips+1 >= g.cfg.RefreshEvery ||
		e.confidence < g.cfg.MinConfidence {
		g.mu.Unlock()
		g.fulls.Add(1)
		return dst, false
	}
	e.skips++
	e.confidence *= g.cfg.SkipDecay
	dst = append(dst, e.payload...)
	g.mu.Unlock()
	g.skips.Add(1)
	return dst, true
}

// Publish records the outcome of a full recognition pass for clientID:
// the tracker confidence and the smoothed detections, pre-encoded so
// skipped frames pay only a copy. Out-of-order publishes (frameNo at or
// below the last published full frame) are ignored.
func (g *FastPathGate) Publish(clientID uint32, frameNo uint64, confidence float64, dets []Detection) {
	if !g.Enabled() {
		return
	}
	p := Payload{Detections: dets, FastPath: true}
	if dets == nil {
		p.Detections = []Detection{}
	}
	enc := p.Encode()
	g.mu.Lock()
	e, ok := g.clients[clientID]
	if !ok {
		e = &gateEntry{}
		g.clients[clientID] = e
	} else if frameNo <= e.lastFull {
		g.mu.Unlock()
		return
	}
	e.payload = enc
	e.confidence = confidence
	e.lastFull = frameNo
	e.skips = 0
	e.lastSeen = g.now()
	g.mu.Unlock()
}

// EndSession drops the verdict for clientID.
func (g *FastPathGate) EndSession(clientID uint32) {
	if g == nil {
		return
	}
	g.mu.Lock()
	delete(g.clients, clientID)
	g.mu.Unlock()
}

// ClientCount returns the number of clients with a live verdict.
func (g *FastPathGate) ClientCount() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.clients)
}

// Skips returns the total frames answered from the gate.
func (g *FastPathGate) Skips() uint64 {
	if g == nil {
		return 0
	}
	return g.skips.Load()
}

// Fulls returns the total frames the gate declined (full recognition).
func (g *FastPathGate) Fulls() uint64 {
	if g == nil {
		return 0
	}
	return g.fulls.Load()
}

// sweepLocked evicts idle clients, throttled to every IdleTimeout/4.
func (g *FastPathGate) sweepLocked(now time.Time) {
	if now.Before(g.nextSweep) {
		return
	}
	g.nextSweep = now.Add(g.cfg.IdleTimeout / 4)
	for id, e := range g.clients {
		if now.Sub(e.lastSeen) > g.cfg.IdleTimeout {
			delete(g.clients, id)
		}
	}
}

// RecognitionCacheConfig parameterizes the cross-client recognition
// cache.
type RecognitionCacheConfig struct {
	// TTL bounds staleness: entries older than this are treated as
	// misses (default 500ms — co-located clients viewing the same scene
	// within half a second share candidates).
	TTL time.Duration
	// Capacity bounds the entry count; least-recently-used entries are
	// evicted past it (default 1024).
	Capacity int
}

func (c RecognitionCacheConfig) withDefaults() RecognitionCacheConfig {
	if c.TTL <= 0 {
		c.TTL = 500 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	return c
}

type cacheEntry struct {
	key        string
	candidates []Candidate
	stored     time.Time
}

// RecognitionCache is a cross-client cache of LSH candidate lists keyed
// by the LSH sketch of the query's Fisher vector (the concatenated
// per-table bucket keys). Two clients looking at the same scene produce
// Fisher vectors that land in the same buckets of every table, so the
// sketch collides and the second client reuses the first's ranked
// candidates without touching the index. Detections are NOT cached —
// they are pose-dependent and cannot be shared across viewpoints.
// Safe for concurrent use.
type RecognitionCache struct {
	cfg   RecognitionCacheConfig
	index NNIndex
	now   func() time.Time

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewRecognitionCache returns a cache over index's hash functions.
func NewRecognitionCache(cfg RecognitionCacheConfig, index NNIndex) *RecognitionCache {
	return &RecognitionCache{
		cfg:     cfg.withDefaults(),
		index:   index,
		now:     time.Now,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Sketch returns the cache key of a Fisher vector: the little-endian
// concatenation of its bucket key in every LSH table. Partitioned
// backends prefix their layout signature, so a key minted under one
// shard layout can never alias a key minted under another (a partial
// gather's cached verdict must not outlive a resize). Monolithic
// backends produce the historical unprefixed key.
func (c *RecognitionCache) Sketch(fisher []float32) string {
	n := c.index.Tables()
	buf := make([]byte, 0, 8*(n+1))
	if ls, ok := c.index.(LayoutSigner); ok {
		buf = binary.LittleEndian.AppendUint64(buf, ls.LayoutSignature())
	}
	for t := 0; t < n; t++ {
		buf = binary.LittleEndian.AppendUint64(buf, c.index.Hash(t, fisher))
	}
	return string(buf)
}

// Lookup returns the cached candidates for sketch. It reports false on a
// miss or an expired entry. The returned slice is a copy the caller owns
// (possibly empty: an empty candidate list is a valid cached result).
func (c *RecognitionCache) Lookup(sketch string) ([]Candidate, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[sketch]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.now().Sub(e.stored) > c.cfg.TTL {
		c.lru.Remove(el)
		delete(c.entries, sketch)
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	out := append(make([]Candidate, 0, len(e.candidates)), e.candidates...)
	c.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// Store caches candidates under sketch, evicting the least-recently-used
// entries past Capacity. The slice is copied.
func (c *RecognitionCache) Store(sketch string, candidates []Candidate) {
	if c == nil {
		return
	}
	cp := append([]Candidate(nil), candidates...)
	c.mu.Lock()
	if el, ok := c.entries[sketch]; ok {
		e := el.Value.(*cacheEntry)
		e.candidates = cp
		e.stored = c.now()
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: sketch, candidates: cp, stored: c.now()})
	c.entries[sketch] = el
	for c.lru.Len() > c.cfg.Capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
}

// Len returns the number of live entries.
func (c *RecognitionCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Hits returns the total cache hits.
func (c *RecognitionCache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the total cache misses (including TTL expiries).
func (c *RecognitionCache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}
