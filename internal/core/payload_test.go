package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

func samplePayload() *Payload {
	var d1, d2 sift.Descriptor
	d1[0] = 0.5
	d2[127] = 0.25
	return &Payload{
		Image: &ImagePayload{W: 3, H: 2, Pix: []uint8{1, 2, 3, 4, 5, 6}},
		Features: &Features{
			Keypoints: []FeatureKeypoint{
				{X: 1.5, Y: 2.5, Sigma: 1.6, Orientation: -0.7},
				{X: 10, Y: 20, Sigma: 3.2, Orientation: 2.1},
			},
			Descriptors: []sift.Descriptor{d1, d2},
		},
		Fisher:     []float32{0.1, -0.2, 0.3},
		Candidates: []Candidate{{ObjectID: 2, Dist: 0.12}, {ObjectID: 0, Dist: 0.9}},
		Detections: []Detection{{ObjectID: 1, MinX: 5, MinY: 6, MaxX: 50, MaxY: 60, InlierFrac: 0.8}},
	}
}

func payloadsEqual(a, b *Payload) bool {
	switch {
	case (a.Image == nil) != (b.Image == nil),
		(a.Features == nil) != (b.Features == nil),
		len(a.Fisher) != len(b.Fisher),
		len(a.Candidates) != len(b.Candidates),
		len(a.Detections) != len(b.Detections):
		return false
	}
	if a.Image != nil {
		if a.Image.W != b.Image.W || a.Image.H != b.Image.H || len(a.Image.Pix) != len(b.Image.Pix) {
			return false
		}
		for i := range a.Image.Pix {
			if a.Image.Pix[i] != b.Image.Pix[i] {
				return false
			}
		}
	}
	if a.Features != nil {
		if len(a.Features.Keypoints) != len(b.Features.Keypoints) {
			return false
		}
		for i := range a.Features.Keypoints {
			if a.Features.Keypoints[i] != b.Features.Keypoints[i] {
				return false
			}
			if a.Features.Descriptors[i] != b.Features.Descriptors[i] {
				return false
			}
		}
	}
	for i := range a.Fisher {
		if a.Fisher[i] != b.Fisher[i] {
			return false
		}
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			return false
		}
	}
	for i := range a.Detections {
		if a.Detections[i] != b.Detections[i] {
			return false
		}
	}
	return true
}

func TestPayloadRoundTripFull(t *testing.T) {
	p := samplePayload()
	got, err := DecodePayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !payloadsEqual(p, got) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", p, got)
	}
}

func TestPayloadRoundTripPartial(t *testing.T) {
	cases := []*Payload{
		{},
		{Image: &ImagePayload{W: 1, H: 1, Pix: []uint8{7}}},
		{Fisher: []float32{}},
		{Candidates: []Candidate{}},
		{Detections: []Detection{{ObjectID: 3}}},
	}
	for i, p := range cases {
		got, err := DecodePayload(p.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !payloadsEqual(p, got) {
			t.Errorf("case %d mismatch", i)
		}
	}
}

func TestPayloadDecodeTruncated(t *testing.T) {
	full := samplePayload().Encode()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodePayload(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestPayloadDecodeGarbageProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodePayload(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPayloadDecodeRejectsHugeImage(t *testing.T) {
	// Craft flags=image with absurd dimensions.
	buf := []byte{secImage, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := DecodePayload(buf); err == nil {
		t.Error("huge image accepted")
	}
}

func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Payload{}
		if rng.Intn(2) == 1 {
			w, h := 1+rng.Intn(8), 1+rng.Intn(8)
			pix := make([]uint8, w*h)
			rng.Read(pix)
			p.Image = &ImagePayload{W: w, H: h, Pix: pix}
		}
		if rng.Intn(2) == 1 {
			n := rng.Intn(4)
			f := &Features{Keypoints: make([]FeatureKeypoint, n), Descriptors: make([]sift.Descriptor, n)}
			for i := 0; i < n; i++ {
				f.Keypoints[i] = FeatureKeypoint{X: rng.Float32(), Y: rng.Float32(), Sigma: rng.Float32()}
				for j := range f.Descriptors[i] {
					f.Descriptors[i][j] = rng.Float32()
				}
			}
			p.Features = f
		}
		if rng.Intn(2) == 1 {
			p.Fisher = make([]float32, rng.Intn(16))
			for i := range p.Fisher {
				p.Fisher[i] = rng.Float32()
			}
		}
		got, err := DecodePayload(p.Encode())
		if err != nil {
			return false
		}
		return payloadsEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPayloadEncodeFeatures(b *testing.B) {
	f := &Features{
		Keypoints:   make([]FeatureKeypoint, 150),
		Descriptors: make([]sift.Descriptor, 150),
	}
	p := &Payload{Features: f}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Encode()
	}
}
