package core

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// env bundles a simulation world for pipeline tests.
type env struct {
	eng    *sim.Engine
	fabric *Fabric
	col    *metrics.Collector
	e1     *testbed.Machine
	e2     *testbed.Machine
}

func newEnv(seed int64) *env {
	eng := sim.New(seed)
	return &env{
		eng:    eng,
		fabric: NewFabric(eng),
		col:    metrics.NewCollector(),
		e1:     testbed.NewMachine(testbed.E1(), eng),
		e2:     testbed.NewMachine(testbed.E2(), eng),
	}
}

// run executes a deployment for duration with n clients at 30 FPS.
func (e *env) run(p *Pipeline, n int, duration time.Duration) metrics.Summary {
	for i := 0; i < n; i++ {
		p.AddClient(ClientConfig{
			ID:    uint32(i + 1),
			FPS:   30,
			Start: sim.Time(i) * 7 * time.Millisecond, // staggered starts
			Stop:  duration,
		})
	}
	e.eng.Run(duration + 500*time.Millisecond) // drain in-flight frames
	_, machines := p.Usage()
	return e.col.Summarize(duration, n, machines)
}

func TestPlacementValidate(t *testing.T) {
	var p Placement
	if err := p.Validate(); err == nil {
		t.Error("empty placement validated")
	}
	e := newEnv(1)
	good := PlaceAll(e.e1)
	if err := good.Validate(); err != nil {
		t.Errorf("PlaceAll invalid: %v", err)
	}
	good[2] = []*testbed.Machine{nil}
	if err := good.Validate(); err == nil {
		t.Error("nil machine validated")
	}
}

func TestPlaceOrderedPanics(t *testing.T) {
	e := newEnv(1)
	defer func() {
		if recover() == nil {
			t.Error("PlaceOrdered with wrong count did not panic")
		}
	}()
	PlaceOrdered(e.e1, e.e2)
}

func TestDefaultProfilesValid(t *testing.T) {
	if err := DefaultProfiles().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultProfiles()
	// sift must be the heaviest service (the paper's bottleneck).
	sift := p[wire.StepSIFT].Total()
	for step := range p {
		if wire.Step(step) == wire.StepSIFT {
			continue
		}
		if p[step].Total() >= sift {
			t.Errorf("%s (%v) is not lighter than sift (%v)", wire.Step(step), p[step].Total(), sift)
		}
	}
	if !p[wire.StepSIFT].UsesGPU() || p[wire.StepPrimary].UsesGPU() {
		t.Error("GPU dependency flags wrong: all services except primary are GPU-dependent")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Threshold != 100*time.Millisecond {
		t.Errorf("threshold = %v, want the paper's 100ms", o.Threshold)
	}
	if o.FetchTimeout <= 0 || o.StateTimeout <= 0 || o.QueueCap <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestSingleClientScatterBaseline(t *testing.T) {
	e := newEnv(11)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
	s := e.run(p, 1, 30*time.Second)
	if s.FPSPerClient < 25 {
		t.Errorf("single-client FPS = %.1f, want >= 25 (paper)", s.FPSPerClient)
	}
	if s.E2EMean < 30*time.Millisecond || s.E2EMean > 60*time.Millisecond {
		t.Errorf("E2E = %v, want ≈40ms", s.E2EMean)
	}
	if s.SuccessRate < 0.8 {
		t.Errorf("success rate = %.2f, want >= 0.8", s.SuccessRate)
	}
}

func TestScatterDegradesWithClients(t *testing.T) {
	fps := func(n int) float64 {
		e := newEnv(12)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
		return e.run(p, n, 30*time.Second).FPSPerClient
	}
	one := fps(1)
	four := fps(4)
	if four >= one/2 {
		t.Errorf("scAtteR per-client FPS: 1 client %.1f, 4 clients %.1f; want severe degradation", one, four)
	}
	if four > 10 {
		t.Errorf("4-client scAtteR FPS = %.1f, paper struggled to maintain >5", four)
	}
}

func TestScatterPPOutperformsUnderLoad(t *testing.T) {
	run := func(mode Mode) metrics.Summary {
		e := newEnv(13)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: mode})
		return e.run(p, 4, 30*time.Second)
	}
	base := run(ModeScatter)
	pp := run(ModeScatterPP)
	if pp.FPSPerClient < 2*base.FPSPerClient {
		t.Errorf("scAtteR++ %.1f FPS vs scAtteR %.1f FPS at 4 clients; want >= 2x (paper: 2.5x)",
			pp.FPSPerClient, base.FPSPerClient)
	}
	if pp.FPSPerClient < 10 {
		t.Errorf("scAtteR++ 4-client FPS = %.1f, paper maintains ≈12", pp.FPSPerClient)
	}
}

func TestScatterPPThresholdBoundsQueueing(t *testing.T) {
	e := newEnv(14)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatterPP})
	s := e.run(p, 4, 20*time.Second)
	// The sidecar drops requests whose queue wait exceeds the 100ms
	// budget, so per-service queueing stays bounded by the threshold and
	// the saturated stage shows threshold drops.
	for name, svc := range s.Services {
		if svc.MeanQueue > p.Options().Threshold {
			t.Errorf("%s mean queue wait %v exceeds threshold", name, svc.MeanQueue)
		}
	}
	if s.Drops[metrics.DropThreshold] == 0 {
		t.Error("no threshold drops at 4 clients; sidecar filter inactive")
	}
	// E2E is bounded by the sum of per-stage budgets; in practice one
	// saturated stage dominates, so well under 2x threshold + compute.
	if s.E2EP95 > 250*time.Millisecond {
		t.Errorf("p95 E2E = %v, want threshold-bounded (<250ms)", s.E2EP95)
	}
}

func TestSiftStateMemoryGrowsUnderLoad(t *testing.T) {
	e := newEnv(15)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
	for i := 0; i < 4; i++ {
		p.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 10 * time.Second})
	}
	e.eng.Run(5 * time.Second) // mid-run, states outstanding
	services, _ := p.Usage()
	sift := services["sift"]
	baseline := DefaultProfiles()[wire.StepSIFT].BaselineMem
	if sift.MemBytes <= baseline {
		t.Errorf("sift memory %d not above baseline %d; state retention missing", sift.MemBytes, baseline)
	}
	// scAtteR++ has no state growth.
	e2 := newEnv(15)
	p2 := NewPipeline(e2.eng, e2.fabric, e2.col, PlaceAll(e2.e1), DefaultProfiles(), Options{Mode: ModeScatterPP})
	for i := 0; i < 4; i++ {
		p2.AddClient(ClientConfig{ID: uint32(i + 1), FPS: 30, Stop: 10 * time.Second})
	}
	e2.eng.Run(5 * time.Second)
	services2, _ := p2.Usage()
	if services2["sift"].MemBytes != baseline {
		t.Errorf("scAtteR++ sift memory %d, want baseline %d (stateless)", services2["sift"].MemBytes, baseline)
	}
}

func TestSiftStateTiedToProcessingReplica(t *testing.T) {
	// Frames are balanced round-robin across sift replicas, but each
	// frame's state stays tied to the replica that processed it: the
	// sticky pointer recorded at state-store time must name that replica.
	e := newEnv(16)
	placement := PlaceAll(e.e2)
	placement[wire.StepSIFT] = []*testbed.Machine{e.e2, e.e1}
	p := NewPipeline(e.eng, e.fabric, e.col, placement, DefaultProfiles(), Options{Mode: ModeScatter})
	a := p.route(wire.StepSIFT, 7)
	b := p.route(wire.StepSIFT, 7)
	if a == b {
		t.Fatal("sift replicas not balanced per frame")
	}
	fr := &simFrame{clientID: 7, frameNo: 1}
	a.storeState(fr)
	if fr.sticky != a {
		t.Error("frame state not tied to the processing replica")
	}
	if a.StateCount() != 1 || b.StateCount() != 0 {
		t.Errorf("state counts: a=%d b=%d", a.StateCount(), b.StateCount())
	}
}

func TestRoundRobinRouting(t *testing.T) {
	e := newEnv(17)
	placement := PlaceAll(e.e2)
	placement[wire.StepEncoding] = []*testbed.Machine{e.e2, e.e1}
	p := NewPipeline(e.eng, e.fabric, e.col, placement, DefaultProfiles(), Options{Mode: ModeScatterPP})
	a := p.route(wire.StepEncoding, 1)
	b := p.route(wire.StepEncoding, 1)
	c := p.route(wire.StepEncoding, 1)
	if a == b || a != c {
		t.Error("round-robin routing not alternating across replicas")
	}
	// In scAtteR++ sift is stateless and also round-robins.
	placement2 := PlaceAll(e.e2)
	placement2[wire.StepSIFT] = []*testbed.Machine{e.e2, e.e1}
	p2 := NewPipeline(e.eng, NewFabric(e.eng), metrics.NewCollector(), placement2, DefaultProfiles(), Options{Mode: ModeScatterPP})
	s1 := p2.route(wire.StepSIFT, 1)
	s2 := p2.route(wire.StepSIFT, 1)
	if s1 == s2 {
		t.Error("scAtteR++ sift routing is sticky; should be round-robin")
	}
}

func TestFetchLoadDoublesOnSift(t *testing.T) {
	e := newEnv(18)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
	s := e.run(p, 1, 10*time.Second)
	sift := s.Services["sift"]
	primary := s.Services["primary"]
	// sift sees its extraction requests plus matching's fetches: arrivals
	// must clearly exceed primary's (up to drops along the way).
	if float64(sift.Arrived) < 1.5*float64(primary.Processed) {
		t.Errorf("sift arrivals %d vs primary processed %d; fetch load missing",
			sift.Arrived, primary.Processed)
	}
}

func TestUsageReporting(t *testing.T) {
	e := newEnv(19)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
	s := e.run(p, 1, 5*time.Second)
	services, machines := p.Usage()
	if len(services) != wire.NumSteps {
		t.Fatalf("services = %d", len(services))
	}
	for name, u := range services {
		if u.MemBytes <= 0 {
			t.Errorf("%s memory = %d", name, u.MemBytes)
		}
		if u.CPUPct < 0 || u.CPUPct > 1 || u.GPUPct < 0 || u.GPUPct > 1 {
			t.Errorf("%s utilization out of range: %+v", name, u)
		}
	}
	if services["sift"].GPUPct <= 0 {
		t.Error("sift GPU utilization is zero")
	}
	if services["primary"].GPUPct != 0 {
		t.Error("primary (CPU-only) has GPU utilization")
	}
	if len(machines) != 1 || machines[0].Machine != "E1" {
		t.Errorf("machines = %+v", machines)
	}
	if machines[0].MemBytes <= 0 {
		t.Error("machine memory usage not accounted")
	}
	_ = s
}

func TestDistributedPlacementWorks(t *testing.T) {
	// C12: primary+sift on E1, rest on E2 (the paper's split deployment).
	e := newEnv(20)
	placement := Placement{
		wire.StepPrimary:  {e.e1},
		wire.StepSIFT:     {e.e1},
		wire.StepEncoding: {e.e2},
		wire.StepLSH:      {e.e2},
		wire.StepMatching: {e.e2},
	}
	p := NewPipeline(e.eng, e.fabric, e.col, placement, DefaultProfiles(), Options{Mode: ModeScatter})
	s := e.run(p, 1, 20*time.Second)
	if s.FPSPerClient < 20 {
		t.Errorf("C12 single-client FPS = %.1f", s.FPSPerClient)
	}
	// Cross-machine fetch adds LAN RTT but must still mostly succeed.
	if s.SuccessRate < 0.7 {
		t.Errorf("C12 success = %.2f", s.SuccessRate)
	}
}

func TestAddClientValidation(t *testing.T) {
	e := newEnv(21)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{})
	defer func() {
		if recover() == nil {
			t.Error("AddClient with Stop <= Start did not panic")
		}
	}()
	p.AddClient(ClientConfig{ID: 1, Start: time.Second, Stop: time.Second})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() metrics.Summary {
		e := newEnv(22)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{Mode: ModeScatter})
		return e.run(p, 3, 10*time.Second)
	}
	a, b := run(), run()
	if a.FramesOK != b.FramesOK || a.E2EMean != b.E2EMean || a.FramesSent != b.FramesSent {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestModeString(t *testing.T) {
	if ModeScatter.String() != "scAtteR" || ModeScatterPP.String() != "scAtteR++" {
		t.Error("mode names wrong")
	}
}
