package core

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestPipelineSpanTracing verifies the simulator records a span for every
// service touch in both modes: completed frames produce one OK span per
// stage with consistent queue/proc segments, and span accounting matches
// the run-end collector counters.
func TestPipelineSpanTracing(t *testing.T) {
	for _, mode := range []Mode{ModeScatter, ModeScatterPP} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(1)
			p := NewPipeline(e.eng, e.fabric, e.col, PlaceOrdered(e.e1, e.e1, e.e2, e.e2, e.e2),
				DefaultProfiles(), Options{Mode: mode})
			rec := obs.NewRecorder(0)
			p.SetTracer(rec)
			duration := 10 * time.Second
			for i := 0; i < 3; i++ {
				p.AddClient(ClientConfig{
					ID: uint32(i + 1), FPS: 30,
					Start: sim.Time(i) * 5 * time.Millisecond,
					Stop:  duration,
				})
			}
			e.eng.Run(duration + 5*time.Second)
			spans := rec.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}

			// Per-frame OK spans: a delivered frame has exactly one OK
			// span per stage.
			type frameKey struct {
				client uint32
				frame  uint64
			}
			okStages := make(map[frameKey]int)
			var okSpans, dropSpans uint64
			seenStage := make(map[wire.Step]bool)
			for _, s := range spans {
				if s.StartAt < s.EnqueueAt || s.EndAt < s.StartAt {
					t.Fatalf("span times not ordered: %+v", s)
				}
				if s.Queue != s.StartAt-s.EnqueueAt || s.Proc != s.EndAt-s.StartAt {
					t.Fatalf("span segments inconsistent: %+v", s)
				}
				if s.Service != s.Step.String() {
					t.Fatalf("span service/step mismatch: %+v", s)
				}
				if s.Outcome == obs.OutcomeOK {
					okSpans++
					seenStage[s.Step] = true
					okStages[frameKey{s.ClientID, s.FrameNo}]++
					if s.Proc <= 0 {
						t.Fatalf("OK span with zero proc: %+v", s)
					}
				} else {
					dropSpans++
				}
			}
			for step := wire.StepPrimary; step < wire.StepDone; step++ {
				if !seenStage[step] {
					t.Errorf("no OK span for stage %s", step)
				}
			}
			for key, n := range okStages {
				if n > wire.NumSteps {
					t.Errorf("frame %v has %d OK spans, max %d", key, n, wire.NumSteps)
				}
			}

			// Span accounting matches the collector: OK spans equal
			// processed executions summed over services.
			var processed uint64
			sum := e.col.Summarize(duration, 3, nil)
			for _, svc := range sum.Services {
				processed += svc.Processed
			}
			if okSpans != processed {
				t.Errorf("OK spans = %d, collector processed = %d", okSpans, processed)
			}
			if mode == ModeScatter && dropSpans == 0 {
				t.Error("scAtteR under 3-client load should record drop spans")
			}
		})
	}
}

// TestPipelineTracingOffByDefault pins the zero-overhead default: no
// recorder, no spans, and a nil tracer is returned.
func TestPipelineTracingOffByDefault(t *testing.T) {
	e := newEnv(1)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), Options{})
	if p.Tracer() != nil {
		t.Fatal("tracer should default to nil")
	}
	p.AddClient(ClientConfig{ID: 1, FPS: 30, Stop: time.Second})
	e.eng.Run(2 * time.Second)
	if p.Tracer().Len() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
}
