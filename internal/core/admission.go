package core

import "fmt"

// AdmitState is the per-service admission verdict an application-aware
// control plane pushes back to the data plane when scale-out alone
// cannot relieve distress (replica cap reached or placement
// unschedulable). It is enforced at the sidecar ingress — before the
// queue — so admission pressure never turns into queue saturation:
//
//   - AdmitOK: every frame is admitted (the default).
//   - AdmitDegrade: ingress is decimated to a lower frame rate
//     (deterministically by frame number, so each client keeps a steady
//     reduced cadence) while the service works off its backlog.
//   - AdmitReject: all ingress frames are turned away at the door. The
//     drop is accounted separately from queue/busy drops
//     (DroppedAdmission / scatter_admission_*), both because it is a
//     deliberate control action rather than distress, and so the
//     controller's recovery signal — the distress drop ratio — goes to
//     zero while rejection holds, which is what lets hysteresis step
//     back down to degrade and admit.
//
// Frames refused by admission are never acked, so upstream route
// windows book them as losses — the same backpressure signal as a
// saturated replica, which keeps stats-driven routing away from
// services under admission control.
type AdmitState uint8

// Admission verdicts, ordered by increasing severity.
const (
	AdmitOK AdmitState = iota
	AdmitDegrade
	AdmitReject
)

// String returns the wire form carried on heartbeat responses.
func (s AdmitState) String() string {
	switch s {
	case AdmitOK:
		return "admit"
	case AdmitDegrade:
		return "degrade"
	case AdmitReject:
		return "reject"
	default:
		return fmt.Sprintf("admit-state-%d", uint8(s))
	}
}

// ParseAdmitState decodes the wire form. Unknown strings map to AdmitOK
// — an old or confused controller must never wedge a service shut.
func ParseAdmitState(s string) AdmitState {
	switch s {
	case "degrade":
		return AdmitDegrade
	case "reject":
		return AdmitReject
	default:
		return AdmitOK
	}
}

// DegradeStride is the ingress decimation factor under AdmitDegrade:
// one frame in DegradeStride is admitted (by frame number, so the kept
// subsequence is deterministic per client).
const DegradeStride = 2
