package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/vision/lsh"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestLSHServiceShardedBitIdentical runs the full recognition pipeline
// twice — once over the monolithic index, once over a sharded index of
// the same reference set — and requires byte-identical results end to
// end: the NNIndex seam must be invisible to the pipeline.
func TestLSHServiceShardedBitIdentical(t *testing.T) {
	m, gen := trainedModel(t)
	for _, shards := range []int{2, 5} {
		monoProcs := NewProcessors(m, false, 320, 180)
		shardProcs := NewProcessors(m, false, 320, 180)
		sharded := lsh.NewShardedFrom(m.Index, lsh.ShardConfig{Shards: shards})
		shardProcs[wire.StepLSH] = NewLSHService(sharded, 3)
		for idx := 0; idx < 3; idx++ {
			want := runPipeline(t, monoProcs, clientFrame(t, gen, 1, uint64(idx+1), idx))
			got := runPipeline(t, shardProcs, clientFrame(t, gen, 1, uint64(idx+1), idx))
			if !reflect.DeepEqual(got.Candidates, want.Candidates) {
				t.Fatalf("shards=%d frame %d: candidates diverge\n got %v\nwant %v",
					shards, idx, got.Candidates, want.Candidates)
			}
			if !reflect.DeepEqual(got.Detections, want.Detections) {
				t.Fatalf("shards=%d frame %d: detections diverge", shards, idx)
			}
		}
	}
}

// TestRecognitionCacheShardLayoutKeying pins the aliasing guard: sketch
// keys minted under different shard layouts must differ even for the
// same Fisher vector, while the monolithic key format stays exactly the
// historical unprefixed concatenation of table hashes.
func TestRecognitionCacheShardLayoutKeying(t *testing.T) {
	m, _ := trainedModel(t)
	fisher := make([]float32, m.Index.Dim())
	for i := range fisher {
		fisher[i] = float32(i%7) - 3
	}
	monoCache := NewRecognitionCache(RecognitionCacheConfig{}, m.Index)
	monoKey := monoCache.Sketch(fisher)
	if len(monoKey) != 8*m.Index.Tables() {
		t.Fatalf("monolithic sketch is %d bytes, want the unprefixed %d", len(monoKey), 8*m.Index.Tables())
	}

	s4 := lsh.NewShardedFrom(m.Index, lsh.ShardConfig{Shards: 4})
	s8 := lsh.NewShardedFrom(m.Index, lsh.ShardConfig{Shards: 8})
	c4 := NewRecognitionCache(RecognitionCacheConfig{}, s4)
	c8 := NewRecognitionCache(RecognitionCacheConfig{}, s8)
	k4, k8 := c4.Sketch(fisher), c8.Sketch(fisher)
	if len(k4) != 8*(m.Index.Tables()+1) {
		t.Fatalf("sharded sketch is %d bytes, want layout prefix + tables = %d", len(k4), 8*(m.Index.Tables()+1))
	}
	if k4 == k8 {
		t.Fatal("4-shard and 8-shard layouts mint the same cache key")
	}
	if k4 == monoKey || k8 == monoKey {
		t.Fatal("sharded cache key aliases the monolithic key")
	}
	// A resize is a new layout: entries cached before it must not be
	// served after it.
	c4.Store(k4, []Candidate{{ObjectID: 1, Dist: 0.1}})
	s4.Resize(6)
	resized := c4.Sketch(fisher)
	if resized == k4 {
		t.Fatal("resize did not rotate the cache key space")
	}
	if _, ok := c4.Lookup(resized); ok {
		t.Fatal("entry cached under the old layout served under the new one")
	}
	// Identical layouts still share keys — that is the cache's point.
	if c4.Sketch(fisher) != resized {
		t.Fatal("sketch not stable within one layout")
	}
}

// TestSimShardingSpeedsUpLSH checks the simulator mirror: sharding the
// lsh step cuts its per-dispatch compute, so the same workload finishes
// with a lower end-to-end mean, full gathers, and no degradation when
// ShardLossProb is zero.
func TestSimShardingSpeedsUpLSH(t *testing.T) {
	run := func(opts Options) (float64, *Pipeline) {
		e := newEnv(17)
		p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(), opts)
		s := e.run(p, 1, 20*time.Second)
		if s.SuccessRate < 0.9 {
			t.Fatalf("success rate %.2f under %+v", s.SuccessRate, opts.Sharding)
		}
		return s.E2EMean.Seconds(), p
	}
	base, bp := run(Options{Mode: ModeScatter})
	if _, ok := bp.ShardDigest(); ok {
		t.Fatal("disabled sharding publishes a digest")
	}
	sharded, sp := run(Options{Mode: ModeScatter,
		Sharding: ShardingSimOptions{Enabled: true, Shards: 8}})
	if sharded >= base {
		t.Errorf("8-shard E2E mean %.4fs not below monolithic %.4fs", sharded, base)
	}
	d, ok := sp.ShardDigest()
	if !ok || d.Shards != 8 || d.Replication != 1 {
		t.Fatalf("bad shard digest: %+v ok=%v", d, ok)
	}
	if d.Gathers == 0 || d.FanOuts != d.Gathers*8 {
		t.Fatalf("gather accounting off: %+v", d)
	}
	if d.PartialGathers != 0 || d.DroppedShards != 0 || d.BelowQuorum != 0 {
		t.Fatalf("lossless run shows degradation: %+v", d)
	}
	// Determinism: the virtual-clock model must reproduce bit-identically
	// under the same seed.
	again, _ := run(Options{Mode: ModeScatter,
		Sharding: ShardingSimOptions{Enabled: true, Shards: 8}})
	if sharded != again {
		t.Errorf("sharded run not deterministic: %v vs %v", sharded, again)
	}
}

// TestSimShardingDegradation drives shard-leg loss through the quorum
// policy: with a generous quorum the pipeline survives on partial
// gathers; the counters must show both partials and the legs dropped.
func TestSimShardingDegradation(t *testing.T) {
	e := newEnv(19)
	p := NewPipeline(e.eng, e.fabric, e.col, PlaceAll(e.e1), DefaultProfiles(),
		Options{Mode: ModeScatter, Sharding: ShardingSimOptions{
			Enabled: true, Shards: 4, Quorum: 2, ShardLossProb: 0.2,
			GatherTimeout: 5 * time.Millisecond,
		}})
	s := e.run(p, 1, 10*time.Second)
	d, ok := p.ShardDigest()
	if !ok {
		t.Fatal("no shard digest")
	}
	if d.PartialGathers == 0 || d.DroppedShards == 0 {
		t.Fatalf("20%% leg loss produced no partial gathers: %+v", d)
	}
	if d.BelowQuorum == 0 {
		t.Logf("note: no below-quorum gathers at this seed (%+v)", d)
	}
	if d.Gathers+d.BelowQuorum == 0 || s.FramesOK == 0 {
		t.Fatalf("degraded run delivered nothing: %+v, frames %d", d, s.FramesOK)
	}
}
