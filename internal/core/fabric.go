package core

import (
	"strings"

	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/sim"
)

// Fabric is the simulated network connecting clients and machines. Links
// are directional and created lazily from a default topology that mirrors
// the paper's testbed: services on the same machine use loopback, E1↔E2
// cross the LAN, anything touching the cloud crosses the WAN, and clients
// (wired to E1) reach E2 through one extra LAN hop. Experiments override
// individual links (for example the client access link in Fig. 9).
type Fabric struct {
	eng       *sim.Engine
	links     map[string]*netem.Link
	overrides map[string]netem.LinkConfig
	// ClientAccess, when set, replaces the default client→machine and
	// machine→client link configuration (used by the mobile-connectivity
	// experiments).
	clientAccess *netem.LinkConfig
}

// NewFabric creates an empty fabric on the engine.
func NewFabric(eng *sim.Engine) *Fabric {
	return &Fabric{
		eng:       eng,
		links:     make(map[string]*netem.Link),
		overrides: make(map[string]netem.LinkConfig),
	}
}

// IsClient reports whether the endpoint name denotes a client host.
func IsClient(name string) bool { return strings.HasPrefix(name, "client") }

// SetLink overrides the link configuration in both directions.
func (f *Fabric) SetLink(a, b string, cfg netem.LinkConfig) {
	f.overrides[a+"->"+b] = cfg
	f.overrides[b+"->"+a] = cfg
	delete(f.links, a+"->"+b)
	delete(f.links, b+"->"+a)
}

// SetClientAccess overrides the access link used between every client and
// every machine (both directions).
func (f *Fabric) SetClientAccess(cfg netem.LinkConfig) {
	f.clientAccess = &cfg
	// Invalidate cached client links.
	for k := range f.links {
		if IsClient(strings.Split(k, "->")[0]) || IsClient(strings.SplitN(k, "->", 2)[1]) {
			delete(f.links, k)
		}
	}
}

// Link returns the directional link from one endpoint to another,
// creating it from overrides or topology defaults on first use.
func (f *Fabric) Link(from, to string) *netem.Link {
	key := from + "->" + to
	if l, ok := f.links[key]; ok {
		return l
	}
	cfg, ok := f.overrides[key]
	if !ok {
		cfg = f.defaultFor(from, to)
	}
	l := netem.NewLink(cfg, f.eng.Rand())
	f.links[key] = l
	return l
}

func (f *Fabric) defaultFor(from, to string) netem.LinkConfig {
	if from == to {
		return netem.Loopback()
	}
	cf, ct := IsClient(from), IsClient(to)
	if cf || ct {
		machine := from
		if cf {
			machine = to
		}
		base := netem.ClientEdge()
		if f.clientAccess != nil {
			base = *f.clientAccess
		}
		switch machine {
		case "E2":
			// Clients are wired to E1; E2 adds the LAN hop.
			base.RTT += netem.EdgeLAN().RTT
			base.Name += "+lan"
		case "cloud":
			// The WAN path dominates; access characteristics still apply.
			wan := netem.CloudWAN()
			base.RTT += wan.RTT
			base.Jitter += wan.Jitter
			base.Loss = 1 - (1-base.Loss)*(1-wan.Loss)
			base.Name += "+wan"
		}
		return base
	}
	if from == "cloud" || to == "cloud" {
		// Machine-to-machine transit into the cloud carries the full
		// inter-service frame stream; see netem.CloudWANTransit.
		return netem.CloudWANTransit()
	}
	return netem.EdgeLAN()
}

// Stats returns per-link statistics keyed by "from->to".
func (f *Fabric) Stats() map[string]netem.Stats {
	out := make(map[string]netem.Stats, len(f.links))
	for k, l := range f.links {
		out[k] = l.Stats()
	}
	return out
}
