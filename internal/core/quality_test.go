package core

import (
	"testing"

	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/vision/match"
	"github.com/edge-mar/scatter/internal/wire"
)

// gtBox converts a ground-truth placement into frame coordinates.
func gtBox(p trace.Placement, refW, refH float64) match.BoundingBox {
	return match.BoundingBox{
		MinX: p.OffX,
		MinY: p.OffY,
		MaxX: p.OffX + p.Scale*refW,
		MaxY: p.OffY + p.Scale*refH,
	}
}

// TestRecognitionQualityAcrossClip measures the pipeline's recognition
// quality against ground truth over the moving-camera clip: the
// well-textured objects (monitor, keyboard) must be found with
// reasonable localization (IoU) in a majority of sampled frames. This is
// the accuracy dimension behind the paper's "success rate" — a frame
// that completes but recognizes nothing would inflate QoS while being
// useless to the AR client.
func TestRecognitionQualityAcrossClip(t *testing.T) {
	if testing.Short() {
		t.Skip("processes many frames through real SIFT")
	}
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	model, err := Train(gen.ReferenceImages(), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	refSize := make(map[int32][2]float64)
	for _, obj := range model.Objects {
		refSize[obj.ID] = [2]float64{obj.W, obj.H}
	}
	procs := NewProcessors(model, true, 320, 180)

	const stride = 2
	frames := 0
	hits := map[int32]int{}
	var iouSum float64
	var iouN int
	for i := 0; i < gen.NumFrames(); i += stride {
		fr := clientFrame(t, gen, 1, uint64(i+1), i)
		p := runPipeline(t, procs, fr)
		frames++
		gt := gen.GroundTruth(i)
		for _, d := range p.Detections {
			size, ok := refSize[d.ObjectID]
			if !ok || int(d.ObjectID) >= len(gt) {
				continue
			}
			truth := gtBox(gt[d.ObjectID], size[0], size[1])
			got := match.BoundingBox{
				MinX: float64(d.MinX), MinY: float64(d.MinY),
				MaxX: float64(d.MaxX), MaxY: float64(d.MaxY),
			}
			iou := match.IoU(truth, got)
			if iou > 0.3 {
				hits[d.ObjectID]++
				iouSum += iou
				iouN++
			}
		}
	}
	for _, id := range []int32{int32(trace.ObjectMonitor), int32(trace.ObjectKeyboard)} {
		rate := float64(hits[id]) / float64(frames)
		t.Logf("%s localized (IoU>0.3) in %.0f%% of frames", trace.ObjectName(int(id)), rate*100)
		if rate < 0.5 {
			t.Errorf("%s localized in only %.0f%% of frames", trace.ObjectName(int(id)), rate*100)
		}
	}
	if iouN > 0 {
		mean := iouSum / float64(iouN)
		t.Logf("mean IoU of accepted localizations: %.2f", mean)
		if mean < 0.4 {
			t.Errorf("mean IoU = %.2f, want >= 0.4", mean)
		}
	}
	_ = wire.NumSteps
}
