package testbed

import (
	"math"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/sim"
)

func TestProfilesValid(t *testing.T) {
	for _, cfg := range []MachineConfig{E1(), E2(), Cloud(), ClientNUC(0)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if E1().GPUArch != ArchGeForceRTX || E2().GPUArch != ArchAmpere || Cloud().GPUArch != ArchTesla {
		t.Error("GPU architectures do not match the paper's testbed")
	}
	if E2().GPUFactor >= E1().GPUFactor {
		t.Error("E2's A40s should be faster than E1's RTX 2080s")
	}
	if Cloud().GPUFactor <= E1().GPUFactor {
		t.Error("cloud Tesla (arch mismatch) should be slower than E1")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []MachineConfig{
		{},
		{Name: "x"},
		{Name: "x", CPUCores: 4},
		{Name: "x", CPUCores: 4, MemBytes: 1, GPUs: -1, CPUFactor: 1},
		{Name: "x", CPUCores: 4, MemBytes: 1, GPUs: 1, CPUFactor: 1, GPUFactor: 0},
		{Name: "x", CPUCores: 4, MemBytes: 1, CPUFactor: 1, VirtNoiseSigma: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
}

func TestDeviceAcquireRelease(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(E1(), eng)
	granted := 0
	for i := 0; i < 3; i++ {
		m.GPU.Acquire(func() { granted++ })
	}
	eng.RunAll()
	// E1 has 2 GPUs: two grants immediate, one queued.
	if granted != 2 {
		t.Fatalf("granted = %d, want 2", granted)
	}
	if m.GPU.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1", m.GPU.QueueLen())
	}
	m.GPU.Release()
	eng.RunAll()
	if granted != 3 {
		t.Errorf("granted after release = %d, want 3", granted)
	}
	if m.GPU.InUse() != 2 {
		t.Errorf("InUse = %d, want 2 (slot handed to waiter)", m.GPU.InUse())
	}
}

func TestDeviceFIFO(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(MachineConfig{
		Name: "one", CPUCores: 1, GPUs: 1, GPUArch: ArchTesla,
		MemBytes: 1 << 30, CPUFactor: 1, GPUFactor: 1,
	}, eng)
	var order []int
	m.GPU.Acquire(func() { order = append(order, 0) })
	for i := 1; i <= 3; i++ {
		i := i
		m.GPU.Acquire(func() { order = append(order, i) })
	}
	eng.RunAll()
	for i := 0; i < 3; i++ {
		m.GPU.Release()
		eng.RunAll()
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters not FIFO: %v", order)
		}
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(E1(), eng)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle device did not panic")
		}
	}()
	m.GPU.Release()
}

func TestZeroCapacityNeverGrants(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(ClientNUC(1), eng) // no GPU
	granted := false
	m.GPU.Acquire(func() { granted = true })
	eng.RunAll()
	if granted {
		t.Error("zero-capacity GPU granted a slot")
	}
}

func TestUtilizationIntegral(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(E1(), eng) // 2 GPUs
	// Hold one GPU slot for 40ms of an 80ms run: utilization = (1*40)/(2*80) = 0.25.
	m.GPU.Acquire(func() {
		eng.After(40*time.Millisecond, func() { m.GPU.Release() })
	})
	eng.Run(80 * time.Millisecond)
	if got := m.GPU.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
}

func TestComputeTimeFactors(t *testing.T) {
	eng := sim.New(1)
	e1cfg := E1()
	e1cfg.VirtNoiseSigma = 0
	e2cfg := E2()
	e2cfg.VirtNoiseSigma = 0
	e1 := NewMachine(e1cfg, eng)
	e2 := NewMachine(e2cfg, eng)
	base := 10 * time.Millisecond
	if e1.ComputeTime(base, true) != base {
		t.Errorf("E1 GPU time = %v, want %v", e1.ComputeTime(base, true), base)
	}
	if got := e2.ComputeTime(base, true); got != 8*time.Millisecond {
		t.Errorf("E2 GPU time = %v, want 8ms", got)
	}
	if got := e2.ComputeTime(base, false); got != 9*time.Millisecond {
		t.Errorf("E2 CPU time = %v, want 9ms", got)
	}
}

func TestEdgeMachinesHaveMildNoise(t *testing.T) {
	// Every machine carries compute-time variance so multi-client
	// collision dynamics are not lock-stepped; the cloud additionally
	// suffers more frequent straggler spikes (virtualized GPU).
	if E1().VirtNoiseSigma <= 0 || E2().VirtNoiseSigma <= 0 || Cloud().VirtNoiseSigma <= 0 {
		t.Error("machines without compute-time variance")
	}
	if Cloud().StragglerProb <= E1().StragglerProb {
		t.Errorf("cloud straggler prob %v <= E1 %v", Cloud().StragglerProb, E1().StragglerProb)
	}
}

func TestCloudVirtualizationNoise(t *testing.T) {
	eng := sim.New(3)
	cfg := Cloud()
	c := NewMachine(cfg, eng)
	base := 10 * time.Millisecond
	seen := map[time.Duration]bool{}
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := c.ComputeTime(base, true)
		seen[d] = true
		sum += d
	}
	if len(seen) < 10 {
		t.Error("virtualization noise absent: compute times identical")
	}
	// Expected mean: base × GPUFactor × E[lognormal] × E[straggler boost].
	want := float64(base) * cfg.GPUFactor *
		math.Exp(cfg.VirtNoiseSigma*cfg.VirtNoiseSigma/2) *
		(1 + cfg.StragglerProb*(cfg.StragglerFactor-1))
	mean := float64(sum) / n
	if mean < 0.9*want || mean > 1.1*want {
		t.Errorf("mean cloud compute time = %v, want ≈%v", time.Duration(mean), time.Duration(want))
	}
}

func TestMemoryAccounting(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(MachineConfig{
		Name: "tiny", CPUCores: 1, MemBytes: 100, CPUFactor: 1,
	}, eng)
	if !m.AllocMem(60) {
		t.Fatal("alloc 60/100 failed")
	}
	if m.AllocMem(50) {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if !m.AllocMem(40) {
		t.Fatal("alloc to exactly full failed")
	}
	if m.MemUsed() != 100 || m.MemPeak() != 100 {
		t.Errorf("used=%d peak=%d", m.MemUsed(), m.MemPeak())
	}
	m.FreeMem(100)
	if m.MemUsed() != 0 || m.MemPeak() != 100 {
		t.Errorf("after free: used=%d peak=%d", m.MemUsed(), m.MemPeak())
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(E1(), eng)
	m.AllocMem(10)
	defer func() {
		if recover() == nil {
			t.Error("over-free did not panic")
		}
	}()
	m.FreeMem(20)
}

func TestNewMachinePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMachine with invalid config did not panic")
		}
	}()
	NewMachine(MachineConfig{}, sim.New(1))
}
