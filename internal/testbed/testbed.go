// Package testbed models the paper's heterogeneous edge–cloud machines:
// E1 (Intel i9, 2× NVIDIA RTX 2080, 128 GB), E2 (2× AMD EPYC 7302, 2×
// NVIDIA A40, 264 GB), the AWS cloud VM (4 Broadwell vCPUs, Tesla V100,
// 64 GB), and the Intel NUC client hosts. Each machine exposes CPU and
// GPU devices with FIFO slot queues, memory accounting, busy-time
// integrals for utilization metrics, and per-architecture compute-speed
// factors (plus virtualization noise on the cloud VM, modelling the
// paper's observation that the virtualized Tesla deployment underperforms
// despite ample raw capacity).
package testbed

import (
	"fmt"
	"math"
	"time"

	"github.com/edge-mar/scatter/internal/sim"
)

// GPUArch identifies the GPU architecture of a machine — the paper's
// orchestrator must map differently-compiled images onto matching
// architectures, which the scheduler's constraints reproduce.
type GPUArch string

// Architectures present in the paper's testbed.
const (
	ArchGeForceRTX GPUArch = "geforce-rtx" // E1
	ArchAmpere     GPUArch = "ampere"      // E2
	ArchTesla      GPUArch = "tesla"       // cloud
	ArchNone       GPUArch = "none"        // CPU-only client hosts
)

// MachineConfig describes one machine.
type MachineConfig struct {
	Name     string
	CPUCores int
	GPUs     int
	GPUArch  GPUArch
	MemBytes int64
	// CPUFactor and GPUFactor scale compute times relative to the E1
	// reference (smaller = faster).
	CPUFactor float64
	GPUFactor float64
	// VirtNoiseSigma, when positive, multiplies compute times by a
	// lognormal factor exp(N(0, sigma²)) — virtualization interference.
	VirtNoiseSigma float64
	// StragglerProb/StragglerFactor model heavy-tail latency spikes
	// (GC pauses, CUDA transfer stalls): with probability StragglerProb a
	// computation takes StragglerFactor times longer.
	StragglerProb   float64
	StragglerFactor float64
	// Cluster names the orchestration cluster the machine belongs to.
	Cluster string
}

// Validate reports configuration errors.
func (c MachineConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("testbed: machine without a name")
	}
	if c.CPUCores <= 0 {
		return fmt.Errorf("testbed: machine %q has %d CPU cores", c.Name, c.CPUCores)
	}
	if c.GPUs < 0 || c.MemBytes <= 0 {
		return fmt.Errorf("testbed: machine %q has invalid GPU/memory config", c.Name)
	}
	if c.CPUFactor <= 0 || (c.GPUs > 0 && c.GPUFactor <= 0) {
		return fmt.Errorf("testbed: machine %q has non-positive speed factor", c.Name)
	}
	if c.VirtNoiseSigma < 0 {
		return fmt.Errorf("testbed: machine %q has negative noise sigma", c.Name)
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("testbed: machine %q has straggler prob outside [0,1]", c.Name)
	}
	if c.StragglerProb > 0 && c.StragglerFactor < 1 {
		return fmt.Errorf("testbed: machine %q has straggler factor < 1", c.Name)
	}
	return nil
}

// Paper testbed machine profiles. Speed factors are the calibration in
// DESIGN.md §5: E2's A40s are ≈20% faster than E1's RTX 2080s; the cloud
// V100 runs containers not compiled for its sm architecture, costing ≈35%
// plus virtualization noise.
//
// CPUFactor additionally folds in how well the vision kernels scale with
// core count on each machine: the parallel kernels (DESIGN.md "Parallel
// vision kernels") are measured with BenchmarkVisionFrame at -cpu
// 1,4,8 (EXPERIMENTS.md scaling recipe), and the per-architecture
// factor is the ratio of the machine's per-frame wall time to E1's at
// the machine's core count. Re-derive the factors from that table when
// the kernels change.

// E1 is the local edge server.
func E1() MachineConfig {
	return MachineConfig{
		Name: "E1", CPUCores: 16, GPUs: 2, GPUArch: ArchGeForceRTX,
		MemBytes: 128 << 30, CPUFactor: 1.0, GPUFactor: 1.0,
		VirtNoiseSigma: 0.09, StragglerProb: 0.02, StragglerFactor: 2.5,
		Cluster: "edge",
	}
}

// E2 is the rack-mounted cellular-hosted edge server.
func E2() MachineConfig {
	return MachineConfig{
		Name: "E2", CPUCores: 64, GPUs: 2, GPUArch: ArchAmpere,
		MemBytes: 264 << 30, CPUFactor: 0.9, GPUFactor: 0.8,
		VirtNoiseSigma: 0.09, StragglerProb: 0.02, StragglerFactor: 2.5,
		Cluster: "edge",
	}
}

// Cloud is the AWS GPU instance.
func Cloud() MachineConfig {
	return MachineConfig{
		Name: "cloud", CPUCores: 4, GPUs: 1, GPUArch: ArchTesla,
		MemBytes: 64 << 30, CPUFactor: 1.08, GPUFactor: 1.06,
		VirtNoiseSigma: 0.08, StragglerProb: 0.03, StragglerFactor: 3,
		Cluster: "cloud",
	}
}

// ClientNUC is an Intel NUC client host (no GPU).
func ClientNUC(i int) MachineConfig {
	return MachineConfig{
		Name: fmt.Sprintf("nuc-%d", i), CPUCores: 4, GPUs: 0, GPUArch: ArchNone,
		MemBytes: 32 << 30, CPUFactor: 1.3, GPUFactor: 0, Cluster: "clients",
	}
}

// Device is a pool of identical execution slots (CPU cores or GPUs) with
// a FIFO wait queue and a busy-time integral for utilization accounting.
type Device struct {
	name     string
	capacity int
	inUse    int
	waiters  []func()
	eng      *sim.Engine

	busyIntegral time.Duration // Σ over slots of busy duration
	lastChange   sim.Time
}

func newDevice(name string, capacity int, eng *sim.Engine) *Device {
	return &Device{name: name, capacity: capacity, eng: eng}
}

// Capacity returns the number of slots.
func (d *Device) Capacity() int { return d.capacity }

// InUse returns the number of currently held slots.
func (d *Device) InUse() int { return d.inUse }

// QueueLen returns the number of waiting acquisitions.
func (d *Device) QueueLen() int { return len(d.waiters) }

func (d *Device) accumulate() {
	now := d.eng.Now()
	d.busyIntegral += time.Duration(d.inUse) * (now - d.lastChange)
	d.lastChange = now
}

// Acquire requests a slot; granted runs (via the engine, preserving event
// ordering) as soon as one is free — immediately if capacity allows.
// Devices with zero capacity never grant.
func (d *Device) Acquire(granted func()) {
	if d.capacity == 0 {
		return
	}
	if d.inUse < d.capacity {
		d.accumulate()
		d.inUse++
		d.eng.After(0, granted)
		return
	}
	d.waiters = append(d.waiters, granted)
}

// Release frees a slot, handing it to the oldest waiter if any. Releasing
// an unheld slot panics — it indicates a scheduling bug.
func (d *Device) Release() {
	if d.inUse <= 0 {
		panic(fmt.Sprintf("testbed: release of idle device %s", d.name))
	}
	if len(d.waiters) > 0 {
		// Slot transfers directly to the next waiter; inUse unchanged.
		next := d.waiters[0]
		copy(d.waiters, d.waiters[1:])
		d.waiters = d.waiters[:len(d.waiters)-1]
		d.eng.After(0, next)
		return
	}
	d.accumulate()
	d.inUse--
}

// Utilization returns the mean fraction of slots busy since the start of
// the run (virtual time zero), which is the window every experiment
// measures over.
func (d *Device) Utilization() float64 {
	if d.capacity == 0 {
		return 0
	}
	d.accumulate()
	window := d.eng.Now()
	if window <= 0 {
		return 0
	}
	return float64(d.busyIntegral) / float64(time.Duration(d.capacity)*window)
}

// BusyIntegral returns the cumulative slot-busy time.
func (d *Device) BusyIntegral() time.Duration {
	d.accumulate()
	return d.busyIntegral
}

// Machine is a simulated host.
type Machine struct {
	cfg MachineConfig
	eng *sim.Engine
	CPU *Device
	GPU *Device

	memUsed int64
	memPeak int64
}

// NewMachine builds a machine bound to the simulation engine. It panics
// on invalid configuration.
func NewMachine(cfg MachineConfig, eng *sim.Engine) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{
		cfg: cfg,
		eng: eng,
		CPU: newDevice(cfg.Name+"/cpu", cfg.CPUCores, eng),
		GPU: newDevice(cfg.Name+"/gpu", cfg.GPUs, eng),
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// Name returns the machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// ComputeTime scales a reference-duration workload by this machine's
// speed factor for the given device class, applying virtualization noise
// when configured.
func (m *Machine) ComputeTime(base time.Duration, gpu bool) time.Duration {
	f := m.cfg.CPUFactor
	if gpu {
		f = m.cfg.GPUFactor
	}
	d := time.Duration(float64(base) * f)
	if m.cfg.VirtNoiseSigma > 0 {
		noise := math.Exp(m.eng.Rand().NormFloat64() * m.cfg.VirtNoiseSigma)
		d = time.Duration(float64(d) * noise)
	}
	if m.cfg.StragglerProb > 0 && m.eng.Rand().Float64() < m.cfg.StragglerProb {
		d = time.Duration(float64(d) * m.cfg.StragglerFactor)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ComputeTimeBatch scales a batched workload: the per-request cost base
// splits into a fixed setup component paid once per dispatch and a
// marginal component paid per frame, so a batch of n costs
// setup + n*(base-setup) reference time (n=1 degenerates to ComputeTime).
// The whole batch takes one virtualization-noise draw — it is a single
// kernel launch.
func (m *Machine) ComputeTimeBatch(base, setup time.Duration, n int, gpu bool) time.Duration {
	if n <= 1 {
		return m.ComputeTime(base, gpu)
	}
	if setup < 0 {
		setup = 0
	}
	if setup > base {
		setup = base
	}
	return m.ComputeTime(setup+time.Duration(n)*(base-setup), gpu)
}

// AllocMem reserves bytes of memory; it reports false (and reserves
// nothing) when the machine would exceed capacity — the condition that
// limits stateful sift on memory-constrained edge hardware.
func (m *Machine) AllocMem(bytes int64) bool {
	if bytes < 0 {
		panic("testbed: negative allocation")
	}
	if m.memUsed+bytes > m.cfg.MemBytes {
		return false
	}
	m.memUsed += bytes
	if m.memUsed > m.memPeak {
		m.memPeak = m.memUsed
	}
	return true
}

// FreeMem releases bytes previously reserved. Freeing more than reserved
// panics — it indicates an accounting bug.
func (m *Machine) FreeMem(bytes int64) {
	if bytes < 0 || bytes > m.memUsed {
		panic(fmt.Sprintf("testbed: bad free of %d bytes (%d used) on %s", bytes, m.memUsed, m.cfg.Name))
	}
	m.memUsed -= bytes
}

// MemUsed returns the currently reserved memory.
func (m *Machine) MemUsed() int64 { return m.memUsed }

// MemPeak returns the high-water mark.
func (m *Machine) MemPeak() int64 { return m.memPeak }
