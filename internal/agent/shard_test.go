package agent

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/vision/lsh"
)

func shardGatherCfg(dim int) lsh.Config {
	return lsh.Config{Dim: dim, Tables: 4, Bits: 6, Probes: 2, Seed: 7}
}

func randomVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// startShardFleet builds a monolithic reference index, partitions it,
// and serves every shard; it returns the monolithic oracle and a gather
// client over the fleet.
func startShardFleet(t *testing.T, n, dim, shards int, gcfg ShardGatherConfig) (*lsh.Index, *ShardGather, []*ShardServer) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	mono := lsh.New(shardGatherCfg(dim))
	for id := 0; id < n; id++ {
		mono.Add(id, randomVec(rng, dim))
	}
	sharded := lsh.NewShardedFrom(mono, lsh.ShardConfig{Shards: shards})
	var servers []*ShardServer
	gcfg.Index = shardGatherCfg(dim)
	gcfg.Shards = make([][]string, shards)
	for s := 0; s < shards; s++ {
		srv, err := StartShardServer(ShardServerConfig{
			Index:      sharded.Replica(s, 0),
			Shard:      s,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		gcfg.Shards[s] = []string{srv.Addr()}
	}
	g, err := NewShardGather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return mono, g, servers
}

// TestShardGatherMatchesMonolithic is the remote half of the
// bit-identity regression: scatter/gather over live shard servers must
// return byte-for-byte the monolithic answer when every shard responds.
func TestShardGatherMatchesMonolithic(t *testing.T) {
	const n, dim, shards = 600, 16, 4
	mono, g, _ := startShardFleet(t, n, dim, shards, ShardGatherConfig{
		GatherTimeout: 2 * time.Second,
	})
	if g.Tables() != mono.Tables() {
		t.Fatalf("sketcher tables %d, want %d", g.Tables(), mono.Tables())
	}
	rng := rand.New(rand.NewSource(62))
	var batch [][]float32
	for q := 0; q < 10; q++ {
		v := randomVec(rng, dim)
		batch = append(batch, v)
		for tb := 0; tb < mono.Tables(); tb++ {
			if g.Hash(tb, v) != mono.Hash(tb, v) {
				t.Fatalf("sketcher hash diverges in table %d", tb)
			}
		}
		if got, want := g.Query(v, 5), mono.Query(v, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: gather diverges:\n got %v\nwant %v", q, got, want)
		}
		if got, want := g.ExactNN(v, 5), mono.ExactNN(v, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: exact gather diverges", q)
		}
	}
	if got, want := g.QueryBatch(batch, 5), mono.QueryBatch(batch, 5); !reflect.DeepEqual(got, want) {
		t.Fatal("batched gather diverges from monolithic QueryBatch")
	}
	if g.Len() != mono.Len() {
		t.Fatalf("gathered Len %d, want %d", g.Len(), mono.Len())
	}
	st := g.Stats()
	if st.Gathers == 0 || st.FanOuts < st.Gathers*shards {
		t.Fatalf("implausible gather stats: %+v", st)
	}
	if st.PartialGathers != 0 || st.DroppedShards != 0 || st.BelowQuorum != 0 {
		t.Fatalf("healthy fleet shows degradation: %+v", st)
	}
	d := g.Digest()
	if d.Shards != shards || d.Replication != 1 || d.Gathers != st.Gathers {
		t.Fatalf("digest disagrees with stats: %+v vs %+v", d, st)
	}
}

// TestShardGatherQuorum drives the degradation policy: with one shard
// dead a quorum gather proceeds on the surviving partitions and counts
// the dropped shard; a full-quorum gather is abandoned.
func TestShardGatherQuorum(t *testing.T) {
	const n, dim, shards = 400, 16, 4
	mono, g, servers := startShardFleet(t, n, dim, shards, ShardGatherConfig{
		GatherTimeout: 100 * time.Millisecond,
		Quorum:        shards - 1,
	})
	servers[2].Close()
	rng := rand.New(rand.NewSource(63))
	v := randomVec(rng, dim)
	got := g.Query(v, 5)
	if len(got) == 0 {
		t.Fatal("quorum gather returned nothing despite 3 live shards")
	}
	// The partial answer must be exactly the monolithic answer minus
	// shard 2's contributions: merging the three live partitions.
	want := mono.Query(v, 5)
	for _, nb := range got {
		if lsh.ShardOf(nb.ID, shards) == 2 {
			t.Fatalf("dead shard's id %d appeared in a partial gather", nb.ID)
		}
	}
	if reflect.DeepEqual(got, want) {
		// Possible only when shard 2 contributed nothing to the top-k;
		// still a valid partial result.
		t.Log("partial gather happened to equal monolithic top-k")
	}
	st := g.Stats()
	if st.PartialGathers != 1 || st.DroppedShards == 0 {
		t.Fatalf("partial gather not counted: %+v", st)
	}
	if st.GatherWaitMicros == 0 {
		t.Fatalf("gather wait not accounted: %+v", st)
	}
}

func TestShardGatherBelowQuorum(t *testing.T) {
	const n, dim, shards = 200, 16, 3
	_, g, servers := startShardFleet(t, n, dim, shards, ShardGatherConfig{
		GatherTimeout: 80 * time.Millisecond,
		// Quorum defaults to all shards: strict bit-identity.
	})
	servers[0].Close()
	rng := rand.New(rand.NewSource(64))
	if got := g.Query(randomVec(rng, dim), 5); got != nil {
		t.Fatalf("below-quorum gather returned %v, want nil", got)
	}
	st := g.Stats()
	if st.BelowQuorum != 1 || st.Gathers != 0 {
		t.Fatalf("below-quorum not counted: %+v", st)
	}
}

// TestShardServerRejects covers the misrouting guard: a query addressed
// to the wrong shard number is dropped, never answered from the wrong
// partition.
func TestShardServerRejects(t *testing.T) {
	const dim = 16
	ix := lsh.New(shardGatherCfg(dim))
	rng := rand.New(rand.NewSource(65))
	for id := 0; id < 50; id++ {
		ix.Add(id, randomVec(rng, dim))
	}
	srv, err := StartShardServer(ShardServerConfig{Index: ix, Shard: 3, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A gather that believes the fleet has one shard (shard 0) hits a
	// server owning shard 3: every leg must be rejected server-side.
	g, err := NewShardGather(ShardGatherConfig{
		Shards:        [][]string{{srv.Addr()}},
		Index:         shardGatherCfg(dim),
		GatherTimeout: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if got := g.Query(randomVec(rng, dim), 3); got != nil {
		t.Fatalf("misrouted query answered: %v", got)
	}
	deadline := time.Now().Add(time.Second)
	for srv.Stats().Rejected == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.Rejected == 0 || st.Queries != 0 {
		t.Fatalf("misrouted query not rejected: %+v", st)
	}
}

// TestShardGatherLayoutSignature: different fleet layouts must mint
// different recognition-cache key prefixes.
func TestShardGatherLayoutSignature(t *testing.T) {
	cfg := shardGatherCfg(16)
	mk := func(shards int) *ShardGather {
		addrs := make([][]string, shards)
		for s := range addrs {
			addrs[s] = []string{"127.0.0.1:1"}
		}
		g, err := NewShardGather(ShardGatherConfig{Shards: addrs, Index: cfg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g
	}
	if mk(4).LayoutSignature() == mk(8).LayoutSignature() {
		t.Fatal("4-shard and 8-shard fleets share a layout signature")
	}
}
