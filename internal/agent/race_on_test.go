//go:build race

package agent

// raceEnabled relaxes the real-pipeline integration tests: the pure-Go
// SIFT stage runs several times slower under the race detector, so the
// tests stream slower and expect fewer results.
const raceEnabled = true
