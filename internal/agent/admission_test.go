package agent

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestWorkerAdmissionEnforcement exercises the sidecar-ingress admission
// gate: reject turns every frame away, degrade admits one in
// core.DegradeStride by frame number, and refused frames are accounted as
// DroppedAdmission — a deliberate control action, never mixed into the
// distress drop counters or silently lost.
func TestWorkerAdmissionEnforcement(t *testing.T) {
	var delivered atomic.Uint64
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	reg := obs.NewRegistry()
	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepSIFT,
		Mode:       core.ModeScatterPP,
		Processor:  stepProcessor{step: wire.StepSIFT, next: wire.StepDone},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	send := func(n int) {
		t.Helper()
		fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
		fr.Step = wire.StepSIFT
		for i := 0; i < n; i++ {
			fr.FrameNo = uint64(i)
			data, err := fr.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if err := src.SendToAddr(w.Addr(), data); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Admitted: everything flows.
	send(10)
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 10 },
		"admitted frames not delivered")

	// Rejected: nothing flows, every frame is a counted admission drop.
	w.SetAdmitState(core.AdmitReject)
	if st := w.AdmitState(); st != core.AdmitReject {
		t.Fatalf("admit state = %v", st)
	}
	send(10)
	waitFor(t, 5*time.Second, func() bool { return w.Stats().DroppedAdmission == 10 },
		"rejected frames not counted as admission drops")
	if n := delivered.Load(); n != 10 {
		t.Fatalf("rejected frames delivered: %d", n)
	}

	// Degraded: one frame in core.DegradeStride passes, by frame number.
	w.SetAdmitState(core.AdmitDegrade)
	send(10)
	admitted := uint64(10 / core.DegradeStride)
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 10+admitted },
		"degraded stream did not deliver the strided share")
	waitFor(t, 5*time.Second, func() bool { return w.Stats().DroppedAdmission == 20-admitted },
		"degraded refusals not counted")

	// Back to admit: enforcement clears completely.
	w.SetAdmitState(core.AdmitOK)
	send(10)
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 20+admitted },
		"frames still refused after reset to admit")

	st := w.Stats()
	if st.Received != 40 {
		t.Errorf("received = %d, want 40 (refused frames still count as arrivals)", st.Received)
	}
	// The deliberate refusals must not contaminate the distress counters.
	if st.DroppedBusy != 0 || st.DroppedQueue != 0 || st.DroppedThreshold != 0 {
		t.Errorf("admission refusals leaked into distress drops: %+v", st)
	}
	d := reg.Digest()
	if len(d) != 1 || d[0].AdmissionDrops != st.DroppedAdmission {
		t.Errorf("registry digest = %+v, want AdmissionDrops %d", d, st.DroppedAdmission)
	}
	if d[0].Dropped != 0 {
		t.Errorf("registry distress drops = %d, want 0", d[0].Dropped)
	}
}

// TestDeployerAppliesAndResetsAdmissions covers the node-agent side of
// the heartbeat downlink: ApplyAdmissions pushes listed verdicts to the
// live workers of each service, resets unlisted services to admit, and
// later-started replicas inherit the verdict in force.
func TestDeployerAppliesAndResetsAdmissions(t *testing.T) {
	h := startFailoverDeployment(t, nil)

	h.dep.ApplyAdmissions([]orchestrator.ServiceAdmission{
		{Service: "sift", State: "degrade"},
		{Service: "lsh", State: "reject"},
		{Service: "ghost", State: "reject"}, // unknown services are ignored
	})
	wantState := func(key string, want core.AdmitState) {
		t.Helper()
		w, ok := h.dep.Worker(key)
		if !ok {
			t.Fatalf("no worker %s", key)
		}
		if st := w.AdmitState(); st != want {
			t.Errorf("%s admit = %v, want %v", key, st, want)
		}
	}
	wantState("scatter/sift/0", core.AdmitDegrade)
	wantState("scatter/lsh/0", core.AdmitReject)
	wantState("scatter/primary/0", core.AdmitOK)

	// A replica scheduled while a verdict is in force inherits it.
	inst, err := h.root.ScaleUp("scatter", "lsh")
	if err != nil {
		t.Fatal(err)
	}
	wantState(inst.Key(), core.AdmitReject)

	dg := h.dep.AdmissionDigest()
	states := map[string]string{}
	for _, s := range dg.Services {
		states[s.Service] = s.State
	}
	if states["sift"] != "degrade" || states["lsh"] != "reject" {
		t.Errorf("admission digest = %+v", dg)
	}

	// An empty verdict set resets everything — a controller restart can
	// never wedge a service shut.
	h.dep.ApplyAdmissions(nil)
	wantState("scatter/sift/0", core.AdmitOK)
	wantState("scatter/lsh/0", core.AdmitOK)
	wantState(inst.Key(), core.AdmitOK)
}
