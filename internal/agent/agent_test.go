package agent

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/wire"
)

// testDeployment wires a full five-service real pipeline on loopback UDP
// and returns the ingress address.
func testDeployment(t *testing.T, mode core.Mode) (ingress string, workers []*Worker, gen *trace.Generator) {
	return testDeploymentNet(t, mode, "udp")
}

func testDeploymentNet(t *testing.T, mode core.Mode, network string) (ingress string, workers []*Worker, gen *trace.Generator) {
	t.Helper()
	gen = trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	model, err := core.Train(gen.ReferenceImages(), core.TrainConfig{GMMK: 4, GMMIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	stateless := mode == core.ModeScatterPP

	// Stateful matching needs sift's RPC address, and all workers need the
	// routing table, so start sift first with an explicit RPC port.
	sift := core.NewSIFT(120, stateless)
	var fetch core.StateFetcher
	siftCfg := WorkerConfig{
		Step: wire.StepSIFT, Mode: mode, Processor: sift,
		ListenAddr: "127.0.0.1:0", Router: nil, Network: network,
	}
	if !stateless {
		siftCfg.StateRPCListen = "127.0.0.1:0"
	}
	// Build everything with a late-bound router.
	table := map[wire.Step][]string{}
	router := NewStaticRouter(nil)
	lateRouter := routerFunc(func(step wire.Step) (string, bool) { return router.Next(step) })

	siftCfg.Router = lateRouter
	procs := [wire.NumSteps]core.Processor{
		wire.StepPrimary:  core.NewPrimary(320, 180),
		wire.StepSIFT:     sift,
		wire.StepEncoding: core.NewEncoding(model.PCA, model.Encoder),
		wire.StepLSH:      core.NewLSHService(model.Index, 3),
	}
	for step := 0; step < wire.NumSteps; step++ {
		if wire.Step(step) == wire.StepMatching {
			continue
		}
		var w *Worker
		var err error
		if wire.Step(step) == wire.StepSIFT {
			w, err = StartWorker(siftCfg)
		} else {
			w, err = StartWorker(WorkerConfig{
				Step: wire.Step(step), Mode: mode, Processor: procs[step],
				ListenAddr: "127.0.0.1:0", Router: lateRouter, Network: network,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		table[wire.Step(step)] = []string{w.Addr()}
	}
	if !stateless {
		// The sift worker binds its RPC listener at StartWorker time with
		// an ephemeral port; reconstruct the fetcher from its address.
		rpcAddr := workers[1].RPCAddr()
		if rpcAddr == "" || rpcAddr == "127.0.0.1:0" {
			t.Fatal("sift RPC address not resolvable; see Worker.RPCAddr")
		}
		fetch = RPCStateFetcher(rpcAddr, time.Second)
	}
	matching := core.NewMatching(model.Objects, fetch)
	mw, err := StartWorker(WorkerConfig{
		Step: wire.StepMatching, Mode: mode, Processor: matching,
		ListenAddr: "127.0.0.1:0", Router: lateRouter, Network: network,
	})
	if err != nil {
		t.Fatal(err)
	}
	workers = append(workers, mw)
	table[wire.StepMatching] = []string{mw.Addr()}
	router.SetRoutes(table)

	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
	})
	return table[wire.StepPrimary][0], workers, gen
}

// routerFunc adapts a closure to Router.
type routerFunc func(step wire.Step) (string, bool)

func (f routerFunc) Next(step wire.Step) (string, bool) { return f(step) }

func TestStaticRouter(t *testing.T) {
	r := NewStaticRouter(map[wire.Step][]string{
		wire.StepSIFT: {"a", "b"},
	})
	if addr, ok := r.Next(wire.StepSIFT); !ok || addr != "a" {
		t.Errorf("first = %s %v", addr, ok)
	}
	if addr, _ := r.Next(wire.StepSIFT); addr != "b" {
		t.Errorf("second = %s", addr)
	}
	if addr, _ := r.Next(wire.StepSIFT); addr != "a" {
		t.Errorf("third = %s", addr)
	}
	if _, ok := r.Next(wire.StepMatching); ok {
		t.Error("unknown step routed")
	}
}

func TestStartWorkerValidation(t *testing.T) {
	if _, err := StartWorker(WorkerConfig{}); err == nil {
		t.Error("nil processor accepted")
	}
	if _, err := StartWorker(WorkerConfig{
		Step: wire.StepSIFT, Processor: core.NewPrimary(0, 0),
		Router: NewStaticRouter(nil), ListenAddr: "127.0.0.1:0",
	}); err == nil {
		t.Error("step/processor mismatch accepted")
	}
	if _, err := StartWorker(WorkerConfig{
		Step: wire.StepPrimary, Processor: core.NewPrimary(0, 0),
		ListenAddr: "127.0.0.1:0",
	}); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := StartWorker(WorkerConfig{
		Step: wire.StepPrimary, Processor: core.NewPrimary(0, 0),
		Router: NewStaticRouter(nil), ListenAddr: "127.0.0.1:0",
		StateRPCListen: "127.0.0.1:0",
	}); err == nil {
		t.Error("state RPC on non-sift worker accepted")
	}
}

func runRealPipeline(t *testing.T, mode core.Mode) (results int, detections int) {
	return runRealPipelineNet(t, mode, "udp")
}

func runRealPipelineNet(t *testing.T, mode core.Mode, network string) (results int, detections int) {
	ingress, workers, gen := testDeploymentNet(t, mode, network)
	fps, wantResults, patience := 10, 5, 20*time.Second
	if raceEnabled {
		// SIFT is several times slower under the race detector.
		fps, wantResults, patience = 4, 3, 45*time.Second
	}
	client, err := StartClient(ClientConfig{
		ID:      1,
		FPS:     fps,
		Ingress: ingress,
		Network: network,
		NextFrame: func(i int) []byte {
			if i >= gen.NumFrames() {
				return nil
			}
			p := &core.Payload{Image: core.GrayToPayload(gen.GrayFrame(i))}
			return p.Encode()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.After(patience)
	for results < wantResults {
		select {
		case res := <-client.Results():
			results++
			detections += len(res.Detections)
			if res.E2E <= 0 {
				t.Errorf("non-positive E2E %v", res.E2E)
			}
		case <-deadline:
			t.Fatalf("only %d results before deadline; worker stats: %+v %+v %+v %+v %+v",
				results, workers[0].Stats(), workers[1].Stats(), workers[2].Stats(),
				workers[3].Stats(), workers[4].Stats())
		}
	}
	return results, detections
}

func TestRealPipelineStatefulEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline integration test")
	}
	results, detections := runRealPipeline(t, core.ModeScatter)
	if results < 3 {
		t.Fatalf("results = %d", results)
	}
	if detections == 0 {
		t.Error("no detections over the clip")
	}
}

func TestRealPipelineStatelessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline integration test")
	}
	results, detections := runRealPipeline(t, core.ModeScatterPP)
	if results < 3 {
		t.Fatalf("results = %d", results)
	}
	if detections == 0 {
		t.Error("no detections over the clip")
	}
}

func TestWorkerStatsAccumulate(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline integration test")
	}
	ingress, workers, gen := testDeployment(t, core.ModeScatterPP)
	fps := 10
	if raceEnabled {
		fps = 4
	}
	client, err := StartClient(ClientConfig{
		ID: 2, FPS: fps, Ingress: ingress,
		NextFrame: func(i int) []byte {
			p := &core.Payload{Image: core.GrayToPayload(gen.GrayFrame(i % gen.NumFrames()))}
			return p.Encode()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	select {
	case <-client.Results():
	case <-time.After(45 * time.Second):
		t.Fatal("no result")
	}
	st := workers[0].Stats() // primary
	if st.Received == 0 || st.Processed == 0 {
		t.Errorf("primary stats empty: %+v", st)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := StartClient(ClientConfig{ID: 1, Ingress: "127.0.0.1:1"}); err == nil {
		t.Error("nil frame source accepted")
	}
}

func TestRealPipelineOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline integration test")
	}
	// The A.1.2 alternative: the whole deployment on the framed TCP
	// transport instead of UDP.
	results, detections := runRealPipelineNet(t, core.ModeScatterPP, "tcp")
	if results < 3 {
		t.Fatalf("results = %d", results)
	}
	if detections == 0 {
		t.Error("no detections over TCP")
	}
}

func TestUnknownNetworkRejected(t *testing.T) {
	_, err := StartWorker(WorkerConfig{
		Step: wire.StepPrimary, Processor: core.NewPrimary(0, 0),
		Router: NewStaticRouter(nil), ListenAddr: "127.0.0.1:0",
		Network: "carrier-pigeon",
	})
	if err == nil {
		t.Error("unknown network accepted")
	}
}
