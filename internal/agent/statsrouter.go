package agent

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/wire"
)

// ReplicaPicker is the stats-aware routing contract the worker data
// plane upgrades to when its Router supports it: a pick that also hands
// back the replica's statistics window, so the forward path can feed
// send/ack/timeout outcomes into it.
type ReplicaPicker interface {
	Router
	// PickReplica resolves the next hop for step and the window to charge
	// the outcome to. The window may be nil (address known, no window —
	// e.g. a just-pushed route racing the table swap).
	PickReplica(step wire.Step) (addr string, rep *routestats.Replica, ok bool)
	// AckTimeout is the loss horizon the pending-ack sweeper uses; it
	// matches the window configuration so the feed and the statistics
	// agree on what "lost" means.
	AckTimeout() time.Duration
}

// StatsRouter routes like StaticRouter until its statistics windows are
// warm, then switches to power-of-two-choices over live weights. The
// round-robin fallback is bit-identical to StaticRouter — same sorted
// table, same per-step cursor, same cursor reset on SetRoutes — so a
// deployment with stats disabled (or still cold) behaves exactly like
// one routed by StaticRouter.
type StatsRouter struct {
	mu      sync.Mutex
	hops    map[wire.Step][]string
	index   map[wire.Step]int
	table   *routestats.Table
	enabled atomic.Bool
}

// NewStatsRouter builds a stats-driven router over a step→replicas table
// with the given window configuration (zero Config = defaults). The
// router starts enabled; SetEnabled(false) pins it to the deterministic
// round-robin while keeping the windows fed.
func NewStatsRouter(hops map[wire.Step][]string, cfg routestats.Config) *StatsRouter {
	r := &StatsRouter{
		hops:  make(map[wire.Step][]string, len(hops)),
		index: make(map[wire.Step]int),
		table: routestats.New(cfg),
	}
	r.enabled.Store(true)
	r.setRoutesLocked(hops)
	return r
}

// Table exposes the underlying statistics windows — what the obs
// registry's route source and heartbeat digests read.
func (r *StatsRouter) Table() *routestats.Table { return r.table }

// SetEnabled toggles stats-driven selection. Disabled, the router is a
// plain deterministic round-robin; the windows keep accumulating, so a
// re-enable starts warm.
func (r *StatsRouter) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether stats-driven selection is on.
func (r *StatsRouter) Enabled() bool { return r.enabled.Load() }

// AckTimeout implements ReplicaPicker.
func (r *StatsRouter) AckTimeout() time.Duration { return r.table.Config().AckTimeout }

// SetRoutes atomically replaces the routing table, resetting the
// round-robin cursors exactly like StaticRouter.SetRoutes. Statistics
// windows of replicas that keep their address survive the swap.
func (r *StatsRouter) SetRoutes(hops map[wire.Step][]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setRoutesLocked(hops)
}

func (r *StatsRouter) setRoutesLocked(hops map[wire.Step][]string) {
	cp := make(map[wire.Step][]string, len(hops))
	for k, v := range hops {
		cp[k] = append([]string(nil), v...)
	}
	r.hops = cp
	r.index = make(map[wire.Step]int)
	for step := wire.Step(0); int(step) < wire.NumSteps; step++ {
		r.table.SetReplicas(step, cp[step])
	}
}

// nextRR advances the deterministic round-robin cursor — StaticRouter's
// selection, verbatim.
func (r *StatsRouter) nextRR(step wire.Step) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := r.hops[step]
	if len(addrs) == 0 {
		return "", false
	}
	i := r.index[step] % len(addrs)
	r.index[step]++
	return addrs[i], true
}

// Next implements Router.
func (r *StatsRouter) Next(step wire.Step) (string, bool) {
	addr, _, ok := r.PickReplica(step)
	return addr, ok
}

// PickReplica implements ReplicaPicker: p2c over live weights when
// enabled and warm, the deterministic round-robin otherwise. The
// fallback still resolves the replica window, so round-robin traffic is
// what warms a cold table.
func (r *StatsRouter) PickReplica(step wire.Step) (string, *routestats.Replica, bool) {
	if r.enabled.Load() {
		if rep, _, ok := r.table.Pick(step); ok {
			return rep.Addr(), rep, true
		}
	}
	addr, ok := r.nextRR(step)
	if !ok {
		return "", nil, false
	}
	return addr, r.table.Find(step, addr), true
}
