package agent

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/wire"
)

// routerHops builds the two-step table the fallback regression walks.
func routerHops() map[wire.Step][]string {
	return map[wire.Step][]string{
		wire.StepSIFT:     {"s0", "s1", "s2"},
		wire.StepEncoding: {"e0", "e1"},
	}
}

// walkRouter drives a deterministic mixed-step selection sequence.
func walkRouter(r Router) []string {
	steps := []wire.Step{
		wire.StepSIFT, wire.StepSIFT, wire.StepEncoding, wire.StepSIFT,
		wire.StepEncoding, wire.StepEncoding, wire.StepSIFT, wire.StepLSH,
	}
	var out []string
	for round := 0; round < 25; round++ {
		for _, step := range steps {
			addr, ok := r.Next(step)
			out = append(out, fmt.Sprintf("%v/%s/%v", step, addr, ok))
		}
	}
	return out
}

// TestStatsRouterColdFallbackMatchesStaticRouter pins the acceptance
// criterion: while every window is cold, a StatsRouter's selections are
// bit-identical to StaticRouter's deterministic round-robin — including
// the cursor reset on SetRoutes.
func TestStatsRouterColdFallbackMatchesStaticRouter(t *testing.T) {
	static := NewStaticRouter(routerHops())
	stats := NewStatsRouter(routerHops(), routestats.Config{})
	if got, want := walkRouter(stats), walkRouter(static); !equalSeq(got, want) {
		t.Fatal("cold StatsRouter diverged from StaticRouter")
	}
	// A route push resets both cursors identically.
	next := map[wire.Step][]string{wire.StepSIFT: {"n0", "n1"}}
	static.SetRoutes(next)
	stats.SetRoutes(next)
	if got, want := walkRouter(stats), walkRouter(static); !equalSeq(got, want) {
		t.Fatal("StatsRouter diverged from StaticRouter after SetRoutes")
	}
}

// TestStatsRouterDisabledMatchesStaticRouter pins the other half of the
// criterion: with stats disabled the router stays deterministic
// round-robin even once the windows are warm.
func TestStatsRouterDisabledMatchesStaticRouter(t *testing.T) {
	static := NewStaticRouter(routerHops())
	stats := NewStatsRouter(routerHops(), routestats.Config{MinSamples: 2})
	stats.SetEnabled(false)
	for step, addrs := range routerHops() {
		for _, addr := range addrs {
			rep := stats.Table().Find(step, addr)
			for i := 0; i < 4; i++ {
				rep.Begin()
				rep.Outcome(time.Millisecond, true)
			}
		}
	}
	if got, want := walkRouter(stats), walkRouter(static); !equalSeq(got, want) {
		t.Fatal("disabled StatsRouter diverged from StaticRouter despite warm windows")
	}
}

// TestStatsRouterFallbackWarmsWindows checks the fallback path still
// resolves replica windows, so round-robin traffic is what warms a cold
// table into p2c eligibility.
func TestStatsRouterFallbackWarmsWindows(t *testing.T) {
	stats := NewStatsRouter(routerHops(), routestats.Config{MinSamples: 2})
	for i := 0; i < 6; i++ {
		addr, rep, ok := stats.PickReplica(wire.StepSIFT)
		if !ok {
			t.Fatal("pick failed")
		}
		if rep == nil || rep.Addr() != addr {
			t.Fatalf("fallback pick did not resolve the window for %s", addr)
		}
		rep.Begin()
		rep.Outcome(time.Millisecond, true)
	}
	if _, _, ok := stats.Table().Pick(wire.StepSIFT); !ok {
		t.Fatal("table still cold after fallback traffic warmed every replica")
	}
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStatsRouterPickAllocBudget enforces the acceptance criterion that
// replica selection adds zero allocations on the forward hot path.
func TestStatsRouterPickAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	stats := NewStatsRouter(routerHops(), routestats.Config{MinSamples: 2})
	for step, addrs := range routerHops() {
		for _, addr := range addrs {
			rep := stats.Table().Find(step, addr)
			for i := 0; i < 4; i++ {
				rep.Begin()
				rep.Outcome(time.Millisecond, true)
			}
		}
	}
	for _, enabled := range []bool{true, false} {
		stats.SetEnabled(enabled)
		allocs := testing.AllocsPerRun(1000, func() {
			if _, _, ok := stats.PickReplica(wire.StepSIFT); !ok {
				t.Fatal("pick failed")
			}
		})
		if allocs != 0 {
			t.Errorf("PickReplica(enabled=%v) allocates %.1f/op, want 0", enabled, allocs)
		}
	}
}

// stepProcessor advances a frame to the configured next step — a no-op
// service stub for multi-hop routing tests.
type stepProcessor struct{ step, next wire.Step }

func (p stepProcessor) Step() wire.Step { return p.step }

func (p stepProcessor) Process(fr *wire.Frame) error {
	fr.Step = p.next
	return nil
}

// TestWorkerHopAllocBudgetWithStats is TestWorkerHopAllocBudget with the
// stats-driven router and the ack protocol armed across a two-worker
// chain: client → primary (StatsRouter, acks pending) → sift (acks back)
// → sink. The budget is unchanged — stats-driven selection, pending-ack
// bookkeeping, and ack replies are all designed allocation-free.
func TestWorkerHopAllocBudgetWithStats(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	delivered := make(chan struct{}, 1)
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	sift, err := StartWorker(WorkerConfig{
		Step:       wire.StepSIFT,
		Mode:       core.ModeScatterPP,
		Processor:  stepProcessor{step: wire.StepSIFT, next: wire.StepDone},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		QueueCap:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sift.Close()

	router := NewStatsRouter(map[wire.Step][]string{
		wire.StepSIFT: {sift.Addr()},
	}, routestats.Config{MinSamples: 2, AckTimeout: 500 * time.Millisecond})
	primary, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  stepProcessor{step: wire.StepPrimary, next: wire.StepSIFT},
		ListenAddr: "127.0.0.1:0",
		Router:     router,
		QueueCap:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	fr := sinkBoundFrame(t, sink.LocalAddr(), 180<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ingress := primary.Addr()
	for i := 0; i < 8; i++ { // warm pools, caches, the pending table, and the window
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	})
	// Two workers are on the path, so allow each its hop budget.
	if avg > 2*workerHopAllocBudget {
		t.Errorf("stats-routed two-hop chain allocates %.1f/op, budget %d", avg, 2*workerHopAllocBudget)
	}
	for _, w := range []*Worker{primary, sift} {
		if st := w.Stats(); st.Errors > 0 || st.DroppedQueue > 0 || st.DroppedThreshold > 0 {
			t.Fatalf("worker dropped or errored: %+v", st)
		}
	}
	// The ack loop must actually have fed the window.
	rep := router.Table().Find(wire.StepSIFT, sift.Addr())
	if rep == nil || rep.State() != routestats.StateHealthy {
		t.Fatalf("replica window not healthy after clean run")
	}
	d := router.Table().Digest()
	if len(d) != 1 || d[0].Acked == 0 || d[0].Lost > 0 {
		t.Fatalf("ack feed incomplete: %+v", d)
	}
}

// BenchmarkReplicaPick measures the stats-driven selection overhead per
// forward — the number the bench-routing make target exports.
func BenchmarkReplicaPick(b *testing.B) {
	for _, replicas := range []int{2, 3, 8} {
		b.Run(fmt.Sprintf("p2c/replicas%d", replicas), func(b *testing.B) {
			addrs := make([]string, replicas)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
			}
			stats := NewStatsRouter(map[wire.Step][]string{wire.StepSIFT: addrs}, routestats.Config{MinSamples: 1})
			for _, addr := range addrs {
				rep := stats.Table().Find(wire.StepSIFT, addr)
				rep.Begin()
				rep.Outcome(time.Millisecond, true)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := stats.PickReplica(wire.StepSIFT); !ok {
					b.Fatal("pick failed")
				}
			}
		})
	}
	b.Run("rr-fallback", func(b *testing.B) {
		stats := NewStatsRouter(routerHops(), routestats.Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, ok := stats.PickReplica(wire.StepSIFT); !ok {
				b.Fatal("pick failed")
			}
		}
	})
	b.Run("static-rr-baseline", func(b *testing.B) {
		static := NewStaticRouter(routerHops())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := static.Next(wire.StepSIFT); !ok {
				b.Fatal("pick failed")
			}
		}
	})
}
