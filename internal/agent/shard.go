// Shard scatter/gather: the sidecar-side fan-out that lets the lsh step
// query a reference database partitioned across remote index shards.
//
// A ShardServer owns one shard's lsh.Index partition and answers shard
// query frames over the data-plane transport. A ShardGather is the
// client half: it implements core.NNIndex, scattering each query to one
// replica of every shard, gathering the per-shard top-k lists, and
// merging them under the (distance, id) total order — bit-identical to
// a monolithic index over the same reference set when every shard
// answers. Shards that miss the gather window are dropped and counted;
// the gather proceeds when at least Quorum shards answered, so one slow
// or dead shard replica degrades recall instead of stalling the
// pipeline.
package agent

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/vision/lsh"
	"github.com/edge-mar/scatter/internal/vision/parallel"
	"github.com/edge-mar/scatter/internal/wire"
)

// ShardServerConfig configures one shard's serving side.
type ShardServerConfig struct {
	// Index is the shard's partition of the reference database.
	Index *lsh.Index
	// Shard is this server's shard number; queries addressed to another
	// shard are rejected (a misrouted query must not silently answer
	// from the wrong partition).
	Shard int
	// ListenAddr is the transport bind address ("127.0.0.1:0" for an
	// ephemeral test port).
	ListenAddr string
	// Network selects the transport ("udp" default, "tcp").
	Network string
}

// ShardServerStats counts one shard server's activity.
type ShardServerStats struct {
	Queries   uint64 // well-formed queries answered
	Rejected  uint64 // malformed or misrouted queries dropped
	SendError uint64 // result frames that failed to send
}

// ShardServer serves one shard of the reference database.
type ShardServer struct {
	cfg ShardServerConfig
	// conn holds an endpointBox, published atomically because the
	// transport's read loop can deliver a query before StartShardServer
	// returns.
	conn atomic.Value

	queries   atomic.Uint64
	rejected  atomic.Uint64
	sendError atomic.Uint64
}

// shard codec scratch pools: decode vectors, staged wire neighbors, and
// encode buffers all round-trip through pools so a steady query stream
// allocates only what escapes to the caller.
var (
	shardVecPool      parallel.SlicePool[float32]
	shardNeighborPool parallel.SlicePool[wire.ShardNeighbor]
	shardBufPool      sync.Pool // *[]byte encode scratch
)

func shardBufGet() []byte {
	if v, _ := shardBufPool.Get().(*[]byte); v != nil {
		return (*v)[:0]
	}
	return nil
}

func shardBufPut(b []byte) {
	if cap(b) == 0 {
		return
	}
	shardBufPool.Put(&b)
}

// StartShardServer binds the transport and begins answering shard
// queries.
func StartShardServer(cfg ShardServerConfig) (*ShardServer, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("agent: shard server needs an index")
	}
	if cfg.Shard < 0 {
		return nil, fmt.Errorf("agent: negative shard number %d", cfg.Shard)
	}
	s := &ShardServer{cfg: cfg}
	conn, err := listenEndpoint(cfg.Network, cfg.ListenAddr, s.onMessage)
	if err != nil {
		return nil, err
	}
	s.conn.Store(endpointBox{conn})
	return s, nil
}

func (s *ShardServer) endpoint() transport.Endpoint {
	box, _ := s.conn.Load().(endpointBox)
	return box.ep
}

// Addr returns the bound transport address.
func (s *ShardServer) Addr() string { return s.endpoint().LocalAddr() }

// Stats returns cumulative counters.
func (s *ShardServer) Stats() ShardServerStats {
	return ShardServerStats{
		Queries:   s.queries.Load(),
		Rejected:  s.rejected.Load(),
		SendError: s.sendError.Load(),
	}
}

// Close shuts the transport down.
func (s *ShardServer) Close() error { return s.endpoint().Close() }

func (s *ShardServer) onMessage(data []byte, from net.Addr) {
	if !wire.IsShardQuery(data) {
		return
	}
	ep := s.endpoint()
	if ep == nil { // arrived before construction finished
		s.rejected.Add(1)
		return
	}
	vecScratch := shardVecPool.Get(s.cfg.Index.Dim())
	queryID, shard, k, flags, vec, ok := wire.ParseShardQuery(data, vecScratch)
	if !ok || shard != s.cfg.Shard || len(vec) != s.cfg.Index.Dim() {
		s.rejected.Add(1)
		shardVecPool.Put(vecScratch)
		return
	}
	var neighbors []lsh.Neighbor
	if flags&wire.ShardQueryExact != 0 {
		neighbors = s.cfg.Index.ExactNN(vec, k)
	} else {
		neighbors = s.cfg.Index.Query(vec, k)
	}
	staged := shardNeighborPool.Get(len(neighbors))
	for i, n := range neighbors {
		staged[i] = wire.ShardNeighbor{ID: int32(n.ID), Dist: n.Dist}
	}
	buf := wire.AppendShardResult(shardBufGet(), queryID, shard, s.cfg.Index.Len(), staged)
	if err := ep.SendToAddr(from.String(), buf); err != nil {
		s.sendError.Add(1)
	} else {
		s.queries.Add(1)
	}
	shardBufPut(buf)
	shardNeighborPool.Put(staged)
	shardVecPool.Put(vecScratch)
}

// ShardGatherConfig configures the scatter/gather client.
type ShardGatherConfig struct {
	// Shards lists the replica addresses of every shard:
	// Shards[s] holds the interchangeable replicas of shard s. Every
	// shard needs at least one address.
	Shards [][]string
	// Index must equal the configuration the shard servers' indexes
	// were built with. The gather side instantiates an empty index from
	// it as its local sketcher: hyperplanes are derived from the seed,
	// so Hash/Tables (recognition-cache keying) match the shards without
	// holding any reference data.
	Index lsh.Config
	// Network selects the transport ("udp" default, "tcp").
	Network string
	// GatherTimeout bounds how long a gather waits for shard responses
	// (default 150ms).
	GatherTimeout time.Duration
	// Quorum is the minimum number of shards that must answer before a
	// partial gather may proceed. Zero defaults to all shards — strict
	// bit-identity with the monolithic index.
	Quorum int
	// Health optionally configures the per-shard routestats windows used
	// to pick among shard replicas. Leaving it zero still builds the
	// windows with library defaults; replica picks fall back to
	// round-robin until the windows warm.
	Health routestats.Config
}

// ShardGatherStats counts the gather client's activity.
type ShardGatherStats struct {
	FanOuts          uint64 // per-shard query legs sent
	Gathers          uint64 // gathers that delivered a result (full or partial)
	PartialGathers   uint64 // gathers that proceeded with >=Quorum but < all shards
	DroppedShards    uint64 // shard legs that missed the gather window
	BelowQuorum      uint64 // gathers abandoned with fewer than Quorum shards
	SendErrors       uint64 // query legs that failed to send
	GatherWaitMicros uint64 // cumulative wall time spent waiting on gathers
}

// gatherPending is one in-flight scatter: a slot per shard plus the
// bookkeeping to decide full/partial/abandoned.
type gatherPending struct {
	mu       sync.Mutex
	lists    [][]lsh.Neighbor // per shard; nil until that shard answers
	sentAt   []time.Time
	shardLen []int
	got      int
	done     chan struct{}
}

// ShardGather scatters nearest-neighbour queries across remote index
// shards and merges the gathered top-k lists. It implements
// core.NNIndex.
type ShardGather struct {
	cfg      ShardGatherConfig
	conn     transport.Endpoint
	sketcher *lsh.Index
	health   []*routestats.Table // one table per shard, keyed at wire.StepLSH
	rr       atomic.Uint64
	nextID   atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*gatherPending

	shardLens []atomic.Int64 // last reported item count per shard

	fanOuts     atomic.Uint64
	gathers     atomic.Uint64
	partials    atomic.Uint64
	dropped     atomic.Uint64
	belowQuorum atomic.Uint64
	sendErrors  atomic.Uint64
	waitMicros  atomic.Uint64
}

// NewShardGather opens the gather client. It binds its own ephemeral
// transport endpoint for result frames.
func NewShardGather(cfg ShardGatherConfig) (*ShardGather, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("agent: shard gather needs at least one shard")
	}
	for s, reps := range cfg.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("agent: shard %d has no replicas", s)
		}
	}
	if cfg.GatherTimeout <= 0 {
		cfg.GatherTimeout = 150 * time.Millisecond
	}
	if cfg.Quorum <= 0 || cfg.Quorum > len(cfg.Shards) {
		cfg.Quorum = len(cfg.Shards)
	}
	g := &ShardGather{
		cfg:       cfg,
		sketcher:  lsh.New(cfg.Index),
		pending:   make(map[uint64]*gatherPending),
		shardLens: make([]atomic.Int64, len(cfg.Shards)),
	}
	for _, reps := range cfg.Shards {
		t := routestats.New(cfg.Health)
		t.SetReplicas(wire.StepLSH, reps)
		g.health = append(g.health, t)
	}
	conn, err := listenEndpoint(cfg.Network, "127.0.0.1:0", g.onResult)
	if err != nil {
		return nil, err
	}
	g.conn = conn
	return g, nil
}

// Close shuts the transport down.
func (g *ShardGather) Close() error { return g.conn.Close() }

// Shards returns the configured shard count.
func (g *ShardGather) Shards() int { return len(g.cfg.Shards) }

// Tables implements core.NNIndex via the local sketcher.
func (g *ShardGather) Tables() int { return g.sketcher.Tables() }

// Hash implements core.NNIndex via the local sketcher — identical
// hyperplanes, no reference data held locally.
func (g *ShardGather) Hash(table int, v []float32) uint64 { return g.sketcher.Hash(table, v) }

// Len returns the reference-set size as last reported by the shards
// (result frames carry each shard's item count). Zero until the first
// gather completes.
func (g *ShardGather) Len() int {
	var n int64
	for i := range g.shardLens {
		n += g.shardLens[i].Load()
	}
	return int(n)
}

// LayoutSignature implements core.LayoutSigner: recognition-cache keys
// minted against this gather client never alias keys minted against a
// different shard layout (or against a monolithic index, which uses the
// unprefixed key form).
func (g *ShardGather) LayoutSignature() uint64 {
	replication := 0
	for _, reps := range g.cfg.Shards {
		if len(reps) > replication {
			replication = len(reps)
		}
	}
	z := uint64(len(g.cfg.Shards))<<40 ^ uint64(replication)<<32 ^ uint64(g.cfg.Quorum)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats returns cumulative gather counters.
func (g *ShardGather) Stats() ShardGatherStats {
	return ShardGatherStats{
		FanOuts:          g.fanOuts.Load(),
		Gathers:          g.gathers.Load(),
		PartialGathers:   g.partials.Load(),
		DroppedShards:    g.dropped.Load(),
		BelowQuorum:      g.belowQuorum.Load(),
		SendErrors:       g.sendErrors.Load(),
		GatherWaitMicros: g.waitMicros.Load(),
	}
}

// Digest adapts the gather counters to the obs scatter_shard_* family;
// install with Registry.SetShardSource.
func (g *ShardGather) Digest() obs.ShardDigest {
	st := g.Stats()
	replication := 0
	for _, reps := range g.cfg.Shards {
		if len(reps) > replication {
			replication = len(reps)
		}
	}
	return obs.ShardDigest{
		Shards:           len(g.cfg.Shards),
		Replication:      replication,
		FanOuts:          st.FanOuts,
		Gathers:          st.Gathers,
		PartialGathers:   st.PartialGathers,
		DroppedShards:    st.DroppedShards,
		BelowQuorum:      st.BelowQuorum,
		GatherWaitMicros: st.GatherWaitMicros,
	}
}

// pickReplica chooses a replica address for one shard: the routestats
// window when it is warm, deterministic round-robin otherwise.
func (g *ShardGather) pickReplica(shard int) (string, *routestats.Replica) {
	reps := g.cfg.Shards[shard]
	if rep, _, ok := g.health[shard].Pick(wire.StepLSH); ok {
		return rep.Addr(), rep
	}
	addr := reps[int(g.rr.Add(1))%len(reps)]
	return addr, g.health[shard].Find(wire.StepLSH, addr)
}

// scatter sends one query to one replica of every shard and returns the
// pending gather.
func (g *ShardGather) scatter(v []float32, k int, flags byte) (uint64, *gatherPending) {
	ns := len(g.cfg.Shards)
	id := g.nextID.Add(1)
	p := &gatherPending{
		lists:    make([][]lsh.Neighbor, ns),
		sentAt:   make([]time.Time, ns),
		shardLen: make([]int, ns),
		done:     make(chan struct{}),
	}
	// sentAt is fully written before the pending entry is published:
	// onResult only reaches p through the map, so the g.mu hand-off
	// orders these writes before any reader.
	now := time.Now()
	for s := range p.sentAt {
		p.sentAt[s] = now
	}
	g.mu.Lock()
	g.pending[id] = p
	g.mu.Unlock()

	buf := shardBufGet()
	for s := 0; s < ns; s++ {
		addr, rep := g.pickReplica(s)
		buf = wire.AppendShardQuery(buf[:0], id, s, k, flags, v)
		if rep != nil {
			rep.Begin()
		}
		if err := g.conn.SendToAddr(addr, buf); err != nil {
			g.sendErrors.Add(1)
			if rep != nil {
				rep.OutcomeSendError()
			}
			continue
		}
		g.fanOuts.Add(1)
	}
	shardBufPut(buf)
	return id, p
}

// onResult ingests one shard's answer.
func (g *ShardGather) onResult(data []byte, from net.Addr) {
	if !wire.IsShardResult(data) {
		return
	}
	staged := shardNeighborPool.Get(wire.MaxShardK)
	queryID, shard, shardLen, ns, ok := wire.ParseShardResult(data, staged)
	if !ok || shard < 0 || shard >= len(g.cfg.Shards) {
		shardNeighborPool.Put(staged)
		return
	}
	g.mu.Lock()
	p := g.pending[queryID]
	g.mu.Unlock()
	if p == nil { // answered after the gather window closed
		g.dropped.Add(1)
		shardNeighborPool.Put(staged)
		return
	}
	p.mu.Lock()
	late := p.lists[shard] != nil
	if !late {
		list := make([]lsh.Neighbor, len(ns))
		for i, n := range ns {
			list[i] = lsh.Neighbor{ID: int(n.ID), Dist: n.Dist}
		}
		p.lists[shard] = list
		p.shardLen[shard] = shardLen
		p.got++
		if p.got == len(p.lists) {
			close(p.done)
		}
	}
	sentAt := p.sentAt[shard]
	p.mu.Unlock()
	shardNeighborPool.Put(staged)
	if late {
		return
	}
	g.shardLens[shard].Store(int64(shardLen))
	if rep := g.health[shard].Find(wire.StepLSH, from.String()); rep != nil {
		rep.Outcome(time.Since(sentAt), true)
	}
}

// gather waits for the scatter to complete and merges what arrived.
// A full gather is bit-identical to the monolithic index; a partial
// gather (>= Quorum shards) degrades recall on the missing partitions
// and is counted; below quorum the gather is abandoned and returns nil.
func (g *ShardGather) gather(id uint64, p *gatherPending, k int) []lsh.Neighbor {
	start := time.Now()
	timer := time.NewTimer(g.cfg.GatherTimeout)
	select {
	case <-p.done:
		timer.Stop()
	case <-timer.C:
	}
	g.waitMicros.Add(uint64(time.Since(start) / time.Microsecond))

	g.mu.Lock()
	delete(g.pending, id)
	g.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	missing := uint64(len(p.lists) - p.got)
	if p.got < g.cfg.Quorum {
		g.dropped.Add(missing)
		g.belowQuorum.Add(1)
		return nil
	}
	if missing > 0 {
		g.dropped.Add(missing)
		g.partials.Add(1)
	}
	g.gathers.Add(1)
	lists := p.lists[:0]
	for _, l := range p.lists {
		if l != nil {
			lists = append(lists, l)
		}
	}
	return lsh.MergeNeighbors(make([]lsh.Neighbor, 0, k), lists, k)
}

// Query implements core.NNIndex: scatter to every shard, gather, merge.
func (g *ShardGather) Query(v []float32, k int) []lsh.Neighbor {
	if k <= 0 {
		return nil
	}
	id, p := g.scatter(v, k, 0)
	return g.gather(id, p, k)
}

// QueryBatch implements core.NNIndex: the whole batch is scattered
// before any gather blocks, so shard round-trips overlap across the
// batch instead of serializing.
func (g *ShardGather) QueryBatch(vs [][]float32, k int) [][]lsh.Neighbor {
	out := make([][]lsh.Neighbor, len(vs))
	if len(vs) == 0 || k <= 0 {
		return out
	}
	ids := make([]uint64, len(vs))
	ps := make([]*gatherPending, len(vs))
	for i, v := range vs {
		ids[i], ps[i] = g.scatter(v, k, 0)
	}
	for i := range vs {
		out[i] = g.gather(ids[i], ps[i], k)
	}
	return out
}

// ExactNN implements core.NNIndex: the brute-force scan fans out with
// the exact flag, each shard scans its partition, and the merge of
// per-shard exact top-k lists is the global exact top-k.
func (g *ShardGather) ExactNN(v []float32, k int) []lsh.Neighbor {
	if k <= 0 {
		return nil
	}
	id, p := g.scatter(v, k, wire.ShardQueryExact)
	return g.gather(id, p, k)
}
