package agent

import (
	"net"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/wire"
)

// routingHarness is a stats-routed fan-out: a primary worker whose
// StatsRouter spreads sift traffic over three replicas, with a
// FaultyEndpoint interposed on the primary's socket so tests can make
// one replica lossy/slow at runtime. Sift replicas mark frames done and
// deliver them to the harness sink.
type routingHarness struct {
	t       *testing.T
	primary *Worker
	sifts   []*Worker
	router  *StatsRouter
	faults  *transport.FaultyEndpoint
	src     transport.Endpoint
	sink    transport.Endpoint
	sinkCh  chan struct{}
	frameNo uint64
	buf     []byte
	fr      *wire.Frame
}

func startRoutingHarness(t *testing.T, cfg routestats.Config) *routingHarness {
	t.Helper()
	h := &routingHarness{t: t, sinkCh: make(chan struct{}, 1024)}
	var err error
	h.sink, err = listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		select {
		case h.sinkCh <- struct{}{}:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		w, err := StartWorker(WorkerConfig{
			Step:       wire.StepSIFT,
			Mode:       core.ModeScatterPP,
			Processor:  stepProcessor{step: wire.StepSIFT, next: wire.StepDone},
			ListenAddr: "127.0.0.1:0",
			Router:     NewStaticRouter(nil),
			QueueCap:   64,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.sifts = append(h.sifts, w)
		addrs = append(addrs, w.Addr())
	}
	h.router = NewStatsRouter(map[wire.Step][]string{wire.StepSIFT: addrs}, cfg)
	h.primary, err = StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  stepProcessor{step: wire.StepPrimary, next: wire.StepSIFT},
		ListenAddr: "127.0.0.1:0",
		Router:     h.router,
		QueueCap:   64,
		WrapEndpoint: func(ep transport.Endpoint) transport.Endpoint {
			h.faults = transport.NewFaultyEndpoint(ep, transport.FaultPolicy{}, 1)
			return h.faults
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.src, err = listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	h.fr = sinkBoundFrame(t, h.sink.LocalAddr(), 4<<10)
	t.Cleanup(func() {
		h.primary.Close()
		for _, w := range h.sifts {
			w.Close()
		}
		h.src.Close()
		h.sink.Close()
	})
	return h
}

// send streams n frames at the given interval (distinct frame numbers,
// so every forward gets its own pending-ack slot).
func (h *routingHarness) send(n int, interval time.Duration) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		h.frameNo++
		h.fr.FrameNo = h.frameNo
		data, err := h.fr.AppendBinary(h.buf[:0])
		if err != nil {
			h.t.Fatal(err)
		}
		h.buf = data
		if err := h.src.SendToAddr(h.primary.Addr(), data); err != nil {
			h.t.Fatal(err)
		}
		time.Sleep(interval)
	}
}

// received snapshots each sift replica's arrival counter.
func (h *routingHarness) received() []uint64 {
	out := make([]uint64, len(h.sifts))
	for i, w := range h.sifts {
		out[i] = w.Stats().Received
	}
	return out
}

// waitState polls the sick replica's window until it reaches state (or
// the deadline fails the test).
func (h *routingHarness) waitState(addr string, want routestats.State, deadline time.Duration) {
	h.t.Helper()
	rep := h.router.Table().Find(wire.StepSIFT, addr)
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if rep.State() == want {
			return
		}
		h.send(4, 4*time.Millisecond)
	}
	h.t.Fatalf("replica %s never reached %v (state=%v, digest=%+v)",
		addr, want, rep.State(), h.router.Table().Digest())
}

// chaosWindowConfig is tightened for test time: short ack timeout and
// probation so fault detection and re-admission land within seconds.
func chaosWindowConfig() routestats.Config {
	return routestats.Config{
		Alpha:              0.3,
		AckTimeout:         120 * time.Millisecond,
		MinSamples:         5,
		DegradeLoss:        0.05,
		EjectLoss:          0.5,
		EjectFailures:      6,
		Probation:          400 * time.Millisecond,
		ProbationSuccesses: 3,
		ProbeEvery:         8,
		Seed:               7,
	}
}

// TestStatsRoutingShedsDegradedReplica is the chaos e2e of the issue:
// inject 50 ms delay + 10% loss on one of three replicas via a
// transport.FaultyEndpoint, assert ≥80% of traffic drains to the healthy
// replicas within the window horizon, then clear the fault and assert
// the replica is re-admitted.
func TestStatsRoutingShedsDegradedReplica(t *testing.T) {
	h := startRoutingHarness(t, chaosWindowConfig())
	sick := h.sifts[0].Addr()

	// Phase 1: clean warm-up. Round-robin fallback spreads traffic evenly
	// and warms every window past MinSamples.
	h.send(30, 3*time.Millisecond)
	rep := h.router.Table().Find(wire.StepSIFT, sick)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, _, ok := h.router.Table().Pick(wire.StepSIFT); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows never warmed: %+v", h.router.Table().Digest())
		}
		h.send(6, 3*time.Millisecond)
	}

	// Phase 2: replica 0 turns sick — every frame to it is delayed 50 ms
	// and 10% are lost outright.
	h.faults.SetPeerPolicy(sick, transport.FaultPolicy{Drop: 0.10, Delay: 50 * time.Millisecond})
	// Let the window notice (delayed acks inflate the latency EWMA, lost
	// frames time out) before measuring the steady-state split.
	h.send(60, 3*time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	before := h.received()
	h.send(200, 3*time.Millisecond)
	time.Sleep(100 * time.Millisecond)
	after := h.received()
	var sickShare, total uint64
	for i := range after {
		d := after[i] - before[i]
		total += d
		if i == 0 {
			sickShare = d
		}
	}
	if total == 0 {
		t.Fatal("no frames reached any replica during the fault window")
	}
	if healthy := float64(total-sickShare) / float64(total); healthy < 0.8 {
		t.Fatalf("healthy replicas carried %.0f%% of traffic during the fault, want ≥80%% (split=%v, digest=%+v)",
			healthy*100, after, h.router.Table().Digest())
	}

	// Phase 3: the fault clears; probe traffic re-feeds the window and
	// the replica returns to healthy.
	h.faults.ClearPeerPolicy(sick)
	h.waitState(sick, routestats.StateHealthy, 5*time.Second)
	healBase := h.received()[0]
	h.send(120, 3*time.Millisecond)
	time.Sleep(100 * time.Millisecond)
	if got := h.received()[0] - healBase; got == 0 {
		t.Fatalf("re-admitted replica received no traffic after the fault cleared (digest=%+v)",
			h.router.Table().Digest())
	}
	_ = rep
}

// TestStatsRoutingEjectsAndReadmits drives the full health cycle through
// the real ack plumbing: a blackholed replica is ejected (consecutive
// ack timeouts), sits out probation, then earns its way back to healthy
// through probe successes once the partition heals.
func TestStatsRoutingEjectsAndReadmits(t *testing.T) {
	h := startRoutingHarness(t, chaosWindowConfig())
	sick := h.sifts[1].Addr()

	h.send(30, 3*time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, _, ok := h.router.Table().Pick(wire.StepSIFT); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windows never warmed: %+v", h.router.Table().Digest())
		}
		h.send(6, 3*time.Millisecond)
	}

	// Blackhole: every frame to the replica vanishes; only ack timeouts
	// report back.
	h.faults.SetPeerPolicy(sick, transport.FaultPolicy{Drop: 1.0})
	h.waitState(sick, routestats.StateEjected, 8*time.Second)

	// Heal. After the probation sit-out a pick promotes the replica to
	// probation, probes feed it, and consecutive successes re-admit it.
	h.faults.ClearPeerPolicy(sick)
	h.waitState(sick, routestats.StateHealthy, 8*time.Second)

	// Ejection and re-admission must be visible in the digest counters.
	for _, d := range h.router.Table().Digest() {
		if d.Replica == sick {
			if d.Lost == 0 {
				t.Fatalf("blackholed replica shows no losses: %+v", d)
			}
			if d.State != "healthy" {
				t.Fatalf("digest state %q after re-admission", d.State)
			}
		}
	}
}
