package agent

import (
	"net"
	"testing"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/wire"
)

// workerHopAllocBudget is the enforced steady-state allocation budget
// for one full data-plane hop: client send → transport receive →
// decode → process → re-encode → forward → sink receive. The hop is
// designed to be allocation-free (pooled frames, pooled encode scratch,
// pooled transport buffers — DESIGN.md "Buffer ownership & pooling");
// the budget leaves two allocations of slack for runtime noise
// (timer wheels, map growth in long-lived caches) so the test stays
// deterministic without hiding a real regression, which shows up as
// tens of allocations per frame.
const workerHopAllocBudget = 2

func TestWorkerHopAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	delivered := make(chan struct{}, 1)
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  hopProcessor{step: wire.StepPrimary},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		QueueCap:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	fr := sinkBoundFrame(t, sink.LocalAddr(), 180<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ingress := w.Addr()
	for i := 0; i < 4; i++ { // warm every pool on the path
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	})
	if avg > workerHopAllocBudget {
		t.Errorf("worker hop allocates %.1f/op, budget %d", avg, workerHopAllocBudget)
	}
	if st := w.Stats(); st.Errors > 0 || st.DroppedQueue > 0 || st.DroppedThreshold > 0 {
		t.Fatalf("worker dropped or errored: %+v", st)
	}
}
