package agent

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/wire"
)

// workerHopAllocBudget is the enforced steady-state allocation budget
// for one full data-plane hop: client send → transport receive →
// decode → process → re-encode → forward → sink receive. The hop is
// designed to be allocation-free (pooled frames, pooled encode scratch,
// pooled transport buffers — DESIGN.md "Buffer ownership & pooling");
// the budget leaves two allocations of slack for runtime noise
// (timer wheels, map growth in long-lived caches) so the test stays
// deterministic without hiding a real regression, which shows up as
// tens of allocations per frame.
const workerHopAllocBudget = 2

func TestWorkerHopAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	delivered := make(chan struct{}, 1)
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  hopProcessor{step: wire.StepPrimary},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		QueueCap:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	fr := sinkBoundFrame(t, sink.LocalAddr(), 180<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ingress := w.Addr()
	for i := 0; i < 4; i++ { // warm every pool on the path
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := src.SendToAddr(ingress, data); err != nil {
			t.Fatal(err)
		}
		<-delivered
	})
	if avg > workerHopAllocBudget {
		t.Errorf("worker hop allocates %.1f/op, budget %d", avg, workerHopAllocBudget)
	}
	if st := w.Stats(); st.Errors > 0 || st.DroppedQueue > 0 || st.DroppedThreshold > 0 {
		t.Fatalf("worker dropped or errored: %+v", st)
	}
}

// countingFramePool wraps wire.FramePool with ownership accounting: it
// tracks which envelopes are checked out and flags a Put of a frame that
// is not (double release) alongside the Get/Put balance.
type countingFramePool struct {
	mu     sync.Mutex
	pool   wire.FramePool
	gets   int
	puts   int
	badPut int
	out    map[*wire.Frame]bool
}

func newCountingFramePool() *countingFramePool {
	return &countingFramePool{out: make(map[*wire.Frame]bool)}
}

func (p *countingFramePool) Get() *wire.Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr := p.pool.Get()
	p.gets++
	p.out[fr] = true
	return fr
}

func (p *countingFramePool) Put(fr *wire.Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	if !p.out[fr] {
		p.badPut++
	}
	delete(p.out, fr)
	p.pool.Put(fr)
}

// verify asserts every checked-out envelope came back exactly once.
func (p *countingFramePool) verify(t *testing.T) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.badPut > 0 {
		t.Errorf("%d frames released twice (or never checked out)", p.badPut)
	}
	if p.gets != p.puts {
		t.Errorf("frame pool imbalance: %d gets, %d puts, %d outstanding",
			p.gets, p.puts, len(p.out))
	}
}

// waitStats polls until cond passes or the deadline expires, returning
// the final snapshot either way.
func waitStats(w *Worker, cond func(WorkerStats) bool) WorkerStats {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := w.Stats()
		if cond(st) || time.Now().After(deadline) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchFramePoolReleaseOnAllExits drives a batching worker through
// its three envelope exits — processed, threshold-drop at dispatch, and
// shutdown-drain — and asserts every frame in every formed batch is
// released to the pool exactly once.
func TestBatchFramePoolReleaseOnAllExits(t *testing.T) {
	t.Run("processed", func(t *testing.T) {
		pool := newCountingFramePool()
		delivered := make(chan struct{}, 32)
		sink, err := listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
			delivered <- struct{}{}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		w, err := StartWorker(WorkerConfig{
			Step:       wire.StepPrimary,
			Mode:       core.ModeScatterPP,
			Processor:  &batchHopProcessor{step: wire.StepPrimary},
			ListenAddr: "127.0.0.1:0",
			Router:     NewStaticRouter(nil),
			BatchMax:   4,
			BatchSlack: 90 * time.Millisecond, // flush almost immediately
			framePool:  pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
		data, err := fr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		for i := 0; i < n; i++ {
			if err := src.SendToAddr(w.Addr(), data); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			<-delivered
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		pool.verify(t)
		if st := w.Stats(); st.Processed != n {
			t.Errorf("processed %d frames, want %d (%+v)", st.Processed, n, st)
		}
	})

	t.Run("threshold-drop", func(t *testing.T) {
		pool := newCountingFramePool()
		sink, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		w, err := StartWorker(WorkerConfig{
			Step:       wire.StepPrimary,
			Mode:       core.ModeScatterPP,
			Processor:  &batchHopProcessor{step: wire.StepPrimary, delay: 120 * time.Millisecond},
			ListenAddr: "127.0.0.1:0",
			Router:     NewStaticRouter(nil),
			Threshold:  40 * time.Millisecond,
			BatchMax:   4,
			framePool:  pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
		data, err := fr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		for i := 0; i < n; i++ {
			if err := src.SendToAddr(w.Addr(), data); err != nil {
				t.Fatal(err)
			}
		}
		st := waitStats(w, func(st WorkerStats) bool {
			return st.Processed+st.DroppedThreshold == n
		})
		if st.DroppedThreshold == 0 {
			t.Errorf("slow batches produced no threshold drops: %+v", st)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		pool.verify(t)
	})

	t.Run("shutdown-drain", func(t *testing.T) {
		pool := newCountingFramePool()
		sink, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		w, err := StartWorker(WorkerConfig{
			Step:       wire.StepPrimary,
			Mode:       core.ModeScatterPP,
			Processor:  &batchHopProcessor{step: wire.StepPrimary},
			ListenAddr: "127.0.0.1:0",
			Router:     NewStaticRouter(nil),
			Threshold:  time.Second, // gather window ≈ 990ms: frames wait in the former
			BatchMax:   64,
			QueueCap:   64,
			framePool:  pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
		data, err := fr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		const n = 5
		for i := 0; i < n; i++ {
			if err := src.SendToAddr(w.Addr(), data); err != nil {
				t.Fatal(err)
			}
		}
		waitStats(w, func(st WorkerStats) bool { return st.Received == n })
		time.Sleep(20 * time.Millisecond) // let the former gather
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		pool.verify(t)
		if st := w.Stats(); st.DroppedShutdown != n {
			t.Errorf("shutdown drops = %d, want %d (one per member frame; %+v)",
				st.DroppedShutdown, n, st)
		}
	})
}
