//go:build !race

package agent

const raceEnabled = false
