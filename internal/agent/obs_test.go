package agent

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestWorkerObservability runs a five-service scAtteR++ deployment with a
// shared live registry and span tracing enabled, and verifies (a) result
// frames carry one span per stage with host attribution and consistent
// segments, and (b) the registry's live digest agrees with the worker's
// own counters while the run is still in flight.
func TestWorkerObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline integration test")
	}
	gen := trace.NewGenerator(trace.Config{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	model, err := core.Train(gen.ReferenceImages(), core.TrainConfig{GMMK: 4, GMMIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	procs := core.NewFastProcessors(model, true, 320, 180)

	reg := obs.NewRegistry()
	table := map[wire.Step][]string{}
	router := NewStaticRouter(nil)
	lateRouter := routerFunc(func(step wire.Step) (string, bool) { return router.Next(step) })
	hosts := []string{"E1", "E1", "E2", "E2", "E2"}
	var workers []*Worker
	for step := 0; step < wire.NumSteps; step++ {
		w, err := StartWorker(WorkerConfig{
			Step: wire.Step(step), Mode: core.ModeScatterPP, Processor: procs[step],
			ListenAddr: "127.0.0.1:0", Router: lateRouter,
			Obs: reg, Host: hosts[step], TraceSpans: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		table[wire.Step(step)] = []string{w.Addr()}
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	router.SetRoutes(table)

	fps, wantResults, patience := 10, 4, 20*time.Second
	if raceEnabled {
		fps, wantResults, patience = 4, 2, 45*time.Second
	}
	client, err := StartClient(ClientConfig{
		ID: 1, FPS: fps, Ingress: table[wire.StepPrimary][0], Obs: reg,
		NextFrame: func(i int) []byte {
			p := &core.Payload{Image: core.GrayToPayload(gen.GrayFrame(i % gen.NumFrames()))}
			return p.Encode()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var results []ClientResult
	deadline := time.After(patience)
	for len(results) < wantResults {
		select {
		case res := <-client.Results():
			results = append(results, res)
		case <-deadline:
			t.Fatalf("only %d results before deadline", len(results))
		}
	}

	// (a) spans ride the frame: every result carries all five stages in
	// pipeline order with host attribution and ordered timestamps.
	for _, res := range results {
		if len(res.Spans) != wire.NumSteps {
			t.Fatalf("frame %d carries %d spans, want %d", res.FrameNo, len(res.Spans), wire.NumSteps)
		}
		for i, rec := range res.Spans {
			if rec.Step != wire.Step(i) {
				t.Errorf("span %d is %s, want %s", i, rec.Step, wire.Step(i))
			}
			if rec.Host != hosts[i] {
				t.Errorf("span %s host = %q, want %q", rec.Step, rec.Host, hosts[i])
			}
			if rec.StartMicros < rec.EnqueueMicros || rec.EndMicros <= rec.StartMicros {
				t.Errorf("span %s timestamps not ordered: %+v", rec.Step, rec)
			}
		}
		spans := obs.FromWire(1, res.FrameNo, res.Spans)
		for _, s := range spans {
			if s.Proc <= 0 {
				t.Errorf("span %s has no processing segment", s.Service)
			}
		}
	}

	// (b) the live digest matches worker counters mid-run.
	digest := reg.Digest()
	if len(digest) != wire.NumSteps {
		t.Fatalf("digest has %d services, want %d", len(digest), wire.NumSteps)
	}
	byName := map[string]obs.ServiceDigest{}
	for _, d := range digest {
		byName[d.Service] = d
	}
	for i, w := range workers {
		st := w.Stats()
		d, ok := byName[wire.Step(i).String()]
		if !ok {
			t.Fatalf("no digest for %s", wire.Step(i))
		}
		if d.Processed != st.Processed {
			t.Errorf("%s digest processed = %d, worker counter = %d",
				d.Service, d.Processed, st.Processed)
		}
		if d.Processed > 0 && d.P95Micros == 0 {
			t.Errorf("%s has processed frames but zero p95", d.Service)
		}
	}
	if reg.FramesSent.Value() == 0 || reg.FramesDelivered.Value() == 0 {
		t.Error("client counters not fed")
	}
}
