package agent

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/wire"
)

// fakeProcessor advances frames like the real services without the
// vision cost, so failover and chaos tests exercise the distributed
// machinery (transport, routing, control plane) at high frame rates.
type fakeProcessor struct {
	step  wire.Step
	delay time.Duration
}

func (p *fakeProcessor) Step() wire.Step { return p.step }

func (p *fakeProcessor) Process(fr *wire.Frame) error {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.step == wire.StepMatching {
		// The client decodes the final payload; give it a valid one.
		fr.Payload = (&core.Payload{}).Encode()
	}
	fr.Step = p.step.Next()
	return nil
}

// failoverHarness is a two-"machine" deployment driven by the real
// control plane: node n2 hosts everything except encoding, which lands
// on n1 and can be killed to force a migration.
type failoverHarness struct {
	root   *orchestrator.Root
	dep    *Deployer
	router *StaticRouter
	// t0 anchors the injected control-plane clock (DetectFailures takes
	// an explicit now, so tests need no real heartbeat waits).
	t0 time.Time
}

func startFailoverDeployment(t *testing.T, configure func(*WorkerConfig)) *failoverHarness {
	t.Helper()
	router := NewStaticRouter(nil)
	dep, err := NewDeployer(DeployerConfig{
		Mode:   core.ModeScatterPP,
		Router: router,
		NewProcessor: func(step wire.Step) core.Processor {
			return &fakeProcessor{step: step, delay: time.Millisecond}
		},
		Configure: configure,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	root := orchestrator.NewRoot(
		orchestrator.WithHooks(dep.Hooks()),
		orchestrator.WithHeartbeatTimeout(time.Second),
	)
	t0 := time.Unix(1000, 0)
	for _, name := range []string{"n1", "n2"} {
		err := root.RegisterNode(orchestrator.NodeInfo{
			Name: name, Cluster: "edge", CPUCores: 8, MemBytes: 8 << 30,
		}, t0)
		if err != nil {
			t.Fatal(err)
		}
	}
	mem := int64(128 << 20)
	pin := func(svc string) []string {
		if svc == "encoding" {
			// Prefer n1; n2 is the failover target.
			return []string{"n1", "n2"}
		}
		return []string{"n2"}
	}
	sla := orchestrator.SLA{AppName: "scatter"}
	for _, svc := range []string{"primary", "sift", "encoding", "lsh", "matching"} {
		sla.Microservices = append(sla.Microservices, orchestrator.ServiceSLA{
			Name: svc, Image: "scatter/" + svc, Replicas: 1,
			Requirements: orchestrator.Requirements{MemBytes: mem, Machines: pin(svc)},
		})
	}
	d, err := root.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances {
		want := "n2"
		if inst.Service == "encoding" {
			want = "n1"
		}
		if inst.Node != want {
			t.Fatalf("%s placed on %s, want %s", inst.Key(), inst.Node, want)
		}
	}
	return &failoverHarness{root: root, dep: dep, router: router, t0: t0}
}

// failNode kills node's workers, then drives the control plane: the
// surviving node heartbeats, the dead one does not, and DetectFailures
// runs at a logical time past the heartbeat timeout.
func (h *failoverHarness) failNode(t *testing.T, node, survivor string) []orchestrator.Instance {
	t.Helper()
	if killed := h.dep.Kill(node); killed == 0 {
		t.Fatalf("no workers killed on %s", node)
	}
	now := h.t0.Add(time.Minute)
	err := h.root.Heartbeat(survivor, orchestrator.NodeStatus{LastHeartbeat: now})
	if err != nil {
		t.Fatal(err)
	}
	return h.root.DetectFailures(now)
}

// collectResults drains client results for the window and returns the
// count.
func collectResults(c *Client, window time.Duration) int {
	deadline := time.After(window)
	n := 0
	for {
		select {
		case <-c.Results():
			n++
		case <-deadline:
			return n
		}
	}
}

func TestFailoverMigratesAndReroutes(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e failover test")
	}
	h := startFailoverDeployment(t, nil)
	encBefore, ok := h.dep.Addr(wire.StepEncoding)
	if !ok {
		t.Fatal("no encoding worker after deploy")
	}
	ingress, ok := h.dep.Addr(wire.StepPrimary)
	if !ok {
		t.Fatal("no primary worker after deploy")
	}
	client, err := StartClient(ClientConfig{
		ID: 1, FPS: 50, Ingress: ingress,
		NextFrame: func(i int) []byte { return (&core.Payload{}).Encode() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Healthy pipeline first: results must flow end to end.
	deadline := time.After(10 * time.Second)
	for n := 0; n < 10; {
		select {
		case <-client.Results():
			n++
		case <-deadline:
			t.Fatalf("only %d results pre-failure; stats: %+v", n, h.dep.Stats())
		}
	}

	// Kill encoding's machine. Routes still point at the dead address
	// until the control plane reacts — that's the crash being simulated.
	migrated := h.failNode(t, "n1", "n2")
	if len(migrated) != 1 || migrated[0].Service != "encoding" || migrated[0].Node != "n2" {
		t.Fatalf("migrated = %+v, want encoding -> n2", migrated)
	}
	encAfter, ok := h.dep.Addr(wire.StepEncoding)
	if !ok {
		t.Fatal("no encoding worker after migration (OnSchedule hook did not fire)")
	}
	if encAfter == encBefore {
		t.Fatalf("encoding still at %s after migration", encAfter)
	}
	if addr, ok := h.router.Next(wire.StepEncoding); !ok || addr != encAfter {
		t.Fatalf("router routes encoding to %q, want migrated %q", addr, encAfter)
	}

	// Frames must flow through the migrated worker.
	deadline = time.After(10 * time.Second)
	for n := 0; n < 10; {
		select {
		case <-client.Results():
			n++
		case <-deadline:
			t.Fatalf("only %d results post-failover; stats: %+v", n, h.dep.Stats())
		}
	}
	if st := h.dep.Stats()["encoding"]; st.Processed == 0 {
		t.Errorf("migrated encoding worker processed nothing: %+v", st)
	}
}

func TestDeployerValidation(t *testing.T) {
	if _, err := NewDeployer(DeployerConfig{}); err == nil {
		t.Error("deployer without router accepted")
	}
	if _, err := NewDeployer(DeployerConfig{Router: NewStaticRouter(nil)}); err == nil {
		t.Error("deployer without processor factory accepted")
	}
}

func TestDeployerCloseStopsWorkers(t *testing.T) {
	h := startFailoverDeployment(t, nil)
	if err := h.dep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.dep.Addr(wire.StepPrimary); ok {
		t.Error("worker still listed after Close")
	}
	if _, ok := h.router.Next(wire.StepEncoding); ok {
		t.Error("routes not emptied after Close")
	}
	// Hooks arriving after Close must not start new workers.
	h.dep.onSchedule(orchestrator.Instance{App: "a", Service: "sift", Replica: 0, Node: "n2"})
	if _, ok := h.dep.Addr(wire.StepSIFT); ok {
		t.Error("worker started after Close")
	}
}
