package agent

import (
	"runtime"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestChaosPipelineRecovers is the acceptance chaos run: a pipeline with
// 1% per-packet loss injected on primary→sift absorbs a 2-second
// partition of that link plus a mid-run machine kill (encoding's node),
// and once the control plane migrates the instance, throughput recovers
// to within 20% of the fault-free baseline. It also checks the run
// leaks no goroutines.
func TestChaosPipelineRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e test")
	}
	g0 := runtime.NumGoroutine()

	var primaryFault *transport.FaultyEndpoint
	h := startFailoverDeployment(t, func(wc *WorkerConfig) {
		if wc.Step == wire.StepPrimary {
			wc.WrapEndpoint = func(ep transport.Endpoint) transport.Endpoint {
				primaryFault = transport.NewFaultyEndpoint(ep, transport.FaultPolicy{}, 42)
				return primaryFault
			}
		}
	})
	if primaryFault == nil {
		t.Fatal("primary endpoint was not wrapped")
	}
	ingress, _ := h.dep.Addr(wire.StepPrimary)
	siftAddr, ok := h.dep.Addr(wire.StepSIFT)
	if !ok {
		t.Fatal("no sift worker")
	}

	client, err := StartClient(ClientConfig{
		ID: 7, FPS: 50, Ingress: ingress,
		NextFrame: func(i int) []byte { return (&core.Payload{}).Encode() },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free baseline over a fixed window (after a short warmup so
	// route rotation and socket buffers settle).
	const window = 2 * time.Second
	collectResults(client, 500*time.Millisecond)
	baseline := collectResults(client, window)
	if baseline == 0 {
		t.Fatalf("no baseline throughput; stats: %+v", h.dep.Stats())
	}

	// Chaos: 1% per-packet loss on primary→sift for the rest of the run,
	// a 2 s partition of the same link, and — while the link is dark —
	// the encoding machine dies.
	primaryFault.SetPeerPolicy(siftAddr, transport.FaultPolicy{PacketLoss: 0.01})
	primaryFault.Partition(siftAddr)
	time.Sleep(time.Second)
	migrated := h.failNode(t, "n1", "n2")
	if len(migrated) != 1 || migrated[0].Service != "encoding" {
		t.Fatalf("migrated = %+v, want the encoding instance", migrated)
	}
	time.Sleep(time.Second)
	primaryFault.Heal(siftAddr)

	// Recovery: drain whatever straggled during the faults, then measure
	// the same window. The 1% loss is still active — a recovered pipeline
	// rides through it.
	collectResults(client, 500*time.Millisecond)
	recovered := collectResults(client, window)
	if float64(recovered) < 0.8*float64(baseline) {
		t.Errorf("post-recovery throughput %d over %v, want >= 80%% of baseline %d; fault stats %+v, worker stats %+v",
			recovered, window, baseline, primaryFault.Stats(), h.dep.Stats())
	}
	st := primaryFault.Stats()
	if st.Blackholed == 0 {
		t.Error("partition blackholed nothing — chaos did not engage")
	}

	// Teardown everything and verify no goroutines leaked.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.dep.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= g0+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: started with %d, now %d\n%s",
				g0, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
