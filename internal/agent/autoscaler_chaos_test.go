package agent

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/wire"
)

// collapseProc is a two-stage pipeline stub whose sift cost is dialed at
// runtime: raising the delay drops per-replica capacity below the client
// rate, inducing the paper's queue-drop collapse without touching the
// hardware gauges the orchestrator reports.
type collapseProc struct {
	step  wire.Step
	delay *atomic.Int64 // per-frame processing cost in microseconds
}

func (p *collapseProc) Step() wire.Step { return p.step }

func (p *collapseProc) Process(fr *wire.Frame) error {
	if p.step == wire.StepSIFT {
		if d := p.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Microsecond)
		}
		fr.Payload = (&core.Payload{}).Encode()
		fr.Step = wire.StepDone
		return nil
	}
	fr.Step = p.step.Next()
	return nil
}

// autoscaleHarness is a live closed control loop: real workers under a
// Deployer, a Root with the deployment, and an Autoscaler consuming the
// node registry's digests the way heartbeats carry them.
type autoscaleHarness struct {
	root   *orchestrator.Root
	dep    *Deployer
	reg    *obs.Registry
	as     *orchestrator.Autoscaler
	client *Client
	delay  atomic.Int64
}

func startAutoscaleDeployment(t *testing.T, policy appaware.Policy, maxReplicas int, admission bool) *autoscaleHarness {
	t.Helper()
	h := &autoscaleHarness{reg: obs.NewRegistry()}
	router := NewStaticRouter(nil)
	dep, err := NewDeployer(DeployerConfig{
		Mode:   core.ModeScatterPP,
		Router: router,
		NewProcessor: func(step wire.Step) core.Processor {
			return &collapseProc{step: step, delay: &h.delay}
		},
		Configure: func(wc *WorkerConfig) {
			wc.Obs = h.reg
			wc.QueueCap = 8 // small queue so a collapse shows up as drops fast
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	h.dep = dep
	h.root = orchestrator.NewRoot(orchestrator.WithHooks(dep.Hooks()))
	t0 := time.Now()
	for _, name := range []string{"n1", "n2"} {
		err := h.root.RegisterNode(orchestrator.NodeInfo{
			Name: name, Cluster: "edge", CPUCores: 8, MemBytes: 8 << 30,
		}, t0)
		if err != nil {
			t.Fatal(err)
		}
	}
	sla := orchestrator.SLA{AppName: "scatter", Microservices: []orchestrator.ServiceSLA{
		{Name: "primary", Image: "scatter/primary", Replicas: 1,
			Requirements: orchestrator.Requirements{MemBytes: 128 << 20, Machines: []string{"n1"}}},
		{Name: "sift", Image: "scatter/sift", Replicas: 1,
			Requirements: orchestrator.Requirements{MemBytes: 128 << 20, Machines: []string{"n1", "n2"}}},
	}}
	if _, err := h.root.Deploy(sla); err != nil {
		t.Fatal(err)
	}
	h.as = orchestrator.NewAutoscaler(h.root, orchestrator.AutoscalerConfig{
		App: "scatter", Policy: policy,
		MaxReplicas: maxReplicas, AdmissionEnabled: admission,
	})
	ingress, ok := dep.Addr(wire.StepPrimary)
	if !ok {
		t.Fatal("no primary worker")
	}
	client, err := StartClient(ClientConfig{
		ID: 1, FPS: 60, Ingress: ingress,
		NextFrame: func(int) []byte { return (&core.Payload{}).Encode() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	h.client = client
	return h
}

// controlTick plays one heartbeat round trip: nodes report app digests
// with LOW hardware gauges (the collapse is processing-cost-induced, so
// CPU/GPU stay cool — exactly the telemetry today's orchestrators see),
// the loop evaluates, and the response verdicts land on the Deployer the
// way a heartbeat response would.
func (h *autoscaleHarness) controlTick(t *testing.T) {
	t.Helper()
	now := time.Now()
	err := h.root.Heartbeat("n1", orchestrator.NodeStatus{
		CPUUtil: 0.1, GPUUtil: 0.1, LastHeartbeat: now,
		Services: orchestrator.TelemetryFromDigests(h.reg.Digest()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.root.Heartbeat("n2", orchestrator.NodeStatus{
		CPUUtil: 0.05, GPUUtil: 0.05, LastHeartbeat: now,
	}); err != nil {
		t.Fatal(err)
	}
	h.as.Tick(now)
	h.dep.ApplyAdmissions(h.root.Admissions())
}

// fps drains stale results, then measures delivered frames per second
// over the window.
func (h *autoscaleHarness) fps(window time.Duration) float64 {
	for {
		select {
		case <-h.client.Results():
			continue
		default:
		}
		break
	}
	return float64(collectResults(h.client, window)) / window.Seconds()
}

// siftDistressDrops sums the sidecar's distress drops (queue overflow +
// queue-latency shedding) — the counters a collapse shows up in.
func (h *autoscaleHarness) siftDistressDrops() uint64 {
	st := h.dep.Stats()["sift"]
	return st.DroppedQueue + st.DroppedThreshold
}

func (h *autoscaleHarness) siftReplicas(t *testing.T) int {
	t.Helper()
	d, err := h.root.Deployment("scatter")
	if err != nil {
		t.Fatal(err)
	}
	return len(d.InstancesOf("sift"))
}

// TestAutoscalerChaosCollapse is the closed-loop e2e: a processing-cost
// collapse that stays invisible in hardware telemetry. The QoS loop must
// scale the distressed service out and recover delivered FPS; the
// hardware loop must take no action on the same collapse; and at the
// replica cap, admission control must measurably bound sidecar queue
// drops.
func TestAutoscalerChaosCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e autoscaler test")
	}

	t.Run("qos recovers delivered fps", func(t *testing.T) {
		h := startAutoscaleDeployment(t, appaware.QoSPolicy{MinSamples: 10}, 3, false)
		h.delay.Store(1_000) // 1 ms/frame: healthy
		pre := h.fps(2 * time.Second)
		if pre < 30 {
			t.Fatalf("healthy baseline only %.1f fps", pre)
		}
		// Collapse: 25 ms/frame caps one replica at ~40 fps under a 60 fps
		// client — queue drops, while reported CPU/GPU stay low.
		h.delay.Store(25_000)
		scaled := false
		for i := 0; i < 24 && !scaled; i++ {
			time.Sleep(500 * time.Millisecond)
			h.controlTick(t)
			scaled = h.siftReplicas(t) >= 2
		}
		if !scaled {
			t.Fatalf("qos loop never scaled sift; events: %+v, stats: %+v",
				h.as.Events(), h.dep.Stats())
		}
		ev := h.as.Events()
		if ev[0].Service != "sift" || ev[0].Verb != "scale-up" {
			t.Errorf("first action = %+v, want sift scale-up", ev[0])
		}
		// Let the new replica drain the backlog, then measure recovery.
		time.Sleep(time.Second)
		post := h.fps(2 * time.Second)
		if post < 0.8*pre {
			t.Errorf("delivered FPS did not recover: %.1f post vs %.1f pre (%.0f%%)",
				post, pre, 100*post/pre)
		}
	})

	t.Run("hardware policy takes no action", func(t *testing.T) {
		h := startAutoscaleDeployment(t, appaware.HardwarePolicy{}, 3, false)
		h.delay.Store(25_000)
		dropsBefore := h.siftDistressDrops()
		for i := 0; i < 8; i++ {
			time.Sleep(400 * time.Millisecond)
			h.controlTick(t)
		}
		// The collapse is real…
		if d := h.siftDistressDrops(); d == dropsBefore {
			t.Fatalf("no queue drops — collapse never happened (stats: %+v)", h.dep.Stats())
		}
		// …but invisible to a utilization-only controller.
		if ev := h.as.Events(); len(ev) != 0 {
			t.Errorf("hardware policy acted on cool gauges: %+v", ev)
		}
		if n := h.siftReplicas(t); n != 1 {
			t.Errorf("sift replicas = %d, want unchanged 1", n)
		}
	})

	t.Run("admission bounds queue drops at the cap", func(t *testing.T) {
		h := startAutoscaleDeployment(t, appaware.QoSPolicy{MinSamples: 10}, 1, true)
		// Deep collapse: ~66% of ingress dropped, past the reject ratio.
		h.delay.Store(50_000)
		// Uncontrolled: measure how fast queue drops grow with the loop off.
		time.Sleep(2 * time.Second)
		uncontrolled := h.siftDistressDrops()
		if uncontrolled == 0 {
			t.Fatalf("collapse produced no queue drops; stats: %+v", h.dep.Stats())
		}
		// Close the loop until a verdict is in force at the sidecar.
		engaged := false
		for i := 0; i < 24 && !engaged; i++ {
			time.Sleep(500 * time.Millisecond)
			h.controlTick(t)
			engaged = h.as.AdmitStateOf(wire.StepSIFT) != core.AdmitOK
		}
		if !engaged {
			t.Fatalf("admission never engaged; events: %+v", h.as.Events())
		}
		if n := h.siftReplicas(t); n != 1 {
			t.Fatalf("scaled past MaxReplicas=1: %d replicas", n)
		}
		// Controlled window: enforcement must cut the queue-drop rate well
		// below the uncontrolled rate over the same 2 s span.
		start := h.siftDistressDrops()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			time.Sleep(500 * time.Millisecond)
			h.controlTick(t) // keep verdicts fresh (and let them relax to degrade)
		}
		controlled := h.siftDistressDrops() - start
		if controlled*2 > uncontrolled {
			t.Errorf("admission did not bound queue drops: %d controlled vs %d uncontrolled over 2s",
				controlled, uncontrolled)
		}
		if adm := h.dep.Stats()["sift"].DroppedAdmission; adm == 0 {
			t.Error("no admission drops counted while a verdict was in force")
		}
		// The refusals surface in the node's admission digest, not as
		// distress.
		dg := h.dep.AdmissionDigest()
		found := false
		for _, s := range dg.Services {
			if s.Service == "sift" && s.Drops > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("admission digest missing sift drops: %+v", dg)
		}
	})
}
