package agent

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/wire"
)

// DeployerConfig configures a Deployer.
type DeployerConfig struct {
	// Mode is the pipeline semantics every started worker runs with.
	Mode core.Mode
	// Network is the inter-service transport ("udp" default, "tcp").
	Network string
	// Router is the routing table the Deployer keeps in sync with the
	// live placement. Workers it starts forward through this router.
	// A *StaticRouter gives the deterministic round-robin; a
	// *StatsRouter adds stats-driven replica selection.
	Router RouteUpdater
	// NewProcessor builds a fresh processor each time an instance of the
	// step is scheduled (processors are not shared across restarts).
	NewProcessor func(step wire.Step) core.Processor
	// ListenAddr is the bind address pattern for started workers
	// (default "127.0.0.1:0" — ephemeral loopback ports).
	ListenAddr string
	// Configure, when set, tweaks each WorkerConfig before StartWorker
	// (thresholds, observability, endpoint wrapping for fault injection).
	Configure func(*WorkerConfig)
	// Log defaults to slog.Default().
	Log *slog.Logger
}

// Deployer bridges the orchestrator control plane to the real runtime:
// its Hooks start a worker when the scheduler places an instance, stop
// it when the instance is removed, and after every change push the
// current live placement into the Router — so DetectFailures migrations
// become route updates frames actually follow, not just bookkeeping.
type Deployer struct {
	cfg DeployerConfig

	mu      sync.Mutex
	workers map[string]*Worker // instance key -> running worker
	steps   map[string]wire.Step
	nodes   map[string]string // instance key -> node name
	// admits holds the admission verdict per step so workers started
	// later (scale-out, migration) inherit the verdict in force.
	admits map[wire.Step]core.AdmitState
	closed bool
}

// NewDeployer validates the configuration and returns a Deployer.
func NewDeployer(cfg DeployerConfig) (*Deployer, error) {
	if cfg.Router == nil {
		return nil, errors.New("agent: deployer needs a router")
	}
	if cfg.NewProcessor == nil {
		return nil, errors.New("agent: deployer needs a processor factory")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	return &Deployer{
		cfg:     cfg,
		workers: make(map[string]*Worker),
		steps:   make(map[string]wire.Step),
		nodes:   make(map[string]string),
		admits:  make(map[wire.Step]core.AdmitState),
	}, nil
}

// Hooks returns the lifecycle hooks to install on the Root
// (orchestrator.WithHooks).
func (d *Deployer) Hooks() orchestrator.Hooks {
	return orchestrator.Hooks{
		OnSchedule: d.onSchedule,
		OnRemove:   d.onRemove,
	}
}

func (d *Deployer) onSchedule(inst orchestrator.Instance) {
	step, err := wire.ParseStep(inst.Service)
	if err != nil {
		d.cfg.Log.Error("deployer: unknown service scheduled", "service", inst.Service)
		return
	}
	wc := WorkerConfig{
		Step:       step,
		Mode:       d.cfg.Mode,
		Processor:  d.cfg.NewProcessor(step),
		ListenAddr: d.cfg.ListenAddr,
		Router:     d.cfg.Router,
		Network:    d.cfg.Network,
		Host:       inst.Node,
		Log:        d.cfg.Log,
	}
	if d.cfg.Configure != nil {
		d.cfg.Configure(&wc)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if old, ok := d.workers[inst.Key()]; ok {
		// The slot is being rescheduled; tear down any stale worker first.
		old.Close()
	}
	w, err := StartWorker(wc)
	if err != nil {
		d.cfg.Log.Error("deployer: start worker", "instance", inst.Key(), "err", err)
		delete(d.workers, inst.Key())
		delete(d.steps, inst.Key())
		delete(d.nodes, inst.Key())
		d.syncRoutesLocked()
		return
	}
	if st := d.admits[step]; st != core.AdmitOK {
		w.SetAdmitState(st)
	}
	d.workers[inst.Key()] = w
	d.steps[inst.Key()] = step
	d.nodes[inst.Key()] = inst.Node
	d.syncRoutesLocked()
	d.cfg.Log.Info("deployer: worker up", "instance", inst.Key(), "node", inst.Node, "addr", w.Addr())
}

func (d *Deployer) onRemove(inst orchestrator.Instance) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[inst.Key()]
	if !ok {
		return
	}
	delete(d.workers, inst.Key())
	delete(d.steps, inst.Key())
	delete(d.nodes, inst.Key())
	w.Close()
	d.syncRoutesLocked()
	d.cfg.Log.Info("deployer: worker removed", "instance", inst.Key())
}

// syncRoutesLocked rebuilds the router table from the live workers.
// Replica order is deterministic (sorted instance keys) so round-robin
// rotation is reproducible.
func (d *Deployer) syncRoutesLocked() {
	keys := make([]string, 0, len(d.workers))
	for k := range d.workers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	table := make(map[wire.Step][]string)
	for _, k := range keys {
		step := d.steps[k]
		table[step] = append(table[step], d.workers[k].Addr())
	}
	d.cfg.Router.SetRoutes(table)
}

// Kill abruptly closes every worker on the named node WITHOUT updating
// routes — simulating a machine crash: peers keep sending to the dead
// addresses until the control loop detects the failure, migrates the
// instances, and the hooks repair the table. Returns how many workers
// it killed.
func (d *Deployer) Kill(node string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for k, w := range d.workers {
		if d.nodes[k] != node {
			continue
		}
		w.Close()
		delete(d.workers, k)
		delete(d.steps, k)
		delete(d.nodes, k)
		n++
	}
	return n
}

// Addr returns the ingress address of a live worker serving step (the
// first in deterministic order), or false when none runs.
func (d *Deployer) Addr(step wire.Step) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(d.workers))
	for k := range d.workers {
		if d.steps[k] == step {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "", false
	}
	sort.Strings(keys)
	return d.workers[keys[0]].Addr(), true
}

// Worker returns the live worker for an instance key.
func (d *Deployer) Worker(key string) (*Worker, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.workers[key]
	return w, ok
}

// Stats sums worker counters per service across live instances.
func (d *Deployer) Stats() map[string]WorkerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]WorkerStats)
	for k, w := range d.workers {
		st := w.Stats()
		agg := out[d.steps[k].String()]
		agg.Received += st.Received
		agg.Processed += st.Processed
		agg.DroppedBusy += st.DroppedBusy
		agg.DroppedQueue += st.DroppedQueue
		agg.DroppedThreshold += st.DroppedThreshold
		agg.DroppedShutdown += st.DroppedShutdown
		agg.DroppedAdmission += st.DroppedAdmission
		agg.Errors += st.Errors
		agg.ForwardRetries += st.ForwardRetries
		agg.QueueMicros += st.QueueMicros
		agg.ProcMicros += st.ProcMicros
		out[d.steps[k].String()] = agg
	}
	return out
}

// SetAdmitState pushes an admission verdict to every live worker of the
// step and remembers it so later-started replicas inherit it.
func (d *Deployer) SetAdmitState(step wire.Step, st core.AdmitState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st == core.AdmitOK {
		delete(d.admits, step)
	} else {
		d.admits[step] = st
	}
	for k, w := range d.workers {
		if d.steps[k] == step {
			w.SetAdmitState(st)
		}
	}
}

// ApplyAdmissions enforces a heartbeat response's verdict set: listed
// services get their verdict, every other step resets to admit. Wire it
// as the orchestrator client's admission handler
// (Client.SetAdmissionHandler).
func (d *Deployer) ApplyAdmissions(adm []orchestrator.ServiceAdmission) {
	want := make(map[wire.Step]core.AdmitState, len(adm))
	for _, a := range adm {
		step, err := wire.ParseStep(a.Service)
		if err != nil {
			continue
		}
		want[step] = core.ParseAdmitState(a.State)
	}
	for step := 0; step < wire.NumSteps; step++ {
		d.SetAdmitState(wire.Step(step), want[wire.Step(step)])
	}
}

// AdmissionDigest snapshots per-service admission state and drops for
// the obs exposition (Registry.SetAdmissionSource).
func (d *Deployer) AdmissionDigest() obs.AdmissionDigest {
	d.mu.Lock()
	defer d.mu.Unlock()
	drops := make(map[wire.Step]uint64)
	seen := make(map[wire.Step]bool)
	for k, w := range d.workers {
		step := d.steps[k]
		drops[step] += w.Stats().DroppedAdmission
		seen[step] = true
	}
	var out obs.AdmissionDigest
	for step := 0; step < wire.NumSteps; step++ {
		st := wire.Step(step)
		if !seen[st] && d.admits[st] == core.AdmitOK && drops[st] == 0 {
			continue
		}
		out.Services = append(out.Services, obs.AdmissionServiceDigest{
			Service: st.String(),
			State:   d.admits[st].String(),
			Drops:   drops[st],
		})
	}
	return out
}

// Close stops every worker and empties the routes.
func (d *Deployer) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	for k, w := range d.workers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("agent: close %s: %w", k, err)
		}
	}
	d.workers = make(map[string]*Worker)
	d.steps = make(map[string]wire.Step)
	d.nodes = make(map[string]string)
	d.syncRoutesLocked()
	return firstErr
}
