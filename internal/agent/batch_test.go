package agent

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/wire"
)

// batchHopProcessor is a BatchHandler stub: like hopProcessor it marks
// every frame done, but it also records the size of each batch it
// receives and can inject a fixed per-dispatch delay to simulate a slow
// service.
type batchHopProcessor struct {
	step  wire.Step
	delay time.Duration

	mu    sync.Mutex
	sizes []int
}

func (p *batchHopProcessor) Step() wire.Step { return p.step }

func (p *batchHopProcessor) Process(fr *wire.Frame) error {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.record(1)
	fr.Step = wire.StepDone
	return nil
}

func (p *batchHopProcessor) ProcessBatch(frs []*wire.Frame) []error {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.record(len(frs))
	for _, fr := range frs {
		fr.Step = wire.StepDone
	}
	return make([]error, len(frs))
}

func (p *batchHopProcessor) record(n int) {
	p.mu.Lock()
	p.sizes = append(p.sizes, n)
	p.mu.Unlock()
}

func (p *batchHopProcessor) batchSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.sizes...)
}

// TestBatchNeverAdmitsPastThreshold is the acceptance regression for the
// batch former's latency contract: with a processor slow enough that a
// dispatch outlives the threshold, frames stuck behind it must be
// threshold-dropped at dispatch, never processed. Every frame that does
// reach the sink carries its worker-recorded queue wait in its stage
// record, so the contract is checked on the delivered evidence, not just
// worker counters.
func TestBatchNeverAdmitsPastThreshold(t *testing.T) {
	const threshold = 40 * time.Millisecond
	var mu sync.Mutex
	var waits []time.Duration
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		var fr wire.Frame
		if err := fr.UnmarshalBinary(data); err != nil {
			return
		}
		for _, s := range fr.Stages {
			mu.Lock()
			waits = append(waits, time.Duration(s.QueueMicros)*time.Microsecond)
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  &batchHopProcessor{step: wire.StepPrimary, delay: 100 * time.Millisecond},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		Threshold:  threshold,
		BatchMax:   4,
		QueueCap:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := src.SendToAddr(w.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(w, func(st WorkerStats) bool {
		return st.Processed+st.DroppedThreshold+st.DroppedQueue == n
	})
	if st.Processed+st.DroppedThreshold+st.DroppedQueue != n {
		t.Fatalf("frames unaccounted for: %+v", st)
	}
	if st.DroppedThreshold == 0 {
		t.Errorf("100ms dispatches against a 40ms threshold produced no threshold drops: %+v", st)
	}
	if st.Processed == 0 {
		t.Errorf("nothing was processed: %+v", st)
	}
	time.Sleep(20 * time.Millisecond) // let in-flight deliveries land
	mu.Lock()
	defer mu.Unlock()
	if len(waits) == 0 {
		t.Fatal("no delivered frames carried stage records")
	}
	for _, wait := range waits {
		if wait > threshold {
			t.Errorf("delivered frame waited %v in the former, over the %v threshold", wait, threshold)
		}
	}
}

// TestBatchShutdownDropSpans verifies satellite accounting: a batch
// abandoned in the former at Close counts every member frame in
// DroppedShutdown and emits one shutdown-outcome span per frame, not one
// per batch.
func TestBatchShutdownDropSpans(t *testing.T) {
	rec := obs.NewRecorder(0)
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  &batchHopProcessor{step: wire.StepPrimary},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		Threshold:  time.Second, // ≈990ms gather window keeps frames in the former
		BatchMax:   64,
		QueueCap:   64,
		TraceSpans: true,
		Spans:      rec,
		Host:       "E1",
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := src.SendToAddr(w.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(w, func(st WorkerStats) bool { return st.Received == n })
	time.Sleep(20 * time.Millisecond) // let the former gather all five
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.DroppedShutdown != n {
		t.Errorf("DroppedShutdown = %d, want %d (every member frame)", st.DroppedShutdown, n)
	}
	var shutdownSpans int
	for _, s := range rec.Spans() {
		if s.Outcome == obs.OutcomeShutdown {
			shutdownSpans++
		}
	}
	if shutdownSpans != n {
		t.Errorf("%d shutdown spans, want %d (one per frame)", shutdownSpans, n)
	}
}

// TestBatchStatsAndObsSeries checks that batching feeds the worker's own
// counters, the live registry's batch series, and the span stream: sizes
// observed by the processor, Stats().Batches/BatchedFrames, registry
// batch instruments, and "/batch" dispatch spans must all agree.
func TestBatchStatsAndObsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	proc := &batchHopProcessor{step: wire.StepPrimary}
	delivered := make(chan struct{}, 64)
	sink, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  proc,
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		BatchMax:   4,
		BatchSlack: 95 * time.Millisecond, // ≈5ms gather window
		QueueCap:   32,
		Obs:        reg,
		TraceSpans: true,
		Spans:      rec,
		Host:       "E1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	src, err := listenEndpoint("udp", "127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	fr := sinkBoundFrame(t, sink.LocalAddr(), 4<<10)
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if err := src.SendToAddr(w.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		<-delivered
	}

	st := w.Stats()
	if st.Processed != n {
		t.Fatalf("processed %d, want %d (%+v)", st.Processed, n, st)
	}
	if st.Batches == 0 || st.BatchedFrames != n {
		t.Errorf("Stats: %d batches carrying %d frames, want >0 carrying %d",
			st.Batches, st.BatchedFrames, n)
	}
	sizes := proc.batchSizes()
	var viaBatches int
	for _, s := range sizes {
		viaBatches += s
	}
	if uint64(len(sizes)) != st.Batches || uint64(viaBatches) != st.BatchedFrames {
		t.Errorf("processor saw %d dispatches/%d frames, stats say %d/%d",
			len(sizes), viaBatches, st.Batches, st.BatchedFrames)
	}

	m := reg.Service(wire.StepPrimary.String())
	if m.Batches.Value() != st.Batches || m.BatchFrames.Value() != st.BatchedFrames {
		t.Errorf("registry batch series (%d, %d) disagrees with stats (%d, %d)",
			m.Batches.Value(), m.BatchFrames.Value(), st.Batches, st.BatchedFrames)
	}
	if m.BatchWait.Count() != st.Batches {
		t.Errorf("batch wait histogram has %d samples, want %d", m.BatchWait.Count(), st.Batches)
	}
	var d obs.ServiceDigest
	for _, sd := range reg.Digest() {
		if sd.Service == wire.StepPrimary.String() {
			d = sd
		}
	}
	if d.Batches == 0 || d.MeanBatch <= 0 {
		t.Errorf("digest missing batch summary: %+v", d)
	}

	var batchSpans, batchFrames int
	for _, s := range rec.Spans() {
		if strings.HasSuffix(s.Service, "/batch") {
			batchSpans++
			batchFrames += int(s.FrameNo)
		}
	}
	if uint64(batchSpans) != st.Batches || uint64(batchFrames) != st.BatchedFrames {
		t.Errorf("span stream has %d dispatch spans/%d frames, stats say %d/%d",
			batchSpans, batchFrames, st.Batches, st.BatchedFrames)
	}
}
