// Package agent implements the real-mode scAtteR runtime: service workers
// that receive frames over UDP, apply the pipeline semantics (drop-if-busy
// for scAtteR, sidecar queue with latency threshold for scAtteR++), invoke
// the real vision processors, and forward results to the next hop or back
// to the client. It is the process-level equivalent of the containerized
// microservices in the paper's testbed; isolation is goroutine-level
// rather than container-level (see DESIGN.md substitutions).
package agent

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/rpc"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/wire"
)

// Router resolves the address of the next pipeline hop. Implementations
// must be safe for concurrent use.
type Router interface {
	// Next returns the UDP address serving the given step, rotating
	// across replicas (semantic addressing).
	Next(step wire.Step) (string, bool)
}

// RouteUpdater is a Router whose replica table a control plane can
// replace at runtime. StaticRouter and StatsRouter both implement it.
type RouteUpdater interface {
	Router
	// SetRoutes atomically replaces the step→replica-addresses table.
	SetRoutes(hops map[wire.Step][]string)
}

// StaticRouter is a fixed routing table with round-robin replica
// selection.
type StaticRouter struct {
	mu    sync.Mutex
	hops  map[wire.Step][]string
	index map[wire.Step]int
}

// NewStaticRouter builds a router from a step→replica-addresses table.
func NewStaticRouter(hops map[wire.Step][]string) *StaticRouter {
	cp := make(map[wire.Step][]string, len(hops))
	for k, v := range hops {
		cp[k] = append([]string(nil), v...)
	}
	return &StaticRouter{hops: cp, index: make(map[wire.Step]int)}
}

// SetRoutes atomically replaces the routing table — used when worker
// addresses become known only after the workers bind (ephemeral ports),
// and by control planes pushing updated placements.
func (r *StaticRouter) SetRoutes(hops map[wire.Step][]string) {
	cp := make(map[wire.Step][]string, len(hops))
	for k, v := range hops {
		cp[k] = append([]string(nil), v...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hops = cp
	r.index = make(map[wire.Step]int)
}

// Next implements Router.
func (r *StaticRouter) Next(step wire.Step) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := r.hops[step]
	if len(addrs) == 0 {
		return "", false
	}
	i := r.index[step] % len(addrs)
	r.index[step]++
	return addrs[i], true
}

// WorkerStats are cumulative counters exposed by a worker — the sidecar
// analytics of scAtteR++ and the hardware-independent QoS signals the
// paper argues orchestrators should consume.
type WorkerStats struct {
	Received         uint64
	Processed        uint64
	DroppedBusy      uint64 // scAtteR busy-drops
	DroppedQueue     uint64 // sidecar queue overflow
	DroppedThreshold uint64 // sidecar latency-threshold drops
	DroppedShutdown  uint64 // abandoned in the sidecar queue at Close
	// DroppedAdmission counts ingress frames refused by admission control
	// (reject, or the decimated share under degrade) — a deliberate
	// control action, kept out of the distress drop counters so the
	// controller's recovery signal stays clean.
	DroppedAdmission uint64
	Errors           uint64
	ForwardRetries   uint64 // next-hop send retries under the budget
	QueueMicros      uint64 // total queueing time of processed frames
	ProcMicros       uint64 // total processing time
	Batches          uint64 // batch dispatches through the BatchHandler
	BatchedFrames    uint64 // frames those dispatches carried
	// FastPathSkips counts frames this worker short-circuited to StepDone
	// ahead of the matching stage — the primary worker's tracker-gated
	// fast path answering from published verdicts.
	FastPathSkips uint64
}

// WorkerConfig configures one service worker.
type WorkerConfig struct {
	Step      wire.Step
	Mode      core.Mode
	Processor core.Processor
	// ListenAddr is the worker's UDP ingress ("host:port", port 0 for
	// ephemeral).
	ListenAddr string
	Router     Router
	// Threshold is the scAtteR++ sidecar queue-wait budget (default
	// 100 ms).
	Threshold time.Duration
	// QueueCap bounds the sidecar queue (default 64).
	QueueCap int
	// BatchMax caps how many queued frames the sidecar coalesces into one
	// dispatch when the processor implements core.BatchHandler. 1 (the
	// default) keeps the per-frame path; without a BatchHandler the value
	// is ignored.
	BatchMax int
	// BatchSlack is the batch former's flush margin: a forming batch is
	// dispatched once the oldest member's remaining latency budget
	// (Threshold minus queue wait) drops to this slack, so holding a
	// batch open never pushes a frame past its threshold. Default 10 ms.
	BatchSlack time.Duration
	// StateRPCListen, for a stateful sift worker, starts a state-fetch
	// RPC server on this address ("host:port", port 0 ok).
	StateRPCListen string
	// Network selects the inter-service transport: "udp" (default, the
	// paper's baseline) or "tcp" (the reliable alternative of A.1.2).
	// All workers of one deployment must agree.
	Network string
	// WrapEndpoint, when set, wraps the worker's transport endpoint after
	// binding — the hook chaos tests and fault-injection deployments use
	// to interpose a transport.FaultyEndpoint on real sockets.
	WrapEndpoint func(transport.Endpoint) transport.Endpoint
	// ForwardAttempts is the total number of send attempts per outbound
	// frame, including the first (default 2). Retries re-resolve the route
	// so they can fail over to another replica of the next hop.
	ForwardAttempts int
	// ForwardBackoff is the delay before the second attempt, doubling per
	// attempt (default 25 ms).
	ForwardBackoff time.Duration
	// Obs, when set, receives live per-service telemetry (arrivals,
	// drops, queue/proc latency histograms) — the concurrent registry an
	// exposition endpoint and orchestrator heartbeats read during the
	// run, unlike the run-end metrics.Collector.
	Obs *obs.Registry
	// Host names this worker's machine in tracing spans. Defaults to the
	// OS hostname.
	Host string
	// TraceSpans attaches a per-frame span record to every processed
	// frame (the wire envelope's versioned span block), so the frame
	// carries its own latency decomposition across hosts. Off by default:
	// spans cost ~35 bytes per stage on the wire.
	TraceSpans bool
	// Spans, when TraceSpans is on, receives the spans that cannot ride a
	// frame because the frame died here: busy/overflow/threshold drops,
	// processing errors, and shutdown-abandoned frames all record a
	// drop-outcome span locally, so traces and drop counters tell one
	// story. OK spans still travel on the frame only.
	Spans *obs.Recorder
	// Log defaults to slog.Default().
	Log *slog.Logger

	// framePool overrides the worker's envelope pool. In-package tests
	// inject a counting pool here to assert release-exactly-once across
	// the processed/threshold-drop/shutdown-drain exits.
	framePool framePool
}

// framePool is the frame-envelope recycling contract the worker's data
// plane runs on (wire.FramePool in production).
type framePool interface {
	Get() *wire.Frame
	Put(*wire.Frame)
}

// listenEndpoint opens the configured transport.
func listenEndpoint(network, addr string, handler transport.Handler) (transport.Endpoint, error) {
	switch network {
	case "", "udp":
		return transport.Listen(addr, handler)
	case "tcp":
		return transport.ListenTCP(addr, handler)
	default:
		return nil, fmt.Errorf("agent: unknown network %q", network)
	}
}

// endpointBox wraps the transport interface for atomic publication.
type endpointBox struct {
	ep transport.Endpoint
}

// Worker is one running service instance.
type Worker struct {
	cfg WorkerConfig
	// conn is published atomically: the transport read loop can deliver
	// frames before StartWorker's caller-side assignment completes.
	conn    atomic.Pointer[endpointBox]
	rpc     *rpc.Server
	rpcAddr string
	queue   chan queuedItem
	busy    atomic.Bool
	wg      sync.WaitGroup
	done    chan struct{}
	// live is the optional obs instrument set for this service (nil when
	// no registry was configured).
	live *obs.ServiceMetrics

	received, processed             atomic.Uint64
	droppedBusy, droppedQueue       atomic.Uint64
	droppedThreshold, errorsCount   atomic.Uint64
	droppedShutdown, forwardRetries atomic.Uint64
	droppedAdmission                atomic.Uint64
	queueMicros, procMicros         atomic.Uint64
	batches, batchedFrames          atomic.Uint64
	fastSkips                       atomic.Uint64

	// admit is the admission verdict in force at this worker's ingress
	// (core.AdmitState; pushed by the control plane via SetAdmitState).
	// A plain atomic load on the hot path — no allocation, no lock.
	admit atomic.Int32

	// Steady-state pools (DESIGN.md "Buffer ownership & pooling"): every
	// inbound frame decodes into a recycled envelope and every outbound
	// frame encodes into recycled scratch, so the per-frame hot path
	// allocates nothing once capacities warm up. frames is an interface
	// only so tests can substitute a counting pool; production workers
	// always run on a wire.FramePool.
	frames  framePool
	encPool wire.BufPool

	// Batch-former scratch, owned by the sidecar goroutine: the gathered
	// items and the frame slice handed to ProcessBatch are reused across
	// dispatches.
	batchItems  []queuedItem
	batchFrames []*wire.Frame

	// clientAddrs caches the string form of client delivery addresses
	// (netip.AddrPort.String allocates); bounded like the transport
	// resolve cache. Ack replies reuse it for sender addresses.
	clientAddrMu sync.RWMutex
	clientAddrs  map[netip.AddrPort]string

	// Stats-driven routing plumbing. picker is non-nil when cfg.Router
	// implements ReplicaPicker (e.g. a StatsRouter): forwards then charge
	// their outcome to the chosen replica's statistics window. ackMode
	// additionally arms the hop-acknowledgement protocol — UDP only;
	// over TCP the synchronous send is its own latency/loss signal.
	picker  ReplicaPicker
	ackMode bool
	pendMu  sync.Mutex
	pending map[uint64]pendingAck
}

// pendingAck is one ack-awaited forward: which replica window to credit
// and when the frame left, so the ack round-trip is the hop latency.
type pendingAck struct {
	rep *routestats.Replica
	at  time.Time
}

// maxClientAddrCacheEntries bounds the delivery-address string cache.
const maxClientAddrCacheEntries = 4096

type queuedItem struct {
	fr *wire.Frame
	at time.Time
}

// StartWorker binds the worker's sockets and begins serving.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Processor == nil {
		return nil, errors.New("agent: nil processor")
	}
	if cfg.Processor.Step() != cfg.Step {
		return nil, fmt.Errorf("agent: processor serves %s, worker configured for %s",
			cfg.Processor.Step(), cfg.Step)
	}
	if cfg.Router == nil {
		return nil, errors.New("agent: nil router")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 100 * time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 1
	}
	if cfg.BatchMax > cfg.QueueCap {
		cfg.BatchMax = cfg.QueueCap
	}
	if cfg.BatchSlack <= 0 {
		cfg.BatchSlack = 10 * time.Millisecond
	}
	if cfg.ForwardAttempts <= 0 {
		cfg.ForwardAttempts = 2
	}
	if cfg.ForwardBackoff <= 0 {
		cfg.ForwardBackoff = 25 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	if cfg.Host == "" {
		if h, err := os.Hostname(); err == nil && h != "" {
			cfg.Host = h
		} else {
			cfg.Host = "node"
		}
	}
	w := &Worker{
		cfg:         cfg,
		done:        make(chan struct{}),
		clientAddrs: make(map[netip.AddrPort]string),
		frames:      cfg.framePool,
	}
	if w.frames == nil {
		w.frames = new(wire.FramePool)
	}
	if cfg.Obs != nil {
		w.live = cfg.Obs.Service(cfg.Step.String())
	}
	if p, ok := cfg.Router.(ReplicaPicker); ok {
		w.picker = p
		w.ackMode = cfg.Network == "" || cfg.Network == "udp"
		if w.ackMode {
			w.pending = make(map[uint64]pendingAck)
		}
	}
	// Everything the receive path touches must exist before the UDP read
	// loop starts delivering messages.
	if cfg.Mode == core.ModeScatterPP {
		w.queue = make(chan queuedItem, cfg.QueueCap)
	}
	if cfg.StateRPCListen != "" {
		s, ok := cfg.Processor.(*core.SIFT)
		if !ok {
			return nil, errors.New("agent: StateRPCListen on a non-sift worker")
		}
		w.rpc = rpc.NewServer(stateFetchHandler(s))
		addr, err := w.rpc.Listen(cfg.StateRPCListen)
		if err != nil {
			return nil, err
		}
		w.rpcAddr = addr
	}
	conn, err := listenEndpoint(cfg.Network, cfg.ListenAddr, w.onMessage)
	if err != nil {
		if w.rpc != nil {
			w.rpc.Close()
		}
		return nil, err
	}
	if uc, ok := conn.(*transport.Conn); ok {
		// Surface reassembly-layer losses (timeout, table bounds,
		// malformed geometry) as drop-outcome spans and live drop
		// counts, so transport drops and worker drops tell one story.
		uc.SetDropHook(w.onTransportDrop)
	}
	if cfg.WrapEndpoint != nil {
		conn = cfg.WrapEndpoint(conn)
	}
	w.conn.Store(&endpointBox{ep: conn})
	if w.queue != nil {
		w.wg.Add(1)
		go w.sidecarLoop()
	}
	if w.ackMode {
		w.wg.Add(1)
		go w.ackSweepLoop()
	}
	return w, nil
}

// Addr returns the worker's ingress address.
func (w *Worker) Addr() string { return w.conn.Load().ep.LocalAddr() }

// RPCAddr returns the bound state-fetch RPC address, or "" when this
// worker serves no state.
func (w *Worker) RPCAddr() string { return w.rpcAddr }

// Close stops the worker. Frames still waiting in the scAtteR++ sidecar
// queue are accounted as shutdown drops (with drop-outcome spans when
// tracing) rather than silently abandoned, so counters reconcile with
// arrivals across a failover.
func (w *Worker) Close() error {
	select {
	case <-w.done:
		return nil
	default:
	}
	close(w.done)
	err := w.conn.Load().ep.Close()
	if w.rpc != nil {
		w.rpc.Close()
	}
	w.wg.Wait()
	if w.queue != nil {
		now := time.Now()
		for {
			select {
			case item := <-w.queue:
				w.droppedShutdown.Add(1)
				if w.live != nil {
					w.live.Dropped.Inc()
				}
				w.dropSpan(item.fr, obs.OutcomeShutdown, item.at, now, now)
				w.frames.Put(item.fr)
			default:
				if w.live != nil {
					w.live.QueueLen.Set(0)
				}
				return err
			}
		}
	}
	return err
}

// dropSpan records a local span for a frame that died at this worker and
// therefore cannot carry its span downstream. No-op unless TraceSpans is
// on (Recorder.Record is nil-safe, so an unset Spans sink is fine).
func (w *Worker) dropSpan(fr *wire.Frame, outcome obs.Outcome, enq, start, end time.Time) {
	if !w.cfg.TraceSpans {
		return
	}
	w.cfg.Spans.Record(obs.Span{
		Service:   w.cfg.Step.String(),
		Host:      w.cfg.Host,
		Step:      w.cfg.Step,
		ClientID:  fr.ClientID,
		FrameNo:   fr.FrameNo,
		EnqueueAt: time.Duration(enq.UnixMicro()) * time.Microsecond,
		StartAt:   time.Duration(start.UnixMicro()) * time.Microsecond,
		EndAt:     time.Duration(end.UnixMicro()) * time.Microsecond,
		Queue:     start.Sub(enq),
		Proc:      end.Sub(start),
		Outcome:   outcome,
	})
}

// SetAdmitState installs the admission verdict enforced at this worker's
// ingress. Safe for concurrent use with the data plane.
func (w *Worker) SetAdmitState(s core.AdmitState) { w.admit.Store(int32(s)) }

// AdmitState returns the verdict currently enforced at ingress.
func (w *Worker) AdmitState() core.AdmitState { return core.AdmitState(w.admit.Load()) }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Received:         w.received.Load(),
		Processed:        w.processed.Load(),
		DroppedBusy:      w.droppedBusy.Load(),
		DroppedQueue:     w.droppedQueue.Load(),
		DroppedThreshold: w.droppedThreshold.Load(),
		DroppedShutdown:  w.droppedShutdown.Load(),
		DroppedAdmission: w.droppedAdmission.Load(),
		Errors:           w.errorsCount.Load(),
		ForwardRetries:   w.forwardRetries.Load(),
		QueueMicros:      w.queueMicros.Load(),
		ProcMicros:       w.procMicros.Load(),
		Batches:          w.batches.Load(),
		BatchedFrames:    w.batchedFrames.Load(),
		FastPathSkips:    w.fastSkips.Load(),
	}
}

// onTransportDrop is the UDP endpoint's drop hook: a reassembly-layer
// loss is a lost frame that never reached onMessage, so it is counted
// against this worker and, when tracing, recorded as a drop-outcome
// span (with no frame identity — the envelope never decoded).
func (w *Worker) onTransportDrop(from, reason string) {
	if w.live != nil {
		w.live.Dropped.Inc()
	}
	if !w.cfg.TraceSpans {
		return
	}
	now := time.Now()
	at := time.Duration(now.UnixMicro()) * time.Microsecond
	w.cfg.Spans.Record(obs.Span{
		Service:   w.cfg.Step.String(),
		Host:      w.cfg.Host,
		Step:      w.cfg.Step,
		EnqueueAt: at,
		StartAt:   at,
		EndAt:     at,
		Outcome:   obs.OutcomeTransport,
	})
}

// onMessage is the transport receive handler. data is only borrowed
// (transport.Handler contract), so the frame is decoded with the
// copying decoder into a pooled envelope; ownership of that envelope
// transfers to whichever path consumes it — the processing goroutine
// (scAtteR), the sidecar queue (scAtteR++), or a drop path — and the
// consumer returns it to the pool.
func (w *Worker) onMessage(data []byte, from net.Addr) {
	if wire.IsAck(data) {
		w.onAck(data)
		return
	}
	fr := w.frames.Get()
	if err := fr.UnmarshalBinary(data); err != nil {
		w.frames.Put(fr)
		w.errorsCount.Add(1)
		if w.live != nil {
			w.live.Errors.Inc()
		}
		return
	}
	w.received.Add(1)
	now := time.Now()
	if w.live != nil {
		w.live.Arrived.Inc()
	}
	// Admission enforcement at the door, before the queue: a rejected
	// service turns every frame away; a degraded one admits one frame in
	// core.DegradeStride (by frame number, so each client keeps a steady
	// reduced cadence). Refused frames are never acked — the upstream
	// route window books a loss, which is the backpressure that steers
	// stats-driven routing away.
	if st := core.AdmitState(w.admit.Load()); st != core.AdmitOK {
		if st == core.AdmitReject || fr.FrameNo%core.DegradeStride != 0 {
			w.droppedAdmission.Add(1)
			if w.live != nil {
				w.live.AdmissionDrops.Inc()
			}
			w.dropSpan(fr, obs.OutcomeAdmission, now, now, now)
			w.frames.Put(fr)
			return
		}
	}
	// Ack identity, captured before envelope ownership moves to the
	// processing goroutine or the sidecar queue. Acks are sent only on
	// admission: a frame dropped at the door stays unacknowledged, and
	// the sender's timeout books it as a route loss.
	ackWanted := fr.AckWanted
	clientID, frameNo, step := fr.ClientID, fr.FrameNo, fr.Step
	switch w.cfg.Mode {
	case core.ModeScatter:
		// One frame at a time; outstanding requests at a busy service are
		// dropped.
		if !w.busy.CompareAndSwap(false, true) {
			w.droppedBusy.Add(1)
			if w.live != nil {
				w.live.Dropped.Inc()
			}
			w.dropSpan(fr, obs.OutcomeBusy, now, now, now)
			w.frames.Put(fr)
			return
		}
		if ackWanted {
			w.sendAck(from, clientID, frameNo, step)
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer w.busy.Store(false)
			w.process(fr, now, 0)
			w.frames.Put(fr)
		}()
	case core.ModeScatterPP:
		select {
		case w.queue <- queuedItem{fr: fr, at: now}:
			if w.live != nil {
				w.live.QueueLen.Set(int64(len(w.queue)))
			}
			if ackWanted {
				w.sendAck(from, clientID, frameNo, step)
			}
		default:
			w.droppedQueue.Add(1)
			if w.live != nil {
				w.live.Dropped.Inc()
			}
			w.dropSpan(fr, obs.OutcomeOverflow, now, now, now)
			w.frames.Put(fr)
		}
	default:
		w.frames.Put(fr)
	}
}

// sendAck returns a hop acknowledgement to the previous hop. Only UDP
// peers are acked: the reply goes to the sender's data socket (UDP
// workers send and listen on one socket), and TCP senders already get a
// synchronous send signal.
func (w *Worker) sendAck(from net.Addr, clientID uint32, frameNo uint64, step wire.Step) {
	ua, ok := from.(*net.UDPAddr)
	if !ok {
		return
	}
	box := w.conn.Load()
	if box == nil {
		return
	}
	buf := wire.AppendAck(w.encPool.Get(wire.AckSize), clientID, frameNo, step)
	if err := box.ep.SendToAddr(w.clientAddrString(ua.AddrPort()), buf); err != nil {
		w.cfg.Log.Debug("ack send failed", "step", step, "err", err)
	}
	w.encPool.Put(buf)
}

// onAck resolves a pending forward with the measured ack round-trip.
// Unmatched acks (already swept as lost, or duplicated by the network)
// are ignored.
func (w *Worker) onAck(data []byte) {
	clientID, frameNo, step, ok := wire.ParseAck(data)
	if !ok {
		return
	}
	key := wire.AckKey(clientID, frameNo, step)
	w.pendMu.Lock()
	p, found := w.pending[key]
	if found {
		delete(w.pending, key)
	}
	w.pendMu.Unlock()
	if found {
		p.rep.Outcome(time.Since(p.at), true)
	}
}

// registerPending arms the ack timeout for one forwarded frame.
func (w *Worker) registerPending(clientID uint32, frameNo uint64, step wire.Step, rep *routestats.Replica) {
	key := wire.AckKey(clientID, frameNo, step)
	w.pendMu.Lock()
	w.pending[key] = pendingAck{rep: rep, at: time.Now()}
	w.pendMu.Unlock()
}

// ackSweepLoop expires pending forwards that never got their ack,
// booking each as a loss against its replica window — the signal that
// distinguishes a lossy or overloaded replica from a healthy one.
func (w *Worker) ackSweepLoop() {
	defer w.wg.Done()
	timeout := w.picker.AckTimeout()
	tick := timeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case now := <-ticker.C:
			w.pendMu.Lock()
			for key, p := range w.pending {
				if now.Sub(p.at) >= timeout {
					delete(w.pending, key)
					p.rep.Outcome(0, false)
				}
			}
			w.pendMu.Unlock()
		}
	}
}

func (w *Worker) sidecarLoop() {
	defer w.wg.Done()
	if bh, ok := w.cfg.Processor.(core.BatchHandler); ok && w.cfg.BatchMax > 1 {
		w.batchLoop(bh)
		return
	}
	for {
		select {
		case <-w.done:
			return
		case item := <-w.queue:
			if w.live != nil {
				w.live.QueueLen.Set(int64(len(w.queue)))
			}
			wait := time.Since(item.at)
			if wait > w.cfg.Threshold {
				w.droppedThreshold.Add(1)
				if w.live != nil {
					w.live.Dropped.Inc()
				}
				now := time.Now()
				w.dropSpan(item.fr, obs.OutcomeThreshold, item.at, now, now)
				w.frames.Put(item.fr)
				continue
			}
			w.process(item.fr, item.at, wait)
			w.frames.Put(item.fr)
		}
	}
}

// batchLoop is the sidecar loop of a batching worker: it gathers up to
// BatchMax queued frames, holding the batch open no longer than the
// oldest member's remaining latency budget minus BatchSlack, then
// dispatches them in one ProcessBatch call. Frames gathered but not yet
// dispatched when the worker closes are accounted as shutdown drops —
// one count and one span per member frame.
func (w *Worker) batchLoop(bh core.BatchHandler) {
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		select {
		case <-w.done:
			return
		case item := <-w.queue:
			w.batchItems = append(w.batchItems[:0], item)
		}
		// The flush deadline is fixed by the first (oldest) frame: waiting
		// past it would eat into the slack the frame still needs to get
		// processed under its threshold.
		timer.Reset(time.Until(w.batchItems[0].at.Add(w.cfg.Threshold - w.cfg.BatchSlack)))
	gather:
		for len(w.batchItems) < w.cfg.BatchMax {
			select {
			case <-w.done:
				timer.Stop()
				w.dropBatchShutdown()
				return
			case item := <-w.queue:
				w.batchItems = append(w.batchItems, item)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		if w.live != nil {
			w.live.QueueLen.Set(int64(len(w.queue)))
		}
		w.dispatchBatch(bh)
	}
}

// dropBatchShutdown accounts every gathered-but-undispatched frame as a
// shutdown drop, mirroring Close's drain of the queue channel.
func (w *Worker) dropBatchShutdown() {
	now := time.Now()
	for _, item := range w.batchItems {
		w.droppedShutdown.Add(1)
		if w.live != nil {
			w.live.Dropped.Inc()
		}
		w.dropSpan(item.fr, obs.OutcomeShutdown, item.at, now, now)
		w.frames.Put(item.fr)
	}
	w.batchItems = w.batchItems[:0]
}

// dispatchBatch re-checks every member against the latency threshold
// (the former must never admit a frame past its budget, however long the
// previous dispatch ran), hands the survivors to the BatchHandler in one
// call, and completes each frame with its own queue wait and an
// amortized share of the batch processing time.
func (w *Worker) dispatchBatch(bh core.BatchHandler) {
	start := time.Now()
	keep := w.batchItems[:0]
	for _, item := range w.batchItems {
		if start.Sub(item.at) > w.cfg.Threshold {
			w.droppedThreshold.Add(1)
			if w.live != nil {
				w.live.Dropped.Inc()
			}
			w.dropSpan(item.fr, obs.OutcomeThreshold, item.at, start, start)
			w.frames.Put(item.fr)
			continue
		}
		keep = append(keep, item)
	}
	w.batchItems = keep
	n := len(keep)
	if n == 0 {
		return
	}
	frs := w.batchFrames[:0]
	for _, item := range keep {
		frs = append(frs, item.fr)
	}
	w.batchFrames = frs

	errs := bh.ProcessBatch(frs)
	end := time.Now()
	share := end.Sub(start) / time.Duration(n)
	w.batches.Add(1)
	w.batchedFrames.Add(uint64(n))
	if w.live != nil {
		w.live.RecordBatch(n, start.Sub(keep[0].at))
	}
	w.batchSpan(n, keep[0].at, start, end)
	for i, item := range keep {
		var err error
		if i < len(errs) {
			err = errs[i]
		}
		w.complete(item.fr, err, item.at, start, end, start.Sub(item.at), share)
		w.frames.Put(item.fr)
	}
	w.batchItems = w.batchItems[:0]
	for i := range w.batchFrames {
		w.batchFrames[i] = nil
	}
	w.batchFrames = w.batchFrames[:0]
}

// batchSpan records the dispatch itself — service "<step>/batch", batch
// size in FrameNo — alongside the per-frame spans riding the envelopes.
func (w *Worker) batchSpan(n int, enq, start, end time.Time) {
	if !w.cfg.TraceSpans {
		return
	}
	w.cfg.Spans.Record(obs.Span{
		Service:   w.cfg.Step.String() + "/batch",
		Host:      w.cfg.Host,
		Step:      w.cfg.Step,
		FrameNo:   uint64(n),
		EnqueueAt: time.Duration(enq.UnixMicro()) * time.Microsecond,
		StartAt:   time.Duration(start.UnixMicro()) * time.Microsecond,
		EndAt:     time.Duration(end.UnixMicro()) * time.Microsecond,
		Queue:     start.Sub(enq),
		Proc:      end.Sub(start),
		Outcome:   obs.OutcomeOK,
	})
}

func (w *Worker) process(fr *wire.Frame, enqueuedAt time.Time, queueWait time.Duration) {
	start := time.Now()
	err := w.cfg.Processor.Process(fr)
	end := time.Now()
	w.complete(fr, err, enqueuedAt, start, end, queueWait, end.Sub(start))
}

// complete is the shared tail of the per-frame and batched paths:
// accounting, stage/span attachment, re-encode, and forward/deliver.
// proc is the processing time attributed to this frame — the real
// elapsed time on the per-frame path, the amortized share of the batch
// window on the batched path (spans carry the full window, so residency
// and throughput accounting stay distinguishable).
func (w *Worker) complete(fr *wire.Frame, err error, enqueuedAt, start, end time.Time, queueWait, proc time.Duration) {
	if err != nil {
		w.errorsCount.Add(1)
		if w.live != nil {
			w.live.Errors.Inc()
		}
		w.dropSpan(fr, obs.OutcomeError, enqueuedAt, start, end)
		w.cfg.Log.Debug("process failed", "step", w.cfg.Step, "err", err)
		return
	}
	w.processed.Add(1)
	w.queueMicros.Add(uint64(queueWait.Microseconds()))
	w.procMicros.Add(uint64(proc.Microseconds()))
	if w.live != nil {
		w.live.RecordProcessed(queueWait, proc)
	}
	fr.AddStage(w.cfg.Step, uint32(queueWait.Microseconds()), uint32(proc.Microseconds()))
	if w.cfg.TraceSpans {
		// The span rides the envelope across hosts like the paper's
		// intermediary metadata; timestamps are absolute µs so spans from
		// different hosts share one clock (modulo host clock skew).
		fr.AddSpan(wire.SpanRecord{
			Step:          w.cfg.Step,
			Outcome:       uint8(obs.OutcomeOK),
			Host:          w.cfg.Host,
			EnqueueMicros: uint64(enqueuedAt.UnixMicro()),
			StartMicros:   uint64(start.UnixMicro()),
			EndMicros:     uint64(end.UnixMicro()),
		})
	}

	// Hop acknowledgements are requested on worker→worker forwards only
	// (never on client delivery): the next hop acks admission, and the
	// round-trip feeds this worker's replica statistics windows.
	fr.AckWanted = w.ackMode && fr.Step != wire.StepDone

	// Re-encode into pooled scratch: the transport must not retain the
	// buffer after SendToAddr returns (Endpoint contract), so it goes
	// straight back to the pool when the forward resolves.
	data, err := fr.AppendBinary(w.encPool.Get(fr.EncodedSize()))
	defer w.encPool.Put(data)
	if err != nil {
		w.errorsCount.Add(1)
		return
	}
	box := w.conn.Load()
	if box == nil {
		// A frame raced ahead of StartWorker's publication; extremely
		// early arrivals are dropped like any other overload.
		w.errorsCount.Add(1)
		return
	}
	conn := box.ep
	if fr.Step == wire.StepDone {
		if w.cfg.Step != wire.StepMatching {
			// Only matching legitimately terminates the pipeline; an
			// earlier stage arriving at StepDone short-circuited through
			// the fast-path gate.
			w.fastSkips.Add(1)
		}
		if !fr.ClientAddr.IsValid() {
			w.errorsCount.Add(1)
			return
		}
		clientAddr := w.clientAddrString(fr.ClientAddr)
		if err := w.forward(conn, wire.StepDone, clientAddr, data, fr.ClientID, fr.FrameNo); err != nil {
			w.errorsCount.Add(1)
			w.cfg.Log.Debug("deliver failed", "client", clientAddr, "err", err)
		}
		return
	}
	if err := w.forward(conn, fr.Step, "", data, fr.ClientID, fr.FrameNo); err != nil {
		w.errorsCount.Add(1)
		w.cfg.Log.Warn("forward failed", "step", fr.Step, "err", err)
	}
}

// clientAddrString formats a client delivery address through a bounded
// cache, so steady-state deliveries skip netip.AddrPort.String's
// allocation.
func (w *Worker) clientAddrString(ap netip.AddrPort) string {
	w.clientAddrMu.RLock()
	s, ok := w.clientAddrs[ap]
	w.clientAddrMu.RUnlock()
	if ok {
		return s
	}
	s = ap.String()
	w.clientAddrMu.Lock()
	if len(w.clientAddrs) < maxClientAddrCacheEntries {
		w.clientAddrs[ap] = s
	}
	w.clientAddrMu.Unlock()
	return s
}

// errNoRoute reports a step with no live replica in the routing table.
var errNoRoute = errors.New("agent: no route for step")

// forward sends an outbound frame under the worker's retry budget.
// With fixedAddr set (final delivery to a client) every attempt targets
// that address; otherwise the route for step is re-resolved on every
// attempt, so after a control-plane route update a retry fails over to
// the replacement replica instead of re-hitting the dead one — without
// retries, a send failure silently loses the frame (it only shows up as
// an error count). The destination is plain arguments rather than a
// resolver callback so the per-frame hot path builds no closures.
//
// With a stats-aware router, every pick charges the chosen replica's
// window: a local send error immediately, an unacknowledged UDP forward
// via the pending-ack sweep, a TCP forward by its synchronous send.
func (w *Worker) forward(conn transport.Endpoint, step wire.Step, fixedAddr string, data []byte,
	clientID uint32, frameNo uint64) error {
	backoff := w.cfg.ForwardBackoff
	var lastErr error
	for attempt := 0; attempt < w.cfg.ForwardAttempts; attempt++ {
		if attempt > 0 {
			w.forwardRetries.Add(1)
			t := time.NewTimer(backoff)
			select {
			case <-w.done:
				t.Stop()
				return transport.ErrClosed
			case <-t.C:
			}
			backoff *= 2
		}
		addr, ok := fixedAddr, true
		var rep *routestats.Replica
		if fixedAddr == "" {
			if w.picker != nil {
				addr, rep, ok = w.picker.PickReplica(step)
			} else {
				addr, ok = w.cfg.Router.Next(step)
			}
		}
		if !ok {
			lastErr = errNoRoute
			continue
		}
		if rep == nil {
			if err := conn.SendToAddr(addr, data); err != nil {
				lastErr = err
				continue
			}
			return nil
		}
		w.routeSpan(step, addr, clientID, frameNo)
		rep.Begin()
		if w.ackMode {
			if err := conn.SendToAddr(addr, data); err != nil {
				rep.OutcomeSendError()
				lastErr = err
				continue
			}
			w.registerPending(clientID, frameNo, step, rep)
			return nil
		}
		t0 := time.Now()
		if err := conn.SendToAddr(addr, data); err != nil {
			rep.OutcomeSendError()
			lastErr = err
			continue
		}
		rep.Outcome(time.Since(t0), true)
		return nil
	}
	return lastErr
}

// routeSpanNames are the per-step route-decision span services,
// precomputed so the hot path concatenates nothing.
var routeSpanNames = func() (n [int(wire.StepDone) + 1]string) {
	for s := wire.Step(0); s <= wire.StepDone; s++ {
		n[s] = "route/" + s.String()
	}
	return
}()

// routeSpan records one stats-driven routing decision: which replica
// (Host) was chosen for which frame at which step. Like every span it is
// gated on TraceSpans and sinks into the worker's local recorder.
func (w *Worker) routeSpan(step wire.Step, addr string, clientID uint32, frameNo uint64) {
	if !w.cfg.TraceSpans {
		return
	}
	at := time.Duration(time.Now().UnixMicro()) * time.Microsecond
	w.cfg.Spans.Record(obs.Span{
		Service:   routeSpanNames[step],
		Host:      addr,
		Step:      step,
		ClientID:  clientID,
		FrameNo:   frameNo,
		EnqueueAt: at,
		StartAt:   at,
		EndAt:     at,
		Outcome:   obs.OutcomeOK,
	})
}

// State-fetch RPC wiring (matching -> sift in the stateful pipeline).

// FetchMethod is the RPC method name for sift state fetches.
const FetchMethod = "sift.fetch"

func stateFetchHandler(s *core.SIFT) rpc.Handler {
	return func(method string, body []byte) ([]byte, error) {
		if method != FetchMethod {
			return nil, fmt.Errorf("agent: unknown method %q", method)
		}
		if len(body) != 12 {
			return nil, errors.New("agent: bad fetch request")
		}
		clientID := binary.BigEndian.Uint32(body)
		frameNo := binary.BigEndian.Uint64(body[4:])
		feats, err := s.Fetch(clientID, frameNo)
		if err != nil {
			return nil, err
		}
		return (&core.Payload{Features: feats}).Encode(), nil
	}
}

// RPCStateFetcher returns a core.StateFetcher that queries a sift
// worker's state RPC endpoint — matching's half of the dependency loop.
// Fetches are bounded by the per-call timeout only; callers that need to
// abort in-flight fetches on shutdown use RPCStateFetcherContext.
func RPCStateFetcher(addr string, timeout time.Duration) core.StateFetcher {
	return RPCStateFetcherContext(context.Background(), addr, timeout)
}

// RPCStateFetcherContext is RPCStateFetcher with a caller-owned context:
// every fetch aborts when ctx is cancelled, in addition to the per-call
// timeout, so a matching worker shutting down mid-fetch (or a dead sift
// peer) releases its processing goroutine immediately instead of riding
// out the full timeout.
func RPCStateFetcherContext(ctx context.Context, addr string, timeout time.Duration) core.StateFetcher {
	client := rpc.Dial(addr, timeout)
	return func(clientID uint32, frameNo uint64) (*core.Features, error) {
		req := make([]byte, 12)
		binary.BigEndian.PutUint32(req, clientID)
		binary.BigEndian.PutUint64(req[4:], frameNo)
		resp, err := client.Call(ctx, FetchMethod, req)
		if err != nil {
			return nil, err
		}
		p, err := core.DecodePayload(resp)
		if err != nil {
			return nil, err
		}
		if p.Features == nil {
			return nil, errors.New("agent: fetch response without features")
		}
		return p.Features, nil
	}
}

// ClientConfig configures a real-mode client that replays a frame source
// into the pipeline ingress and collects results.
type ClientConfig struct {
	ID      uint32
	FPS     int // default 30
	Ingress string
	// Network selects the transport ("udp" default, "tcp"); must match
	// the deployment's workers.
	Network string
	// NextFrame returns the payload for frame i (already encoded
	// grayscale image payload bytes).
	NextFrame func(i int) []byte
	// Obs, when set, receives the client-side live counters (frames
	// sent/delivered).
	Obs *obs.Registry
	// Log defaults to slog.Default().
	Log *slog.Logger
}

// ClientResult is one completed frame observed by the client.
type ClientResult struct {
	FrameNo    uint64
	E2E        time.Duration
	Detections []core.Detection
	// Stages carries the per-service sidecar analytics the frame
	// accumulated (queueing and processing time per stage).
	Stages []wire.StageRecord
	// Spans carries the per-frame tracing spans (present when workers run
	// with TraceSpans); convert with obs.FromWire for export.
	Spans []wire.SpanRecord
	// FastPath reports that this result was answered by the tracker-gated
	// fast path (detections come from smoothed tracks, not a fresh
	// recognition pass).
	FastPath bool
}

// Client streams frames and receives processed results.
type Client struct {
	cfg     ClientConfig
	conn    transport.Endpoint
	mu      sync.Mutex
	sentAt  map[uint64]time.Time
	results chan ClientResult
	sent    atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup
}

// StartClient begins streaming. Results arrive on Results().
func StartClient(cfg ClientConfig) (*Client, error) {
	if cfg.NextFrame == nil {
		return nil, errors.New("agent: nil frame source")
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	c := &Client{
		cfg:     cfg,
		sentAt:  make(map[uint64]time.Time),
		results: make(chan ClientResult, 256),
		done:    make(chan struct{}),
	}
	conn, err := listenEndpoint(cfg.Network, "127.0.0.1:0", c.onResult)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.wg.Add(1)
	go c.streamLoop()
	return c, nil
}

// Results delivers completed frames.
func (c *Client) Results() <-chan ClientResult { return c.results }

// Sent returns the number of frames emitted so far.
func (c *Client) Sent() uint64 { return c.sent.Load() }

// Close stops streaming.
func (c *Client) Close() error {
	select {
	case <-c.done:
		return nil
	default:
	}
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Client) streamLoop() {
	defer c.wg.Done()
	interval := time.Second / time.Duration(c.cfg.FPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	addrPort, err := netip.ParseAddrPort(c.conn.LocalAddr())
	if err != nil {
		c.cfg.Log.Warn("client addr parse", "err", err)
		return
	}
	// One envelope and one encode buffer for the whole stream: only the
	// per-frame fields change, and the buffer keeps its capacity across
	// frames (the transport does not retain it after SendToAddr).
	fr := &wire.Frame{
		ClientID:   c.cfg.ID,
		ClientAddr: addrPort,
		Step:       wire.StepPrimary,
	}
	var buf []byte
	i := 0
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			payload := c.cfg.NextFrame(i)
			if payload == nil {
				return
			}
			fr.FrameNo = uint64(i + 1)
			fr.CaptureMicros = uint64(time.Now().UnixMicro())
			fr.Payload = payload
			data, err := fr.AppendBinary(buf[:0])
			if err != nil {
				c.cfg.Log.Warn("marshal frame", "err", err)
				continue
			}
			buf = data
			c.mu.Lock()
			c.sentAt[fr.FrameNo] = time.Now()
			c.mu.Unlock()
			c.sent.Add(1)
			if c.cfg.Obs != nil {
				c.cfg.Obs.FramesSent.Inc()
			}
			if err := c.conn.SendToAddr(c.cfg.Ingress, data); err != nil {
				if errors.Is(err, transport.ErrClosed) {
					return // racing with Close
				}
				c.cfg.Log.Warn("send frame", "err", err)
			}
			i++
		}
	}
}

func (c *Client) onResult(data []byte, from net.Addr) {
	// No-copy decode: data is borrowed for the duration of this call
	// (transport.Handler contract) and the aliased payload never
	// escapes — DecodePayload copies every section it extracts, and the
	// stage/span slices are copied into the result below.
	var fr wire.Frame
	if err := fr.UnmarshalBinaryNoCopy(data); err != nil {
		return
	}
	c.mu.Lock()
	sent, ok := c.sentAt[fr.FrameNo]
	delete(c.sentAt, fr.FrameNo)
	c.mu.Unlock()
	if !ok {
		return
	}
	p, err := core.DecodePayload(fr.Payload)
	if err != nil {
		return
	}
	if c.cfg.Obs != nil {
		c.cfg.Obs.FramesDelivered.Inc()
	}
	res := ClientResult{
		FrameNo:    fr.FrameNo,
		E2E:        time.Since(sent),
		Detections: p.Detections,
		Stages:     append([]wire.StageRecord(nil), fr.Stages...),
		Spans:      append([]wire.SpanRecord(nil), fr.Spans...),
		FastPath:   p.FastPath,
	}
	select {
	case c.results <- res:
	default: // consumer lagging; drop oldest behaviour not needed
	}
}
