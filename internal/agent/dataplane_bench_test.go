package agent

import (
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/wire"
)

// hopProcessor is a no-op service stub: it marks the frame done so the
// worker delivers it straight back to the client address. It isolates the
// data-plane cost of a worker hop (decode → process → re-encode →
// forward) from the vision kernels, which have their own benchmarks.
type hopProcessor struct{ step wire.Step }

func (p hopProcessor) Step() wire.Step { return p.step }

func (p hopProcessor) Process(fr *wire.Frame) error {
	fr.Step = wire.StepDone
	return nil
}

// hopPayloadSizes are the paper's frame sizes: ~4 KiB for a compressed
// control/result frame, ~180 KiB for a stateful grayscale frame, and
// ~480 KiB for the scAtteR++ stateless frame with sift state riding along.
var hopPayloadSizes = []int{4 << 10, 180 << 10, 480 << 10}

// sinkBoundFrame builds a frame addressed back to the sink endpoint so a
// hopProcessor worker delivers it there.
func sinkBoundFrame(tb testing.TB, sinkAddr string, payloadSize int) *wire.Frame {
	tb.Helper()
	ap, err := netip.ParseAddrPort(sinkAddr)
	if err != nil {
		tb.Fatal(err)
	}
	fr := &wire.Frame{
		ClientID:   7,
		FrameNo:    1,
		ClientAddr: ap,
		Step:       wire.StepPrimary,
		Payload:    make([]byte, payloadSize),
	}
	for i := range fr.Payload {
		fr.Payload[i] = byte(i * 131)
	}
	return fr
}

// BenchmarkWorkerHop measures one full data-plane hop over real loopback
// sockets: a pre-encoded frame is sent to a worker, the worker decodes it,
// runs a no-op processor, re-encodes, and delivers the result to the
// bench's sink endpoint. ns/op is the per-frame wall time of
// send → decode → process → encode → deliver; B/op and allocs/op are the
// whole-process allocation cost per frame (both directions plus the
// receive path).
func BenchmarkWorkerHop(b *testing.B) {
	for _, network := range []string{"udp", "tcp"} {
		for _, size := range hopPayloadSizes {
			b.Run(fmt.Sprintf("%s/%dKiB", network, size>>10), func(b *testing.B) {
				benchWorkerHop(b, network, size)
			})
		}
	}
}

func benchWorkerHop(b *testing.B, network string, payloadSize int) {
	delivered := make(chan struct{}, 1)
	sink, err := listenEndpoint(network, "127.0.0.1:0", func(data []byte, from net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()

	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  hopProcessor{step: wire.StepPrimary},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		Network:    network,
		QueueCap:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint(network, "127.0.0.1:0", func(data []byte, from net.Addr) {})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	fr := sinkBoundFrame(b, sink.LocalAddr(), payloadSize)
	data, err := fr.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}

	// Warm up the path (TCP dials, pools, route caches) before measuring.
	ingress := w.Addr()
	if err := src.SendToAddr(ingress, data); err != nil {
		b.Fatal(err)
	}
	<-delivered

	b.SetBytes(int64(payloadSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendToAddr(ingress, data); err != nil {
			b.Fatal(err)
		}
		<-delivered
	}
	b.StopTimer()
	if st := w.Stats(); st.Errors > 0 || st.DroppedQueue > 0 || st.DroppedThreshold > 0 {
		b.Fatalf("worker dropped or errored during bench: %+v", st)
	}
}

// batchBenchSetup is the per-dispatch setup cost of the benchmark's
// service stub — the fixed portion (kernel launch, scratch preparation,
// model residency) that micro-batching amortizes. It matches the order
// of magnitude of the batchable profiles in core.DefaultProfiles.
const batchBenchSetup = time.Millisecond

// BenchmarkWorkerHopBatched measures the same loopback hop as
// BenchmarkWorkerHop against a service with a fixed per-dispatch setup
// cost, keeping a window of frames in flight so the sidecar stays
// saturated and the former can coalesce. batch1 is the per-frame
// baseline (serial sidecar loop); larger batches pay the setup once per
// dispatch, so ns/op — one delivered frame — shrinks toward the
// marginal hop cost. TCP keeps the in-flight window flow-controlled
// instead of overflowing loopback UDP socket buffers.
func BenchmarkWorkerHopBatched(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("180KiB/batch%d", batch), func(b *testing.B) {
			benchWorkerHopBatched(b, batch, 180<<10)
		})
	}
}

func benchWorkerHopBatched(b *testing.B, batchMax, payloadSize int) {
	window := 2 * batchMax
	if window < 8 {
		window = 8
	}
	delivered := make(chan struct{}, window)
	sink, err := listenEndpoint("tcp", "127.0.0.1:0", func(data []byte, from net.Addr) {
		delivered <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()

	w, err := StartWorker(WorkerConfig{
		Step:       wire.StepPrimary,
		Mode:       core.ModeScatterPP,
		Processor:  &batchHopProcessor{step: wire.StepPrimary, delay: batchBenchSetup},
		ListenAddr: "127.0.0.1:0",
		Router:     NewStaticRouter(nil),
		Network:    "tcp",
		QueueCap:   2 * window,
		BatchMax:   batchMax,
		// Saturation benchmark: a long budget with slack close to it gives
		// partial batches a ~10ms flush while keeping drops out of the way.
		Threshold:  time.Second,
		BatchSlack: 990 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()

	src, err := listenEndpoint("tcp", "127.0.0.1:0", func(data []byte, from net.Addr) {})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	fr := sinkBoundFrame(b, sink.LocalAddr(), payloadSize)
	data, err := fr.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	ingress := w.Addr()
	send := func() {
		if err := src.SendToAddr(ingress, data); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the path (TCP dials, pools, route caches) at full window.
	for i := 0; i < window; i++ {
		send()
	}
	for i := 0; i < window; i++ {
		<-delivered
	}

	b.SetBytes(int64(payloadSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < window && i < b.N; i++ {
		send()
	}
	for i := 0; i < b.N; i++ {
		<-delivered
		if i+window < b.N {
			send()
		}
	}
	b.StopTimer()
	st := w.Stats()
	if st.Errors > 0 || st.DroppedQueue > 0 || st.DroppedThreshold > 0 {
		b.Fatalf("worker dropped or errored during bench: %+v", st)
	}
	if batchMax > 1 && st.Batches == 0 {
		b.Fatalf("batch former never dispatched a batch: %+v", st)
	}
}

// BenchmarkDataplaneEncode measures the worker-side re-encode of a frame
// carrying sidecar analytics — the marshal the hot path pays at every hop.
func BenchmarkDataplaneEncode(b *testing.B) {
	for _, size := range hopPayloadSizes {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			fr := &wire.Frame{
				ClientID:   7,
				FrameNo:    42,
				ClientAddr: netip.MustParseAddrPort("127.0.0.1:9000"),
				Step:       wire.StepLSH,
				Payload:    make([]byte, size),
			}
			fr.AddStage(wire.StepPrimary, 120, 340)
			fr.AddStage(wire.StepSIFT, 90, 12000)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := fr.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				_ = data
			}
		})
	}
}

var _ transport.Endpoint = (*transport.Conn)(nil)
