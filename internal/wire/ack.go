// Hop acknowledgements: the 16-byte control message a receiving service
// returns to the previous hop when a frame carrying flagAckWanted is
// admitted. Acks are sent on admission — after the frame clears the
// drop-if-busy check (scAtteR) or is enqueued into the sidecar queue
// (scAtteR++) — so a missing ack means the frame was lost in transit or
// dropped at the door, and the ack round-trip measures the hop without
// folding in processing time. The message is deliberately tiny and
// fixed-size: it shares the data sockets with frames, distinguished by
// its own magic.
package wire

import "encoding/binary"

// Ack codec constants.
const (
	ackMagic = 0x5CAB // distinct from the frame magic 0x5CA7
	// AckSize is the exact encoded size of a hop acknowledgement:
	// magic(2) version(1) clientID(4) frameNo(8) step(1).
	AckSize = 2 + 1 + 4 + 8 + 1
)

// AppendAck appends the encoded acknowledgement for (clientID, frameNo,
// step) to buf and returns the extended buffer. With AckSize spare
// capacity the call performs zero allocations.
func AppendAck(buf []byte, clientID uint32, frameNo uint64, step Step) []byte {
	buf = binary.BigEndian.AppendUint16(buf, ackMagic)
	buf = append(buf, version)
	buf = binary.BigEndian.AppendUint32(buf, clientID)
	buf = binary.BigEndian.AppendUint64(buf, frameNo)
	buf = append(buf, byte(step))
	return buf
}

// IsAck reports whether data is a hop acknowledgement — the cheap
// dispatch test a receive handler runs before frame decoding.
func IsAck(data []byte) bool {
	return len(data) == AckSize && binary.BigEndian.Uint16(data) == ackMagic
}

// ParseAck decodes an acknowledgement. ok is false when data is not a
// well-formed ack of a supported version.
func ParseAck(data []byte) (clientID uint32, frameNo uint64, step Step, ok bool) {
	if !IsAck(data) || data[2] != version {
		return 0, 0, 0, false
	}
	step = Step(data[15])
	if !step.Valid() {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint32(data[3:]), binary.BigEndian.Uint64(data[7:]), step, true
}

// AckKey packs an ack identity into one map key for the sender's
// pending table. Frame numbers occupy the high bits; collisions would
// need a client ID aliasing a frame number ~2^52 apart, which a pending
// window bounded by the ack timeout never holds simultaneously.
func AckKey(clientID uint32, frameNo uint64, step Step) uint64 {
	return frameNo<<12 ^ uint64(clientID)<<4 ^ uint64(step)
}
