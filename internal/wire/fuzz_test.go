package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary hardens the frame decoder against arbitrary
// datagrams: it must never panic and anything it accepts must re-encode
// and re-decode consistently.
func FuzzUnmarshalBinary(f *testing.F) {
	seed, err := sampleFrame().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x5c, 0xa7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		var again Frame
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if again.ClientID != fr.ClientID || again.FrameNo != fr.FrameNo ||
			again.Step != fr.Step || !bytes.Equal(again.Payload, fr.Payload) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
