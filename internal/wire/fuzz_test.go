package wire

import (
	"bytes"
	"reflect"
	"testing"
	"unsafe"
)

// FuzzUnmarshalBinary hardens the frame decoder against arbitrary
// datagrams: it must never panic and anything it accepts must re-encode
// and re-decode consistently.
func FuzzUnmarshalBinary(f *testing.F) {
	seed, err := sampleFrame().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x5c, 0xa7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		var again Frame
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if again.ClientID != fr.ClientID || again.FrameNo != fr.FrameNo ||
			again.Step != fr.Step || !bytes.Equal(again.Payload, fr.Payload) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}

// FuzzUnmarshalBinaryNoCopy pins the aliasing decoder to the copying
// one: on any input both must agree on accept/reject and on every
// decoded field, and an aliased payload must lie entirely inside the
// input buffer — never before, past, or outside it.
func FuzzUnmarshalBinaryNoCopy(f *testing.F) {
	seed, err := sampleFrame().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	span, err := spanFrame().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(span)
	f.Add([]byte{})
	f.Add([]byte{0x5c, 0xa7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var copied, aliased Frame
		errCopy := copied.UnmarshalBinary(data)
		errAlias := aliased.UnmarshalBinaryNoCopy(data)
		if (errCopy == nil) != (errAlias == nil) {
			t.Fatalf("decoders disagree: copy=%v nocopy=%v", errCopy, errAlias)
		}
		if errCopy != nil {
			return
		}
		if !reflect.DeepEqual(copied, aliased) {
			t.Fatalf("decoded frames diverged:\ncopy:  %+v\nalias: %+v", copied, aliased)
		}
		if len(aliased.Payload) > 0 {
			start := uintptr(unsafe.Pointer(&data[0]))
			end := start + uintptr(len(data))
			p := uintptr(unsafe.Pointer(&aliased.Payload[0]))
			if p < start || p+uintptr(len(aliased.Payload)) > end {
				t.Fatalf("aliased payload [%#x,%#x) escapes input buffer [%#x,%#x)",
					p, p+uintptr(len(aliased.Payload)), start, end)
			}
		}
	})
}
