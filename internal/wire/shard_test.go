package wire

import (
	"math"
	"math/rand"
	"testing"
)

func TestShardQueryRoundTrip(t *testing.T) {
	vec := []float32{0.5, -1.25, 3e-9, math.MaxFloat32, 0}
	data := AppendShardQuery(nil, 0xDEADBEEFCAFE, 5, 17, ShardQueryExact, vec)
	if !IsShardQuery(data) || IsShardResult(data) || IsAck(data) {
		t.Fatal("shard query misclassified")
	}
	qid, shard, k, flags, got, ok := ParseShardQuery(data, nil)
	if !ok || qid != 0xDEADBEEFCAFE || shard != 5 || k != 17 || flags != ShardQueryExact {
		t.Fatalf("header mismatch: qid=%x shard=%d k=%d flags=%x ok=%v", qid, shard, k, flags, ok)
	}
	if len(got) != len(vec) {
		t.Fatalf("vector length %d, want %d", len(got), len(vec))
	}
	for i := range vec {
		if math.Float32bits(got[i]) != math.Float32bits(vec[i]) {
			t.Fatalf("vector[%d] = %v, want bit-identical %v", i, got[i], vec[i])
		}
	}
	// Pooled-destination path must alias the caller's buffer.
	dst := make([]float32, 0, 16)
	_, _, _, _, got, ok = ParseShardQuery(data, dst)
	if !ok || &got[0] != &dst[:1][0] {
		t.Fatal("ParseShardQuery did not reuse the caller's buffer")
	}
}

func TestShardResultRoundTrip(t *testing.T) {
	ns := []ShardNeighbor{{ID: 7, Dist: 0.25}, {ID: -1, Dist: 1.75}, {ID: 1 << 30, Dist: 0}}
	data := AppendShardResult(nil, 42, 3, 123456, ns)
	if !IsShardResult(data) || IsShardQuery(data) || IsAck(data) {
		t.Fatal("shard result misclassified")
	}
	qid, shard, shardLen, got, ok := ParseShardResult(data, nil)
	if !ok || qid != 42 || shard != 3 || shardLen != 123456 {
		t.Fatalf("header mismatch: qid=%d shard=%d len=%d ok=%v", qid, shard, shardLen, ok)
	}
	if len(got) != len(ns) {
		t.Fatalf("count %d, want %d", len(got), len(ns))
	}
	for i := range ns {
		if got[i].ID != ns[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(ns[i].Dist) {
			t.Fatalf("neighbor[%d] = %+v, want bit-identical %+v", i, got[i], ns[i])
		}
	}
	dst := make([]ShardNeighbor, 0, 8)
	_, _, _, got, ok = ParseShardResult(data, dst)
	if !ok || &got[0] != &dst[:1][0] {
		t.Fatal("ParseShardResult did not reuse the caller's buffer")
	}
}

func TestShardCodecRejectsMalformed(t *testing.T) {
	q := AppendShardQuery(nil, 1, 0, 4, 0, []float32{1, 2, 3})
	r := AppendShardResult(nil, 1, 0, 10, []ShardNeighbor{{ID: 1, Dist: 0.5}})
	cases := [][]byte{
		nil,
		q[:len(q)-1],          // truncated payload
		append(q[:0:0], q...)[:shardQueryHeaderSize-1], // truncated header
		r[:len(r)-1],
		append(append([]byte{}, q...), 0), // trailing junk
		append(append([]byte{}, r...), 0),
	}
	bad := append([]byte{}, q...)
	bad[2] = 99 // unsupported version
	cases = append(cases, bad)
	for i, data := range cases {
		if _, _, _, _, _, ok := ParseShardQuery(data, nil); ok {
			t.Errorf("case %d: malformed shard query accepted", i)
		}
		if _, _, _, _, ok := ParseShardResult(data, nil); ok {
			t.Errorf("case %d: malformed shard result accepted", i)
		}
	}
	// Fuzz-ish: random mutations never panic.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte{}, q...)
		if trial%2 == 1 {
			data = append([]byte{}, r...)
		}
		for m := 0; m < 1+rng.Intn(4); m++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		ParseShardQuery(data, nil)
		ParseShardResult(data, nil)
	}
}

// shardCodecAllocBudget: append-style encoders into warm buffers and
// pooled-destination parsers leave nothing to allocate.
const shardCodecAllocBudget = 0

func TestShardCodecAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	vec := make([]float32, 128)
	ns := make([]ShardNeighbor, 16)
	for i := range ns {
		ns[i] = ShardNeighbor{ID: int32(i), Dist: float64(i) / 16}
	}
	qbuf := AppendShardQuery(nil, 1, 2, 16, 0, vec)
	rbuf := AppendShardResult(nil, 1, 2, 100, ns)
	vdst := make([]float32, 128)
	ndst := make([]ShardNeighbor, 16)
	avg := testing.AllocsPerRun(200, func() {
		qbuf = AppendShardQuery(qbuf[:0], 1, 2, 16, 0, vec)
		rbuf = AppendShardResult(rbuf[:0], 1, 2, 100, ns)
		if _, _, _, _, _, ok := ParseShardQuery(qbuf, vdst); !ok {
			t.Fatal("query parse failed")
		}
		if _, _, _, _, ok := ParseShardResult(rbuf, ndst); !ok {
			t.Fatal("result parse failed")
		}
	})
	if avg > shardCodecAllocBudget {
		t.Errorf("shard codec allocates %.1f/op, budget %d", avg, shardCodecAllocBudget)
	}
}
