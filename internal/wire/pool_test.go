package wire

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
)

// spanFrame is sampleFrame plus a span block, exercising every encoder
// section.
func spanFrame() *Frame {
	f := sampleFrame()
	f.AddSpan(SpanRecord{Step: StepPrimary, Outcome: 0, Host: "E1",
		EnqueueMicros: 10, StartMicros: 20, EndMicros: 30})
	f.AddSpan(SpanRecord{Step: StepSIFT, Outcome: 3, Host: "E2",
		EnqueueMicros: 40, StartMicros: 50, EndMicros: 60})
	return f
}

func TestAppendBinaryMatchesMarshal(t *testing.T) {
	for name, f := range map[string]*Frame{
		"sample":  sampleFrame(),
		"spans":   spanFrame(),
		"empty":   {},
		"ipv6":    {ClientAddr: netip.MustParseAddrPort("[2001:db8::1]:8080"), Payload: []byte("x")},
		"noaddr":  {ClientID: 9, FrameNo: 2, Step: StepLSH, Payload: bytes.Repeat([]byte{7}, 300)},
		"nopay":   {ClientID: 1, ClientAddr: netip.MustParseAddrPort("10.0.0.7:9000")},
		"capture": {CaptureMicros: 1 << 50, Stateless: true},
	} {
		want, err := f.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Append onto a prefix: the encoding must land after it, intact.
		prefix := []byte("prefix")
		got, err := f.AppendBinary(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%s: AppendBinary diverged from MarshalBinary", name)
		}
		if size := f.EncodedSize(); size != len(want) {
			t.Errorf("%s: EncodedSize = %d, want %d", name, size, len(want))
		}
	}
}

func TestAppendBinaryErrorLeavesBufLength(t *testing.T) {
	f := sampleFrame()
	f.Payload = make([]byte, maxPayload+1)
	buf := []byte("keep")
	out, err := f.AppendBinary(buf)
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
	if string(out) != "keep" {
		t.Errorf("buf mutated on error: %q", out)
	}
}

func TestUnmarshalNoCopyAliasesPayload(t *testing.T) {
	f := sampleFrame()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinaryNoCopy(data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("payload = %q", g.Payload)
	}
	// The payload must alias data, inside its bounds.
	if len(g.Payload) > 0 {
		p0 := &g.Payload[0]
		if p0 != &data[len(data)-len(g.Payload)] {
			t.Error("payload does not alias the tail of the receive buffer")
		}
	}
	// Mutating the source must show through the alias.
	data[len(data)-1] ^= 0xFF
	if g.Payload[len(g.Payload)-1] == f.Payload[len(f.Payload)-1] {
		t.Error("payload was copied, not aliased")
	}
}

func TestUnmarshalNoCopyMatchesCopying(t *testing.T) {
	for _, f := range []*Frame{sampleFrame(), spanFrame(), {}} {
		data, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var a, b Frame
		if err := a.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if err := b.UnmarshalBinaryNoCopy(data); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("decoders diverged: %+v vs %+v", a, b)
		}
	}
}

func TestFramePoolRecycles(t *testing.T) {
	var pool FramePool
	f := pool.Get()
	data, err := spanFrame().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	payloadCap := cap(f.Payload)
	pool.Put(f)
	g := pool.Get()
	if g.ClientID != 0 || g.FrameNo != 0 || g.ClientAddr.IsValid() ||
		len(g.Payload) != 0 || len(g.Stages) != 0 || len(g.Spans) != 0 {
		t.Errorf("pooled frame not reset: %+v", g)
	}
	if g == f && cap(g.Payload) != payloadCap {
		t.Errorf("recycled frame lost payload capacity: %d vs %d", cap(g.Payload), payloadCap)
	}
	pool.Put(nil) // must not panic
}

func TestBufPool(t *testing.T) {
	var pool BufPool
	b := pool.Get(1024)
	if len(b) != 0 || cap(b) < 1024 {
		t.Fatalf("Get(1024): len %d cap %d", len(b), cap(b))
	}
	b = append(b, bytes.Repeat([]byte{1}, 512)...)
	pool.Put(b)
	c := pool.Get(256)
	if len(c) != 0 || cap(c) < 256 {
		t.Fatalf("Get(256) after Put: len %d cap %d", len(c), cap(c))
	}
	pool.Put(nil) // cap 0: dropped, must not panic
}

func TestCloneExactAndNilPreserving(t *testing.T) {
	f := spanFrame()
	c := f.Clone()
	if !reflect.DeepEqual(f, c) {
		t.Fatalf("clone diverged: %+v vs %+v", c, f)
	}
	if cap(c.Payload) != len(f.Payload) || cap(c.Stages) != len(f.Stages) || cap(c.Spans) != len(f.Spans) {
		t.Errorf("clone capacities not exact: payload %d/%d stages %d/%d spans %d/%d",
			cap(c.Payload), len(f.Payload), cap(c.Stages), len(f.Stages), cap(c.Spans), len(f.Spans))
	}
	c.Payload[0] ^= 1
	if f.Payload[0] == c.Payload[0] {
		t.Error("clone shares payload storage")
	}
	empty := &Frame{}
	e := empty.Clone()
	if e.Payload != nil || e.Stages != nil || e.Spans != nil {
		t.Errorf("clone of empty frame allocated slices: %+v", e)
	}
}

func TestCloneInto(t *testing.T) {
	f := spanFrame()
	var dst Frame
	f.CloneInto(&dst)
	if !reflect.DeepEqual(f, &dst) {
		t.Fatalf("CloneInto diverged: %+v vs %+v", dst, f)
	}
	dst.Payload[0] ^= 1
	if f.Payload[0] == dst.Payload[0] {
		t.Error("CloneInto shares payload storage")
	}
	// Cloning into a frame with existing capacity must reuse it.
	dst.Reset()
	before := &dst.Payload[:1][0]
	f.CloneInto(&dst)
	if &dst.Payload[0] != before {
		t.Error("CloneInto reallocated despite sufficient capacity")
	}
}

func BenchmarkFrameClone(b *testing.B) {
	f := spanFrame()
	f.Payload = make([]byte, 180<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Clone()
	}
}

func BenchmarkFrameCloneInto(b *testing.B) {
	f := spanFrame()
	f.Payload = make([]byte, 180<<10)
	var dst Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.CloneInto(&dst)
	}
}

func BenchmarkMarshalPooled(b *testing.B) {
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	var pool BufPool
	b.SetBytes(int64(len(f.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := f.AppendBinary(pool.Get(f.EncodedSize()))
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(buf)
	}
}

func BenchmarkUnmarshalNoCopy(b *testing.B) {
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	data, err := f.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	var g Frame
	b.SetBytes(int64(len(f.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.UnmarshalBinaryNoCopy(data); err != nil {
			b.Fatal(err)
		}
	}
}
