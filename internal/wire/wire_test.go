package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	return &Frame{
		ClientID:      3,
		FrameNo:       1234567,
		ClientAddr:    netip.MustParseAddrPort("10.0.0.7:9000"),
		Step:          StepEncoding,
		Stateless:     true,
		CaptureMicros: 987654321,
		Payload:       []byte("descriptor payload"),
		Stages: []StageRecord{
			{Step: StepPrimary, QueueMicros: 150, ProcMicros: 4000},
			{Step: StepSIFT, QueueMicros: 900, ProcMicros: 14000},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFrame()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.ClientID != f.ClientID || g.FrameNo != f.FrameNo || g.Step != f.Step ||
		g.Stateless != f.Stateless || g.CaptureMicros != f.CaptureMicros {
		t.Errorf("header mismatch: %+v vs %+v", g, f)
	}
	if g.ClientAddr != f.ClientAddr {
		t.Errorf("addr = %v, want %v", g.ClientAddr, f.ClientAddr)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("payload = %q", g.Payload)
	}
	if len(g.Stages) != len(f.Stages) {
		t.Fatalf("stages = %d, want %d", len(g.Stages), len(f.Stages))
	}
	for i := range g.Stages {
		if g.Stages[i] != f.Stages[i] {
			t.Errorf("stage %d = %+v, want %+v", i, g.Stages[i], f.Stages[i])
		}
	}
}

func TestRoundTripIPv6(t *testing.T) {
	f := sampleFrame()
	f.ClientAddr = netip.MustParseAddrPort("[2001:db8::1]:8080")
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.ClientAddr != f.ClientAddr {
		t.Errorf("addr = %v, want %v", g.ClientAddr, f.ClientAddr)
	}
}

func TestRoundTripNoAddr(t *testing.T) {
	f := &Frame{ClientID: 1, FrameNo: 2, Step: StepPrimary}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.ClientAddr.IsValid() {
		t.Errorf("addr = %v, want invalid", g.ClientAddr)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var f Frame
	if err := f.UnmarshalBinary(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("nil buffer err = %v", err)
	}
	if err := f.UnmarshalBinary([]byte{0, 0, 1}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	good, err := sampleFrame().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[2] = 99 // version byte
	if err := f.UnmarshalBinary(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if err := f.UnmarshalBinary(good[:cut]); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestInvalidStepRejected(t *testing.T) {
	good, err := sampleFrame().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Step byte is at offset 2+1+4+8 = 15.
	bad := append([]byte(nil), good...)
	bad[15] = 200
	var f Frame
	if err := f.UnmarshalBinary(bad); err == nil {
		t.Error("invalid step accepted")
	}
}

func TestMarshalLimits(t *testing.T) {
	f := &Frame{Payload: make([]byte, maxPayload+1)}
	if _, err := f.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized payload err = %v", err)
	}
	f = &Frame{Stages: make([]StageRecord, maxStages+1)}
	if _, err := f.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too many stages err = %v", err)
	}
}

func TestAddStageCaps(t *testing.T) {
	f := &Frame{}
	for i := 0; i < maxStages+10; i++ {
		f.AddStage(StepPrimary, 1, 2)
	}
	if len(f.Stages) != maxStages {
		t.Errorf("stages = %d, want cap %d", len(f.Stages), maxStages)
	}
}

func TestClone(t *testing.T) {
	f := sampleFrame()
	c := f.Clone()
	c.Payload[0] = 'X'
	c.Stages[0].QueueMicros = 1
	if f.Payload[0] == 'X' {
		t.Error("Clone shares payload")
	}
	if f.Stages[0].QueueMicros == 1 {
		t.Error("Clone shares stages")
	}
}

func TestStepString(t *testing.T) {
	want := map[Step]string{
		StepPrimary: "primary", StepSIFT: "sift", StepEncoding: "encoding",
		StepLSH: "lsh", StepMatching: "matching", StepDone: "done",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if Step(77).String() != "step-77" {
		t.Errorf("unknown step string = %q", Step(77).String())
	}
}

func TestStepNext(t *testing.T) {
	order := []Step{StepPrimary, StepSIFT, StepEncoding, StepLSH, StepMatching, StepDone}
	for i := 0; i < len(order)-1; i++ {
		if order[i].Next() != order[i+1] {
			t.Errorf("%v.Next() = %v, want %v", order[i], order[i].Next(), order[i+1])
		}
	}
	if StepDone.Next() != StepDone {
		t.Error("StepDone.Next() != StepDone")
	}
}

func TestNumSteps(t *testing.T) {
	if NumSteps != 5 {
		t.Errorf("NumSteps = %d, want 5 (the five scAtteR services)", NumSteps)
	}
}

// Property: any frame with in-range fields round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := &Frame{
			ClientID:      rng.Uint32(),
			FrameNo:       rng.Uint64(),
			Step:          Step(rng.Intn(int(StepDone) + 1)),
			Stateless:     rng.Intn(2) == 1,
			CaptureMicros: rng.Uint64(),
			Payload:       make([]byte, rng.Intn(2048)),
		}
		rng.Read(fr.Payload)
		if rng.Intn(2) == 1 {
			var ip [4]byte
			rng.Read(ip[:])
			fr.ClientAddr = netip.AddrPortFrom(netip.AddrFrom4(ip), uint16(rng.Intn(65536)))
		}
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			fr.AddStage(Step(rng.Intn(int(StepDone)+1)), rng.Uint32(), rng.Uint32())
		}
		data, err := fr.MarshalBinary()
		if err != nil {
			return false
		}
		var g Frame
		if err := g.UnmarshalBinary(data); err != nil {
			return false
		}
		if g.ClientID != fr.ClientID || g.FrameNo != fr.FrameNo || g.Step != fr.Step ||
			g.Stateless != fr.Stateless || g.CaptureMicros != fr.CaptureMicros ||
			g.ClientAddr != fr.ClientAddr || !bytes.Equal(g.Payload, fr.Payload) ||
			len(g.Stages) != len(fr.Stages) {
			return false
		}
		for i := range g.Stages {
			if g.Stages[i] != fr.Stages[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random garbage never panics the decoder.
func TestUnmarshalFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		var fr Frame
		_ = fr.UnmarshalBinary(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	data, err := f.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	var g Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
