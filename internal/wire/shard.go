// Shard scatter/gather frames: the two control messages the matching
// tier's scatter path exchanges with remote index shards. A shard query
// carries one descriptor vector (or one member of a descriptor batch)
// to a single shard replica; a shard result carries that shard's local
// top-k back. Both share the data sockets with frames and acks,
// distinguished by their own magics, and both use append-style encoders
// so a pooled buffer round-trips with zero allocations — the same
// data-plane discipline as the frame codec.
package wire

import (
	"encoding/binary"
	"math"
)

// Shard codec constants.
const (
	shardQueryMagic  = 0x5CAD // distinct from frame 0x5CA7 and ack 0x5CAB
	shardResultMagic = 0x5CAE

	// shardQueryHeaderSize is the fixed prefix of a shard query:
	// magic(2) version(1) flags(1) queryID(8) shard(2) k(2) dim(4).
	shardQueryHeaderSize = 2 + 1 + 1 + 8 + 2 + 2 + 4

	// shardResultHeaderSize is the fixed prefix of a shard result:
	// magic(2) version(1) flags(1) queryID(8) shard(2) count(2)
	// shardLen(8).
	shardResultHeaderSize = 2 + 1 + 1 + 8 + 2 + 2 + 8

	// shardNeighborSize is one (id, dist) result entry: id(4) dist(8).
	shardNeighborSize = 4 + 8

	// ShardQueryExact flags a brute-force scan instead of an LSH probe —
	// the gather side of ExactNN.
	ShardQueryExact = 0x01

	// MaxShardK bounds k so a result frame stays well under one UDP
	// datagram even with the header.
	MaxShardK = 1024
)

// ShardNeighbor is one gathered candidate: a reference object ID and its
// exact cosine distance to the query, as computed by the owning shard.
type ShardNeighbor struct {
	ID   int32
	Dist float64
}

// AppendShardQuery appends an encoded shard query to buf and returns the
// extended buffer. With enough spare capacity the call performs zero
// allocations. It panics when k exceeds MaxShardK, a programming error.
func AppendShardQuery(buf []byte, queryID uint64, shard, k int, flags byte, vec []float32) []byte {
	if k < 0 || k > MaxShardK {
		panic("wire: shard query k out of range")
	}
	buf = binary.BigEndian.AppendUint16(buf, shardQueryMagic)
	buf = append(buf, version, flags)
	buf = binary.BigEndian.AppendUint64(buf, queryID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(shard))
	buf = binary.BigEndian.AppendUint16(buf, uint16(k))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(vec)))
	for _, x := range vec {
		buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

// IsShardQuery reports whether data is a shard query — the cheap
// dispatch test a shard server runs before decoding.
func IsShardQuery(data []byte) bool {
	return len(data) >= shardQueryHeaderSize && binary.BigEndian.Uint16(data) == shardQueryMagic
}

// ParseShardQuery decodes a shard query. The returned vector aliases
// dst when dst has capacity, so callers can reuse a pooled buffer; ok is
// false on any malformed input.
func ParseShardQuery(data []byte, dst []float32) (queryID uint64, shard, k int, flags byte, vec []float32, ok bool) {
	if !IsShardQuery(data) || data[2] != version {
		return 0, 0, 0, 0, nil, false
	}
	flags = data[3]
	queryID = binary.BigEndian.Uint64(data[4:])
	shard = int(binary.BigEndian.Uint16(data[12:]))
	k = int(binary.BigEndian.Uint16(data[14:]))
	dim := int(binary.BigEndian.Uint32(data[16:]))
	if k > MaxShardK || dim < 0 || len(data) != shardQueryHeaderSize+4*dim {
		return 0, 0, 0, 0, nil, false
	}
	if cap(dst) >= dim {
		vec = dst[:dim]
	} else {
		vec = make([]float32, dim)
	}
	for i := 0; i < dim; i++ {
		vec[i] = math.Float32frombits(binary.BigEndian.Uint32(data[shardQueryHeaderSize+4*i:]))
	}
	return queryID, shard, k, flags, vec, true
}

// AppendShardResult appends an encoded shard result to buf and returns
// the extended buffer. shardLen is the shard's current item count — the
// gather side sums it to learn the global reference-set size without a
// separate control exchange. Panics when more than MaxShardK neighbors
// are supplied.
func AppendShardResult(buf []byte, queryID uint64, shard int, shardLen int, neighbors []ShardNeighbor) []byte {
	if len(neighbors) > MaxShardK {
		panic("wire: shard result neighbor count out of range")
	}
	buf = binary.BigEndian.AppendUint16(buf, shardResultMagic)
	buf = append(buf, version, 0)
	buf = binary.BigEndian.AppendUint64(buf, queryID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(shard))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(neighbors)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(shardLen))
	for _, n := range neighbors {
		buf = binary.BigEndian.AppendUint32(buf, uint32(n.ID))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(n.Dist))
	}
	return buf
}

// IsShardResult reports whether data is a shard result.
func IsShardResult(data []byte) bool {
	return len(data) >= shardResultHeaderSize && binary.BigEndian.Uint16(data) == shardResultMagic
}

// ParseShardResult decodes a shard result. The returned neighbor slice
// aliases dst when dst has capacity, so a pooled gather buffer
// round-trips without allocating; ok is false on any malformed input.
func ParseShardResult(data []byte, dst []ShardNeighbor) (queryID uint64, shard int, shardLen int, neighbors []ShardNeighbor, ok bool) {
	if !IsShardResult(data) || data[2] != version {
		return 0, 0, 0, nil, false
	}
	queryID = binary.BigEndian.Uint64(data[4:])
	shard = int(binary.BigEndian.Uint16(data[12:]))
	count := int(binary.BigEndian.Uint16(data[14:]))
	shardLen = int(binary.BigEndian.Uint64(data[16:]))
	if count > MaxShardK || shardLen < 0 || len(data) != shardResultHeaderSize+shardNeighborSize*count {
		return 0, 0, 0, nil, false
	}
	if cap(dst) >= count {
		neighbors = dst[:count]
	} else {
		neighbors = make([]ShardNeighbor, count)
	}
	for i := 0; i < count; i++ {
		off := shardResultHeaderSize + shardNeighborSize*i
		neighbors[i].ID = int32(binary.BigEndian.Uint32(data[off:]))
		neighbors[i].Dist = math.Float64frombits(binary.BigEndian.Uint64(data[off+4:]))
	}
	return queryID, shard, shardLen, neighbors, true
}
