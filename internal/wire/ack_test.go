package wire

import "testing"

func TestAckRoundTrip(t *testing.T) {
	buf := AppendAck(nil, 7, 123456, StepLSH)
	if len(buf) != AckSize {
		t.Fatalf("encoded ack is %d bytes, want %d", len(buf), AckSize)
	}
	if !IsAck(buf) {
		t.Fatal("IsAck rejects a valid ack")
	}
	cid, fn, step, ok := ParseAck(buf)
	if !ok || cid != 7 || fn != 123456 || step != StepLSH {
		t.Fatalf("ParseAck = (%d, %d, %v, %v)", cid, fn, step, ok)
	}
}

func TestAckRejectsMalformed(t *testing.T) {
	valid := AppendAck(nil, 1, 2, StepSIFT)
	cases := map[string][]byte{
		"short":       valid[:AckSize-1],
		"long":        append(append([]byte(nil), valid...), 0),
		"frame magic": func() []byte { b := append([]byte(nil), valid...); b[0], b[1] = 0x5C, 0xA7; return b }(),
		"bad version": func() []byte { b := append([]byte(nil), valid...); b[2] = 99; return b }(),
		"bad step":    func() []byte { b := append([]byte(nil), valid...); b[15] = 200; return b }(),
	}
	for name, data := range cases {
		if name != "short" && name != "long" && !IsAck(data) && name != "frame magic" {
			// IsAck only checks length+magic; version/step failures must
			// come from ParseAck.
			t.Fatalf("%s: IsAck should accept, ParseAck should reject", name)
		}
		if _, _, _, ok := ParseAck(data); ok {
			t.Fatalf("%s: ParseAck accepted malformed data", name)
		}
	}
}

func TestAckNotConfusedWithFrame(t *testing.T) {
	fr := Frame{ClientID: 1, FrameNo: 2, Step: StepSIFT, Payload: []byte("x")}
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if IsAck(data) {
		t.Fatal("frame encoding classified as ack")
	}
	ack := AppendAck(nil, 1, 2, StepSIFT)
	var dec Frame
	if err := dec.UnmarshalBinary(ack); err == nil {
		t.Fatal("ack decoded as a frame")
	}
}

func TestAckWantedFlagRoundTrip(t *testing.T) {
	fr := Frame{ClientID: 9, FrameNo: 4, Step: StepEncoding, AckWanted: true, Payload: []byte("p")}
	data, err := fr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Frame
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !dec.AckWanted {
		t.Fatal("AckWanted lost in round trip")
	}
	fr.AckWanted = false
	data, _ = fr.MarshalBinary()
	dec = Frame{}
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if dec.AckWanted {
		t.Fatal("AckWanted set on a frame that never asked")
	}
	// Reset must clear the flag so pooled envelopes don't leak it.
	fr.AckWanted = true
	fr.Reset()
	if fr.AckWanted {
		t.Fatal("Reset kept AckWanted")
	}
}

func TestAckAppendZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, AckSize)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendAck(buf[:0], 3, 99, StepMatching)
	})
	if allocs != 0 {
		t.Fatalf("AppendAck allocates %.1f per op with capacity, want 0", allocs)
	}
}
