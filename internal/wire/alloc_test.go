package wire

import "testing"

// Allocation budgets, enforced as tests so a regression fails `make
// test` rather than silently drifting a benchmark. The budgets are the
// steady-state contract of the zero-allocation data plane (DESIGN.md
// "Buffer ownership & pooling"):
//
//	encode into a pooled buffer        0 allocs
//	copying decode into a reused frame 0 allocs (spans add 1 host string each)
//	no-copy decode into a reused frame 0 allocs
const (
	marshalAllocBudget        = 0
	unmarshalAllocBudget      = 0
	unmarshalSpansAllocBudget = 1 // per span: the Host string
)

func TestMarshalAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	f := spanFrame()
	f.Payload = make([]byte, 180<<10)
	var pool BufPool
	pool.Put(pool.Get(f.EncodedSize())) // warm the pool
	avg := testing.AllocsPerRun(200, func() {
		buf, err := f.AppendBinary(pool.Get(f.EncodedSize()))
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(buf)
	})
	if avg > marshalAllocBudget {
		t.Errorf("pooled marshal allocates %.1f/op, budget %d", avg, marshalAllocBudget)
	}
}

func TestUnmarshalAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil { // warm capacities
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := g.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > unmarshalAllocBudget {
		t.Errorf("reused-frame unmarshal allocates %.1f/op, budget %d", avg, unmarshalAllocBudget)
	}
}

func TestUnmarshalSpansAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	f := spanFrame()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	budget := float64(len(f.Spans) * unmarshalSpansAllocBudget)
	avg := testing.AllocsPerRun(200, func() {
		if err := g.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("span-carrying unmarshal allocates %.1f/op, budget %.0f", avg, budget)
	}
}

func TestUnmarshalNoCopyAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	f := sampleFrame()
	f.Payload = make([]byte, 180<<10)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinaryNoCopy(data); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := g.UnmarshalBinaryNoCopy(data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("no-copy unmarshal allocates %.1f/op, budget 0", avg)
	}
}
