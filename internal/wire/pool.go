// Frame and buffer pools for the zero-allocation data plane. The frame
// path — decode at a worker, process, re-encode, forward — runs at the
// offered frame rate times the client count, so every per-frame
// allocation multiplies into GC pressure exactly when the sidecar queues
// need headroom. These pools let the steady-state hot path recycle one
// arena per worker: FramePool recycles decoded envelopes (payload,
// stage, and span capacity included), BufPool recycles encode and
// receive scratch. Both are safe for concurrent use and follow the
// same shape as internal/vision/parallel.SlicePool.
package wire

import "sync"

// FramePool recycles Frame envelopes. Frames returned by Get are zeroed
// (Reset) but keep the payload/record capacity of their previous life,
// so a worker decoding same-sized frames reaches steady state after one
// frame and allocates nothing afterwards.
//
// Ownership: Get transfers the frame to the caller; Put transfers it
// back and must be the caller's last use. Never Put a frame whose
// Payload aliases a borrowed buffer (UnmarshalBinaryNoCopy) — the alias
// would survive as reusable capacity; nil the Payload first.
type FramePool struct {
	pool sync.Pool
}

// Get returns an empty frame, recycled when available.
func (p *FramePool) Get() *Frame {
	if f, _ := p.pool.Get().(*Frame); f != nil {
		return f
	}
	return &Frame{}
}

// Put resets the frame and recycles it. Put(nil) is a no-op.
func (p *FramePool) Put(f *Frame) {
	if f == nil {
		return
	}
	f.Reset()
	p.pool.Put(f)
}

// bufPoolMaxEntries bounds a BufPool's freelist: retention is capped at
// bufPoolMaxEntries times the largest buffer the pool has seen, and the
// Get scan stays O(1)-ish.
const bufPoolMaxEntries = 32

// BufPool recycles byte buffers for encode scratch and transport reads.
// Get returns a zero-length buffer with at least the requested capacity;
// contents beyond len are unspecified (callers overwrite, not read).
//
// Unlike sync.Pool, a BufPool is a bounded mutex-guarded freelist: Put
// never allocates (sync.Pool would box the slice header on every Put,
// defeating the zero-allocation budget), at the cost of GC not trimming
// idle buffers. Use one pool per traffic class so steady-state sizes
// match.
type BufPool struct {
	mu   sync.Mutex
	bufs [][]byte
}

// Get returns a buffer with len 0 and cap >= n, recycling the most
// recently Put buffer that is large enough.
func (p *BufPool) Get(n int) []byte {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			b := p.bufs[i]
			last := len(p.bufs) - 1
			p.bufs[i] = p.bufs[last]
			p.bufs[last] = nil
			p.bufs = p.bufs[:last]
			p.mu.Unlock()
			return b[:0]
		}
	}
	p.mu.Unlock()
	return make([]byte, 0, n)
}

// Put recycles a buffer; the caller must not use b afterwards.
// Zero-capacity buffers and buffers beyond the freelist bound are
// dropped.
func (p *BufPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < bufPoolMaxEntries {
		p.bufs = append(p.bufs, b)
	}
	p.mu.Unlock()
}
