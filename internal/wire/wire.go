// Package wire defines the frame envelope exchanged between scAtteR
// services. The paper specifies the intermediary metadata transferred
// between stages: client ID, frame number, the client's IP address and
// port, and the current pipeline step — allowing multiple client inputs
// to map onto the same service instance. scAtteR++ additionally attaches
// per-stage queueing/processing records (sidecar analytics) to the
// frame's state.
//
// The codec is a versioned big-endian binary format with explicit length
// prefixes, suitable for UDP datagrams and for the framed RPC transport.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"slices"
)

// Step identifies the pipeline stage a frame is currently traversing.
type Step uint8

// Pipeline steps in order. StepDone marks a fully processed frame on its
// way back to the client.
const (
	StepPrimary Step = iota
	StepSIFT
	StepEncoding
	StepLSH
	StepMatching
	StepDone
	NumSteps = int(StepDone) // number of processing services
)

// String returns the service name used throughout the paper's figures.
func (s Step) String() string {
	switch s {
	case StepPrimary:
		return "primary"
	case StepSIFT:
		return "sift"
	case StepEncoding:
		return "encoding"
	case StepLSH:
		return "lsh"
	case StepMatching:
		return "matching"
	case StepDone:
		return "done"
	default:
		return fmt.Sprintf("step-%d", uint8(s))
	}
}

// ParseStep resolves a service name ("primary", "sift", ...) to its
// step. The names match Step.String and the paper's figures; "done" is
// not a service and does not parse.
func ParseStep(name string) (Step, error) {
	for s := StepPrimary; s < StepDone; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown service %q", name)
}

// Next returns the subsequent pipeline step. Next of StepDone is StepDone.
func (s Step) Next() Step {
	if s >= StepDone {
		return StepDone
	}
	return s + 1
}

// Valid reports whether s names a real step (including StepDone).
func (s Step) Valid() bool { return s <= StepDone }

// StageRecord is one sidecar analytics sample: how long the frame queued
// before the service and how long the service processed it.
type StageRecord struct {
	Step        Step
	QueueMicros uint32
	ProcMicros  uint32
}

// SpanRecord is one per-frame tracing span riding the envelope across
// hosts, like the paper's intermediary metadata: absolute enqueue/start/
// end timestamps (µs since the deployment's epoch) on the named host, so
// a collector can reconstruct queue-wait and processing segments per
// stage. The on-wire span block is independently versioned (see
// spanBlockVersion) and optional — frames without spans cost no extra
// bytes.
type SpanRecord struct {
	Step          Step
	Outcome       uint8 // obs.Outcome value
	Host          string
	EnqueueMicros uint64
	StartMicros   uint64
	EndMicros     uint64
}

// Frame is the unit of work flowing through the pipeline.
type Frame struct {
	ClientID      uint32
	FrameNo       uint64
	ClientAddr    netip.AddrPort // where the final result is delivered
	Step          Step
	Stateless     bool   // scAtteR++: sift state rides in the payload
	AckWanted     bool   // sender requests a hop acknowledgement on admission
	CaptureMicros uint64 // client capture timestamp (µs since epoch/run start)
	Payload       []byte
	Stages        []StageRecord // scAtteR++ sidecar analytics
	Spans         []SpanRecord  // optional per-frame tracing spans
}

// Codec constants.
const (
	magic         = 0x5CA7 // "SCAT"
	version       = 1
	maxPayload    = 8 << 20 // 8 MiB guards against corrupt length fields
	maxStages     = 64
	maxSpans      = 64
	maxSpanHost   = 255
	fixedHdrBytes = 2 + 1 + 4 + 8 + 1 + 1 + 8 + 1 // magic..addrLen (before addr)

	// flagStateless marks scAtteR++ frames carrying sift state; flagSpans
	// marks the presence of the versioned span block; flagAckWanted asks
	// the receiving hop to acknowledge admission (the route-statistics
	// loss signal). Decoders ignore unknown flag bits, so each addition
	// stays backward compatible within wire version 1.
	flagStateless = 1 << 0
	flagSpans     = 1 << 1
	flagAckWanted = 1 << 2

	// spanBlockVersion versions the span block independently of the
	// envelope, so tracing can evolve without a wire version bump.
	spanBlockVersion = 1
)

// Codec errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrTooLarge    = errors.New("wire: field exceeds limit")
)

// maxAddrBytes sizes the encoder's single up-front grow for the common
// address encodings (16-byte IPv6 + 2-byte port); rare zoned addresses
// may grow once more.
const maxAddrBytes = 18

// EncodedSize returns the exact number of bytes MarshalBinary would
// produce for a zone-free address, and a conservative lower bound
// otherwise — callers use it to size pooled buffers.
func (f *Frame) EncodedSize() int {
	addr := 0
	if f.ClientAddr.IsValid() {
		if f.ClientAddr.Addr().Is4() {
			addr = 6
		} else {
			addr = maxAddrBytes + len(f.ClientAddr.Addr().Zone())
		}
	}
	spanBytes := 0
	if len(f.Spans) > 0 {
		spanBytes = 2
		for _, s := range f.Spans {
			spanBytes += 3 + len(s.Host) + 24
		}
	}
	return fixedHdrBytes + addr + 1 + len(f.Stages)*9 + spanBytes + 4 + len(f.Payload)
}

// MarshalBinary encodes the frame into a freshly allocated buffer. The
// hot path uses AppendBinary with a pooled buffer instead.
func (f *Frame) MarshalBinary() ([]byte, error) {
	return f.AppendBinary(nil)
}

// AppendBinary is the core encoder: it validates the frame, appends its
// encoding to buf, and returns the extended buffer. When buf has enough
// spare capacity (see EncodedSize) the call performs zero allocations,
// so a worker re-encoding frames in steady state produces no garbage.
// On error buf is returned unmodified.
func (f *Frame) AppendBinary(buf []byte) ([]byte, error) {
	if len(f.Payload) > maxPayload {
		return buf, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(f.Payload))
	}
	if len(f.Stages) > maxStages {
		return buf, fmt.Errorf("%w: %d stage records", ErrTooLarge, len(f.Stages))
	}
	if len(f.Spans) > maxSpans {
		return buf, fmt.Errorf("%w: %d span records", ErrTooLarge, len(f.Spans))
	}
	for _, s := range f.Spans {
		if len(s.Host) > maxSpanHost {
			return buf, fmt.Errorf("%w: span host %d bytes", ErrTooLarge, len(s.Host))
		}
	}
	base := len(buf)
	buf = slices.Grow(buf, f.EncodedSize())
	buf = binary.BigEndian.AppendUint16(buf, magic)
	buf = append(buf, version)
	buf = binary.BigEndian.AppendUint32(buf, f.ClientID)
	buf = binary.BigEndian.AppendUint64(buf, f.FrameNo)
	buf = append(buf, byte(f.Step))
	var flags byte
	if f.Stateless {
		flags |= flagStateless
	}
	if len(f.Spans) > 0 {
		flags |= flagSpans
	}
	if f.AckWanted {
		flags |= flagAckWanted
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, f.CaptureMicros)
	// The address length byte is patched after the netip append, so the
	// wire format stays byte-identical to netip's own binary encoding
	// without marshalling into a temporary.
	lenOff := len(buf)
	buf = append(buf, 0)
	if f.ClientAddr.IsValid() {
		grown, err := f.ClientAddr.AppendBinary(buf)
		if err != nil {
			return buf[:base], fmt.Errorf("wire: marshal addr: %w", err)
		}
		n := len(grown) - lenOff - 1
		if n > 255 {
			return buf[:base], fmt.Errorf("%w: address %d bytes", ErrTooLarge, n)
		}
		grown[lenOff] = byte(n)
		buf = grown
	}
	buf = append(buf, byte(len(f.Stages)))
	for _, s := range f.Stages {
		buf = append(buf, byte(s.Step))
		buf = binary.BigEndian.AppendUint32(buf, s.QueueMicros)
		buf = binary.BigEndian.AppendUint32(buf, s.ProcMicros)
	}
	if len(f.Spans) > 0 {
		buf = append(buf, spanBlockVersion)
		buf = append(buf, byte(len(f.Spans)))
		for _, s := range f.Spans {
			buf = append(buf, byte(s.Step), s.Outcome, byte(len(s.Host)))
			buf = append(buf, s.Host...)
			buf = binary.BigEndian.AppendUint64(buf, s.EnqueueMicros)
			buf = binary.BigEndian.AppendUint64(buf, s.StartMicros)
			buf = binary.BigEndian.AppendUint64(buf, s.EndMicros)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf, nil
}

// UnmarshalBinary decodes a frame previously produced by MarshalBinary.
// The payload is copied out of data, so the caller may reuse its buffer.
// Decoding into a frame that already has Payload/Stages/Spans capacity
// (e.g. one recycled through a FramePool) reuses it and allocates only
// for span host strings.
func (f *Frame) UnmarshalBinary(data []byte) error {
	return f.unmarshal(data, true)
}

// UnmarshalBinaryNoCopy decodes like UnmarshalBinary but aliases
// f.Payload into data instead of copying it out.
//
// Buffer-ownership contract: data must stay alive and unmodified for as
// long as f.Payload is in use. Transport receive buffers are only
// borrowed for the duration of a Handler call (see transport.Handler),
// so a handler using this mode must finish with the payload — or copy
// it — before returning. A frame holding an aliased payload must not be
// recycled through a FramePool (Put would retain the alias as reusable
// capacity); drop it or set Payload to nil first.
func (f *Frame) UnmarshalBinaryNoCopy(data []byte) error {
	return f.unmarshal(data, false)
}

func (f *Frame) unmarshal(data []byte, copyPayload bool) error {
	r := reader{buf: data}
	m, err := r.u16()
	if err != nil {
		return err
	}
	if m != magic {
		return ErrBadMagic
	}
	v, err := r.u8()
	if err != nil {
		return err
	}
	if v != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if f.ClientID, err = r.u32(); err != nil {
		return err
	}
	if f.FrameNo, err = r.u64(); err != nil {
		return err
	}
	step, err := r.u8()
	if err != nil {
		return err
	}
	f.Step = Step(step)
	if !f.Step.Valid() {
		return fmt.Errorf("wire: invalid step %d", step)
	}
	flags, err := r.u8()
	if err != nil {
		return err
	}
	f.Stateless = flags&flagStateless != 0
	f.AckWanted = flags&flagAckWanted != 0
	if f.CaptureMicros, err = r.u64(); err != nil {
		return err
	}
	addrLen, err := r.u8()
	if err != nil {
		return err
	}
	addrBytes, err := r.bytes(int(addrLen))
	if err != nil {
		return err
	}
	f.ClientAddr = netip.AddrPort{}
	if addrLen > 0 {
		if err := f.ClientAddr.UnmarshalBinary(addrBytes); err != nil {
			return fmt.Errorf("wire: unmarshal addr: %w", err)
		}
	}
	nStages, err := r.u8()
	if err != nil {
		return err
	}
	if int(nStages) > maxStages {
		return fmt.Errorf("%w: %d stage records", ErrTooLarge, nStages)
	}
	f.Stages = f.Stages[:0]
	for i := 0; i < int(nStages); i++ {
		var s StageRecord
		st, err := r.u8()
		if err != nil {
			return err
		}
		s.Step = Step(st)
		if s.QueueMicros, err = r.u32(); err != nil {
			return err
		}
		if s.ProcMicros, err = r.u32(); err != nil {
			return err
		}
		f.Stages = append(f.Stages, s)
	}
	f.Spans = f.Spans[:0]
	if flags&flagSpans != 0 {
		sv, err := r.u8()
		if err != nil {
			return err
		}
		if sv != spanBlockVersion {
			return fmt.Errorf("%w: span block %d", ErrBadVersion, sv)
		}
		nSpans, err := r.u8()
		if err != nil {
			return err
		}
		if int(nSpans) > maxSpans {
			return fmt.Errorf("%w: %d span records", ErrTooLarge, nSpans)
		}
		for i := 0; i < int(nSpans); i++ {
			var s SpanRecord
			st, err := r.u8()
			if err != nil {
				return err
			}
			s.Step = Step(st)
			if s.Outcome, err = r.u8(); err != nil {
				return err
			}
			hostLen, err := r.u8()
			if err != nil {
				return err
			}
			host, err := r.bytes(int(hostLen))
			if err != nil {
				return err
			}
			s.Host = string(host)
			if s.EnqueueMicros, err = r.u64(); err != nil {
				return err
			}
			if s.StartMicros, err = r.u64(); err != nil {
				return err
			}
			if s.EndMicros, err = r.u64(); err != nil {
				return err
			}
			f.Spans = append(f.Spans, s)
		}
	}
	payLen, err := r.u32()
	if err != nil {
		return err
	}
	if payLen > maxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, payLen)
	}
	pay, err := r.bytes(int(payLen))
	if err != nil {
		return err
	}
	if copyPayload || len(pay) == 0 {
		f.Payload = append(f.Payload[:0], pay...)
	} else {
		f.Payload = pay
	}
	return nil
}

// AddStage appends a sidecar analytics record, silently dropping records
// beyond the codec limit (analytics are best-effort).
func (f *Frame) AddStage(step Step, queueMicros, procMicros uint32) {
	if len(f.Stages) >= maxStages {
		return
	}
	f.Stages = append(f.Stages, StageRecord{Step: step, QueueMicros: queueMicros, ProcMicros: procMicros})
}

// AddSpan appends a tracing span, silently dropping records beyond the
// codec limit (tracing is best-effort, like the sidecar analytics).
func (f *Frame) AddSpan(s SpanRecord) {
	if len(f.Spans) >= maxSpans {
		return
	}
	f.Spans = append(f.Spans, s)
}

// Clone returns a deep copy of the frame. Slices are allocated at their
// exact lengths in one pass (no append growth, nil stays nil). Clone is
// reserved for genuine fan-out — duplicating a frame to two downstream
// consumers; the worker hot path re-encodes in place and never clones
// (see DESIGN.md "Buffer ownership & pooling").
func (f *Frame) Clone() *Frame {
	out := *f
	if f.Payload != nil {
		out.Payload = make([]byte, len(f.Payload))
		copy(out.Payload, f.Payload)
	}
	if f.Stages != nil {
		out.Stages = make([]StageRecord, len(f.Stages))
		copy(out.Stages, f.Stages)
	}
	if f.Spans != nil {
		out.Spans = make([]SpanRecord, len(f.Spans))
		copy(out.Spans, f.Spans)
	}
	return &out
}

// CloneInto deep-copies f into dst, reusing dst's Payload/Stages/Spans
// capacity — the zero-allocation fan-out path for pooled frames.
func (f *Frame) CloneInto(dst *Frame) {
	payload, stages, spans := dst.Payload, dst.Stages, dst.Spans
	*dst = *f
	dst.Payload = append(payload[:0], f.Payload...)
	dst.Stages = append(stages[:0], f.Stages...)
	dst.Spans = append(spans[:0], f.Spans...)
}

// Reset clears the frame for reuse, keeping Payload/Stages/Spans capacity
// so the next decode or clone into it does not reallocate.
func (f *Frame) Reset() {
	payload, stages, spans := f.Payload[:0], f.Stages[:0], f.Spans[:0]
	*f = Frame{Payload: payload, Stages: stages, Spans: spans}
}

// reader is a bounds-checked big-endian cursor.
type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return ErrShortBuffer
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}
