//go:build race

package wire

// raceEnabled skips the allocation-budget regression tests under the
// race detector, which instruments allocations and breaks AllocsPerRun
// accounting.
const raceEnabled = true
