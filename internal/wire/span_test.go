package wire

import (
	"bytes"
	"errors"
	"testing"
)

func sampleSpans() []SpanRecord {
	return []SpanRecord{
		{Step: StepPrimary, Outcome: 0, Host: "E1",
			EnqueueMicros: 1_000_000, StartMicros: 1_000_400, EndMicros: 1_001_400},
		{Step: StepSIFT, Outcome: 0, Host: "E1",
			EnqueueMicros: 1_001_900, StartMicros: 1_002_000, EndMicros: 1_030_000},
		{Step: StepMatching, Outcome: 3, Host: "edge-2.example",
			EnqueueMicros: 1_031_000, StartMicros: 1_131_000, EndMicros: 1_131_000},
	}
}

func TestSpanRoundTrip(t *testing.T) {
	f := sampleFrame()
	f.Spans = sampleSpans()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Frame
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(g.Spans) != len(f.Spans) {
		t.Fatalf("spans = %d, want %d", len(g.Spans), len(f.Spans))
	}
	for i := range g.Spans {
		if g.Spans[i] != f.Spans[i] {
			t.Errorf("span %d = %+v, want %+v", i, g.Spans[i], f.Spans[i])
		}
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("payload corrupted by span block")
	}
	if len(g.Stages) != len(f.Stages) {
		t.Errorf("stages corrupted by span block")
	}
}

// TestSpanBlockOptional pins that frames without spans marshal to the
// exact bytes the pre-span codec produced: the block costs nothing when
// tracing is off, and old captures still decode.
func TestSpanBlockOptional(t *testing.T) {
	f := sampleFrame()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if data[11]&flagSpans != 0 {
		t.Error("span flag set on a frame without spans")
	}
	var g Frame
	g.Spans = sampleSpans() // must be reset by decode
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(g.Spans) != 0 {
		t.Errorf("decode left %d stale spans", len(g.Spans))
	}
}

func TestSpanBlockVersionRejected(t *testing.T) {
	f := sampleFrame()
	f.Spans = sampleSpans()[:1]
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The span block starts right after the stage records; corrupt its
	// version byte wherever it is by re-marshalling with a sentinel host
	// and locating the version byte relative to the payload length field.
	idx := bytes.Index(data, []byte{spanBlockVersion, 1, byte(StepPrimary)})
	if idx < 0 {
		t.Fatal("span block not found in encoding")
	}
	data[idx] = 99
	var g Frame
	if err := g.UnmarshalBinary(data); !errors.Is(err, ErrBadVersion) {
		t.Errorf("unknown span block version err = %v, want ErrBadVersion", err)
	}
}

func TestSpanMarshalLimits(t *testing.T) {
	f := sampleFrame()
	f.Spans = make([]SpanRecord, maxSpans+1)
	if _, err := f.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("span count over limit err = %v", err)
	}
	f.Spans = []SpanRecord{{Step: StepSIFT, Host: string(make([]byte, 256))}}
	if _, err := f.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("span host over limit err = %v", err)
	}
}

func TestAddSpanCaps(t *testing.T) {
	var f Frame
	for i := 0; i < maxSpans+10; i++ {
		f.AddSpan(SpanRecord{Step: StepSIFT, EnqueueMicros: uint64(i)})
	}
	if len(f.Spans) != maxSpans {
		t.Errorf("spans = %d, want capped at %d", len(f.Spans), maxSpans)
	}
}

func TestCloneCopiesSpans(t *testing.T) {
	f := sampleFrame()
	f.Spans = sampleSpans()
	g := f.Clone()
	g.Spans[0].Host = "mutated"
	if f.Spans[0].Host == "mutated" {
		t.Error("Clone shares span storage")
	}
}
