// Package netem models network links with latency, jitter, loss,
// bandwidth, and mobility-induced delay oscillation — the role `tc`
// played in the paper's testbed (§A.1.1). Each link decides, per
// datagram, a one-way transit delay and whether the datagram is lost.
//
// The connectivity profiles mirror the measurement studies the paper
// emulates: LTE (40 ms RTT, 0.08% loss), 5G (10 ms RTT, 0.00001–0.01%
// loss), Wi-Fi 6 (5 ms RTT, 0.00001–0.01% loss), plus the testbed's wired
// links (client↔E1 ≤1 ms, E1↔E2 ≈3 ms, client↔cloud ≈15 ms).
package netem

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// mtuBytes is the fragment size used for per-packet loss compounding.
const mtuBytes = 1500

// LinkConfig describes one directional link.
type LinkConfig struct {
	Name string
	// RTT is the round-trip time; a datagram experiences RTT/2 one way.
	RTT time.Duration
	// Jitter adds a uniform random delay in [0, Jitter] per datagram.
	Jitter time.Duration
	// Loss is the independent per-message drop probability in [0, 1].
	Loss float64
	// PacketLoss, when positive, is a per-1500-byte-fragment loss
	// probability: a message of n fragments survives with probability
	// (1-PacketLoss)^n, so large frames (which fragment into ~120 MTU
	// packets) suffer compounding loss — the effect that cripples the
	// paper's hybrid edge-cloud deployment (Fig. 11).
	PacketLoss float64
	// BandwidthBps, when positive, adds a serialization delay of
	// size*8/BandwidthBps seconds per datagram.
	BandwidthBps float64
	// OscillationDelay/OscillationProb emulate mobility: with probability
	// OscillationProb a datagram suffers an extra OscillationDelay (the
	// paper adds 10 ms oscillation with 20% probability).
	OscillationDelay time.Duration
	OscillationProb  float64
}

// Validate reports configuration errors.
func (c LinkConfig) Validate() error {
	if c.RTT < 0 || c.Jitter < 0 || c.OscillationDelay < 0 {
		return fmt.Errorf("netem: negative duration in link %q", c.Name)
	}
	if c.Loss < 0 || c.Loss > 1 {
		return fmt.Errorf("netem: loss %v outside [0,1] in link %q", c.Loss, c.Name)
	}
	if c.PacketLoss < 0 || c.PacketLoss > 1 {
		return fmt.Errorf("netem: packet loss %v outside [0,1] in link %q", c.PacketLoss, c.Name)
	}
	if c.OscillationProb < 0 || c.OscillationProb > 1 {
		return fmt.Errorf("netem: oscillation prob %v outside [0,1] in link %q", c.OscillationProb, c.Name)
	}
	if c.BandwidthBps < 0 {
		return fmt.Errorf("netem: negative bandwidth in link %q", c.Name)
	}
	return nil
}

// Stats are cumulative link counters.
type Stats struct {
	Sent    uint64
	Dropped uint64
}

// DropRate returns Dropped/Sent, or 0 when nothing was sent.
func (s Stats) DropRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.Sent)
}

// Link is a directional emulated link. It is not safe for concurrent use;
// the simulation engine serializes access.
type Link struct {
	cfg   LinkConfig
	rng   *rand.Rand
	stats Stats
}

// NewLink builds a link drawing randomness from rng. It panics on an
// invalid configuration (programming error in experiment setup).
func NewLink(cfg LinkConfig, rng *rand.Rand) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("netem: nil rng")
	}
	return &Link{cfg: cfg, rng: rng}
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns cumulative counters.
func (l *Link) Stats() Stats { return l.stats }

// Transit decides the fate of one datagram of the given size: either it
// is dropped, or it arrives after the returned one-way delay.
func (l *Link) Transit(sizeBytes int) (delay time.Duration, dropped bool) {
	l.stats.Sent++
	if l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss {
		l.stats.Dropped++
		return 0, true
	}
	if l.cfg.PacketLoss > 0 && sizeBytes > 0 {
		frags := (sizeBytes + mtuBytes - 1) / mtuBytes
		survive := math.Pow(1-l.cfg.PacketLoss, float64(frags))
		if l.rng.Float64() >= survive {
			l.stats.Dropped++
			return 0, true
		}
	}
	delay = l.cfg.RTT / 2
	if l.cfg.Jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(l.cfg.Jitter) + 1))
	}
	if l.cfg.BandwidthBps > 0 && sizeBytes > 0 {
		ser := float64(sizeBytes) * 8 / l.cfg.BandwidthBps
		delay += time.Duration(ser * float64(time.Second))
	}
	if l.cfg.OscillationProb > 0 && l.rng.Float64() < l.cfg.OscillationProb {
		delay += l.cfg.OscillationDelay
	}
	return delay, false
}

// Standard profiles from the paper's testbed and its cited measurement
// studies. Loss/latency values follow §3.2 and §A.1.1.

// Loopback models services co-located on one machine.
func Loopback() LinkConfig {
	return LinkConfig{Name: "loopback", RTT: 50 * time.Microsecond}
}

// ClientEdge models the NUC clients wired directly to E1 (≤1 ms RTT).
func ClientEdge() LinkConfig {
	return LinkConfig{Name: "client-e1", RTT: time.Millisecond, Jitter: 100 * time.Microsecond}
}

// EdgeLAN models the E1↔E2 LAN path (2–4 hops, ≈3 ms RTT).
func EdgeLAN() LinkConfig {
	return LinkConfig{Name: "e1-e2", RTT: 3 * time.Millisecond, Jitter: 300 * time.Microsecond}
}

// CloudWAN models the client/edge to AWS path (≈15 ms RTT) including the
// public-Internet loss that degrades the hybrid deployment (Fig. 11).
func CloudWAN() LinkConfig {
	return LinkConfig{
		Name:   "wan-cloud",
		RTT:    15 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
		Loss:   0.002,
	}
}

// CloudWANTransit models the edge-to-cloud transit path carrying the
// pipeline's sustained full-frame UDP stream in the hybrid deployment:
// the same ≈15 ms RTT as the access path, but with per-packet loss (large
// frames fragment into ~120 MTU packets, compounding badly) and a
// bandwidth cap that adds serialization delay — the paper identifies
// exactly these frame drops over the public Internet as the hybrid
// deployment's primary degradation.
func CloudWANTransit() LinkConfig {
	return LinkConfig{
		Name:         "wan-transit",
		RTT:          15 * time.Millisecond,
		Jitter:       3 * time.Millisecond,
		PacketLoss:   0.004,
		BandwidthBps: 60e6,
	}
}

// LTE emulates the LTE access profile: 40 ms RTT, 0.08% loss.
func LTE() LinkConfig {
	return LinkConfig{Name: "lte", RTT: 40 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.0008}
}

// FiveG emulates the 5G access profile: 10 ms RTT, up to 0.01% loss.
func FiveG() LinkConfig {
	return LinkConfig{Name: "5g", RTT: 10 * time.Millisecond, Jitter: 500 * time.Microsecond, Loss: 0.0001}
}

// WiFi6 emulates the Wi-Fi 6 access profile: 5 ms RTT, up to 0.01% loss.
func WiFi6() LinkConfig {
	return LinkConfig{Name: "wifi6", RTT: 5 * time.Millisecond, Jitter: 500 * time.Microsecond, Loss: 0.0001}
}

// WithMobility returns cfg with the paper's mobility emulation applied:
// 10 ms delay oscillation with 20% probability.
func WithMobility(cfg LinkConfig) LinkConfig {
	cfg.OscillationDelay = 10 * time.Millisecond
	cfg.OscillationProb = 0.2
	return cfg
}
