package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	bad := []LinkConfig{
		{RTT: -1},
		{Jitter: -1},
		{OscillationDelay: -1},
		{Loss: -0.1},
		{Loss: 1.1},
		{OscillationProb: 2},
		{BandwidthBps: -5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	if err := LTE().Validate(); err != nil {
		t.Errorf("LTE profile invalid: %v", err)
	}
}

func TestNewLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLink with invalid config did not panic")
		}
	}()
	NewLink(LinkConfig{Loss: 3}, rand.New(rand.NewSource(1)))
}

func TestNewLinkNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLink(nil rng) did not panic")
		}
	}()
	NewLink(Loopback(), nil)
}

func TestTransitBaseDelay(t *testing.T) {
	l := NewLink(LinkConfig{RTT: 10 * time.Millisecond}, rand.New(rand.NewSource(1)))
	d, dropped := l.Transit(1000)
	if dropped {
		t.Fatal("lossless link dropped")
	}
	if d != 5*time.Millisecond {
		t.Errorf("one-way delay = %v, want RTT/2 = 5ms", d)
	}
}

func TestTransitJitterBounds(t *testing.T) {
	l := NewLink(LinkConfig{RTT: 10 * time.Millisecond, Jitter: 2 * time.Millisecond},
		rand.New(rand.NewSource(2)))
	for i := 0; i < 1000; i++ {
		d, dropped := l.Transit(100)
		if dropped {
			t.Fatal("lossless link dropped")
		}
		if d < 5*time.Millisecond || d > 7*time.Millisecond {
			t.Fatalf("delay %v outside [5ms, 7ms]", d)
		}
	}
}

func TestTransitLossRate(t *testing.T) {
	l := NewLink(LinkConfig{Loss: 0.3}, rand.New(rand.NewSource(3)))
	const n = 20000
	for i := 0; i < n; i++ {
		l.Transit(100)
	}
	got := l.Stats().DropRate()
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("measured drop rate %v, want ~0.3", got)
	}
	if l.Stats().Sent != n {
		t.Errorf("Sent = %d, want %d", l.Stats().Sent, n)
	}
}

func TestTransitBandwidth(t *testing.T) {
	// 8 Mbit/s: a 100 KB datagram serializes in 100e3*8/8e6 = 100 ms.
	l := NewLink(LinkConfig{BandwidthBps: 8e6}, rand.New(rand.NewSource(4)))
	d, _ := l.Transit(100_000)
	if math.Abs(d.Seconds()-0.1) > 1e-9 {
		t.Errorf("serialization delay = %v, want 100ms", d)
	}
	d, _ = l.Transit(0)
	if d != 0 {
		t.Errorf("zero-byte serialization delay = %v", d)
	}
}

func TestOscillation(t *testing.T) {
	cfg := WithMobility(LinkConfig{RTT: 2 * time.Millisecond})
	l := NewLink(cfg, rand.New(rand.NewSource(5)))
	extra := 0
	const n = 10000
	for i := 0; i < n; i++ {
		d, _ := l.Transit(100)
		if d >= 11*time.Millisecond {
			extra++
		}
	}
	frac := float64(extra) / n
	if math.Abs(frac-0.2) > 0.02 {
		t.Errorf("oscillation fraction = %v, want ~0.2", frac)
	}
}

func TestDropRateZeroSent(t *testing.T) {
	if (Stats{}).DropRate() != 0 {
		t.Error("DropRate of empty stats != 0")
	}
}

func TestProfiles(t *testing.T) {
	cases := []struct {
		cfg  LinkConfig
		rtt  time.Duration
		loss float64
	}{
		{LTE(), 40 * time.Millisecond, 0.0008},
		{FiveG(), 10 * time.Millisecond, 0.0001},
		{WiFi6(), 5 * time.Millisecond, 0.0001},
		{ClientEdge(), time.Millisecond, 0},
		{EdgeLAN(), 3 * time.Millisecond, 0},
	}
	for _, c := range cases {
		if c.cfg.RTT != c.rtt {
			t.Errorf("%s RTT = %v, want %v", c.cfg.Name, c.cfg.RTT, c.rtt)
		}
		if c.cfg.Loss != c.loss {
			t.Errorf("%s loss = %v, want %v", c.cfg.Name, c.cfg.Loss, c.loss)
		}
	}
	if CloudWAN().RTT != 15*time.Millisecond {
		t.Errorf("CloudWAN RTT = %v", CloudWAN().RTT)
	}
	m := WithMobility(FiveG())
	if m.OscillationDelay != 10*time.Millisecond || m.OscillationProb != 0.2 {
		t.Errorf("WithMobility = %+v", m)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		l := NewLink(WithMobility(LTE()), rand.New(rand.NewSource(7)))
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d, dropped := l.Transit(1000)
			if dropped {
				d = -1
			}
			out = append(out, d)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different transit outcomes")
		}
	}
}

// Property: delay is always >= RTT/2 for delivered datagrams and loss
// never exceeds statistics bounds grossly.
func TestTransitDelayFloorProperty(t *testing.T) {
	f := func(seed int64, rttMs uint8) bool {
		rtt := time.Duration(rttMs%100) * time.Millisecond
		l := NewLink(LinkConfig{RTT: rtt, Jitter: time.Millisecond, Loss: 0.1},
			rand.New(rand.NewSource(seed)))
		for i := 0; i < 100; i++ {
			d, dropped := l.Transit(500)
			if dropped {
				continue
			}
			if d < rtt/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
