//go:build unix

package transport

import (
	"net"
	"syscall"
)

// liveProbe detects a dead pooled TCP connection before a frame is
// written into it. Outbound peer connections are one-way — the peer
// never sends payload back — so the receive side of the socket can only
// ever hold a FIN (peer closed, read returns 0) or an error such as
// ECONNRESET (peer restarted). A non-blocking read therefore answers
// "is this stream still alive?" in one syscall: EAGAIN means quiet and
// healthy, anything else means dead.
//
// The callback is bound once at init so the steady-state alive() call
// allocates nothing (a per-call closure would heap-allocate on every
// frame).
type liveProbe struct {
	rc  syscall.RawConn
	fn  func(fd uintptr)
	ok  bool
	buf [1]byte
}

// init binds the probe to a freshly dialed connection. Connections that
// do not expose a raw descriptor (e.g. test doubles) are never probed
// and report alive.
func (lp *liveProbe) init(conn net.Conn) {
	lp.rc, lp.fn = nil, nil
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return
	}
	lp.rc = rc
	lp.fn = lp.peek
}

func (lp *liveProbe) peek(fd uintptr) {
	// Go sockets are registered with the runtime poller and already
	// non-blocking, so a plain read never blocks. Consuming (rather
	// than MSG_PEEK-ing) is fine: any readable byte already means the
	// one-way protocol was violated and the connection is dropped.
	n, err := syscall.Read(int(fd), lp.buf[:])
	lp.ok = n < 0 && (err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR)
}

// alive reports whether the connection shows no sign of death. Callers
// hold the peer lock, so the scratch state is race-free.
func (lp *liveProbe) alive() bool {
	if lp.rc == nil {
		return true
	}
	lp.ok = false
	if err := lp.rc.Control(lp.fn); err != nil {
		return false
	}
	return lp.ok
}
