package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (a *TCPConn, b *TCPConn, recv chan []byte) {
	t.Helper()
	recv = make(chan []byte, 64)
	var err error
	b, err = ListenTCP("127.0.0.1:0", func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err = ListenTCP("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, recv
}

func TestTCPSmallMessage(t *testing.T) {
	a, b, recv := tcpPair(t)
	if err := a.SendToAddr(b.LocalAddr(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if got := waitMsg(t, recv); string(got) != "over tcp" {
		t.Errorf("got %q", got)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	a, b, recv := tcpPair(t)
	msg := make([]byte, 480<<10) // the scAtteR++ stateless frame size
	for i := range msg {
		msg[i] = byte(i * 17)
	}
	if err := a.SendToAddr(b.LocalAddr(), msg); err != nil {
		t.Fatal(err)
	}
	if got := waitMsg(t, recv); !bytes.Equal(got, msg) {
		t.Fatal("large message corrupted")
	}
}

func TestTCPOrderedDelivery(t *testing.T) {
	a, b, recv := tcpPair(t)
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.SendToAddr(b.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// TCP preserves per-peer ordering — unlike UDP.
	for i := 0; i < n; i++ {
		got := waitMsg(t, recv)
		if got[0] != byte(i) {
			t.Fatalf("message %d arrived out of order: %d", i, got[0])
		}
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	a, b, recv := tcpPair(t)
	for i := 0; i < 5; i++ {
		if err := a.SendToAddr(b.LocalAddr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
		waitMsg(t, recv)
	}
	a.mu.Lock()
	peers := len(a.peers)
	a.mu.Unlock()
	if peers != 1 {
		t.Errorf("peers = %d, want 1 pooled connection", peers)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b, recv := tcpPair(t)
	addr := b.LocalAddr()
	if err := a.SendToAddr(addr, []byte("1")); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, recv)
	// Restart the receiver on the same port.
	b.Close()
	b2, err := ListenTCP(addr, func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Skipf("port not immediately reusable: %v", err)
	}
	defer b2.Close()
	// The pooled connection is stale; SendToAddr must re-dial.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := a.SendToAddr(addr, []byte("2")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := waitMsg(t, recv); string(got) != "2" {
		t.Errorf("got %q", got)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, b, _ := tcpPair(t)
	a.Close()
	if err := a.SendToAddr(b.LocalAddr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPTooLarge(t *testing.T) {
	a, b, _ := tcpPair(t)
	if err := a.SendToAddr(b.LocalAddr(), make([]byte, maxMessage+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPNilHandler(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestTCPDialFailure(t *testing.T) {
	a, _, _ := tcpPair(t)
	if err := a.SendToAddr("127.0.0.1:1", []byte("x")); err == nil {
		t.Error("send to closed port succeeded")
	}
}

func TestTCPCorruptStreamDropsConnection(t *testing.T) {
	_, b, recv := tcpPair(t)
	raw, err := net.Dial("tcp", b.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A length prefix far beyond maxMessage must drop the stream.
	raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	raw.Write([]byte("junk"))
	select {
	case m := <-recv:
		t.Errorf("corrupt stream delivered %q", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	recv := make(chan []byte, 256)
	b, err := ListenTCP("127.0.0.1:0", func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const senders, perSender = 4, 20
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a, err := ListenTCP("127.0.0.1:0", func([]byte, net.Addr) {})
			if err != nil {
				t.Error(err)
				return
			}
			defer a.Close()
			for i := 0; i < perSender; i++ {
				if err := a.SendToAddr(b.LocalAddr(), bytes.Repeat([]byte{byte(s)}, 10_000)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	timeout := time.After(3 * time.Second)
	for got := 0; got < senders*perSender; got++ {
		select {
		case <-recv:
		case <-timeout:
			t.Fatalf("received %d/%d", got, senders*perSender)
		}
	}
}

// Both endpoint types satisfy the shared interface.
func TestEndpointInterface(t *testing.T) {
	var _ Endpoint = (*Conn)(nil)
	var _ Endpoint = (*TCPConn)(nil)
}

func BenchmarkTCPSend180KB(b *testing.B) {
	done := make(chan struct{}, 1024)
	dst, err := ListenTCP("127.0.0.1:0", func(data []byte, from net.Addr) {
		done <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	src, err := ListenTCP("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	msg := make([]byte, 180<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendToAddr(dst.LocalAddr(), msg); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// TestChaosTCPBlackholedPeerBounded proves the write-deadline guarantee:
// a peer that accepts but never drains (a blackhole once socket buffers
// fill) costs each send at most dial + write deadline (+ backoff when
// retries are enabled), never an unbounded block.
func TestChaosTCPBlackholedPeerBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var heldMu sync.Mutex
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, conn) // accept, never read
			heldMu.Unlock()
		}
	}()

	opts := TCPOptions{WriteTimeout: 200 * time.Millisecond, Attempts: 1}
	a, err := ListenTCPOpts("127.0.0.1:0", func([]byte, net.Addr) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// 8 MB frames overrun loopback socket buffers within a few sends; the
	// blocked write must fail by its deadline instead of wedging.
	msg := make([]byte, 8<<20)
	deadline := time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		err := a.SendToAddr(ln.Addr().String(), msg)
		elapsed := time.Since(start)
		if elapsed > opts.WriteTimeout+3*time.Second {
			t.Fatalf("send took %v, far beyond the %v write deadline", elapsed, opts.WriteTimeout)
		}
		if err != nil {
			return // deadline fired: bounded, detected
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to a blackholed peer kept succeeding")
		}
	}
}

// TestChaosTCPBackoffBudget verifies the bounded retry budget: an
// unreachable peer fails after exactly Attempts dials with exponential
// backoff between them, and Close aborts a sender stuck in backoff.
func TestChaosTCPBackoffBudget(t *testing.T) {
	opts := TCPOptions{
		DialTimeout: 200 * time.Millisecond,
		Attempts:    3,
		Backoff:     40 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
	a, err := ListenTCPOpts("127.0.0.1:0", func([]byte, net.Addr) {}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Port 1 refuses instantly, so elapsed time is dominated by backoff:
	// ≥ 40ms + 80ms between the three attempts, well under a second.
	start := time.Now()
	if err := a.SendToAddr("127.0.0.1:1", []byte("x")); err == nil {
		t.Fatal("send to refused port succeeded")
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("3 attempts finished in %v; backoff not applied", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("3 attempts took %v; backoff unbounded", elapsed)
	}

	// A sender parked in backoff must abort when the endpoint closes.
	slow, err := ListenTCPOpts("127.0.0.1:0", func([]byte, net.Addr) {}, TCPOptions{
		DialTimeout: 100 * time.Millisecond, Attempts: 100, Backoff: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- slow.SendToAddr("127.0.0.1:1", []byte("x")) }()
	time.Sleep(150 * time.Millisecond) // let it enter a backoff sleep
	slow.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("aborted sender returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not abort a sender in backoff")
	}
}
