//go:build !unix

package transport

import "net"

// liveProbe is a no-op where non-blocking socket reads are not
// portable: every connection reports alive, and a dead pooled stream is
// instead detected when its next write fails (costing one frame, as the
// pre-writev implementation did).
type liveProbe struct{}

func (liveProbe) init(net.Conn) {}
func (liveProbe) alive() bool   { return true }
