// Fault injection over any Endpoint: the real-socket counterpart of the
// sim-level internal/netem link model. A FaultyEndpoint wraps an inner
// endpoint and applies a netem.Link-style policy — probabilistic drops
// (independent and per-fragment compounding), fixed delay plus jitter,
// duplication, and togglable partitions — per destination peer, at
// runtime. Chaos tests and examples use it to reproduce the paper's
// failure conditions (Fig. 11's compounding loss, §A.1.2's lossy WAN)
// against real UDP/TCP sockets instead of the simulator.
package transport

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/netem"
)

// faultMTU is the fragment size used for per-packet loss compounding,
// matching netem's MTU model.
const faultMTU = 1500

// FaultPolicy describes the failures injected on messages to one peer
// (or, as the default policy, to every peer without an override). The
// zero value injects nothing.
type FaultPolicy struct {
	// Drop is the independent per-message drop probability in [0, 1].
	Drop float64
	// PacketLoss, when positive, is a per-1500-byte-fragment loss
	// probability: a message of n fragments survives with probability
	// (1-PacketLoss)^n, reproducing the compounding loss that cripples
	// the paper's hybrid deployment on real sockets.
	PacketLoss float64
	// Delay postpones delivery of every message by this much.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter] per message.
	Jitter time.Duration
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
}

// Validate reports configuration errors.
func (p FaultPolicy) Validate() error {
	if p.Drop < 0 || p.Drop > 1 {
		return fmt.Errorf("transport: fault drop %v outside [0,1]", p.Drop)
	}
	if p.PacketLoss < 0 || p.PacketLoss > 1 {
		return fmt.Errorf("transport: fault packet loss %v outside [0,1]", p.PacketLoss)
	}
	if p.Duplicate < 0 || p.Duplicate > 1 {
		return fmt.Errorf("transport: fault duplicate %v outside [0,1]", p.Duplicate)
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return fmt.Errorf("transport: negative fault delay")
	}
	return nil
}

// active reports whether the policy injects anything at all.
func (p FaultPolicy) active() bool { return p != (FaultPolicy{}) }

// PolicyFromLink converts a netem link configuration into the equivalent
// injection policy: one-way delay (RTT/2), jitter, and both loss models.
// Bandwidth serialization and mobility oscillation have no real-socket
// counterpart here and are folded into jitter-free delay only.
func PolicyFromLink(cfg netem.LinkConfig) FaultPolicy {
	return FaultPolicy{
		Drop:       cfg.Loss,
		PacketLoss: cfg.PacketLoss,
		Delay:      cfg.RTT / 2,
		Jitter:     cfg.Jitter,
	}
}

// FaultStats are cumulative injection counters.
type FaultStats struct {
	Sent       uint64 // messages offered to the wrapper
	Dropped    uint64 // lost to Drop/PacketLoss
	Blackholed uint64 // lost to a partition
	Delayed    uint64 // delivered late
	Duplicated uint64 // delivered twice
}

// FaultyEndpoint wraps an Endpoint and injects the configured faults on
// the send path. Dropped and blackholed messages report success to the
// caller — exactly how a lossy or partitioned network looks to a UDP
// sender. It owns the inner endpoint: Close closes it. Safe for
// concurrent use; policies and partitions may be changed mid-run.
type FaultyEndpoint struct {
	inner Endpoint

	mu      sync.Mutex
	rng     *rand.Rand
	def     FaultPolicy
	perPeer map[string]FaultPolicy
	cut     map[string]bool
	cutAll  bool
	stats   FaultStats
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewFaultyEndpoint wraps inner with the default policy def (applied to
// peers without an override). The seed makes a run's fault pattern
// reproducible. Panics on an invalid policy (programming error in
// experiment setup), matching netem.NewLink.
func NewFaultyEndpoint(inner Endpoint, def FaultPolicy, seed int64) *FaultyEndpoint {
	if err := def.Validate(); err != nil {
		panic(err)
	}
	return &FaultyEndpoint{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		def:     def,
		perPeer: make(map[string]FaultPolicy),
		cut:     make(map[string]bool),
		done:    make(chan struct{}),
	}
}

// SetPeerPolicy overrides the policy for one destination address.
func (f *FaultyEndpoint) SetPeerPolicy(addr string, p FaultPolicy) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	f.mu.Lock()
	f.perPeer[addr] = p
	f.mu.Unlock()
}

// ClearPeerPolicy removes a peer override; the default applies again.
func (f *FaultyEndpoint) ClearPeerPolicy(addr string) {
	f.mu.Lock()
	delete(f.perPeer, addr)
	f.mu.Unlock()
}

// Partition blackholes all messages to addr until Heal.
func (f *FaultyEndpoint) Partition(addr string) {
	f.mu.Lock()
	f.cut[addr] = true
	f.mu.Unlock()
}

// Heal re-admits messages to addr.
func (f *FaultyEndpoint) Heal(addr string) {
	f.mu.Lock()
	delete(f.cut, addr)
	f.mu.Unlock()
}

// PartitionAll blackholes every destination until HealAll.
func (f *FaultyEndpoint) PartitionAll() {
	f.mu.Lock()
	f.cutAll = true
	f.mu.Unlock()
}

// HealAll lifts a PartitionAll (per-peer partitions remain).
func (f *FaultyEndpoint) HealAll() {
	f.mu.Lock()
	f.cutAll = false
	f.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (f *FaultyEndpoint) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// LocalAddr implements Endpoint.
func (f *FaultyEndpoint) LocalAddr() string { return f.inner.LocalAddr() }

// Inner returns the wrapped endpoint.
func (f *FaultyEndpoint) Inner() Endpoint { return f.inner }

// Close stops the wrapper, cancels in-flight delayed messages (the
// network "loses" them), and closes the inner endpoint.
func (f *FaultyEndpoint) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	close(f.done)
	f.mu.Unlock()
	err := f.inner.Close()
	f.wg.Wait()
	return err
}

// SendToAddr implements Endpoint, applying the fault policy for addr.
func (f *FaultyEndpoint) SendToAddr(addr string, data []byte) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.stats.Sent++
	if f.cutAll || f.cut[addr] {
		f.stats.Blackholed++
		f.mu.Unlock()
		return nil
	}
	p, ok := f.perPeer[addr]
	if !ok {
		p = f.def
	}
	if !p.active() {
		f.mu.Unlock()
		return f.inner.SendToAddr(addr, data)
	}
	if p.Drop > 0 && f.rng.Float64() < p.Drop {
		f.stats.Dropped++
		f.mu.Unlock()
		return nil
	}
	if p.PacketLoss > 0 && len(data) > 0 {
		frags := (len(data) + faultMTU - 1) / faultMTU
		survive := math.Pow(1-p.PacketLoss, float64(frags))
		if f.rng.Float64() >= survive {
			f.stats.Dropped++
			f.mu.Unlock()
			return nil
		}
	}
	copies := 1
	if p.Duplicate > 0 && f.rng.Float64() < p.Duplicate {
		copies = 2
		f.stats.Duplicated++
	}
	delay := p.Delay
	if p.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(p.Jitter) + 1))
	}
	if delay > 0 {
		f.stats.Delayed += uint64(copies)
		// Delayed messages are detached from the caller, like packets in
		// flight: the copy protects against buffer reuse, and errors after
		// the delay have no one to report to.
		buf := append([]byte(nil), data...)
		f.wg.Add(copies)
		for i := 0; i < copies; i++ {
			go f.sendLater(addr, buf, delay)
		}
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	var err error
	for i := 0; i < copies; i++ {
		if e := f.inner.SendToAddr(addr, data); e != nil {
			err = e
		}
	}
	return err
}

func (f *FaultyEndpoint) sendLater(addr string, data []byte, delay time.Duration) {
	defer f.wg.Done()
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-f.done:
	case <-t.C:
		_ = f.inner.SendToAddr(addr, data)
	}
}
