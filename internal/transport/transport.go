// Package transport provides the UDP datagram transport scAtteR services
// use for inter-service frame exchange. Application frames (≈180 KB, up
// to ≈480 KB when sift state rides along in scAtteR++) exceed a UDP
// datagram, so messages are fragmented into chunks and reassembled at the
// receiver; losing any fragment loses the whole message, matching UDP's
// all-or-nothing frame semantics in the paper's testbed.
//
// Fragment header (big-endian): magic u16 | msgID u64 | index u16 |
// total u16, followed by the chunk. Partial messages are garbage
// collected after a reassembly timeout.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

const (
	fragMagic  = 0xF27A
	headerLen  = 2 + 8 + 2 + 2
	maxChunk   = 60_000 // stays under the 64 KiB UDP limit with headers
	maxMessage = 32 << 20
)

// ReassemblyTimeout is how long a partial message waits for fragments.
const ReassemblyTimeout = 2 * time.Second

// Errors.
var (
	ErrTooLarge = errors.New("transport: message too large")
	ErrClosed   = errors.New("transport: closed")
)

// Handler receives a fully reassembled message. from is the sender's
// address (UDP or TCP depending on the endpoint).
type Handler func(data []byte, from net.Addr)

// Endpoint abstracts the message transports service workers use: the
// fragmenting UDP transport (the paper's baseline) and the framed TCP
// transport (the "improved network protocol" alternative of A.1.2).
type Endpoint interface {
	// LocalAddr returns the bound address as "host:port".
	LocalAddr() string
	// SendToAddr delivers one message to the destination address.
	SendToAddr(addr string, data []byte) error
	Close() error
}

// Conn is a UDP endpoint that sends and receives fragmented messages.
type Conn struct {
	pc      *net.UDPConn
	handler Handler

	mu     sync.Mutex
	nextID uint64
	reasm  map[reasmKey]*partial
	closed bool
	done   chan struct{}
}

type reasmKey struct {
	from  string
	msgID uint64
}

type partial struct {
	chunks   [][]byte
	received int
	total    int
	deadline time.Time
}

// Listen binds a UDP endpoint on addr ("host:port", port 0 for
// ephemeral) and starts delivering reassembled messages to handler.
func Listen(addr string, handler Handler) (*Conn, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	// Large buffers absorb multi-fragment bursts; errors are advisory.
	_ = pc.SetReadBuffer(8 << 20)
	_ = pc.SetWriteBuffer(8 << 20)
	c := &Conn{
		pc:      pc,
		handler: handler,
		reasm:   make(map[reasmKey]*partial),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.gcLoop()
	return c, nil
}

// Addr returns the bound UDP address.
func (c *Conn) Addr() *net.UDPAddr { return c.pc.LocalAddr().(*net.UDPAddr) }

// LocalAddr implements Endpoint.
func (c *Conn) LocalAddr() string { return c.pc.LocalAddr().String() }

// Close stops the endpoint.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	return c.pc.Close()
}

// SendTo fragments data and transmits it to the destination address.
func (c *Conn) SendTo(dst *net.UDPAddr, data []byte) error {
	if len(data) > maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	total := (len(data) + maxChunk - 1) / maxChunk
	if total == 0 {
		total = 1
	}
	buf := make([]byte, 0, headerLen+maxChunk)
	for idx := 0; idx < total; idx++ {
		lo := idx * maxChunk
		hi := lo + maxChunk
		if hi > len(data) {
			hi = len(data)
		}
		buf = buf[:0]
		buf = binary.BigEndian.AppendUint16(buf, fragMagic)
		buf = binary.BigEndian.AppendUint64(buf, id)
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
		buf = binary.BigEndian.AppendUint16(buf, uint16(total))
		buf = append(buf, data[lo:hi]...)
		if _, err := c.pc.WriteToUDP(buf, dst); err != nil {
			return fmt.Errorf("transport: send to %s: %w", dst, err)
		}
	}
	return nil
}

// SendToAddr resolves a "host:port" destination and sends.
func (c *Conn) SendToAddr(addr string, data []byte) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	return c.SendTo(udpAddr, data)
}

func (c *Conn) readLoop() {
	buf := make([]byte, headerLen+maxChunk+1024)
	for {
		n, from, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		c.ingest(buf[:n], from)
	}
}

func (c *Conn) ingest(pkt []byte, from *net.UDPAddr) {
	if len(pkt) < headerLen {
		return
	}
	if binary.BigEndian.Uint16(pkt) != fragMagic {
		return
	}
	msgID := binary.BigEndian.Uint64(pkt[2:])
	idx := int(binary.BigEndian.Uint16(pkt[10:]))
	total := int(binary.BigEndian.Uint16(pkt[12:]))
	if total == 0 || idx >= total || total*maxChunk > maxMessage+maxChunk {
		return
	}
	chunk := append([]byte(nil), pkt[headerLen:]...)

	if total == 1 {
		c.handler(chunk, from)
		return
	}
	key := reasmKey{from: from.String(), msgID: msgID}
	c.mu.Lock()
	p, ok := c.reasm[key]
	if !ok {
		p = &partial{chunks: make([][]byte, total), total: total, deadline: time.Now().Add(ReassemblyTimeout)}
		c.reasm[key] = p
	}
	if p.total != total || p.chunks[idx] != nil {
		c.mu.Unlock()
		return // duplicate or inconsistent fragment
	}
	p.chunks[idx] = chunk
	p.received++
	complete := p.received == p.total
	if complete {
		delete(c.reasm, key)
	}
	c.mu.Unlock()
	if !complete {
		return
	}
	size := 0
	for _, ch := range p.chunks {
		size += len(ch)
	}
	data := make([]byte, 0, size)
	for _, ch := range p.chunks {
		data = append(data, ch...)
	}
	c.handler(data, from)
}

func (c *Conn) gcLoop() {
	ticker := time.NewTicker(ReassemblyTimeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-ticker.C:
			c.mu.Lock()
			for key, p := range c.reasm {
				if now.After(p.deadline) {
					delete(c.reasm, key)
				}
			}
			c.mu.Unlock()
		}
	}
}

// PendingReassemblies reports the number of incomplete messages (for
// tests and monitoring).
func (c *Conn) PendingReassemblies() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reasm)
}
