// Package transport provides the UDP datagram transport scAtteR services
// use for inter-service frame exchange. Application frames (≈180 KB, up
// to ≈480 KB when sift state rides along in scAtteR++) exceed a UDP
// datagram, so messages are fragmented into chunks and reassembled at the
// receiver; losing any fragment loses the whole message, matching UDP's
// all-or-nothing frame semantics in the paper's testbed.
//
// Fragment header (big-endian): magic u16 | msgID u64 | index u16 |
// total u16, followed by the chunk. Partial messages are garbage
// collected after a reassembly timeout, and the reassembly table is
// bounded (count and bytes) so a flood of half-frames cannot exhaust an
// edge node's memory.
//
// The data plane is allocation-free in steady state: fragment scratch,
// reassembly arenas, and read buffers are pooled, and received messages
// are only borrowed by the Handler (see Handler's ownership contract).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

const (
	fragMagic  = 0xF27A
	headerLen  = 2 + 8 + 2 + 2
	maxChunk   = 60_000 // stays under the 64 KiB UDP limit with headers
	maxMessage = 32 << 20
)

// ReassemblyTimeout is how long a partial message waits for fragments.
const ReassemblyTimeout = 2 * time.Second

// Reassembly-table bounds: at most MaxReassemblies partial messages and
// MaxReassemblyBytes of reassembly arena may be pending at once.
// Fragments beyond either bound are dropped and counted
// (ConnStats.ReassemblyOverCap) — bounded memory beats unbounded queues
// on a resource-constrained edge node.
const (
	MaxReassemblies    = 256
	MaxReassemblyBytes = 64 << 20
)

// maxAddrCacheEntries bounds the resolved-destination cache.
const maxAddrCacheEntries = 4096

// Errors.
var (
	ErrTooLarge = errors.New("transport: message too large")
	ErrClosed   = errors.New("transport: closed")
)

// Handler receives a fully reassembled message. from is the sender's
// address (UDP or TCP depending on the endpoint).
//
// Ownership: data is only borrowed for the duration of the call — the
// endpoint recycles the buffer as soon as the handler returns. A handler
// that needs the bytes afterwards must copy them (decoding with
// wire.Frame.UnmarshalBinary copies; UnmarshalBinaryNoCopy does not).
type Handler func(data []byte, from net.Addr)

// Endpoint abstracts the message transports service workers use: the
// fragmenting UDP transport (the paper's baseline) and the framed TCP
// transport (the "improved network protocol" alternative of A.1.2).
type Endpoint interface {
	// LocalAddr returns the bound address as "host:port".
	LocalAddr() string
	// SendToAddr delivers one message to the destination address. It
	// must not retain data after it returns, so callers may reuse the
	// buffer immediately.
	SendToAddr(addr string, data []byte) error
	Close() error
}

// ConnStats are cumulative counters for the UDP endpoint's receive path
// (FaultStats-style; see FaultyEndpoint for the injection counters).
type ConnStats struct {
	Reassembled        uint64 // multi-fragment messages completed
	ReassemblyExpired  uint64 // partial messages dropped at the timeout
	ReassemblyOverCap  uint64 // fragments refused by the table bounds
	FragmentsMalformed uint64 // fragments with inconsistent geometry
}

// Reassembly drop reasons passed to the drop hook.
const (
	DropExpired   = "expired"
	DropOverCap   = "overcap"
	DropMalformed = "malformed"
)

// Conn is a UDP endpoint that sends and receives fragmented messages.
type Conn struct {
	pc      *net.UDPConn
	handler Handler

	mu         sync.Mutex
	nextID     uint64
	reasm      map[reasmKey]*partial
	reasmBytes int
	freeParts  []*partial
	stats      ConnStats
	dropHook   func(from, reason string)
	closed     bool
	done       chan struct{}

	addrMu    sync.RWMutex
	addrCache map[string]netip.AddrPort

	fragPool wire.BufPool // send-side fragment scratch
	msgPool  wire.BufPool // receive-side reassembly arenas
}

type reasmKey struct {
	from  netip.AddrPort
	msgID uint64
}

// partial is one in-progress reassembly. Fragments land directly in a
// contiguous pooled arena at idx*maxChunk (every non-final fragment is
// exactly maxChunk long), so completion needs no concatenation pass.
type partial struct {
	data     []byte // arena, cap >= total*maxChunk
	have     []bool
	received int
	total    int
	lastLen  int
	deadline time.Time
}

// Listen binds a UDP endpoint on addr ("host:port", port 0 for
// ephemeral) and starts delivering reassembled messages to handler.
func Listen(addr string, handler Handler) (*Conn, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	// Large buffers absorb multi-fragment bursts; errors are advisory.
	_ = pc.SetReadBuffer(8 << 20)
	_ = pc.SetWriteBuffer(8 << 20)
	c := &Conn{
		pc:        pc,
		handler:   handler,
		reasm:     make(map[reasmKey]*partial),
		addrCache: make(map[string]netip.AddrPort),
		done:      make(chan struct{}),
	}
	go c.readLoop()
	go c.gcLoop()
	return c, nil
}

// Addr returns the bound UDP address.
func (c *Conn) Addr() *net.UDPAddr { return c.pc.LocalAddr().(*net.UDPAddr) }

// LocalAddr implements Endpoint.
func (c *Conn) LocalAddr() string { return c.pc.LocalAddr().String() }

// Stats returns a snapshot of the receive-path counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SetDropHook installs a callback invoked (outside the endpoint's lock)
// whenever the receive path discards fragments — reassembly timeout,
// table bounds, or malformed geometry. Workers use it to record
// drop-outcome spans so transport-level losses and worker-level drops
// tell one story.
func (c *Conn) SetDropHook(hook func(from, reason string)) {
	c.mu.Lock()
	c.dropHook = hook
	c.mu.Unlock()
}

// Close stops the endpoint.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	return c.pc.Close()
}

// SendTo fragments data and transmits it to the destination address.
func (c *Conn) SendTo(dst *net.UDPAddr, data []byte) error {
	ap := dst.AddrPort()
	return c.sendTo(netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), data)
}

// SendToAddr resolves a "host:port" destination and sends. Resolved
// destinations are cached, so steady-state sends skip the resolver.
func (c *Conn) SendToAddr(addr string, data []byte) error {
	c.addrMu.RLock()
	ap, ok := c.addrCache[addr]
	c.addrMu.RUnlock()
	if !ok {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("transport: resolve %s: %w", addr, err)
		}
		ap = udpAddr.AddrPort()
		// Unmap 4-in-6 so a udp4-bound socket accepts the write.
		ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
		c.addrMu.Lock()
		if len(c.addrCache) < maxAddrCacheEntries {
			c.addrCache[addr] = ap
		}
		c.addrMu.Unlock()
	}
	return c.sendTo(ap, data)
}

// sendTo fragments data into a pooled scratch buffer and writes each
// fragment with WriteToUDPAddrPort — zero allocations in steady state.
func (c *Conn) sendTo(dst netip.AddrPort, data []byte) error {
	if len(data) > maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	total := (len(data) + maxChunk - 1) / maxChunk
	if total == 0 {
		total = 1
	}
	buf := c.fragPool.Get(headerLen + maxChunk)
	defer c.fragPool.Put(buf)
	for idx := 0; idx < total; idx++ {
		lo := idx * maxChunk
		hi := lo + maxChunk
		if hi > len(data) {
			hi = len(data)
		}
		buf = buf[:0]
		buf = binary.BigEndian.AppendUint16(buf, fragMagic)
		buf = binary.BigEndian.AppendUint64(buf, id)
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
		buf = binary.BigEndian.AppendUint16(buf, uint16(total))
		buf = append(buf, data[lo:hi]...)
		if _, err := c.pc.WriteToUDPAddrPort(buf, dst); err != nil {
			return fmt.Errorf("transport: send to %s: %w", dst, err)
		}
	}
	return nil
}

func (c *Conn) readLoop() {
	buf := make([]byte, headerLen+maxChunk+1024)
	// senders caches the net.Addr handed to the handler per peer, so the
	// steady-state receive path allocates nothing. Owned by this
	// goroutine; bounded like the resolve cache.
	senders := make(map[netip.AddrPort]*net.UDPAddr)
	for {
		n, from, err := c.pc.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		addr, ok := senders[from]
		if !ok {
			addr = net.UDPAddrFromAddrPort(from)
			if len(senders) < maxAddrCacheEntries {
				senders[from] = addr
			}
		}
		c.ingest(buf[:n], from, addr)
	}
}

// ingest routes one datagram. The packet buffer is the read loop's and
// is only borrowed: single-fragment messages hand their chunk straight
// to the handler (which must not retain it), multi-fragment chunks are
// copied into the message's contiguous arena. addr is the cached
// net.Addr form of from.
func (c *Conn) ingest(pkt []byte, from netip.AddrPort, addr *net.UDPAddr) {
	if len(pkt) < headerLen {
		return
	}
	if binary.BigEndian.Uint16(pkt) != fragMagic {
		return
	}
	msgID := binary.BigEndian.Uint64(pkt[2:])
	idx := int(binary.BigEndian.Uint16(pkt[10:]))
	total := int(binary.BigEndian.Uint16(pkt[12:]))
	chunk := pkt[headerLen:]
	if total == 0 || idx >= total || total*maxChunk > maxMessage+maxChunk {
		c.countDrop(from, DropMalformed, &c.stats.FragmentsMalformed)
		return
	}
	if total == 1 {
		c.handler(chunk, addr)
		return
	}
	// Contiguous reassembly relies on fixed fragment geometry: every
	// non-final fragment carries exactly maxChunk bytes (as SendTo
	// produces), the final one at most that.
	if len(chunk) > maxChunk || (idx < total-1 && len(chunk) != maxChunk) {
		c.countDrop(from, DropMalformed, &c.stats.FragmentsMalformed)
		return
	}

	key := reasmKey{from: from, msgID: msgID}
	c.mu.Lock()
	p, ok := c.reasm[key]
	if !ok {
		arena := total * maxChunk
		if len(c.reasm) >= MaxReassemblies || c.reasmBytes+arena > MaxReassemblyBytes {
			c.stats.ReassemblyOverCap++
			hook := c.dropHook
			c.mu.Unlock()
			if hook != nil {
				hook(from.String(), DropOverCap)
			}
			return
		}
		p = c.getPartial(total)
		c.reasm[key] = p
		c.reasmBytes += arena
	}
	if p.total != total || p.have[idx] {
		c.mu.Unlock()
		return // duplicate or inconsistent fragment
	}
	copy(p.data[idx*maxChunk:], chunk)
	p.have[idx] = true
	p.received++
	if idx == total-1 {
		p.lastLen = len(chunk)
	}
	complete := p.received == p.total
	if complete {
		delete(c.reasm, key)
		c.reasmBytes -= p.total * maxChunk
		c.stats.Reassembled++
	}
	c.mu.Unlock()
	if !complete {
		return
	}
	msg := p.data[:(p.total-1)*maxChunk+p.lastLen]
	c.handler(msg, addr)
	c.putPartial(p)
}

// countDrop bumps a receive-path counter and fires the drop hook.
func (c *Conn) countDrop(from netip.AddrPort, reason string, counter *uint64) {
	c.mu.Lock()
	*counter++
	hook := c.dropHook
	c.mu.Unlock()
	if hook != nil {
		hook(from.String(), reason)
	}
}

// getPartial returns a recycled partial with an arena and marks sized
// for total fragments. Caller holds c.mu.
func (c *Conn) getPartial(total int) *partial {
	var p *partial
	if n := len(c.freeParts); n > 0 {
		p = c.freeParts[n-1]
		c.freeParts[n-1] = nil
		c.freeParts = c.freeParts[:n-1]
	} else {
		p = &partial{}
	}
	arena := total * maxChunk
	if cap(p.data) < arena {
		p.data = c.msgPool.Get(arena)
	}
	p.data = p.data[:arena]
	if cap(p.have) < total {
		p.have = make([]bool, total)
	}
	p.have = p.have[:total]
	for i := range p.have {
		p.have[i] = false
	}
	p.received, p.total, p.lastLen = 0, total, 0
	p.deadline = time.Now().Add(ReassemblyTimeout)
	return p
}

// putPartial recycles a finished reassembly: the arena goes back to the
// message pool, the marks stay with the partial.
func (c *Conn) putPartial(p *partial) {
	c.msgPool.Put(p.data)
	p.data = nil
	c.mu.Lock()
	if len(c.freeParts) < MaxReassemblies {
		c.freeParts = append(c.freeParts, p)
	}
	c.mu.Unlock()
}

func (c *Conn) gcLoop() {
	ticker := time.NewTicker(ReassemblyTimeout / 2)
	defer ticker.Stop()
	var expired []*partial
	var expiredFrom []string
	for {
		select {
		case <-c.done:
			return
		case now := <-ticker.C:
			expired, expiredFrom = expired[:0], expiredFrom[:0]
			c.mu.Lock()
			for key, p := range c.reasm {
				if now.After(p.deadline) {
					delete(c.reasm, key)
					c.reasmBytes -= p.total * maxChunk
					c.stats.ReassemblyExpired++
					expired = append(expired, p)
					expiredFrom = append(expiredFrom, key.from.String())
				}
			}
			hook := c.dropHook
			c.mu.Unlock()
			for i, p := range expired {
				c.putPartial(p)
				if hook != nil {
					hook(expiredFrom[i], DropExpired)
				}
			}
		}
	}
}

// PendingReassemblies reports the number of incomplete messages (for
// tests and monitoring).
func (c *Conn) PendingReassemblies() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reasm)
}
