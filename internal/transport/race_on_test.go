//go:build race

package transport

// raceEnabled mirrors the -race flag so allocation-accounting tests can
// skip themselves: the race runtime's instrumentation allocates.
const raceEnabled = true
