package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// pair creates two linked endpoints; received messages on b go to the
// returned channel.
func pair(t *testing.T) (a *Conn, b *Conn, recv chan []byte) {
	t.Helper()
	recv = make(chan []byte, 16)
	var err error
	b, err = Listen("127.0.0.1:0", func(data []byte, from net.Addr) {
		cp := append([]byte(nil), data...)
		recv <- cp
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err = Listen("127.0.0.1:0", func(data []byte, from net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, recv
}

func waitMsg(t *testing.T, recv chan []byte) []byte {
	t.Helper()
	select {
	case m := <-recv:
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return nil
	}
}

func TestSmallMessage(t *testing.T) {
	a, b, recv := pair(t)
	msg := []byte("hello scatter")
	if err := a.SendTo(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	if got := waitMsg(t, recv); !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestLargeFragmentedMessage(t *testing.T) {
	a, b, recv := pair(t)
	// A 480 KB frame (the scAtteR++ stateless size) spans 8 fragments.
	msg := make([]byte, 480<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := a.SendTo(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := waitMsg(t, recv)
	if !bytes.Equal(got, msg) {
		t.Fatalf("fragmented message corrupted: len %d vs %d", len(got), len(msg))
	}
}

func TestManyMessagesInOrderContent(t *testing.T) {
	a, b, recv := pair(t)
	const n = 20
	sent := make(map[string]bool)
	for i := 0; i < n; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 100_000+i)
		sent[string(msg)] = true
		if err := a.SendTo(b.Addr(), msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got := waitMsg(t, recv)
		if !sent[string(got)] {
			t.Fatalf("received unexpected message of len %d", len(got))
		}
		delete(sent, string(got))
	}
}

func TestSendToAddr(t *testing.T) {
	a, b, recv := pair(t)
	if err := a.SendToAddr(b.Addr().String(), []byte("via-addr")); err != nil {
		t.Fatal(err)
	}
	if got := waitMsg(t, recv); string(got) != "via-addr" {
		t.Errorf("got %q", got)
	}
	if err := a.SendToAddr("not an address", []byte("x")); err == nil {
		t.Error("bad address accepted")
	}
}

func TestTooLarge(t *testing.T) {
	a, b, _ := pair(t)
	if err := a.SendTo(b.Addr(), make([]byte, maxMessage+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	a, b, _ := pair(t)
	a.Close()
	if err := a.SendTo(b.Addr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestListenNilHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestGarbageIgnored(t *testing.T) {
	_, b, recv := pair(t)
	raw, err := net.Dial("udp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte{1, 2, 3})                   // too short
	raw.Write(append(make([]byte, 14), 9, 9, 9)) // wrong magic
	select {
	case m := <-recv:
		t.Errorf("garbage delivered: %v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestPartialMessageGarbageCollected(t *testing.T) {
	_, b, _ := pair(t)
	raw, err := net.Dial("udp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// The final fragment of a 2-fragment message, never completed.
	// (Only the last fragment may be shorter than maxChunk, so this is
	// the one short fragment the geometry check accepts.)
	pkt := make([]byte, 0, 32)
	pkt = append(pkt, 0xF2, 0x7A)                         // magic
	pkt = append(pkt, 0, 0, 0, 0, 0, 0, 0, 42)            // msgID
	pkt = append(pkt, 0, 1)                               // idx 1 (final)
	pkt = append(pkt, 0, 2)                               // total 2
	pkt = append(pkt, []byte("partial-fragment-data")...) // chunk
	if _, err := raw.Write(pkt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for b.PendingReassemblies() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fragment never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline = time.Now().Add(2 * ReassemblyTimeout)
	for b.PendingReassemblies() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("partial message never garbage collected")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestConcurrentSenders(t *testing.T) {
	recv := make(chan []byte, 256)
	b, err := Listen("127.0.0.1:0", func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const senders = 4
	const perSender = 10
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
			if err != nil {
				t.Error(err)
				return
			}
			defer a.Close()
			for i := 0; i < perSender; i++ {
				msg := bytes.Repeat([]byte{byte(s)}, 70_000)
				if err := a.SendTo(b.Addr(), msg); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	got := 0
	timeout := time.After(3 * time.Second)
	for got < senders*perSender {
		select {
		case <-recv:
			got++
		case <-timeout:
			// UDP on loopback is effectively lossless; tolerate nothing.
			t.Fatalf("received %d/%d messages", got, senders*perSender)
		}
	}
}

func BenchmarkSend180KB(b *testing.B) {
	done := make(chan struct{}, 1024)
	dst, err := Listen("127.0.0.1:0", func(data []byte, from net.Addr) {
		done <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	src, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	msg := make([]byte, 180<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendTo(dst.Addr(), msg); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
