package transport

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"
)

// frag builds one raw fragment packet.
func frag(msgID uint64, idx, total int, chunk []byte) []byte {
	pkt := make([]byte, 0, headerLen+len(chunk))
	pkt = binary.BigEndian.AppendUint16(pkt, fragMagic)
	pkt = binary.BigEndian.AppendUint64(pkt, msgID)
	pkt = binary.BigEndian.AppendUint16(pkt, uint16(idx))
	pkt = binary.BigEndian.AppendUint16(pkt, uint16(total))
	return append(pkt, chunk...)
}

// hookRecorder collects drop-hook invocations.
type hookRecorder struct {
	mu      sync.Mutex
	reasons []string
}

func (h *hookRecorder) hook(from, reason string) {
	h.mu.Lock()
	h.reasons = append(h.reasons, reason)
	h.mu.Unlock()
}

func (h *hookRecorder) count(reason string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, r := range h.reasons {
		if r == reason {
			n++
		}
	}
	return n
}

func statsConn(t *testing.T) (*Conn, *hookRecorder, chan []byte) {
	t.Helper()
	recv := make(chan []byte, 16)
	c, err := Listen("127.0.0.1:0", func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	rec := &hookRecorder{}
	c.SetDropHook(rec.hook)
	return c, rec, recv
}

func rawSender(t *testing.T, c *Conn) net.Conn {
	t.Helper()
	raw, err := net.Dial("udp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	return raw
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	waitForDur(t, 2*time.Second, what, cond)
}

func waitForDur(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsReassembled(t *testing.T) {
	c, _, recv := statsConn(t)
	a, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	msg := bytes.Repeat([]byte{7}, maxChunk+100) // 2 fragments
	if err := a.SendTo(c.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := <-recv
	if !bytes.Equal(got, msg) {
		t.Fatalf("message corrupted: got %d bytes", len(got))
	}
	if s := c.Stats(); s.Reassembled != 1 {
		t.Errorf("Reassembled = %d, want 1", s.Reassembled)
	}
}

func TestStatsMalformedFragment(t *testing.T) {
	c, rec, _ := statsConn(t)
	raw := rawSender(t, c)
	// A non-final fragment must be exactly maxChunk bytes; this one is 5.
	if _, err := raw.Write(frag(1, 0, 3, []byte("short"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "malformed counter", func() bool { return c.Stats().FragmentsMalformed == 1 })
	if rec.count(DropMalformed) != 1 {
		t.Errorf("malformed hook fired %d times, want 1", rec.count(DropMalformed))
	}
	// idx >= total is malformed geometry too.
	if _, err := raw.Write(frag(2, 5, 2, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second malformed", func() bool { return c.Stats().FragmentsMalformed == 2 })
}

func TestStatsExpiredFiresHook(t *testing.T) {
	c, rec, _ := statsConn(t)
	raw := rawSender(t, c)
	// Final fragment of a 2-fragment message that never completes.
	if _, err := raw.Write(frag(9, 1, 2, []byte("tail"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return c.PendingReassemblies() == 1 })
	// Expiry needs ReassemblyTimeout plus up to one gc tick.
	waitForDur(t, 2*ReassemblyTimeout, "expiry", func() bool { return c.Stats().ReassemblyExpired == 1 })
	waitFor(t, "expired hook", func() bool { return rec.count(DropExpired) == 1 })
	if c.PendingReassemblies() != 0 {
		t.Error("expired partial still pending")
	}
}

func TestReassemblyTableBounded(t *testing.T) {
	c, rec, _ := statsConn(t)
	raw := rawSender(t, c)
	// Open MaxReassemblies partials (cheap: each is the short final
	// fragment of a 2-fragment message), then one more must be refused.
	for i := 0; i < MaxReassemblies; i++ {
		if _, err := raw.Write(frag(uint64(100+i), 1, 2, []byte("t"))); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 { // pace the burst so the socket buffer keeps up
			waitFor(t, "registration progress", func() bool { return c.PendingReassemblies() >= i })
		}
	}
	waitFor(t, "table full", func() bool { return c.PendingReassemblies() == MaxReassemblies })
	for rec.count(DropOverCap) == 0 {
		if _, err := raw.Write(frag(99999, 1, 2, []byte("t"))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.PendingReassemblies(); got != MaxReassemblies {
		t.Errorf("pending = %d, want cap %d", got, MaxReassemblies)
	}
	if c.Stats().ReassemblyOverCap == 0 {
		t.Error("ReassemblyOverCap not counted")
	}
}
