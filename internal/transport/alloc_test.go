package transport

import (
	"net"
	"testing"
)

// Steady-state allocation budgets for the transport send paths,
// enforced as tests (DESIGN.md "Buffer ownership & pooling"). Receive
// paths are covered indirectly by the worker-hop budget in
// internal/agent.
const (
	udpSendAllocBudget = 0
	tcpSendAllocBudget = 0
)

func TestUDPSendAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	sink, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	src, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	addr := sink.LocalAddr()
	data := make([]byte, 180<<10)                      // 4 fragments
	if err := src.SendToAddr(addr, data); err != nil { // warm pools + addr cache
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := src.SendToAddr(addr, data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > udpSendAllocBudget {
		t.Errorf("UDP SendToAddr allocates %.1f/op, budget %d", avg, udpSendAllocBudget)
	}
}

func TestTCPSendAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	sink, err := ListenTCP("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	src, err := ListenTCP("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	addr := sink.LocalAddr()
	data := make([]byte, 180<<10)
	if err := src.SendToAddr(addr, data); err != nil { // warm the pooled conn
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := src.SendToAddr(addr, data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > tcpSendAllocBudget {
		t.Errorf("TCP SendToAddr allocates %.1f/op, budget %d", avg, tcpSendAllocBudget)
	}
}
